(* Tests for the RDF substrate: triple store, serialization and the
   SPARQL subset. *)

open Weblab_rdf
open Weblab_relalg

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let iri = Term.iri
let lit = Term.lit

let sample_store () =
  let st = Triple_store.create () in
  let add s p o = Triple_store.add st (s, p, o) in
  add (iri "e:1") Prov_vocab.rdf_type Prov_vocab.entity;
  add (iri "e:2") Prov_vocab.rdf_type Prov_vocab.entity;
  add (iri "a:1") Prov_vocab.rdf_type Prov_vocab.activity;
  add (iri "e:2") Prov_vocab.was_derived_from (iri "e:1");
  add (iri "e:2") Prov_vocab.was_generated_by (iri "a:1");
  add (iri "a:1") Prov_vocab.used (iri "e:1");
  add (iri "e:1") Prov_vocab.rdfs_label (lit "source");
  st

let test_add_dedup () =
  let st = Triple_store.create () in
  let t = (iri "a", iri "b", iri "c") in
  Triple_store.add st t;
  Triple_store.add st t;
  check_int "size" 1 (Triple_store.size st);
  check_bool "mem" true (Triple_store.mem st t);
  check_bool "not mem" false (Triple_store.mem st (iri "a", iri "b", iri "d"))

let test_find_patterns () =
  let st = sample_store () in
  check_int "by subject" 3 (Triple_store.count st (Some (iri "e:2"), None, None));
  check_int "by predicate" 3
    (Triple_store.count st (None, Some Prov_vocab.rdf_type, None));
  check_int "by object" 2 (Triple_store.count st (None, None, Some (iri "e:1")));
  check_int "exact" 1
    (Triple_store.count st
       (Some (iri "e:2"), Some Prov_vocab.was_derived_from, Some (iri "e:1")));
  check_int "all" 7 (Triple_store.count st (None, None, None));
  check_int "no match" 0 (Triple_store.count st (Some (iri "zz"), None, None))

let test_term_semantics () =
  check_bool "lit with/without dt" false
    (Term.equal (lit "5") (Term.int_lit 5));
  check_bool "lit eq" true (Term.equal (lit "a") (lit "a"));
  check_bool "iri neq bnode" false (Term.equal (iri "x") (Term.bnode "x"))

let test_bgp_query () =
  let st = sample_store () in
  let q =
    [ (Triple_store.Var "e", Triple_store.Const Prov_vocab.rdf_type,
       Triple_store.Const Prov_vocab.entity) ]
  in
  check_int "entities" 2 (Table.cardinality (Triple_store.query st q))

let test_bgp_join () =
  let st = sample_store () in
  (* entities derived from something that an activity used *)
  let q =
    [ (Triple_store.Var "b", Triple_store.Const Prov_vocab.was_derived_from,
       Triple_store.Var "a");
      (Triple_store.Var "act", Triple_store.Const Prov_vocab.used,
       Triple_store.Var "a") ]
  in
  let t = Triple_store.query st q in
  check_int "joined" 1 (Table.cardinality t);
  let row = List.hd (Table.rows t) in
  check_bool "b bound" true
    (Value.to_string (Table.get t row "b") = "<e:2>")

let test_bgp_repeated_var () =
  let st = Triple_store.create () in
  Triple_store.add st (iri "a", iri "p", iri "a");
  Triple_store.add st (iri "a", iri "p", iri "b");
  let q = [ (Triple_store.Var "x", Triple_store.Const (iri "p"), Triple_store.Var "x") ] in
  check_int "self loops" 1 (Table.cardinality (Triple_store.query st q))

let test_ntriples_roundtrip () =
  let st = sample_store () in
  Triple_store.add st
    (iri "e:3", Prov_vocab.rdfs_label, Term.Lit ("line\nbreak \"q\"", None));
  Triple_store.add st (iri "e:3", Prov_vocab.wl_timestamp, Term.int_lit 42);
  let text = Turtle.to_ntriples st in
  let st' = Turtle.parse_ntriples text in
  check_int "same size" (Triple_store.size st) (Triple_store.size st');
  Triple_store.iter st (fun t ->
      check_bool "triple preserved" true (Triple_store.mem st' t))

let test_turtle_output () =
  let st = sample_store () in
  let ttl = Turtle.to_turtle st in
  let contains needle =
    let nh = String.length ttl and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub ttl i nn = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "prefix decl" true (contains "@prefix prov:");
  check_bool "abbreviated" true (contains "prov:Entity");
  check_bool "derived" true (contains "prov:wasDerivedFrom")

let test_sparql_select () =
  let st = sample_store () in
  let t =
    Sparql.run st "SELECT ?e WHERE { ?e a prov:Entity }"
  in
  check_int "two entities" 2 (Table.cardinality t);
  check (Alcotest.list Alcotest.string) "cols" [ "e" ] (Table.columns t)

let test_sparql_join_and_prefix () =
  let st = sample_store () in
  let t =
    Sparql.run st
      "PREFIX ex: <e:> SELECT ?a WHERE { ex:2 prov:wasDerivedFrom ?a . \
       ?act prov:used ?a . }"
  in
  check_int "one" 1 (Table.cardinality t)

let test_sparql_star () =
  let st = sample_store () in
  let t = Sparql.run st "SELECT * WHERE { ?s prov:used ?o }" in
  check (Alcotest.list Alcotest.string) "both vars" [ "s"; "o" ] (Table.columns t)

let test_sparql_literal () =
  let st = sample_store () in
  let t = Sparql.run st "SELECT ?s WHERE { ?s rdfs:label \"source\" }" in
  check_int "by label" 1 (Table.cardinality t)

let numbered_store () =
  let st = Triple_store.create () in
  for i = 1 to 5 do
    Triple_store.add st
      (iri (Printf.sprintf "e:%d" i), Prov_vocab.wl_timestamp, Term.int_lit i)
  done;
  st

let test_sparql_filter () =
  let st = numbered_store () in
  let t =
    Sparql.run st
      "SELECT ?e WHERE { ?e wl:timestamp ?t . FILTER(?t > 3) }"
  in
  check_int "filtered" 2 (Table.cardinality t);
  let t =
    Sparql.run st
      "SELECT ?e WHERE { ?e wl:timestamp ?t . FILTER(?t >= 2) FILTER(?t <= 3) }"
  in
  check_int "two filters" 2 (Table.cardinality t);
  let t =
    Sparql.run st "SELECT ?e WHERE { ?e wl:timestamp ?t . FILTER(?t != 3) }"
  in
  check_int "neq" 4 (Table.cardinality t)

let test_sparql_order_limit () =
  let st = numbered_store () in
  let first_binding q =
    let t = Sparql.run st q in
    check_int "limited to 1" 1 (Table.cardinality t);
    Value.to_string (Table.get t (List.hd (Table.rows t)) "t")
  in
  check Alcotest.string "ascending"
    "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>"
    (first_binding
       "SELECT ?t WHERE { ?e wl:timestamp ?t } ORDER BY ?t LIMIT 1");
  check Alcotest.string "descending"
    "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
    (first_binding
       "SELECT ?t WHERE { ?e wl:timestamp ?t } ORDER BY DESC(?t) LIMIT 1")

let test_sparql_ask () =
  let st = sample_store () in
  check_bool "ask true" true
    (Sparql.ask st "ASK { ?e a prov:Entity }");
  check_bool "ask false" false
    (Sparql.ask st "ASK { ?e a prov:Agent }");
  check_bool "ask with constant" true
    (Sparql.ask st "ASK WHERE { <e:2> prov:wasDerivedFrom <e:1> }")

let test_sparql_numeric_order () =
  (* "10" must sort after "9" (numeric, not lexicographic). *)
  let st = Triple_store.create () in
  Triple_store.add st (iri "a", Prov_vocab.wl_timestamp, Term.int_lit 9);
  Triple_store.add st (iri "b", Prov_vocab.wl_timestamp, Term.int_lit 10);
  let t =
    Sparql.run st
      "SELECT ?e WHERE { ?e wl:timestamp ?t } ORDER BY DESC(?t) LIMIT 1"
  in
  check Alcotest.string "b wins" "<b>"
    (Value.to_string (Table.get t (List.hd (Table.rows t)) "e"))

let test_sparql_distinct_keyword () =
  let st = sample_store () in
  (* DISTINCT parses; results are sets either way in this engine. *)
  let t = Sparql.run st "SELECT DISTINCT ?e WHERE { ?e a prov:Entity }" in
  check_int "two" 2 (Table.cardinality t)

let test_turtle_abbreviation_edges () =
  (* Local parts with characters outside the plain-name set fall back to
     full IRIs instead of producing invalid qnames. *)
  let st = Triple_store.create () in
  Triple_store.add st
    (Term.Iri (Prov_vocab.weblab_ns ^ "resource/r1"), Prov_vocab.rdf_type,
     Prov_vocab.entity);
  Triple_store.add st
    (Term.Iri (Prov_vocab.weblab_ns ^ "call/Svc-1"), Prov_vocab.rdf_type,
     Prov_vocab.activity);
  let ttl = Turtle.to_turtle st in
  let contains needle =
    let nh = String.length ttl and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub ttl i nn = needle || loop (i + 1)) in
    loop 0
  in
  (* "resource/r1" has a '/' in the local part: must stay a full IRI *)
  check_bool "slash stays full IRI" true
    (contains ("<" ^ Prov_vocab.weblab_ns ^ "resource/r1>"));
  check_bool "plain local abbreviates" true (contains "prov:Entity")

let test_unbound_sentinel () =
  (* The documented sentinel for a variable a solution never bound: the
     empty string Value — pinned here because every real binding
     renders a term, and term encodings are never empty. *)
  check_bool "sentinel is the empty string value" true
    (Triple_store.unbound = Value.Str "");
  let st = sample_store () in
  let q =
    [ (Triple_store.Var "s", Triple_store.Var "p", Triple_store.Var "o") ]
  in
  let t = Triple_store.query st q in
  Table.rows t
  |> List.iter (fun r ->
         List.iter
           (fun c ->
             check_bool "real bindings never collide with the sentinel"
               false
               (Table.get t r c = Triple_store.unbound))
           (Table.columns t))

let test_merge_boundary () =
  (* Cross the LSM tail limit several times and agree with the oracle on
     every shape, both mid-tail and right at merge boundaries. *)
  let cst = Triple_store.create () and ost = Oracle_store.create () in
  let tr i =
    ( iri (Printf.sprintf "s:%d" (i mod 611)),
      iri (Printf.sprintf "p:%d" (i mod 7)),
      if i mod 3 = 0 then iri (Printf.sprintf "s:%d" ((i + 1) mod 611))
      else lit (Printf.sprintf "v%d" (i mod 97)) )
  in
  for i = 0 to 2_999 do
    let t = tr i in
    Triple_store.add cst t;
    Oracle_store.add ost t;
    if i mod 512 = 0 || i = 1023 || i = 1024 || i = 2_999 then begin
      let s, p, o = tr (i / 2) in
      List.iter
        (fun pat ->
          check_bool "find agrees across merges" true
            (Triple_store.find cst pat = Oracle_store.find ost pat);
          check_int "count agrees across merges"
            (Oracle_store.count ost pat)
            (Triple_store.count cst pat))
        [ (Some s, Some p, None); (None, Some p, Some o);
          (Some s, None, None); (None, Some p, None);
          (None, None, Some o); (Some s, Some p, Some o);
          (None, None, None) ]
    end
  done;
  check_int "sizes agree" (Oracle_store.size ost) (Triple_store.size cst);
  let st = Triple_store.stats cst in
  check_int "base + tail = live" st.Triple_store.st_triples
    (st.Triple_store.st_base + st.Triple_store.st_tail);
  check_bool "merged at least twice" true (st.Triple_store.st_merges >= 2);
  Triple_store.compact cst;
  let st = Triple_store.stats cst in
  check_int "compact empties the tail" 0 st.Triple_store.st_tail;
  check Alcotest.string "bytes stable under compaction"
    (Turtle.Oracle.to_ntriples ost) (Turtle.to_ntriples cst)

let test_sparql_errors () =
  let st = sample_store () in
  let expect q =
    match Sparql.run st q with
    | _ -> Alcotest.failf "expected SPARQL error for %S" q
    | exception Sparql.Error _ -> ()
  in
  expect "FOO ?x WHERE { }";
  expect "SELECT ?x { ?x a prov:Entity }";
  expect "SELECT ?x WHERE { ?x a }";
  expect "SELECT ?x WHERE { ?x unknown:p ?y }";
  expect "SELECT ?x WHERE { ?x a prov:Entity . FILTER(?x) }";
  expect "SELECT ?x WHERE { ?x a prov:Entity } LIMIT";
  expect "ASK { ?x a prov:Entity } LIMIT 1 trailing";
  expect "SELECT ?x WHERE { ?x a prov:Entity } ORDER BY"

let () =
  Alcotest.run "rdf"
    [ ( "store",
        [ Alcotest.test_case "dedup" `Quick test_add_dedup;
          Alcotest.test_case "find patterns" `Quick test_find_patterns;
          Alcotest.test_case "term semantics" `Quick test_term_semantics;
          Alcotest.test_case "unbound sentinel" `Quick test_unbound_sentinel;
          Alcotest.test_case "merge boundaries" `Quick test_merge_boundary ] );
      ( "bgp",
        [ Alcotest.test_case "single pattern" `Quick test_bgp_query;
          Alcotest.test_case "join" `Quick test_bgp_join;
          Alcotest.test_case "repeated variable" `Quick test_bgp_repeated_var ] );
      ( "serialization",
        [ Alcotest.test_case "ntriples round-trip" `Quick test_ntriples_roundtrip;
          Alcotest.test_case "turtle" `Quick test_turtle_output ] );
      ( "sparql",
        [ Alcotest.test_case "select" `Quick test_sparql_select;
          Alcotest.test_case "join + prefix" `Quick test_sparql_join_and_prefix;
          Alcotest.test_case "select star" `Quick test_sparql_star;
          Alcotest.test_case "literal" `Quick test_sparql_literal;
          Alcotest.test_case "filter" `Quick test_sparql_filter;
          Alcotest.test_case "order by / limit" `Quick test_sparql_order_limit;
          Alcotest.test_case "ask" `Quick test_sparql_ask;
          Alcotest.test_case "numeric order" `Quick test_sparql_numeric_order;
          Alcotest.test_case "distinct keyword" `Quick test_sparql_distinct_keyword;
          Alcotest.test_case "turtle abbreviation" `Quick test_turtle_abbreviation_edges;
          Alcotest.test_case "errors" `Quick test_sparql_errors ] ) ]
