(* Tests for the orchestrator / Recorder: append-semantics enforcement,
   resource labeling, trace construction, black-box integration. *)

open Weblab_xml
open Weblab_workflow

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

let add_service name f = Service.inproc ~name ~description:"" f

(* A service appending one <F id?> fragment under the root. *)
let appender ?uri name =
  add_service name (fun doc ->
      let n = Tree.new_element doc ~parent:(Tree.root doc) "F" in
      match uri with Some u -> Tree.set_uri doc n u | None -> ())

let test_basic_execution () =
  let doc = Orchestrator.initial_document () in
  let trace =
    Orchestrator.execute doc [ appender "S1"; appender "S2" ]
  in
  let calls = Trace.calls trace in
  check_int "three calls (incl. Source)" 3 (List.length calls);
  check (Alcotest.list Alcotest.string) "call order"
    [ "Source"; "S1"; "S2" ]
    (List.map (fun c -> c.Trace.service) calls);
  (* root + two fragments *)
  check_int "entries" 3 (List.length (Trace.entries trace))

let test_labels_and_timestamps () =
  let doc = Orchestrator.initial_document () in
  let _ = Orchestrator.execute doc [ appender "S1"; appender "S2" ] in
  let resources = Tree.resources doc in
  check_int "three resources" 3 (List.length resources);
  List.iter
    (fun n ->
      match Tree.service_label doc n with
      | Some (s, t) ->
        check_int "label time = creation" (Tree.created doc n) t;
        if t = 0 then check_str "initial label" "Source" s
      | None -> Alcotest.fail "resource without label")
    resources

let test_auto_uri_assignment () =
  let doc = Orchestrator.initial_document () in
  let trace = Orchestrator.execute doc [ appender "S1" ] in
  let call = Option.get (Trace.call_at trace 1) in
  match Trace.resources_of_call trace call with
  | [ uri ] -> check_bool "fresh uri" true (uri <> "r1" && String.length uri > 1)
  | l -> Alcotest.failf "expected one resource, got %d" (List.length l)

let test_nested_resources_labeled () =
  (* A fragment containing an inner resource: both get trace entries. *)
  let svc =
    add_service "S" (fun doc ->
        let f = Tree.new_element doc ~parent:(Tree.root doc) "F" in
        let inner = Tree.new_element doc ~parent:f "G" in
        Tree.set_uri doc inner "inner1")
  in
  let doc = Orchestrator.initial_document () in
  let trace = Orchestrator.execute doc [ svc ] in
  let call = Option.get (Trace.call_at trace 1) in
  check_int "two resources for the call" 2
    (List.length (Trace.resources_of_call trace call))

let test_promotion_attribution () =
  (* A later call promotes an initial node: the resource is attributed to
     Source/t0, as node 3 of the paper is. *)
  let doc = Orchestrator.initial_document () in
  let n = Tree.new_element doc ~parent:(Tree.root doc) "N" in
  let promoter =
    add_service "P" (fun doc ->
        Tree.set_uri doc n "rn";
        ignore (Tree.new_element doc ~parent:(Tree.root doc) "F"))
  in
  let trace = Orchestrator.execute doc [ promoter ] in
  match Trace.call_of_resource trace "rn" with
  | Some c ->
    check_str "service" "Source" c.Trace.service;
    check_int "time" 0 c.Trace.time;
    check_int "promotion time recorded" 1 (Tree.uri_time doc n)
  | None -> Alcotest.fail "promoted resource not in trace"

let expect_violation doc services =
  match Orchestrator.execute doc services with
  | _ -> Alcotest.fail "expected Append_violation"
  | exception Orchestrator.Append_violation _ -> ()

let test_violation_text_change () =
  let doc = Orchestrator.initial_document () in
  let t = Tree.new_text doc ~parent:(Tree.root doc) "original" in
  expect_violation doc
    [ add_service "Bad" (fun doc -> Tree.set_text doc t "changed") ]

let test_violation_attr_change () =
  let doc = Orchestrator.initial_document () in
  expect_violation doc
    [ add_service "Bad" (fun doc -> Tree.set_uri doc (Tree.root doc) "other") ]

let test_violation_foreign_attr_added () =
  let doc = Orchestrator.initial_document () in
  expect_violation doc
    [ add_service "Bad" (fun doc -> Tree.set_attr doc (Tree.root doc) "x" "1") ]

let test_duplicate_uri_rejected () =
  let doc = Orchestrator.initial_document () in
  match Orchestrator.execute doc [ appender ~uri:"r1" "S" ] with
  | _ -> Alcotest.fail "expected Duplicate_uri"
  | exception Orchestrator.Duplicate_uri u -> check_str "dup" "r1" u

let test_on_step_states () =
  let doc = Orchestrator.initial_document () in
  let seen = ref [] in
  let on_step call before after (delta : Orchestrator.delta) =
    seen :=
      ( call.Trace.service,
        ( Doc_state.time before,
          Doc_state.time after,
          List.length delta.Orchestrator.new_nodes ) )
      :: !seen
  in
  let _ = Orchestrator.execute ~on_step doc [ appender "S1"; appender "S2" ] in
  check
    (Alcotest.list
       (Alcotest.pair Alcotest.string
          (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)))
    "steps"
    [ ("S1", (0, 1, 1)); ("S2", (1, 2, 1)) ]
    (List.rev !seen)

let test_states_grow () =
  let doc = Orchestrator.initial_document () in
  let _ = Orchestrator.execute doc [ appender "S1"; appender "S2" ] in
  let d0 = Doc_state.at doc 0 and d1 = Doc_state.at doc 1 and d2 = Doc_state.at doc 2 in
  check_int "d0" 1 (List.length (Doc_state.nodes d0));
  check_int "d1" 2 (List.length (Doc_state.nodes d1));
  check_int "d2" 3 (List.length (Doc_state.nodes d2));
  check_bool "monotone" true (Doc_state.timestamps_monotonic doc)

(* --- black-box services --- *)

let test_blackbox_append () =
  (* The service sees serialized XML and returns it with a new fragment. *)
  let svc =
    Service.blackbox ~name:"BB" ~description:"" (fun xml ->
        let stripped = String.sub xml 0 (String.length xml - String.length "</Resource>") in
        stripped ^ "<F id=\"bb1\">out</F></Resource>")
  in
  let doc = Orchestrator.initial_document () in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "A");
  let trace = Orchestrator.execute doc [ svc ] in
  let call = Option.get (Trace.call_at trace 1) in
  check (Alcotest.list Alcotest.string) "bb resource" [ "bb1" ]
    (Trace.resources_of_call trace call);
  let n = Option.get (Tree.find_resource doc "bb1") in
  check_str "content copied" "out" (Tree.string_value doc n);
  check_int "created time" 1 (Tree.created doc n)

let test_blackbox_violation () =
  let svc =
    Service.blackbox ~name:"BB" ~description:"" (fun _ -> "<Other/>")
  in
  let doc = Orchestrator.initial_document () in
  expect_violation doc [ svc ]

let test_blackbox_unparsable () =
  let svc = Service.blackbox ~name:"BB" ~description:"" (fun _ -> "garbage <") in
  let doc = Orchestrator.initial_document () in
  expect_violation doc [ svc ]

(* naive substring replace, first occurrence *)
let replace_once hay needle replacement =
  let nh = String.length hay and nn = String.length needle in
  let rec find i = if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i else find (i + 1) in
  match find 0 with
  | None -> hay
  | Some i ->
    String.sub hay 0 i ^ replacement ^ String.sub hay (i + nn) (nh - i - nn)

let test_blackbox_promotion () =
  (* Black-box services can promote nodes by returning them with an id. *)
  let svc =
    Service.blackbox ~name:"BB" ~description:"" (fun xml ->
        replace_once xml "<A/>" "<A id=\"pr1\"/>")
  in
  let doc = Orchestrator.initial_document () in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "A");
  let trace = Orchestrator.execute doc [ svc ] in
  check_bool "promoted in arena" true (Tree.find_resource doc "pr1" <> None);
  check_bool "in trace" true (Trace.call_of_resource trace "pr1" <> None)

let test_equivalence_inproc_blackbox () =
  (* The same logical service implemented both ways yields the same final
     document content. *)
  let in_doc () =
    let doc = Orchestrator.initial_document () in
    ignore (Tree.new_text doc ~parent:(Tree.root doc) "seed");
    doc
  in
  let doc1 = in_doc () in
  let _ =
    Orchestrator.execute doc1
      [ add_service "S" (fun doc ->
            let f = Tree.new_element doc ~parent:(Tree.root doc) "F" in
            ignore (Tree.new_text doc ~parent:f "x")) ]
  in
  let doc2 = in_doc () in
  let _ =
    Orchestrator.execute doc2
      [ Service.blackbox ~name:"S" ~description:"" (fun xml ->
            let stripped =
              String.sub xml 0 (String.length xml - String.length "</Resource>")
            in
            stripped ^ "<F>x</F></Resource>") ]
  in
  (* Compare string values and resource counts (URIs are auto-assigned the
     same way). *)
  check_str "same content" (Tree.string_value doc1 (Tree.root doc1))
    (Tree.string_value doc2 (Tree.root doc2));
  check_int "same resources" (List.length (Tree.resources doc1))
    (List.length (Tree.resources doc2))

let test_empty_workflow () =
  let doc = Orchestrator.initial_document () in
  let trace = Orchestrator.execute doc [] in
  check_int "just Source" 1 (List.length (Trace.calls trace));
  check_int "root labeled" 1 (List.length (Trace.entries trace))

let test_blackbox_noop () =
  (* A service returning the document unchanged adds nothing — and is not
     a violation. *)
  let svc = Service.blackbox ~name:"Noop" ~description:"" (fun xml -> xml) in
  let doc = Orchestrator.initial_document () in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "A");
  let before = Tree.size doc in
  let trace = Orchestrator.execute doc [ svc ] in
  check_int "no new nodes" before (Tree.size doc);
  let call = Option.get (Trace.call_at trace 1) in
  check_int "no resources" 0 (List.length (Trace.resources_of_call trace call))

let test_inproc_noop () =
  let svc = add_service "Noop" (fun _ -> ()) in
  let doc = Orchestrator.initial_document () in
  let trace = Orchestrator.execute doc [ svc ] in
  let call = Option.get (Trace.call_at trace 1) in
  check_int "no resources" 0 (List.length (Trace.resources_of_call trace call))

let test_text_fragment_root () =
  (* A text node appended directly under the root is an unidentifiable
     fragment: tolerated, simply not a resource. *)
  let svc =
    add_service "Texty" (fun doc ->
        ignore (Tree.new_text doc ~parent:(Tree.root doc) "loose text"))
  in
  let doc = Orchestrator.initial_document () in
  let trace = Orchestrator.execute doc [ svc ] in
  let call = Option.get (Trace.call_at trace 1) in
  check_int "text is not a resource" 0
    (List.length (Trace.resources_of_call trace call));
  check_bool "text present" true
    (Tree.string_value doc (Tree.root doc) = "loose text")

let test_service_raises () =
  (* A raising service propagates its exception; nothing is committed
     beyond the arena appends it already made. *)
  let svc = add_service "Boom" (fun _ -> failwith "boom") in
  let doc = Orchestrator.initial_document () in
  match Orchestrator.execute doc [ svc ] with
  | _ -> Alcotest.fail "expected the service exception"
  | exception Failure m -> check Alcotest.string "propagated" "boom" m

let test_initial_document_options () =
  let doc = Orchestrator.initial_document ~root_name:"Corpus" ~root_uri:"c0" () in
  check Alcotest.string "name" "Corpus" (Tree.name doc (Tree.root doc));
  check Alcotest.string "uri" "c0" (Option.get (Tree.uri doc (Tree.root doc)))

let () =
  Alcotest.run "workflow"
    [ ( "execution",
        [ Alcotest.test_case "basic" `Quick test_basic_execution;
          Alcotest.test_case "labels" `Quick test_labels_and_timestamps;
          Alcotest.test_case "auto uri" `Quick test_auto_uri_assignment;
          Alcotest.test_case "nested resources" `Quick test_nested_resources_labeled;
          Alcotest.test_case "promotion" `Quick test_promotion_attribution;
          Alcotest.test_case "on_step" `Quick test_on_step_states;
          Alcotest.test_case "states grow" `Quick test_states_grow ] );
      ( "edges",
        [ Alcotest.test_case "empty workflow" `Quick test_empty_workflow;
          Alcotest.test_case "blackbox noop" `Quick test_blackbox_noop;
          Alcotest.test_case "inproc noop" `Quick test_inproc_noop;
          Alcotest.test_case "text fragment" `Quick test_text_fragment_root;
          Alcotest.test_case "service raises" `Quick test_service_raises;
          Alcotest.test_case "initial options" `Quick test_initial_document_options ] );
      ( "violations",
        [ Alcotest.test_case "text change" `Quick test_violation_text_change;
          Alcotest.test_case "attr change" `Quick test_violation_attr_change;
          Alcotest.test_case "foreign attr" `Quick test_violation_foreign_attr_added;
          Alcotest.test_case "duplicate uri" `Quick test_duplicate_uri_rejected ] );
      ( "blackbox",
        [ Alcotest.test_case "append" `Quick test_blackbox_append;
          Alcotest.test_case "violation" `Quick test_blackbox_violation;
          Alcotest.test_case "unparsable" `Quick test_blackbox_unparsable;
          Alcotest.test_case "promotion" `Quick test_blackbox_promotion;
          Alcotest.test_case "inproc ≡ blackbox" `Quick test_equivalence_inproc_blackbox ] ) ]
