(* The multicore inference layer: the domain pool itself (ordering,
   exception propagation, batch reuse, the jobs = 1 sequential path),
   the LRU index cache, concurrent fresh-URI allocation, and the
   determinism contract — for every strategy, any [jobs] value must
   produce a provenance graph bit-identical to the sequential run:
   same link set AND same serialized PROV, including under injected
   faults. *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov
open QCheck

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let link_list g =
  Prov_graph.links g
  |> List.filter (fun l -> not l.Prov_graph.inherited)
  |> List.map (fun l ->
         (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
  |> List.sort compare

let links_testable = Alcotest.(list (triple string string string))

let rulebook_of services =
  List.filter_map
    (fun svc ->
      let name = Service.name svc in
      Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Catalog.rules)))
    services

(* ---------- the domain pool ---------- *)

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let r = Pool.map pool 100 (fun i -> i * i) in
          check_int
            (Printf.sprintf "jobs=%d: 100 results" jobs)
            100 (Array.length r);
          Array.iteri
            (fun i v ->
              check_int (Printf.sprintf "jobs=%d: slot %d" jobs i) (i * i) v)
            r))
    [ 1; 2; 4; 7 ]

let test_pool_empty_and_tiny () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_int "empty batch" 0 (Array.length (Pool.map pool 0 (fun i -> i)));
      (* fewer items than workers: some deques start empty *)
      check links_testable "n < jobs" []
        (Array.to_list (Pool.map pool 2 (fun _ -> [])) |> List.concat);
      check_int "single item" 41 (Pool.map pool 1 (fun _ -> 41)).(0))

let test_pool_reuse () =
  (* One pool, many batches: workers park between batches and wake for
     the next one — the execution-time backends run one batch per call. *)
  let pool = Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for batch = 1 to 20 do
        let n = 1 + ((batch * 13) mod 37) in
        let r = Pool.map pool n (fun i -> (batch * 1000) + i) in
        check_int (Printf.sprintf "batch %d size" batch) n (Array.length r);
        Array.iteri
          (fun i v ->
            check_int (Printf.sprintf "batch %d slot %d" batch i)
              ((batch * 1000) + i) v)
          r
      done)

let test_pool_exception () =
  (* A raising item must re-raise in the caller — and the pool must
     survive it: the batch drains and the next batch still works. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          (try
             ignore (Pool.map pool 50 (fun i -> if i = 17 then failwith "boom" else i));
             Alcotest.failf "jobs=%d: expected an exception" jobs
           with Failure msg ->
             check Alcotest.string
               (Printf.sprintf "jobs=%d: exception propagated" jobs)
               "boom" msg);
          let r = Pool.map pool 10 (fun i -> i + 1) in
          check_int (Printf.sprintf "jobs=%d: pool usable after error" jobs)
            10 r.(9)))
    [ 1; 4 ]

let test_pool_clamp () =
  Pool.with_pool ~jobs:0 (fun pool ->
      check_int "jobs < 1 clamps to 1" 1 (Pool.jobs pool));
  Pool.with_pool ~jobs:5 (fun pool ->
      check_int "jobs preserved" 5 (Pool.jobs pool))

(* ---------- the LRU index cache ---------- *)

let small_doc label =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node "Root" in
  Tree.set_uri doc root "r1";
  ignore (Tree.new_element doc ~parent:root label);
  doc

let test_index_cache_capped () =
  let docs = List.init 20 (fun i -> small_doc (Printf.sprintf "N%d" i)) in
  List.iter (fun d -> ignore (Index.for_tree d)) docs;
  check_bool "cache stays capped" true (Index.cached_count () <= 8)

let test_index_cache_lru () =
  let a = small_doc "A" in
  let ia = Index.for_tree a in
  (* Fill the cache around [a]... *)
  List.iter
    (fun i -> ignore (Index.for_tree (small_doc (Printf.sprintf "F%d" i))))
    [ 1; 2; 3; 4; 5; 6; 7 ];
  (* ...restamp [a], then force evictions: the cold fillers go first. *)
  check_bool "hit returns the cached index" true (ia == Index.for_tree a);
  List.iter
    (fun i -> ignore (Index.for_tree (small_doc (Printf.sprintf "G%d" i))))
    [ 1; 2; 3 ];
  check_bool "recently-used entry survives eviction" true
    (ia == Index.for_tree a);
  check_bool "still capped" true (Index.cached_count () <= 8)

(* ---------- concurrent fresh-URI allocation ---------- *)

let test_fresh_uri_concurrent () =
  (* Several domains race on one document's allocator state: every URI
     handed out must be distinct (the scan-probe-claim sequence is
     atomic under the per-state lock). *)
  let doc = Orchestrator.initial_document () in
  let domains = 4 and per = 64 in
  let uris =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            List.init per (fun _ -> Orchestrator.fresh_uri doc)))
    |> Array.to_list
    |> List.concat_map Domain.join
  in
  check_int "every concurrent fresh URI is distinct" (domains * per)
    (List.length (List.sort_uniq compare uris))

(* ---------- determinism: parallel = sequential, bit for bit ---------- *)

let plan_faults =
  [ Faulty.Crash; Faulty.Garbage_xml; Faulty.Mutate_committed;
    Faulty.Duplicate_uri ]

let skip_policy =
  { Orchestrator.default_policy with
    retries = 1; backoff_ms = 1.; on_failure = `Skip }

(* Executions mutate the document, so each run rebuilds the workload
   from its seed; [Faulty.plan] is deterministic in (seed, service,
   attempt), so the faulty variants replay identically too. *)
let workload ~seed ~faulty =
  let doc = Workload.make_document ~units:2 ~seed () in
  let services = Workload.standard_pipeline ~extended:true () in
  let rb = rulebook_of services in
  let services =
    if faulty then
      Faulty.wrap_all (Faulty.plan ~faults:plan_faults ~rate:0.4 ~seed ()) services
    else services
  in
  (doc, services, rb)

let run_strategy kind ~jobs ~seed ~faulty =
  let doc, services, rb = workload ~seed ~faulty in
  let exec, g =
    Engine.run_with_strategy ~policy:skip_policy ~jobs kind doc services rb
  in
  (link_list g, Engine.to_turtle ~trace:exec.Engine.trace g)

(* Every registered backend — a new one is covered automatically. *)
let all_kinds : Strategy.kind list = Strategy.all

let test_parallel_identical_deterministic () =
  (* Pinned smoke version of the property: every strategy, jobs=4 vs
     jobs=1, clean and faulty. *)
  List.iter
    (fun faulty ->
      List.iter
        (fun kind ->
          let l1, s1 = run_strategy kind ~jobs:1 ~seed:11 ~faulty in
          let l4, s4 = run_strategy kind ~jobs:4 ~seed:11 ~faulty in
          let tag =
            Printf.sprintf "%s%s" (Strategy.kind_to_string kind)
              (if faulty then " (faulty)" else "")
          in
          check links_testable (tag ^ ": links jobs=4 = jobs=1") l1 l4;
          check Alcotest.string (tag ^ ": turtle jobs=4 = jobs=1") s1 s4;
          check_bool (tag ^ ": non-trivial graph") true (l1 <> []))
        all_kinds)
    [ false; true ]

let prop_parallel_deterministic =
  Test.make
    ~name:"jobs=1 and random jobs in [2..8] produce bit-identical provenance"
    ~count:25
    (make
       ~print:(fun (seed, jobs, faulty) ->
         Printf.sprintf "seed=%d jobs=%d faulty=%b" seed jobs faulty)
       Gen.(triple (int_bound 1_000_000) (int_range 2 8) bool))
    (fun (seed, jobs, faulty) ->
      List.for_all
        (fun kind ->
          let l1, s1 = run_strategy kind ~jobs:1 ~seed ~faulty in
          let ln, sn = run_strategy kind ~jobs ~seed ~faulty in
          l1 = ln && s1 = sn)
        all_kinds)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map preserves item order" `Quick test_pool_map_order;
          Alcotest.test_case "empty and tiny batches" `Quick test_pool_empty_and_tiny;
          Alcotest.test_case "batch reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "jobs clamping" `Quick test_pool_clamp ] );
      ( "index-cache",
        [ Alcotest.test_case "capped at 8 entries" `Quick test_index_cache_capped;
          Alcotest.test_case "LRU keeps hot entries" `Quick test_index_cache_lru ] );
      ( "uri-alloc",
        [ Alcotest.test_case "concurrent fresh URIs distinct" `Quick
            test_fresh_uri_concurrent ] );
      ( "determinism",
        [ Alcotest.test_case "all strategies, jobs=4 = jobs=1" `Quick
            test_parallel_identical_deterministic ] );
      ( "properties", to_alcotest [ prop_parallel_deterministic ] ) ]
