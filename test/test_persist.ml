(* Persistence and the columnar/oracle equivalence laws.

   Three layers:
   - Wal framing: roundtrip, staged-but-uncommitted records dropped,
     reset, metadata, compaction, and the crash-consistency law — a log
     truncated at ANY byte length replays to exactly one of the
     commit-boundary snapshots (prefix consistency at commit
     granularity), never a partial batch.
   - Store equivalence: qcheck agreement between {!Triple_store} and the
     boxed {!Oracle_store} it replaced — same [find]/[count] on every
     pattern shape, same [query] tables under random BGPs, and
     byte-identical Turtle/N-Triples.
   - Warm restart through the protocol: a daemon context with a
     [data_dir] persists sessions per commit; a second context restores
     them read-only with byte-identical Turtle, and committing to a
     restored session reports [read_only]. *)

open Weblab_rdf
open Weblab_server
open QCheck
module J = Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let iri = Term.iri
let lit = Term.lit

let fresh_dir =
  let k = ref 0 in
  fun () ->
    incr k;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "weblab_persist_%d_%d" (Unix.getpid ()) !k)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let fresh_wal () = Filename.concat (fresh_dir ()) "t.wal"

(* A small deterministic triple batch: b distinguishes batches. *)
let batch b n =
  List.init n (fun i ->
      ( iri (Printf.sprintf "e:%d-%d" b i),
        iri "p:link",
        if i mod 2 = 0 then iri (Printf.sprintf "e:%d-%d" b (i + 1))
        else lit (Printf.sprintf "v%d-%d" b i) ))

(* ===== Wal framing ===== *)

let test_wal_roundtrip () =
  let path = fresh_wal () in
  let st = Triple_store.create () in
  let w = Wal.open_writer path in
  Wal.log_meta w ~key:"backend" ~value:"incremental";
  List.iter
    (fun tr ->
      Triple_store.add st tr;
      Wal.log_triple w tr)
    (batch 0 7);
  Wal.commit w ~store_size:(Triple_store.size st);
  Wal.log_meta w ~key:"commits" ~value:"1";
  List.iter
    (fun tr ->
      Triple_store.add st tr;
      Wal.log_triple w tr)
    (batch 1 5);
  Wal.commit w ~store_size:(Triple_store.size st);
  Wal.close_writer w;
  let st', rp = Wal.replay path in
  check_int "commits" 2 rp.Wal.rp_commits;
  check_bool "not torn" false rp.Wal.rp_torn;
  check_string "bytes" (Turtle.to_ntriples st) (Turtle.to_ntriples st');
  check_string "meta backend" "incremental"
    (List.assoc "backend" rp.Wal.rp_meta);
  check_string "meta commits" "1" (List.assoc "commits" rp.Wal.rp_meta)

let test_wal_missing_and_uncommitted () =
  let st, rp = Wal.replay (Filename.concat (fresh_dir ()) "absent.wal") in
  check_int "missing file = empty" 0 (Triple_store.size st);
  check_int "no commits" 0 rp.Wal.rp_commits;
  (* Staged records are dropped by close: they were never durable. *)
  let path = fresh_wal () in
  let w = Wal.open_writer path in
  List.iter (Wal.log_triple w) (batch 0 4);
  Wal.commit w ~store_size:4;
  List.iter (Wal.log_triple w) (batch 1 3);
  (* no commit *)
  Wal.close_writer w;
  let st, rp = Wal.replay path in
  check_int "only the committed batch" 4 (Triple_store.size st);
  check_int "one commit" 1 rp.Wal.rp_commits;
  check_bool "clean tail" false rp.Wal.rp_torn

let test_wal_reset () =
  let path = fresh_wal () in
  let w = Wal.open_writer path in
  List.iter (Wal.log_triple w) (batch 0 4);
  Wal.commit w ~store_size:4;
  Wal.log_reset w;
  List.iter (Wal.log_triple w) (batch 1 3);
  Wal.commit w ~store_size:3;
  Wal.close_writer w;
  let st, rp = Wal.replay path in
  check_int "post-reset size" 3 (Triple_store.size st);
  check_int "resets" 1 rp.Wal.rp_resets;
  let expect = Triple_store.create () in
  List.iter (Triple_store.add expect) (batch 1 3);
  check_string "post-reset bytes" (Turtle.to_ntriples expect)
    (Turtle.to_ntriples st)

let test_wal_compact () =
  let path = fresh_wal () in
  let st = Triple_store.create () in
  let w = Wal.open_writer path in
  for b = 0 to 9 do
    List.iter
      (fun tr ->
        Triple_store.add st tr;
        Wal.log_triple w tr)
      (batch b 10);
    Wal.commit w ~store_size:(Triple_store.size st)
  done;
  Wal.close_writer w;
  let long = (Unix.stat path).Unix.st_size in
  Wal.compact_to path ~meta:[ ("backend", "online") ] st;
  let short = (Unix.stat path).Unix.st_size in
  check_bool "compaction shrinks history" true (short <= long);
  let st', rp = Wal.replay path in
  check_int "one snapshot commit" 1 rp.Wal.rp_commits;
  check_string "same bytes" (Turtle.to_ntriples st) (Turtle.to_ntriples st');
  check_string "meta survives" "online" (List.assoc "backend" rp.Wal.rp_meta)

(* The crash-consistency law, exhaustively at every truncation point:
   replay of any prefix of the file equals one of the commit-boundary
   snapshots.  Deterministic version of the qcheck property below. *)
let test_wal_truncate_every_byte () =
  let path = fresh_wal () in
  let st = Triple_store.create () in
  let w = Wal.open_writer path in
  let snapshots = ref [ Turtle.to_ntriples st ] in
  for b = 0 to 2 do
    List.iter
      (fun tr ->
        Triple_store.add st tr;
        Wal.log_triple w tr)
      (batch b 3);
    Wal.commit w ~store_size:(Triple_store.size st);
    snapshots := Turtle.to_ntriples st :: !snapshots
  done;
  Wal.close_writer w;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let tmp = path ^ ".cut" in
  for len = String.length full downto 0 do
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (String.sub full 0 len));
    let st', _ = Wal.replay tmp in
    let got = Turtle.to_ntriples st' in
    if not (List.mem got !snapshots) then
      Alcotest.failf "truncation at %d bytes is not a commit prefix" len
  done

let test_wal_corrupt_byte () =
  let path = fresh_wal () in
  let w = Wal.open_writer path in
  List.iter (Wal.log_triple w) (batch 0 4);
  Wal.commit w ~store_size:4;
  List.iter (Wal.log_triple w) (batch 1 4);
  Wal.commit w ~store_size:8;
  Wal.close_writer w;
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* Flip a byte in the second half: the first commit must survive, the
     corrupt tail must be dropped, and nothing may raise. *)
  let pos = String.length full - 10 in
  let bytes = Bytes.of_string full in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  let st, rp = Wal.replay path in
  check_bool "torn flagged" true rp.Wal.rp_torn;
  check_int "first batch intact" 4 (Triple_store.size st)

(* ===== qcheck: stores agree, crashes are prefix-consistent ===== *)

(* A small closed universe of terms so random triples collide and
   patterns actually hit. *)
let term_of_int i =
  match i mod 3 with
  | 0 -> iri (Printf.sprintf "e:%d" (i mod 17))
  | 1 -> iri (Printf.sprintf "p:%d" (i mod 5))
  | _ -> lit (Printf.sprintf "v%d" (i mod 7))

let gen_triple =
  Gen.map3
    (fun a b c -> (term_of_int a, term_of_int b, term_of_int c))
    Gen.(0 -- 50) Gen.(0 -- 50) Gen.(0 -- 50)

let gen_pattern =
  let part = Gen.(oneof [ return None; map (fun i -> Some (term_of_int i)) (0 -- 50) ]) in
  Gen.triple part part part

let gen_bgp =
  let bgp_part =
    Gen.(
      oneof
        [ map (fun i -> Triple_store.Const (term_of_int i)) (0 -- 50);
          map
            (fun i -> Triple_store.Var (Printf.sprintf "x%d" i))
            (0 -- 3) ])
  in
  Gen.(list_size (1 -- 3) (triple bgp_part bgp_part bgp_part))

let render_table t =
  let cols = Weblab_relalg.Table.columns t in
  Weblab_relalg.Table.rows t
  |> List.map (fun r ->
         String.concat "|"
           (List.map
              (fun c ->
                Weblab_relalg.Value.to_string
                  (Weblab_relalg.Table.get t r c))
              cols))
  |> List.sort String.compare
  |> String.concat "\n"

let agreement_prop =
  Test.make ~name:"columnar = oracle (find/count/query/Turtle)" ~count:150
    (make
       Gen.(
         triple (list_size (0 -- 120) gen_triple)
           (list_size (1 -- 12) gen_pattern)
           (list_size (1 -- 4) gen_bgp)))
    (fun (triples, patterns, bgps) ->
      let cst = Triple_store.create () and ost = Oracle_store.create () in
      List.iter
        (fun tr ->
          Triple_store.add cst tr;
          Oracle_store.add ost tr)
        triples;
      Triple_store.size cst = Oracle_store.size ost
      && List.for_all
           (fun pat ->
             Triple_store.find cst pat = Oracle_store.find ost pat
             && Triple_store.count cst pat = Oracle_store.count ost pat)
           patterns
      && List.for_all
           (fun bgp ->
             render_table (Triple_store.query cst bgp)
             = render_table (Oracle_store.query ost bgp))
           bgps
      && String.equal (Turtle.to_turtle cst) (Turtle.Oracle.to_turtle ost)
      && String.equal (Turtle.to_ntriples cst)
           (Turtle.Oracle.to_ntriples ost))

let crash_consistency_prop =
  Test.make ~name:"truncated WAL replays to a commit prefix" ~count:60
    (make
       Gen.(
         pair
           (list_size (1 -- 8) (list_size (1 -- 10) gen_triple))
           (0 -- 10_000)))
    (fun (batches, cut) ->
      let path = fresh_wal () in
      let st = Triple_store.create () in
      let w = Wal.open_writer path in
      let snapshots = ref [ Turtle.to_ntriples st ] in
      List.iter
        (fun b ->
          List.iter
            (fun tr ->
              Triple_store.add st tr;
              Wal.log_triple w tr)
            b;
          Wal.commit w ~store_size:(Triple_store.size st);
          snapshots := Turtle.to_ntriples st :: !snapshots)
        batches;
      Wal.close_writer w;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let len = min cut (String.length full) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 len));
      let st', _ = Wal.replay path in
      List.mem (Turtle.to_ntriples st') !snapshots)

(* ===== warm restart through the protocol ===== *)

let rpc ctx fields =
  match J.parse_opt (Protocol.handle_line ctx (J.to_string (J.Obj fields))) with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable response: %s" e

let get_field what name = function
  | J.Obj fs -> (
    match List.assoc_opt name fs with
    | Some v -> v
    | None -> Alcotest.failf "%s: no field %S" what name)
  | _ -> Alcotest.failf "%s: not an object" what

let get_str what name v =
  match get_field what name v with
  | J.Str s -> s
  | _ -> Alcotest.failf "%s.%s: not a string" what name

let get_bool what name v =
  match get_field what name v with
  | J.Bool b -> b
  | _ -> Alcotest.failf "%s.%s: not a bool" what name

let get_int what name v =
  match get_field what name v with
  | J.Int i -> i
  | _ -> Alcotest.failf "%s.%s: not an int" what name

let expect_ok what v =
  if not (try get_bool what "ok" v with _ -> false) then
    Alcotest.failf "%s: expected ok, got %s" what (J.to_string v);
  v

let expect_err what code v =
  check_bool (what ^ " not ok") false (get_bool what "ok" v);
  check_string (what ^ " code") code (get_str what "error" v);
  v

let turtle_of ctx sid =
  get_str "turtle" "turtle"
    (expect_ok "turtle"
       (rpc ctx
          [ ("verb", J.Str "query"); ("session", J.Str sid);
            ("kind", J.Str "turtle") ]))

(* Open a session with a couple of commits; ids deliberately include
   characters the WAL filename must percent-encode. *)
let populate ctx sid =
  ignore
    (expect_ok "open"
       (rpc ctx
          [ ("verb", J.Str "open"); ("session", J.Str sid);
            ("backend", J.Str "incremental"); ("units", J.Int 2);
            ("seed", J.Int 5) ]));
  ignore
    (expect_ok "commit 1"
       (rpc ctx
          [ ("verb", J.Str "commit"); ("session", J.Str sid);
            ("service", J.Str "Normaliser") ]));
  ignore
    (expect_ok "commit 2"
       (rpc ctx
          [ ("verb", J.Str "commit"); ("session", J.Str sid);
            ("service", J.Str "Translator") ]))

let test_protocol_warm_restart () =
  let dir = fresh_dir () in
  let ctx1 = Protocol.make_ctx ~data_dir:dir () in
  let sid = "restart me/σ" in
  populate ctx1 sid;
  let served = turtle_of ctx1 sid in
  check_bool "wal exists" true (Sys.file_exists (Protocol.wal_file dir sid));
  (* No close: the daemon "crashes" here.  A fresh context replays. *)
  let ctx2 = Protocol.make_ctx ~data_dir:dir () in
  let restored = Protocol.restore_sessions ctx2 in
  check_bool "session restored" true (List.mem_assoc sid restored);
  check_string "byte-identical turtle" served (turtle_of ctx2 sid);
  (* Restored sessions answer queries but refuse appends. *)
  ignore
    (expect_ok "why on restored"
       (rpc ctx2
          [ ("verb", J.Str "query"); ("session", J.Str sid);
            ("kind", J.Str "sparql");
            ("query", J.Str "SELECT ?s WHERE { ?s a prov:Entity }") ]));
  ignore
    (expect_err "commit on restored" "read_only"
       (rpc ctx2
          [ ("verb", J.Str "commit"); ("session", J.Str sid);
            ("service", J.Str "Normaliser") ]));
  let stats =
    expect_ok "stats"
      (rpc ctx2 [ ("verb", J.Str "stats"); ("session", J.Str sid) ])
  in
  check_bool "flagged restored" true (get_bool "stats" "restored" stats);
  (* ...and the global census counts it. *)
  let g = expect_ok "stats global" (rpc ctx2 [ ("verb", J.Str "stats") ]) in
  check_int "global restored count" 1 (get_int "stats" "restored" g);
  check_int "global live count" 1 (get_int "stats" "live" g)

let test_protocol_close_compacts () =
  let dir = fresh_dir () in
  let ctx1 = Protocol.make_ctx ~data_dir:dir () in
  populate ctx1 "closed";
  let served = turtle_of ctx1 "closed" in
  ignore
    (expect_ok "close"
       (rpc ctx1 [ ("verb", J.Str "close"); ("session", J.Str "closed") ]));
  (* Close compacts the log to one snapshot commit; restore still serves
     the same bytes. *)
  let _, rp = Wal.replay (Protocol.wal_file dir "closed") in
  check_int "compacted" 1 rp.Wal.rp_commits;
  let ctx2 = Protocol.make_ctx ~data_dir:dir () in
  ignore (Protocol.restore_sessions ctx2);
  check_string "restored after close" served (turtle_of ctx2 "closed")

let test_protocol_persist_opt_out () =
  let dir = fresh_dir () in
  let ctx = Protocol.make_ctx ~data_dir:dir () in
  let resp =
    expect_ok "open"
      (rpc ctx
         [ ("verb", J.Str "open"); ("session", J.Str "ephemeral");
           ("units", J.Int 1); ("persist", J.Bool false) ])
  in
  check_bool "not persisted" false (get_bool "open" "persisted" resp);
  check_bool "no wal" false
    (Sys.file_exists (Protocol.wal_file dir "ephemeral"));
  (* and without a data dir, persist is off regardless *)
  let ctx_mem = Protocol.make_ctx () in
  let resp =
    expect_ok "open"
      (rpc ctx_mem
         [ ("verb", J.Str "open"); ("session", J.Str "mem");
           ("units", J.Int 1) ])
  in
  check_bool "memory-only daemon" false (get_bool "open" "persisted" resp)

let test_restored_survive_another_restart () =
  (* Restoring, then booting again from the same dir: the logs are not
     consumed or rewritten by restore itself. *)
  let dir = fresh_dir () in
  let ctx1 = Protocol.make_ctx ~data_dir:dir () in
  populate ctx1 "twice";
  let served = turtle_of ctx1 "twice" in
  let ctx2 = Protocol.make_ctx ~data_dir:dir () in
  ignore (Protocol.restore_sessions ctx2);
  let ctx3 = Protocol.make_ctx ~data_dir:dir () in
  ignore (Protocol.restore_sessions ctx3);
  check_string "third boot still serves" served (turtle_of ctx3 "twice")

let () =
  Alcotest.run "persist"
    [ ( "wal",
        [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "missing / uncommitted" `Quick
            test_wal_missing_and_uncommitted;
          Alcotest.test_case "reset" `Quick test_wal_reset;
          Alcotest.test_case "compaction" `Quick test_wal_compact;
          Alcotest.test_case "truncate every byte" `Quick
            test_wal_truncate_every_byte;
          Alcotest.test_case "corrupt byte" `Quick test_wal_corrupt_byte ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest agreement_prop;
          QCheck_alcotest.to_alcotest crash_consistency_prop ] );
      ( "warm-restart",
        [ Alcotest.test_case "protocol restart" `Quick
            test_protocol_warm_restart;
          Alcotest.test_case "close compacts" `Quick
            test_protocol_close_compacts;
          Alcotest.test_case "persist opt-out" `Quick
            test_protocol_persist_opt_out;
          Alcotest.test_case "restart twice" `Quick
            test_restored_survive_another_restart ] ) ]
