(* The serving subsystem end to end: the JSON codec, the protocol verbs
   (open / commit / query / stats / close) over a live registry, failure
   containment (a poisoned commit fails the call, never the session),
   admission control and budgets, bit-identity between the served path
   and the offline engine, and the TCP transport itself.

   The central qcheck property is the twin-session law: for every
   backend and every injected fault, a session that receives a failing
   commit keeps a store byte-identical (Turtle) to a twin session that
   never saw the commit — and stays usable afterwards.

   Also holds the boundary regressions for the arena primitives the
   rollback path leans on (Vec.insert / Tree.truncate_to / restore at
   the i = size and empty-arena edges). *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov
open Weblab_server
open QCheck
module J = Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Every bit of mutable arena state — same notion of "bit-identical" as
   test_faults. *)
let fingerprint doc =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "size=%d root=%d\n" (Tree.size doc)
       (if Tree.has_root doc then Tree.root doc else Tree.no_node));
  for n = 0 to Tree.size doc - 1 do
    let kind =
      if Tree.is_element doc n then "e:" ^ Tree.name doc n
      else "t:" ^ Tree.text doc n
    in
    Buffer.add_string b
      (Printf.sprintf "%d %s parent=%d attrs=%s created=%d uri_time=%d kids=%s\n"
         n kind (Tree.parent doc n)
         (String.concat ","
            (List.map (fun (k, v) -> k ^ "=" ^ v) (Tree.attrs doc n)))
         (Tree.created doc n) (Tree.uri_time doc n)
         (String.concat "," (List.map string_of_int (Tree.children doc n))))
  done;
  Buffer.contents b

let full_rulebook =
  List.map
    (fun (e : Catalog.entry) ->
      (Service.name e.Catalog.service, List.map Rule_parser.parse e.Catalog.rules))
    Catalog.entries

(* ===== JSON codec ===== *)

let roundtrip v = J.parse (J.to_string v)

let test_json_roundtrip () =
  let cases =
    [ J.Null; J.Bool true; J.Bool false; J.Int 0; J.Int (-42);
      J.Int max_int; J.Float 2.5; J.Float (-0.25); J.Str "";
      J.Str "plain"; J.Str "esc \" \\ \n \t \r \x01 end";
      J.Str "unicode \xc3\xa9 \xe2\x82\xac \xf0\x9f\x90\xab";
      J.List []; J.Obj [];
      J.Obj
        [ ("a", J.List [ J.Int 1; J.Str "x"; J.Null ]);
          ("b", J.Obj [ ("nested", J.Bool false) ]) ] ]
  in
  List.iter
    (fun v ->
      check_bool (J.to_string v) true (roundtrip v = v))
    cases;
  (* integral floats keep their decimal point on the wire, so they
     round-trip as floats *)
  check_string "2.0 prints with its point" "2.0" (J.to_string (J.Float 2.));
  check_bool "2.0 roundtrips" true (roundtrip (J.Float 2.) = J.Float 2.);
  (* JSON has no NaN/Inf: they degrade to null *)
  check_bool "nan -> null" true (J.to_string (J.Float Float.nan) = "null");
  (* whitespace and escapes on the parse side *)
  check_bool "ws" true
    (J.parse " { \"a\" : [ 1 , 2.5 , true , null , \"x\\ny\" ] } "
    = J.Obj
        [ ("a",
           J.List [ J.Int 1; J.Float 2.5; J.Bool true; J.Null; J.Str "x\ny" ])
        ]);
  check_bool "\\u basic" true (J.parse "\"\\u00e9\"" = J.Str "\xc3\xa9");
  check_bool "\\u surrogate pair" true
    (J.parse "\"\\ud83d\\udc2b\"" = J.Str "\xf0\x9f\x90\xab");
  (* responses must stay single-line: the transport frames by newline *)
  check_bool "no newline in output" true
    (not (String.contains (J.to_string (J.Str "a\nb\rc")) '\n'))

let test_json_errors () =
  let bad =
    [ ""; "{"; "[1,"; "tru"; "nul"; "\"unterminated"; "\"\\q\"";
      "1 2"; "{\"a\":}"; "{\"a\" 1}"; "[1 2]"; "{1:2}"; "-"; "01x" ]
  in
  List.iter
    (fun s ->
      match J.parse_opt s with
      | Error _ -> ()
      | Ok v ->
        Alcotest.failf "parse_opt %S should fail, got %s" s (J.to_string v))
    bad;
  check_bool "parse raises Parse_error" true
    (match J.parse "{" with
    | exception J.Parse_error _ -> true
    | _ -> false)

(* print/parse identity over trees without floats (integral floats
   normalize to Int, so the generator sticks to the other constructors) *)
let json_arb =
  let open Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let leaf =
    oneof
      [ return J.Null; map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun s -> J.Str s) (string_size (int_bound 12)) ]
  in
  let tree =
    sized @@ fix (fun self n ->
        if n <= 0 then leaf
        else
          oneof
            [ leaf;
              map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
              map
                (fun kvs -> J.Obj kvs)
                (list_size (int_bound 4)
                   (pair key (self (n / 2)))) ])
  in
  make ~print:J.to_string tree

let prop_json_roundtrip =
  Test.make ~name:"JSON print/parse identity (all constructors but Float)"
    ~count:500 json_arb (fun v -> roundtrip v = v)

(* ===== protocol helpers ===== *)

let rpc ctx fields =
  match J.parse_opt (Protocol.handle_line ctx (J.to_string (J.Obj fields))) with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparsable response: %s" msg

let is_ok resp = J.bool_member "ok" resp = Some true

let expect_ok what resp =
  if not (is_ok resp) then
    Alcotest.failf "%s: expected ok, got %s" what (J.to_string resp);
  resp

let expect_err what code resp =
  check_bool (what ^ ": not ok") false (is_ok resp);
  check_string (what ^ ": error code") code
    (match J.str_member "error" resp with Some c -> c | None -> "<none>");
  resp

let get_int what field resp =
  match J.int_member field resp with
  | Some i -> i
  | None -> Alcotest.failf "%s: missing int %S in %s" what field (J.to_string resp)

let get_str what field resp =
  match J.str_member field resp with
  | Some s -> s
  | None -> Alcotest.failf "%s: missing str %S in %s" what field (J.to_string resp)

let message resp =
  match J.str_member "message" resp with Some m -> m | None -> ""

(* ===== protocol: lifecycle transcript ===== *)

let test_protocol_lifecycle () =
  let ctx = Protocol.make_ctx ~max_sessions:8 () in
  let open_resp =
    expect_ok "open"
      (rpc ctx
         [ ("verb", J.Str "open"); ("id", J.Int 7); ("session", J.Str "t1");
           ("backend", J.Str "online"); ("units", J.Int 2); ("seed", J.Int 7) ])
  in
  check_string "session echoed" "t1" (get_str "open" "session" open_resp);
  check_string "backend" "online" (get_str "open" "backend" open_resp);
  check_int "request id echoed" 7 (get_int "open" "id" open_resp);
  check_int "next_time" 1 (get_int "open" "next_time" open_resp);
  let commit =
    expect_ok "commit"
      (rpc ctx
         [ ("verb", J.Str "commit"); ("session", J.Str "t1");
           ("service", J.Str "Normaliser") ])
  in
  check_int "time" 1 (get_int "commit" "time" commit);
  check_int "attempts" 1 (get_int "commit" "attempts" commit);
  check_bool "new_nodes > 0" true (get_int "commit" "new_nodes" commit > 0);
  let sparql =
    expect_ok "sparql"
      (rpc ctx
         [ ("verb", J.Str "query"); ("session", J.Str "t1");
           ("kind", J.Str "sparql");
           ("query", J.Str "SELECT ?b ?a WHERE { ?b prov:wasDerivedFrom ?a }")
         ])
  in
  (* a derivation pair from the store, dereferenced back to graph URIs *)
  let derived, source =
    let strip term =
      (* "<...prov#resource/r8>" -> "r8" *)
      match String.rindex_opt term '/' with
      | Some i -> String.sub term (i + 1) (String.length term - i - 2)
      | None -> Alcotest.failf "unexpected term %s" term
    in
    match (J.member "columns" sparql, J.member "rows" sparql) with
    | Some (J.List cols), Some (J.List (J.List [ J.Str b; J.Str a ] :: _)) ->
      check_int "sparql columns" 2 (List.length cols);
      (strip b, strip a)
    | _ -> Alcotest.fail "sparql: expected derivation rows"
  in
  let uris_of what resp =
    match J.member "uris" resp with
    | Some (J.List l) ->
      List.map (function J.Str s -> s | _ -> Alcotest.fail what) l
    | _ -> Alcotest.failf "%s: uris not a list" what
  in
  let why =
    uris_of "why"
      (expect_ok "why"
         (rpc ctx
            [ ("verb", J.Str "query"); ("session", J.Str "t1");
              ("kind", J.Str "why"); ("uri", J.Str derived) ]))
  in
  check_bool
    (Printf.sprintf "why %s contains %s" derived source)
    true
    (List.mem source why);
  let impact =
    uris_of "impact"
      (expect_ok "impact"
         (rpc ctx
            [ ("verb", J.Str "query"); ("session", J.Str "t1");
              ("kind", J.Str "impact"); ("uri", J.Str source) ]))
  in
  check_bool
    (Printf.sprintf "impact %s contains %s" source derived)
    true
    (List.mem derived impact);
  (* unknown URIs answer with an empty list, not an error *)
  check_int "impact of a ghost URI" 0
    (List.length
       (uris_of "ghost"
          (expect_ok "impact ghost"
             (rpc ctx
                [ ("verb", J.Str "query"); ("session", J.Str "t1");
                  ("kind", J.Str "impact"); ("uri", J.Str "ghost") ]))));
  let turtle =
    get_str "turtle" "turtle"
      (expect_ok "turtle"
         (rpc ctx
            [ ("verb", J.Str "query"); ("session", J.Str "t1");
              ("kind", J.Str "turtle") ]))
  in
  check_bool "turtle mentions prov" true (contains ~sub:"prov:" turtle);
  let st =
    expect_ok "stats session"
      (rpc ctx [ ("verb", J.Str "stats"); ("session", J.Str "t1") ])
  in
  (* Every documented field of the per-session reply is pinned here: a
     missing or retyped field is a protocol break, not a formatting
     choice. *)
  check_string "stats session id" "t1" (get_str "stats" "session" st);
  check_string "stats backend" "online" (get_str "stats" "backend" st);
  check_int "commits" 1 (get_int "stats" "commits" st);
  check_int "failed" 0 (get_int "stats" "failed" st);
  check_int "next_time" 2 (get_int "stats" "next_time" st);
  check_bool "doc_nodes > 0" true (get_int "stats" "doc_nodes" st > 0);
  check_bool "resources > 0" true (get_int "stats" "resources" st > 0);
  check_bool "links >= 0" true (get_int "stats" "links" st >= 0);
  check_bool "not closed" true (J.bool_member "closed" st = Some false);
  check_bool "not restored" true (J.bool_member "restored" st = Some false);
  (let store =
     match J.member "store" st with
     | Some s -> s
     | None -> Alcotest.fail "stats: missing store census"
   in
   let triples = get_int "store" "triples" store in
   let base = get_int "store" "base" store in
   let tail = get_int "store" "tail" store in
   check_bool "store triples > 0" true (triples > 0);
   check_bool "store terms > 0" true (get_int "store" "terms" store > 0);
   check_int "store census adds up" triples (base + tail);
   check_bool "store merges >= 0" true (get_int "store" "merges" store >= 0));
  let g = expect_ok "stats global" (rpc ctx [ ("verb", J.Str "stats") ]) in
  check_int "live" 1 (get_int "stats" "live" g);
  check_int "max_sessions" 8 (get_int "stats" "max_sessions" g);
  check_int "restored count" 0 (get_int "stats" "restored" g);
  (match J.member "sessions" g with
  | Some (J.List [ J.Str "t1" ]) -> ()
  | _ -> Alcotest.fail "stats: sessions should be [\"t1\"]");
  let closed =
    expect_ok "close"
      (rpc ctx
         [ ("verb", J.Str "close"); ("session", J.Str "t1");
           ("turtle", J.Bool true) ])
  in
  check_int "closed commits" 1 (get_int "close" "commits" closed);
  check_bool "close turtle" true
    (String.length (get_str "close" "turtle" closed) > 0);
  check_int "live after close" 0
    (get_int "stats" "live" (expect_ok "stats" (rpc ctx [ ("verb", J.Str "stats") ])));
  ignore
    (expect_err "commit after close" "unknown_session"
       (rpc ctx
          [ ("verb", J.Str "commit"); ("session", J.Str "t1");
            ("service", J.Str "Normaliser") ]))

(* ===== protocol: error paths ===== *)

let test_protocol_errors () =
  let ctx = Protocol.make_ctx ~max_sessions:8 () in
  let line s =
    match J.parse_opt (Protocol.handle_line ctx s) with
    | Ok v -> v
    | Error m -> Alcotest.failf "unparsable response: %s" m
  in
  ignore (expect_err "garbage line" "parse_error" (line "this is not json"));
  ignore (expect_err "non-object" "bad_request" (line "[1,2]"));
  ignore (expect_err "no verb" "bad_request" (line "{}"));
  ignore
    (expect_err "unknown verb" "bad_request"
       (rpc ctx [ ("verb", J.Str "frobnicate") ]));
  ignore
    (expect_err "query unknown session" "unknown_session"
       (rpc ctx
          [ ("verb", J.Str "query"); ("session", J.Str "ghost");
            ("kind", J.Str "turtle") ]));
  ignore
    (expect_err "unknown backend" "unknown_backend"
       (rpc ctx [ ("verb", J.Str "open"); ("backend", J.Str "psychic") ]));
  ignore
    (expect_err "unknown scenario" "bad_request"
       (rpc ctx [ ("verb", J.Str "open"); ("scenario", J.Str "moon") ]));
  let _ =
    expect_ok "open e1"
      (rpc ctx [ ("verb", J.Str "open"); ("session", J.Str "e1") ])
  in
  ignore
    (expect_err "unknown service" "unknown_service"
       (rpc ctx
          [ ("verb", J.Str "commit"); ("session", J.Str "e1");
            ("service", J.Str "Imaginator") ]));
  ignore
    (expect_err "service+xml" "bad_request"
       (rpc ctx
          [ ("verb", J.Str "commit"); ("session", J.Str "e1");
            ("service", J.Str "Normaliser"); ("xml", J.Str "<a/>") ]));
  ignore
    (expect_err "neither service nor xml" "bad_request"
       (rpc ctx [ ("verb", J.Str "commit"); ("session", J.Str "e1") ]));
  ignore
    (expect_err "unknown query kind" "bad_request"
       (rpc ctx
          [ ("verb", J.Str "query"); ("session", J.Str "e1");
            ("kind", J.Str "when") ]));
  ignore
    (expect_err "missing uri" "bad_request"
       (rpc ctx
          [ ("verb", J.Str "query"); ("session", J.Str "e1");
            ("kind", J.Str "why") ]));
  let sparql_err =
    expect_err "sparql syntax error" "query_error"
      (rpc ctx
         [ ("verb", J.Str "query"); ("session", J.Str "e1");
           ("kind", J.Str "sparql"); ("query", J.Str "SELECT WHERE {") ])
  in
  check_bool "sparql error has message" true
    (String.length (message sparql_err) > 0);
  ignore
    (expect_err "unknown fault" "bad_request"
       (rpc ctx
          [ ("verb", J.Str "commit"); ("session", J.Str "e1");
            ("service", J.Str "Normaliser"); ("fault", J.Str "gremlin") ]));
  (* the session survived the whole gauntlet *)
  let st =
    expect_ok "stats after errors"
      (rpc ctx [ ("verb", J.Str "stats"); ("session", J.Str "e1") ])
  in
  check_int "no commits burned by bad requests" 0 (get_int "st" "failed" st)

(* ===== protocol: admission control ===== *)

let test_admission () =
  let ctx = Protocol.make_ctx ~max_sessions:2 () in
  let open_s id =
    rpc ctx [ ("verb", J.Str "open"); ("session", J.Str id) ]
  in
  ignore (expect_ok "open a" (open_s "a"));
  ignore (expect_ok "open b" (open_s "b"));
  ignore (expect_err "third open rejected" "admission_rejected" (open_s "c"));
  ignore (expect_err "duplicate id" "already_open" (open_s "b"));
  ignore (expect_ok "close a" (rpc ctx [ ("verb", J.Str "close"); ("session", J.Str "a") ]));
  ignore (expect_ok "slot freed" (open_s "c"));
  let g = expect_ok "stats" (rpc ctx [ ("verb", J.Str "stats") ]) in
  check_int "live" 2 (get_int "stats" "live" g)

(* ===== protocol: budgets ===== *)

let test_budgets () =
  let ctx = Protocol.make_ctx ~max_sessions:8 () in
  ignore
    (expect_ok "open"
       (rpc ctx
          [ ("verb", J.Str "open"); ("session", J.Str "b1");
            ("units", J.Int 2);
            ("budgets", J.Obj [ ("max_commits", J.Int 2) ]) ]));
  let commit svc extra =
    rpc ctx
      ([ ("verb", J.Str "commit"); ("session", J.Str "b1");
         ("service", J.Str svc) ]
      @ extra)
  in
  ignore (expect_ok "commit 1" (commit "Normaliser" []));
  (* a failed commit counts against the session budget too *)
  ignore
    (expect_err "commit 2 (faulted)" "commit_failed"
       (commit "LanguageExtractor" [ ("fault", J.Str "crash") ]));
  let exhausted =
    expect_err "commit 3" "budget_exceeded" (commit "LanguageExtractor" [])
  in
  check_bool "budget message" true (contains ~sub:"2" (message exhausted));
  (* queries stay up after budget exhaustion *)
  ignore
    (expect_ok "query after exhaustion"
       (rpc ctx
          [ ("verb", J.Str "query"); ("session", J.Str "b1");
            ("kind", J.Str "turtle") ]));
  (* per-call output budget: fails the call, not the session *)
  ignore
    (expect_ok "open b2"
       (rpc ctx
          [ ("verb", J.Str "open"); ("session", J.Str "b2");
            ("units", J.Int 2);
            ("budgets", J.Obj [ ("max_new_nodes", J.Int 0) ]) ]));
  let failed =
    expect_err "output budget" "commit_failed"
      (rpc ctx
         [ ("verb", J.Str "commit"); ("session", J.Str "b2");
           ("service", J.Str "Normaliser") ])
  in
  check_int "burned at time 1" 1 (get_int "failed" "time" failed);
  let st =
    expect_ok "stats b2" (rpc ctx [ ("verb", J.Str "stats"); ("session", J.Str "b2") ])
  in
  check_int "b2 commits" 0 (get_int "st" "commits" st);
  check_int "b2 failed" 1 (get_int "st" "failed" st);
  check_int "b2 next_time burned" 2 (get_int "st" "next_time" st)

(* ===== protocol: fault containment and client XML ===== *)

let test_fault_containment () =
  let ctx = Protocol.make_ctx ~max_sessions:8 () in
  ignore
    (expect_ok "open"
       (rpc ctx
          [ ("verb", J.Str "open"); ("session", J.Str "f1");
            ("units", J.Int 2) ]));
  let commit extra =
    rpc ctx ([ ("verb", J.Str "commit"); ("session", J.Str "f1") ] @ extra)
  in
  ignore (expect_ok "commit ok" (commit [ ("service", J.Str "Normaliser") ]));
  let crash =
    expect_err "crash commit" "commit_failed"
      (commit
         [ ("service", J.Str "LanguageExtractor"); ("fault", J.Str "crash") ])
  in
  check_int "crash time" 2 (get_int "crash" "time" crash);
  check_int "crash attempts" 1 (get_int "crash" "attempts" crash);
  (* garbage client XML exercises the total parse-error rendering *)
  let garbage =
    expect_err "garbage xml" "commit_failed"
      (commit [ ("xml", J.Str "<Resource id=\"r1\"") ])
  in
  check_bool "parse error surfaced" true
    (contains ~sub:"XML parse error" (message garbage));
  (* the session took two failures and keeps committing *)
  let c =
    expect_ok "commit after failures"
      (commit [ ("service", J.Str "LanguageExtractor") ])
  in
  check_int "time moved past burned stamps" 4 (get_int "commit" "time" c);
  let st =
    expect_ok "stats" (rpc ctx [ ("verb", J.Str "stats"); ("session", J.Str "f1") ])
  in
  check_int "commits" 2 (get_int "st" "commits" st);
  check_int "failed" 2 (get_int "st" "failed" st)

(* ===== served path = offline engine, per backend ===== *)

let test_serve_matches_offline () =
  let services = Workload.standard_pipeline () in
  List.iter
    (fun kind ->
      let bname = Strategy.kind_to_string kind in
      let ctx = Protocol.make_ctx ~max_sessions:4 () in
      ignore
        (expect_ok ("open " ^ bname)
           (rpc ctx
              [ ("verb", J.Str "open"); ("session", J.Str "s");
                ("backend", J.Str bname); ("units", J.Int 2);
                ("seed", J.Int 11) ]));
      List.iter
        (fun svc ->
          ignore
            (expect_ok
               ("commit " ^ Service.name svc)
               (rpc ctx
                  [ ("verb", J.Str "commit"); ("session", J.Str "s");
                    ("service", J.Str (Service.name svc)) ])))
        services;
      let served =
        get_str "close" "turtle"
          (expect_ok "close"
             (rpc ctx
                [ ("verb", J.Str "close"); ("session", J.Str "s");
                  ("turtle", J.Bool true) ]))
      in
      let doc = Workload.make_document ~units:2 ~seed:11 () in
      let exec, g =
        Engine.run_with_strategy ~jobs:1 kind doc services full_rulebook
      in
      let offline = Engine.to_turtle ~trace:exec.Engine.trace g in
      check_string (bname ^ ": served Turtle = offline Turtle") offline served)
    Strategy.all

(* ===== the twin-session law (qcheck) ===== *)

(* Faults whose injected failure is unconditional; Stall only fails
   under a max_call_s budget and gets its own deterministic test. *)
let hard_faults =
  [ Faulty.Crash; Faulty.Garbage_xml; Faulty.Mutate_committed;
    Faulty.Duplicate_uri ]

let store_turtle s = Prov_export.to_turtle (Session.graph s)

let run_twin ~kind ~fault ~seed ~prefix_len =
  let services = Workload.standard_pipeline ~extended:true () in
  let prefix = List.filteri (fun i _ -> i < prefix_len) services in
  let target = List.nth services prefix_len in
  let mk id =
    Session.create ~id ~backend:kind ~jobs:1
      ~doc:(Workload.make_document ~units:2 ~seed ())
      full_rulebook
  in
  let a = mk "twin-a" and b = mk "twin-b" in
  List.iter
    (fun svc ->
      match (Session.commit a svc, Session.commit b svc) with
      | Ok _, Ok _ -> ()
      | _ -> Test.fail_report "prefix commit failed")
    prefix;
  (* A takes the poisoned commit; B never sees it *)
  (match Session.commit a (Faulty.with_fault ~stall_s:0.001 fault target) with
  | Error (Session.Call_failed _) -> ()
  | Ok _ -> Test.fail_report "faulted commit committed"
  | Error _ -> Test.fail_report "faulted commit: wrong error");
  let identical = String.equal (store_turtle a) (store_turtle b) in
  (* ... and A is not poisoned: the clean call still commits *)
  let usable =
    match Session.commit a target with Ok _ -> true | Error _ -> false
  in
  ignore (Session.close a);
  ignore (Session.close b);
  identical && usable

let prop_faulted_commit_leaves_store_identical =
  Test.make
    ~name:
      "twin sessions: a failed injected-fault commit leaves the store \
       byte-identical (Turtle) to a session that never saw it, for all \
       five backends x four unconditional faults"
    ~count:8
    (pair (int_bound 10_000) (int_bound 3))
    (fun (seed, prefix_len) ->
      List.for_all
        (fun kind ->
          List.for_all
            (fun fault -> run_twin ~kind ~fault ~seed ~prefix_len)
            hard_faults)
        Strategy.all)

(* Stall, deterministically: it only fails when a max_call_s budget
   trips, so give the session one and make the stall exceed it. *)
let test_stall_budget_containment () =
  List.iter
    (fun kind ->
      let budgets =
        { Session.default_budgets with
          policy =
            { Session.default_budgets.Session.policy with
              max_call_s = Some 0.005 } }
      in
      let mk id =
        Session.create ~id ~backend:kind ~jobs:1 ~budgets
          ~doc:(Workload.make_document ~units:2 ~seed:3 ())
          full_rulebook
      in
      let a = mk "stall-a" and b = mk "stall-b" in
      let svc = List.hd (Workload.standard_pipeline ()) in
      (match Session.commit a (Faulty.with_fault ~stall_s:0.05 Faulty.Stall svc) with
      | Error (Session.Call_failed { reason; _ }) ->
        check_bool "budget tripped" true (contains ~sub:"budget" reason)
      | _ -> Alcotest.fail "stalled call should fail under max_call_s");
      check_string
        (Strategy.kind_to_string kind ^ ": store untouched by stall")
        (store_turtle b) (store_turtle a);
      ignore (Session.close a);
      ignore (Session.close b))
    Strategy.all

(* ===== stepwise orchestration = one-shot execution ===== *)

let test_step_equals_execute () =
  let services = Workload.standard_pipeline ~extended:true () in
  let doc1 = Workload.make_document ~units:2 ~seed:5 () in
  let trace1 = Orchestrator.execute doc1 services in
  let doc2 = Workload.make_document ~units:2 ~seed:5 () in
  let s = Orchestrator.start doc2 in
  List.iter
    (fun svc ->
      match Orchestrator.step s svc with
      | Orchestrator.Committed _ -> ()
      | Orchestrator.Step_failed { reason; _ } ->
        Alcotest.failf "step failed: %s" reason)
    services;
  check_string "stepwise doc = one-shot doc" (fingerprint doc1)
    (fingerprint doc2);
  check_string "stepwise trace = one-shot trace" (Trace.source_table trace1)
    (Trace.source_table (Orchestrator.session_trace s));
  check_int "next_time past the pipeline"
    (List.length services + 1)
    (Orchestrator.next_time s)

(* ===== arena boundary regressions ===== *)

let expect_invalid what sub f =
  match f () with
  | exception Invalid_argument msg ->
    check_bool
      (Printf.sprintf "%s: message %S mentions %S" what msg sub)
      true (contains ~sub msg)
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test_vec_boundaries () =
  let v = Vec.create ~dummy:(-1) in
  (* insert at i = size is a legal append, including on the empty vector *)
  Vec.insert v 0 10;
  Vec.insert v 1 11;
  Vec.insert v 1 12;
  check_bool "insert order" true (Vec.to_list v = [ 10; 12; 11 ]);
  expect_invalid "insert past size" "Vec.insert" (fun () -> Vec.insert v 4 13);
  expect_invalid "insert negative" "Vec.insert" (fun () -> Vec.insert v (-1) 13);
  expect_invalid "get at size" "Vec.get" (fun () -> Vec.get v 3);
  expect_invalid "set at size" "Vec.set" (fun () -> Vec.set v 3 0);
  expect_invalid "truncate past size" "Vec.truncate" (fun () -> Vec.truncate v 4);
  (* the message carries both the index and the size *)
  (match Vec.get v 3 with
  | exception Invalid_argument msg ->
    check_bool "index and size in message" true
      (contains ~sub:"index 3" msg && contains ~sub:"(size 3)" msg)
  | _ -> Alcotest.fail "expected Invalid_argument");
  Vec.truncate v 3;
  check_int "truncate at size is a no-op" 3 (Vec.length v);
  Vec.truncate v 0;
  check_int "truncate to empty" 0 (Vec.length v);
  expect_invalid "get on empty" "Vec.get" (fun () -> Vec.get v 0)

let test_tree_boundaries () =
  (* empty arena *)
  let doc = Tree.create () in
  let g0 = Tree.generation doc in
  Tree.truncate_to doc 0;
  check_int "truncate_to size on empty arena: no generation bump" g0
    (Tree.generation doc);
  expect_invalid "truncate_to negative" "Tree.truncate_to" (fun () ->
      Tree.truncate_to doc (-1));
  expect_invalid "truncate_to past size" "Tree.truncate_to" (fun () ->
      Tree.truncate_to doc 1);
  let ck_empty = Tree.checkpoint doc in
  let root = Tree.new_element doc ~parent:Tree.no_node "Resource" in
  Tree.set_uri doc root "r1";
  Tree.restore doc ck_empty;
  check_int "restore to empty arena" 0 (Tree.size doc);
  check_bool "no root after restore" false (Tree.has_root doc);
  (* promotion rollback: restore must rewind both timestamp columns *)
  let doc = Workload.make_document ~units:1 ~seed:1 () in
  let before = fingerprint doc in
  let ck = Tree.checkpoint doc in
  let root = Tree.root doc in
  let n = Tree.new_element doc ~parent:root "Extra" in
  Tree.set_uri doc n "x9";
  Tree.set_uri_time doc n 5;
  Tree.set_attr doc root "touched" "yes";
  Tree.restore doc ck;
  check_string "restore is bit-identical" before (fingerprint doc);
  (* truncate_to at size never invalidates size-stamped caches ... *)
  let idx = Index.build doc in
  Tree.truncate_to doc (Tree.size doc);
  check_bool "index extends over a no-op truncate" true
    (Index.extend idx doc ~promoted:[]);
  (* ... but a real shrink bumps the generation and the index refuses *)
  let idx = Index.build doc in
  let g1 = Tree.generation doc in
  let sz = Tree.size doc in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "Tmp");
  Tree.truncate_to doc sz;
  check_bool "shrink bumps generation" true (Tree.generation doc > g1);
  check_bool "index refuses after shrink" false
    (Index.extend idx doc ~promoted:[])

(* ===== metrics verb and slow-query log ===== *)

(* The recorder is process-global; this test turns it on (Full, with a
   bounded span ring — the daemon configuration) and restores Off so the
   rest of the suite stays uninstrumented. *)
let with_recorder f =
  let module T = Weblab_obs.Telemetry in
  T.set_level T.Full;
  T.set_retention (Some 4096);
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.set_retention None;
      T.set_level T.Off;
      T.reset ())
    f

let test_metrics_verb () =
  with_recorder (fun () ->
      let ctx = Protocol.make_ctx ~max_sessions:8 () in
      ignore
        (expect_ok "open"
           (rpc ctx
              [ ("verb", J.Str "open"); ("session", J.Str "m1");
                ("units", J.Int 2); ("seed", J.Int 5) ]));
      List.iter
        (fun svc ->
          ignore
            (expect_ok ("commit " ^ svc)
               (rpc ctx
                  [ ("verb", J.Str "commit"); ("session", J.Str "m1");
                    ("service", J.Str svc) ])))
        [ "Normaliser"; "LanguageExtractor"; "Translator" ];
      ignore
        (expect_ok "query"
           (rpc ctx
              [ ("verb", J.Str "query"); ("session", J.Str "m1");
                ("kind", J.Str "turtle") ]));
      let m = expect_ok "metrics" (rpc ctx [ ("verb", J.Str "metrics") ]) in
      (match J.member "uptime_us" m with
      | Some (J.Float u) -> check_bool "uptime > 0" true (u > 0.)
      | Some (J.Int u) -> check_bool "uptime > 0" true (u > 0)
      | _ -> Alcotest.fail "metrics: no uptime_us");
      check_string "level" "full" (get_str "metrics" "level" m);
      (* Per-verb histogram counts equal the requests driven above; the
         metrics request itself is observed after its reply is built, so
         it is absent from its own snapshot. *)
      let hist_count verb =
        match J.member "histograms" m with
        | Some (J.Obj hs) -> (
          match List.assoc_opt ("serve.verb." ^ verb) hs with
          | Some h -> get_int "hist" "count" h
          | None -> 0)
        | _ -> Alcotest.fail "metrics: no histograms"
      in
      check_int "open histogram count" 1 (hist_count "open");
      check_int "commit histogram count" 3 (hist_count "commit");
      check_int "query histogram count" 1 (hist_count "query");
      check_int "metrics not in its own snapshot" 0 (hist_count "metrics");
      (match J.member "histograms" m with
      | Some (J.Obj hs) -> (
        match List.assoc_opt "serve.verb.commit" hs with
        | Some h ->
          check_bool "commit p50 <= p99" true
            (get_int "hist" "p50_us" h <= get_int "hist" "p99_us" h);
          (* quantiles report bucket upper bounds, so p99 may sit up to
             one bucket width (<= 25%) above the exact max *)
          check_bool "commit p99 within a bucket of max" true
            (let mx = get_int "hist" "max_us" h in
             get_int "hist" "p99_us" h <= mx + (mx / 4) + 1)
        | None -> Alcotest.fail "metrics: no commit histogram")
      | _ -> Alcotest.fail "metrics: no histograms");
      (match J.member "gauges" m with
      | Some (J.Obj gs) ->
        check_bool "sessions.active gauge reads 1" true
          (List.assoc_opt "serve.sessions.active" gs = Some (J.Int 1))
      | _ -> Alcotest.fail "metrics: no gauges");
      (match J.member "spans" m with
      | Some sp ->
        check_bool "spans buffered > 0" true (get_int "spans" "buffered" sp > 0);
        check_int "no drops under the cap" 0 (get_int "spans" "dropped" sp)
      | None -> Alcotest.fail "metrics: no spans");
      (* Per-request tracing: a client-tagged request's spans come back
         under its id. *)
      ignore
        (expect_ok "tagged query"
           (rpc ctx
              [ ("verb", J.Str "query"); ("session", J.Str "m1");
                ("kind", J.Str "why"); ("uri", J.Str "mu1");
                ("id", J.Str "trace-me") ]));
      let tr =
        expect_ok "trace"
          (rpc ctx [ ("verb", J.Str "metrics"); ("trace", J.Str "trace-me") ])
      in
      (match J.member "spans" tr with
      | Some (J.List (_ :: _ as spans)) ->
        check_bool "every span carries the request id" true
          (List.for_all
             (fun s ->
               match J.member "args" s with
               | Some args -> J.str_member "req" args = Some "trace-me"
               | None -> false)
             spans)
      | _ -> Alcotest.failf "trace: no spans for the tagged request: %s"
               (J.to_string tr));
      (* an unknown id answers with an empty list, not an error *)
      (match
         J.member "spans"
           (expect_ok "trace ghost"
              (rpc ctx [ ("verb", J.Str "metrics"); ("trace", J.Str "ghost") ]))
       with
      | Some (J.List []) -> ()
      | _ -> Alcotest.fail "trace: ghost id should yield zero spans");
      (* The Prometheus exposition renders the same snapshot. *)
      let expo = Weblab_obs.Sinks.exposition () in
      check_bool "exposition: verb histogram" true
        (contains ~sub:"weblab_serve_verb_commit_us_count" expo);
      check_bool "exposition: active-sessions gauge" true
        (contains ~sub:"weblab_serve_sessions_active 1" expo);
      check_bool "exposition: uptime" true
        (contains ~sub:"weblab_uptime_seconds" expo))

let test_slow_query_log () =
  with_recorder (fun () ->
      let path = Filename.temp_file "weblab_slow" ".jsonl" in
      (* Threshold 0: every request is "slow", so the log observably
         works without a contrived stall. *)
      let ctx = Protocol.make_ctx ~max_sessions:8 ~slow_log_path:path ~slow_ms:0. () in
      ignore
        (expect_ok "open"
           (rpc ctx
              [ ("verb", J.Str "open"); ("session", J.Str "s1");
                ("units", J.Int 2); ("id", J.Str "rq1") ]));
      ignore
        (expect_ok "commit"
           (rpc ctx
              [ ("verb", J.Str "commit"); ("session", J.Str "s1");
                ("service", J.Str "Normaliser") ]));
      ignore
        (expect_err "bad verb is logged too" "bad_request"
           (rpc ctx [ ("verb", J.Str "query"); ("session", J.Str "s1");
                      ("kind", J.Str "nope") ]));
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Sys.remove path;
      let lines = List.rev !lines in
      check_int "one record per request" 3 (List.length lines);
      let parsed =
        List.map
          (fun l ->
            match J.parse_opt l with
            | Ok v -> v
            | Error m -> Alcotest.failf "slow log line unparsable (%s): %s" m l)
          lines
      in
      (match parsed with
      | [ o; c; q ] ->
        check_string "open verb" "open" (get_str "slow" "verb" o);
        check_string "open req id" "rq1" (get_str "slow" "req" o);
        check_bool "open ok" true (J.bool_member "ok" o = Some true);
        check_string "commit verb" "commit" (get_str "slow" "verb" c);
        check_string "commit session" "s1" (get_str "slow" "session" c);
        check_bool "commit carries new_nodes" true
          (get_int "slow" "new_nodes" c > 0);
        check_bool "commit carries a duration" true
          (match J.member "dur_us" c with
          | Some (J.Int d) -> d >= 0
          | Some (J.Float d) -> d >= 0.
          | _ -> false);
        check_bool "failed query logged not ok" true
          (J.bool_member "ok" q = Some false)
      | _ -> Alcotest.fail "slow log: expected exactly three records");
      check_int "serve.slow_queries counts them" 3
        (match
           List.assoc_opt "serve.slow_queries"
             (Weblab_obs.Telemetry.counters ())
         with
        | Some n -> n
        | None -> 0))

(* ===== TCP transport ===== *)

let test_tcp_roundtrip () =
  let ctx = Protocol.make_ctx ~max_sessions:4 () in
  let srv = Server.start ~port:0 ctx in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ask fields =
    output_string oc (J.to_string (J.Obj fields));
    output_char oc '\n';
    flush oc;
    match J.parse_opt (input_line ic) with
    | Ok v -> v
    | Error m -> Alcotest.failf "bad wire response: %s" m
  in
  let opened =
    expect_ok "tcp open"
      (ask [ ("verb", J.Str "open"); ("units", J.Int 2) ])
  in
  let sid = get_str "open" "session" opened in
  ignore
    (expect_ok "tcp commit"
       (ask
          [ ("verb", J.Str "commit"); ("session", J.Str sid);
            ("service", J.Str "Normaliser") ]));
  (* blank lines are ignored, a bad line answers without killing the
     connection *)
  output_string oc "\n  \nnot json\n";
  flush oc;
  ignore (expect_err "tcp parse error" "parse_error"
            (match J.parse_opt (input_line ic) with
            | Ok v -> v
            | Error m -> Alcotest.failf "bad wire response: %s" m));
  ignore
    (expect_ok "tcp close"
       (ask [ ("verb", J.Str "close"); ("session", J.Str sid) ]));
  Unix.close fd;
  (* stop terminates: joins the accept loop and every connection *)
  Server.stop srv;
  Server.stop srv (* idempotent *)

(* ===== registration ===== *)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [ ("json",
       [ Alcotest.test_case "roundtrip and escapes" `Quick test_json_roundtrip;
         Alcotest.test_case "malformed inputs" `Quick test_json_errors ]
       @ to_alcotest [ prop_json_roundtrip ]);
      ("protocol",
       [ Alcotest.test_case "lifecycle transcript" `Quick
           test_protocol_lifecycle;
         Alcotest.test_case "error paths" `Quick test_protocol_errors;
         Alcotest.test_case "admission control" `Quick test_admission;
         Alcotest.test_case "budgets" `Quick test_budgets;
         Alcotest.test_case "fault containment" `Quick test_fault_containment
       ]);
      ("equivalence",
       [ Alcotest.test_case "served Turtle = offline Turtle (all backends)"
           `Quick test_serve_matches_offline;
         Alcotest.test_case "stepwise = one-shot execution" `Quick
           test_step_equals_execute ]);
      ("containment",
       to_alcotest [ prop_faulted_commit_leaves_store_identical ]
       @ [ Alcotest.test_case "stall under max_call_s (all backends)" `Quick
             test_stall_budget_containment ]);
      ("arena",
       [ Alcotest.test_case "Vec boundaries" `Quick test_vec_boundaries;
         Alcotest.test_case "Tree boundaries" `Quick test_tree_boundaries ]);
      ("observability",
       [ Alcotest.test_case "metrics verb and per-request tracing" `Quick
           test_metrics_verb;
         Alcotest.test_case "slow-query log" `Quick test_slow_query_log ]);
      ("transport",
       [ Alcotest.test_case "TCP roundtrip and shutdown" `Quick
           test_tcp_roundtrip ])
    ]
