(* The document index and the join/evaluation fast paths it enables.

   Unit tests pin the index structures themselves (label/attribute lists
   in document order, pre/post-order intervals, snapshot invalidation);
   property tests are differential: the indexed evaluator against the
   traversal evaluator, the hash join against the nested-loop join, and
   the full Rewrite strategy against Replay on random workflows — the
   fast paths must be invisible except in time. *)

open Weblab_xml
open Weblab_workflow
open Weblab_prov
open QCheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_nodes = Alcotest.(check (list int))

let sample_doc () =
  Xml_parser.parse
    "<Resource id=\"r1\"><MediaUnit id=\"mu1\" s=\"Loader\" t=\"1\">\
     <Annotation s=\"Tagger\" t=\"2\">hi</Annotation>\
     <Annotation s=\"Tagger\" t=\"3\"><Language>fr</Language></Annotation>\
     </MediaUnit><MediaUnit id=\"mu2\"><Annotation s=\"Other\" t=\"2\"/>\
     </MediaUnit></Resource>"

(* ---------- unit: index structures ---------- *)

let test_by_label () =
  let doc = sample_doc () in
  let idx = Index.build doc in
  let names ns = List.map (Tree.name doc) ns in
  check_nodes "labels in document order"
    (Tree.descendant_or_self doc (Tree.root doc)
    |> List.filter (fun n -> Tree.is_element doc n && Tree.name doc n = "Annotation"))
    (Index.nodes_with_label idx "Annotation");
  check_int "label_count" 3 (Index.label_count idx "Annotation");
  check_int "absent label" 0 (Index.label_count idx "Nope");
  Alcotest.(check (list string))
    "elements covers every element, document order"
    [ "Resource"; "MediaUnit"; "Annotation"; "Annotation"; "Language";
      "MediaUnit"; "Annotation" ]
    (names (Index.elements idx))

let test_by_attr () =
  let doc = sample_doc () in
  let idx = Index.build doc in
  check_int "s=Tagger" 2 (List.length (Index.nodes_with_attr idx "s" "Tagger"));
  check_int "t=2" 2 (List.length (Index.nodes_with_attr idx "t" "2"));
  check_int "unindexed attr is not answered" 0
    (List.length (Index.nodes_with_attr idx "lang" "fr"));
  check_int "some_attr id" 3 (List.length (Index.nodes_with_some_attr idx "id"));
  check_bool "resource = find_resource" true
    (Index.resource idx "mu2" = Tree.find_resource doc "mu2");
  check_bool "missing resource" true (Index.resource idx "zz" = None)

let test_intervals () =
  let doc = sample_doc () in
  let idx = Index.build doc in
  let root = Tree.root doc in
  Tree.iter_subtree doc root (fun n ->
      Tree.iter_subtree doc root (fun m ->
          check_bool
            (Printf.sprintf "strictly_below %d %d" n m)
            (Tree.is_ancestor doc ~ancestor:n m)
            (Index.strictly_below idx ~ancestor:n m);
          check_bool
            (Printf.sprintf "below_or_self %d %d" n m)
            (n = m || Tree.is_ancestor doc ~ancestor:n m)
            (Index.below_or_self idx ~ancestor:n m)));
  Tree.iter_subtree doc root (fun n ->
      check_int
        (Printf.sprintf "subtree_size %d" n)
        (List.length (Tree.descendant_or_self doc n))
        (Index.subtree_size idx n))

let test_snapshot_invalidation () =
  let doc = sample_doc () in
  let idx1 = Index.for_tree doc in
  check_bool "cached while unchanged" true (Index.for_tree doc == idx1);
  check_bool "valid_for" true (Index.valid_for idx1 doc);
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "Extra");
  check_bool "append invalidates" false (Index.valid_for idx1 doc);
  let idx2 = Index.for_tree doc in
  check_bool "rebuilt" true (idx2 != idx1);
  check_int "new node covered" 1 (Index.label_count idx2 "Extra")

(* ---------- generators (documents with provenance-shaped attributes) ---------- *)

let gen_name = Gen.oneofl [ "A"; "B"; "C"; "D" ]

(* Attribute pool biased towards the indexed provenance attributes so the
   narrowing fast path actually fires. *)
let gen_attr =
  Gen.oneofl
    [ ("id", "r1"); ("id", "r2"); ("id", "r3"); ("s", "Svc1"); ("s", "Svc2");
      ("t", "1"); ("t", "2"); ("k", "x"); ("k", "y") ]

let rec gen_fragment doc parent depth st =
  let name = gen_name st in
  let attrs =
    List.init (Gen.int_bound 2 st) (fun _ -> gen_attr st)
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  let n = Tree.new_element doc ~parent name ~attrs in
  if Gen.bool st then ignore (Tree.new_text doc ~parent:n "txt");
  if depth > 0 then
    for _ = 1 to Gen.int_bound 2 st do
      ignore (gen_fragment doc n (depth - 1) st)
    done

let gen_doc : Tree.t Gen.t =
 fun st ->
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node "R" ~attrs:[ ("id", "root") ] in
  for _ = 1 to 1 + Gen.int_bound 3 st do
    gen_fragment doc root 2 st
  done;
  doc

let arb_doc = make ~print:(fun d -> Printer.to_string ~indent:true d) gen_doc

(* Patterns exercising every candidate-generation path: descendant and
   child axes, name and wildcard tests, indexed-attribute equalities in
   every predicate slot (so narrowing must prove position-insensitivity),
   positional predicates, binds, and nested paths. *)
let gen_pred ~var_counter st =
  let open Weblab_xpath.Ast in
  match Gen.int_bound 7 st with
  | 0 -> Index (1 + Gen.int_bound 2 st)
  | 1 -> Exists_attr (fst (gen_attr st))
  | 2 ->
    incr var_counter;
    Bind (Printf.sprintf "x%d" !var_counter, Attr (fst (gen_attr st)))
  | 3 | 4 ->
    let a, v = gen_attr st in
    if Gen.bool st then Cmp (Attr a, Eq, Lit v) else Cmp (Lit v, Eq, Attr a)
  | 5 -> Cmp (Position, Eq, Last)
  | 6 -> Cmp (Attr "t", Eq, Num (1 + Gen.int_bound 2 st))
  | _ ->
    Exists_path [ { raxis = Child; rtest = Name (gen_name st) } ]

let gen_pattern : Weblab_xpath.Ast.pattern Gen.t =
 fun st ->
  let open Weblab_xpath.Ast in
  let var_counter = ref 0 in
  List.init
    (1 + Gen.int_bound 2 st)
    (fun _ ->
      let axis =
        match Gen.int_bound 5 st with
        | 0 | 1 -> Descendant
        | 2 | 3 -> Child
        | 4 -> Descendant_or_self
        | _ -> Self
      in
      let test = if Gen.int_bound 4 st = 0 then Any else Name (gen_name st) in
      { axis; test;
        preds = List.init (Gen.int_bound 3 st) (fun _ -> gen_pred ~var_counter st) })

let arb_pattern = make ~print:Weblab_xpath.Print.pattern_to_string gen_pattern

let count = 200

(* ---------- property: indexed evaluation ≡ traversal evaluation ---------- *)

let rows_exactly_equal a b =
  let open Weblab_relalg in
  Table.columns a = Table.columns b
  && List.length (Table.rows a) = List.length (Table.rows b)
  && List.for_all2 (fun ra rb -> Array.for_all2 Value.equal ra rb)
       (Table.rows a) (Table.rows b)

let prop_indexed_eval_equals_unindexed =
  Test.make ~name:"Eval.eval (indexed) ≡ Eval.eval_unindexed" ~count
    (pair arb_doc arb_pattern)
    (fun (doc, pat) ->
      List.for_all
        (fun require_uri ->
          rows_exactly_equal
            (Weblab_xpath.Eval.eval ~require_uri doc pat)
            (Weblab_xpath.Eval.eval_unindexed ~require_uri doc pat))
        [ true; false ])

(* The same under a visibility guard (the Rewrite strategy's situation):
   the index is built over the whole arena but must honor the guard. *)
let prop_indexed_eval_guarded =
  Test.make ~name:"indexed ≡ unindexed under visibility guards" ~count
    (triple arb_doc arb_pattern (make Gen.(int_bound 1000)))
    (fun (doc, pat, salt) ->
      (* An arbitrary but deterministic node filter. *)
      let visible n = (n * 2654435761 + salt) land 7 <> 0 in
      let guards = { Weblab_xpath.Eval.visible; env = [] } in
      rows_exactly_equal
        (Weblab_xpath.Eval.eval ~require_uri:false ~guards doc pat)
        (Weblab_xpath.Eval.eval_unindexed ~require_uri:false ~guards doc pat))

(* A prebuilt index for the *wrong* (smaller) snapshot must be ignored,
   not trusted. *)
let prop_stale_index_ignored =
  Test.make ~name:"stale index is never trusted" ~count:50
    (pair arb_doc arb_pattern)
    (fun (doc, pat) ->
      let stale = Index.build doc in
      ignore (Tree.new_element doc ~parent:(Tree.root doc) "A" ~attrs:[ ("s", "Svc1") ]);
      rows_exactly_equal
        (Weblab_xpath.Eval.eval ~require_uri:false ~index:stale doc pat)
        (Weblab_xpath.Eval.eval_unindexed ~require_uri:false doc pat))

(* ---------- property: hash join ≡ nested-loop join ---------- *)

(* Small value pools force duplicate join keys; occasional empty tables
   and disjoint schemas cover the degenerate shapes. *)
let gen_join_pair : (Weblab_relalg.Table.t * Weblab_relalg.Table.t) Gen.t =
 fun st ->
  let open Weblab_relalg in
  let cols_a, cols_b =
    match Gen.int_bound 3 st with
    | 0 -> ([ "a"; "k" ], [ "k"; "b" ])   (* one shared column *)
    | 1 -> ([ "a"; "k"; "l" ], [ "k"; "l"; "b" ])  (* two shared *)
    | 2 -> ([ "a" ], [ "b" ])             (* cross product *)
    | _ -> ([ "k" ], [ "k" ])             (* all shared *)
  in
  let value () =
    match Gen.int_bound 3 st with
    | 0 -> Value.Str (Gen.oneofl [ "u"; "v"; "5" ] st)
    | 1 -> Value.Int (Gen.int_bound 5 st)
    | _ -> Value.Node (Gen.int_bound 3 st)
  in
  let table cols =
    let t = Table.create cols in
    for _ = 1 to Gen.int_bound 8 st do   (* int_bound includes 0: empty tables *)
      Table.add_row t (Array.of_list (List.map (fun _ -> value ()) cols))
    done;
    t
  in
  (table cols_a, table cols_b)

let arb_join_pair =
  make
    ~print:(fun (a, b) ->
      Weblab_relalg.Table.to_string a ^ "\n⋈\n" ^ Weblab_relalg.Table.to_string b)
    gen_join_pair

let prop_hash_join_equals_nested_loop =
  Test.make ~name:"hash_join ≡ nested_loop_join (exact row sequence)" ~count
    arb_join_pair
    (fun (a, b) ->
      let open Weblab_relalg in
      let h = Table.hash_join a b and n = Table.nested_loop_join a b in
      Table.columns h = Table.columns n
      && Table.rows h = Table.rows n)

let prop_hash_join_empty =
  Test.make ~name:"join with an empty relation is empty" ~count:50 arb_join_pair
    (fun (a, _) ->
      let open Weblab_relalg in
      let empty = Table.create (Table.columns a) in
      Table.cardinality (Table.hash_join a empty) = 0
      && Table.cardinality (Table.hash_join empty a) = 0)

(* ---------- property: the indexed Rewrite strategy end to end ---------- *)

(* Random append-only workflows (as in test_props, with provenance-shaped
   attributes): the Rewrite strategy — indexed evaluation, memoized
   source/target tables, hash joins — must produce a graph identical in
   every component to Replay's. *)
(* Workflow documents need globally unique @id values (the orchestrator
   enforces URI uniqueness), so fragments appended during a run draw ids
   from a counter instead of the small pool above. *)
let uid = ref 0

let rec gen_wf_fragment doc parent depth st =
  let attrs =
    (if Gen.bool st then begin
       incr uid;
       [ ("id", Printf.sprintf "u%d" !uid) ]
     end
     else [])
    @ (if Gen.bool st then [ ("k", Gen.oneofl [ "x"; "y" ] st) ] else [])
  in
  let n = Tree.new_element doc ~parent (gen_name st) ~attrs in
  if Gen.bool st then ignore (Tree.new_text doc ~parent:n "txt");
  if depth > 0 then
    for _ = 1 to Gen.int_bound 2 st do
      ignore (gen_wf_fragment doc n (depth - 1) st)
    done

let gen_service i : Service.t Gen.t =
 fun st ->
  let seeds = List.init (1 + Gen.int_bound 1 st) (fun _ -> Gen.int_bound 1_000_000 st) in
  Service.inproc ~name:(Printf.sprintf "Svc%d" i) ~description:"" (fun doc ->
      List.iter
        (fun seed ->
          gen_wf_fragment doc (Tree.root doc) 1 (Random.State.make [| seed |]))
        seeds)

let gen_rule : Rule.t Gen.t =
 fun st ->
  let open Weblab_xpath.Ast in
  let step name preds = { axis = Descendant; test = Name name; preds } in
  let bind x a = Bind (x, Attr a) in
  let shared = Gen.bool st in
  Rule.make ~name:"q"
    ~source:[ step (gen_name st) (if shared then [ bind "x" "k" ] else []) ]
    ~target:[ step (gen_name st) (if shared then [ bind "x" "k" ] else []) ]
    ()

let gen_workflow : (Tree.t * Service.t list * Strategy.rulebook) Gen.t =
 fun st ->
  let doc = Weblab_workflow.Orchestrator.initial_document () in
  for _ = 1 to 1 + Gen.int_bound 2 st do
    gen_wf_fragment doc (Tree.root doc) 2 st
  done;
  let services = List.init (1 + Gen.int_bound 3 st) (fun i -> gen_service (i + 1) st) in
  let rb =
    List.map
      (fun svc ->
        (Service.name svc, List.init (Gen.int_bound 2 st) (fun _ -> gen_rule st)))
      services
  in
  (doc, services, rb)

let arb_workflow =
  make
    ~print:(fun (doc, services, _) ->
      Printf.sprintf "doc=%s services=%s" (Printer.to_string doc)
        (String.concat "," (List.map Service.name services)))
    gen_workflow

let graph_signature g =
  let links =
    Prov_graph.links g
    |> List.map (fun l ->
           (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule,
            l.Prov_graph.inherited))
    |> List.sort compare
  in
  let labels =
    Prov_graph.labeled_resources g
    |> List.map (fun (u, c) -> (u, c.Trace.service, c.Trace.time))
    |> List.sort compare
  in
  let members =
    Prov_graph.skolem_entities g
    |> List.concat_map (fun e -> List.map (fun m -> (e, m)) (Prov_graph.members g e))
    |> List.sort compare
  in
  (links, labels, members)

let prop_rewrite_identical_to_replay =
  Test.make ~name:"indexed Rewrite graph ≡ Replay graph (all components)"
    ~count:80 arb_workflow
    (fun (doc, services, rb) ->
      let exec = Engine.run doc services in
      graph_signature (Engine.provenance ~strategy:`Rewrite exec rb)
      = graph_signature (Engine.provenance ~strategy:`Replay exec rb))

(* Duplicated rules (the memoization hot case) must not duplicate or drop
   links. *)
let prop_rewrite_duplicate_rules =
  Test.make ~name:"rule duplication changes nothing but rule names" ~count:40
    arb_workflow
    (fun (doc, services, rb) ->
      let dup =
        List.map
          (fun (svc, rules) ->
            ( svc,
              List.concat_map
                (fun r ->
                  List.init 3 (fun i ->
                      Rule.make
                        ~name:(Printf.sprintf "%s#%d" (Rule.name r) i)
                        ~source:(Rule.source r) ~target:(Rule.target r) ()))
                rules ))
          rb
      in
      let exec = Engine.run doc services in
      let strip (links, labels, members) =
        (List.map (fun (f, t, _, i) -> (f, t, i)) links |> List.sort_uniq compare,
         labels, members)
      in
      strip (graph_signature (Engine.provenance ~strategy:`Rewrite exec dup))
      = strip (graph_signature (Engine.provenance ~strategy:`Rewrite exec rb)))

(* ---------- unit: cache under concurrency, numeric bypass ---------- *)

(* Regression: the for_tree LRU cache is shared mutable state; concurrent
   lookups from several domains used to race on it.  Hammer the cache from
   four domains over more documents than it holds and check every answer. *)
let test_concurrent_for_tree () =
  let docs = Array.init 12 (fun i ->
      let doc = sample_doc () in
      for _ = 1 to i do
        ignore (Tree.new_element doc ~parent:(Tree.root doc) "Extra")
      done;
      (doc, 3 + i))
  in
  let worker () =
    for _ = 1 to 100 do
      Array.iter
        (fun (doc, annotations_plus_extra) ->
          let idx = Index.for_tree doc in
          if not (Index.valid_for idx doc) then failwith "stale index served";
          let got =
            Index.label_count idx "Annotation" + Index.label_count idx "Extra"
          in
          if got <> annotations_plus_extra then
            failwith
              (Printf.sprintf "bad index: %d, wanted %d" got
                 annotations_plus_extra))
        docs
    done;
    true
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  check_bool "all domains served consistent indexes" true
    (List.for_all Domain.join domains)

(* Regression: [@t = 5] compares numerically (Num operand, so "05"
   matches) and must bypass the exact-string attribute index — narrowing
   through it would miss the "05" spelling. *)
let test_loose_numeric_not_narrowed () =
  let doc =
    Xml_parser.parse
      "<R id=\"root\"><A t=\"05\"/><A t=\"5\"/><A t=\"6\"/></R>"
  in
  let pat = Weblab_xpath.Parser.pattern "//A[@t = 5]" in
  (match pat with
   | [ { Weblab_xpath.Ast.preds = [ Weblab_xpath.Ast.Cmp (_, _, Weblab_xpath.Ast.Num 5) ]; _ } ] -> ()
   | _ -> Alcotest.fail "expected a Num comparison (bare 5 must not parse as a string)");
  let indexed = Weblab_xpath.Eval.eval ~require_uri:false doc pat in
  let unindexed = Weblab_xpath.Eval.eval_unindexed ~require_uri:false doc pat in
  check_bool "indexed ≡ unindexed" true (rows_exactly_equal indexed unindexed);
  check_int "matches both numeric spellings" 2
    (List.length (Weblab_relalg.Table.rows indexed))

(* ---------- incremental extension ---------- *)

(* An extended index must be indistinguishable from a fresh build on
   every query surface: element list, label postings, attribute postings,
   interval containment and subtree sizes.  Only the order of the pre/post
   keys is observable, never their values, so the comparison goes through
   the query API. *)
let same_answers doc idx fresh =
  let labels =
    let acc = ref [] in
    Tree.iter_subtree doc (Tree.root doc) (fun n ->
        if Tree.is_element doc n then acc := Tree.name doc n :: !acc);
    List.sort_uniq compare !acc
  in
  let attr_pairs =
    let acc = ref [] in
    Tree.iter_subtree doc (Tree.root doc) (fun n ->
        acc := Tree.attrs doc n @ !acc);
    List.sort_uniq compare !acc
  in
  let nodes = Tree.descendant_or_self doc (Tree.root doc) in
  Index.elements idx = Index.elements fresh
  && List.for_all
       (fun l -> Index.nodes_with_label idx l = Index.nodes_with_label fresh l)
       labels
  && List.for_all
       (fun (a, v) ->
         Index.nodes_with_attr idx a v = Index.nodes_with_attr fresh a v
         && Index.nodes_with_some_attr idx a = Index.nodes_with_some_attr fresh a)
       attr_pairs
  && List.for_all
       (fun n ->
         Index.subtree_size idx n = Index.subtree_size fresh n
         && List.for_all
              (fun m ->
                Index.strictly_below idx ~ancestor:n m
                = Index.strictly_below fresh ~ancestor:n m
                && Index.below_or_self idx ~ancestor:n m
                   = Index.below_or_self fresh ~ancestor:n m)
              nodes)
       nodes

let test_extend_basic () =
  let doc = sample_doc () in
  let idx = Index.build doc in
  let extra = Tree.new_element doc ~parent:(Tree.root doc) "Extra" in
  ignore (Tree.new_element doc ~parent:extra "Annotation" ~attrs:[ ("t", "9") ]);
  check_bool "extend succeeds" true (Index.extend idx doc ~promoted:[]);
  check_bool "valid after extend" true (Index.valid_for idx doc);
  check_int "new label indexed" 1 (Index.label_count idx "Extra");
  check_int "nested label indexed" 4 (Index.label_count idx "Annotation");
  check_bool "matches a fresh build" true (same_answers doc idx (Index.build doc))

let test_extend_promotion () =
  (* URI promotion adds indexed attributes to an already-indexed node;
     a size-based staleness check cannot see it, so [extend] takes the
     promoted set explicitly. *)
  let doc = sample_doc () in
  let idx = Index.build doc in
  let lang =
    List.find
      (fun n -> Tree.is_element doc n && Tree.name doc n = "Language")
      (Tree.descendant_or_self doc (Tree.root doc))
  in
  Tree.set_uri doc lang "r9";
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "Extra");
  check_bool "extend with promotion" true (Index.extend idx doc ~promoted:[ lang ]);
  check_bool "promoted node resolvable" true (Index.resource idx "r9" = Some lang);
  check_bool "promoted in some_attr" true
    (List.mem lang (Index.nodes_with_some_attr idx "id"));
  check_bool "matches a fresh build" true (same_answers doc idx (Index.build doc))

let test_extend_checkpoint_restore () =
  (* The satellite regression: append → checkpoint → failing call →
     restore → append.  The restore bumps the arena generation, so the
     in-place postings must be refused, never served. *)
  let doc = sample_doc () in
  let idx = Index.build doc in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "Extra");
  check_bool "committed append extends" true (Index.extend idx doc ~promoted:[]);
  let ck = Tree.checkpoint doc in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "Doomed");
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "Doomed");
  Tree.restore doc ck;
  check_bool "extend refused after restore" false (Index.extend idx doc ~promoted:[]);
  check_bool "index invalidated" false (Index.valid_for idx doc);
  check_int "no ghost postings" 0 (Index.label_count idx "Doomed");
  (* the amortized recovery: rebuild once, then extension works again *)
  let idx = Index.build doc in
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "After");
  check_bool "extend after rebuild" true (Index.extend idx doc ~promoted:[]);
  check_int "post-restore append indexed" 1 (Index.label_count idx "After");
  check_bool "matches a fresh build" true (same_answers doc idx (Index.build doc))

let test_extend_band_exhaustion () =
  (* Ever-deeper nesting into freshly appended nodes divides the interior
     key bands until allocation fails; [extend] must then refuse (and keep
     refusing) rather than emit inconsistent keys, and a rebuild restores
     full gaps.  Answers must match a fresh build at every step. *)
  let doc = sample_doc () in
  let idx = ref (Index.build doc) in
  let parent = ref (Tree.root doc) in
  let rebuilds = ref 0 in
  for i = 1 to 30 do
    parent := Tree.new_element doc ~parent:!parent "N";
    if not (Index.extend !idx doc ~promoted:[]) then begin
      check_bool "exhausted index stays invalid" false (Index.valid_for !idx doc);
      incr rebuilds;
      idx := Index.build doc
    end;
    if i mod 5 = 0 then
      check_bool
        (Printf.sprintf "matches fresh build at depth %d" i)
        true
        (same_answers doc !idx (Index.build doc))
  done;
  check_bool "exhaustion forced at least one rebuild" true (!rebuilds > 0)

let prop_extend_equals_rebuild =
  Test.make ~name:"extend ≡ fresh build on random appends" ~count:100
    (pair arb_doc (make Gen.(int_bound 1_000_000)))
    (fun (doc, seed) ->
      let idx = ref (Index.build doc) in
      let st = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 1 + Random.State.int st 4 do
        (* one "call": a few fragments under random committed elements *)
        for _ = 1 to 1 + Random.State.int st 2 do
          let rec pick tries =
            let n = Random.State.int st (Tree.size doc) in
            if Tree.is_element doc n || tries > 20 then n else pick (tries + 1)
          in
          let p = pick 0 in
          if Tree.is_element doc p then gen_fragment doc p 2 st
        done;
        if not (Index.extend !idx doc ~promoted:[]) then idx := Index.build doc;
        ok := !ok && same_answers doc !idx (Index.build doc)
      done;
      !ok)

(* ---------- reachability closure tables ---------- *)

let test_closure_table () =
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~from_uri:"c" ~to_uri:"b";
  Prov_graph.add_link g ~from_uri:"b" ~to_uri:"a";
  let idx = Reachability.build g in
  let t = Reachability.closure_table idx in
  let open Weblab_relalg in
  let pairs =
    Table.rows t
    |> List.map (fun row ->
           (Value.to_string (Table.get t row "from"),
            Value.to_string (Table.get t row "to")))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "closure pairs"
    [ ("b", "a"); ("c", "a"); ("c", "b") ]
    pairs;
  let imp = Reachability.impact_table idx "b" in
  let rows =
    Table.rows imp
    |> List.map (fun row ->
           (Value.to_string (Table.get imp row "impacted"),
            Value.to_string (Table.get imp row "cause")))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string))) "impact × cause through b"
    [ ("c", "a") ] rows

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "index"
    [ ( "structures",
        [ Alcotest.test_case "by label" `Quick test_by_label;
          Alcotest.test_case "by attribute" `Quick test_by_attr;
          Alcotest.test_case "pre/post intervals" `Quick test_intervals;
          Alcotest.test_case "snapshot invalidation" `Quick
            test_snapshot_invalidation;
          Alcotest.test_case "concurrent for_tree" `Quick
            test_concurrent_for_tree;
          Alcotest.test_case "loose numeric bypasses index" `Quick
            test_loose_numeric_not_narrowed;
          Alcotest.test_case "closure table" `Quick test_closure_table ] );
      ( "extension",
        Alcotest.test_case "append extends in place" `Quick test_extend_basic
        :: Alcotest.test_case "promotion refreshes attributes" `Quick
             test_extend_promotion
        :: Alcotest.test_case "checkpoint/restore invalidates" `Quick
             test_extend_checkpoint_restore
        :: Alcotest.test_case "band exhaustion forces rebuild" `Quick
             test_extend_band_exhaustion
        :: to_alcotest [ prop_extend_equals_rebuild ] );
      ( "eval",
        to_alcotest
          [ prop_indexed_eval_equals_unindexed; prop_indexed_eval_guarded;
            prop_stale_index_ignored ] );
      ( "join",
        to_alcotest [ prop_hash_join_equals_nested_loop; prop_hash_join_empty ] );
      ( "strategy",
        to_alcotest
          [ prop_rewrite_identical_to_replay; prop_rewrite_duplicate_rules ] ) ]
