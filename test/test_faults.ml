(* The failure subsystem end to end: supervised execution over services
   with injected faults (crash, garbage XML, mutation of committed nodes,
   duplicate URIs, stalls) must

   - roll every failed attempt back to a bit-identical arena,
   - record each attempt and outcome in the trace,
   - keep all five inference strategies (Online, Replay, Rewrite,
     Incremental, Fused) in agreement over the surviving calls, with
     every link endpoint owned by a successful call — in particular,
     rolled-back calls must not poison the Incremental backend's
     memoized state or the Fused backend's compiled plan.

   Deterministic tests pin the acceptance scenario; qcheck properties
   cover random workflows under random fault plans and the rollback
   primitives themselves. *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov
open QCheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Every bit of mutable arena state: structure, attributes and both
   timestamp columns.  Printer output would miss created/uri_time, and
   "bit-identical rollback" means exactly this. *)
let fingerprint doc =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "size=%d root=%d\n" (Tree.size doc)
       (if Tree.has_root doc then Tree.root doc else Tree.no_node));
  for n = 0 to Tree.size doc - 1 do
    let kind =
      if Tree.is_element doc n then "e:" ^ Tree.name doc n
      else "t:" ^ Tree.text doc n
    in
    Buffer.add_string b
      (Printf.sprintf "%d %s parent=%d attrs=%s created=%d uri_time=%d kids=%s\n"
         n kind (Tree.parent doc n)
         (String.concat ","
            (List.map (fun (k, v) -> k ^ "=" ^ v) (Tree.attrs doc n)))
         (Tree.created doc n) (Tree.uri_time doc n)
         (String.concat "," (List.map string_of_int (Tree.children doc n))))
  done;
  Buffer.contents b

let graph_links g =
  Prov_graph.links g
  |> List.filter (fun l -> not l.Prov_graph.inherited)
  |> List.map (fun l ->
         (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
  |> List.sort compare

let rulebook_of services =
  List.filter_map
    (fun svc ->
      let name = Service.name svc in
      Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Catalog.rules)))
    services

let appender name =
  Service.inproc ~name ~description:"" (fun doc ->
      ignore (Tree.new_element doc ~parent:(Tree.root doc) "F"))

let skip_policy = { Orchestrator.default_policy with on_failure = `Skip }

(* ---------- the acceptance scenario ---------- *)

(* Standard pipeline with an always-failing service after each of the
   first three calls: crash (partial appends left behind), garbage XML
   (unparsable output) and an append violation (mutation of a committed
   node). *)
let degraded_workflow ?(seed = 11) () =
  let doc = Workload.make_document ~units:2 ~seed () in
  let good = Workload.standard_pipeline () in
  let rb = rulebook_of good in
  let services =
    match good with
    | g1 :: g2 :: g3 :: rest ->
      [ g1; Faulty.with_fault Crash (appender "BadCrash");
        g2; Faulty.with_fault Garbage_xml (appender "BadGarbage");
        g3; Faulty.with_fault Mutate_committed (appender "BadMutate") ]
      @ rest
    | _ -> assert false
  in
  (doc, services, rb)

let test_acceptance () =
  let doc, services, rb = degraded_workflow () in
  (* Completes despite the three planted faults. *)
  let exec, g_online = Engine.run_online ~policy:skip_policy doc services rb in
  let trace = exec.Engine.trace in
  let failed = Trace.failed_calls trace in
  Alcotest.(check (list (pair string int)))
    "the three planted faults failed, at the interleaved timestamps"
    [ ("BadCrash", 2); ("BadGarbage", 4); ("BadMutate", 6) ]
    (List.map (fun (c : Trace.call) -> (c.Trace.service, c.Trace.time)) failed);
  (* Each failure is visible as a recorded attempt with a reason... *)
  List.iter
    (fun (c : Trace.call) ->
      let atts =
        List.filter (fun a -> a.Trace.a_time = c.Trace.time) (Trace.attempts trace)
      in
      check_bool (Printf.sprintf "attempts recorded for t=%d" c.Trace.time) true
        (atts <> []);
      List.iter
        (fun a ->
          check_bool "attempt marked failed" false a.Trace.a_ok;
          check_bool "attempt carries a reason" true (a.Trace.a_reason <> ""))
        atts;
      (* ...and as a Failed outcome. *)
      match Trace.outcome_at trace c.Trace.time with
      | Some (Trace.Failed _) -> ()
      | _ -> Alcotest.fail "failed call without a Failed outcome")
    failed;
  (* Failed calls burn their timestamps: committed calls skip 2, 4, 6. *)
  let committed = List.map (fun c -> c.Trace.time) (Trace.calls trace) in
  List.iter
    (fun t -> check_bool "burned timestamp not committed" false (List.mem t committed))
    [ 2; 4; 6 ];
  check_bool "surviving calls committed" true
    (List.mem 1 committed && List.mem 3 committed && List.mem 5 committed);
  (* All three strategies agree on a non-empty link set... *)
  let g_replay = Engine.provenance ~strategy:`Replay exec rb in
  let g_rewrite = Engine.provenance ~strategy:`Rewrite exec rb in
  let links = graph_links g_replay in
  check_bool "non-empty link set" true (links <> []);
  Alcotest.(check (list (triple string string string)))
    "online = replay" links (graph_links g_online);
  Alcotest.(check (list (triple string string string)))
    "replay = rewrite" links (graph_links g_rewrite);
  (* ...and every endpoint belongs to a successful call. *)
  let failed_times = List.map (fun c -> c.Trace.time) failed in
  List.iter
    (fun (f, t, _) ->
      List.iter
        (fun uri ->
          match Trace.call_of_resource trace uri with
          | Some c ->
            check_bool
              (Printf.sprintf "%s owned by a successful call" uri)
              false
              (List.mem c.Trace.time failed_times)
          | None -> Alcotest.fail (uri ^ " has no owning call"))
        [ f; t ])
    links

let test_rollback_bit_identical () =
  (* A workflow run alongside always-failing services ends in exactly the
     arena the clean workflow produces: failed calls leave no trace in the
     document (they only burn timestamps, which the committed call never
     sees). *)
  let run services =
    let doc = Workload.make_document ~units:2 ~seed:7 () in
    ignore (Orchestrator.execute ~policy:skip_policy doc services);
    fingerprint doc
  in
  let clean = run [ appender "Good" ] in
  let degraded =
    run
      [ appender "Good";
        Faulty.with_fault Crash (appender "B1");
        Faulty.with_fault Mutate_committed (appender "B2");
        Faulty.with_fault Duplicate_uri (appender "B3");
        Faulty.with_fault Garbage_xml (appender "B4") ]
  in
  check_string "bit-identical to the last successful commit" clean degraded

let test_retry_commits () =
  let doc = Workload.make_document ~units:1 ~seed:3 () in
  let svc = Faulty.failing_first 2 Crash (appender "Flaky") in
  let policy =
    { Orchestrator.default_policy with retries = 3; backoff_ms = 10. }
  in
  let trace = Orchestrator.execute ~policy doc [ svc ] in
  (match Trace.outcome_at trace 1 with
   | Some (Trace.Retried 2) -> ()
   | _ -> Alcotest.fail "expected Retried 2");
  check_bool "no failed calls" true (Trace.failed_calls trace = []);
  check_bool "the call committed" true
    (List.exists (fun (c : Trace.call) -> c.Trace.time = 1) (Trace.calls trace));
  let atts = List.filter (fun a -> a.Trace.a_time = 1) (Trace.attempts trace) in
  check_int "three attempts" 3 (List.length atts);
  Alcotest.(check (list (pair bool (float 1e-9))))
    "per-attempt outcome and exponential simulated backoff"
    [ (false, 0.); (false, 10.); (true, 20.) ]
    (List.map (fun a -> (a.Trace.a_ok, a.Trace.a_backoff_ms)) atts)

let test_retries_exhausted () =
  let doc = Workload.make_document ~units:1 ~seed:3 () in
  let svc = Faulty.failing_first 5 Crash (appender "Hopeless") in
  let policy = { skip_policy with retries = 2 } in
  let trace = Orchestrator.execute ~policy doc [ svc ] in
  (match Trace.outcome_at trace 1 with
   | Some (Trace.Failed _) -> ()
   | _ -> Alcotest.fail "expected Failed");
  check_int "1 + retries attempts" 3
    (List.length (List.filter (fun a -> a.Trace.a_time = 1) (Trace.attempts trace)))

let test_propagate_default_rolls_back () =
  (* The historical behavior: the exception escapes — but only after the
     rollback, so the caller holds the last good state, not a torn one. *)
  let run services =
    let doc = Workload.make_document ~units:1 ~seed:5 () in
    (try ignore (Orchestrator.execute doc services)
     with Failure _ -> ());
    fingerprint doc
  in
  let doc = Workload.make_document ~units:1 ~seed:5 () in
  Alcotest.check_raises "exception propagates by default"
    (Failure "injected crash in Bad") (fun () ->
      ignore
        (Orchestrator.execute doc [ Faulty.with_fault Crash (appender "Bad") ]));
  check_string "partial appends rolled back before propagating"
    (run []) (run [ Faulty.with_fault Crash (appender "Bad") ])

let test_node_budget () =
  let svc =
    Service.inproc ~name:"Big" ~description:"" (fun doc ->
        for _ = 1 to 5 do
          ignore (Tree.new_element doc ~parent:(Tree.root doc) "F")
        done)
  in
  let policy = { skip_policy with max_new_nodes = Some 2 } in
  let doc = Workload.make_document ~units:1 ~seed:2 () in
  let trace = Orchestrator.execute ~policy doc [ svc ] in
  match Trace.outcome_at trace 1 with
  | Some (Trace.Failed r) ->
    check_bool "reason names the budget" true (contains ~sub:"budget" r)
  | _ -> Alcotest.fail "expected the output-size budget to trip"

let test_time_budget () =
  let policy = { skip_policy with max_call_s = Some 0.005 } in
  let doc = Workload.make_document ~units:1 ~seed:2 () in
  let svc = Faulty.with_fault ~stall_s:0.05 Stall (appender "Slow") in
  let trace = Orchestrator.execute ~policy doc [ svc ] in
  match Trace.outcome_at trace 1 with
  | Some (Trace.Failed r) ->
    check_bool "reason names the budget" true (contains ~sub:"budget" r)
  | _ -> Alcotest.fail "expected the time budget to trip"

let test_duplicate_uri_fault () =
  let run services =
    let doc = Workload.make_document ~units:1 ~seed:9 () in
    let trace = Orchestrator.execute ~policy:skip_policy doc services in
    (fingerprint doc, trace)
  in
  let clean, _ = run [] in
  let degraded, trace = run [ Faulty.with_fault Duplicate_uri (appender "Dup") ] in
  (match Trace.outcome_at trace 1 with
   | Some (Trace.Failed r) ->
     check_bool "reason names the duplicate" true (contains ~sub:"duplicate" r)
   | _ -> Alcotest.fail "expected the duplicate URI to be rejected");
  check_string "document unchanged" clean degraded

let test_failure_stats () =
  let doc, services, rb = degraded_workflow () in
  let exec, _ = Engine.run_online ~policy:skip_policy doc services rb in
  let s = Analytics.failure_stats exec.Engine.trace in
  check_int "total = committed + failed" s.Analytics.calls_total
    (s.Analytics.calls_committed + s.Analytics.calls_failed);
  check_int "three failures" 3 s.Analytics.calls_failed;
  check_int "no retried calls (retries = 0)" 0 s.Analytics.calls_retried;
  check_bool "at least one attempt per call" true
    (s.Analytics.attempts_total >= s.Analytics.calls_total);
  check_bool "failures attributed per service" true
    (List.mem_assoc "BadCrash" s.Analytics.failures_by_service);
  check_bool "renders" true
    (contains ~sub:"failed" (Analytics.failure_stats_to_string s))

let test_prov_export_failed_activities () =
  let doc, services, rb = degraded_workflow () in
  let exec, g = Engine.run_online ~policy:skip_policy doc services rb in
  let ttl = Engine.to_turtle ~trace:exec.Engine.trace g in
  check_bool "failed activity exported" true (contains ~sub:"BadCrash" ttl);
  check_bool "invalidation timestamp exported" true
    (contains ~sub:"invalidatedAtTime" ttl);
  check_bool "failure reason exported" true (contains ~sub:"failureReason" ttl);
  (* without the trace the export stays as before: successful calls only *)
  let plain = Engine.to_turtle g in
  check_bool "no failed activities without the trace" false
    (contains ~sub:"invalidatedAtTime" plain)

(* ---------- generators (as in test_props) ---------- *)

let gen_name = Gen.oneofl [ "A"; "B"; "C"; "D"; "E" ]
let gen_attr_name = Gen.oneofl [ "k"; "v"; "g"; "src" ]
let gen_attr_value = Gen.oneofl [ "1"; "2"; "3"; "x"; "y" ]

let rec gen_fragment doc parent depth st =
  let name = gen_name st in
  let attrs =
    List.init (Gen.int_bound 2 st) (fun _ -> (gen_attr_name st, gen_attr_value st))
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  let n = Tree.new_element doc ~parent name ~attrs in
  if Gen.bool st then ignore (Tree.new_text doc ~parent:n "txt");
  if depth > 0 then
    for _ = 1 to Gen.int_bound 2 st do
      ignore (gen_fragment doc n (depth - 1) st)
    done;
  n

let gen_doc : Tree.t Gen.t =
 fun st ->
  let doc = Orchestrator.initial_document () in
  for _ = 1 to 1 + Gen.int_bound 2 st do
    ignore (gen_fragment doc (Tree.root doc) 2 st)
  done;
  doc

let arb_doc = make ~print:(fun d -> Printer.to_string ~indent:true d) gen_doc

let gen_service i : Service.t Gen.t =
 fun st ->
  let seeds = List.init (1 + Gen.int_bound 1 st) (fun _ -> Gen.int_bound 1_000_000 st) in
  Service.inproc ~name:(Printf.sprintf "Svc%d" i) ~description:"" (fun doc ->
      List.iter
        (fun seed ->
          ignore (gen_fragment doc (Tree.root doc) 1 (Random.State.make [| seed |])))
        seeds)

let gen_rule : Rule.t Gen.t =
 fun st ->
  let open Weblab_xpath.Ast in
  let shared = Gen.bool st in
  let a1 = gen_attr_name st and a2 = gen_attr_name st in
  let step name preds = { axis = Descendant; test = Name name; preds } in
  Rule.make ~name:"q"
    ~source:[ step (gen_name st) (if shared then [ Bind ("x", Attr a1) ] else []) ]
    ~target:[ step (gen_name st) (if shared then [ Bind ("x", Attr a2) ] else []) ]
    ()

let gen_workflow : (Tree.t * Service.t list * Strategy.rulebook) Gen.t =
 fun st ->
  let doc = gen_doc st in
  let services = List.init (2 + Gen.int_bound 3 st) (fun i -> gen_service (i + 1) st) in
  let rb =
    List.map
      (fun svc ->
        (Service.name svc, List.init (Gen.int_bound 2 st) (fun _ -> gen_rule st)))
      services
  in
  (doc, services, rb)

let arb_workflow =
  make
    ~print:(fun (doc, services, _) ->
      Printf.sprintf "doc=%s services=%s" (Printer.to_string doc)
        (String.concat "," (List.map Service.name services)))
    gen_workflow

(* ---------- properties ---------- *)

(* Stall is excluded: without a time budget it only burns CPU. *)
let plan_faults =
  [ Faulty.Crash; Faulty.Garbage_xml; Faulty.Mutate_committed;
    Faulty.Duplicate_uri ]

let prop_agreement_under_faults =
  Test.make
    ~name:"Online = Replay = Rewrite = Incremental = Fused under faults"
    ~count:60
    (pair arb_workflow (make Gen.(pair (int_bound 1_000_000) (int_bound 2))))
    (fun ((doc, services, rb), (seed, r)) ->
      let rate = [| 0.3; 0.5; 0.8 |].(r) in
      let plan = Faulty.plan ~faults:plan_faults ~rate ~seed () in
      let services = Faulty.wrap_all plan services in
      let policy =
        { Orchestrator.default_policy with
          retries = 1; backoff_ms = 5.; on_failure = `Skip }
      in
      (* The execution-time backends observe the same single run: the
         fault plan is consumed by the execution, so equivalence must be
         checked on shared state, not on a re-run.  Rolled-back attempts
         are never observed and must leave the Incremental memo and the
         Fused compiled plan's index sound. *)
      let on_st = Strategy_online.init ~doc rb in
      let inc_st = Strategy_incremental.init ~doc rb in
      let fus_st = Strategy_fused.init ~doc rb in
      let trace =
        Orchestrator.execute ~policy
          ~on_step:(fun call before after delta ->
            Strategy_online.observe on_st ~call ~before ~after ~delta;
            Strategy_incremental.observe inc_st ~call ~before ~after ~delta;
            Strategy_fused.observe fus_st ~call ~before ~after ~delta)
          doc services
      in
      let g_online = Strategy_online.finalize on_st ~doc ~trace in
      let g_incr = Strategy_incremental.finalize inc_st ~doc ~trace in
      let g_fused = Strategy_fused.finalize fus_st ~doc ~trace in
      let exec = { Engine.doc; trace } in
      let g_replay = Engine.provenance ~strategy:`Replay exec rb in
      let g_rewrite = Engine.provenance ~strategy:`Rewrite exec rb in
      let failed_times =
        List.map (fun (c : Trace.call) -> c.Trace.time) (Trace.failed_calls trace)
      in
      let owned_by_survivor uri =
        match Trace.call_of_resource trace uri with
        | Some c -> not (List.mem c.Trace.time failed_times)
        | None -> false
      in
      graph_links g_online = graph_links g_replay
      && graph_links g_replay = graph_links g_rewrite
      && graph_links g_rewrite = graph_links g_incr
      && graph_links g_incr = graph_links g_fused
      && List.for_all
           (fun (f, t, _) -> owned_by_survivor f && owned_by_survivor t)
           (graph_links g_replay))

let prop_skip_always_completes =
  Test.make ~name:"Skip policy always completes; arena stays sound" ~count:60
    (pair arb_workflow (make Gen.(int_bound 1_000_000)))
    (fun ((doc, services, _), seed) ->
      let plan = Faulty.plan ~faults:plan_faults ~rate:1.0 ~seed () in
      let trace =
        Orchestrator.execute ~policy:skip_policy doc (Faulty.wrap_all plan services)
      in
      (* rate 1.0, no retries: every call fails, the document is exactly
         the initially-labeled state and URIs are still unique *)
      Orchestrator.check_unique_uris doc;
      List.length (Trace.failed_calls trace) = List.length services
      && Doc_state.timestamps_monotonic doc)

let prop_checkpoint_restore_exact =
  Test.make ~name:"checkpoint/restore is bit-identical" ~count:100
    (pair arb_doc (make Gen.(int_bound 1_000_000)))
    (fun (doc, seed) ->
      let before = fingerprint doc in
      let gen0 = Tree.generation doc in
      let ck = Tree.checkpoint doc in
      let st = Random.State.make [| seed |] in
      for _ = 1 to 1 + Random.State.int st 5 do
        match Random.State.int st 3 with
        | 0 ->
          let p = Random.State.int st (Tree.size doc) in
          if Tree.is_element doc p then ignore (gen_fragment doc p 1 st)
        | 1 ->
          let n = Random.State.int st (Tree.size doc) in
          if Tree.is_element doc n then Tree.set_attr doc n "z" "corrupt"
        | _ ->
          let n = Random.State.int st (Tree.size doc) in
          if Tree.is_element doc n then
            Tree.set_uri doc n (Printf.sprintf "dup%d" (Random.State.int st 3))
      done;
      Tree.restore doc ck;
      fingerprint doc = before && Tree.generation doc > gen0)

let prop_truncate_undoes_appends =
  Test.make ~name:"truncate_to undoes appends exactly" ~count:100
    (pair arb_doc (make Gen.(int_bound 1_000_000)))
    (fun (doc, seed) ->
      let n = Tree.size doc in
      let before = fingerprint doc in
      let st = Random.State.make [| seed |] in
      for _ = 1 to 1 + Random.State.int st 3 do
        let p = Random.State.int st n in
        if Tree.is_element doc p then ignore (gen_fragment doc p 2 st)
      done;
      Tree.truncate_to doc n;
      fingerprint doc = before)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [ ( "acceptance",
        [ Alcotest.test_case "degraded workflow end to end" `Quick test_acceptance;
          Alcotest.test_case "rollback bit-identical" `Quick
            test_rollback_bit_identical;
          Alcotest.test_case "retry then commit" `Quick test_retry_commits;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "propagate (default) rolls back" `Quick
            test_propagate_default_rolls_back ] );
      ( "budgets",
        [ Alcotest.test_case "output-size budget" `Quick test_node_budget;
          Alcotest.test_case "time budget" `Quick test_time_budget;
          Alcotest.test_case "duplicate URI fault" `Quick test_duplicate_uri_fault ] );
      ( "reporting",
        [ Alcotest.test_case "failure statistics" `Quick test_failure_stats;
          Alcotest.test_case "PROV export of failures" `Quick
            test_prov_export_failed_activities ] );
      ( "properties",
        to_alcotest
          [ prop_agreement_under_faults; prop_skip_always_completes;
            prop_checkpoint_restore_exact; prop_truncate_undoes_appends ] ) ]
