(* Tests for the XML substrate: arena trees, parser, printer, document
   states and the XML diff. *)

open Weblab_xml

let check = Alcotest.check
let check_str = check Alcotest.string
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- Tree construction and navigation --- *)

let sample () =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node "Resource" in
  Tree.set_uri doc root "r1";
  let a = Tree.new_element doc ~parent:root "A" ~attrs:[ ("k", "v") ] in
  let b = Tree.new_element doc ~parent:root "B" in
  let t = Tree.new_text doc ~parent:a "hello" in
  (doc, root, a, b, t)

let test_build () =
  let doc, root, a, b, t = sample () in
  check_int "size" 4 (Tree.size doc);
  check_int "root" root (Tree.root doc);
  check_str "root name" "Resource" (Tree.name doc root);
  check (Alcotest.list Alcotest.int) "children" [ a; b ] (Tree.children doc root);
  check_int "parent of a" root (Tree.parent doc a);
  check_int "parent of root" Tree.no_node (Tree.parent doc root);
  check_str "attr" "v" (Option.get (Tree.attr doc a "k"));
  check_bool "missing attr" true (Tree.attr doc a "zz" = None);
  check_str "text" "hello" (Tree.text doc t);
  check_bool "a is element" true (Tree.is_element doc a);
  check_bool "t is text" true (Tree.is_text doc t)

let test_single_root () =
  let doc = Tree.create () in
  ignore (Tree.new_element doc ~parent:Tree.no_node "R");
  Alcotest.check_raises "second root" (Invalid_argument
    "Tree.new_element: document already has a root")
    (fun () -> ignore (Tree.new_element doc ~parent:Tree.no_node "R2"))

let test_string_value () =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node "R" in
  let a = Tree.new_element doc ~parent:root "A" in
  ignore (Tree.new_text doc ~parent:a "foo ");
  let b = Tree.new_element doc ~parent:a "B" in
  ignore (Tree.new_text doc ~parent:b "bar");
  ignore (Tree.new_text doc ~parent:root " baz");
  check_str "string-value" "foo bar baz" (Tree.string_value doc root)

let test_descendants_order () =
  let doc, root, a, b, t = sample () in
  check (Alcotest.list Alcotest.int) "descendant_or_self"
    [ root; a; t; b ]
    (Tree.descendant_or_self doc root);
  check (Alcotest.list Alcotest.int) "descendants" [ a; t; b ]
    (Tree.descendants doc root);
  check (Alcotest.list Alcotest.int) "ancestors of t" [ a; root ]
    (Tree.ancestors doc t);
  check_bool "root ancestor of t" true (Tree.is_ancestor doc ~ancestor:root t);
  check_bool "b not ancestor of t" false (Tree.is_ancestor doc ~ancestor:b t);
  check_bool "t not its own ancestor" false (Tree.is_ancestor doc ~ancestor:t t)

let test_resources () =
  let doc, root, a, _, _ = sample () in
  check (Alcotest.list Alcotest.int) "resources" [ root ] (Tree.resources doc);
  Tree.set_uri doc a "r2";
  check (Alcotest.list Alcotest.int) "resources2" [ root; a ] (Tree.resources doc);
  check_int "find r2" a (Option.get (Tree.find_resource doc "r2"));
  check_bool "find missing" true (Tree.find_resource doc "nope" = None)

let test_copy_subtree () =
  let doc, _, a, _, _ = sample () in
  let dst = Tree.create () in
  let r = Tree.new_element dst ~parent:Tree.no_node "R" in
  let a' = Tree.copy_subtree dst ~src:doc a ~parent:r in
  check_bool "equal subtree" true (Tree.equal_subtree doc a dst a');
  check_str "copied attr" "v" (Option.get (Tree.attr dst a' "k"));
  check_str "copied text" "hello" (Tree.string_value dst a')

let test_equal_subtree_negative () =
  let doc1 = Xml_parser.parse "<A k='v'><B>x</B></A>" in
  let doc2 = Xml_parser.parse "<A k='w'><B>x</B></A>" in
  let doc3 = Xml_parser.parse "<A k='v'><B>y</B></A>" in
  let doc4 = Xml_parser.parse "<A k='v'><B>x</B><C/></A>" in
  let r1 = Tree.root doc1 in
  check_bool "attr differs" false (Tree.equal_subtree doc1 r1 doc2 (Tree.root doc2));
  check_bool "text differs" false (Tree.equal_subtree doc1 r1 doc3 (Tree.root doc3));
  check_bool "extra child" false (Tree.equal_subtree doc1 r1 doc4 (Tree.root doc4));
  check_bool "self equal" true (Tree.equal_subtree doc1 r1 doc1 r1)

(* --- Parser --- *)

let parse = Xml_parser.parse

let test_parse_simple () =
  let doc = parse "<a><b x=\"1\">hi</b><c/></a>" in
  let root = Tree.root doc in
  check_str "root" "a" (Tree.name doc root);
  match Tree.children doc root with
  | [ b; c ] ->
    check_str "b" "b" (Tree.name doc b);
    check_str "b@x" "1" (Option.get (Tree.attr doc b "x"));
    check_str "b text" "hi" (Tree.string_value doc b);
    check_str "c" "c" (Tree.name doc c)
  | _ -> Alcotest.fail "expected two children"

let test_parse_entities () =
  let doc = parse "<a>x &amp; y &lt;z&gt; &quot;q&quot; &#65;&#x42;</a>" in
  check_str "entities" "x & y <z> \"q\" AB" (Tree.string_value doc (Tree.root doc))

let test_parse_attr_quotes () =
  let doc = parse "<a x='single' y=\"double\" z='a&amp;b'/>" in
  let r = Tree.root doc in
  check_str "single" "single" (Option.get (Tree.attr doc r "x"));
  check_str "double" "double" (Option.get (Tree.attr doc r "y"));
  check_str "entity in attr" "a&b" (Option.get (Tree.attr doc r "z"))

let test_parse_comments_cdata () =
  let doc = parse "<a><!-- a comment -->text<![CDATA[<raw> & stuff]]></a>" in
  check_str "cdata" "text<raw> & stuff" (Tree.string_value doc (Tree.root doc))

let test_parse_declaration_doctype () =
  let doc =
    parse "<?xml version=\"1.0\" encoding=\"UTF-8\"?><!DOCTYPE a><a>ok</a>"
  in
  check_str "after prolog" "ok" (Tree.string_value doc (Tree.root doc))

let test_parse_whitespace () =
  let doc = parse "<a>\n  <b/>\n</a>" in
  check_int "ws dropped" 1 (List.length (Tree.children doc (Tree.root doc)));
  let doc = Xml_parser.parse ~preserve_whitespace:true "<a>\n  <b/>\n</a>" in
  check_int "ws preserved" 3 (List.length (Tree.children doc (Tree.root doc)))

let test_parse_nested_deep () =
  let deep = String.concat "" (List.init 200 (fun _ -> "<x>"))
             ^ "leaf"
             ^ String.concat "" (List.init 200 (fun _ -> "</x>")) in
  let doc = parse deep in
  check_str "deep leaf" "leaf" (Tree.string_value doc (Tree.root doc))

let expect_parse_error input =
  match parse input with
  | _ -> Alcotest.failf "expected a parse error for %S" input
  | exception Xml_parser.Error _ -> ()

let test_parse_errors () =
  expect_parse_error "";
  expect_parse_error "no markup";
  expect_parse_error "<a>";
  expect_parse_error "<a></b>";
  expect_parse_error "<a><b></a></b>";
  expect_parse_error "<a x=1/>";
  expect_parse_error "<a x='unterminated/>";
  expect_parse_error "<a/><b/>";
  expect_parse_error "<a>&unknown;</a>";
  expect_parse_error "<a><!-- unterminated </a>"

let test_parse_error_position () =
  match parse "<a>\n<b>\n</c>\n</a>" with
  | _ -> Alcotest.fail "expected error"
  | exception Xml_parser.Error { line; _ } -> check_int "error line" 3 line

(* --- Printer round-trips --- *)

let test_print_roundtrip () =
  let inputs =
    [ "<a/>";
      "<a x=\"1\" y=\"2\"/>";
      "<a><b>text</b><c><d/></c></a>";
      "<a>one<b/>two</a>";
      "<a>&amp;&lt;&gt;</a>" ]
  in
  List.iter
    (fun input ->
      let doc = parse input in
      let printed = Printer.to_string doc in
      let doc' = parse printed in
      check_bool
        (Printf.sprintf "round-trip %s" input)
        true
        (Tree.equal_subtree doc (Tree.root doc) doc' (Tree.root doc')))
    inputs

let test_print_escaping () =
  let doc = Tree.create () in
  let r = Tree.new_element doc ~parent:Tree.no_node "a" ~attrs:[ ("x", "a\"b<c&d") ] in
  ignore (Tree.new_text doc ~parent:r "1 < 2 & 3 > 2");
  let s = Printer.to_string doc in
  let doc' = parse s in
  check_str "attr survived" "a\"b<c&d" (Option.get (Tree.attr doc' (Tree.root doc') "x"));
  check_str "text survived" "1 < 2 & 3 > 2" (Tree.string_value doc' (Tree.root doc'))

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_print_visible_filter () =
  let doc, _, a, _, _ = sample () in
  let s = Printer.to_string ~visible:(fun n -> n <> a) doc in
  check_bool "a hidden" false (contains_substring s "<A");
  check_bool "b kept" true (contains_substring s "<B")

(* --- Document states --- *)

let staged () =
  let doc, root, a, b, _ = sample () in
  (* b was added at time 2, a child of a at time 1 *)
  let c = Tree.new_element doc ~parent:a "C" in
  Tree.set_created doc c 1;
  Tree.set_created doc b 2;
  (doc, root, a, b, c)

let test_states () =
  let doc, root, a, b, c = staged () in
  let d0 = Doc_state.at doc 0 in
  let d1 = Doc_state.at doc 1 in
  let d2 = Doc_state.at doc 2 in
  check_bool "b invisible at 0" false (Doc_state.visible d0 b);
  check_bool "c invisible at 0" false (Doc_state.visible d0 c);
  check_bool "c visible at 1" true (Doc_state.visible d1 c);
  check_bool "b invisible at 1" false (Doc_state.visible d1 b);
  check_bool "b visible at 2" true (Doc_state.visible d2 b);
  check_bool "d0 in d1" true (Doc_state.contains ~smaller:d0 ~larger:d1);
  check_bool "d2 not in d1" false (Doc_state.contains ~smaller:d2 ~larger:d1);
  check_bool "root always" true (Doc_state.visible d0 root);
  ignore a

let test_added_fragment_roots () =
  let doc, _, _, b, c = staged () in
  let d0 = Doc_state.at doc 0 in
  let d1 = Doc_state.at doc 1 in
  let d2 = Doc_state.at doc 2 in
  check (Alcotest.list Alcotest.int) "d1 \\ d0" [ c ]
    (Doc_state.added_fragment_roots ~smaller:d0 ~larger:d1);
  check (Alcotest.list Alcotest.int) "d2 \\ d1" [ b ]
    (Doc_state.added_fragment_roots ~smaller:d1 ~larger:d2);
  check (Alcotest.list Alcotest.int) "d2 \\ d0" [ c; b ]
    (Doc_state.added_fragment_roots ~smaller:d0 ~larger:d2)

let test_monotonic () =
  let doc, _, _, _, c = staged () in
  check_bool "monotone" true (Doc_state.timestamps_monotonic doc);
  (* Violate: parent newer than child. *)
  let d = Tree.new_element doc ~parent:c "D" in
  Tree.set_created doc d 0;
  Tree.set_created doc c 3;
  check_bool "broken" false (Doc_state.timestamps_monotonic doc)

let test_restore_timestamps_robust () =
  (* Non-numeric @t falls back to the inherited value. *)
  let doc = parse "<R id='r1' t='0'><A id='a' t='weird'><B id='b' t='2'/></A></R>" in
  Doc_state.restore_timestamps doc;
  let created u = Tree.created doc (Option.get (Tree.find_resource doc u)) in
  check_int "root" 0 (created "r1");
  check_int "bad t inherits" 0 (created "a");
  check_int "good t kept" 2 (created "b")

let test_indent_roundtrip () =
  (* Indented output re-parses to the same tree (whitespace-only text is
     dropped on parse). *)
  let doc = parse "<R><A x=\"1\"><B>hi</B></A><C/></R>" in
  let doc2 = parse (Printer.to_string ~indent:true doc) in
  check_bool "equal" true
    (Tree.equal_subtree doc (Tree.root doc) doc2 (Tree.root doc2))

(* --- name index --- *)

let test_name_index () =
  let doc = parse "<R><A/><B><A/></B><C/></R>" in
  let idx = Tree.build_name_index doc in
  check_int "two A" 2 (List.length (Tree.index_lookup idx "A"));
  check_int "one C" 1 (List.length (Tree.index_lookup idx "C"));
  check_int "absent" 0 (List.length (Tree.index_lookup idx "Z"));
  (* document order *)
  let a_nodes = Tree.index_lookup idx "A" in
  check_bool "ordered" true (List.sort compare a_nodes = a_nodes)

let test_name_index_cache_invalidation () =
  let doc = parse "<R><A/></R>" in
  let idx1 = Tree.name_index_for doc in
  check_int "one A" 1 (List.length (Tree.index_lookup idx1 "A"));
  ignore (Tree.new_element doc ~parent:(Tree.root doc) "A");
  let idx2 = Tree.name_index_for doc in
  check_int "rebuilt after append" 2 (List.length (Tree.index_lookup idx2 "A"));
  (* stable when nothing changed *)
  check_bool "cached" true (Tree.name_index_for doc == idx2)

(* --- Diff --- *)

let test_diff_appends () =
  let old_doc = parse "<R id=\"r1\"><A>x</A></R>" in
  let new_doc = parse "<R id=\"r1\"><A>x</A><B id=\"r2\">y</B></R>" in
  let result = Diff.diff ~old_doc ~new_doc in
  (match result.Diff.added with
   | [ { Diff.new_node; _ } ] ->
     check_str "added B" "B" (Tree.name new_doc new_node)
   | l -> Alcotest.failf "expected 1 added fragment, got %d" (List.length l));
  check_bool "contains" true (Diff.contains ~old_doc ~new_doc)

let test_diff_insert_middle () =
  let old_doc = parse "<R><A/><C/></R>" in
  let new_doc = parse "<R><A/><B/><C/></R>" in
  let result = Diff.diff ~old_doc ~new_doc in
  match result.Diff.added with
  | [ { Diff.new_node; _ } ] -> check_str "added B" "B" (Tree.name new_doc new_node)
  | l -> Alcotest.failf "expected 1 added, got %d" (List.length l)

let test_diff_nested_add () =
  let old_doc = parse "<R><A><X/></A></R>" in
  let new_doc = parse "<R><A><X/><Y/></A><B/></R>" in
  let result = Diff.diff ~old_doc ~new_doc in
  let names =
    List.map (fun e -> Tree.name new_doc e.Diff.new_node) result.Diff.added
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.string) "added" [ "B"; "Y" ] names

let test_diff_id_promotion () =
  let old_doc = parse "<R id=\"r1\"><A/></R>" in
  let new_doc = parse "<R id=\"r1\"><A id=\"r2\"/></R>" in
  let result = Diff.diff ~old_doc ~new_doc in
  check_int "no additions" 0 (List.length result.Diff.added)

let test_diff_violations () =
  let old_doc = parse "<R><A>x</A><B/></R>" in
  let removed = parse "<R><B/></R>" in
  let changed = parse "<R><A>y</A><B/></R>" in
  let renamed = parse "<R><A2>x</A2><B/></R>" in
  let attr_changed = parse "<R x=\"1\"><A>x</A><B/></R>" in
  check_bool "removal" false (Diff.contains ~old_doc ~new_doc:removed);
  check_bool "text change" false (Diff.contains ~old_doc ~new_doc:changed);
  check_bool "rename" false (Diff.contains ~old_doc ~new_doc:renamed);
  (* pure attribute addition is tolerated (recorder labels) *)
  check_bool "attr add ok" true (Diff.contains ~old_doc ~new_doc:attr_changed)

let test_diff_reorder_rejected () =
  let old_doc = parse "<R><A>1</A><B>2</B></R>" in
  let new_doc = parse "<R><B>2</B><A>1</A></R>" in
  (* Reordering is not an append: A must embed before B. *)
  check_bool "reorder" false (Diff.contains ~old_doc ~new_doc)

let test_diff_not_contained_reasons () =
  (* Every append-semantics violation class must surface as Not_contained
     (the boolean [contains] is just its non-raising wrapper), with a
     human-readable reason. *)
  let old_doc = parse "<R a=\"1\"><A>x</A><B k=\"v\"/></R>" in
  let expect_violation name new_doc =
    match Diff.diff ~old_doc ~new_doc with
    | _ -> Alcotest.failf "%s: expected Not_contained" name
    | exception Diff.Not_contained msg ->
      check_bool (name ^ ": reason attached") true (String.length msg > 0)
  in
  (* modification *)
  expect_violation "text modified" (parse "<R a=\"1\"><A>z</A><B k=\"v\"/></R>");
  expect_violation "element renamed" (parse "<R a=\"1\"><A2>x</A2><B k=\"v\"/></R>");
  expect_violation "attribute value changed"
    (parse "<R a=\"2\"><A>x</A><B k=\"v\"/></R>");
  (* removal *)
  expect_violation "child removed" (parse "<R a=\"1\"><B k=\"v\"/></R>");
  expect_violation "text removed" (parse "<R a=\"1\"><A/><B k=\"v\"/></R>");
  expect_violation "attribute removed" (parse "<R a=\"1\"><A>x</A><B/></R>");
  (* reorder *)
  expect_violation "children reordered"
    (parse "<R a=\"1\"><B k=\"v\"/><A>x</A></R>")

let test_diff_attr_addition_tolerated () =
  (* The tolerance path: attribute additions on matched nodes at any
     depth (URI promotion, the Recorder's @s/@t labels) are not edits —
     diff reports no additions and matches every old node. *)
  let old_doc = parse "<R id=\"r1\"><A><X>x</X></A></R>" in
  let new_doc =
    parse
      "<R id=\"r1\" s=\"Svc\" t=\"3\"><A id=\"r2\"><X id=\"r3\" k=\"w\">x</X></A></R>"
  in
  let result = Diff.diff ~old_doc ~new_doc in
  check_int "no additions" 0 (List.length result.Diff.added);
  check_int "every old node matched" 4 (List.length result.Diff.matched);
  check_bool "contains" true (Diff.contains ~old_doc ~new_doc)

let test_diff_matched_pairs () =
  let old_doc = parse "<R><A/><B/></R>" in
  let new_doc = parse "<R><A/><N/><B/></R>" in
  let result = Diff.diff ~old_doc ~new_doc in
  check_int "three matches" 3 (List.length result.Diff.matched)

let test_diff_empty_old () =
  let old_doc = Tree.create () in
  let new_doc = parse "<R/>" in
  let result = Diff.diff ~old_doc ~new_doc in
  check_int "whole doc added" 1 (List.length result.Diff.added)

let () =
  Alcotest.run "xml"
    [ ( "tree",
        [ Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "single root" `Quick test_single_root;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "descendants order" `Quick test_descendants_order;
          Alcotest.test_case "resources" `Quick test_resources;
          Alcotest.test_case "copy subtree" `Quick test_copy_subtree;
          Alcotest.test_case "equal subtree" `Quick test_equal_subtree_negative ] );
      ( "parser",
        [ Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "attribute quotes" `Quick test_parse_attr_quotes;
          Alcotest.test_case "comments and cdata" `Quick test_parse_comments_cdata;
          Alcotest.test_case "prolog" `Quick test_parse_declaration_doctype;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "deep nesting" `Quick test_parse_nested_deep;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position ] );
      ( "printer",
        [ Alcotest.test_case "round-trip" `Quick test_print_roundtrip;
          Alcotest.test_case "escaping" `Quick test_print_escaping;
          Alcotest.test_case "visibility filter" `Quick test_print_visible_filter ] );
      ( "states",
        [ Alcotest.test_case "visibility" `Quick test_states;
          Alcotest.test_case "added fragments" `Quick test_added_fragment_roots;
          Alcotest.test_case "monotonicity" `Quick test_monotonic ] );
      ( "restore",
        [ Alcotest.test_case "robust timestamps" `Quick test_restore_timestamps_robust;
          Alcotest.test_case "indent round-trip" `Quick test_indent_roundtrip ] );
      ( "name index",
        [ Alcotest.test_case "lookup" `Quick test_name_index;
          Alcotest.test_case "cache invalidation" `Quick test_name_index_cache_invalidation ] );
      ( "diff",
        [ Alcotest.test_case "appends" `Quick test_diff_appends;
          Alcotest.test_case "insert in middle" `Quick test_diff_insert_middle;
          Alcotest.test_case "nested additions" `Quick test_diff_nested_add;
          Alcotest.test_case "id promotion" `Quick test_diff_id_promotion;
          Alcotest.test_case "violations" `Quick test_diff_violations;
          Alcotest.test_case "reorder rejected" `Quick test_diff_reorder_rejected;
          Alcotest.test_case "Not_contained per violation class" `Quick
            test_diff_not_contained_reasons;
          Alcotest.test_case "attribute addition tolerated" `Quick
            test_diff_attr_addition_tolerated;
          Alcotest.test_case "matched pairs" `Quick test_diff_matched_pairs;
          Alcotest.test_case "empty old" `Quick test_diff_empty_old ] ) ]
