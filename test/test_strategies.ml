(* Tests for the evaluation strategies: every backend in the registry
   (Online, Replay, Rewrite, Incremental, Fused) must produce identical
   provenance graphs; inherited closure; graph invariants (acyclicity,
   temporal soundness). *)

open Weblab_xml
open Weblab_workflow
open Weblab_services
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let link_list g =
  Prov_graph.links g
  |> List.filter (fun l -> not l.Prov_graph.inherited)
  |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
  |> List.sort compare

let links_testable = Alcotest.(list (triple string string string))

let rulebook_of services =
  List.filter_map
    (fun svc ->
      let name = Service.name svc in
      Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Catalog.rules)))
    services

let pipeline ?(seed = 11) ?(units = 3) ?(extended = true) () =
  let doc = Workload.make_document ~units ~seed () in
  let services = Workload.standard_pipeline ~extended () in
  (doc, services, rulebook_of services)

let test_replay_equals_rewrite () =
  List.iter
    (fun seed ->
      let doc, services, rb = pipeline ~seed () in
      let exec = Engine.run doc services in
      let g1 = Engine.provenance ~strategy:`Replay exec rb in
      let g2 = Engine.provenance ~strategy:`Rewrite exec rb in
      check links_testable
        (Printf.sprintf "replay = rewrite (seed %d)" seed)
        (link_list g1) (link_list g2))
    [ 1; 7; 42; 99 ]

let test_online_equals_posthoc () =
  let doc, services, rb = pipeline ~seed:5 () in
  let exec, g_online = Engine.run_online doc services rb in
  let g_replay = Engine.provenance ~strategy:`Replay exec rb in
  check links_testable "online = replay" (link_list g_replay) (link_list g_online)

(* --- backend agreement across the whole registry --- *)

(* The tested list IS the registry: a backend registered in
   {!Strategy.all} is automatically covered by every agreement test
   below, and [test_registry_pinned] fails when the registry and this
   suite's expectations drift apart. *)
let all_kinds : Strategy.kind list = Strategy.all

let test_registry_pinned () =
  check
    Alcotest.(list string)
    "registered backends = tested backends"
    [ "online"; "replay"; "rewrite"; "incremental"; "fused" ]
    Strategy.names;
  (* kind_of_string is the exact inverse over the registry *)
  List.iter
    (fun k ->
      match Strategy.kind_of_string (Strategy.kind_to_string k) with
      | Some k' ->
        check Alcotest.string "round-trip" (Strategy.kind_to_string k)
          (Strategy.kind_to_string k')
      | None -> Alcotest.fail "registered name not parsed")
    Strategy.all;
  check_bool "unknown name rejected" true
    (Strategy.kind_of_string "compiled" = None)

let test_five_way_agreement () =
  (* Same deterministic workload re-run once per backend (execution
     mutates the document): every registered strategy, one link set. *)
  List.iter
    (fun seed ->
      let run kind =
        let doc, services, rb = pipeline ~seed () in
        let _, g = Engine.run_with_strategy kind doc services rb in
        link_list g
      in
      let reference = run `Online in
      List.iter
        (fun kind ->
          check links_testable
            (Printf.sprintf "online = %s (seed %d)"
               (Strategy.kind_to_string kind) seed)
            reference (run kind))
        all_kinds)
    [ 3; 11; 42 ]

let test_five_way_paper_scenario () =
  (* The paper's running example exercises URI promotion (the Normaliser
     promotes node 3 to r3), which forces the Incremental backend to
     reset its memo tables — every backend must still agree. *)
  let run kind =
    let doc = Weblab_scenario.Paper.initial_document () in
    let _, g =
      Engine.run_with_strategy kind doc Weblab_scenario.Paper.services
        (Weblab_scenario.Paper.rulebook ())
    in
    link_list g
  in
  let reference = run `Online in
  check_bool "paper scenario has links" true (reference <> []);
  List.iter
    (fun kind ->
      check links_testable
        ("paper: online = " ^ Strategy.kind_to_string kind)
        reference (run kind))
    all_kinds

let test_incremental_long_chain () =
  (* Repeated services over many calls: the memoized source tables must
     attribute each link to the right call. *)
  let run kind =
    let doc = Workload.make_document ~units:2 ~seed:21 () in
    let services = Workload.chain_pipeline 10 in
    let rb = rulebook_of services in
    let _, g = Engine.run_with_strategy kind doc services rb in
    link_list g
  in
  check links_testable "chain: incremental = online" (run `Online)
    (run `Incremental);
  check links_testable "chain: fused = online" (run `Online) (run `Fused)

let test_nonempty () =
  let doc, services, rb = pipeline ~seed:3 () in
  let _, g = Engine.run_with_provenance doc services rb in
  check_bool "some links" true (Prov_graph.size g > 0);
  check_bool "some labels" true (Prov_graph.labeled_resources g <> [])

let test_graph_invariants () =
  List.iter
    (fun seed ->
      let doc, services, rb = pipeline ~seed () in
      let _, g = Engine.run_with_provenance ~inheritance:true doc services rb in
      check_bool "acyclic" true (Prov_graph.is_acyclic g);
      check_bool "temporally sound" true (Prov_graph.temporally_sound g))
    [ 2; 13; 77 ]

let test_chain_pipeline_strategies () =
  (* Longer chains with repeated services: services called several times
     must still attribute links to the right call. *)
  let doc = Workload.make_document ~units:2 ~seed:21 () in
  let services = Workload.chain_pipeline 10 in
  let rb = rulebook_of services in
  let exec = Engine.run doc services in
  let g1 = Engine.provenance ~strategy:`Replay exec rb in
  let g2 = Engine.provenance ~strategy:`Rewrite exec rb in
  check links_testable "long chain" (link_list g1) (link_list g2);
  check_bool "acyclic" true (Prov_graph.is_acyclic g2)

let test_empty_rulebook () =
  let doc, services, _ = pipeline ~seed:1 () in
  let _, g = Engine.run_with_provenance doc services [] in
  check_int "no links" 0 (Prov_graph.size g);
  check_bool "labels still there" true (Prov_graph.labeled_resources g <> [])

let test_unknown_service_in_rulebook () =
  (* Rules for services that never ran are simply unused. *)
  let doc, services, rb = pipeline ~seed:1 ~extended:false () in
  let rb = ("GhostService", [ Rule_parser.parse "//A ==> //B" ]) :: rb in
  let exec = Engine.run doc services in
  let g = Engine.provenance exec rb in
  check_bool "still fine" true (Prov_graph.is_acyclic g)

(* --- black-box services in the provenance path --- *)

let test_blackbox_provenance_equals_inproc () =
  (* The Normaliser as a true black box (serialized XML in/out, outputs
     identified by the Recorder's diff) yields the same provenance links
     as the in-process variant. *)
  let rules = List.map Rule_parser.parse Normaliser.rules in
  let run svc =
    let doc = Workload.make_document ~units:3 ~seed:23 () in
    let exec = Engine.run doc [ svc ] in
    let g = Engine.provenance exec [ ("Normaliser", rules) ] in
    (* compare by structure: (source unit kind, rule) pairs, since URIs can
       be allocated differently across integration modes *)
    Prov_graph.links g
    |> List.map (fun l ->
           let n = Option.get (Tree.find_resource doc l.Prov_graph.to_uri) in
           (Tree.name doc n, l.Prov_graph.rule))
    |> List.sort compare
  in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "same link structure"
    (run Normaliser.service)
    (run Normaliser.blackbox_service)

let test_blackbox_in_longer_pipeline () =
  (* Mixed pipeline: black-box normaliser feeding in-process services. *)
  let doc = Workload.make_document ~units:2 ~seed:29 () in
  let services =
    [ Normaliser.blackbox_service; Language_extractor.service ]
  in
  let rb =
    [ ("Normaliser", List.map Rule_parser.parse Normaliser.rules);
      ("LanguageExtractor", List.map Rule_parser.parse Language_extractor.rules) ]
  in
  let exec, g = Engine.run_with_provenance doc services rb in
  check_bool "links exist" true (Prov_graph.size g > 0);
  check_bool "acyclic" true (Prov_graph.is_acyclic g);
  (* every language annotation is linked to a text content *)
  let l1_links =
    Prov_graph.links g |> List.filter (fun l -> l.Prov_graph.rule = "L1")
  in
  check_int "one L1 link per unit" 2 (List.length l1_links);
  ignore exec

(* --- inheritance --- *)

let inheritance_doc () =
  (* r1 ── rb (with child rbc) and ra (with child rac, grandchild) *)
  let doc = Xml_parser.parse
    {|<R id="r1"><A id="ra"><AC id="rac"/></A><B id="rb"><BC id="rbc"/></B></R>|}
  in
  doc

let test_inheritance_closure () =
  let doc = inheritance_doc () in
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~rule:"m" ~from_uri:"rb" ~to_uri:"ra";
  let g = Inheritance.close doc g in
  let has a b = Prov_graph.has_link g ~from_uri:a ~to_uri:b in
  (* descendants of b inherit *)
  check_bool "rbc -> ra" true (has "rbc" "ra");
  (* descendants of a are inherited *)
  check_bool "rb -> rac" true (has "rb" "rac");
  (* ancestors of a are inherited *)
  check_bool "rb -> r1" true (has "rb" "r1");
  (* cross product *)
  check_bool "rbc -> rac" true (has "rbc" "rac");
  (* nothing flows the other way *)
  check_bool "no ra -> rb" false (has "ra" "rb");
  (* ancestors of b do NOT inherit b's dependencies *)
  check_bool "no r1 -> ra" false (has "r1" "ra")

let test_inheritance_marks () =
  let doc = inheritance_doc () in
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~rule:"m" ~from_uri:"rb" ~to_uri:"ra";
  let g = Inheritance.close doc g in
  let inherited =
    List.filter (fun l -> l.Prov_graph.inherited) (Prov_graph.links g)
  in
  let explicit =
    List.filter (fun l -> not l.Prov_graph.inherited) (Prov_graph.links g)
  in
  check_int "one explicit" 1 (List.length explicit);
  check_bool "some inherited" true (inherited <> [])

let test_inheritance_all_nodes () =
  (* With resources_only:false, unlabeled nodes join the closure via
     pseudo-URIs (the 4 -> 2 link of the paper). *)
  let doc =
    Xml_parser.parse {|<R id="r1"><M><N id="rn"/></M><T id="rt"/></R>|}
  in
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~rule:"m" ~from_uri:"rt" ~to_uri:"rn";
  let g = Inheritance.close ~resources_only:false doc g in
  (* the M node (unlabeled ancestor of rn) is now a target *)
  let m_pseudo =
    Prov_graph.links g
    |> List.exists (fun l ->
           l.Prov_graph.from_uri = "rt"
           && String.length l.Prov_graph.to_uri > 0
           && l.Prov_graph.to_uri.[0] = '#')
  in
  check_bool "pseudo-node link" true m_pseudo

let test_inheritance_idempotent () =
  let doc = inheritance_doc () in
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~rule:"m" ~from_uri:"rb" ~to_uri:"ra";
  let g = Inheritance.close doc g in
  let n1 = Prov_graph.size g in
  let g = Inheritance.close doc g in
  check_int "idempotent" n1 (Prov_graph.size g)

(* --- graph primitives --- *)

let test_acyclicity_detection () =
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~from_uri:"a" ~to_uri:"b";
  Prov_graph.add_link g ~from_uri:"b" ~to_uri:"c";
  check_bool "acyclic" true (Prov_graph.is_acyclic g);
  Prov_graph.add_link g ~from_uri:"c" ~to_uri:"a";
  check_bool "cycle" false (Prov_graph.is_acyclic g)

let test_temporal_soundness_detection () =
  let g = Prov_graph.create () in
  Prov_graph.set_label g "a" { Trace.service = "S"; time = 2 };
  Prov_graph.set_label g "b" { Trace.service = "T"; time = 1 };
  Prov_graph.add_link g ~from_uri:"a" ~to_uri:"b";
  check_bool "sound" true (Prov_graph.temporally_sound g);
  Prov_graph.add_link g ~from_uri:"b" ~to_uri:"a";
  check_bool "unsound" false (Prov_graph.temporally_sound g)

let test_dedup_links () =
  let g = Prov_graph.create () in
  Prov_graph.add_link g ~rule:"m" ~from_uri:"a" ~to_uri:"b";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"a" ~to_uri:"b";
  check_int "dedup" 1 (Prov_graph.size g);
  Prov_graph.add_link g ~rule:"other" ~from_uri:"a" ~to_uri:"b";
  check_int "distinct rule kept" 2 (Prov_graph.size g);
  Prov_graph.add_link g ~from_uri:"a" ~to_uri:"a";
  check_int "self dropped" 2 (Prov_graph.size g)

let () =
  Alcotest.run "strategies"
    [ ( "agreement",
        [ Alcotest.test_case "replay = rewrite" `Quick test_replay_equals_rewrite;
          Alcotest.test_case "online = post-hoc" `Quick test_online_equals_posthoc;
          Alcotest.test_case "registry = tested list" `Quick test_registry_pinned;
          Alcotest.test_case "five-way agreement" `Quick test_five_way_agreement;
          Alcotest.test_case "five-way paper scenario" `Quick test_five_way_paper_scenario;
          Alcotest.test_case "incremental long chain" `Quick test_incremental_long_chain;
          Alcotest.test_case "non-empty" `Quick test_nonempty;
          Alcotest.test_case "invariants" `Quick test_graph_invariants;
          Alcotest.test_case "long chains" `Quick test_chain_pipeline_strategies;
          Alcotest.test_case "empty rulebook" `Quick test_empty_rulebook;
          Alcotest.test_case "unknown service" `Quick test_unknown_service_in_rulebook ] );
      ( "blackbox",
        [ Alcotest.test_case "≡ inproc provenance" `Quick test_blackbox_provenance_equals_inproc;
          Alcotest.test_case "mixed pipeline" `Quick test_blackbox_in_longer_pipeline ] );
      ( "inheritance",
        [ Alcotest.test_case "closure" `Quick test_inheritance_closure;
          Alcotest.test_case "marking" `Quick test_inheritance_marks;
          Alcotest.test_case "all nodes" `Quick test_inheritance_all_nodes;
          Alcotest.test_case "idempotent" `Quick test_inheritance_idempotent ] );
      ( "graph",
        [ Alcotest.test_case "acyclicity" `Quick test_acyclicity_detection;
          Alcotest.test_case "temporal soundness" `Quick test_temporal_soundness_detection;
          Alcotest.test_case "dedup" `Quick test_dedup_links ] ) ]
