(* Streaming ingest tests: chunk-split invariance of the feed parser
   (events, trees and error positions must not depend on where chunk
   boundaries fall), equivalence of the event-driven index with the
   post-hoc [Index.build], numeric character reference validation, and
   deep-chain regressions for every iterative traversal. *)

open Weblab_xml

let check = Alcotest.check
let check_str = check Alcotest.string
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- helpers ---------- *)

(* Cut [s] at the given positions (any ints; normalized and deduped). *)
let split s cuts =
  let n = String.length s in
  let cuts =
    List.filter (fun c -> c > 0 && c < n) cuts |> List.sort_uniq compare
  in
  let rec go start = function
    | [] -> [ String.sub s start (n - start) ]
    | c :: rest -> String.sub s start (c - start) :: go c rest
  in
  go 0 cuts

(* Outcome of a parse, comparable across chunkings: the canonical print
   of the tree on success, the exact error position and message on
   failure. *)
let outcome_whole s =
  match Xml_parser.parse s with
  | doc -> Ok (Printer.to_string doc)
  | exception Xml_parser.Error { line; col; message } ->
    Error (line, col, message)

let outcome_chunked s cuts =
  match
    let t = Ingest.create () in
    List.iter (Ingest.feed_string t) (split s cuts);
    let doc, _ = Ingest.finish t in
    doc
  with
  | doc -> Ok (Printer.to_string doc)
  | exception Xml_parser.Error { line; col; message } ->
    Error (line, col, message)

let outcome_to_string = function
  | Ok s -> "ok: " ^ s
  | Error (l, c, m) -> Printf.sprintf "error %d:%d %s" l c m

let check_outcome what exp got =
  check_str what (outcome_to_string exp) (outcome_to_string got)

(* ---------- unit tests ---------- *)

(* A document exercising every multi-byte token a chunk boundary can
   split: tags, attributes in both quote styles, entities, numeric
   references, comments, PIs, CDATA and an XML declaration. *)
let tricky =
  "<?xml version=\"1.0\"?><!-- lead --><r a=\"x &amp; y\" b='2'>\n\
   text &lt;one&gt; &#65;&#x1F600;<!-- in --><![CDATA[<raw>&amp;]]>\n\
   <child/>tail<?pi data?></r><!-- trail -->"

let test_one_byte_feed () =
  let whole = outcome_whole tricky in
  (match whole with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "tricky document should parse");
  let t = Ingest.create () in
  String.iter (fun c -> Ingest.feed_string t (String.make 1 c)) tricky;
  let doc, _ = Ingest.finish t in
  check_outcome "1-byte chunks" whole (Ok (Printer.to_string doc))

let test_every_split_of_tricky () =
  let whole = outcome_whole tricky in
  for cut = 0 to String.length tricky do
    check_outcome
      (Printf.sprintf "split at %d" cut)
      whole
      (outcome_chunked tricky [ cut ])
  done

let test_error_positions_chunk_invariant () =
  (* Malformed inputs: whatever the error is, it must not move when the
     input arrives in pieces. *)
  let inputs =
    [ "<a>\n<b>\n</c>\n</a>"; "<r"; "<r><x</r>"; "<r>&unknown;</r>";
      "<r>&#0;</r>"; "<r>&#xD800;</r>"; "<r/>x"; "junk"; "";
      "<r a=1/>"; "<r>&#x110000;</r>"; "<r><![CDATA[never closed" ]
  in
  List.iter
    (fun s ->
      let whole = outcome_whole s in
      for cut = 0 to String.length s do
        check_outcome
          (Printf.sprintf "%S split at %d" s cut)
          whole
          (outcome_chunked s [ cut ])
      done)
    inputs

let test_charref_validation () =
  let decoded s =
    let doc = Xml_parser.parse s in
    Tree.string_value doc (Tree.root doc)
  in
  check_str "decimal and hex" "AB" (decoded "<r>&#65;&#x42;</r>");
  check_str "astral plane" "\xF0\x9F\x98\x80" (decoded "<r>&#x1F600;</r>");
  check_str "tab survives" "\tx" (decoded "<r>&#9;x</r>");
  let rejected s ref_text =
    match Xml_parser.parse s with
    | _ -> Alcotest.fail (Printf.sprintf "%s should be rejected" ref_text)
    | exception Xml_parser.Error { message; _ } ->
      check_str
        (ref_text ^ " message")
        (Printf.sprintf
           "invalid character reference &%s;: not an XML character" ref_text)
        message
  in
  rejected "<r>&#0;</r>" "#0";
  rejected "<r>&#8;</r>" "#8";
  rejected "<r>&#xD800;</r>" "#xD800";
  rejected "<r>&#xDFFF;</r>" "#xDFFF";
  rejected "<r>&#x110000;</r>" "#x110000";
  rejected "<r a=\"&#xFFFE;\"/>" "#xFFFE"

let test_streamed_index_smoke () =
  let doc, idx = Ingest.of_string ~index:true tricky in
  let idx = Option.get idx in
  check_bool "valid_for" true (Index.valid_for idx doc);
  let built = Index.build doc in
  check
    (Alcotest.list Alcotest.int)
    "elements" (Index.elements built) (Index.elements idx);
  check
    (Alcotest.list Alcotest.int)
    "by label" (Index.nodes_with_label built "child")
    (Index.nodes_with_label idx "child");
  for n = 0 to Tree.size doc - 1 do
    check_int
      (Printf.sprintf "size of %d" n)
      (Index.subtree_size built n) (Index.subtree_size idx n)
  done;
  (* The ingested index seeds the shared cache: for_tree is a hit. *)
  check_bool "cache seeded" true (Index.for_tree doc == idx)

let test_deep_chain () =
  let n = 200_000 in
  let buf = Buffer.create ((3 + 4) * n + 8) in
  for _ = 1 to n do
    Buffer.add_string buf "<A>"
  done;
  Buffer.add_string buf "deep";
  for _ = 1 to n do
    Buffer.add_string buf "</A>"
  done;
  let s = Buffer.contents buf in
  (* Parse streams through the feed machine; no recursion on depth. *)
  let doc = Xml_parser.parse s in
  check_int "size" (n + 1) (Tree.size doc);
  (* Printing drives an explicit work stack. *)
  let printed = Printer.to_string doc in
  check_int "printed length" (String.length s) (String.length printed);
  check_str "roundtrip" s printed;
  (* Channel output takes the same iterative path. *)
  let tmp = Filename.temp_file "weblab" ".xml" in
  let oc = open_out_bin tmp in
  Printer.to_channel oc doc;
  close_out oc;
  let ic = open_in_bin tmp in
  let from_file = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  check_bool "to_channel = to_string" true (String.equal printed from_file);
  (* Copy, structural equality and string-value: explicit stacks too. *)
  let doc2 = Tree.create () in
  let r = Tree.copy_subtree doc2 ~src:doc (Tree.root doc) ~parent:Tree.no_node in
  check_bool "copy equal" true
    (Tree.equal_subtree doc (Tree.root doc) doc2 r);
  check_str "string_value" "deep" (Tree.string_value doc2 r);
  (* Timestamp restoration walks iteratively as well. *)
  Doc_state.restore_timestamps doc;
  check_int "restored created" 0 (Tree.created doc (Tree.root doc))

let test_to_buffer () =
  let doc = Xml_parser.parse "<r><a k=\"v\">hi</a><b/></r>" in
  let buf = Buffer.create 64 in
  Printer.to_buffer buf doc;
  check_str "to_buffer" (Printer.to_string doc) (Buffer.contents buf);
  let buf2 = Buffer.create 64 in
  Printer.to_buffer ~indent:true buf2 doc;
  check_str "to_buffer indent"
    (Printer.to_string ~indent:true doc)
    (Buffer.contents buf2)

(* ---------- properties ---------- *)

open QCheck

let gen_name = Gen.oneofl [ "A"; "B"; "C"; "D"; "E" ]
let gen_attr_name = Gen.oneofl [ "k"; "v"; "g"; "src" ]
let gen_attr_value = Gen.oneofl [ "1"; "2"; "x &amp; y"; "d\xc3\xa9j\xc3\xa0" ]

let gen_text =
  Gen.oneofl
    [ "hello"; "a &lt; b"; "x &amp; y"; "&#65;&#x1F600;"; "42"; "w w" ]

(* Random XML text built directly (entities stay entities, so chunk
   boundaries can fall inside them). *)
let rec gen_fragment buf depth st =
  let name = gen_name st in
  Buffer.add_char buf '<';
  Buffer.add_string buf name;
  let nattrs = Gen.int_bound 2 st in
  for i = 0 to nattrs - 1 do
    Buffer.add_string buf
      (Printf.sprintf " %s%d=\"%s\"" (gen_attr_name st) i (gen_attr_value st))
  done;
  if depth = 0 || Gen.bool st then Buffer.add_string buf "/>"
  else begin
    Buffer.add_char buf '>';
    let kids = Gen.int_bound 2 st in
    for _ = 1 to kids do
      if Gen.bool st then Buffer.add_string buf (gen_text st);
      gen_fragment buf (depth - 1) st
    done;
    if Gen.bool st then Buffer.add_string buf (gen_text st);
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  end

let gen_xml : string Gen.t =
 fun st ->
  let buf = Buffer.create 256 in
  if Gen.bool st then Buffer.add_string buf "<!-- p -->";
  Buffer.add_string buf "<R>";
  let kids = 1 + Gen.int_bound 2 st in
  for _ = 1 to kids do
    gen_fragment buf 2 st
  done;
  Buffer.add_string buf "</R>";
  Buffer.contents buf

let gen_cuts = Gen.list_size (Gen.int_bound 12) Gen.nat

let arb_xml_cuts =
  make
    ~print:(fun (s, cuts) ->
      Printf.sprintf "%S cuts=[%s]" s
        (String.concat ";" (List.map string_of_int cuts)))
    (Gen.pair gen_xml gen_cuts)

let prop_chunked_roundtrip =
  Test.make ~name:"chunked feed = whole-string parse" ~count:500 arb_xml_cuts
    (fun (s, cuts) ->
      let cuts = List.map (fun i -> i mod (String.length s + 1)) cuts in
      outcome_chunked s cuts = outcome_whole s)

(* Random corruption of well-formed input: errors (or survival) must be
   identical under re-chunking, position included. *)
let arb_mutated_cuts =
  make
    ~print:(fun (s, cuts) ->
      Printf.sprintf "%S cuts=[%s]" s
        (String.concat ";" (List.map string_of_int cuts)))
    Gen.(
      pair
        (map2
           (fun s (kind, pos, c) ->
             let n = String.length s in
             let pos = pos mod (n + 1) in
             match kind mod 3 with
             | 0 -> String.sub s 0 pos (* truncate *)
             | 1 ->
               (* insert a hostile character *)
               String.sub s 0 pos ^ String.make 1 c
               ^ String.sub s pos (n - pos)
             | _ ->
               (* delete one character *)
               if n = 0 then s
               else
                 let pos = pos mod n in
                 String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1))
           gen_xml
           (triple nat nat
              (oneofl [ '<'; '&'; '>'; '"'; '\''; '/'; ';'; '#'; 'x'; ' ' ])))
        gen_cuts)

let prop_error_chunk_invariant =
  Test.make ~name:"error positions survive re-chunking" ~count:500
    arb_mutated_cuts (fun (s, cuts) ->
      let cuts = List.map (fun i -> i mod (String.length s + 1)) cuts in
      outcome_chunked s cuts = outcome_whole s)

let prop_streamed_index_equals_build =
  Test.make ~name:"streamed index = Index.build" ~count:300
    (make ~print:(fun s -> s) gen_xml)
    (fun s ->
      let doc, idx = Ingest.of_string ~index:true s in
      let idx = Option.get idx in
      let built = Index.build doc in
      Index.valid_for idx doc
      && Index.elements built = Index.elements idx
      && List.for_all
           (fun l ->
             Index.nodes_with_label built l = Index.nodes_with_label idx l)
           [ "R"; "A"; "B"; "C"; "D"; "E" ]
      && List.for_all
           (fun a ->
             Index.nodes_with_some_attr built a
             = Index.nodes_with_some_attr idx a)
           Index.indexed_attrs
      &&
      let n = Tree.size doc in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Index.subtree_size built i <> Index.subtree_size idx i then
          ok := false;
        for j = 0 to n - 1 do
          if
            Index.strictly_below built ~ancestor:i j
            <> Index.strictly_below idx ~ancestor:i j
            || Index.below_or_self built ~ancestor:i j
               <> Index.below_or_self idx ~ancestor:i j
          then ok := false
        done
      done;
      !ok)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "ingest"
    [ ( "chunking",
        [ Alcotest.test_case "one-byte feed" `Quick test_one_byte_feed;
          Alcotest.test_case "every split of a tricky doc" `Quick
            test_every_split_of_tricky;
          Alcotest.test_case "error positions are chunk-invariant" `Quick
            test_error_positions_chunk_invariant ] );
      ( "charrefs",
        [ Alcotest.test_case "numeric reference validation" `Quick
            test_charref_validation ] );
      ( "index",
        [ Alcotest.test_case "streamed index smoke" `Quick
            test_streamed_index_smoke ] );
      ( "depth",
        [ Alcotest.test_case "200k-deep chain" `Quick test_deep_chain ] );
      ( "printer",
        [ Alcotest.test_case "to_buffer" `Quick test_to_buffer ] );
      ( "properties",
        to_alcotest
          [ prop_chunked_roundtrip; prop_error_chunk_invariant;
            prop_streamed_index_equals_build ] ) ]
