(* The telemetry layer: the recorder's transparency contract (telemetry
   on vs. off is bit-identical provenance for every strategy, jobs value
   and fault plan), the deterministic event stream under the logical
   clock (golden JSONL and Chrome-trace output), the counters mirroring
   Analytics.failure_stats, and the meta-provenance acceptance criterion:
   every inferred link is prov:wasGeneratedBy a rule-evaluation
   activity. *)

open Weblab_workflow
open Weblab_services
open Weblab_prov
open QCheck
module T = Weblab_obs.Telemetry
module M = Weblab_obs.Metrics

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* The recorder is process-global; every test restores the Off state so
   the rest of the suite runs uninstrumented. *)
let with_telemetry ~level ~meta ~clock f =
  T.set_level level;
  T.set_meta meta;
  T.set_clock clock;
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.set_level T.Off;
      T.set_meta false;
      T.set_clock T.Wall;
      T.reset ())
    f

let counter_value name =
  match List.assoc_opt name (T.counters ()) with Some n -> n | None -> 0

(* ---------- shared workload (same shape as test_parallel) ---------- *)

let link_list g =
  Prov_graph.links g
  |> List.filter (fun l -> not l.Prov_graph.inherited)
  |> List.map (fun l ->
         (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
  |> List.sort compare

let links_testable = Alcotest.(list (triple string string string))

let rulebook_of services =
  List.filter_map
    (fun svc ->
      let name = Service.name svc in
      Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Catalog.rules)))
    services

let plan_faults =
  [ Faulty.Crash; Faulty.Garbage_xml; Faulty.Mutate_committed;
    Faulty.Duplicate_uri ]

let skip_policy =
  { Orchestrator.default_policy with
    retries = 1; backoff_ms = 1.; on_failure = `Skip }

let workload ~seed ~faulty =
  let doc = Workload.make_document ~units:2 ~seed () in
  let services = Workload.standard_pipeline ~extended:true () in
  let rb = rulebook_of services in
  let services =
    if faulty then
      Faulty.wrap_all (Faulty.plan ~faults:plan_faults ~rate:0.4 ~seed ()) services
    else services
  in
  (doc, services, rb)

let run_strategy kind ~jobs ~seed ~faulty =
  let doc, services, rb = workload ~seed ~faulty in
  let exec, g =
    Engine.run_with_strategy ~policy:skip_policy ~jobs kind doc services rb
  in
  (exec, link_list g, Engine.to_turtle ~trace:exec.Engine.trace g)

let all_kinds : Strategy.kind list = Strategy.all

(* ---------- the recorder itself ---------- *)

let test_logical_clock () =
  with_telemetry ~level:T.Full ~meta:false ~clock:T.Logical (fun () ->
      let a = T.now_us () and b = T.now_us () and c = T.now_us () in
      check_bool "ticks strictly increase" true (a < b && b < c);
      T.reset ();
      check (Alcotest.float 0.0) "reset restarts the tick counter" a
        (T.now_us ()))

let test_disabled_recorder_records_nothing () =
  with_telemetry ~level:T.Off ~meta:false ~clock:T.Wall (fun () ->
      let _ = run_strategy `Rewrite ~jobs:2 ~seed:3 ~faulty:true in
      check_int "no counters" 0 (List.length (T.counters ()));
      check_int "no events" 0 (List.length (T.events ()));
      check_int "no meta activities" 0 (List.length (T.meta_activities ()));
      let tr = T.timed (fun () -> 7) in
      check_int "timed still returns the value" 7 tr.T.v;
      check (Alcotest.float 0.0) "timed reads no clock when off" 0.0 tr.T.t1)

let test_counters_level_buffers_no_events () =
  with_telemetry ~level:T.Counters ~meta:false ~clock:T.Wall (fun () ->
      let _ = run_strategy `Rewrite ~jobs:1 ~seed:3 ~faulty:false in
      check_bool "counters accumulate" true (T.counters () <> []);
      check_int "no span events at Counters level" 0
        (List.length (T.events ())))

(* ---------- epochs: daemon counters are monotonic since boot ---------- *)

let test_uptime_monotonic_across_reset () =
  let u0 = T.uptime_us () in
  with_telemetry ~level:T.Counters ~meta:false ~clock:T.Wall (fun () ->
      T.incr (T.counter "t.epoch.probe");
      T.reset ();
      let u1 = T.uptime_us () in
      check_bool "uptime keeps ticking across reset" true (u1 >= u0 && u1 > 0.);
      check_int "reset still zeroes counters" 0
        (counter_value "t.epoch.probe");
      (* [reset] restamps the span-timestamp epoch but never the boot
         epoch: right after a reset the span clock reads (near) zero
         while uptime has the whole process behind it. *)
      check_bool "span clock restarts below uptime" true
        (T.now_us () <= T.uptime_us ()))

(* ---------- gauges ---------- *)

let test_gauges () =
  with_telemetry ~level:T.Counters ~meta:false ~clock:T.Wall (fun () ->
      let g = M.gauge "t.gauge" in
      M.set g 5;
      M.add g 3;
      check_int "set then add" 8 (M.gauge_value g);
      M.add g (-8);
      check_int "a gauge goes back down" 0 (M.gauge_value g);
      M.set g 42;
      check_bool "registered gauges appear in the listing" true
        (List.mem ("t.gauge", 42) (M.gauges ()));
      T.set_level T.Off;
      M.set g 7;
      M.add g 7;
      check_int "writes are gated on the level" 42 (M.gauge_value g))

(* ---------- histogram bucket layout ---------- *)

let prop_bucket_roundtrip =
  Test.make
    ~name:"hist buckets: v lands in [lo,hi], width <= lo/4, monotone"
    ~count:1000
    (int_bound 1_000_000_000)
    (fun v ->
      let i = M.bucket_of_us v in
      let hi = M.bucket_upper_us i in
      let lo = if i = 0 then 0 else M.bucket_upper_us (i - 1) + 1 in
      lo <= v && v <= hi
      && (v < 4 || hi - lo <= lo / 4)  (* <= 25% bucket width, so the
                                          reported upper errs <= 25% high *)
      && M.bucket_of_us hi = i
      && M.bucket_of_us (hi + 1) = i + 1)

let find_hist name =
  match
    List.find_opt
      (fun hv -> String.equal hv.M.hv_name name)
      (M.snapshot ()).M.sn_hists
  with
  | Some hv -> hv
  | None -> Alcotest.failf "histogram %S missing from the snapshot" name

let test_hist_quantiles () =
  with_telemetry ~level:T.Counters ~meta:false ~clock:T.Wall (fun () ->
      let h = M.hist "t.hist.q" in
      for i = 1 to 100 do
        M.observe_us h (float_of_int i)
      done;
      let hv = find_hist "t.hist.q" in
      check_int "count" 100 hv.M.hv_count;
      check_int "sum" 5050 hv.M.hv_sum_us;
      check_int "max is exact" 100 hv.M.hv_max_us;
      (* Quantiles report the bucket upper bound: never below the true
         rank value, never more than a bucket width (<= 25%) above. *)
      let within q v =
        check_bool
          (Printf.sprintf "p%d in [%d, %d]" (int_of_float (q *. 100.)) v
             (v + (v / 4)))
          true
          (let p =
             if q = 0.5 then hv.M.hv_p50_us
             else if q = 0.9 then hv.M.hv_p90_us
             else hv.M.hv_p99_us
           in
           p >= v && p <= v + (v / 4))
      in
      within 0.5 50;
      within 0.9 90;
      within 0.99 99;
      check_int "bucket counts total the observations" 100
        (List.fold_left (fun acc (_, n) -> acc + n) 0 hv.M.hv_buckets))

let test_hist_merge () =
  with_telemetry ~level:T.Counters ~meta:false ~clock:T.Wall (fun () ->
      let a = M.hist "t.hist.merge.a" and b = M.hist "t.hist.merge.b" in
      for i = 1 to 10 do
        M.observe_us a (float_of_int i)
      done;
      for i = 11 to 20 do
        M.observe_us b (float_of_int i)
      done;
      M.merge_into ~into:a b;
      let hv = find_hist "t.hist.merge.a" in
      check_int "merged count" 20 hv.M.hv_count;
      check_int "merged sum" 210 hv.M.hv_sum_us;
      check_int "merged max" 20 hv.M.hv_max_us;
      let hb = find_hist "t.hist.merge.b" in
      check_int "source is untouched" 10 hb.M.hv_count)

let test_hist_off_records_nothing () =
  with_telemetry ~level:T.Off ~meta:false ~clock:T.Wall (fun () ->
      let h = M.hist "t.hist.off" in
      M.observe_us h 5.;
      check_int "timer returns the value" 9 (M.time h (fun () -> 9));
      let hv = find_hist "t.hist.off" in
      check_int "nothing recorded when off" 0 hv.M.hv_count)

(* ---------- span retention ring ---------- *)

let prop_ring_cap =
  Test.make
    ~name:"span ring: buffered <= cap always, every eviction is tallied"
    ~count:100
    (pair (int_range 1 64) (int_range 0 300))
    (fun (cap, n) ->
      with_telemetry ~level:T.Full ~meta:false ~clock:T.Logical (fun () ->
          T.set_retention (Some cap);
          Fun.protect
            ~finally:(fun () -> T.set_retention None)
            (fun () ->
              for i = 1 to n do
                T.emit_instant (Printf.sprintf "e%d" i)
              done;
              let es = T.events () in
              T.events_buffered () = min n cap
              && T.spans_dropped () = max 0 (n - cap)
              && List.length es = min n cap
              (* survivors are exactly the newest, in emission order *)
              && List.mapi (fun k e -> (k, e.T.e_name)) es
                 |> List.for_all (fun (k, name) ->
                        String.equal name
                          (Printf.sprintf "e%d" (max 0 (n - cap) + k + 1))))))

(* ---------- counters mirror Analytics.failure_stats (satellite) ---------- *)

let test_counters_match_failure_stats () =
  with_telemetry ~level:T.Counters ~meta:false ~clock:T.Wall (fun () ->
      let exec, _, _ = run_strategy `Rewrite ~jobs:1 ~seed:7 ~faulty:true in
      let st = Analytics.failure_stats exec.Engine.trace in
      check_int "orch.calls.committed" st.Analytics.calls_committed
        (counter_value "orch.calls.committed");
      check_int "orch.calls.failed" st.Analytics.calls_failed
        (counter_value "orch.calls.failed");
      check_int "orch.calls.retried" st.Analytics.calls_retried
        (counter_value "orch.calls.retried");
      check_int "orch.attempts" st.Analytics.attempts_total
        (counter_value "orch.attempts");
      check_bool "a faulty run saw failures" true (st.Analytics.calls_failed > 0))

(* ---------- transparency: telemetry must not change inference ---------- *)

(* The instrumented side runs with everything on: spans (under a bounded
   retention ring, the daemon configuration), meta-provenance, and the
   gauge/histogram hooks the Counters level already arms.  Transparency
   must hold for the union. *)
let run_instrumented kind ~jobs ~seed ~faulty =
  with_telemetry ~level:T.Full ~meta:true ~clock:T.Logical (fun () ->
      T.set_retention (Some 128);
      Fun.protect
        ~finally:(fun () -> T.set_retention None)
        (fun () ->
          let _, links, turtle = run_strategy kind ~jobs ~seed ~faulty in
          (links, turtle)))

let run_plain kind ~jobs ~seed ~faulty =
  let _, links, turtle = run_strategy kind ~jobs ~seed ~faulty in
  (links, turtle)

let test_transparency_smoke () =
  List.iter
    (fun faulty ->
      List.iter
        (fun kind ->
          let l0, s0 = run_plain kind ~jobs:4 ~seed:11 ~faulty in
          let l1, s1 = run_instrumented kind ~jobs:4 ~seed:11 ~faulty in
          let tag =
            Printf.sprintf "%s%s" (Strategy.kind_to_string kind)
              (if faulty then " (faulty)" else "")
          in
          check links_testable (tag ^ ": links unchanged") l0 l1;
          check Alcotest.string (tag ^ ": turtle unchanged") s0 s1;
          check_bool (tag ^ ": non-trivial graph") true (l0 <> []))
        all_kinds)
    [ false; true ]

let prop_telemetry_transparent =
  Test.make
    ~name:"full tracing + meta-prov yields bit-identical links and Turtle"
    ~count:15
    (make
       ~print:(fun (seed, jobs, faulty) ->
         Printf.sprintf "seed=%d jobs=%d faulty=%b" seed jobs faulty)
       Gen.(triple (int_bound 1_000_000) (int_range 2 8) bool))
    (fun (seed, jobs, faulty) ->
      List.for_all
        (fun kind ->
          let l0, s0 = run_plain kind ~jobs ~seed ~faulty in
          let l1, s1 = run_instrumented kind ~jobs ~seed ~faulty in
          l0 = l1 && s0 = s1)
        all_kinds)

(* ---------- meta-provenance acceptance ---------- *)

let test_meta_prov_covers_every_link () =
  List.iter
    (fun faulty ->
      List.iter
        (fun kind ->
          with_telemetry ~level:T.Off ~meta:true ~clock:T.Logical (fun () ->
              let _, links, _ = run_strategy kind ~jobs:3 ~seed:11 ~faulty in
              let store =
                Prov_export.meta_to_store (T.meta_activities ())
              in
              let open Weblab_rdf in
              check_bool "meta store is non-trivial" true
                (Triple_store.size store > 0);
              List.iter
                (fun (from_uri, to_uri, rule) ->
                  let subj = Prov_vocab.link_iri ~from_uri ~to_uri ~rule in
                  match
                    Triple_store.find store
                      (Some subj, Some Prov_vocab.was_generated_by, None)
                  with
                  | [ (_, _, act) ] ->
                    (* ...and the generating activity is a typed
                       rule-evaluation with an interval. *)
                    check_bool
                      (Printf.sprintf "%s->%s: generator is an activity"
                         from_uri to_uri)
                      true
                      (Triple_store.mem store
                         (act, Prov_vocab.rdf_type, Prov_vocab.activity));
                    check_int
                      (Printf.sprintf "%s->%s: activity has an interval"
                         from_uri to_uri)
                      1
                      (List.length
                         (Triple_store.find store
                            (Some act, Some Prov_vocab.started_at_time, None)))
                  | [] ->
                    Alcotest.failf
                      "%s: link %s -> %s (%s) has no wasGeneratedBy activity"
                      (Strategy.kind_to_string kind) from_uri to_uri rule
                  | _ ->
                    Alcotest.failf
                      "%s: link %s -> %s (%s) generated by several activities"
                      (Strategy.kind_to_string kind) from_uri to_uri rule)
                links))
        all_kinds)
    [ false; true ]

(* ---------- golden sink output (logical clock, jobs=1) ----------

   Regenerate after a legitimate change with:
     dune exec bin/main.exe -- run --jobs 1 --logical-clock \
       --events-out test/golden/telemetry_events.jsonl.txt \
       --trace-out  test/golden/telemetry_trace.json.txt > /dev/null *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then
    Filename.concat "golden" name
  else Filename.concat "test/golden" name

(* Exactly the CLI's default pipeline (units=3, seed=42, rewrite), so the
   goldens can be regenerated with the command above. *)
let default_cli_run () =
  let doc = Workload.make_document ~units:3 ~seed:42 () in
  let services = Workload.standard_pipeline ~extended:false () in
  let rb = rulebook_of services in
  ignore
    (Engine.run_with_strategy ~policy:Orchestrator.default_policy ~jobs:1
       `Rewrite doc services rb)

let check_golden name actual =
  let expected = read_file (golden_path name) in
  if not (String.equal expected actual) then begin
    let n = min (String.length expected) (String.length actual) in
    let rec diff i =
      if i < n && expected.[i] = actual.[i] then diff (i + 1) else i
    in
    let i = diff 0 in
    Alcotest.failf
      "%s diverged from the golden file at byte %d:\n\
       expected … %S\n  actual … %S"
      name i
      (String.sub expected i (min 60 (String.length expected - i)))
      (String.sub actual i (min 60 (String.length actual - i)))
  end

let test_golden_jsonl () =
  with_telemetry ~level:T.Full ~meta:false ~clock:T.Logical (fun () ->
      default_cli_run ();
      check_golden "telemetry_events.jsonl.txt" (Weblab_obs.Sinks.jsonl ()))

let test_golden_chrome_trace () =
  with_telemetry ~level:T.Full ~meta:false ~clock:T.Logical (fun () ->
      default_cli_run ();
      check_golden "telemetry_trace.json.txt" (Weblab_obs.Sinks.chrome_trace ()))

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "recorder",
        [ Alcotest.test_case "logical clock" `Quick test_logical_clock;
          Alcotest.test_case "disabled recorder records nothing" `Quick
            test_disabled_recorder_records_nothing;
          Alcotest.test_case "Counters level buffers no events" `Quick
            test_counters_level_buffers_no_events;
          Alcotest.test_case "uptime is monotonic across reset" `Quick
            test_uptime_monotonic_across_reset ] );
      ( "metrics",
        [ Alcotest.test_case "gauges: set/add, gating, listing" `Quick
            test_gauges;
          Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "histogram merge" `Quick test_hist_merge;
          Alcotest.test_case "histogram off records nothing" `Quick
            test_hist_off_records_nothing ]
        @ to_alcotest [ prop_bucket_roundtrip; prop_ring_cap ] );
      ( "counters",
        [ Alcotest.test_case "orchestrator counters = failure_stats" `Quick
            test_counters_match_failure_stats ] );
      ( "golden",
        [ Alcotest.test_case "JSONL event log" `Quick test_golden_jsonl;
          Alcotest.test_case "Chrome trace JSON" `Quick
            test_golden_chrome_trace ] );
      ( "meta-prov",
        [ Alcotest.test_case "every link wasGeneratedBy an evaluation" `Quick
            test_meta_prov_covers_every_link ] );
      ( "transparency",
        [ Alcotest.test_case "all strategies, telemetry on = off" `Quick
            test_transparency_smoke ] );
      ( "properties", to_alcotest [ prop_telemetry_transparent ] ) ]
