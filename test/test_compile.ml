(* The fused rule-set compiler: trie interning and prefix sharing, CSE
   (identical patterns collapse onto one shared expression), plan
   lowering and join-side choice, the fused pass's bit-identity with
   [Eval.eval], the stable explain dump (golden-pinned, regenerate
   with:  dune exec bin/main.exe -- figures --explain-plan > test/golden/plan.txt),
   and the end-to-end property that the Fused backend matches the
   Incremental backend bit for bit — links and serialized Turtle — for
   any [jobs] value, with and without injected faults. *)

open Weblab_xpath
open Weblab_workflow
open Weblab_services
open Weblab_prov
open Weblab_compile
open QCheck

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let pat = Parser.pattern

(* ---------- the pattern-prefix trie ---------- *)

let test_trie_sharing () =
  let t = Trie.create () in
  let c1 = Trie.insert t (pat "//A/B") in
  let c2 = Trie.insert t (pat "//A/C") in
  let c3 = Trie.insert t (pat "//A/B") in
  check_int "two-step chain" 2 (List.length c1);
  check_bool "identical pattern interns to the same chain" true (c1 = c3);
  check_int "shared prefix is one node" (List.hd c1) (List.hd c2);
  check_int "prefix traversed by all three occurrences" 3
    (Trie.get t (List.hd c1)).Trie.refs;
  check_int "three distinct (prefix, step) pairs" 3 (Trie.size t);
  check_int "six step occurrences" 6 (Trie.total_refs t);
  check_int "three evaluations saved per pass" 3 (Trie.shared_steps t);
  check_int "leaf chains agree with path" 2
    (List.length (Trie.path t (List.nth c1 1)))

let test_trie_schedule_invariant () =
  (* parent id < child id, so ascending ids are a topological schedule *)
  let t = Trie.create () in
  List.iter
    (fun p -> ignore (Trie.insert t (pat p)))
    [ "//A/B/C"; "//A/B/D"; "//E"; "//A/F" ];
  let rec walk id =
    List.iter
      (fun c ->
        check_bool "parent id < child id" true (id < c);
        walk c)
      (Trie.children t id)
  in
  walk Trie.root;
  check_bool "empty pattern rejected" true
    (try
       ignore (Trie.insert t []);
       false
     with Invalid_argument _ -> true)

(* ---------- CSE and plan lowering ---------- *)

let cr name s t =
  { Plan.cr_name = name; cr_source = pat s; cr_target = pat t; cr_exact = None }

let test_cse_identical_patterns () =
  let plan =
    Plan.compile
      [ ( "svc",
          [ cr "r1" "//A[$x := @id]" "//B[$x := @id]";
            cr "r2" "//A[$x := @id]" "//C[$x := @id]" ] ) ]
  in
  check_int "three distinct expressions for four references" 3
    (Array.length plan.Plan.p_exprs);
  (match plan.Plan.p_services.(0).Plan.sp_rules with
  | [| Plan.Fused { f_src = s1; f_tgt = t1; f_keys = k1; _ };
       Plan.Fused { f_src = s2; f_tgt = t2; _ } |] ->
    check_int "identical source patterns share one expression" s1 s2;
    check_bool "distinct targets stay distinct" true (t1 <> t2);
    check (Alcotest.list Alcotest.string) "join keys" [ "x" ] k1
  | _ -> Alcotest.fail "expected two fused rules");
  check_int "shared source counted twice" 2 (Plan.expr plan 0).Plan.e_refs

let test_exact_rules_lowered () =
  let plan =
    Plan.compile
      [ ( "svc",
          [ { (cr "sk" "//A[$x := @id]" "//B[$x := @id]") with
              Plan.cr_exact = Some "skolem identifier" } ] ) ]
  in
  (match plan.Plan.p_services.(0).Plan.sp_rules.(0) with
  | Plan.Exact { x_reason; _ } ->
    check Alcotest.string "reason preserved" "skolem identifier" x_reason
  | Plan.Fused _ -> Alcotest.fail "exact rule must not fuse");
  let st = Plan.stats plan in
  check_int "counted as exact" 1 st.Plan.s_exact;
  check_int "no fused rules" 0 st.Plan.s_fused;
  check_int "exact rules intern no patterns" 0
    (Array.length plan.Plan.p_exprs)

let test_build_side_from_estimates () =
  (* The estimate decides which side the hash join hashes. *)
  let est p = if p = pat "//Small[$x := @id]" then 1 else 100 in
  let plan =
    Plan.compile ~estimate:est
      [ ( "svc",
          [ cr "a" "//Small[$x := @id]" "//Big[$x := @id]";
            cr "b" "//Big[$x := @id]" "//Small[$x := @id]" ] ) ]
  in
  match plan.Plan.p_services.(0).Plan.sp_rules with
  | [| Plan.Fused { f_build = b1; _ }; Plan.Fused { f_build = b2; _ } |] ->
    check_bool "small source hashed" true (b1 = Plan.Build_source);
    check_bool "small target hashed" true (b2 = Plan.Build_target)
  | _ -> Alcotest.fail "expected two fused rules"

let test_paper_plan () =
  let doc = Weblab_scenario.Paper.initial_document () in
  let rb = Weblab_scenario.Paper.rulebook () in
  let plan = Strategy_fused.compile ~doc rb in
  let st = Plan.stats plan in
  check_bool "paper rulebook fuses rules" true (st.Plan.s_fused > 0);
  check_bool "prefix sharing on the paper rulebook" true
    (st.Plan.s_shared_steps > 0);
  check_bool "CSE never inflates" true
    (st.Plan.s_distinct_patterns <= st.Plan.s_pattern_refs);
  Array.iteri
    (fun i e -> check_int "expression ids are dense" i e.Plan.e_id)
    plan.Plan.p_exprs

(* ---------- the fused pass = Eval.eval, bit for bit ---------- *)

let test_pass_matches_eval () =
  (* One shared pass over the executed paper document must hand back,
     for every expression, the very table [Eval.eval] computes — rows
     AND order. *)
  let e = Weblab_scenario.Paper.run () in
  let doc = e.Weblab_scenario.Paper.doc in
  let crules =
    List.init 4 (fun i ->
        let p = Weblab_scenario.Paper.phi (i + 1) in
        { Plan.cr_name = Printf.sprintf "phi%d" (i + 1);
          cr_source = p;
          cr_target = p;
          cr_exact = None })
  in
  let plan = Plan.compile [ ("test", crules) ] in
  let sp = plan.Plan.p_services.(0) in
  let pass =
    Pass.run plan ~exprs:sp.Plan.sp_src_exprs ~guards:Eval.no_guards doc
  in
  Array.iter
    (fun id ->
      let ex = Plan.expr plan id in
      let fused = Pass.table pass ~expr:id in
      let direct = Eval.eval ~guards:Eval.no_guards doc ex.Plan.e_pattern in
      check (Alcotest.list Alcotest.string) "columns"
        (Weblab_relalg.Table.columns direct)
        (Weblab_relalg.Table.columns fused);
      check_bool "rows and order bit-identical" true
        (Weblab_relalg.Table.rows direct = Weblab_relalg.Table.rows fused))
    sp.Plan.sp_src_exprs;
  check_bool "unknown expression rejected" true
    (try
       ignore (Pass.table pass ~expr:9999);
       false
     with Invalid_argument _ -> true)

(* ---------- the explain dump, golden-pinned ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* dune runtest stages the dep next to the binary; dune exec runs from
   the workspace root — accept both. *)
let golden_path () =
  if Sys.file_exists "golden/plan.txt" then "golden/plan.txt"
  else "test/golden/plan.txt"

let test_plan_golden () =
  let doc = Weblab_scenario.Paper.initial_document () in
  let rb = Weblab_scenario.Paper.rulebook () in
  let actual = Strategy_fused.explain ~doc rb in
  let expected = read_file (golden_path ()) in
  if not (String.equal expected actual) then begin
    let n = min (String.length expected) (String.length actual) in
    let rec diff i =
      if i < n && expected.[i] = actual.[i] then diff (i + 1) else i
    in
    let i = diff 0 in
    Alcotest.failf
      "plan dump diverged from the golden file at byte %d:\n\
       expected … %S\n\
      \  actual … %S"
      i
      (String.sub expected i (min 60 (String.length expected - i)))
      (String.sub actual i (min 60 (String.length actual - i)))
  end

let test_explain_deterministic () =
  let doc = Weblab_scenario.Paper.initial_document () in
  let rb = Weblab_scenario.Paper.rulebook () in
  check Alcotest.string "two compilations, one dump"
    (Strategy_fused.explain ~doc rb)
    (Strategy_fused.explain ~doc rb)

(* ---------- Fused = Incremental, bit for bit ---------- *)

let link_list g =
  Prov_graph.links g
  |> List.filter (fun l -> not l.Prov_graph.inherited)
  |> List.map (fun l ->
         (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
  |> List.sort compare

let rulebook_of services =
  List.filter_map
    (fun svc ->
      let name = Service.name svc in
      Catalog.find name
      |> Option.map (fun e ->
             (name, List.map Rule_parser.parse e.Catalog.rules)))
    services

let plan_faults =
  [ Faulty.Crash; Faulty.Garbage_xml; Faulty.Mutate_committed;
    Faulty.Duplicate_uri ]

let skip_policy =
  { Orchestrator.default_policy with
    retries = 1; backoff_ms = 1.; on_failure = `Skip }

let workload ~seed ~faulty =
  let doc = Workload.make_document ~units:2 ~seed () in
  let services = Workload.standard_pipeline ~extended:true () in
  let rb = rulebook_of services in
  let services =
    if faulty then
      Faulty.wrap_all
        (Faulty.plan ~faults:plan_faults ~rate:0.4 ~seed ())
        services
    else services
  in
  (doc, services, rb)

let run_strategy kind ~jobs ~seed ~faulty =
  let doc, services, rb = workload ~seed ~faulty in
  let exec, g =
    Engine.run_with_strategy ~policy:skip_policy ~jobs kind doc services rb
  in
  (link_list g, Engine.to_turtle ~trace:exec.Engine.trace g)

let prop_fused_equals_incremental =
  Test.make
    ~name:
      "CSE/trie sharing never changes results: Fused = Incremental \
       (links and Turtle), jobs in [2..8], with and without faults"
    ~count:20
    (make
       ~print:(fun (seed, jobs, faulty) ->
         Printf.sprintf "seed=%d jobs=%d faulty=%b" seed jobs faulty)
       Gen.(triple (int_bound 1_000_000) (int_range 2 8) bool))
    (fun (seed, jobs, faulty) ->
      let li, si = run_strategy `Incremental ~jobs ~seed ~faulty in
      let lf, sf = run_strategy `Fused ~jobs ~seed ~faulty in
      li = lf && si = sf)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "compile"
    [ ( "trie",
        [ Alcotest.test_case "prefix sharing and interning" `Quick
            test_trie_sharing;
          Alcotest.test_case "ascending ids are a schedule" `Quick
            test_trie_schedule_invariant ] );
      ( "plan",
        [ Alcotest.test_case "CSE collapses identical patterns" `Quick
            test_cse_identical_patterns;
          Alcotest.test_case "exact rules keep their reason" `Quick
            test_exact_rules_lowered;
          Alcotest.test_case "estimates pick the build side" `Quick
            test_build_side_from_estimates;
          Alcotest.test_case "paper rulebook compiles with sharing" `Quick
            test_paper_plan ] );
      ( "pass",
        [ Alcotest.test_case "fused pass = Eval.eval, bit for bit" `Quick
            test_pass_matches_eval ] );
      ( "explain",
        [ Alcotest.test_case "golden plan dump" `Quick test_plan_golden;
          Alcotest.test_case "dump is deterministic" `Quick
            test_explain_deterministic ] );
      ( "properties", to_alcotest [ prop_fused_equals_incremental ] ) ]
