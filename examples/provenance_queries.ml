(* Provenance as a debugging and audit tool: run a pipeline, then answer
   the questions §2 of the paper motivates —

   - what does a given resource depend on (directly / transitively)?
   - which call used which resources, and which calls informed which?
   - how does a dependency actually flow (shortest explanation path)?
   - what is the difference between the four evaluation strategies'
     outputs (none — demonstrated live)?

   Run with:  dune exec examples/provenance_queries.exe *)

open Weblab_workflow
open Weblab_services
open Weblab_prov

let rulebook services =
  List.filter_map
    (fun svc ->
      Catalog.find (Service.name svc)
      |> Option.map (fun e ->
             (Service.name svc, List.map Rule_parser.parse e.Catalog.rules)))
    services

let () =
  let doc = Workload.make_document ~units:3 ~seed:7 () in
  let services = Workload.standard_pipeline ~extended:true () in
  let rb = rulebook services in

  (* Infer with all five strategies and show they agree.  Incremental
     and Fused are execution-time strategies, so each re-runs the
     (deterministic) workload on a fresh document. *)
  let exec, g_online = Engine.run_online doc services rb in
  let g_replay = Engine.provenance ~strategy:`Replay exec rb in
  let g_rewrite = Engine.provenance ~strategy:`Rewrite exec rb in
  let rerun kind =
    let doc = Workload.make_document ~units:3 ~seed:7 () in
    let services = Workload.standard_pipeline ~extended:true () in
    snd (Engine.run_with_strategy kind doc services (rulebook services))
  in
  let g_incr = rerun `Incremental in
  let g_fused = rerun `Fused in
  let key g =
    Prov_graph.links g
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
    |> List.sort_uniq compare
  in
  Printf.printf
    "Strategies agree: online=%d links, replay=%d, rewrite=%d, \
     incremental=%d, fused=%d, equal=%b\n\n"
    (List.length (key g_online))
    (List.length (key g_replay))
    (List.length (key g_rewrite))
    (List.length (key g_incr))
    (List.length (key g_fused))
    (key g_online = key g_replay
    && key g_replay = key g_rewrite
    && key g_rewrite = key g_incr
    && key g_incr = key g_fused);

  let g = Inheritance.close exec.Engine.doc g_rewrite in

  (* Pick the last produced resource and explain it. *)
  let last_resource =
    Prov_graph.labeled_resources g
    |> List.fold_left
         (fun acc (uri, call) ->
           match acc with
           | Some (_, c) when c.Trace.time >= call.Trace.time -> acc
           | _ -> Some (uri, call))
         None
  in
  (match last_resource with
   | Some (uri, call) ->
     Printf.printf "=== Explaining %s (produced by %s at t%d) ===\n" uri
       call.Trace.service call.Trace.time;
     Printf.printf "direct dependencies: %s\n"
       (String.concat ", " (Prov_graph.depends_on g uri));
     let upstream = Query.depends_on_transitive g uri in
     Printf.printf "transitive closure (%d): %s\n" (List.length upstream)
       (String.concat ", " upstream);
     (* Shortest explanation path back to an initial resource. *)
     let initial =
       List.find_opt
         (fun u ->
           match Prov_graph.label g u with
           | Some c -> c.Trace.time = 0
           | None -> false)
         upstream
     in
     (match initial with
      | Some src -> (
        match Query.path g ~from_uri:uri ~to_uri:src with
        | Some p -> Printf.printf "explanation path: %s\n" (String.concat " -> " p)
        | None -> ())
      | None -> ())
   | None -> print_endline "no labeled resources?");

  (* Call-level view. *)
  print_endline "\n=== Call-level lineage (prov:wasInformedBy) ===";
  List.iter
    (fun (call : Trace.call) ->
      if call.Trace.time > 0 then begin
        let informed = Query.informed_by g call in
        Printf.printf "  (%s, t%d) was informed by: %s\n" call.Trace.service
          call.Trace.time
          (if informed = [] then "(nothing)"
           else
             String.concat ", "
               (List.map
                  (fun c -> Printf.sprintf "(%s, t%d)" c.Trace.service c.Trace.time)
                  informed))
      end)
    (Trace.calls exec.Engine.trace);

  (* The same questions through SPARQL. *)
  print_endline "\n=== SPARQL: entities derived from initial sources ===";
  let store = Prov_export.to_store g in
  let q =
    "SELECT ?derived ?src WHERE { ?derived prov:wasDerivedFrom ?src . \
     ?src prov:wasGeneratedBy <http://weblab.ow2.org/prov#call/Source-0> }"
  in
  print_string (Weblab_relalg.Table.to_string (Weblab_rdf.Sparql.run store q))
