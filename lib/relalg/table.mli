(** Binding tables and the relational operators of Definition 8.

    A table has a named schema (column names, e.g. ["r"; "x"]) and a set of
    rows.  Pattern results (Definition 7) are tables whose columns are the
    binding variables of the pattern; applying a mapping rule is the
    project–join–rename expression

    {v M(d, d') = π(in,out)( ρ(r→in) R_φS(d)  ⋈  ρ(r→out) R_φT(d') ) v}

    which this module implements with a hash join. *)

type t

(** {1 Construction} *)

val create : string list -> t
(** An empty table with the given column names.
    @raise Invalid_argument on duplicate column names. *)

val add_row : t -> Value.t array -> unit
(** @raise Invalid_argument if the row width differs from the schema. *)

val of_rows : string list -> Value.t array list -> t

(** {1 Schema and contents} *)

val columns : t -> string list

val cardinality : t -> int

val rows : t -> Value.t array list
(** In insertion order. *)

val get : t -> Value.t array -> string -> Value.t
(** [get t row col] extracts a named field from a row of [t].
    @raise Not_found if the column does not exist. *)

val mem_row : t -> Value.t array -> bool

(** {1 Relational operators} *)

val project : t -> string list -> t
(** π: keep the named columns (in the given order); duplicate rows are
    eliminated (set semantics, as in Definition 8). *)

val rename : t -> (string * string) list -> t
(** ρ: rename columns, [(old_name, new_name)] pairs. *)

val select : t -> (t -> Value.t array -> bool) -> t
(** σ: keep the rows satisfying the predicate (which receives the table so
    it can use {!get}). *)

val natural_join : t -> t -> t
(** ⋈ on all shared column names; a cross product when none are shared.
    An alias for {!hash_join}. *)

val hash_join : t -> t -> t
(** ⋈ as a hash equi-join on the shared columns: the right side is hashed
    once, each left row probes it — O(|a| + |b| + output) instead of the
    O(|a|·|b|) of {!nested_loop_join}.  Output schema is [a]'s columns
    followed by [b]'s own; rows come in [a]-major order.  Produces the
    exact same row sequence as {!nested_loop_join} (property-tested). *)

val nested_loop_join : t -> t -> t
(** The textbook O(|a|·|b|) join — the executable specification of the
    join semantics, kept for differential testing and benchmarking. *)

val union : t -> t -> t
(** Set union; both tables must have the same schema.
    @raise Invalid_argument otherwise. *)

val distinct : t -> t

val equal : t -> t -> bool
(** Set equality of rows, after checking the schemas match (column order
    insensitive). *)

(** {1 Display} *)

val pp : Format.formatter -> t -> unit
(** An ASCII rendering in the style of the paper's figures. *)

val to_string : t -> string
