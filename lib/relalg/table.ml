type t = {
  cols : string array;
  mutable rows : Value.t array list;  (* reversed insertion order *)
  mutable count : int;
}

let check_distinct cols =
  let sorted = List.sort String.compare cols in
  let rec dup = function
    | a :: (b :: _ as rest) -> String.equal a b || dup rest
    | [ _ ] | [] -> false
  in
  if dup sorted then invalid_arg "Table.create: duplicate column names"

let create cols =
  check_distinct cols;
  { cols = Array.of_list cols; rows = []; count = 0 }

let columns t = Array.to_list t.cols

let cardinality t = t.count

let rows t = List.rev t.rows

let add_row t row =
  if Array.length row <> Array.length t.cols then
    invalid_arg "Table.add_row: row width does not match the schema";
  t.rows <- row :: t.rows;
  t.count <- t.count + 1

let of_rows cols rs =
  let t = create cols in
  List.iter (add_row t) rs;
  t

let col_index t name =
  let rec find i =
    if i >= Array.length t.cols then raise Not_found
    else if String.equal t.cols.(i) name then i
    else find (i + 1)
  in
  find 0

let get t row col = row.(col_index t col)

let row_key row = String.concat "\x00" (Array.to_list (Array.map Value.to_string row))

let mem_row t row =
  let key = row_key row in
  List.exists (fun r -> String.equal (row_key r) key) t.rows

let distinct t =
  let seen = Hashtbl.create 64 in
  let out = create (columns t) in
  List.iter
    (fun row ->
      let key = row_key row in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        add_row out row
      end)
    (rows t);
  out

let project t names =
  let idx = List.map (col_index t) names in
  let out = create names in
  List.iter (fun row -> add_row out (Array.of_list (List.map (fun i -> row.(i)) idx))) (rows t);
  distinct out

let rename t mapping =
  let cols =
    Array.to_list t.cols
    |> List.map (fun c -> match List.assoc_opt c mapping with Some c' -> c' | None -> c)
  in
  check_distinct cols;
  { t with cols = Array.of_list cols }

let select t pred =
  let out = create (columns t) in
  List.iter (fun row -> if pred t row then add_row out row) (rows t);
  out

(* Join column bookkeeping shared by both join implementations: the output
   schema is a's columns followed by b's non-shared columns, and rows of
   [a] drive the outer order — so the two algorithms produce identical row
   {e sequences}, not just identical sets (property-tested). *)
let join_plan a b =
  let cols_a = columns a and cols_b = columns b in
  let shared = List.filter (fun c -> List.mem c cols_a) cols_b in
  let b_only = List.filter (fun c -> not (List.mem c shared)) cols_b in
  let ia = Array.of_list (List.map (col_index a) shared) in
  let ib = Array.of_list (List.map (col_index b) shared) in
  let b_only_idx = Array.of_list (List.map (col_index b) b_only) in
  (create (cols_a @ b_only), ia, ib, b_only_idx)

(* Join keys compare the rendered values, matching the string-based row
   identity used by [distinct] and [equal]. *)
let join_key idxs row =
  let buf = Buffer.create 32 in
  Array.iter
    (fun i ->
      Buffer.add_string buf (Value.to_string row.(i));
      Buffer.add_char buf '\x00')
    idxs;
  Buffer.contents buf

let emit_match out row_a row_b b_only_idx =
  add_row out (Array.append row_a (Array.map (fun i -> row_b.(i)) b_only_idx))

(* The textbook O(|a|·|b|) plan.  Kept as the executable specification of
   the join semantics (the paper's Definition 8 reads this way) and as the
   baseline the hash join is tested and benchmarked against. *)
let nested_loop_join a b =
  let out, ia, ib, b_only_idx = join_plan a b in
  List.iter
    (fun row_a ->
      let ka = join_key ia row_a in
      List.iter
        (fun row_b ->
          if String.equal ka (join_key ib row_b) then
            emit_match out row_a row_b b_only_idx)
        (rows b))
    (rows a);
  out

module T = Weblab_obs.Telemetry

let c_joins = T.counter "join.hash.count"
let c_build = T.counter "join.hash.build_rows"
let c_probe = T.counter "join.hash.probe_rows"
let c_out = T.counter "join.hash.out_rows"

(* Equi-join on the shared columns: build a hash table over [b] once, then
   probe per row of [a] — O(|a| + |b| + output). *)
let hash_join a b =
  T.incr c_joins;
  T.add c_build (cardinality b);
  T.add c_probe (cardinality a);
  let out, ia, ib, b_only_idx = join_plan a b in
  let index = Hashtbl.create (max 16 (cardinality b)) in
  List.iter (fun row -> Hashtbl.add index (join_key ib row) row) (rows b);
  List.iter
    (fun row_a ->
      match Hashtbl.find_all index (join_key ia row_a) with
      | [] -> ()
      | matches ->
        (* find_all returns most-recently-added first; restore order *)
        List.iter
          (fun row_b -> emit_match out row_a row_b b_only_idx)
          (List.rev matches))
    (rows a);
  T.add c_out (cardinality out);
  out

let natural_join = hash_join

let union a b =
  if List.sort String.compare (columns a) <> List.sort String.compare (columns b)
  then invalid_arg "Table.union: schemas differ";
  let out = create (columns a) in
  List.iter (add_row out) (rows a);
  (* Reorder b's columns to a's order. *)
  let idx = List.map (col_index b) (columns a) in
  List.iter
    (fun row -> add_row out (Array.of_list (List.map (fun i -> row.(i)) idx)))
    (rows b);
  distinct out

let sorted_row_keys t =
  rows t |> List.map row_key |> List.sort String.compare

let equal a b =
  List.sort String.compare (columns a) = List.sort String.compare (columns b)
  &&
  (* Align column order before comparing rows. *)
  let b' = project b (columns a) in
  let a' = distinct a in
  sorted_row_keys a' = sorted_row_keys b'

let pp ppf t =
  let cols = columns t in
  let rs = rows t |> List.map (fun r -> Array.to_list (Array.map Value.to_string r)) in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rs)
      cols
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line cells = String.concat " | " (List.map2 pad cells widths) in
  Fmt.pf ppf "%s@." (line cols);
  Fmt.pf ppf "%s@." (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pf ppf "%s@." (line row)) rs

let to_string t = Fmt.str "%a" pp t
