(** Evaluation of XPath patterns over WebLab document states.

    Evaluating a pattern φ(x̄) over a document state d computes all
    {e embeddings} of the associated tree pattern into d (Definition 6) and
    returns the set of binding tuples x̄/ε as a {!Weblab_relalg.Table.t}
    (Definition 7).

    The result table has columns:
    - ["node"]: the arena id of the node matched by the final step;
    - ["r"]: the URI of that node (the implicit [$r := @id] of
      Definition 4, condition 3) — embeddings whose final node carries no
      URI are discarded unless [require_uri] is [false];
    - one column per binding variable of the pattern, in binding order. *)

open Weblab_xml
open Weblab_relalg

type guards = {
  visible : Tree.node -> bool;
      (** Restricts matching to a document state: every node an embedding
          touches (steps, predicate paths, positional contexts) must
          satisfy this. *)
  env : (string * Value.t) list;
      (** Initial variable environment (free variables of the pattern). *)
}

val no_guards : guards

val state_guards : Doc_state.t -> guards
(** Visibility of the given document state, empty environment. *)

val eval :
  ?require_uri:bool ->
  ?guards:guards ->
  ?index:Index.t ->
  Tree.t ->
  Ast.pattern ->
  Table.t
(** [eval doc φ] computes R_φ(d).  [require_uri] defaults to [true].

    Candidate nodes of descendant steps and of indexed-attribute guards
    ([@id], [@s], [@t] equalities — what the §4 rewriting injects) are
    served from the per-document {!Weblab_xml.Index} instead of tree
    traversals.  By default the cached index ({!Weblab_xml.Index.for_tree})
    is used; pass [~index] to reuse one already in hand.  A stale index
    (document grew since {!Weblab_xml.Index.build}) is ignored, never
    trusted.  The result is identical — rows {e and} order — to
    {!eval_unindexed}, which is enforced by property tests. *)

val eval_unindexed :
  ?require_uri:bool -> ?guards:guards -> Tree.t -> Ast.pattern -> Table.t
(** The reference evaluator: pure tree traversal, no index.  Exists so the
    indexed fast path has an executable specification to be checked
    against (and benchmarked against). *)

val eval_state : ?require_uri:bool -> Doc_state.t -> Ast.pattern -> Table.t
(** [eval_state d φ] = [eval ~guards:(state_guards d) (Doc_state.doc d) φ]. *)

val delta_localizable : Ast.pattern -> bool
(** Whether {!eval_delta} can serve the pattern: every step uses a
    downward axis (child, descendant, descendant-or-self, self) and no
    step carries a position-sensitive predicate.  For such patterns every
    node of an embedding's step chain is an ancestor-or-self of the final
    node, so embeddings ending in an appended fragment can be enumerated
    from the fragment and its ancestor spine alone. *)

val eval_delta :
  ?require_uri:bool ->
  ?guards:guards ->
  ?index:Index.t ->
  touched:(Tree.node -> bool) ->
  spine:(Tree.node -> bool) ->
  Tree.t ->
  Ast.pattern ->
  Table.t option
(** [eval_delta ~touched ~spine doc φ] computes exactly the rows of
    [eval doc φ] whose final node satisfies [touched] — the embeddings a
    delta could have created — by pruning the final step's candidates to
    [touched] and every earlier step's candidates to [spine].  [spine]
    {e must} hold on every ancestor-or-self of every [touched] node (it
    may hold more broadly; correctness is unaffected, only cost).
    Predicates are evaluated unrestricted, against the full document.

    Returns [None] when the pattern is not {!delta_localizable} — the
    non-local-axis fallback rule: the caller evaluates in full instead. *)

val matching_nodes :
  ?guards:guards -> Tree.t -> Ast.pattern -> Tree.node list
(** Nodes matched by the final step, regardless of URIs; distinct, in
    first-match order. *)

(** {1 Shared-prefix evaluation}

    Hooks for the fused rule-set compiler ({!Weblab_compile}): a whole
    rulebook's patterns are evaluated against one document state with
    the work of common step prefixes shared.  A {!contexts} value is the
    evaluator's intermediate state after a prefix of steps; it can be
    extended one step at a time ({!prefix_step}) and branched into
    several continuations without re-running the shared steps.

    For every pattern, folding {!prefix_step} over its steps starting
    from {!prefix_start} and finishing with {!prefix_table} produces a
    table bit-identical — rows {e and} order — to {!eval} with the same
    guards and index (it runs the very same step/table code). *)

type contexts = (Tree.node * (string * Value.t) list) list
(** An evaluation front: the surviving (node, environment) pairs after a
    prefix of a pattern's steps, in document-traversal order.  The
    initial front is the virtual document node with the guards'
    environment. *)

val prefix_start : guards -> contexts

val prefix_step :
  ?index:Index.t -> guards:guards -> Tree.t -> contexts -> Ast.step -> contexts
(** Extend a front by one step, serving candidates from the index where
    sound (same fast-path rules as {!eval}; a stale index is ignored). *)

val prefix_table :
  ?require_uri:bool -> Tree.t -> Ast.pattern -> contexts -> Table.t
(** Build the pattern's result table from its final front.  [pattern]
    supplies the column set; the front must be the fold of the pattern's
    steps.  [require_uri] defaults to [true], as in {!eval}. *)
