open Weblab_xml
open Weblab_relalg
module T = Weblab_obs.Telemetry

let c_patterns = T.counter "eval.patterns"
let c_delta = T.counter "eval.patterns.delta"
let c_indexed = T.counter "eval.steps.indexed"
let c_scan = T.counter "eval.steps.scan"

type guards = {
  visible : Tree.node -> bool;
  env : (string * Value.t) list;
}

let no_guards = { visible = (fun _ -> true); env = [] }

(* An evaluation front: the surviving (node, environment) pairs after a
   prefix of a pattern's steps, in document-traversal order. *)
type contexts = (Tree.node * (string * Value.t) list) list

let state_guards st = { visible = Doc_state.visible st; env = [] }

let test_matches doc test n =
  Tree.is_element doc n
  &&
  match test with
  | Ast.Any -> true
  | Ast.Name name -> String.equal name (Tree.name doc n)

(* Candidate nodes of an axis step from a context node.  [ctx = no_node]
   stands for the virtual document node (used for the first step of an
   absolute pattern). *)
let axis_nodes doc visible ctx axis =
  let from_document = ctx = Tree.no_node in
  (* Direct sibling-chain walks on the structure-of-arrays links: no
     child-list materialization, document order preserved. *)
  let siblings ~after =
    let p = Tree.parent doc ctx in
    if p = Tree.no_node then []
    else if after then begin
      let rec collect acc k =
        if k = Tree.no_node then List.rev acc
        else collect (k :: acc) (Tree.next_sibling doc k)
      in
      collect [] (Tree.next_sibling doc ctx)
    end
    else begin
      let rec collect acc k =
        if k = ctx then List.rev acc
        else collect (k :: acc) (Tree.next_sibling doc k)
      in
      collect [] (Tree.first_child doc p)
    end
  in
  let raw =
    match axis, from_document with
    | Ast.Child, true -> if Tree.has_root doc then [ Tree.root doc ] else []
    | Ast.Child, false -> Tree.children doc ctx
    | (Ast.Descendant | Ast.Descendant_or_self), true ->
      if Tree.has_root doc then Tree.descendant_or_self doc (Tree.root doc) else []
    | Ast.Descendant, false -> Tree.descendants doc ctx
    | Ast.Descendant_or_self, false -> Tree.descendant_or_self doc ctx
    | Ast.Self, true -> if Tree.has_root doc then [ Tree.root doc ] else []
    | Ast.Self, false -> [ ctx ]
    | (Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self
      | Ast.Following_sibling | Ast.Preceding_sibling), true -> []
    | Ast.Parent, false ->
      let p = Tree.parent doc ctx in
      if p = Tree.no_node then [] else [ p ]
    | Ast.Ancestor, false -> Tree.ancestors doc ctx
    | Ast.Ancestor_or_self, false -> ctx :: Tree.ancestors doc ctx
    | Ast.Following_sibling, false -> siblings ~after:true
    | Ast.Preceding_sibling, false -> siblings ~after:false
  in
  List.filter visible raw

(* Nodes reached by a relative path (inside a predicate) from [ctx]. *)
let eval_rel_path doc visible ctx rp =
  List.fold_left
    (fun ctxs { Ast.raxis; rtest } ->
      List.concat_map
        (fun c ->
          axis_nodes doc visible c raxis
          |> List.filter (test_matches doc rtest))
        ctxs)
    [ ctx ] rp

(* The possible values of an operand at a context node.  A [Path] operand
   contributes the string-value of each node it reaches (XPath's
   existential semantics over node sets); other operands contribute at
   most one value. *)
let rec operand_values doc visible env ~pos ~last ctx (op : Ast.operand) :
    Value.t list =
  match op with
  | Ast.Attr a -> (
    match Tree.attr doc ctx a with Some v -> [ Value.Str v ] | None -> [])
  | Ast.Lit s -> [ Value.Str s ]
  | Ast.Num n -> [ Value.Int n ]
  | Ast.Var x -> (
    match List.assoc_opt x env with Some v -> [ v ] | None -> [])
  | Ast.Position -> [ Value.Int pos ]
  | Ast.Last -> [ Value.Int last ]
  | Ast.Count rp ->
    [ Value.Int (List.length (eval_rel_path doc visible ctx rp)) ]
  | Ast.Strlen a -> (
    match operand_values doc visible env ~pos ~last ctx a with
    | v :: _ -> [ Value.Int (String.length (Value.to_string v)) ]
    | [] -> [])
  | Ast.Path rp ->
    eval_rel_path doc visible ctx rp
    |> List.map (fun n -> Value.Str (Tree.string_value doc n))
  | Ast.Path_attr (rp, a) ->
    eval_rel_path doc visible ctx rp
    |> List.filter_map (fun n ->
           Option.map (fun v -> Value.Str v) (Tree.attr doc n a))
  | Ast.Skolem (f, args) ->
    (* A Skolem term has a value only when every argument does; the value is
       the canonical ground term f(v1,...,vn), so equal arguments yield the
       same (joinable) identifier — exactly the §5 aggregation device. *)
    let arg_values =
      List.map
        (fun a ->
          match operand_values doc visible env ~pos ~last ctx a with
          | [ v ] -> Some v
          | v :: _ -> Some v
          | [] -> None)
        args
    in
    if List.exists Option.is_none arg_values then []
    else
      [ Value.Str
          (Printf.sprintf "%s(%s)" f
             (String.concat ","
                (List.map (fun v -> Value.to_string (Option.get v)) arg_values)))
      ]

let cmp_values op (a : Value.t) (b : Value.t) =
  match op with
  | Ast.Eq -> Value.equal a b
  | Ast.Neq -> not (Value.equal a b)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    let c =
      match Value.as_int a, Value.as_int b with
      | Some x, Some y -> compare x y
      | _ -> String.compare (Value.to_string a) (Value.to_string b)
    in
    match op with
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.Eq | Ast.Neq -> assert false)

(* The supported boolean functions; all use first-value semantics on
   their arguments, as XPath's string() conversion does. *)
let string_fn name a b =
  match name with
  | "contains" ->
    let na = String.length a and nb = String.length b in
    let rec loop i = i + nb <= na && (String.sub a i nb = b || loop (i + 1)) in
    nb = 0 || loop 0
  | "starts-with" ->
    String.length a >= String.length b
    && String.sub a 0 (String.length b) = b
  | "ends-with" ->
    String.length a >= String.length b
    && String.sub a (String.length a - String.length b) (String.length b) = b
  | f -> invalid_arg (Printf.sprintf "Eval: unknown boolean function %s()" f)

let rec eval_bool doc visible env ~pos ~last ctx (p : Ast.pred) : bool =
  match p with
  | Ast.Bind _ ->
    invalid_arg "Eval: variable bindings cannot appear under and/or/not"
  | Ast.Cmp (a, op, b) ->
    let va = operand_values doc visible env ~pos ~last ctx a in
    let vb = operand_values doc visible env ~pos ~last ctx b in
    List.exists (fun x -> List.exists (fun y -> cmp_values op x y) vb) va
  | Ast.Exists_path rp -> eval_rel_path doc visible ctx rp <> []
  | Ast.Exists_attr a -> Tree.attr doc ctx a <> None
  | Ast.Index n -> pos = n
  | Ast.Fn_bool (name, [ a; b ]) -> (
    match
      ( operand_values doc visible env ~pos ~last ctx a,
        operand_values doc visible env ~pos ~last ctx b )
    with
    | va :: _, vb :: _ ->
      string_fn name (Value.to_string va) (Value.to_string vb)
    | _ -> false)
  | Ast.Fn_bool (name, args) ->
    invalid_arg
      (Printf.sprintf "Eval: %s() expects 2 arguments, got %d" name
         (List.length args))
  | Ast.And (a, b) ->
    eval_bool doc visible env ~pos ~last ctx a
    && eval_bool doc visible env ~pos ~last ctx b
  | Ast.Or (a, b) ->
    eval_bool doc visible env ~pos ~last ctx a
    || eval_bool doc visible env ~pos ~last ctx b
  | Ast.Not a -> not (eval_bool doc visible env ~pos ~last ctx a)

(* ----- Indexed candidate generation -----

   A step's candidates (axis ∩ name test ∩ visibility) are served from the
   document index when doing so is guaranteed to produce the same list in
   the same (document) order as the traversal:

   - descendant steps with a name test read the by-label list, restricted
     to the context's pre/post-order interval;
   - a position-insensitive [@a = 'v'] predicate over an indexed attribute
     ([@id], [@s], [@t] — exactly what the §4 rewriting injects) narrows
     the candidates to the by-attribute list before any predicate runs.

   Narrowing by a predicate p_j is sound iff p_1..p_j are all
   position-insensitive: such predicates are pure (node, env) filters, so
   applying p_j's node-only filter first commutes with them, and later
   (possibly positional) predicates see the exact same list. *)

let rec operand_position_sensitive (op : Ast.operand) =
  match op with
  | Ast.Position | Ast.Last -> true
  | Ast.Strlen a -> operand_position_sensitive a
  | Ast.Skolem (_, args) -> List.exists operand_position_sensitive args
  | Ast.Attr _ | Ast.Lit _ | Ast.Num _ | Ast.Var _ | Ast.Count _ | Ast.Path _
  | Ast.Path_attr _ -> false

let rec pred_position_sensitive (p : Ast.pred) =
  match p with
  | Ast.Index _ -> true
  | Ast.Bind (_, src) -> operand_position_sensitive src
  | Ast.Cmp (a, _, b) ->
    operand_position_sensitive a || operand_position_sensitive b
  | Ast.Fn_bool (_, args) -> List.exists operand_position_sensitive args
  | Ast.And (a, b) | Ast.Or (a, b) ->
    pred_position_sensitive a || pred_position_sensitive b
  | Ast.Not a -> pred_position_sensitive a
  | Ast.Exists_path _ | Ast.Exists_attr _ -> false

(* The first usable narrowing predicate: an env-independent equality
   [@a = 'v'] (or the symmetric form) on an indexed attribute, preceded
   only by position-insensitive predicates.  Literal (string) comparisands
   only: [@t = 5] uses numeric loose equality, which the exact-string
   attribute index must not answer. *)
let narrowing_attr (preds : Ast.pred list) =
  let rec scan = function
    | [] -> None
    | p :: rest ->
      if pred_position_sensitive p then None
      else (
        match p with
        | Ast.Cmp (Ast.Attr a, Ast.Eq, Ast.Lit v)
        | Ast.Cmp (Ast.Lit v, Ast.Eq, Ast.Attr a)
          when Index.attr_indexed a -> Some (a, v)
        | _ -> scan rest)
  in
  scan preds

(* [Some candidates] when the index can serve the step for this context —
   the same nodes, in document order, as the traversal path — or [None]
   to fall back (including when the by-label list is larger than the
   subtree it would be filtered against). *)
let fast_candidates doc idx visible ctx (step : Ast.step) =
  let from_document = ctx = Tree.no_node in
  let label_ok n = test_matches doc step.Ast.test n in
  let narrowing = narrowing_attr step.Ast.preds in
  let axis_ok =
    match step.Ast.axis, from_document with
    | (Ast.Descendant | Ast.Descendant_or_self), true -> Some (fun _ -> true)
    | Ast.Descendant, false -> Some (Index.strictly_below idx ~ancestor:ctx)
    | Ast.Descendant_or_self, false -> Some (Index.below_or_self idx ~ancestor:ctx)
    | Ast.Child, _ when narrowing <> None ->
      (* Only worth consulting the attribute index for: without a
         narrowing attribute the child list itself is the cheapest plan. *)
      if from_document then
        Some (fun n -> Tree.has_root doc && Tree.root doc = n)
      else Some (fun n -> Tree.parent doc n = ctx)
    | _ -> None
  in
  match axis_ok with
  | None -> None
  | Some axis_ok -> (
    match narrowing with
    | Some (a, v) ->
      Some
        (Index.nodes_with_attr idx a v
        |> List.filter (fun n -> label_ok n && axis_ok n && visible n))
    | None -> (
      match step.Ast.test with
      | Ast.Name l ->
        if
          (not from_document)
          && Index.label_count idx l > Index.subtree_size idx ctx
        then None (* walking the subtree is cheaper than filtering the label list *)
        else
          Some
            (Index.nodes_with_label idx l
            |> List.filter (fun n -> axis_ok n && visible n))
      | Ast.Any ->
        if from_document then Some (List.filter visible (Index.elements idx))
        else None))

(* Apply one predicate to a candidate list, XPath-style: positions are
   1-based indices into the current list, recomputed after each predicate. *)
let apply_pred doc visible candidates (p : Ast.pred) =
  let last = List.length candidates in
  match p with
  | Ast.Bind (x, src) ->
    (* Multi-valued sources (e.g. Member/@ref) yield one embedding per
       value — each corresponds to a different mapping of the predicate's
       pattern nodes (Definition 6). *)
    List.concat_map
      (fun (i, (n, env)) ->
        operand_values doc visible env ~pos:i ~last n src
        |> List.map (fun v -> (n, (x, v) :: env)))
      (List.mapi (fun i c -> (i + 1, c)) candidates)
  | _ ->
    List.filter_map
      (fun (i, (n, env)) ->
        if eval_bool doc visible env ~pos:i ~last n p then Some (n, env)
        else None)
      (List.mapi (fun i c -> (i + 1, c)) candidates)

let apply_step ?keep doc index visible contexts (step : Ast.step) =
  List.concat_map
    (fun (ctx, env) ->
      let fast =
        match index with
        | Some idx -> fast_candidates doc idx visible ctx step
        | None -> None
      in
      let candidates =
        match fast with
        | Some candidates ->
          T.incr c_indexed;
          candidates
        | None ->
          T.incr c_scan;
          axis_nodes doc visible ctx step.Ast.axis
          |> List.filter (test_matches doc step.Ast.test)
      in
      let candidates =
        match keep with
        | None -> candidates
        | Some f -> List.filter f candidates
      in
      let candidates = List.map (fun n -> (n, env)) candidates in
      List.fold_left (apply_pred doc visible) candidates step.Ast.preds)
    contexts

(* Build the result table from the surviving (final node, environment)
   front.  Shared between [eval_with] and the prefix API below so the
   fused compiler's tables are bit-identical — rows and order — to
   rule-at-a-time evaluation of the same pattern. *)
let table_of_front ~require_uri doc (pattern : Ast.pattern) finals =
  (* An explicit [$r := @id] is the implicit result binding of Definition 4
     condition (3) spelled out (the pattern φ2 of Example 3), so the "r"
     column is never duplicated; "node" is likewise reserved. *)
  let vars =
    List.filter (fun v -> v <> "r" && v <> "node") (Ast.variables pattern)
  in
  let table = Table.create (("node" :: "r" :: vars)) in
  List.iter
    (fun (n, env) ->
      let uri = Tree.uri doc n in
      match uri, require_uri with
      | None, true -> ()   (* condition (3) of Definition 4 *)
      | _ ->
        let r =
          match uri with
          | Some u -> Value.Str u
          | None -> Value.Str (Printf.sprintf "#%d" n)
        in
        let row =
          Array.of_list
            (Value.Node n :: r
            :: List.map
                 (fun x ->
                   match List.assoc_opt x env with
                   | Some v -> v
                   | None ->
                     (* Bindings are top-level step predicates, so a surviving
                        candidate always carries all of them. *)
                     assert false)
                 vars)
        in
        Table.add_row table row)
    finals;
  Table.distinct table

(* [restrict], when provided, prunes the candidates of step [i] (0-based)
   to a node predicate — the delta-restricted evaluation hook.  It is only
   sound for patterns where the pruning commutes with the predicates (see
   [delta_localizable]); predicates themselves are never restricted. *)
let eval_with ?restrict ~require_uri ~guards ~index doc (pattern : Ast.pattern) =
  T.incr c_patterns;
  let finals =
    let step_keep i =
      match restrict with None -> None | Some f -> Some (f i)
    in
    List.fold_left
      (fun (ctxs, i) step ->
        (apply_step ?keep:(step_keep i) doc index guards.visible ctxs step,
         i + 1))
      ([ (Tree.no_node, guards.env) ], 0)
      pattern
    |> fst
  in
  table_of_front ~require_uri doc pattern finals

(* ----- Shared-prefix evaluation -----

   The fused rule-set compiler (lib/compile) evaluates the patterns of a
   whole rulebook against one document state and shares the work of
   common step prefixes.  These hooks expose the evaluator's
   intermediate state — the (node, environment) front after a prefix of
   steps — so a front can be extended by one step at a time and branched
   into several continuations without re-running the shared steps.
   Folding [prefix_step] over a pattern's steps from [prefix_start] and
   finishing with [prefix_table] goes through exactly the same
   [apply_step] / [table_of_front] code as [eval]. *)

let c_shared_tables = T.counter "eval.patterns.fused"

let prefix_start (guards : guards) : contexts = [ (Tree.no_node, guards.env) ]

let prefix_step ?index ~guards doc (ctxs : contexts) (step : Ast.step) :
    contexts =
  let index =
    match index with
    | Some idx when Index.valid_for idx doc -> Some idx
    | Some _ | None -> Some (Index.for_tree doc)
  in
  apply_step doc index guards.visible ctxs step

let prefix_table ?(require_uri = true) doc (pattern : Ast.pattern)
    (finals : contexts) =
  T.incr c_shared_tables;
  table_of_front ~require_uri doc pattern finals

(* The default mode: serve candidates from the cached per-document index
   (see {!Index.for_tree}); a caller that already holds a valid index
   passes it to skip the cache lookup.  A stale index is never used — a
   snapshot of a smaller arena would silently miss appended nodes. *)
let eval ?(require_uri = true) ?(guards = no_guards) ?index doc
    (pattern : Ast.pattern) =
  let index =
    match index with
    | Some idx when Index.valid_for idx doc -> Some idx
    | Some _ | None -> Some (Index.for_tree doc)
  in
  eval_with ~require_uri ~guards ~index doc pattern

(* The reference evaluator the indexed path is property-tested against:
   pure tree traversal, no index consulted. *)
let eval_unindexed ?(require_uri = true) ?(guards = no_guards) doc pattern =
  eval_with ~require_uri ~guards ~index:None doc pattern

let eval_state ?require_uri st pattern =
  eval ?require_uri ~guards:(state_guards st) (Doc_state.doc st) pattern

(* ----- Delta-restricted evaluation -----

   When a call appends a fragment to the arena, the only {e new}
   embeddings of a pattern are those whose final node lies in the
   fragment.  For patterns built from downward axes only (child,
   descendant, descendant-or-self, self), every node of such an
   embedding's step chain is an ancestor-or-self of the final node — so
   restricting the final step's candidates to the fragment ([touched])
   and every earlier step's candidates to the ancestor-or-self closure of
   the fragment ([spine]) yields exactly those embeddings, while looking
   at O(delta × depth) nodes instead of the whole document.

   The restriction prunes {e candidates} only; predicates still read the
   full document (relative paths, counts, string-values), so their truth
   values are untouched.  Pruning commutes with predicate filtering only
   when no predicate is position-sensitive: positions are 1-based indices
   into the candidate list, which the pruning shortens.  Patterns with an
   upward or sibling axis (the final node no longer dominates the chain)
   or a position-sensitive predicate are not delta-localizable and the
   caller must fall back to full evaluation. *)

let delta_localizable (pattern : Ast.pattern) =
  List.for_all
    (fun (s : Ast.step) ->
      (match s.Ast.axis with
       | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Self ->
         true
       | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self
       | Ast.Following_sibling | Ast.Preceding_sibling -> false)
      && not (List.exists pred_position_sensitive s.Ast.preds))
    pattern

let eval_delta ?(require_uri = true) ?(guards = no_guards) ?index ~touched
    ~spine doc (pattern : Ast.pattern) =
  if not (delta_localizable pattern) then None
  else begin
    let index =
      match index with
      | Some idx when Index.valid_for idx doc -> Some idx
      | Some _ | None -> Some (Index.for_tree doc)
    in
    let last = List.length pattern - 1 in
    let restrict i = if i = last then touched else spine in
    T.incr c_delta;
    Some (eval_with ~restrict ~require_uri ~guards ~index doc pattern)
  end

let matching_nodes ?(guards = no_guards) doc pattern =
  let t = eval ~require_uri:false ~guards doc pattern in
  Table.rows t
  |> List.filter_map (fun row ->
         match Table.get t row "node" with
         | Value.Node n -> Some n
         | Value.Str _ | Value.Int _ -> None)
  |> List.sort_uniq compare
