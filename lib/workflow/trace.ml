(* Workflow execution traces: the Source table of Figure 2.

   A trace records, for every labeled resource of the final document, the
   service call (service name, timestamp) that produced it.  Together with
   the final document it {e is} the workflow execution trace from which all
   provenance is inferred (§2). *)

open Weblab_xml

type call = {
  service : string;
  time : int;
}

let call_id c = Printf.sprintf "c%d" c.time

type entry = {
  uri : string;
  node : Tree.node;
  call : call;
}

(* Outcome of a call's supervision (§ Failure model of DESIGN.md).  [Ok]
   and [Retried _] describe committed calls; [Failed _] calls burned
   their timestamp but left no mark on the document — the orchestrator
   rolled their appends back. *)
type outcome =
  | Ok
  | Failed of string  (* the reason of the last attempt *)
  | Retried of int  (* committed after this many failed attempts *)

type attempt = {
  a_service : string;
  a_time : int;
  a_attempt : int;  (* 1-based *)
  a_ok : bool;
  a_reason : string;  (* "" when [a_ok] *)
  a_backoff_ms : float;  (* simulated backoff charged before this attempt *)
}

type t = {
  mutable entries_rev : entry list;
  mutable calls_rev : call list;
  mutable failed_rev : call list;
  mutable attempts_rev : attempt list;
  outcomes : (int, outcome) Hashtbl.t;  (* timestamp → outcome *)
}

let create () =
  { entries_rev = []; calls_rev = []; failed_rev = []; attempts_rev = [];
    outcomes = Hashtbl.create 16 }

let add_call t call =
  t.calls_rev <- call :: t.calls_rev;
  if not (Hashtbl.mem t.outcomes call.time) then
    Hashtbl.replace t.outcomes call.time Ok

let add_entry t entry = t.entries_rev <- entry :: t.entries_rev

let record_attempt t a = t.attempts_rev <- a :: t.attempts_rev

let record_outcome t call outcome =
  Hashtbl.replace t.outcomes call.time outcome;
  match outcome with
  | Failed _ -> t.failed_rev <- call :: t.failed_rev
  | Ok | Retried _ -> ()

let calls t = List.rev t.calls_rev

let entries t =
  List.rev t.entries_rev
  |> List.sort (fun a b ->
         let c = compare a.call.time b.call.time in
         if c <> 0 then c else compare a.node b.node)

let failed_calls t = List.rev t.failed_rev

let attempts t = List.rev t.attempts_rev

let outcome_at t time = Hashtbl.find_opt t.outcomes time

let call_at t time = List.find_opt (fun c -> c.time = time) (calls t)

let resources_of_call t call =
  entries t |> List.filter (fun e -> e.call = call) |> List.map (fun e -> e.uri)

let call_of_resource t uri =
  entries t
  |> List.find_opt (fun e -> String.equal e.uri uri)
  |> Option.map (fun e -> e.call)

(* The Source table of Figure 2: Res. | Call | Service | Time. *)
let source_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Res. | Call | Service          | Time\n";
  Buffer.add_string buf "-----+------+------------------+-----\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s | %-4s | %-16s | t%d\n" e.uri (call_id e.call)
           e.call.service e.call.time))
    (entries t);
  Buffer.contents buf

(* Attempts | outcome table, same spirit as the Source table: one row per
   supervision attempt, failed timestamps included. *)
let attempts_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Call | Service          | Try | Outcome\n";
  Buffer.add_string buf "-----+------------------+-----+--------\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "c%-3d | %-16s | %-3d | %s\n" a.a_time a.a_service
           a.a_attempt
           (if a.a_ok then "ok" else "failed: " ^ a.a_reason)))
    (attempts t);
  Buffer.contents buf
