(** Workflow execution traces — the Source table of Figure 2.

    A trace records, for every labeled resource of the final document,
    the service call (service name, timestamp) that produced it; together
    with the final document it {e is} the workflow execution trace from
    which all provenance is inferred (§2). *)

open Weblab_xml

type call = {
  service : string;
  time : int;  (** 0 is the pseudo-call "Source" owning initial content *)
}

val call_id : call -> string
(** ["c<t>"] — the call names of Figure 2. *)

type entry = {
  uri : string;
  node : Tree.node;  (** {!Tree.no_node} for entries loaded from storage *)
  call : call;
}

(** {1 Outcomes}

    Execution stopped being all-or-nothing: calls can fail (and be rolled
    back) or succeed after retries.  Outcomes label timestamps; the link
    inference strategies only ever see committed calls ({!calls} stays
    successful-only), while analytics and PROV export also report the
    failed ones. *)

type outcome =
  | Ok  (** committed on the first attempt *)
  | Failed of string
      (** never committed; the timestamp is burned and the document state
          is bit-identical to the previous commit *)
  | Retried of int  (** committed after this many failed attempts *)

type attempt = {
  a_service : string;
  a_time : int;
  a_attempt : int;  (** 1-based attempt number within the call *)
  a_ok : bool;
  a_reason : string;  (** failure reason; [""] when [a_ok] *)
  a_backoff_ms : float;
      (** simulated (deterministic, never slept) backoff charged before
          this attempt *)
}

type t

val create : unit -> t

val add_call : t -> call -> unit
(** Record a {e committed} call (outcome defaults to [Ok]). *)

val add_entry : t -> entry -> unit

val record_attempt : t -> attempt -> unit

val record_outcome : t -> call -> outcome -> unit
(** Set the outcome of a timestamp; [Failed _] calls are additionally
    listed by {!failed_calls} (and must {e not} be [add_call]ed). *)

val calls : t -> call list
(** Committed calls only, in execution order — the domain the inference
    strategies quantify over.  Failed timestamps never appear here. *)

val failed_calls : t -> call list
(** Calls whose every attempt failed, in execution order. *)

val attempts : t -> attempt list
(** Every supervision attempt (successful, retried and failed), in
    execution order. *)

val outcome_at : t -> int -> outcome option
(** The outcome recorded for a timestamp, committed or failed. *)

val entries : t -> entry list
(** Sorted by call timestamp. *)

val call_at : t -> int -> call option

val resources_of_call : t -> call -> string list
(** The out(c) of the model: URIs of the resources the call produced. *)

val call_of_resource : t -> string -> call option
(** The labeling function λ. *)

val source_table : t -> string
(** The rendered Source table (Res. | Call | Service | Time). *)

val attempts_table : t -> string
(** A rendered table of every supervision attempt and its outcome. *)
