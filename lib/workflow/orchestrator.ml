open Weblab_xml
module T = Weblab_obs.Telemetry

let c_committed = T.counter "orch.calls.committed"
let c_failed = T.counter "orch.calls.failed"
let c_retried = T.counter "orch.calls.retried"
let c_attempts = T.counter "orch.attempts"
let c_attempts_failed = T.counter "orch.attempts.failed"
let c_backoff_ms = T.counter "orch.backoff_ms"

exception Append_violation of string

(* What a committed call changed: the arena tail it appended (in id
   order, which is also fragment pre-order) and the committed nodes it
   promoted to resources.  Handed to the [on_step] hook so strategies can
   work from the delta instead of re-scanning states. *)
type delta = {
  new_nodes : Tree.node list;
  promoted : Tree.node list;
}

exception Duplicate_uri of string

exception Budget_exceeded of string

exception Orchestrator_error of string
(* An internal bookkeeping inconsistency (e.g. a resource losing its URI
   between enumeration and labeling).  Typed, not [assert false]: a
   long-lived daemon must fail the session that hit it, never abort the
   process. *)

let log = Logs.Src.create "weblab.orchestrator" ~doc:"WebLab workflow orchestrator"

module Log = (val Logs.src_log log)

let initial_document ?(root_name = "Resource") ?(root_uri = "r1") () =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node root_name in
  Tree.set_uri doc root root_uri;
  doc

(* ----- URI allocation -----

   The allocator keeps, per live document, the set of URIs in use, and
   extends it incrementally: each allocation only scans the arena nodes
   appended since the previous one (plus any promotions the orchestrator
   registers), instead of rescanning every resource — the old behavior
   was O(n) per allocation, O(n²) per workflow.  Candidates are probed
   against the set and registered at allocation time, so two allocations
   can never hand out the same URI even before the first is assigned.

   The candidate sequence is unchanged from the original allocator: the
   probe starts at the current arena size, so documents produce the exact
   same auto-assigned URIs as before.

   Rollbacks bump the document generation; the allocator detects that and
   rebuilds its set from scratch (one O(n) scan per rollback — failures
   are the rare path). *)
module Uri_alloc = struct
  type state = {
    used : (string, unit) Hashtbl.t;
    mutable stamp : int;  (* arena prefix [0, stamp) already scanned *)
    mutable gen : int;  (* document generation the state is valid for *)
    lock : Mutex.t;
        (* guards the three fields above: allocations may race (Skolem
           workers in a parallel inference pool, or a second domain's
           execution probing the same document), and the global [mutex]
           below only covers the cache lookup, not the per-document
           scan-probe-register sequence *)
  }

  let max_cached = 8

  let cache : (Tree.t * state) list ref = ref []

  let mutex = Mutex.create ()

  let state_for doc =
    Mutex.protect mutex (fun () ->
        match List.find_opt (fun (d, _) -> d == doc) !cache with
        | Some (_, st) -> st
        | None ->
          let st = { used = Hashtbl.create 64; stamp = 0;
                     gen = Tree.generation doc; lock = Mutex.create () } in
          let others = List.filter (fun (d, _) -> d != doc) !cache in
          cache :=
            (doc, st)
            :: (if List.length others >= max_cached
                then List.filteri (fun i _ -> i < max_cached - 1) others
                else others);
          st)

  (* Catch up with the arena: rescan from zero after a rollback, else
     just the appended tail. *)
  let sync doc st =
    if st.gen <> Tree.generation doc then begin
      Hashtbl.reset st.used;
      st.stamp <- 0;
      st.gen <- Tree.generation doc
    end;
    let n = Tree.size doc in
    for i = st.stamp to n - 1 do
      match Tree.uri doc i with
      | Some u -> Hashtbl.replace st.used u ()
      | None -> ()
    done;
    st.stamp <- n

  (* Register a URI that appeared on an already-scanned node (a resource
     promotion): the tail scan cannot see those. *)
  let register doc u =
    let st = state_for doc in
    Mutex.protect st.lock (fun () ->
        sync doc st;
        Hashtbl.replace st.used u ())

  (* Scan, probe, and claim atomically: two racing allocations must never
     observe the same "unused" candidate. *)
  let fresh doc =
    let st = state_for doc in
    Mutex.protect st.lock (fun () ->
        sync doc st;
        let rec next k =
          let u = Printf.sprintf "r%d" k in
          if Hashtbl.mem st.used u then next (k + 1) else u
        in
        let u = next (Tree.size doc) in
        Hashtbl.replace st.used u ();
        u)
end

let fresh_uri doc = Uri_alloc.fresh doc

let check_unique_uris doc =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Tree.uri doc n with
      | Some u ->
        if Hashtbl.mem seen u then raise (Duplicate_uri u);
        Hashtbl.add seen u ()
      | None -> ())
    (Tree.resources doc)

(* Fingerprints of committed nodes, used to verify that in-process services
   only append.  Only URI promotion (adding an "id" to a node that had
   none) is tolerated as a change. *)
type fingerprint = {
  f_name : string;
  f_text : string;
  f_attrs : (string * string) list;
  f_parent : Tree.node;
  f_children : Tree.node list;
}

let fingerprint doc n =
  {
    f_name = Tree.name doc n;
    f_text = Tree.text doc n;
    f_attrs = Tree.attrs doc n;
    f_parent = Tree.parent doc n;
    f_children = Tree.children doc n;
  }

let check_fingerprint doc n fp =
  let fail what =
    raise
      (Append_violation
         (Printf.sprintf "service modified committed node %d (%s)" n what))
  in
  if not (String.equal fp.f_name (Tree.name doc n)) then fail "element name";
  if not (String.equal fp.f_text (Tree.text doc n)) then fail "text content";
  if fp.f_parent <> Tree.parent doc n then fail "parent";
  let kids = Tree.children doc n in
  let rec prefix old cur =
    match old, cur with
    | [], _ -> ()
    | o :: old', c :: cur' -> if o = c then prefix old' cur' else fail "child order"
    | _ :: _, [] -> fail "children removed"
  in
  prefix fp.f_children kids;
  (* Attributes: removal and modification are violations; adding "id"
     (resource promotion) is allowed, other additions are not. *)
  List.iter
    (fun (k, v) ->
      match Tree.attr doc n k with
      | Some v' when String.equal v v' -> ()
      | Some _ -> fail (Printf.sprintf "attribute %s changed" k)
      | None -> fail (Printf.sprintf "attribute %s removed" k))
    fp.f_attrs;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k fp.f_attrs) && not (String.equal k "id") then
        fail (Printf.sprintf "attribute %s added to committed node" k))
    (Tree.attrs doc n)

(* Both runners return (new nodes, promoted nodes): the arena tail the
   call appended, and the committed nodes the call gave an "id" to. *)
let run_inproc doc f =
  let old_size = Tree.size doc in
  let fps = Array.init old_size (fun n -> fingerprint doc n) in
  f doc;
  let promoted = ref [] in
  for n = 0 to old_size - 1 do
    check_fingerprint doc n fps.(n);
    if (not (List.mem_assoc "id" fps.(n).f_attrs)) && Tree.uri doc n <> None
    then promoted := n :: !promoted
  done;
  (List.init (Tree.size doc - old_size) (fun i -> old_size + i),
   List.rev !promoted)

(* Shared graft tail of the two blackbox runners: diff the parsed next
   state against the arena, adopt URI promotions on matched nodes and
   deep-copy the added fragments in. *)
let graft_new_doc doc new_doc =
  let result =
    try Diff.diff ~old_doc:doc ~new_doc
    with Diff.Not_contained msg -> raise (Append_violation msg)
  in
  (* new-document node -> arena node, for matched pairs *)
  let to_arena = Hashtbl.create 64 in
  List.iter
    (fun (old_n, new_n) -> Hashtbl.replace to_arena new_n old_n)
    result.matched;
  (* Adopt URI promotions on matched nodes. *)
  let promoted = ref [] in
  List.iter
    (fun (old_n, new_n) ->
      if Tree.is_element doc old_n then
        match Tree.uri doc old_n, Tree.uri new_doc new_n with
        | None, Some u ->
          Tree.set_uri doc old_n u;
          promoted := old_n :: !promoted
        | _ -> ())
    result.matched;
  let old_size = Tree.size doc in
  List.iter
    (fun { Diff.new_node; parent_in_new } ->
      let parent =
        if parent_in_new = Tree.no_node then Tree.no_node
        else
          match Hashtbl.find_opt to_arena parent_in_new with
          | Some p -> p
          | None ->
            raise
              (Append_violation
                 "internal: added fragment attached to an unmatched parent")
      in
      ignore (Tree.copy_subtree doc ~src:new_doc new_node ~parent))
    result.added;
  (List.init (Tree.size doc - old_size) (fun i -> old_size + i),
   List.rev !promoted)

let run_blackbox doc f =
  let input = Printer.to_string doc in
  let output = f input in
  let new_doc =
    try Xml_parser.parse output
    with Xml_parser.Error _ as e ->
      raise (Append_violation ("service returned unparsable XML: "
                               ^ Xml_parser.error_to_string e))
  in
  graft_new_doc doc new_doc

(* The streaming variant parses inside the thunk (typically through
   [Ingest] straight off a request body), so the live document is never
   serialized as a pseudo-input; parse failures surface as the same
   violation the string path reports. *)
let run_blackbox_doc doc f =
  let new_doc =
    try f ()
    with Xml_parser.Error _ as e ->
      raise (Append_violation ("service returned unparsable XML: "
                               ^ Xml_parser.error_to_string e))
  in
  graft_new_doc doc new_doc

(* ----- Supervision policy ----- *)

type policy = {
  retries : int;
  backoff_ms : float;
  max_new_nodes : int option;
  max_call_s : float option;
  on_failure : [ `Propagate | `Skip ];
}

let default_policy =
  { retries = 0; backoff_ms = 0.; max_new_nodes = None; max_call_s = None;
    on_failure = `Propagate }

(* Deterministic simulated exponential backoff: attempt k (1-based) is
   charged base * 2^(k-2) milliseconds, attempt 1 none.  The charge is
   recorded in the trace, never slept — executions stay reproducible and
   fast. *)
let backoff_for policy attempt =
  if attempt <= 1 || policy.backoff_ms <= 0. then 0.
  else policy.backoff_ms *. (2. ** float_of_int (attempt - 2))

let failure_reason = function
  | Append_violation m -> "append violation: " ^ m
  | Duplicate_uri u -> "duplicate URI " ^ u
  | Budget_exceeded m -> "budget exceeded: " ^ m
  | Orchestrator_error m -> "orchestrator error: " ^ m
  | Failure m -> "failure: " ^ m
  | e -> Printexc.to_string e

(* ----- Stepwise sessions -----

   The orchestration state that [execute] used to keep in closure-local
   mutables, reified so a long-lived daemon can drive calls one at a time
   over a live document: [start] performs the prologue (root promotion,
   URI scan, Source labeling), each [step] runs exactly one supervised
   call at the next timestamp, and [execute] is now a fold over [step].
   A failed step burns its timestamp and reports the failure to the
   caller instead of consulting [policy.on_failure] itself — the daemon
   fails the call, not the session. *)

type session = {
  s_doc : Tree.t;
  s_trace : Trace.t;
  s_policy : policy;
  s_service_of_time : (int, string) Hashtbl.t;
  s_seen_uris : (string, unit) Hashtbl.t;
      (* every URI committed so far; per-call additions are checked
         against it incrementally, replacing the old full rescan *)
  s_labeled : (Tree.node, unit) Hashtbl.t;
  mutable s_next_time : int;
}

let session_doc s = s.s_doc
let session_trace s = s.s_trace
let session_policy s = s.s_policy
let next_time s = s.s_next_time

(* Label all resources that still lack a service-call label, attributing
   them to the call active at their creation timestamp (this covers both
   fresh resources and nodes promoted to resources by a later call, as
   node 3 of Figure 4 is). *)
let label_resources s ~now =
  let doc = s.s_doc in
  List.iter
    (fun n ->
      if not (Hashtbl.mem s.s_labeled n) then begin
        Hashtbl.add s.s_labeled n ();
        (* A node older than the current call was just promoted. *)
        Tree.set_uri_time doc n
          (if Tree.created doc n < now then now else Tree.created doc n);
        let time = Tree.created doc n in
        let service =
          match Hashtbl.find_opt s.s_service_of_time time with
          | Some s -> s
          | None -> "Source"
        in
        if Tree.service_label doc n = None then
          Tree.set_service_label doc n service time;
        let call = { Trace.service; time } in
        match Tree.uri doc n with
        | Some uri -> Trace.add_entry s.s_trace { Trace.uri; node = n; call }
        | None ->
          raise
            (Orchestrator_error
               (Printf.sprintf
                  "resource node %d lost its URI during labeling at t%d" n now))
      end)
    (Tree.resources doc)

let start ?(policy = default_policy) doc =
  if not (Tree.has_root doc) then
    invalid_arg "Orchestrator.start: the document needs a root";
  let s =
    { s_doc = doc; s_trace = Trace.create (); s_policy = policy;
      s_service_of_time = Hashtbl.create 16; s_seen_uris = Hashtbl.create 64;
      s_labeled = Hashtbl.create 64; s_next_time = 1 }
  in
  Hashtbl.replace s.s_service_of_time 0 "Source";
  (* The root is always a resource (Definition 1). *)
  if Tree.uri doc (Tree.root doc) = None then
    Tree.set_uri doc (Tree.root doc) (fresh_uri doc);
  check_unique_uris doc;
  List.iter
    (fun n ->
      match Tree.uri doc n with
      | Some u -> Hashtbl.replace s.s_seen_uris u ()
      | None -> ())
    (Tree.resources doc);
  Trace.add_call s.s_trace { Trace.service = "Source"; time = 0 };
  label_resources s ~now:0;
  s

type step_result =
  | Committed of { delta : delta; attempts : int }
  | Step_failed of { reason : string; exn : exn; attempts : int }
      (* the timestamp is burned: the document is bit-identical to the
         previous commit and the strategies will never see this call *)

let step ?(on_step = fun _ _ _ _ -> ()) s service =
  let doc = s.s_doc and trace = s.s_trace and policy = s.s_policy in
  let time = s.s_next_time in
  s.s_next_time <- time + 1;
  let name = Service.name service in
  Log.debug (fun m -> m "call %d: %s" time name);
  Hashtbl.replace s.s_service_of_time time name;
  let call = { Trace.service = name; time } in
  let before = Doc_state.at doc (time - 1) in
  let ck = Tree.checkpoint doc in
  (* One supervised attempt: run the service, verify budgets, assign
     identities, and check this call's URIs against everything already
     committed.  Raises on any violation; nothing here mutates the
     trace, so a raise rolls back to [ck] with no bookkeeping to
     undo. *)
  let attempt_once () =
        let t0 = Sys.time () in
        let new_nodes, promoted =
          match service.Service.impl with
          | Service.Inproc f -> run_inproc doc f
          | Service.Blackbox f -> run_blackbox doc f
          | Service.Blackbox_doc f -> run_blackbox_doc doc f
        in
        (match policy.max_call_s with
         | Some limit when Sys.time () -. t0 > limit ->
           raise
             (Budget_exceeded
                (Printf.sprintf "call ran %.3fs, budget %.3fs"
                   (Sys.time () -. t0) limit))
         | _ -> ());
        (match policy.max_new_nodes with
         | Some limit when List.length new_nodes > limit ->
           raise
             (Budget_exceeded
                (Printf.sprintf "call appended %d nodes, budget %d"
                   (List.length new_nodes) limit))
         | _ -> ());
        List.iter (fun n -> Tree.set_created doc n time) new_nodes;
        (* Give every added fragment root an identity: it is a new resource
           of this call. *)
        List.iter
          (fun n ->
            let p = Tree.parent doc n in
            let is_fragment_root = p = Tree.no_node || Tree.created doc p < time in
            if is_fragment_root && Tree.is_element doc n && Tree.uri doc n = None
            then Tree.set_uri doc n (fresh_uri doc))
          new_nodes;
        (* Collision check at commit boundary: the URIs this call minted
           (on new nodes or by promotion) must be new to the execution and
           pairwise distinct. *)
        let this_call = Hashtbl.create 16 in
        let check_new u =
          if Hashtbl.mem s.s_seen_uris u || Hashtbl.mem this_call u then
            raise (Duplicate_uri u);
          Hashtbl.add this_call u ()
        in
        List.iter
          (fun n ->
            match Tree.uri doc n with Some u -> check_new u | None -> ())
          new_nodes;
        List.iter
          (fun n ->
            match Tree.uri doc n with Some u -> check_new u | None -> ())
          promoted;
        (new_nodes, promoted)
      in
  let rec supervise attempt =
    let bo = backoff_for policy attempt in
    T.incr c_attempts;
    T.add c_backoff_ms (int_of_float bo);
    match attempt_once () with
    | (new_nodes, promoted) ->
      Trace.record_attempt trace
        { Trace.a_service = name; a_time = time; a_attempt = attempt;
          a_ok = true; a_reason = ""; a_backoff_ms = bo };
      `Committed (new_nodes, promoted, attempt)
    | exception e ->
      let reason = failure_reason e in
      Tree.restore doc ck;
      Log.debug (fun m ->
          m "call %d (%s) attempt %d failed: %s" time name attempt reason);
      T.incr c_attempts_failed;
      Trace.record_attempt trace
        { Trace.a_service = name; a_time = time; a_attempt = attempt;
          a_ok = false; a_reason = reason; a_backoff_ms = bo };
      if attempt <= policy.retries then supervise (attempt + 1)
      else `Failed (reason, e)
  in
  let span_t0 = if T.spans_on () then T.now_us () else 0. in
  let emit_call_span outcome attempts =
    if T.spans_on () then
      T.emit_span ~cat:"orchestrator"
        ~args:
          [ ("time", string_of_int time); ("outcome", outcome);
            ("attempts", string_of_int attempts) ]
        ~name:("call:" ^ name) ~worker:(T.current_worker ())
        ~t0:span_t0 ~t1:(T.now_us ()) ()
  in
  match supervise 1 with
  | `Committed (new_nodes, promoted, attempts) ->
    emit_call_span "committed" attempts;
    T.incr c_committed;
    if attempts > 1 then T.incr c_retried;
    (* Commit: from here on nothing can fail, so a later call's
       rollback never has trace bookkeeping to undo. *)
    List.iter
      (fun n ->
        match Tree.uri doc n with
        | Some u ->
          Hashtbl.replace s.s_seen_uris u ();
          (* the allocator's tail scan cannot see promotions *)
          Uri_alloc.register doc u
        | None -> ())
      promoted;
    List.iter
      (fun n ->
        match Tree.uri doc n with
        | Some u -> Hashtbl.replace s.s_seen_uris u ()
        | None -> ())
      new_nodes;
    Trace.add_call trace call;
    Trace.record_outcome trace call
      (if attempts > 1 then Trace.Retried (attempts - 1) else Trace.Ok);
    let delta = { new_nodes; promoted } in
    label_resources s ~now:time;
    let after = Doc_state.at doc time in
    on_step call before after delta;
    Committed { delta; attempts }
  | `Failed (reason, e) ->
    emit_call_span "failed" (policy.retries + 1);
    T.incr c_failed;
    (* The timestamp is burned: the document is bit-identical to the
       previous commit and the strategies will never see this call. *)
    Trace.record_outcome trace call (Trace.Failed reason);
    Step_failed { reason; exn = e; attempts = policy.retries + 1 }

let execute ?(policy = default_policy) ?(on_step = fun _ _ _ _ -> ()) doc
    services =
  let s = start ~policy doc in
  List.iter
    (fun service ->
      match step ~on_step s service with
      | Committed _ -> ()
      | Step_failed { reason; exn; attempts } -> (
        match policy.on_failure with
        | `Propagate -> raise exn
        | `Skip ->
          Log.info (fun m ->
              m "call %d (%s) failed after %d attempt(s): %s — skipped"
                (next_time s - 1) (Service.name service) attempts reason)))
    services;
  s.s_trace
