(** Black-box services (§2): a service call receives the WebLab document
    and extends it with new resources — its implementation is never
    inspected by the provenance machinery.

    Two integration modes:
    - [Inproc]: the service works directly on the shared arena through the
      {!Weblab_xml.Tree} API; the orchestrator verifies it only appended
      (and at most promoted nodes to resources).
    - [Blackbox]: the service maps serialized XML to serialized XML — the
      faithful web-service picture; the Recorder diffs the result against
      the input and grafts the added fragments onto the arena.
    - [Blackbox_doc]: the streaming variant — the service yields the next
      document state as an already-parsed tree (typically streamed through
      {!Weblab_xml.Ingest} from a request body), so the Recorder diffs
      without serializing the live document as a pseudo-input. *)

open Weblab_xml

type impl =
  | Inproc of (Tree.t -> unit)
  | Blackbox of (string -> string)
  | Blackbox_doc of (unit -> Tree.t)

type t = {
  name : string;
  description : string;
  impl : impl;
}

val make : name:string -> description:string -> impl -> t

val inproc : name:string -> description:string -> (Tree.t -> unit) -> t

val blackbox : name:string -> description:string -> (string -> string) -> t

val blackbox_doc : name:string -> description:string -> (unit -> Tree.t) -> t
(** The thunk may raise {!Weblab_xml.Xml_parser.Error} (a streamed body
    that fails to parse); the orchestrator reports it exactly like
    unparsable [Blackbox] output. *)

val name : t -> string

val description : t -> string
