(* Black-box services (§2): a service call receives the WebLab document and
   extends it with new resources.  Two integration modes are offered:

   - [Inproc]: the service works directly on the shared arena through the
     {!Weblab_xml.Tree} API.  The orchestrator still verifies it only
     appended (and at most promoted nodes to resources by adding an "id").
   - [Blackbox]: the service is a function from serialized XML to
     serialized XML — the faithful web-service picture.  The Recorder
     parses the result, diffs it against the input (the paper's
     "standard XML-diff service") and grafts the added fragments onto the
     arena.
   - [Blackbox_doc]: the streaming variant — the service yields the next
     document state as an already-parsed tree (typically built by
     {!Weblab_xml.Ingest} straight from a request body), so the Recorder
     diffs without ever serializing the live document as a pseudo-input. *)

open Weblab_xml

type impl =
  | Inproc of (Tree.t -> unit)
  | Blackbox of (string -> string)
  | Blackbox_doc of (unit -> Tree.t)

type t = {
  name : string;
  description : string;
  impl : impl;
}

let make ~name ~description impl = { name; description; impl }

let inproc ~name ~description f = make ~name ~description (Inproc f)

let blackbox ~name ~description f = make ~name ~description (Blackbox f)

let blackbox_doc ~name ~description f = make ~name ~description (Blackbox_doc f)

let name t = t.name

let description t = t.description
