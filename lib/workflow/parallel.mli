(** Parallel and nested workflow executions — the §8 extension.

    The core model assumes sequential control flow, where "call c sees
    everything produced before t" makes [@t < t] a sound source
    constraint.  With parallel branches this breaks: branches forked from
    the same state run concurrently, so a call must not see — and its
    provenance must not link to — resources produced by a {e sibling}
    branch, even when those carry smaller timestamps.

    Following the paper's suggestion ("adding additional meta-data for
    identifying different control flow channels"), workflows are
    series-parallel expressions; execution compiles them to a task DAG,
    schedules the tasks breadth-first ({e interleaving} parallel branches
    — so timestamp order alone would produce wrong provenance, which is
    the point), and records every call's happened-before set and channel.
    Provenance inference then uses {!happened_before} instead of [<]
    (see {!Weblab_prov.Engine.run_parallel}). *)

open Weblab_xml

type wf =
  | Call of Service.t
  | Seq of wf list
  | Par of wf list
  | Nested of string * wf
      (** a named sub-workflow: behaves like its body; the name becomes a
          channel segment on the resources it produces *)

type execution = {
  trace : Trace.t;
  before : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** per timestamp, the timestamps that happened before it *)
  channels : (int, string) Hashtbl.t;  (** timestamp → channel path *)
}

val execute :
  ?policy:Orchestrator.policy ->
  ?on_step:
    (Trace.call -> Doc_state.t -> Doc_state.t -> Orchestrator.delta -> unit) ->
  Tree.t ->
  wf ->
  execution
(** Execute the workflow.  Calls receive timestamps in schedule order;
    every resource additionally carries its channel in [@ch].  [policy]
    supervises each call as in {!Orchestrator.execute}. *)

val happened_before : execution -> int -> int -> bool
(** [happened_before e t' t]: did the call at [t'] happen before the call
    at [t] in the series-parallel order?  The initial state ([t' = 0])
    precedes everything; the relation is irreflexive, and false for
    concurrent (sibling-branch) calls. *)

val channel_of : execution -> int -> string option
(** The channel path of a call, e.g. ["/par1/image-branch/"]. *)
