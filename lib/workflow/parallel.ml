(* Parallel and nested workflow executions — the §8 extension.

   The core model assumes sequential control flow, where "call c_i sees
   everything produced before t_i" makes [@t < t] a sound source
   constraint.  With parallel branches this breaks: two branches forked
   from the same state run concurrently, so a call must NOT see (and its
   provenance must not link to) resources produced by a {e sibling}
   branch, even when those carry smaller timestamps.

   Following the paper's suggestion ("adding additional meta-data for
   identifying different control flow channels"), workflows are
   series-parallel expressions; execution compiles them to a task DAG,
   schedules the tasks breadth-first (interleaving parallel branches, so
   timestamps alone would produce wrong provenance — which is the point),
   and records for every call its happened-before set.  Provenance
   inference then replaces the [t' < t] test by [t' ∈ before(t)]. *)

open Weblab_xml

type wf =
  | Call of Service.t
  | Seq of wf list
  | Par of wf list
  | Nested of string * wf
      (* a named sub-workflow: behaves like its body, and the name is
         recorded as a channel prefix on the resources it produces *)

(* Flattened task graph. *)
type task = {
  id : int;
  service : Service.t;
  preds : int list;        (* direct happened-before predecessors *)
  channel : string;        (* e.g. "/", "/par1.2/", "/sub/" *)
}

let compile (wf : wf) : task list =
  let tasks = ref [] in
  let fresh = ref 0 in
  (* returns the exit task ids of the sub-expression *)
  let rec go wf ~entry ~channel =
    match wf with
    | Call service ->
      let id = !fresh in
      incr fresh;
      tasks := { id; service; preds = entry; channel } :: !tasks;
      [ id ]
    | Seq parts ->
      List.fold_left (fun entry part -> go part ~entry ~channel) entry parts
    | Par branches ->
      List.concat
        (List.mapi
           (fun i branch ->
             go branch ~entry ~channel:(Printf.sprintf "%spar%d/" channel (i + 1)))
           branches)
    | Nested (name, body) -> go body ~entry ~channel:(channel ^ name ^ "/")
  in
  ignore (go wf ~entry:[] ~channel:"/");
  List.rev !tasks

(* Transitive happened-before sets over task ids. *)
let happened_before_sets (tasks : task list) : (int, unit) Hashtbl.t array =
  let n = List.length tasks in
  let sets = Array.init n (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun t ->
      List.iter
        (fun p ->
          Hashtbl.replace sets.(t.id) p ();
          Hashtbl.iter (fun q () -> Hashtbl.replace sets.(t.id) q ()) sets.(p))
        t.preds)
    tasks;
  sets

(* Breadth-first (Kahn) schedule: parallel branches interleave. *)
let schedule (tasks : task list) : task list =
  let n = List.length tasks in
  let by_id = Array.make n (List.hd tasks) in
  List.iter (fun t -> by_id.(t.id) <- t) tasks;
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun t ->
      indeg.(t.id) <- List.length t.preds;
      List.iter (fun p -> succs.(p) <- t.id :: succs.(p)) t.preds)
    tasks;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := by_id.(i) :: !order;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      (List.rev succs.(i))
  done;
  List.rev !order

type execution = {
  trace : Trace.t;
  (* [before.(t)] = timestamps happened-before call at timestamp t (t ≥ 1). *)
  before : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  channels : (int, string) Hashtbl.t;   (* timestamp -> channel *)
}

(* Does the call at [t'] happen before the call at [t]?  The initial state
   (t' = 0) precedes everything. *)
let happened_before exec t' t =
  t' = 0
  ||
  match Hashtbl.find_opt exec.before t with
  | Some set -> Hashtbl.mem set t'
  | None -> false

let channel_of exec t = Hashtbl.find_opt exec.channels t

(* Execute a series-parallel workflow.  Calls get timestamps in schedule
   order; every resource additionally carries its channel in @ch. *)
let execute ?policy ?(on_step = fun _ _ _ _ -> ()) doc (wf : wf) : execution =
  let tasks = compile wf in
  if tasks = [] then
    { trace = Orchestrator.execute ?policy doc [];
      before = Hashtbl.create 1; channels = Hashtbl.create 1 }
  else begin
    let hb = happened_before_sets tasks in
    let ordered = schedule tasks in
    (* task id -> its position (= timestamp - 1) in the schedule *)
    let time_of_task = Hashtbl.create 16 in
    List.iteri (fun i t -> Hashtbl.replace time_of_task t.id (i + 1)) ordered;
    let before = Hashtbl.create 16 in
    let channels = Hashtbl.create 16 in
    List.iter
      (fun t ->
        let time = Hashtbl.find time_of_task t.id in
        let set = Hashtbl.create 8 in
        Hashtbl.iter
          (fun p () -> Hashtbl.replace set (Hashtbl.find time_of_task p) ())
          hb.(t.id);
        Hashtbl.replace before time set;
        Hashtbl.replace channels time t.channel)
      ordered;
    (* Tag new resources with their channel as the step hook runs. *)
    let tag_channel (call : Trace.call) _before_state after =
      let doc = Doc_state.doc after in
      (match Hashtbl.find_opt channels call.Trace.time with
       | Some ch ->
         List.iter
           (fun n ->
             if Tree.created doc n = call.Trace.time && Tree.is_resource doc n
             then Tree.set_attr doc n "ch" ch)
           (Doc_state.nodes after)
       | None -> ())
    in
    let hook call b a delta =
      tag_channel call b a;
      on_step call b a delta
    in
    let trace =
      Orchestrator.execute ?policy ~on_step:hook doc
        (List.map (fun t -> t.service) ordered)
    in
    { trace; before; channels }
  end
