let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_args args =
  args
  |> List.map (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
  |> String.concat ","

(* Timestamps print with three decimals: microsecond wall times keep
   sub-µs precision, logical ticks render as "3.000" — stable either way. *)
let ts f = Printf.sprintf "%.3f" f

(* ---------- human summary ---------- *)

let summary () =
  let b = Buffer.create 1024 in
  let events = Telemetry.events () in
  if events <> [] then begin
    let agg = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        let name = e.Telemetry.e_name in
        match Hashtbl.find_opt agg name with
        | Some (n, total) -> Hashtbl.replace agg name (n + 1, total +. e.e_dur)
        | None ->
            order := name :: !order;
            Hashtbl.add agg name (1, e.e_dur))
      events;
    Buffer.add_string b "spans (aggregated by name):\n";
    Buffer.add_string b
      (Printf.sprintf "  %-36s %8s %12s %12s\n" "name" "count" "total_us"
         "mean_us");
    List.iter
      (fun name ->
        let n, total = Hashtbl.find agg name in
        Buffer.add_string b
          (Printf.sprintf "  %-36s %8d %12.1f %12.1f\n" name n total
             (total /. float_of_int n)))
      (List.rev !order)
  end;
  let counters = Telemetry.counters () in
  if counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %10d\n" name v))
      counters
  end;
  let gauges = Metrics.gauges () in
  if gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %10d\n" name v))
      gauges
  end;
  let hists = (Metrics.snapshot ()).Metrics.sn_hists in
  if hists <> [] then begin
    Buffer.add_string b "histograms:\n";
    Buffer.add_string b
      (Printf.sprintf "  %-28s %8s %12s %10s %10s %10s\n" "name" "count"
         "sum_us" "p50_us" "p99_us" "max_us");
    List.iter
      (fun hv ->
        Buffer.add_string b
          (Printf.sprintf "  %-28s %8d %12d %10d %10d %10d\n"
             hv.Metrics.hv_name hv.hv_count hv.hv_sum_us hv.hv_p50_us
             hv.hv_p99_us hv.hv_max_us))
      hists
  end;
  if Buffer.length b = 0 then Buffer.add_string b "(telemetry: nothing recorded)\n";
  Buffer.contents b

(* ---------- JSONL ---------- *)

let jsonl () =
  let b = Buffer.create 4096 in
  let clock =
    match Telemetry.clock () with
    | Telemetry.Wall -> "wall"
    | Telemetry.Logical -> "logical"
  in
  Buffer.add_string b
    (Printf.sprintf "{\"type\":\"meta\",\"version\":1,\"clock\":\"%s\"}\n" clock);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"type\":\"span\",\"name\":\"%s\",\"cat\":\"%s\",\"worker\":%d,\"ts_us\":%s,\"dur_us\":%s,\"args\":{%s}}\n"
           (json_escape e.Telemetry.e_name)
           (json_escape e.e_cat) e.e_worker (ts e.e_ts) (ts e.e_dur)
           (json_args e.e_args)))
    (Telemetry.events ());
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
           (json_escape name) v))
    (Telemetry.counters ());
  Buffer.contents b

(* ---------- Prometheus text exposition ----------

   The scrape format: `# TYPE` line per family, counters and gauges as
   single samples, histograms as cumulative `le`-bucket samples plus
   `_sum`/`_count`.  Metric names are the recorder's dotted names with
   every non-[a-zA-Z0-9_:] byte mapped to '_' and a "weblab_" prefix;
   histogram families get a "_us" unit suffix.  Only non-empty buckets
   are emitted (plus the mandatory "+Inf"), so the dump stays small. *)

let prom_name ?(suffix = "") name =
  let b = Buffer.create (String.length name + 16) in
  Buffer.add_string b "weblab_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.add_string b suffix;
  Buffer.contents b

let exposition () =
  let sn = Metrics.snapshot () in
  let b = Buffer.create 4096 in
  let sample name v =
    Buffer.add_string b (Printf.sprintf "%s %d\n" name v)
  in
  let family kind name v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
    sample name v
  in
  family "gauge" "weblab_uptime_seconds"
    (int_of_float (sn.Metrics.sn_uptime_us /. 1e6));
  family "gauge" "weblab_obs_spans_buffered" sn.Metrics.sn_spans_buffered;
  family "counter" "weblab_obs_spans_dropped" sn.Metrics.sn_spans_dropped;
  List.iter
    (fun (name, v) -> family "counter" (prom_name name) v)
    sn.Metrics.sn_counters;
  List.iter
    (fun (name, v) -> family "gauge" (prom_name name) v)
    sn.Metrics.sn_gauges;
  List.iter
    (fun hv ->
      let name = prom_name ~suffix:"_us" hv.Metrics.hv_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
      let cum = ref 0 in
      List.iter
        (fun (upper, n) ->
          cum := !cum + n;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name upper !cum))
        hv.Metrics.hv_buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name hv.Metrics.hv_count);
      sample (name ^ "_sum") hv.Metrics.hv_sum_us;
      sample (name ^ "_count") hv.Metrics.hv_count)
    sn.Metrics.sn_hists;
  Buffer.contents b

(* ---------- slow-query log records ---------- *)

let slow_query_line ~verb ~session ~req ~dur_us ~ok ~detail =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"ts_us\":%.0f,\"verb\":\"%s\",\"session\":\"%s\",\"req\":\"%s\",\"dur_us\":%.0f,\"ok\":%b"
       (Telemetry.uptime_us ()) (json_escape verb) (json_escape session)
       (json_escape req) dur_us ok);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf ",\"%s\":%d" (json_escape k) v))
    detail;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---------- Chrome trace-event JSON ---------- *)

let chrome_trace () =
  let events = Telemetry.events () in
  let workers =
    List.fold_left
      (fun acc e -> if List.mem e.Telemetry.e_worker acc then acc else e.e_worker :: acc)
      [] events
    |> List.sort compare
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b s
  in
  List.iter
    (fun w ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"worker-%d\"}}"
           w w))
    workers;
  List.iter
    (fun e ->
      let ph, dur =
        if e.Telemetry.e_dur > 0. then ("X", Printf.sprintf ",\"dur\":%s" (ts e.e_dur))
        else ("i", ",\"s\":\"t\"")
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s%s,\"name\":\"%s\",\"cat\":\"%s\",\"args\":{%s}}"
           ph e.e_worker (ts e.e_ts) dur (json_escape e.e_name)
           (json_escape e.e_cat) (json_args e.e_args)))
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
