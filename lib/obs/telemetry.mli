(** Domain-safe telemetry: counters, spans, and meta-provenance activities.

    The recorder is a single process-global instance sitting below every
    other library in the dependency graph, so the XML index, the relational
    joins, the XPath evaluator, the strategy backends, the pool and the
    orchestrator can all report into it without plumbing a handle through
    their APIs.

    Design contract (mirrors the emission-buffer discipline of the
    strategies): nothing recorded here may influence inference.  Counters
    are commutative atomic sums, so their totals are schedule-independent;
    span and meta-activity *events* are only ever emitted from the
    merge side of a pool batch — in item order, on the caller's domain —
    so the event stream is deterministic under the logical clock for any
    [--jobs] value.  Worker attribution inside an item is captured with
    the timing (via {!timed}) and carried to the merge point.

    A disabled recorder ([level = Off]) reduces every entry point to one
    atomic load and a branch. *)

(** {1 Recorder state} *)

type level =
  | Off  (** no-op fast path: a single atomic load per call site *)
  | Counters  (** atomic counters only, no event buffering *)
  | Full  (** counters + span events (Chrome trace / JSONL sinks) *)

val set_level : level -> unit

val level : unit -> level

val enabled : unit -> bool
(** [level () <> Off]. *)

val spans_on : unit -> bool
(** [level () = Full]. *)

val set_meta : bool -> unit
(** Toggle meta-provenance recording (independent of [level], so
    [--meta-prov] works without full tracing). *)

val meta_on : unit -> bool

val timing_on : unit -> bool
(** [spans_on () || meta_on ()] — whether item bodies should read the
    clock. *)

(** {1 Clocks} *)

type clock =
  | Wall  (** monotonic-enough wall clock, microseconds since {!reset} *)
  | Logical  (** deterministic tick counter — golden tests *)

val set_clock : clock -> unit

val clock : unit -> clock

val now_us : unit -> float
(** Microseconds since the last {!reset} (Wall), or the next logical
    tick (Logical). *)

val uptime_us : unit -> float
(** Microseconds since process boot.  Unlike {!now_us}'s epoch, this
    one is {e never} restamped: a long-lived daemon does not call
    {!reset}, its counters/gauges/histograms are monotonic since boot,
    and [uptime_us] dates that epoch in every {!Metrics.snapshot}. *)

val reset : unit -> unit
(** Zero every counter (and, via the {!on_reset} hooks, every gauge and
    histogram), drop buffered events and meta activities, zero the span
    drop tally, and restamp the {!now_us} clock epoch — but never the
    boot epoch of {!uptime_us}.  Call once before a one-shot
    instrumented run; a serving daemon must {e not} call it (epoch
    contract: everything it reports is "since boot"). *)

val on_reset : (unit -> unit) -> unit
(** Register a hook run at the end of every {!reset} (how [Metrics]
    joins the reset without a dependency cycle). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create by name; safe to call at module initialisation. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counters : unit -> (string * int) list
(** Non-zero counters, sorted by name. *)

(** {1 Worker tracks} *)

val set_worker : int -> unit
(** Called by the pool: binds the calling domain to a worker slot, the
    [tid] of the Chrome-trace track its spans land on. *)

val current_worker : unit -> int
(** The calling domain's worker slot (0 outside a pool batch). *)

(** {1 Request propagation}

    The serving daemon brackets each request's handling in
    {!with_request}; every span emitted inside the bracket (on that
    domain) carries a [("req", id)] arg, so a single request's trace can
    be filtered back out of the buffer — the [metrics] verb's trace
    view.  Outside a bracket nothing is stamped and the sinks' output is
    unchanged (the golden tests pin this). *)

val with_request : string -> (unit -> 'a) -> 'a
(** Run a thunk with the current domain's request id set (restored on
    exit, exceptions included).  Nests: the innermost id wins. *)

val current_request : unit -> string
(** The calling domain's current request id ([""] outside a bracket). *)

(** {1 Spans} *)

type 'a timed = { v : 'a; t0 : float; t1 : float; worker : int }

val timed : (unit -> 'a) -> 'a timed
(** Run a thunk, capturing start/end times and the executing worker when
    {!timing_on}; otherwise the fields are zero.  Used inside pool items;
    the result is carried to the merge side where {!emit_span} /
    {!record_meta} run in item order. *)

val emit_span :
  ?cat:string ->
  ?args:(string * string) list ->
  name:string ->
  worker:int ->
  t0:float ->
  t1:float ->
  unit ->
  unit
(** Append a completed span event.  Only meaningful on the merge side /
    caller domain; no-op unless {!spans_on}. *)

val emit_instant :
  ?cat:string -> ?args:(string * string) list -> string -> unit

val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f]: time [f] on the calling domain and emit the span. *)

type event = {
  e_name : string;
  e_cat : string;
  e_worker : int;
  e_ts : float;  (** µs since epoch, or logical tick *)
  e_dur : float;  (** 0 for instants *)
  e_args : (string * string) list;
}

val events : unit -> event list
(** Buffered events in emission order (for a bounded buffer: the
    retained suffix, oldest first). *)

(** {1 Span retention}

    One-shot runs buffer every span and dump them at exit.  A long-lived
    daemon must not: {!set_retention} swaps the unbounded list for a
    fixed-capacity ring holding the newest spans.  Evictions are
    tallied, not silent — {!spans_dropped} is part of every snapshot, so
    a trace with holes says so. *)

val set_retention : int option -> unit
(** [Some cap] switches to a ring of [cap] spans (existing buffered
    spans are discarded and the drop tally zeroed); [None] restores the
    unbounded one-shot buffer.  Call at daemon boot, before serving. *)

val retention : unit -> int option
(** The current cap ([None] = unbounded). *)

val spans_dropped : unit -> int
(** Spans evicted from the ring since the last {!set_retention}/
    {!reset}. *)

val events_buffered : unit -> int
(** Spans currently held (≤ the retention cap, if one is set). *)

(** {1 Meta-provenance activities}

    One activity per service call × rule evaluation; consumed by
    [Prov_export] to emit the inference run itself as PROV. *)

type meta_activity = {
  m_service : string;
  m_time : int;  (** call timestamp (logical workflow time) *)
  m_rule : string;
  m_t0 : float;
  m_t1 : float;
  m_links : (string * string) list;  (** (from, to) pairs the evaluation produced *)
}

val record_meta : meta_activity -> unit
(** No-op unless {!meta_on}.  Merge-side only, so activity order is
    deterministic. *)

val meta_activities : unit -> meta_activity list
