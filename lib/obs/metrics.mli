(** Daemon-grade metric primitives on top of {!Telemetry}: gauges,
    log-bucketed latency histograms, and a renderable snapshot.

    {!Telemetry}'s counters are cumulative sums — right for "how much
    work happened", wrong for "how much is live now" (a decremented
    counter reads as a drifting sum) and useless for latency (a sum
    hides the tail).  This module adds the two missing families:

    - {b gauges}: last-written point-in-time values (active sessions,
      store triples, WAL bytes, arena residency), set or adjusted at
      commit/merge boundaries;
    - {b histograms}: fixed-layout log-bucketed latency recorders —
      base-2 octaves split into 4 sub-buckets (≤ 12.5% relative error),
      lock-free atomic bucket increments, mergeable, with
      p50/p90/p99/max readout.

    Everything here obeys the PR 5 contract: recording never influences
    inference, every entry point is gated on {!Telemetry.enabled} (one
    atomic load when [Off]), and values are commutative atomics so
    totals are schedule-independent.  Unlike span events, gauges and
    histograms are safe to record from any domain at any time.

    The recorder is process-global and — like the counters — is {e not}
    reset by a long-lived daemon: histograms and gauges accumulate since
    boot ({!Telemetry.uptime_us} dates the epoch).  {!Telemetry.reset}
    clears them for one-shot instrumented runs. *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
(** Find-or-create by name; safe to call at module initialisation. *)

val set : gauge -> int -> unit
(** No-op unless {!Telemetry.enabled}. *)

val add : gauge -> int -> unit
(** Adjust by a (possibly negative) delta — for live-population gauges
    maintained at open/close boundaries.  No-op unless enabled. *)

val gauge_value : gauge -> int

val gauges : unit -> (string * int) list
(** Every registered gauge (zeros included — 0 live sessions is a
    reading, not an absence), sorted by name. *)

(** {1 Histograms}

    Values are non-negative microsecond durations, truncated to [int].
    The bucket layout is fixed: values < 4 get exact unit buckets, then
    each base-2 octave [2^e, 2^{e+1}) is split into 4 equal sub-buckets,
    so any recorded value lands in a bucket whose width is at most 1/4
    of its magnitude.  248 buckets cover the whole non-negative [int]
    range — no configuration, and any two histograms merge bucket by
    bucket. *)

type hist

val hist : string -> hist
(** Find-or-create by name. *)

val observe_us : hist -> float -> unit
(** Record one duration in microseconds (negative values clamp to 0).
    Lock-free: one atomic add on the bucket, count and sum, plus a CAS
    loop on the max.  No-op unless {!Telemetry.enabled}. *)

val time : hist -> (unit -> 'a) -> 'a
(** Time a thunk on the wall clock and record it; reads no clock when
    the recorder is disabled.  Records on exception too — a slow
    failure is still a slow request. *)

val merge_into : into:hist -> hist -> unit
(** Add [src]'s buckets, count and sum into [into]; max is the max. *)

val bucket_of_us : int -> int
(** The bucket index a microsecond value lands in (exposed for tests). *)

val bucket_upper_us : int -> int
(** Inclusive upper bound of a bucket, in microseconds. *)

type hist_view = {
  hv_name : string;
  hv_count : int;
  hv_sum_us : int;
  hv_max_us : int;
  hv_p50_us : int;
  hv_p90_us : int;
  hv_p99_us : int;
  hv_buckets : (int * int) list;
      (** non-empty buckets as [(inclusive upper bound in µs, count)],
          ascending — the exposition writer renders cumulative
          [le]-buckets from these *)
}

val view : hist -> hist_view
(** A live readout.  Quantiles are the inclusive upper bound of the
    bucket containing the rank, so they over-approximate by at most one
    sub-bucket width (≤ 12.5%); an empty histogram reads all zeros. *)

(** {1 Snapshot} *)

type snapshot = {
  sn_uptime_us : float;  (** since process boot — never reset *)
  sn_counters : (string * int) list;  (** non-zero, sorted *)
  sn_gauges : (string * int) list;  (** all registered, sorted *)
  sn_hists : hist_view list;  (** sorted by name *)
  sn_spans_buffered : int;
  sn_spans_dropped : int;
      (** spans evicted from the bounded ring ({!Telemetry.set_retention})
          — loss is visible, never silent *)
}

val snapshot : unit -> snapshot
(** One coherent-enough readout of the whole recorder (each cell is an
    atomic read; no global lock is held across families).  This is what
    the [metrics] protocol verb and the Prometheus exposition render. *)

val reset : unit -> unit
(** Zero every gauge and histogram.  Called by {!Telemetry.reset} via
    the registered hook; one-shot runs only — a daemon never resets. *)
