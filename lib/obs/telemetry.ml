(* The process-global recorder.  Everything here is either an atomic
   (level, counters, logical clock, span-drop tally) or guarded by a
   mutex (registry, event and meta buffers).  Events and meta activities
   are only written from the merge side of a batch — the caller's domain
   — so the mutex on those buffers is uncontended in practice; it exists
   for the odd caller-domain span emitted while workers run counters,
   and for the daemon's connection threads. *)

type level = Off | Counters | Full

(* 0 = Off, 1 = Counters, 2 = Full: one atomic load on the fast path. *)
let state = Atomic.make 0
let meta_flag = Atomic.make false

let set_level = function
  | Off -> Atomic.set state 0
  | Counters -> Atomic.set state 1
  | Full -> Atomic.set state 2

let level () =
  match Atomic.get state with 0 -> Off | 1 -> Counters | _ -> Full

let enabled () = Atomic.get state > 0
let spans_on () = Atomic.get state > 1
let set_meta b = Atomic.set meta_flag b
let meta_on () = Atomic.get meta_flag
let timing_on () = spans_on () || meta_on ()

(* ---------- clocks ---------- *)

type clock = Wall | Logical

let logical = Atomic.make false

(* Two epochs with different lifetimes: [epoch] is the span-timestamp
   origin, restamped by every [reset] so one-shot runs start at t=0;
   [boot] is the process origin and is NEVER reset — a daemon's
   counters, gauges and histograms are monotonic since boot, and
   [uptime_us] dates that epoch in every snapshot. *)
let boot = Unix.gettimeofday ()
let epoch = ref (Unix.gettimeofday ())
let ticks = Atomic.make 0

let set_clock = function
  | Wall -> Atomic.set logical false
  | Logical -> Atomic.set logical true

let clock () = if Atomic.get logical then Logical else Wall

let now_us () =
  if Atomic.get logical then float_of_int (Atomic.fetch_and_add ticks 1)
  else (Unix.gettimeofday () -. !epoch) *. 1e6

let uptime_us () = (Unix.gettimeofday () -. boot) *. 1e6

(* ---------- counters ---------- *)

type counter = { c_name : string; cell : int Atomic.t }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c)

let incr c = if Atomic.get state > 0 then ignore (Atomic.fetch_and_add c.cell 1)
let add c n = if Atomic.get state > 0 then ignore (Atomic.fetch_and_add c.cell n)

let counters () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold
        (fun name c acc ->
          let v = Atomic.get c.cell in
          if v <> 0 then (name, v) :: acc else acc)
        registry [])
  |> List.sort compare

(* ---------- worker tracks ---------- *)

let worker_key = Domain.DLS.new_key (fun () -> 0)
let set_worker w = Domain.DLS.set worker_key w
let current_worker () = Domain.DLS.get worker_key

(* ---------- request propagation ---------- *)

(* The serving daemon stamps every span emitted while handling a request
   with that request's id, so a request's trace can be pulled out of the
   buffer afterwards.  Domain-local like the worker slot: each
   connection thread (and the caller domain of any pool batch it runs)
   carries its own current request. *)
let request_key = Domain.DLS.new_key (fun () -> "")
let current_request () = Domain.DLS.get request_key

let with_request id f =
  let prev = Domain.DLS.get request_key in
  Domain.DLS.set request_key id;
  Fun.protect ~finally:(fun () -> Domain.DLS.set request_key prev) f

(* ---------- spans / events ---------- *)

type 'a timed = { v : 'a; t0 : float; t1 : float; worker : int }

let timed f =
  if timing_on () then begin
    let t0 = now_us () in
    let v = f () in
    let t1 = now_us () in
    { v; t0; t1; worker = current_worker () }
  end
  else { v = f (); t0 = 0.; t1 = 0.; worker = 0 }

type event = {
  e_name : string;
  e_cat : string;
  e_worker : int;
  e_ts : float;
  e_dur : float;
  e_args : (string * string) list;
}

(* One-shot runs buffer every span (the sinks dump the lot at exit); a
   long-lived daemon caps retention with a ring — the newest [cap] spans
   survive, evictions are tallied, and the loss is visible in every
   snapshot instead of the process growing without bound. *)
type span_store =
  | Unbounded of event list ref  (* newest first *)
  | Ring of { buf : event option array; mutable head : int; mutable len : int }

let events_store = ref (Unbounded (ref []))
let events_lock = Mutex.create ()
let dropped = Atomic.make 0

let set_retention cap =
  Mutex.protect events_lock (fun () ->
      match cap with
      | None -> events_store := Unbounded (ref [])
      | Some c ->
        events_store := Ring { buf = Array.make (max 1 c) None; head = 0; len = 0 });
  Atomic.set dropped 0

let retention () =
  Mutex.protect events_lock (fun () ->
      match !events_store with
      | Unbounded _ -> None
      | Ring r -> Some (Array.length r.buf))

let spans_dropped () = Atomic.get dropped

let push e =
  Mutex.protect events_lock (fun () ->
      match !events_store with
      | Unbounded l -> l := e :: !l
      | Ring r ->
        let cap = Array.length r.buf in
        if r.len = cap then begin
          (* full: overwrite the oldest and count the eviction *)
          r.buf.(r.head) <- Some e;
          r.head <- (r.head + 1) mod cap;
          ignore (Atomic.fetch_and_add dropped 1)
        end
        else begin
          r.buf.((r.head + r.len) mod cap) <- Some e;
          r.len <- r.len + 1
        end)

let events_buffered () =
  Mutex.protect events_lock (fun () ->
      match !events_store with
      | Unbounded l -> List.length !l
      | Ring r -> r.len)

let events () =
  Mutex.protect events_lock (fun () ->
      match !events_store with
      | Unbounded l -> List.rev !l
      | Ring r ->
        List.init r.len (fun i ->
            match r.buf.((r.head + i) mod Array.length r.buf) with
            | Some e -> e
            | None -> assert false (* slots below len are always filled *)))

(* The request stamp rides in the span args so the sinks and goldens are
   oblivious: outside a request (the CLI, the bench) nothing changes. *)
let stamp_request args =
  match current_request () with "" -> args | rid -> ("req", rid) :: args

let emit_span ?(cat = "run") ?(args = []) ~name ~worker ~t0 ~t1 () =
  if spans_on () then
    push
      { e_name = name; e_cat = cat; e_worker = worker; e_ts = t0;
        e_dur = (if t1 >= t0 then t1 -. t0 else 0.);
        e_args = stamp_request args }

let emit_instant ?(cat = "run") ?(args = []) name =
  if spans_on () then
    push
      { e_name = name; e_cat = cat; e_worker = current_worker ();
        e_ts = now_us (); e_dur = 0.; e_args = stamp_request args }

let span ?cat ?args name f =
  if spans_on () then begin
    let t0 = now_us () in
    let v = f () in
    let t1 = now_us () in
    emit_span ?cat ?args ~name ~worker:(current_worker ()) ~t0 ~t1 ();
    v
  end
  else f ()

(* ---------- meta-provenance activities ---------- *)

type meta_activity = {
  m_service : string;
  m_time : int;
  m_rule : string;
  m_t0 : float;
  m_t1 : float;
  m_links : (string * string) list;
}

let meta_buf : meta_activity list ref = ref []
let meta_lock = Mutex.create ()

let record_meta a =
  if meta_on () then Mutex.protect meta_lock (fun () -> meta_buf := a :: !meta_buf)

let meta_activities () = List.rev !meta_buf

(* ---------- reset ---------- *)

(* Gauges and histograms live in Metrics, which sits above this module;
   they join [reset] through a registered hook instead of a dependency
   cycle. *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_reset f = reset_hooks := f :: !reset_hooks

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry);
  Mutex.protect events_lock (fun () ->
      match !events_store with
      | Unbounded l -> l := []
      | Ring r ->
        Array.fill r.buf 0 (Array.length r.buf) None;
        r.head <- 0;
        r.len <- 0);
  Atomic.set dropped 0;
  Mutex.protect meta_lock (fun () -> meta_buf := []);
  Atomic.set ticks 0;
  epoch := Unix.gettimeofday ();
  List.iter (fun f -> f ()) !reset_hooks
