(** Render the recorder's buffers: human summary, JSONL event log, and
    Chrome trace-event JSON (Perfetto-loadable, one track per worker). *)

val summary : unit -> string
(** Human-readable snapshot: spans aggregated by name (count, total,
    mean), then every non-zero counter. *)

val jsonl : unit -> string
(** One JSON object per line.  First a [meta] header line recording the
    clock, then a [span] line per event in emission order, then a
    [counter] line per non-zero counter sorted by name. *)

val exposition : unit -> string
(** Prometheus text exposition of {!Metrics.snapshot}: uptime, span
    buffer/drop tallies, every counter ([# TYPE ... counter]), every
    gauge, and every histogram as cumulative [le]-bucket samples (only
    non-empty buckets plus ["+Inf"]) with [_sum]/[_count].  Names are
    the dotted recorder names mangled to [weblab_*]; histograms carry a
    [_us] unit suffix.  This is what [bin/serve --metrics-out] dumps and
    the [metrics-smoke] CI job uploads. *)

val slow_query_line :
  verb:string ->
  session:string ->
  req:string ->
  dur_us:float ->
  ok:bool ->
  detail:(string * int) list ->
  string
(** One slow-query log record (single-line JSON, no trailing newline):
    timestamp ([uptime_us]), verb, session id, request id, duration and
    outcome, plus integer cardinality fields (result rows, delta sizes,
    export bytes) the caller extracted from the response. *)

val chrome_trace : unit -> string
(** Chrome trace-event JSON ({!Telemetry.events} as ["ph":"X"] complete
    events on pid 1, tid = worker slot, plus thread-name metadata so
    Perfetto labels the per-domain tracks). *)
