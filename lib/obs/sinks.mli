(** Render the recorder's buffers: human summary, JSONL event log, and
    Chrome trace-event JSON (Perfetto-loadable, one track per worker). *)

val summary : unit -> string
(** Human-readable snapshot: spans aggregated by name (count, total,
    mean), then every non-zero counter. *)

val jsonl : unit -> string
(** One JSON object per line.  First a [meta] header line recording the
    clock, then a [span] line per event in emission order, then a
    [counter] line per non-zero counter sorted by name. *)

val chrome_trace : unit -> string
(** Chrome trace-event JSON ({!Telemetry.events} as ["ph":"X"] complete
    events on pid 1, tid = worker slot, plus thread-name metadata so
    Perfetto labels the per-domain tracks). *)
