(* Gauges and log-bucketed histograms.  Same discipline as the counter
   registry in Telemetry: find-or-create under a mutex (cold path, call
   sites hold the handle), then every record is gated on one atomic
   level load and touches only atomics — no locks on the hot path. *)

module T = Telemetry

(* ---------- gauges ---------- *)

type gauge = { g_name : string; g_cell : int Atomic.t }

let g_registry : (string, gauge) Hashtbl.t = Hashtbl.create 32
let g_lock = Mutex.create ()

let gauge name =
  Mutex.protect g_lock (fun () ->
      match Hashtbl.find_opt g_registry name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_cell = Atomic.make 0 } in
        Hashtbl.add g_registry name g;
        g)

let set g v = if T.enabled () then Atomic.set g.g_cell v
let add g n = if T.enabled () then ignore (Atomic.fetch_and_add g.g_cell n)
let gauge_value g = Atomic.get g.g_cell

let gauges () =
  Mutex.protect g_lock (fun () ->
      Hashtbl.fold (fun name g acc -> (name, Atomic.get g.g_cell) :: acc)
        g_registry [])
  |> List.sort compare

(* ---------- histogram bucket layout ----------

   Fixed base-2-sub-bucket layout (HdrHistogram's shape, hard-coded at 2
   sub-bucket bits): values in [0, 4) get exact unit buckets; each
   octave [2^e, 2^{e+1}) with e >= 2 is split into 4 equal sub-buckets.
   The index formula is continuous across the seam (v = 4 lands in
   bucket 4) and 248 buckets cover every non-negative int, so two
   histograms always merge bucket by bucket. *)

let sub_bits = 2
let sub_count = 1 lsl sub_bits (* 4 *)
let n_buckets = ((62 - sub_bits) + 1) * sub_count + sub_count (* 248 *)

(* Highest set bit position, by binary descent (v > 0). *)
let msb v =
  let v = ref v and k = ref 0 in
  if !v lsr 32 <> 0 then begin k := !k + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin k := !k + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin k := !k + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin k := !k + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin k := !k + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then k := !k + 1;
  !k

let bucket_of_us v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else
    let e = msb v in
    ((e - sub_bits + 1) * sub_count) + ((v lsr (e - sub_bits)) - sub_count)

let bucket_upper_us i =
  if i < sub_count then i
  else
    let block = (i / sub_count) - 1 and pos = i mod sub_count in
    let e = block + sub_bits in
    (* values in this bucket: [(4+pos) << (e-2), (4+pos+1) << (e-2)) *)
    ((sub_count + pos + 1) lsl (e - sub_bits)) - 1

(* ---------- histograms ---------- *)

type hist = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

let h_registry : (string, hist) Hashtbl.t = Hashtbl.create 32
let h_lock = Mutex.create ()

let hist name =
  Mutex.protect h_lock (fun () ->
      match Hashtbl.find_opt h_registry name with
      | Some h -> h
      | None ->
        let h =
          { h_name = name;
            h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0; h_sum = Atomic.make 0;
            h_max = Atomic.make 0 }
        in
        Hashtbl.add h_registry name h;
        h)

let record h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of_us v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum v);
  let rec bump () =
    let m = Atomic.get h.h_max in
    if v > m && not (Atomic.compare_and_set h.h_max m v) then bump ()
  in
  bump ()

let observe_us h us =
  if T.enabled () then record h (if us <= 0. then 0 else int_of_float us)

let time h f =
  if T.enabled () then begin
    let t0 = Unix.gettimeofday () in
    let finish () =
      record h (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end
  else f ()

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    let n = Atomic.get src.h_buckets.(i) in
    if n <> 0 then ignore (Atomic.fetch_and_add into.h_buckets.(i) n)
  done;
  ignore (Atomic.fetch_and_add into.h_count (Atomic.get src.h_count));
  ignore (Atomic.fetch_and_add into.h_sum (Atomic.get src.h_sum));
  let v = Atomic.get src.h_max in
  let rec bump () =
    let m = Atomic.get into.h_max in
    if v > m && not (Atomic.compare_and_set into.h_max m v) then bump ()
  in
  bump ()

(* ---------- readout ---------- *)

type hist_view = {
  hv_name : string;
  hv_count : int;
  hv_sum_us : int;
  hv_max_us : int;
  hv_p50_us : int;
  hv_p90_us : int;
  hv_p99_us : int;
  hv_buckets : (int * int) list;
}

let view h =
  (* One pass copies the live buckets; quantiles walk the copy so the
     three ranks see the same distribution even while recording runs. *)
  let counts = Array.map Atomic.get h.h_buckets in
  let total = Array.fold_left ( + ) 0 counts in
  let quantile q =
    if total = 0 then 0
    else begin
      let rank = int_of_float (ceil (q *. float_of_int total)) in
      let rank = if rank < 1 then 1 else rank in
      let cum = ref 0 and found = ref 0 in
      (try
         Array.iteri
           (fun i n ->
             cum := !cum + n;
             if !cum >= rank then begin
               found := bucket_upper_us i;
               raise Exit
             end)
           counts
       with Exit -> ());
      !found
    end
  in
  let buckets = ref [] in
  Array.iteri
    (fun i n -> if n <> 0 then buckets := (bucket_upper_us i, n) :: !buckets)
    counts;
  { hv_name = h.h_name; hv_count = Atomic.get h.h_count;
    hv_sum_us = Atomic.get h.h_sum;
    hv_max_us = (if total = 0 then 0 else Atomic.get h.h_max);
    hv_p50_us = quantile 0.50; hv_p90_us = quantile 0.90;
    hv_p99_us = quantile 0.99; hv_buckets = List.rev !buckets }

(* ---------- snapshot ---------- *)

type snapshot = {
  sn_uptime_us : float;
  sn_counters : (string * int) list;
  sn_gauges : (string * int) list;
  sn_hists : hist_view list;
  sn_spans_buffered : int;
  sn_spans_dropped : int;
}

let snapshot () =
  let hists =
    Mutex.protect h_lock (fun () ->
        Hashtbl.fold (fun _ h acc -> h :: acc) h_registry [])
    |> List.map view
    |> List.sort (fun a b -> compare a.hv_name b.hv_name)
  in
  { sn_uptime_us = T.uptime_us (); sn_counters = T.counters ();
    sn_gauges = gauges (); sn_hists = hists;
    sn_spans_buffered = T.events_buffered ();
    sn_spans_dropped = T.spans_dropped () }

let reset () =
  Mutex.protect g_lock (fun () ->
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0) g_registry);
  Mutex.protect h_lock (fun () ->
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun c -> Atomic.set c 0) h.h_buckets;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_max 0)
        h_registry)

(* Telemetry.reset is the one-shot runs' "zero everything" entry point;
   gauges and histograms join it through the hook so callers keep a
   single reset.  (Daemons never reset — see the epoch contract.) *)
let () = T.on_reset reset
