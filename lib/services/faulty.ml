(* Seeded fault injection: wrap any catalog service so that attempts fail
   in controlled, reproducible ways.  This is how the failure subsystem is
   exercised — by tests (strategy agreement under faults), by the fault/*
   bench series (inference over degraded runs) and by
   [bin/main.exe run --fault-rate].

   Faults are decided per {e attempt}: the wrapper keeps a counter, and
   the (seed, service name, attempt number) triple seeds the decision —
   deterministic for a given plan and workflow, yet transient, so a
   retried call can succeed. *)

open Weblab_xml
open Weblab_workflow

type fault =
  | Crash  (* the service raises after doing its work (partial appends!) *)
  | Garbage_xml  (* the service output does not parse *)
  | Mutate_committed  (* the service edits a committed node *)
  | Duplicate_uri  (* the service mints a URI that is already taken *)
  | Stall  (* the service busy-loops before doing its work *)

let fault_name = function
  | Crash -> "crash"
  | Garbage_xml -> "garbage-xml"
  | Mutate_committed -> "mutate-committed"
  | Duplicate_uri -> "duplicate-uri"
  | Stall -> "stall"

let all_faults = [ Crash; Garbage_xml; Mutate_committed; Duplicate_uri; Stall ]

type plan = {
  rate : float;
  seed : int;
  faults : fault array;
  stall_s : float;
}

let plan ?(faults = all_faults) ?(stall_s = 0.02) ~rate ~seed () =
  if faults = [] then invalid_arg "Faulty.plan: empty fault list";
  { rate; seed; faults = Array.of_list faults; stall_s }

let decide plan name attempt =
  let rng = Random.State.make [| plan.seed; Hashtbl.hash name; attempt |] in
  if Random.State.float rng 1.0 < plan.rate then
    Some plan.faults.(Random.State.int rng (Array.length plan.faults))
  else None

(* CPU-bound stall, observable by the orchestrator's Sys.time budget. *)
let busy_wait s =
  let t0 = Sys.time () in
  while Sys.time () -. t0 < s do
    ignore (Sys.opaque_identity 0)
  done

let existing_uri doc =
  match Tree.resources doc with
  | n :: _ -> Tree.uri doc n
  | [] -> None

let inject_duplicate doc =
  if Tree.has_root doc then
    match existing_uri doc with
    | Some u ->
      let n = Tree.new_element doc ~parent:(Tree.root doc) "Injected" in
      Tree.set_uri doc n u
    | None -> ()

(* In-process faults work directly against the shared arena; the
   orchestrator's fingerprint/commit checks are what catches them.
   Garbage XML has no in-process analog (there is no serialized output to
   corrupt), so it surfaces as the same exception the blackbox path would
   produce for unparsable output. *)
let apply_inproc fault ~stall_s name f doc =
  match fault with
  | None -> f doc
  | Some Crash ->
    f doc;
    failwith (Printf.sprintf "injected crash in %s" name)
  | Some Stall ->
    busy_wait stall_s;
    f doc
  | Some Mutate_committed ->
    if Tree.has_root doc then
      Tree.set_attr doc (Tree.root doc) "injected-corruption" "1";
    f doc
  | Some Duplicate_uri ->
    f doc;
    inject_duplicate doc
  | Some Garbage_xml ->
    raise
      (Orchestrator.Append_violation
         (Printf.sprintf "injected garbage XML output from %s" name))

(* Black-box faults corrupt the serialized output; the Recorder's
   parse/diff pipeline is what catches them. *)
let apply_blackbox fault ~stall_s name f input =
  match fault with
  | None -> f input
  | Some Crash ->
    let (_ : string) = f input in
    failwith (Printf.sprintf "injected crash in %s" name)
  | Some Stall ->
    busy_wait stall_s;
    f input
  | Some Garbage_xml -> "<injected-garbage"
  | Some Mutate_committed ->
    let d = Xml_parser.parse (f input) in
    if Tree.has_root d then
      Tree.set_attr d (Tree.root d) "injected-corruption" "1";
    Printer.to_string d
  | Some Duplicate_uri ->
    let d = Xml_parser.parse (f input) in
    inject_duplicate d;
    Printer.to_string d

(* Streaming black-box faults corrupt the parsed next state — or the
   parse itself: garbage XML raises inside the thunk, exactly where a
   malformed streamed body would. *)
let apply_blackbox_doc fault ~stall_s name f () =
  match fault with
  | None -> f ()
  | Some Crash ->
    let (_ : Tree.t) = f () in
    failwith (Printf.sprintf "injected crash in %s" name)
  | Some Stall ->
    busy_wait stall_s;
    f ()
  | Some Garbage_xml -> Xml_parser.parse "<injected-garbage"
  | Some Mutate_committed ->
    let d = f () in
    if Tree.has_root d then
      Tree.set_attr d (Tree.root d) "injected-corruption" "1";
    d
  | Some Duplicate_uri ->
    let d = f () in
    inject_duplicate d;
    d

(* The wrapped service keeps its name: rulebooks key on service names, so
   provenance rules keep applying to the surviving calls. *)
let wrap_with decide_fn ~stall_s (svc : Service.t) =
  let name = Service.name svc in
  let counter = ref 0 in
  let impl =
    match svc.Service.impl with
    | Service.Inproc f ->
      Service.Inproc
        (fun doc ->
          incr counter;
          apply_inproc (decide_fn name !counter) ~stall_s name f doc)
    | Service.Blackbox f ->
      Service.Blackbox
        (fun input ->
          incr counter;
          apply_blackbox (decide_fn name !counter) ~stall_s name f input)
    | Service.Blackbox_doc f ->
      Service.Blackbox_doc
        (fun () ->
          incr counter;
          apply_blackbox_doc (decide_fn name !counter) ~stall_s name f ())
  in
  Service.make ~name
    ~description:(Service.description svc ^ " [fault-injected]")
    impl

let wrap plan svc = wrap_with (decide plan) ~stall_s:plan.stall_s svc

let wrap_all plan svcs = List.map (wrap plan) svcs

let with_fault ?(stall_s = 0.02) fault svc =
  wrap_with (fun _ _ -> Some fault) ~stall_s svc

let failing_first ?(stall_s = 0.02) k fault svc =
  wrap_with (fun _ attempt -> if attempt <= k then Some fault else None) ~stall_s svc
