(** Seeded fault injection for workflow services.

    Wraps any catalog service so that attempts fail in controlled,
    reproducible ways — the test and bench harness for the orchestrator's
    failure subsystem (supervision, rollback, retry, outcome-labelled
    traces).

    Faults are decided {e per attempt}: the wrapper counts the attempts
    made against it, and the (seed, service name, attempt) triple seeds
    the decision.  A given plan over a given workflow is deterministic,
    yet faults are transient — a retried call rolls a fresh decision and
    can succeed. *)

open Weblab_workflow

type fault =
  | Crash
      (** the service raises {e after} doing its work, leaving partial
          appends for the orchestrator to roll back *)
  | Garbage_xml  (** the service output does not parse *)
  | Mutate_committed  (** the service edits a committed node *)
  | Duplicate_uri  (** the service mints a URI that is already taken *)
  | Stall
      (** the service busy-loops before doing its work — tripped by a
          [max_call_s] budget, harmless otherwise *)

val fault_name : fault -> string

val all_faults : fault list

type plan

val plan :
  ?faults:fault list -> ?stall_s:float -> rate:float -> seed:int -> unit -> plan
(** [plan ~rate ~seed ()] injects one of [faults] (default: all five)
    with probability [rate] on each attempt.  [stall_s] is the busy-wait
    of {!Stall} (default 0.02 CPU-seconds).
    @raise Invalid_argument on an empty fault list. *)

val wrap : plan -> Service.t -> Service.t
(** The wrapped service keeps its name (rulebooks key on service names,
    so provenance rules keep applying to surviving calls). *)

val wrap_all : plan -> Service.t list -> Service.t list

val with_fault : ?stall_s:float -> fault -> Service.t -> Service.t
(** Inject the given fault on {e every} attempt — a call supervised with
    finitely many retries always fails.  For deterministic tests. *)

val failing_first : ?stall_s:float -> int -> fault -> Service.t -> Service.t
(** [failing_first k fault svc] fails the first [k] attempts with [fault]
    and then behaves normally — a call supervised with [retries >= k]
    commits as [Retried k].  For deterministic tests. *)
