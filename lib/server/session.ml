open Weblab_xml
open Weblab_workflow
open Weblab_prov
module Rdf = Weblab_rdf
module M = Weblab_obs.Metrics

(* Latency distributions per session-level operation, process-wide: a
   daemon hosting many sessions folds them all into one family per verb,
   which is what the scrape wants (per-session splits would explode
   cardinality).  Commit covers the orchestrator step plus WAL sync;
   the query histograms cover lazy derivation (reachability build,
   store export) on a cold snapshot and plain lookup on a warm one. *)
let h_commit = M.hist "session.commit"
let h_why = M.hist "session.query.why"
let h_impact = M.hist "session.query.impact"
let h_sparql = M.hist "session.query.sparql"
let h_turtle = M.hist "session.query.turtle"

(* Point-in-time sizes of the most recently committed session, sampled
   at commit/sync boundaries (last-writer-wins across sessions). *)
let g_doc_nodes = M.gauge "serve.session.doc_nodes"
let g_store_triples = M.gauge "serve.session.store_triples"

type budgets = {
  policy : Orchestrator.policy;
  max_commits : int option;
}

let default_budgets =
  { policy = { Orchestrator.default_policy with on_failure = `Skip };
    max_commits = None }

(* A backend instance, existentially packed: the state type is hidden
   behind the three closures the session drives. *)
type backend_inst = {
  bi_observe :
    call:Trace.call ->
    before:Doc_state.t ->
    after:Doc_state.t ->
    delta:Orchestrator.delta ->
    unit;
  bi_snapshot : doc:Tree.t -> trace:Trace.t -> Prov_graph.t;
  bi_finalize : doc:Tree.t -> trace:Trace.t -> Prov_graph.t;
}

let instantiate (module B : Strategy_sig.STRATEGY_BACKEND) ~jobs ~doc rb =
  let st = B.init ~jobs ~doc rb in
  { bi_observe =
      (fun ~call ~before ~after ~delta ->
        B.observe st ~call ~before ~after ~delta);
    bi_snapshot = (fun ~doc ~trace -> B.snapshot st ~doc ~trace);
    bi_finalize = (fun ~doc ~trace -> B.finalize st ~doc ~trace) }

(* Query-side state derived from one snapshot; dropped on every commit.
   Reachability and the RDF store are built lazily — a session that only
   runs [why] never pays for the triple store and vice versa. *)
type snap = {
  s_graph : Prov_graph.t;
  mutable s_reach : Reachability.t option;
  mutable s_store : Rdf.Triple_store.t option;
}

(* WAL state of a persisted live session.  [logged] is the store whose
   triple sequence the log currently reconstructs; each sync diffs the
   fresh snapshot store against it and appends the suffix when it is a
   pure extension, or logs a reset + full dump when history was rewritten
   (URI promotion reorders triples, so monotonicity is checked, not
   assumed). *)
type persist = {
  pw : Rdf.Wal.writer;
  p_path : string;
  mutable logged : Rdf.Triple_store.t;
}

type live = {
  orch : Orchestrator.session;
  inst : backend_inst;
  budgets : budgets;
  persist : persist option;
}

(* A restored session serves queries straight off the replayed triple
   store; there is no orchestrator or backend state to resume, so
   commits are refused ([Restored_read_only]). *)
type restored = {
  r_store : Rdf.Triple_store.t;
  r_next_time : int;
}

type mode =
  | Live of live
  | Restored of restored

type t = {
  sid : string;
  bname : string;
  mode : mode;
  lock : Mutex.t;
  mutable commits : int;  (* committed calls *)
  mutable failed : int;  (* burned timestamps *)
  mutable snap : snap option;
  mutable closed : bool;
}

let id t = t.sid
let backend_name t = t.bname
let is_closed t = t.closed
let is_restored t = match t.mode with Restored _ -> true | Live _ -> false

let wal_path t =
  match t.mode with
  | Live { persist = Some p; _ } -> Some p.p_path
  | _ -> None

let with_lock t f = Mutex.protect t.lock f

(* ----- queries (declared early: the WAL sync reuses [store]) ----- *)

let current_snap t =
  match t.snap with
  | Some s -> s
  | None ->
    let g =
      match t.mode with
      | Live l ->
        l.inst.bi_snapshot ~doc:(Orchestrator.session_doc l.orch)
          ~trace:(Orchestrator.session_trace l.orch)
      | Restored r -> Prov_export.of_store r.r_store
    in
    let s_store =
      match t.mode with Restored r -> Some r.r_store | Live _ -> None
    in
    let s = { s_graph = g; s_reach = None; s_store } in
    t.snap <- Some s;
    s

let graph t = (current_snap t).s_graph

let reach t =
  let s = current_snap t in
  match s.s_reach with
  | Some r -> r
  | None ->
    let r = Reachability.build s.s_graph in
    s.s_reach <- Some r;
    r

let store t =
  let s = current_snap t in
  match s.s_store with
  | Some st -> st
  | None ->
    let st =
      match t.mode with
      | Live l ->
        Prov_export.to_store ~trace:(Orchestrator.session_trace l.orch)
          s.s_graph
      | Restored r -> r.r_store
    in
    s.s_store <- Some st;
    st

let why t uri = M.time h_why (fun () -> Reachability.ancestors (reach t) uri)

let impact t uri =
  M.time h_impact (fun () -> Reachability.descendants (reach t) uri)

let sparql t q = M.time h_sparql (fun () -> Rdf.Sparql.run (store t) q)

let next_time t =
  match t.mode with
  | Live l -> Orchestrator.next_time l.orch
  | Restored r -> r.r_next_time

let turtle t =
  M.time h_turtle (fun () ->
      match t.mode with
      | Live l ->
        Prov_export.to_turtle ~trace:(Orchestrator.session_trace l.orch)
          (graph t)
      | Restored r ->
        (* [Prov_export.to_turtle] is exactly [Turtle.to_turtle] of the
           export store, and the WAL logged that store's triple sequence
           verbatim — so a restored session's Turtle is byte-identical to
           what the live session served (persist-smoke pins this). *)
        Rdf.Turtle.to_turtle r.r_store)

(* ----- WAL sync ----- *)

(* Persist the current export store.  The snapshot store is rebuilt from
   scratch on every commit, so the delta is recovered by comparing
   against the [logged] replica: a prefix extension appends only the
   suffix; anything else (promotion rewrote history) resets and dumps.
   Metadata rides along so a restore can report backend/commit counts. *)
let sync_wal t l =
  match l.persist with
  | None -> ()
  | Some p ->
    let cur = store t in
    if Rdf.Triple_store.prefix_of p.logged cur then
      List.iter
        (fun tr -> Rdf.Wal.log_triple p.pw tr)
        (Rdf.Triple_store.triples_from cur (Rdf.Triple_store.size p.logged))
    else begin
      Rdf.Wal.log_reset p.pw;
      Rdf.Triple_store.iter cur (fun tr -> Rdf.Wal.log_triple p.pw tr)
    end;
    Rdf.Wal.log_meta p.pw ~key:"backend" ~value:t.bname;
    Rdf.Wal.log_meta p.pw ~key:"commits" ~value:(string_of_int t.commits);
    Rdf.Wal.log_meta p.pw ~key:"failed" ~value:(string_of_int t.failed);
    Rdf.Wal.log_meta p.pw ~key:"next_time"
      ~value:(string_of_int (Orchestrator.next_time l.orch));
    Rdf.Wal.commit p.pw ~store_size:(Rdf.Triple_store.size cur);
    (* The export store was just built anyway (it IS the thing being
       logged), so sampling its size here is free — the gauge is never a
       reason to materialize a store. *)
    M.set g_store_triples (Rdf.Triple_store.size cur);
    p.logged <- cur

(* ----- constructors ----- *)

let create ~id ~backend ?(jobs = 1) ?(budgets = default_budgets) ?wal_path ~doc
    rb =
  let orch = Orchestrator.start ~policy:budgets.policy doc in
  let inst = instantiate (Strategy.backend_of backend) ~jobs ~doc rb in
  let persist =
    Option.map
      (fun path ->
        { pw = Rdf.Wal.open_writer path;
          p_path = path;
          logged = Rdf.Triple_store.create () })
      wal_path
  in
  let l = { orch; inst; budgets; persist } in
  let t =
    { sid = id; bname = Strategy.kind_to_string backend; mode = Live l;
      lock = Mutex.create (); commits = 0; failed = 0; snap = None;
      closed = false }
  in
  (* Make the empty session durable immediately: a crash right after
     [open] restores an open (if empty) session, not a missing one. *)
  sync_wal t l;
  t

let restore ~id ~wal_path =
  let st, rp = Rdf.Wal.replay wal_path in
  let meta k = List.assoc_opt k rp.Rdf.Wal.rp_meta in
  let int_meta k =
    match meta k with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 0)
    | None -> 0
  in
  let bname =
    match meta "backend" with Some b -> b | None -> "restored"
  in
  ( { sid = id; bname;
      mode = Restored { r_store = st; r_next_time = int_meta "next_time" };
      lock = Mutex.create (); commits = int_meta "commits";
      failed = int_meta "failed"; snap = None; closed = false },
    rp )

(* A client-supplied next document state, committed through the
   streaming blackbox route: the body is parsed straight into a private
   arena by [Ingest] inside the service thunk — the daemon never
   serializes the live document as a pseudo-input, and the request body
   is materialized exactly once.  Malformed XML raises inside the thunk
   and fails the call (never the session). *)
let client_xml_service ?(name = "ClientXml") xml =
  Service.blackbox_doc ~name ~description:"client-supplied document state"
    (fun () -> fst (Ingest.of_string xml))

(* ----- commit ----- *)

type commit_ok = {
  time : int;
  attempts : int;
  new_nodes : int;
  promoted : int;
}

type commit_error =
  | Budget_exhausted of string
  | Call_failed of { reason : string; attempts : int; time : int }
  | Session_closed
  | Restored_read_only

let commit t svc =
  if t.closed then Error Session_closed
  else
    match t.mode with
    | Restored _ -> Error Restored_read_only
    | Live l -> (
      let attempted = t.commits + t.failed in
      match l.budgets.max_commits with
      | Some m when attempted >= m ->
        Error
          (Budget_exhausted
             (Printf.sprintf "session commit budget exhausted (%d of %d used)"
                attempted m))
      | _ ->
        M.time h_commit (fun () ->
            let time = Orchestrator.next_time l.orch in
            let on_step call before after delta =
              l.inst.bi_observe ~call ~before ~after ~delta
            in
            let sample_doc () =
              if Weblab_obs.Telemetry.enabled () then
                M.set g_doc_nodes (Tree.size (Orchestrator.session_doc l.orch))
            in
            match Orchestrator.step ~on_step l.orch svc with
            | Orchestrator.Committed { delta; attempts } ->
              t.commits <- t.commits + 1;
              t.snap <- None;
              sync_wal t l;
              sample_doc ();
              Ok
                { time; attempts;
                  new_nodes = List.length delta.Orchestrator.new_nodes;
                  promoted = List.length delta.Orchestrator.promoted }
            | Orchestrator.Step_failed { reason; attempts; _ } ->
              (* The orchestrator already rolled the arena back and burned
                 the timestamp; nothing the backend observed, nothing to
                 drop.  The failed call still shows up in the exported
                 graph (as an invalidated activity), so the WAL syncs here
                 too. *)
              t.failed <- t.failed + 1;
              t.snap <- None;
              sync_wal t l;
              sample_doc ();
              Error (Call_failed { reason; attempts; time })))

(* ----- stats ----- *)

type stats = {
  st_id : string;
  st_backend : string;
  st_next_time : int;
  st_commits : int;
  st_failed : int;
  st_doc_nodes : int;
  st_graph_size : int;
  st_links : int;
  st_closed : bool;
  st_restored : bool;
  st_store : Rdf.Triple_store.store_stats;
}

let stats t =
  let g = graph t in
  { st_id = t.sid; st_backend = t.bname; st_next_time = next_time t;
    st_commits = t.commits; st_failed = t.failed;
    st_doc_nodes =
      (match t.mode with
      | Live l -> Tree.size (Orchestrator.session_doc l.orch)
      | Restored _ -> 0);
    st_graph_size = List.length (Prov_graph.labeled_resources g);
    st_links = List.length (Prov_graph.links g); st_closed = t.closed;
    st_restored = is_restored t; st_store = Rdf.Triple_store.stats (store t) }

(* ----- close ----- *)

let close t =
  if t.closed then graph t
  else
    match t.mode with
    | Restored r ->
      t.closed <- true;
      (* Keep the WAL file: the session can be restored again. *)
      ignore r;
      graph t
    | Live l ->
      let g =
        l.inst.bi_finalize ~doc:(Orchestrator.session_doc l.orch)
          ~trace:(Orchestrator.session_trace l.orch)
      in
      (* Pin the final graph: [commit] is refused from here on, so this
         snapshot never goes stale and queries keep answering over it. *)
      t.snap <- Some { s_graph = g; s_reach = None; s_store = None };
      t.closed <- true;
      (match l.persist with
      | None -> ()
      | Some p ->
        (* The finalize graph may differ from the last snapshot; sync it,
           then compact the log to one reset + dump so replay cost is
           proportional to live size. *)
        sync_wal t l;
        Rdf.Wal.compact_to p.p_path
          ~meta:
            [ ("backend", t.bname);
              ("commits", string_of_int t.commits);
              ("failed", string_of_int t.failed);
              ("next_time", string_of_int (Orchestrator.next_time l.orch)) ]
          p.logged;
        Rdf.Wal.close_writer p.pw);
      g
