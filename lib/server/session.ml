open Weblab_xml
open Weblab_workflow
open Weblab_prov

type budgets = {
  policy : Orchestrator.policy;
  max_commits : int option;
}

let default_budgets =
  { policy = { Orchestrator.default_policy with on_failure = `Skip };
    max_commits = None }

(* A backend instance, existentially packed: the state type is hidden
   behind the three closures the session drives. *)
type backend_inst = {
  bi_observe :
    call:Trace.call ->
    before:Doc_state.t ->
    after:Doc_state.t ->
    delta:Orchestrator.delta ->
    unit;
  bi_snapshot : doc:Tree.t -> trace:Trace.t -> Prov_graph.t;
  bi_finalize : doc:Tree.t -> trace:Trace.t -> Prov_graph.t;
}

let instantiate (module B : Strategy_sig.STRATEGY_BACKEND) ~jobs ~doc rb =
  let st = B.init ~jobs ~doc rb in
  { bi_observe =
      (fun ~call ~before ~after ~delta ->
        B.observe st ~call ~before ~after ~delta);
    bi_snapshot = (fun ~doc ~trace -> B.snapshot st ~doc ~trace);
    bi_finalize = (fun ~doc ~trace -> B.finalize st ~doc ~trace) }

(* Query-side state derived from one snapshot; dropped on every commit.
   Reachability and the RDF store are built lazily — a session that only
   runs [why] never pays for the triple store and vice versa. *)
type snap = {
  s_graph : Prov_graph.t;
  mutable s_reach : Reachability.t option;
  mutable s_store : Weblab_rdf.Triple_store.t option;
}

type t = {
  sid : string;
  bname : string;
  orch : Orchestrator.session;
  inst : backend_inst;
  budgets : budgets;
  lock : Mutex.t;
  mutable commits : int;  (* committed calls *)
  mutable failed : int;  (* burned timestamps *)
  mutable snap : snap option;
  mutable closed : bool;
}

let id t = t.sid
let backend_name t = t.bname
let is_closed t = t.closed

let create ~id ~backend ?(jobs = 1) ?(budgets = default_budgets) ~doc rb =
  let orch = Orchestrator.start ~policy:budgets.policy doc in
  let inst = instantiate (Strategy.backend_of backend) ~jobs ~doc rb in
  { sid = id; bname = Strategy.kind_to_string backend; orch; inst; budgets;
    lock = Mutex.create (); commits = 0; failed = 0; snap = None;
    closed = false }

let with_lock t f = Mutex.protect t.lock f

(* A client-supplied next document state, committed through the
   streaming blackbox route: the body is parsed straight into a private
   arena by [Ingest] inside the service thunk — the daemon never
   serializes the live document as a pseudo-input, and the request body
   is materialized exactly once.  Malformed XML raises inside the thunk
   and fails the call (never the session). *)
let client_xml_service ?(name = "ClientXml") xml =
  Service.blackbox_doc ~name ~description:"client-supplied document state"
    (fun () -> fst (Ingest.of_string xml))

(* ----- commit ----- *)

type commit_ok = {
  time : int;
  attempts : int;
  new_nodes : int;
  promoted : int;
}

type commit_error =
  | Budget_exhausted of string
  | Call_failed of { reason : string; attempts : int; time : int }
  | Session_closed

let commit t svc =
  if t.closed then Error Session_closed
  else
    let attempted = t.commits + t.failed in
    match t.budgets.max_commits with
    | Some m when attempted >= m ->
      Error
        (Budget_exhausted
           (Printf.sprintf "session commit budget exhausted (%d of %d used)"
              attempted m))
    | _ ->
      let time = Orchestrator.next_time t.orch in
      let on_step call before after delta =
        t.inst.bi_observe ~call ~before ~after ~delta
      in
      (match Orchestrator.step ~on_step t.orch svc with
      | Orchestrator.Committed { delta; attempts } ->
        t.commits <- t.commits + 1;
        t.snap <- None;
        Ok
          { time; attempts;
            new_nodes = List.length delta.Orchestrator.new_nodes;
            promoted = List.length delta.Orchestrator.promoted }
      | Orchestrator.Step_failed { reason; attempts; _ } ->
        (* The orchestrator already rolled the arena back and burned the
           timestamp; nothing the backend observed, nothing to drop. *)
        t.failed <- t.failed + 1;
        Error (Call_failed { reason; attempts; time }))

(* ----- queries ----- *)

let current_snap t =
  match t.snap with
  | Some s -> s
  | None ->
    let g =
      t.inst.bi_snapshot ~doc:(Orchestrator.session_doc t.orch)
        ~trace:(Orchestrator.session_trace t.orch)
    in
    let s = { s_graph = g; s_reach = None; s_store = None } in
    t.snap <- Some s;
    s

let graph t = (current_snap t).s_graph

let reach t =
  let s = current_snap t in
  match s.s_reach with
  | Some r -> r
  | None ->
    let r = Reachability.build s.s_graph in
    s.s_reach <- Some r;
    r

let store t =
  let s = current_snap t in
  match s.s_store with
  | Some st -> st
  | None ->
    let st =
      Prov_export.to_store ~trace:(Orchestrator.session_trace t.orch) s.s_graph
    in
    s.s_store <- Some st;
    st

let why t uri = Reachability.ancestors (reach t) uri
let impact t uri = Reachability.descendants (reach t) uri
let sparql t q = Weblab_rdf.Sparql.run (store t) q

let turtle t =
  Prov_export.to_turtle ~trace:(Orchestrator.session_trace t.orch) (graph t)

(* ----- stats ----- *)

type stats = {
  st_id : string;
  st_backend : string;
  st_next_time : int;
  st_commits : int;
  st_failed : int;
  st_doc_nodes : int;
  st_graph_size : int;
  st_links : int;
  st_closed : bool;
}

let stats t =
  let g = graph t in
  { st_id = t.sid; st_backend = t.bname;
    st_next_time = Orchestrator.next_time t.orch; st_commits = t.commits;
    st_failed = t.failed;
    st_doc_nodes = Tree.size (Orchestrator.session_doc t.orch);
    st_graph_size = List.length (Prov_graph.labeled_resources g);
    st_links = List.length (Prov_graph.links g); st_closed = t.closed }

(* ----- close ----- *)

let close t =
  if t.closed then graph t
  else begin
    let g =
      t.inst.bi_finalize ~doc:(Orchestrator.session_doc t.orch)
        ~trace:(Orchestrator.session_trace t.orch)
    in
    (* Pin the final graph: [commit] is refused from here on, so this
       snapshot never goes stale and queries keep answering over it. *)
    t.snap <- Some { s_graph = g; s_reach = None; s_store = None };
    t.closed <- true;
    g
  end
