(** The TCP front end: a listener plus one thread per connection, each
    running {!Protocol.handle_line} over newline-delimited JSON.

    Threads (not domains) carry connections: a verb's work is dominated
    by inference, which each session parallelizes through its own backend
    {!Weblab_prov.Pool} when asked to — the connection layer only needs
    enough concurrency to overlap blocked reads, which systhreads give
    without multiplying domains by connection count. *)

type t

val start : ?host:string -> ?port:int -> Protocol.ctx -> t
(** Bind, listen and spawn the accept loop.  [port 0] (the default picks
    8321) binds an ephemeral port — read it back with {!port}; that is
    how the in-process bench and the tests avoid fixed ports.  SIGPIPE is
    ignored process-wide (a client vanishing mid-response must not kill
    the daemon).
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actual bound port. *)

val wait : t -> unit
(** Block until the server is stopped (joins the accept loop). *)

val stop : t -> unit
(** Close the listener, shut down live connections, join every thread.
    Idempotent. *)
