(** One live serving session: an orchestrator execution over a private
    document plus a strategy backend observing it, queryable between
    appends.

    A session is the daemon-side reification of one workflow run.  Verbs
    are serialized per session with {!with_lock} (connections may share a
    session id); the document, trace and backend state are private to the
    session, so sessions never contend beyond the process-wide caches
    (which carry their own locks).

    Failure containment: a commit whose every supervised attempt fails is
    rolled back by the orchestrator (arena bit-identical to the previous
    commit) and reported as [Error] — the session stays open and
    queryable.  Only {!close} or an explicit budget exhaustion ends it.

    Persistence: with a [wal_path], every commit appends the session's
    exported triple delta to a write-ahead log ({!Weblab_rdf.Wal}),
    fsynced per commit.  After a daemon restart, {!restore} replays the
    log into a {e read-only} session that serves [turtle]/[sparql]/
    [why]/[impact] over the recovered store — the Turtle export is
    byte-identical to what the live session last served — while
    [commit] returns [Restored_read_only]. *)

open Weblab_xml
open Weblab_workflow
open Weblab_prov

type budgets = {
  policy : Orchestrator.policy;
      (** per-call supervision: retries, backoff, output-size and time
          budgets.  [on_failure] is forced to [`Skip] semantics — the
          daemon decides per call; a poisoned commit must not tear the
          session down. *)
  max_commits : int option;
      (** per-session ceiling on attempted commits (committed + burned);
          reaching it rejects further [commit]s but leaves queries up *)
}

val default_budgets : budgets

type t

val id : t -> string

val backend_name : t -> string

val create :
  id:string ->
  backend:Strategy.kind ->
  ?jobs:int ->
  ?budgets:budgets ->
  ?wal_path:string ->
  doc:Tree.t ->
  Strategy.rulebook ->
  t
(** Runs the orchestration prologue ({!Orchestrator.start}) and the
    backend's [init] on [doc].  [jobs] defaults to 1 — a daemon hosts
    many sessions, so inference parallelism is opt-in per session.
    [wal_path] turns on persistence: the empty session is made durable
    immediately and every commit appends its triple delta.
    @raise Orchestrator.Duplicate_uri if [doc] repeats a URI. *)

val restore : id:string -> wal_path:string -> t * Weblab_rdf.Wal.replay_stats
(** Rebuild a session from its write-ahead log.  The result is
    read-only: queries answer over the replayed store ([turtle] is
    byte-identical to the live session's last synced export), [commit]
    returns [Restored_read_only].  Backend name and commit counters are
    recovered from WAL metadata. *)

val is_restored : t -> bool

val wal_path : t -> string option
(** The live session's WAL path, if persisted. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Per-session mutual exclusion — every protocol verb runs under it. *)

val client_xml_service : ?name:string -> string -> Service.t
(** A commit payload carrying the full next document state as XML text,
    wrapped as a streaming {!Service.blackbox_doc}: the text is parsed
    straight into a private arena through {!Weblab_xml.Ingest}, so the
    daemon neither serializes the live document as a pseudo-input nor
    materializes the body twice.  [name] defaults to ["ClientXml"].
    Malformed XML fails the commit, not the session. *)

(** {1 Verbs} *)

type commit_ok = {
  time : int;  (** the timestamp the call committed at *)
  attempts : int;
  new_nodes : int;
  promoted : int;
}

type commit_error =
  | Budget_exhausted of string  (** session [max_commits] reached *)
  | Call_failed of { reason : string; attempts : int; time : int }
      (** every supervised attempt failed; the arena was rolled back and
          timestamp [time] burned.  The session remains usable. *)
  | Session_closed
  | Restored_read_only
      (** the session was recovered from a WAL; it has no orchestrator
          state to append to *)

val commit : t -> Service.t -> (commit_ok, commit_error) result
(** Run one supervised service call at the session's next timestamp; on
    commit the backend observes the delta, cached query state is
    invalidated and, for persisted sessions, the WAL is synced (fsync
    per commit).  Failed calls sync too — they appear in the exported
    graph as invalidated activities. *)

val graph : t -> Prov_graph.t
(** The provenance graph of the execution so far (backend [snapshot]),
    cached until the next committed call.  For a restored session, the
    graph recovered from the replayed store
    ({!Weblab_prov.Prov_export.of_store}). *)

val why : t -> string -> string list
(** Transitive ancestors of a URI in the live graph (sorted). *)

val impact : t -> string -> string list
(** Transitive descendants (sorted). *)

val sparql : t -> string -> Weblab_relalg.Table.t
(** A SELECT query against the PROV export of the live graph.
    @raise Weblab_rdf.Sparql.Error on malformed queries. *)

val turtle : t -> string
(** Turtle export of the live graph (with the trace's failed calls).
    For a restored session, rendered straight off the replayed store —
    byte-identical to the live session's last synced export. *)

type stats = {
  st_id : string;
  st_backend : string;
  st_next_time : int;
  st_commits : int;  (** committed calls *)
  st_failed : int;  (** burned timestamps *)
  st_doc_nodes : int;  (** 0 for restored sessions (no document) *)
  st_graph_size : int;  (** labeled resources in the current graph *)
  st_links : int;
  st_closed : bool;
  st_restored : bool;
  st_store : Weblab_rdf.Triple_store.store_stats;
      (** columnar-store census of the current export store *)
}

val stats : t -> stats

val close : t -> Prov_graph.t
(** Finalize the backend (its pool shuts down) and return the final
    graph.  Idempotent; further [commit]s return [Session_closed], further
    queries keep answering over the final graph.  A persisted session
    syncs its final state and compacts the WAL to one snapshot commit;
    the file is kept for later {!restore}. *)

val is_closed : t -> bool
