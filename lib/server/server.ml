module T = Weblab_obs.Telemetry
module M = Weblab_obs.Metrics

let c_conns = T.counter "serve.connections"
let g_conns_active = M.gauge "serve.connections.active"

let log_src = Logs.Src.create "weblab.serve" ~doc:"provenance serving daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type conn = { c_fd : Unix.file_descr; mutable c_thread : Thread.t option }

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  accept_thread : Thread.t;
  conns : conn list ref;
  conns_lock : Mutex.t;
  stopping : bool Atomic.t;
}

let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* One connection: read request lines until EOF, answer each on its own
   line.  Any socket-level error just ends the connection — protocol and
   session errors were already turned into [ok:false] responses inside
   {!Protocol.handle_line}. *)
let serve_conn ctx fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  try
    let rec loop () =
      let line = input_line ic in
      if String.length (String.trim line) > 0 then begin
        output_string oc (Protocol.handle_line ctx line);
        output_char oc '\n';
        flush oc
      end;
      loop ()
    in
    loop ()
  with
  | End_of_file -> ()
  | Sys_error _ -> ()
  | Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ?(port = 8321) ctx =
  ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let conns = ref [] in
  let conns_lock = Mutex.create () in
  let stopping = Atomic.make false in
  let rec accept_loop () =
    match Unix.accept listen_fd with
    | fd, _peer ->
      if Atomic.get stopping then
        (* the wake-up connection from [stop]: drop it and exit *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        T.incr c_conns;
        (* Register before spawning, and let the connection deregister
           itself and close its fd under the registry lock: [stop] only
           shuts down fds still registered (inside the same lock), so it
           can never touch a recycled descriptor. *)
        let c = { c_fd = fd; c_thread = None } in
        Mutex.protect conns_lock (fun () -> conns := c :: !conns);
        M.add g_conns_active 1;
        let th =
          Thread.create
            (fun () ->
              serve_conn ctx fd;
              Mutex.protect conns_lock (fun () ->
                  conns := List.filter (fun c' -> c' != c) !conns;
                  try Unix.close fd with Unix.Unix_error _ -> ());
              M.add g_conns_active (-1))
            ()
        in
        Mutex.protect conns_lock (fun () -> c.c_thread <- Some th);
        accept_loop ()
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      (* the listener was closed under us: shutdown *)
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  Log.info (fun m -> m "listening on %s:%d" host bound_port);
  let accept_thread = Thread.create accept_loop () in
  { listen_fd; bound_port; accept_thread; conns; conns_lock; stopping }

let port t = t.bound_port

let wait t = Thread.join t.accept_thread

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Closing the listener does NOT wake a thread blocked in accept(2)
       on Linux — poke it with a throwaway connection instead, and only
       close the fd once the loop has exited. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.bound_port))
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Wake blocked reads while the entries are provably live (inside the
       lock), then join on the snapshot. *)
    let snapshot =
      Mutex.protect t.conns_lock (fun () ->
          List.iter
            (fun c ->
              try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ())
            !(t.conns);
          !(t.conns))
    in
    List.iter
      (fun c -> match c.c_thread with Some th -> Thread.join th | None -> ())
      snapshot
  end
