(* Minimal JSON for the NDJSON serving protocol.  No dependency ships a
   JSON codec in this container, and the protocol needs only the data
   model, so the parser is a small recursive descent over a string with
   an explicit cursor.  Everything is total: malformed input raises
   [Parse_error], never [Invalid_argument] or an assertion. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ----- Printing ----- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else if Float.is_nan f || Float.abs f = Float.infinity then
      (* JSON has no NaN/Inf; null is the least-surprising encoding. *)
      Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        print_into buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ----- Parsing ----- *)

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.s in
  while
    cur.pos < n
    && (match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail cur (Printf.sprintf "expected %C, found end of input" c)

let expect_lit cur lit v =
  let n = String.length lit in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = lit then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur (Printf.sprintf "expected %s" lit)

let hex_digit cur c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail cur "invalid hex digit in \\u escape"

(* Decode a \uXXXX code point (with surrogate pairs) to UTF-8 bytes. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_u16 cur =
  if cur.pos + 4 > String.length cur.s then fail cur "truncated \\u escape";
  let v =
    (hex_digit cur cur.s.[cur.pos] lsl 12)
    lor (hex_digit cur cur.s.[cur.pos + 1] lsl 8)
    lor (hex_digit cur cur.s.[cur.pos + 2] lsl 4)
    lor hex_digit cur cur.s.[cur.pos + 3]
  in
  cur.pos <- cur.pos + 4;
  v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = parse_u16 cur in
          if hi >= 0xD800 && hi <= 0xDBFF then
            if
              cur.pos + 1 < String.length cur.s
              && cur.s.[cur.pos] = '\\'
              && cur.s.[cur.pos + 1] = 'u'
            then begin
              cur.pos <- cur.pos + 2;
              let lo = parse_u16 cur in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 buf
                  (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              else fail cur "invalid low surrogate"
            end
            else fail cur "unpaired high surrogate"
          else add_utf8 buf hi
        | c -> fail cur (Printf.sprintf "invalid escape \\%c" c)));
      go ()
    | Some c when Char.code c < 0x20 -> fail cur "control character in string"
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.s in
  if cur.pos < n && cur.s.[cur.pos] = '-' then advance cur;
  let digits () =
    let d0 = cur.pos in
    while cur.pos < n && (match cur.s.[cur.pos] with '0' .. '9' -> true | _ -> false) do
      advance cur
    done;
    if cur.pos = d0 then fail cur "expected digit"
  in
  digits ();
  let is_float = ref false in
  if cur.pos < n && cur.s.[cur.pos] = '.' then begin
    is_float := true;
    advance cur;
    digits ()
  end;
  if cur.pos < n && (cur.s.[cur.pos] = 'e' || cur.s.[cur.pos] = 'E') then begin
    is_float := true;
    advance cur;
    if cur.pos < n && (cur.s.[cur.pos] = '+' || cur.s.[cur.pos] = '-') then
      advance cur;
    digits ()
  end;
  let text = String.sub cur.s start (cur.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> expect_lit cur "null" Null
  | Some 't' -> expect_lit cur "true" (Bool true)
  | Some 'f' -> expect_lit cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let member () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members (kv :: acc)
        | Some '}' ->
          advance cur;
          List.rev (kv :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let parse s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  (match peek cur with
  | None -> ()
  | Some c -> fail cur (Printf.sprintf "trailing input starting with %C" c));
  v

let parse_opt s =
  match parse s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg  (* float_of_string overflow etc. *)

(* ----- Accessors ----- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
    Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let bind o f = match o with Some v -> f v | None -> None

let str_member k v = bind (member k v) to_str
let int_member k v = bind (member k v) to_int
let float_member k v = bind (member k v) to_float_opt
let bool_member k v = bind (member k v) to_bool
