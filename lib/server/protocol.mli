(** The serving protocol: newline-delimited JSON request/response over a
    {!Registry.t}.

    One request per line, one response per line.  Every request is an
    object with a ["verb"] and an optional ["id"] the response echoes.
    Responses carry ["ok": true] plus verb-specific fields, or
    ["ok": false] with an ["error"] code and a human ["message"].

    {v
    verb   fields                                  reply
    open   backend?, scenario?|empty, units?,      session, backend,
           seed?, jobs?, persist?, budgets?{         next_time, persisted
           retries, backoff_ms, max_new_nodes,
           max_call_s, max_commits}
    commit session, service | xml (+name?)        time, attempts,
                                                    new_nodes, promoted
    query  session, kind=why|impact (uri),        uris | columns+rows |
           kind=sparql (query), kind=turtle         turtle
    stats  [session]                              live, max_sessions,
                                                    sessions | per-session
    close  session, turtle?                       commits, failed, links
                                                    [, turtle]
    v}

    Error codes: [parse_error], [bad_request], [unknown_session],
    [unknown_service], [unknown_backend], [admission_rejected],
    [already_open], [budget_exceeded], [commit_failed], [query_error],
    [session_closed], [read_only], [internal_error].

    Failure containment: [commit_failed] and [budget_exceeded] fail the
    {e call} — the session they addressed stays open and queryable.
    [internal_error] is the backstop for unexpected exceptions; it too is
    confined to the request that raised it.

    Persistence: with a [data_dir], sessions write a per-commit WAL
    (["<percent-encoded-id>.wal"]) and {!restore_sessions} replays every
    log at boot into read-only sessions whose Turtle export is
    byte-identical to what the live sessions last served; committing to
    one yields [read_only]. *)

type ctx = {
  registry : Registry.t;
  rulebook : Weblab_prov.Strategy.rulebook;
      (** shared, read-only: every session's backend init gets it *)
  default_backend : Weblab_prov.Strategy.kind;
  data_dir : string option;
      (** when set, sessions persist a WAL under it (request field
          ["persist": false] opts a session out) *)
}

val make_ctx :
  ?shards:int ->
  ?max_sessions:int ->
  ?default_backend:Weblab_prov.Strategy.kind ->
  ?data_dir:string ->
  unit ->
  ctx
(** Builds the catalog rulebook once.  Default backend: [`Incremental]. *)

val wal_file : string -> string -> string
(** [wal_file data_dir sid] — the WAL path for a session id (filename is
    the percent-encoded id + [".wal"]). *)

val restore_sessions : ctx -> (string * Weblab_rdf.Wal.replay_stats) list
(** Replay every ["*.wal"] under the data dir into a read-only session
    registered under its decoded id; call once at boot, before the
    listener accepts.  No data dir, or none configured: [[]]. *)

val handle : ctx -> Json.t -> Json.t
(** Dispatch one parsed request.  Total: protocol and session errors come
    back as [ok:false] responses, never as exceptions. *)

val handle_line : ctx -> string -> string
(** Parse, dispatch, print — the connection loop's whole body (and the
    unit tests' entry point).  The result never contains a newline. *)
