(** The serving protocol: newline-delimited JSON request/response over a
    {!Registry.t}.

    One request per line, one response per line.  Every request is an
    object with a ["verb"] and an optional ["id"] the response echoes.
    Responses carry ["ok": true] plus verb-specific fields, or
    ["ok": false] with an ["error"] code and a human ["message"].

    {v
    verb   fields                                  reply
    open   backend?, scenario?|empty, units?,      session, backend,
           seed?, jobs?, budgets?{retries,           next_time
           backoff_ms, max_new_nodes, max_call_s,
           max_commits}
    commit session, service | xml (+name?)        time, attempts,
                                                    new_nodes, promoted
    query  session, kind=why|impact (uri),        uris | columns+rows |
           kind=sparql (query), kind=turtle         turtle
    stats  [session]                              live, max_sessions,
                                                    sessions | per-session
    close  session, turtle?                       commits, failed, links
                                                    [, turtle]
    v}

    Error codes: [parse_error], [bad_request], [unknown_session],
    [unknown_service], [unknown_backend], [admission_rejected],
    [already_open], [budget_exceeded], [commit_failed], [query_error],
    [session_closed], [internal_error].

    Failure containment: [commit_failed] and [budget_exceeded] fail the
    {e call} — the session they addressed stays open and queryable.
    [internal_error] is the backstop for unexpected exceptions; it too is
    confined to the request that raised it. *)

type ctx = {
  registry : Registry.t;
  rulebook : Weblab_prov.Strategy.rulebook;
      (** shared, read-only: every session's backend init gets it *)
  default_backend : Weblab_prov.Strategy.kind;
}

val make_ctx :
  ?shards:int ->
  ?max_sessions:int ->
  ?default_backend:Weblab_prov.Strategy.kind ->
  unit ->
  ctx
(** Builds the catalog rulebook once.  Default backend: [`Incremental]. *)

val handle : ctx -> Json.t -> Json.t
(** Dispatch one parsed request.  Total: protocol and session errors come
    back as [ok:false] responses, never as exceptions. *)

val handle_line : ctx -> string -> string
(** Parse, dispatch, print — the connection loop's whole body (and the
    unit tests' entry point).  The result never contains a newline. *)
