(** The serving protocol: newline-delimited JSON request/response over a
    {!Registry.t}.

    One request per line, one response per line.  Every request is an
    object with a ["verb"] and an optional ["id"] the response echoes.
    Responses carry ["ok": true] plus verb-specific fields, or
    ["ok": false] with an ["error"] code and a human ["message"].

    {v
    verb    fields                                  reply
    open    backend?, scenario?|empty, units?,      session, backend,
            seed?, jobs?, persist?, budgets?{         next_time, persisted
            retries, backoff_ms, max_new_nodes,
            max_call_s, max_commits}
    commit  session, service | xml (+name?)        time, attempts,
                                                     new_nodes, promoted
    query   session, kind=why|impact (uri),        uris | columns+rows |
            kind=sparql (query), kind=turtle         turtle
    stats   [session]                              live, max_sessions,
                                                     restored, sessions
                                                     | per-session
    metrics [trace]                                uptime_us, level,
                                                     counters, gauges,
                                                     histograms, spans |
                                                     trace, spans
    close   session, turtle?                       commits, failed, links
                                                     [, turtle]
    v}

    Observability: when the recorder is on, every request draws a
    request id (the client's ["id"] if it is a string or integer, a
    generated one otherwise), runs under it — so every span emitted
    while handling the request is stamped [("req", rid)] — and lands its
    wall time in the per-verb histogram [serve.verb.<verb>].  [metrics]
    returns the {!Weblab_obs.Metrics.snapshot} as JSON (histograms with
    count/sum/max and p50/p90/p99); [{"verb":"metrics","trace":RID}]
    returns the buffered spans stamped with [RID].  A context built with
    a slow-query log appends one JSON line per request at or over the
    threshold.  With the recorder [Off] a request costs one atomic load
    beyond the bare dispatch.

    Error codes: [parse_error], [bad_request], [unknown_session],
    [unknown_service], [unknown_backend], [admission_rejected],
    [already_open], [budget_exceeded], [commit_failed], [query_error],
    [session_closed], [read_only], [internal_error].

    Failure containment: [commit_failed] and [budget_exceeded] fail the
    {e call} — the session they addressed stays open and queryable.
    [internal_error] is the backstop for unexpected exceptions; it too is
    confined to the request that raised it.

    Persistence: with a [data_dir], sessions write a per-commit WAL
    (["<percent-encoded-id>.wal"]) and {!restore_sessions} replays every
    log at boot into read-only sessions whose Turtle export is
    byte-identical to what the live sessions last served; committing to
    one yields [read_only]. *)

type slow_log = {
  sl_oc : out_channel;
  sl_lock : Mutex.t;  (** the channel is shared by connection threads *)
  sl_threshold_us : float;
}

type ctx = {
  registry : Registry.t;
  rulebook : Weblab_prov.Strategy.rulebook;
      (** shared, read-only: every session's backend init gets it *)
  default_backend : Weblab_prov.Strategy.kind;
  data_dir : string option;
      (** when set, sessions persist a WAL under it (request field
          ["persist": false] opts a session out) *)
  slow : slow_log option;
      (** when set, requests at or over the threshold append a JSON line
          (see {!Weblab_obs.Sinks.slow_query_line}) *)
}

val make_ctx :
  ?shards:int ->
  ?max_sessions:int ->
  ?default_backend:Weblab_prov.Strategy.kind ->
  ?data_dir:string ->
  ?slow_log_path:string ->
  ?slow_ms:float ->
  unit ->
  ctx
(** Builds the catalog rulebook once.  Default backend: [`Incremental].
    [slow_log_path] opens (append, create) the slow-query log;
    [slow_ms] is the threshold in milliseconds (default 100). *)

val wal_file : string -> string -> string
(** [wal_file data_dir sid] — the WAL path for a session id (filename is
    the percent-encoded id + [".wal"]). *)

val restore_sessions : ctx -> (string * Weblab_rdf.Wal.replay_stats) list
(** Replay every ["*.wal"] under the data dir into a read-only session
    registered under its decoded id; call once at boot, before the
    listener accepts.  No data dir, or none configured: [[]]. *)

val handle : ctx -> Json.t -> Json.t
(** Dispatch one parsed request.  Total: protocol and session errors come
    back as [ok:false] responses, never as exceptions. *)

val handle_line : ctx -> string -> string
(** Parse, dispatch, print — the connection loop's whole body (and the
    unit tests' entry point).  The result never contains a newline. *)
