open Weblab_workflow
open Weblab_prov
module J = Json
module T = Weblab_obs.Telemetry
module M = Weblab_obs.Metrics

(* Slow-query log: requests whose wall time crosses the threshold append
   one JSON line each.  The channel is shared by every connection thread,
   hence the lock; a flush per record keeps the tail readable while the
   daemon runs (slow queries are rare by definition, so the flush cost
   is irrelevant). *)
type slow_log = {
  sl_oc : out_channel;
  sl_lock : Mutex.t;
  sl_threshold_us : float;
}

type ctx = {
  registry : Registry.t;
  rulebook : Strategy.rulebook;
  default_backend : Strategy.kind;
  data_dir : string option;
      (* when set, sessions persist a WAL under it and boot restores *)
  slow : slow_log option;
}

let make_ctx ?shards ?max_sessions ?(default_backend = `Incremental) ?data_dir
    ?slow_log_path ?(slow_ms = 100.) () =
  let rulebook =
    List.map
      (fun (e : Weblab_services.Catalog.entry) ->
        ( Service.name e.Weblab_services.Catalog.service,
          List.map Rule_parser.parse e.Weblab_services.Catalog.rules ))
      Weblab_services.Catalog.entries
  in
  let slow =
    Option.map
      (fun path ->
        { sl_oc = open_out_gen [ Open_append; Open_creat ] 0o644 path;
          sl_lock = Mutex.create (); sl_threshold_us = slow_ms *. 1000. })
      slow_log_path
  in
  { registry = Registry.create ?shards ?max_sessions (); rulebook;
    default_backend; data_dir; slow }

(* ----- WAL file naming -----

   Session ids are client-chosen strings; percent-encode anything that
   is not filename-safe so ids map 1:1 onto flat "<enc>.wal" files and
   the directory scan can decode them back. *)

let enc_sid sid =
  let buf = Buffer.create (String.length sid) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' ->
        Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    sid;
  Buffer.contents buf

let dec_sid enc =
  let buf = Buffer.create (String.length enc) in
  let n = String.length enc in
  let rec go i =
    if i < n then
      if enc.[i] = '%' && i + 2 < n then (
        match int_of_string_opt ("0x" ^ String.sub enc (i + 1) 2) with
        | Some code ->
          Buffer.add_char buf (Char.chr (code land 0xff));
          go (i + 3)
        | None ->
          Buffer.add_char buf enc.[i];
          go (i + 1))
      else begin
        Buffer.add_char buf enc.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let wal_file data_dir sid = Filename.concat data_dir (enc_sid sid ^ ".wal")

(* Restore every "*.wal" in the data directory into a read-only session;
   called once at daemon boot, before the listener accepts.  Returns the
   restored (id, replay stats) pairs. *)
let restore_sessions ctx =
  match ctx.data_dir with
  | None -> []
  | Some dir when Sys.file_exists dir && Sys.is_directory dir ->
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".wal" then
             let sid = dec_sid (Filename.chop_suffix f ".wal") in
             let wal_path = Filename.concat dir f in
             let result = ref None in
             (match
                Registry.add ctx.registry ~id:sid (fun ~id ->
                    let sess, rp = Session.restore ~id ~wal_path in
                    result := Some rp;
                    sess)
              with
             | Ok _ -> Option.map (fun rp -> (sid, rp)) !result
             | Error _ -> None)
           else None)
  | Some _ -> []

(* ----- responses ----- *)

(* The echoed request id, if any — first member of every response. *)
let id_fields req =
  match J.member "id" req with Some v -> [ ("id", v) ] | None -> []

let ok req fields = J.Obj (id_fields req @ (("ok", J.Bool true) :: fields))

let err ?(extra = []) req code msg =
  J.Obj
    (id_fields req
    @ ("ok", J.Bool false) :: ("error", J.Str code) :: ("message", J.Str msg)
      :: extra)

(* A handler either produces response fields or a protocol error. *)
exception Reject of string * string * (string * J.t) list
(* code, message, extra fields *)

let reject ?(extra = []) code msg = raise (Reject (code, msg, extra))

let opt_default d = function Some v -> v | None -> d

(* ----- field parsing ----- *)

let required_str req field =
  match J.str_member field req with
  | Some s -> s
  | None -> reject "bad_request" (Printf.sprintf "missing string field %S" field)

let session_of ctx req =
  let sid = required_str req "session" in
  match Registry.find ctx.registry sid with
  | Some s -> s
  | None -> reject "unknown_session" (Printf.sprintf "no session %S" sid)

let budgets_of req =
  match J.member "budgets" req with
  | None -> Session.default_budgets
  | Some b ->
    let d = Session.default_budgets in
    { Session.policy =
        { d.Session.policy with
          retries = opt_default 0 (J.int_member "retries" b);
          backoff_ms = opt_default 0. (J.float_member "backoff_ms" b);
          max_new_nodes = J.int_member "max_new_nodes" b;
          max_call_s = J.float_member "max_call_s" b };
      max_commits = J.int_member "max_commits" b }

(* ----- open ----- *)

let v_open ctx req =
  let backend =
    match J.str_member "backend" req with
    | None -> ctx.default_backend
    | Some s ->
      (match Strategy.kind_of_string s with
      | Some k -> k
      | None ->
        reject "unknown_backend"
          (Printf.sprintf "unknown backend %S (%s)" s
             (String.concat "|" Strategy.names)))
  in
  let doc =
    match opt_default "standard" (J.str_member "scenario" req) with
    | "empty" -> Orchestrator.initial_document ()
    | "standard" ->
      let units = opt_default 3 (J.int_member "units" req) in
      let seed = opt_default 42 (J.int_member "seed" req) in
      Weblab_services.Workload.make_document ~units ~seed ()
    | s -> reject "bad_request" (Printf.sprintf "unknown scenario %S" s)
  in
  let jobs = opt_default 1 (J.int_member "jobs" req) in
  let budgets = budgets_of req in
  let id =
    match J.str_member "session" req with
    | Some s -> s
    | None -> Registry.fresh_id ctx.registry
  in
  (* Persistence defaults on when the daemon has a data dir; the request
     can opt out per session with {"persist": false}. *)
  let persist =
    opt_default (Option.is_some ctx.data_dir) (J.bool_member "persist" req)
  in
  let wal_path =
    match ctx.data_dir with
    | Some dir when persist -> Some (wal_file dir id)
    | _ ->
      if persist && Option.is_some (J.bool_member "persist" req) then
        reject "bad_request" "persist requested but the daemon has no --data-dir"
      else None
  in
  match
    Registry.add ctx.registry ~id (fun ~id ->
        Session.create ~id ~backend ~jobs ~budgets ?wal_path ~doc ctx.rulebook)
  with
  | Ok sess ->
    ok req
      [ ("session", J.Str (Session.id sess));
        ("backend", J.Str (Session.backend_name sess));
        ("next_time", J.Int 1);
        ("persisted", J.Bool (Option.is_some (Session.wal_path sess))) ]
  | Error (Registry.Admission_rejected msg) -> reject "admission_rejected" msg
  | Error (Registry.Already_open id) ->
    reject "already_open" (Printf.sprintf "session %S already exists" id)

(* ----- commit ----- *)

let fault_of req =
  match J.str_member "fault" req with
  | None -> None
  | Some s ->
    (match
       List.find_opt
         (fun f -> String.equal (Weblab_services.Faulty.fault_name f) s)
         Weblab_services.Faulty.all_faults
     with
    | Some f -> Some f
    | None -> reject "bad_request" (Printf.sprintf "unknown fault %S" s))

let service_of req =
  match (J.str_member "service" req, J.str_member "xml" req) with
  | Some name, None ->
    (match Weblab_services.Catalog.find name with
    | Some e -> e.Weblab_services.Catalog.service
    | None ->
      reject "unknown_service"
        (Printf.sprintf "unknown service %S (%s)" name
           (String.concat "|" Weblab_services.Catalog.service_names)))
  | None, Some xml ->
    (* A client-supplied next document state: the streaming route — the
       body is parsed once, straight into an arena, and diffed against
       the current state without serializing it.  Malformed XML fails the
       call (total parse-error rendering), never the session. *)
    let name = opt_default "ClientXml" (J.str_member "name" req) in
    Session.client_xml_service ~name xml
  | Some _, Some _ | None, None ->
    reject "bad_request" "commit takes exactly one of \"service\" or \"xml\""

let v_commit ctx req =
  let sess = session_of ctx req in
  let svc = service_of req in
  let svc =
    match fault_of req with
    | Some f -> Weblab_services.Faulty.with_fault ~stall_s:0.01 f svc
    | None -> svc
  in
  match Session.with_lock sess (fun () -> Session.commit sess svc) with
  | Ok { Session.time; attempts; new_nodes; promoted } ->
    ok req
      [ ("time", J.Int time); ("attempts", J.Int attempts);
        ("new_nodes", J.Int new_nodes); ("promoted", J.Int promoted) ]
  | Error (Session.Budget_exhausted msg) -> reject "budget_exceeded" msg
  | Error (Session.Call_failed { reason; attempts; time }) ->
    reject "commit_failed" reason
      ~extra:[ ("attempts", J.Int attempts); ("time", J.Int time) ]
  | Error Session.Session_closed ->
    reject "session_closed" "session is closed"
  | Error Session.Restored_read_only ->
    reject "read_only"
      "session was restored from a WAL and is query-only; open a new \
       session to commit"

(* ----- query ----- *)

let v_query ctx req =
  let sess = session_of ctx req in
  let kind = required_str req "kind" in
  Session.with_lock sess (fun () ->
      match kind with
      | "why" | "impact" ->
        let uri = required_str req "uri" in
        let uris =
          if String.equal kind "why" then Session.why sess uri
          else Session.impact sess uri
        in
        ok req [ ("uris", J.List (List.map (fun u -> J.Str u) uris)) ]
      | "sparql" ->
        let q = required_str req "query" in
        (match Session.sparql sess q with
        | tbl ->
          let cols = Weblab_relalg.Table.columns tbl in
          let rows =
            List.map
              (fun row ->
                J.List
                  (List.map
                     (fun c ->
                       J.Str
                         (Weblab_relalg.Value.to_string
                            (Weblab_relalg.Table.get tbl row c)))
                     cols))
              (Weblab_relalg.Table.rows tbl)
          in
          ok req
            [ ("columns", J.List (List.map (fun c -> J.Str c) cols));
              ("rows", J.List rows) ]
        | exception Weblab_rdf.Sparql.Error msg -> reject "query_error" msg)
      | "turtle" -> ok req [ ("turtle", J.Str (Session.turtle sess)) ]
      | k -> reject "bad_request" (Printf.sprintf "unknown query kind %S" k))

(* ----- stats ----- *)

let session_stats_fields (s : Session.stats) =
  [ ("session", J.Str s.Session.st_id);
    ("backend", J.Str s.Session.st_backend);
    ("next_time", J.Int s.Session.st_next_time);
    ("commits", J.Int s.Session.st_commits);
    ("failed", J.Int s.Session.st_failed);
    ("doc_nodes", J.Int s.Session.st_doc_nodes);
    ("resources", J.Int s.Session.st_graph_size);
    ("links", J.Int s.Session.st_links);
    ("closed", J.Bool s.Session.st_closed);
    ("restored", J.Bool s.Session.st_restored);
    ("store",
     J.Obj
       [ ("triples", J.Int s.Session.st_store.Weblab_rdf.Triple_store.st_triples);
         ("terms", J.Int s.Session.st_store.Weblab_rdf.Triple_store.st_terms);
         ("base", J.Int s.Session.st_store.Weblab_rdf.Triple_store.st_base);
         ("tail", J.Int s.Session.st_store.Weblab_rdf.Triple_store.st_tail);
         ("merges", J.Int s.Session.st_store.Weblab_rdf.Triple_store.st_merges)
       ]) ]

let v_stats ctx req =
  match J.str_member "session" req with
  | Some _ ->
    let sess = session_of ctx req in
    let s = Session.with_lock sess (fun () -> Session.stats sess) in
    ok req (session_stats_fields s)
  | None ->
    let ids = Registry.ids ctx.registry in
    let restored =
      List.fold_left
        (fun acc sid ->
          match Registry.find ctx.registry sid with
          | Some s when Session.is_restored s -> acc + 1
          | Some _ | None -> acc)
        0 ids
    in
    ok req
      [ ("live", J.Int (Registry.live ctx.registry));
        ("max_sessions", J.Int (Registry.max_sessions ctx.registry));
        ("restored", J.Int restored);
        ("sessions", J.List (List.map (fun s -> J.Str s) ids)) ]

(* ----- close ----- *)

let v_close ctx req =
  let sid = required_str req "session" in
  match Registry.remove ctx.registry sid with
  | None -> reject "unknown_session" (Printf.sprintf "no session %S" sid)
  | Some sess ->
    Session.with_lock sess (fun () ->
        ignore (Session.close sess);
        let s = Session.stats sess in
        let base =
          [ ("commits", J.Int s.Session.st_commits);
            ("failed", J.Int s.Session.st_failed);
            ("links", J.Int s.Session.st_links) ]
        in
        let extra =
          if opt_default false (J.bool_member "turtle" req) then
            [ ("turtle", J.Str (Session.turtle sess)) ]
          else []
        in
        ok req (base @ extra))

(* ----- metrics ----- *)

let level_name = function
  | T.Off -> "off"
  | T.Counters -> "counters"
  | T.Full -> "full"

(* The introspection verb: a structured {!Metrics.snapshot} (plain
   [metrics]), or one request's spans pulled from the ring by the id
   that stamped them ([{"trace": rid}]). *)
let v_metrics _ctx req =
  match J.str_member "trace" req with
  | Some rid ->
    let spans =
      T.events ()
      |> List.filter (fun e ->
             match List.assoc_opt "req" e.T.e_args with
             | Some r -> String.equal r rid
             | None -> false)
      |> List.map (fun e ->
             J.Obj
               [ ("name", J.Str e.T.e_name); ("cat", J.Str e.T.e_cat);
                 ("worker", J.Int e.T.e_worker); ("ts_us", J.Float e.T.e_ts);
                 ("dur_us", J.Float e.T.e_dur);
                 ("args",
                  J.Obj (List.map (fun (k, v) -> (k, J.Str v)) e.T.e_args)) ])
    in
    ok req [ ("trace", J.Str rid); ("spans", J.List spans) ]
  | None ->
    let sn = M.snapshot () in
    let hist_obj hv =
      J.Obj
        [ ("count", J.Int hv.M.hv_count); ("sum_us", J.Int hv.M.hv_sum_us);
          ("max_us", J.Int hv.M.hv_max_us); ("p50_us", J.Int hv.M.hv_p50_us);
          ("p90_us", J.Int hv.M.hv_p90_us); ("p99_us", J.Int hv.M.hv_p99_us) ]
    in
    ok req
      [ ("uptime_us", J.Float sn.M.sn_uptime_us);
        ("level", J.Str (level_name (T.level ())));
        ("counters",
         J.Obj (List.map (fun (k, v) -> (k, J.Int v)) sn.M.sn_counters));
        ("gauges",
         J.Obj (List.map (fun (k, v) -> (k, J.Int v)) sn.M.sn_gauges));
        ("histograms",
         J.Obj (List.map (fun hv -> (hv.M.hv_name, hist_obj hv)) sn.M.sn_hists));
        ("spans",
         J.Obj
           [ ("buffered", J.Int sn.M.sn_spans_buffered);
             ("dropped", J.Int sn.M.sn_spans_dropped) ]) ]

(* ----- dispatch ----- *)

let verb_counter verb = T.counter ("serve.verb." ^ verb)
let verb_hist verb = M.hist ("serve.verb." ^ verb)
let c_slow = T.counter "serve.slow_queries"

(* The request id every span emitted while handling this request is
   stamped with: the client's ["id"] when it is a string or an integer,
   a generated "r<N>" otherwise.  (The response echo is untouched —
   echoing only what the client sent is part of the protocol.) *)
let req_seq = Atomic.make 1

let request_id req =
  match J.member "id" req with
  | Some (J.Str s) -> s
  | Some (J.Int n) -> string_of_int n
  | Some _ | None -> Printf.sprintf "r%d" (Atomic.fetch_and_add req_seq 1)

(* Cardinalities worth keeping in a slow-query record, pulled from the
   response itself so no verb needs extra plumbing: delta sizes from
   commit, result sizes from query, census from stats. *)
let slow_detail resp =
  match resp with
  | J.Obj fields ->
    List.filter_map
      (fun (k, v) ->
        match (k, v) with
        | ("new_nodes" | "promoted" | "time" | "attempts" | "live"), J.Int n ->
          Some (k, n)
        | ("uris" | "rows" | "sessions"), J.List l -> Some (k, List.length l)
        | "turtle", J.Str s -> Some ("turtle_bytes", String.length s)
        | _ -> None)
      fields
  | _ -> []

let log_slow ctx ~verb ~rid ~dur_us req resp =
  match ctx.slow with
  | Some sl when dur_us >= sl.sl_threshold_us ->
    T.incr c_slow;
    let session =
      match J.str_member "session" resp with
      | Some s -> s
      | None -> opt_default "" (J.str_member "session" req)
    in
    let line =
      Weblab_obs.Sinks.slow_query_line ~verb ~session ~req:rid ~dur_us
        ~ok:(opt_default false (J.bool_member "ok" resp))
        ~detail:(slow_detail resp)
    in
    Mutex.protect sl.sl_lock (fun () ->
        output_string sl.sl_oc line;
        output_char sl.sl_oc '\n';
        flush sl.sl_oc)
  | Some _ | None -> ()

let handle ctx req =
  match J.str_member "verb" req with
  | None -> err req "bad_request" "missing string field \"verb\""
  | Some verb ->
    let dispatch f =
      match f ctx req with
      | resp -> resp
      | exception Reject (code, msg, extra) -> err ~extra req code msg
      | exception e ->
        (* The backstop: an unexpected exception is confined to this
           request; the session registry stays intact. *)
        err req "internal_error" (Printexc.to_string e)
    in
    let run f =
      (* Off is one atomic load and the bare dispatch — no id draw, no
         clock read, no histogram. *)
      if not (T.enabled ()) then dispatch f
      else begin
        T.incr (verb_counter verb);
        let rid = request_id req in
        let t0 = Unix.gettimeofday () in
        let resp =
          T.with_request rid (fun () ->
              T.span ~cat:"serve" ("serve." ^ verb) (fun () -> dispatch f))
        in
        let dur_us = (Unix.gettimeofday () -. t0) *. 1e6 in
        M.observe_us (verb_hist verb) dur_us;
        log_slow ctx ~verb ~rid ~dur_us req resp;
        resp
      end
    in
    (match verb with
    | "open" -> run v_open
    | "commit" -> run v_commit
    | "query" -> run v_query
    | "stats" -> run v_stats
    | "metrics" -> run v_metrics
    | "close" -> run v_close
    | v -> err req "bad_request" (Printf.sprintf "unknown verb %S" v))

let handle_line ctx line =
  let resp =
    match J.parse_opt line with
    | Ok req -> handle ctx req
    | Error msg -> err (J.Obj []) "parse_error" msg
  in
  J.to_string resp
