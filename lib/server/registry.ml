module T = Weblab_obs.Telemetry
module M = Weblab_obs.Metrics

let c_accepted = T.counter "serve.sessions.accepted"
let c_rejected = T.counter "serve.sessions.rejected"

(* Active sessions is a level, not a tally: it goes down on close, so a
   monotonic counter is the wrong type.  The gauge mirrors [t.count]. *)
let g_active = M.gauge "serve.sessions.active"

(* A slot is claimed before the session is built (the orchestration
   prologue runs outside the shard lock), so the table distinguishes the
   two states: a [Building] slot blocks duplicate opens but is invisible
   to [find]. *)
type entry = Building | Live of Session.t

type shard = {
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
}

type t = {
  shards : shard array;
  cap : int;
  count : int Atomic.t;  (* live + building sessions, across all shards *)
  next_id : int Atomic.t;
}

let create ?(shards = 16) ?(max_sessions = 1024) () =
  { shards =
      Array.init (max 1 shards) (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 16 });
    cap = max 1 max_sessions; count = Atomic.make 0; next_id = Atomic.make 1 }

let max_sessions t = t.cap

let shard_of t id =
  t.shards.(Hashtbl.hash id mod Array.length t.shards)

let fresh_id t = Printf.sprintf "s%d" (Atomic.fetch_and_add t.next_id 1)

type open_error =
  | Admission_rejected of string
  | Already_open of string

(* Reserve an admission slot with a CAS loop, then claim the id under the
   shard lock; building the session happens after both, so a rejected
   open does no orchestration work and a racing duplicate id cannot
   double-insert. *)
let add_fresh t ~id build =
  let rec reserve () =
    let n = Atomic.get t.count in
    if n >= t.cap then false
    else if Atomic.compare_and_set t.count n (n + 1) then true
    else reserve ()
  in
  if not (reserve ()) then begin
    T.incr c_rejected;
    Error
      (Admission_rejected
         (Printf.sprintf "session limit reached (%d live)" t.cap))
  end
  else begin
    let release () = Atomic.decr t.count in
    let sh = shard_of t id in
    let claimed =
      Mutex.protect sh.lock (fun () ->
          if Hashtbl.mem sh.tbl id then false
          else begin
            Hashtbl.replace sh.tbl id Building;
            true
          end)
    in
    if not claimed then begin
      release ();
      T.incr c_rejected;
      Error (Already_open id)
    end
    else
      match build ~id with
      | sess ->
        Mutex.protect sh.lock (fun () -> Hashtbl.replace sh.tbl id (Live sess));
        T.incr c_accepted;
        M.add g_active 1;
        Ok sess
      | exception e ->
        Mutex.protect sh.lock (fun () -> Hashtbl.remove sh.tbl id);
        release ();
        raise e
  end

let add t ~id build =
  (* Precise error at capacity: a duplicate id is [Already_open] whether
     or not a slot is free.  The claim under the shard lock in
     [add_fresh] stays authoritative for races — this pre-check only
     picks the error. *)
  let duplicate =
    let sh = shard_of t id in
    Mutex.protect sh.lock (fun () -> Hashtbl.mem sh.tbl id)
  in
  if duplicate then begin
    T.incr c_rejected;
    Error (Already_open id)
  end
  else add_fresh t ~id build

let find t id =
  let sh = shard_of t id in
  Mutex.protect sh.lock (fun () ->
      match Hashtbl.find_opt sh.tbl id with
      | Some (Live s) -> Some s
      | Some Building | None -> None)

let remove t id =
  let sh = shard_of t id in
  match
    Mutex.protect sh.lock (fun () ->
        match Hashtbl.find_opt sh.tbl id with
        | Some (Live s) ->
          Hashtbl.remove sh.tbl id;
          Some s
        | Some Building | None -> None)
  with
  | Some s ->
    Atomic.decr t.count;
    M.add g_active (-1);
    Some s
  | None -> None

let live t = Atomic.get t.count

let ids t =
  Array.to_list t.shards
  |> List.concat_map (fun sh ->
         Mutex.protect sh.lock (fun () ->
             Hashtbl.fold
               (fun k e acc -> match e with Live _ -> k :: acc | Building -> acc)
               sh.tbl []))
  |> List.sort String.compare
