(** A minimal JSON codec for the serving protocol.

    The container ships no JSON library and the protocol needs only the
    data model — objects, arrays, strings, numbers, booleans, null — so
    this is a small total parser and printer rather than a dependency.
    Numbers are kept as [Int] when they are exact integers and [Float]
    otherwise; printing escapes control characters and always emits valid
    single-line JSON (newlines inside strings are escaped), which is what
    keeps the newline-delimited framing sound. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input (total otherwise — no
    [assert]s, no [Invalid_argument] leaks). *)

val parse_opt : string -> (t, string) result

val to_string : t -> string
(** Single-line, minimal whitespace; object members keep their order. *)

(** {1 Accessors} — each returns [None] on a type mismatch. *)

val member : string -> t -> t option
(** [member k (Obj ...)]; [None] for absent keys and non-objects. *)

val to_str : t -> string option

val to_int : t -> int option
(** Accepts [Int] and integral [Float]s. *)

val to_float_opt : t -> float option

val to_bool : t -> bool option

val to_list : t -> t list option

val str_member : string -> t -> string option

val int_member : string -> t -> int option

val float_member : string -> t -> float option

val bool_member : string -> t -> bool option
