(** The session registry: a sharded map from session id to {!Session.t}
    with admission control (DESIGN §4h).

    Ids are hashed onto a fixed array of shards, each guarded by its own
    mutex, so concurrent connections opening/closing/looking up distinct
    sessions contend only when they land on the same shard.  The shard
    lock covers table membership and the live-session count; it is never
    held across a verb — per-session mutual exclusion is
    {!Session.with_lock}, taken after the lookup.

    Admission control is a hard cap on live sessions: an [open] beyond
    [max_sessions] is rejected up front (counted in
    [serve.sessions.rejected]) instead of degrading every resident
    session. *)

type t

val create : ?shards:int -> ?max_sessions:int -> unit -> t
(** Defaults: 16 shards, 1024 sessions. *)

val max_sessions : t -> int

type open_error =
  | Admission_rejected of string  (** live-session cap reached *)
  | Already_open of string  (** id collision *)

val add : t -> id:string -> (id:string -> Session.t) -> (Session.t, open_error) result
(** Admission check + insert, atomically per shard; the session is built
    by the callback only once admission is granted (so a rejected open
    never runs the orchestration prologue).  If the callback raises, the
    slot is released and the exception propagates. *)

val fresh_id : t -> string
(** ["s<n>"] from a process-wide counter — never reused within a run. *)

val find : t -> string -> Session.t option

val remove : t -> string -> Session.t option
(** Drop the id and free its admission slot; the caller finalizes the
    session ({!Session.close}) outside the shard lock. *)

val live : t -> int

val ids : t -> string list
(** All live session ids, sorted. *)
