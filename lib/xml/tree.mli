(** Node-labeled ordered XML trees in an append-only arena.

    WebLab documents (Definition 1 of the paper) are XML trees in which a
    subset of nodes — the {e resources} — carry a unique URI.  Because the
    WebLab execution model only ever {e appends} fragments (Definition 2),
    the arena representation gives every node a stable integer identifier
    for its whole lifetime, which in turn makes document states, diffs and
    provenance links cheap to represent.

    Attribute conventions (matching the paper's encoding):
    - ["id"]: the URI assigned by the [uri] partial function;
    - ["s"]: name of the service whose call created the resource;
    - ["t"]: timestamp of that service call.

    In addition every node records the {e creation timestamp} of the service
    call that added it, which is what document states are carved out of. *)

type t
(** A mutable, append-only XML document. *)

type node = int
(** Nodes are arena indices, stable across document states. *)

type timestamp = int

val no_node : node
(** A sentinel ([-1]) used where a node may be absent (e.g. the parent of
    the root). *)

(** {1 Construction} *)

val create : unit -> t
(** An empty document (no root yet). *)

val new_element :
  ?attrs:(string * string) list -> t -> parent:node -> string -> node
(** [new_element t ~parent name] appends a fresh element as last child of
    [parent].  Pass [~parent:no_node] to install the root (allowed once).
    @raise Invalid_argument if a second root is created. *)

val new_text : t -> parent:node -> string -> node
(** Appends a text node as last child of [parent]. *)

val copy_subtree : t -> src:t -> node -> parent:node -> node
(** [copy_subtree dst ~src n ~parent] deep-copies the subtree of [src]
    rooted at [n] into [dst] under [parent]; returns the new root. *)

(** {1 Accessors} *)

val root : t -> node
(** @raise Invalid_argument on an empty document. *)

val has_root : t -> bool

val size : t -> int
(** Number of nodes ever allocated (= upper bound for node ids + 1). *)

val compact : t -> unit
(** Trim the arena's growth slack: every internal array shrinks to its
    live prefix (ids, links and the rollback contract are untouched;
    later appends grow again).  Call once after bulk ingest on a
    document that will now live for a long time — frozen documents
    otherwise keep up to 2x their footprint in doubling headroom. *)

val id : t -> int
(** A process-unique document id, assigned at {!create}.  Caches key on
    it instead of on the document's physical identity (hashing a cyclic
    record is unsafe; an [int] key is free). *)

val is_element : t -> node -> bool
val is_text : t -> node -> bool

val name : t -> node -> string
(** Element name; [""] for text nodes. *)

val text : t -> node -> string
(** Text content of a text node; [""] for elements. *)

val parent : t -> node -> node
(** [no_node] for the root. *)

val children : t -> node -> node list
(** In document order. *)

val first_child : t -> node -> node
(** [no_node] for childless nodes.  Direct structure-of-arrays link:
    sibling walks via {!next_sibling} allocate nothing. *)

val last_child : t -> node -> node

val next_sibling : t -> node -> node
(** [no_node] for a last child (and the root). *)

val iter_children : t -> node -> (node -> unit) -> unit
(** Left-to-right, without materializing the child list. *)

val nth_child : t -> node -> int -> node option
(** 0-based. *)

val attrs : t -> node -> (string * string) list
val attr : t -> node -> string -> string option
val set_attr : t -> node -> string -> string -> unit

val set_text : t -> node -> string -> unit
(** Replace the content of a text node.  Only meant for services building a
    fragment before it is committed; the orchestrator checks that committed
    nodes are never altered. *)

(** {1 Resources, labels, timestamps} *)

val uri : t -> node -> string option
(** The ["id"] attribute: the URI of a resource node, if any. *)

val set_uri : t -> node -> string -> unit

val is_resource : t -> node -> bool

val resources : t -> node list
(** All resource nodes, in document order. *)

val find_resource : t -> string -> node option
(** Look a resource up by URI. *)

val created : t -> node -> timestamp
(** Creation timestamp (0 for nodes of the initial document). *)

val set_created : t -> node -> timestamp -> unit

val service_label : t -> node -> (string * timestamp) option
(** The [(@s, @t)] service-call label of a resource node, if present. *)

val set_service_label : t -> node -> string -> timestamp -> unit

(** {1 Traversal} *)

val iter_subtree : t -> node -> (node -> unit) -> unit
(** Pre-order traversal of the subtree rooted at the given node (inclusive). *)

val fold_subtree : t -> node -> init:'a -> f:('a -> node -> 'a) -> 'a

val descendants : t -> node -> node list
(** Strict descendants, pre-order. *)

val descendant_or_self : t -> node -> node list

val ancestors : t -> node -> node list
(** Strict ancestors, nearest first. *)

val is_ancestor : t -> ancestor:node -> node -> bool
(** Strict. *)

val string_value : t -> node -> string
(** Concatenation of all text descendants, document order (XPath
    string-value of an element). *)

val document_order : t -> node array
(** All current nodes in document order (pre-order traversal from the
    root). *)

val equal_subtree : t -> node -> t -> node -> bool
(** Structural equality of two subtrees: same kinds, names, texts,
    attribute sets and child sequences. *)

(** {1 Rollback}

    The arena is append-only from the services' point of view; the
    operations below exist solely so the orchestrator can undo a {e
    failed} call's partial appends and in-place mutations, restoring the
    exact last-committed state.  They must not be used to edit committed
    history. *)

val generation : t -> int
(** Bumped on every {!truncate_to}/{!restore}.  Size-stamped caches must
    also compare generations: a truncate followed by new appends can
    return the arena to a previously seen size. *)

val truncate_to : t -> int -> unit
(** [truncate_to t n] drops every node with id [>= n] — both from the
    arena and from the children of surviving nodes (appends are id-ordered,
    so those are suffixes).  Rollback-only primitive.
    @raise Invalid_argument if [n] is negative or exceeds {!size}. *)

type checkpoint
(** A snapshot of the full document state: arena size, root, and every
    cell's kind, attributes and timestamps. *)

val checkpoint : t -> checkpoint

val restore : t -> checkpoint -> unit
(** Truncate back to the checkpoint's size and restore every surviving
    cell's mutable state — bit-identical to the state at {!checkpoint}
    time, provided only appends and in-place cell mutations happened in
    between (parents and child order are never mutated after allocation).
    @raise Invalid_argument if the arena already shrank below the
    checkpoint. *)

val uri_time : t -> node -> timestamp
(** When the node became a resource: its creation timestamp, unless a later
    service call promoted it by adding the identifier (the node-3-to-r3
    promotion of Figure 4). *)

val set_uri_time : t -> node -> timestamp -> unit

(** {1 Name index} *)

type name_index
(** A snapshot index: element name → nodes in document order.  Built over
    a frozen document (post-execution inference never mutates); nodes
    added later are not covered. *)

val build_name_index : t -> name_index

val index_lookup : name_index -> string -> node list

val name_index_for : t -> name_index
(** The cached index for the document's current size, (re)built on demand
    after appends (sizes only grow, so staleness is a size comparison). *)
