(** Per-document evaluation index.

    A snapshot of derived structures over a {!Tree.t}, built in one
    traversal and amortized over the many pattern evaluations of post-hoc
    provenance inference:

    - {b nodes by label}: element name → nodes, document order — turns
      [//Name] steps into lookups;
    - {b nodes by attribute}: [(attr, value)] → nodes for the provenance
      attributes [@id], [@s] and [@t] — turns the service/identity guards
      the §4 rewriting injects into lookups;
    - {b pre/post-order intervals}: [descendant(a, n)] becomes two integer
      comparisons, so descendant steps from an inner context filter a
      label list instead of walking the subtree.

    The index is stamped with the arena size it covers: nodes appended
    later are not covered, and {!valid_for} turns false.  A caller that
    owns its index exclusively can catch up in place with {!extend}
    (amortized O(appended nodes), not O(document)); {!for_tree} keeps a
    small cache keyed by physical document identity, so frozen documents
    (the post-hoc case) build their index exactly once.

    Pre/post ranks are {e gapped} order keys rather than dense ranks:
    only their relative order is observable (through {!strictly_below} /
    {!below_or_self}), and the gaps are what let an appended fragment be
    keyed inside its parent's interval without renumbering the rest of
    the document. *)

type t

val build : Tree.t -> t
(** One full traversal: O(nodes) time and space. *)

(** {1 Event-driven ingest}

    The streaming counterpart of {!build}: the index is maintained {e
    during} parsing, one event at a time, so ingesting a document and
    indexing it are a single pass — no second traversal, no intermediate
    DOM.  Drive it with the node ids returned by the {!Tree} appends, in
    parser-event order: open every element before its children, report
    every text node, close elements innermost-first.  The finished index
    is indistinguishable from [build] over the finished tree (same keys,
    same postings, same sizes) and is seeded into the {!for_tree} cache.

    {!Weblab_xml.Ingest} packages the whole pipeline (parser events →
    arena appends → these hooks); use it unless you are wiring a custom
    event source. *)

type ingest
(** An index under construction, clocked by parser events. *)

val ingest_start : Tree.t -> ingest
(** Start indexing [tree], which must be empty (every node must be
    reported through the event hooks before {!ingest_finish}). *)

val ingest_open_element : ingest -> Tree.node -> unit
(** The element was just appended and its start tag is complete
    (attributes known). *)

val ingest_text : ingest -> Tree.node -> unit

val ingest_close_element : ingest -> Tree.node -> unit
(** @raise Invalid_argument if events are unbalanced. *)

val ingest_finish : ingest -> t
(** Seal the index; it satisfies [valid_for] for the ingested tree and
    is seeded into the {!for_tree} cache.
    @raise Invalid_argument if elements are still open or the events did
    not cover the arena. *)

val extend : t -> Tree.t -> promoted:Tree.node list -> bool
(** [extend t doc ~promoted] catches the index up with the arena in
    place: the appended tail [stamp t, size doc) is replayed in id order
    (appends are always last-child, so parents and preceding siblings are
    already keyed), postings are extended, interval keys are allocated
    inside the parent's free band, and subtree sizes are updated along
    the ancestor chains.  [promoted] lists committed nodes that gained
    attributes since they were indexed (URI promotion): their attribute
    postings are refreshed — the tail replay cannot see them.

    Returns [true] when the index now satisfies [valid_for t doc].
    Returns [false] — and the caller must fall back to {!build} — when:
    - the index was built from a different arena, or
    - the document generation changed (a {!Tree.restore} /
      {!Tree.truncate_to} rollback: in-place postings may reference
      discarded nodes, so rollbacks always invalidate), or
    - a key band is exhausted (too many appends under one parent since
      the last full build; the rebuild restores uniform gaps, so its cost
      is amortized over the appends that consumed the band).
    After a [false] the index refuses further extension and [valid_for]
    stays false; it must be discarded.

    Extension mutates the index: it is only safe on an index the caller
    owns exclusively (the {!for_tree} cache never extends, it rebuilds). *)

val for_tree : Tree.t -> t
(** The cached index for the document's current size, (re)built on
    demand; any append — and any rollback, via the arena generation —
    invalidates it.  The cache is a small capped LRU keyed on {!Tree.id},
    mutex-guarded and safe to call from multiple domains; the index is
    built outside the lock. *)

val cached_count : unit -> int
(** Number of live entries in the {!for_tree} cache (capped; for tests). *)

val valid_for : t -> Tree.t -> bool
(** [valid_for idx doc]: [idx] was built from this very [doc], no node
    has been appended since, and no rollback happened since. *)

val stamp : t -> int
(** The arena size the index was built at. *)

(** {1 Label and attribute lookups}

    All node lists are in document order. *)

val nodes_with_label : t -> string -> Tree.node list
(** Elements named [label]. *)

val label_count : t -> string -> int
(** [List.length (nodes_with_label t l)], O(1). *)

val elements : t -> Tree.node list
(** Every element node. *)

val indexed_attrs : string list
(** The attribute names covered by {!nodes_with_attr}: [["id"; "s"; "t"]]
    — the identifiers and service labels of the provenance model. *)

val attr_indexed : string -> bool

val nodes_with_attr : t -> string -> string -> Tree.node list
(** [nodes_with_attr t a v]: elements with [a="v"], for [a] in
    {!indexed_attrs} ([[]] for any other attribute). *)

val nodes_with_some_attr : t -> string -> Tree.node list
(** Elements carrying attribute [a] (any value), [a] in {!indexed_attrs}. *)

val resource : t -> string -> Tree.node option
(** [resource t u]: the first (document order) element with [@id = u] —
    an O(1) {!Tree.find_resource}. *)

(** {1 Structural tests (pre/post-order intervals)} *)

val strictly_below : t -> ancestor:Tree.node -> Tree.node -> bool
(** [n] is a proper descendant of [ancestor]: two integer comparisons. *)

val below_or_self : t -> ancestor:Tree.node -> Tree.node -> bool

val subtree_size : t -> Tree.node -> int
(** Number of nodes in the subtree rooted at [n] (including [n]). *)
