(* Growable arrays used by the node arena.  OCaml 5.1 has no Stdlib.Dynarray
   yet, so we carry a tiny implementation.  The [dummy] element fills unused
   slots and is never observable through the public API. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 16 dummy; size = 0; dummy }

let length v = v.size

(* Boundary failures carry the offending index and the live size: a
   long-lived server turns these into session-level error replies, and a
   bare constructor name is undiagnosable by then. *)
let out_of_bounds op i size =
  invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (size %d)" op i size)

let get v i =
  if i < 0 || i >= v.size then out_of_bounds "get" i v.size;
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then out_of_bounds "set" i v.size;
  v.data.(i) <- x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.size + 1);
  v.data.(v.size) <- x;
  v.size <- v.size + 1

(* Insert [x] at position [i], shifting the suffix right.  O(size - i):
   constant at the tail, where the index extension inserts almost always
   (appends land at the end of document order).  [i = size] is a legal
   append; the audit below pins that edge with regression tests. *)
let insert v i x =
  if i < 0 || i > v.size then out_of_bounds "insert" i v.size;
  ensure_capacity v (v.size + 1);
  Array.blit v.data i v.data (i + 1) (v.size - i);
  v.data.(i) <- x;
  v.size <- v.size + 1

(* Drop the suffix [n..size).  Dropped slots are reset to [dummy] so the
   array holds no reference to the removed elements. *)
let truncate v n =
  if n < 0 || n > v.size then out_of_bounds "truncate" n v.size;
  for i = n to v.size - 1 do
    v.data.(i) <- v.dummy
  done;
  v.size <- n

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.size - 1) []
