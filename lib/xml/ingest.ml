(* One-pass streaming ingest: parser events are appended straight into a
   fresh arena and, optionally, straight into an evaluation index —
   ingest *is* index maintenance.  No intermediate DOM, no second
   traversal, and the caller's read buffer can be reused between feeds
   (the parser copies pending bytes out). *)

type t = {
  doc : Tree.t;
  st : Xml_parser.state;
  ing : Index.ingest option;
}

let create ?preserve_whitespace ?(index = false) () =
  let doc = Tree.create () in
  let ing = if index then Some (Index.ingest_start doc) else None in
  let stack = ref [] in
  let on_event = function
    | Xml_parser.Start_element (name, attrs) ->
      let parent = match !stack with n :: _ -> n | [] -> Tree.no_node in
      let n = Tree.new_element ~attrs doc ~parent name in
      (match ing with Some i -> Index.ingest_open_element i n | None -> ());
      stack := n :: !stack
    | Xml_parser.Text s ->
      (match !stack with
      | parent :: _ ->
        let n = Tree.new_text doc ~parent s in
        (match ing with Some i -> Index.ingest_text i n | None -> ())
      | [] -> ())
    | Xml_parser.End_element _ ->
      (match !stack with
      | n :: rest ->
        (match ing with Some i -> Index.ingest_close_element i n | None -> ());
        stack := rest
      | [] -> ())
  in
  let st = Xml_parser.create ?preserve_whitespace ~on_event () in
  { doc; st; ing }

let doc t = t.doc

let feed t buf pos len = Xml_parser.feed t.st buf pos len

let feed_string t s = Xml_parser.feed_string t.st s

let finish t =
  Xml_parser.finish t.st;
  (* Bulk growth is over: drop the doubling slack before the document
     settles into its long inference-serving life. *)
  Tree.compact t.doc;
  (t.doc, Option.map Index.ingest_finish t.ing)

let of_string ?preserve_whitespace ?index s =
  let t = create ?preserve_whitespace ?index () in
  feed_string t s;
  finish t

let of_channel ?preserve_whitespace ?index ?(chunk_size = 65536) ic =
  let t = create ?preserve_whitespace ?index () in
  let buf = Bytes.create chunk_size in
  let rec loop () =
    let k = input ic buf 0 chunk_size in
    if k > 0 then begin
      feed t buf 0 k;
      loop ()
    end
  in
  loop ();
  finish t
