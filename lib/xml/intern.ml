(* Append-only string interning for the SoA arena.

   One table per document maps strings (element names, attribute names,
   attribute values, text content) to dense integer ids.  Ids are
   allocated in first-seen order and never reused or dropped, so they
   survive rollbacks for free: truncating the arena leaves stale entries
   in the dictionary, which is only wasted space, never a wrong answer.

   The read path ([get]) touches only the id -> string array — no hash
   table — so concurrent readers in other domains (parallel inference
   workers resolving labels) race at most with an array-double by the
   single writer, which OCaml array semantics make safe: they observe
   either the old or the new backing store, both of which carry every id
   they can legally hold. *)

type t = {
  mutable strings : string array;  (* id -> string, first [n] slots live *)
  mutable n : int;
  table : (string, int) Hashtbl.t;  (* string -> id, writer-side only *)
}

let create () = { strings = Array.make 64 ""; n = 0; table = Hashtbl.create 64 }

let count t = t.n

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
    let id = t.n in
    if id >= Array.length t.strings then begin
      let bigger = Array.make (2 * Array.length t.strings) "" in
      Array.blit t.strings 0 bigger 0 t.n;
      t.strings <- bigger
    end;
    t.strings.(id) <- s;
    t.n <- id + 1;
    Hashtbl.add t.table s id;
    id

(* Shrink the id array to its live prefix.  Writer-side only, like
   [intern]: concurrent readers observe either backing store, both of
   which hold every id they can legally ask for. *)
let compact t =
  if Array.length t.strings > max t.n 1 then
    t.strings <- Array.sub t.strings 0 (max t.n 1)

let get t id =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Intern.get: invalid id %d (count %d)" id t.n);
  t.strings.(id)
