(* Per-document evaluation index: nodes-by-label, nodes-by-attribute for
   the provenance attributes, and pre/post-order intervals.  Built in one
   DFS; see index.mli for the contract. *)

let indexed_attrs = [ "id"; "s"; "t" ]

let attr_indexed a = List.mem a indexed_attrs

type t = {
  tree : Tree.t;
  stamp : int;  (* arena size at build time *)
  gen : int;  (* arena generation at build time: detects rollbacks *)
  pre : int array;  (* preorder rank, -1 for nodes outside the tree *)
  post : int array;
  size : int array;  (* descendant-or-self count *)
  elements : Tree.node list;  (* all elements, document order *)
  by_label : (string, Tree.node list) Hashtbl.t;
  label_counts : (string, int) Hashtbl.t;
  by_attr : (string * string, Tree.node list) Hashtbl.t;
  some_attr : (string, Tree.node list) Hashtbl.t;
}

let push tbl key n =
  Hashtbl.replace tbl key (n :: Option.value ~default:[] (Hashtbl.find_opt tbl key))

(* Accumulation lists are built most-recent-first; one final reversal
   restores document order. *)
let rev_lists tbl = Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl

let build tree =
  let n = Tree.size tree in
  let pre = Array.make n (-1) and post = Array.make n (-1) in
  let size = Array.make n 0 in
  let by_label = Hashtbl.create 64 in
  let by_attr = Hashtbl.create 64 in
  let some_attr = Hashtbl.create 8 in
  let elements = ref [] in
  let clock = ref 0 in
  let rec visit node =
    pre.(node) <- !clock;
    incr clock;
    if Tree.is_element tree node then begin
      elements := node :: !elements;
      push by_label (Tree.name tree node) node;
      List.iter
        (fun (a, v) ->
          if attr_indexed a then begin
            push by_attr (a, v) node;
            push some_attr a node
          end)
        (Tree.attrs tree node)
    end;
    let sz = ref 1 in
    List.iter
      (fun child ->
        visit child;
        sz := !sz + size.(child))
      (Tree.children tree node);
    size.(node) <- !sz;
    post.(node) <- !clock;
    incr clock
  in
  if Tree.has_root tree then visit (Tree.root tree);
  rev_lists by_label;
  rev_lists by_attr;
  rev_lists some_attr;
  let label_counts = Hashtbl.create (Hashtbl.length by_label) in
  Hashtbl.iter (fun l ns -> Hashtbl.replace label_counts l (List.length ns)) by_label;
  { tree; stamp = n; gen = Tree.generation tree; pre; post; size;
    elements = List.rev !elements;
    by_label; label_counts; by_attr; some_attr }

let stamp t = t.stamp

let valid_for t doc =
  t.tree == doc && t.stamp = Tree.size doc && t.gen = Tree.generation doc

(* A tiny bounded cache keyed by physical document identity; the stamp
   detects appends and the generation detects rollbacks (a truncate
   followed by fresh appends can revisit an old size).  Eight entries
   cover every concurrent workload in the engine (one long-lived arena
   per execution) without pinning an unbounded set of dead documents.

   The cache is shared across the whole process, and inference may run in
   one domain while a parallel execution mutates another document in a
   second domain — so every access goes through [cache_mutex].  [build]
   itself runs outside the lock: it only reads the one tree the caller
   owns, and a racing duplicate build is harmless (last writer wins). *)
let max_cached = 8

let cache : (Tree.t * t) list ref = ref []

let cache_mutex = Mutex.create ()

let cache_find tree =
  Mutex.protect cache_mutex (fun () ->
      List.find_opt (fun (d, _) -> d == tree) !cache)

let cache_put tree idx =
  Mutex.protect cache_mutex (fun () ->
      let others = List.filter (fun (d, _) -> d != tree) !cache in
      cache :=
        (tree, idx)
        :: (if List.length others >= max_cached
            then List.filteri (fun i _ -> i < max_cached - 1) others
            else others))

let for_tree tree =
  match cache_find tree with
  | Some (_, idx) when valid_for idx tree -> idx
  | Some _ | None ->
    let idx = build tree in
    cache_put tree idx;
    idx

let nodes_with_label t l = Option.value ~default:[] (Hashtbl.find_opt t.by_label l)

let label_count t l = Option.value ~default:0 (Hashtbl.find_opt t.label_counts l)

let elements t = t.elements

let nodes_with_attr t a v =
  Option.value ~default:[] (Hashtbl.find_opt t.by_attr (a, v))

let nodes_with_some_attr t a =
  Option.value ~default:[] (Hashtbl.find_opt t.some_attr a)

let resource t u =
  match Hashtbl.find_opt t.by_attr ("id", u) with
  | Some (n :: _) -> Some n
  | Some [] | None -> None

let in_tree t n = n >= 0 && n < Array.length t.pre && t.pre.(n) >= 0

let strictly_below t ~ancestor n =
  in_tree t ancestor && in_tree t n
  && t.pre.(ancestor) < t.pre.(n)
  && t.post.(n) < t.post.(ancestor)

let below_or_self t ~ancestor n =
  in_tree t ancestor && in_tree t n
  && t.pre.(ancestor) <= t.pre.(n)
  && t.post.(n) <= t.post.(ancestor)

let subtree_size t n = if in_tree t n then t.size.(n) else 0
