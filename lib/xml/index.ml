(* Per-document evaluation index: nodes-by-label, nodes-by-attribute for
   the provenance attributes, and pre/post-order intervals.  Built in one
   DFS and — new — extensible in place when the arena grows by appends;
   see index.mli for the contract. *)

module T = Weblab_obs.Telemetry

let c_builds = T.counter "index.builds"
let c_cache_hit = T.counter "index.cache.hit"
let c_cache_miss = T.counter "index.cache.miss"
let c_extend_ok = T.counter "index.extend.ok"
let c_extend_fail = T.counter "index.extend.fail"
let c_ingests = T.counter "index.ingests"

let indexed_attrs = [ "id"; "s"; "t" ]

let attr_indexed a = List.mem a indexed_attrs

(* ----- Order keys -----

   Pre/post ranks are not dense: consecutive DFS events are [key_gap]
   apart, so a fragment appended later can be keyed *inside* its parent's
   interval without renumbering anything.  Only the order of keys matters
   to the interval tests; [subtree_size] is maintained separately.

   Appends always add a last child (Tree.new_element), so a new node [n]
   is keyed in the free band between its preceding sibling's post key (or
   the parent's pre key) and the parent's post key.  The node takes a
   bounded slice at the start of the band — [child_room] keys of interior,
   for its own future descendants — and leaves the rest to future
   siblings.  When a band is too narrow to split, the index declares
   itself exhausted and the caller falls back to a full rebuild: the
   rebuilt index starts from fresh uniform gaps, so the rebuild cost is
   amortized over the appends that consumed the band. *)

let key_gap = if Sys.int_size >= 63 then 1 lsl 30 else 1 lsl 10

let child_room = max 16 (key_gap lsr 14)

type t = {
  tree : Tree.t;
  mutable stamp : int;  (* arena prefix [0, stamp) covered *)
  gen : int;  (* arena generation at build time: detects rollbacks *)
  mutable pre : int array;  (* preorder key, -1 for nodes outside the tree *)
  mutable post : int array;
  mutable sizes : int array;  (* descendant-or-self count *)
  elements : Tree.node Vec.t;  (* all elements, document order *)
  by_label : (string, Tree.node Vec.t) Hashtbl.t;
  by_attr : (string * string, Tree.node Vec.t) Hashtbl.t;
  some_attr : (string, Tree.node Vec.t) Hashtbl.t;
  mutable exhausted : bool;  (* a key band ran out: refuse to extend *)
}

(* Postings are kept sorted by pre key = document order. *)
let posting tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = Vec.create ~dummy:Tree.no_node in
    Hashtbl.add tbl key v;
    v

(* First position whose pre key is >= [pre.(node)] — the insertion point,
   and the only place [node] can already sit (keys are unique). *)
let posting_pos t v node =
  let key = t.pre.(node) in
  let lo = ref 0 and hi = ref (Vec.length v) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.pre.(Vec.get v mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let posting_mem t v node =
  let i = posting_pos t v node in
  i < Vec.length v && Vec.get v i = node

let posting_insert t v node = Vec.insert v (posting_pos t v node) node

let add_element_postings t node =
  posting_insert t t.elements node;
  posting_insert t (posting t.by_label (Tree.name t.tree node)) node;
  List.iter
    (fun (a, v) ->
      if attr_indexed a then begin
        posting_insert t (posting t.by_attr (a, v)) node;
        posting_insert t (posting t.some_attr a) node
      end)
    (Tree.attrs t.tree node)

let build tree =
  T.incr c_builds;
  let n = Tree.size tree in
  let pre = Array.make (max n 1) (-1) and post = Array.make (max n 1) (-1) in
  let sizes = Array.make (max n 1) 0 in
  let t =
    { tree; stamp = n; gen = Tree.generation tree; pre; post; sizes;
      elements = Vec.create ~dummy:Tree.no_node;
      by_label = Hashtbl.create 64;
      by_attr = Hashtbl.create 64;
      some_attr = Hashtbl.create 8;
      exhausted = false }
  in
  let clock = ref 0 in
  let rec visit node =
    pre.(node) <- !clock * key_gap;
    incr clock;
    if Tree.is_element tree node then begin
      (* DFS visits in document order, so plain pushes keep the postings
         sorted by pre key. *)
      Vec.push t.elements node;
      Vec.push (posting t.by_label (Tree.name tree node)) node;
      List.iter
        (fun (a, v) ->
          if attr_indexed a then begin
            Vec.push (posting t.by_attr (a, v)) node;
            Vec.push (posting t.some_attr a) node
          end)
        (Tree.attrs tree node)
    end;
    let sz = ref 1 in
    List.iter
      (fun child ->
        visit child;
        sz := !sz + sizes.(child))
      (Tree.children tree node);
    sizes.(node) <- !sz;
    post.(node) <- !clock * key_gap;
    incr clock
  in
  if Tree.has_root tree then visit (Tree.root tree);
  t

let stamp t = t.stamp

let valid_for t doc =
  t.tree == doc && t.stamp = Tree.size doc && t.gen = Tree.generation doc

(* ----- In-place extension -----

   Replays the appended arena tail [stamp, size) in id order.  Appends
   only ever add a last child and fragments are materialized parent
   before children (new_element, copy_subtree), so when node [n] is
   processed its parent and preceding siblings already carry keys. *)

let ensure_arrays t n =
  if n > Array.length t.pre then begin
    let cap = max n (2 * Array.length t.pre) in
    let grow a default =
      let a' = Array.make cap default in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    t.pre <- grow t.pre (-1);
    t.post <- grow t.post (-1);
    t.sizes <- grow t.sizes 0
  end

let alloc_keys t node =
  let p = Tree.parent t.tree node in
  if p = Tree.no_node || t.pre.(p) < 0 then false
  else begin
    let prev =
      (* Walk the sibling chain directly: no child-list allocation. *)
      let rec find prev c =
        if c = node then prev else find c (Tree.next_sibling t.tree c)
      in
      find Tree.no_node (Tree.first_child t.tree p)
    in
    let lo = if prev = Tree.no_node then t.pre.(p) else t.post.(prev) in
    let hi = t.post.(p) in
    let room = hi - lo in
    let s = min (room / 8) child_room in
    if s < 2 then false
    else begin
      (* Nothing is ever inserted before a last child, so the node sits
         right after [lo]; the interior slice bounds how deep future
         appends can nest below it before a rebuild. *)
      t.pre.(node) <- lo + 1;
      t.post.(node) <- lo + 1 + s;
      true
    end
  end

let extend_node t node =
  if not (alloc_keys t node) then false
  else begin
    t.sizes.(node) <- 1;
    let rec bump p =
      if p <> Tree.no_node then begin
        t.sizes.(p) <- t.sizes.(p) + 1;
        bump (Tree.parent t.tree p)
      end
    in
    bump (Tree.parent t.tree node);
    if Tree.is_element t.tree node then add_element_postings t node;
    true
  end

(* Promoted nodes gained attributes after they were first indexed (URI
   promotion adds an "id" to a committed node); refresh their attribute
   postings.  Append semantics forbid removal or modification, so only
   insertions are needed. *)
let refresh_promoted t nodes =
  List.iter
    (fun node ->
      if node >= 0 && node < Array.length t.pre && t.pre.(node) >= 0
         && Tree.is_element t.tree node
      then
        List.iter
          (fun (a, v) ->
            if attr_indexed a then begin
              let va = posting t.by_attr (a, v) in
              if not (posting_mem t va node) then posting_insert t va node;
              let sa = posting t.some_attr a in
              if not (posting_mem t sa node) then posting_insert t sa node
            end)
          (Tree.attrs t.tree node))
    nodes

let extend t doc ~promoted =
  if t.exhausted || not (t.tree == doc) || t.gen <> Tree.generation doc
     || Tree.size doc < t.stamp
  then begin
    T.incr c_extend_fail;
    false
  end
  else begin
    let n = Tree.size doc in
    ensure_arrays t n;
    let ok = ref true in
    (try
       for node = t.stamp to n - 1 do
         if not (extend_node t node) then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    if not !ok then begin
      (* A partial extension leaves the postings inconsistent; the frozen
         stamp keeps [valid_for] false forever and the flag refuses any
         further extension.  The caller rebuilds. *)
      t.exhausted <- true;
      T.incr c_extend_fail;
      false
    end
    else begin
      t.stamp <- n;
      refresh_promoted t promoted;
      T.incr c_extend_ok;
      true
    end
  end

(* A tiny bounded LRU keyed by [Tree.id]; the stamp detects appends and
   the generation detects rollbacks (a truncate followed by fresh appends
   can revisit an old size).  Eight entries cover every concurrent
   workload in the engine (one long-lived arena per execution) without
   pinning an unbounded set of dead documents.

   Recency is a monotone tick: every hit restamps the entry (O(1) under
   the lock), and eviction scans the at-most-eight entries for the
   smallest tick.  The previous assoc-list version re-sorted the whole
   list on every insert ([List.length] + [List.filter] under the mutex);
   the table keeps the critical section to a find or a replace.

   The cache is shared across the whole process, and inference workers in
   other domains go through it whenever a caller did not pass an explicit
   index — so every access goes through [cache_mutex].  [build] itself
   runs outside the lock: it only reads the one tree the caller owns, and
   a racing duplicate build is harmless (last writer wins).

   Cached indexes are never extended in place: extension mutates the
   postings, and a racing domain could be reading them.  In-place
   extension is reserved for privately owned indexes (the Incremental
   backend holds its own); the shared cache always rebuilds. *)
let max_cached = 8

type cache_entry = { idx : t; mutable tick : int }

let cache : (int, cache_entry) Hashtbl.t = Hashtbl.create max_cached

let cache_tick = ref 0

let cache_mutex = Mutex.create ()

let cache_find tree =
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache (Tree.id tree) with
      | Some e ->
        incr cache_tick;
        e.tick <- !cache_tick;
        Some e.idx
      | None -> None)

let cache_put tree idx =
  Mutex.protect cache_mutex (fun () ->
      let key = Tree.id tree in
      if not (Hashtbl.mem cache key) && Hashtbl.length cache >= max_cached
      then begin
        (* Evict the least recently used entry: a bounded scan. *)
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, t) when t <= e.tick -> acc
              | _ -> Some (k, e.tick))
            cache None
        in
        match victim with
        | Some (k, _) -> Hashtbl.remove cache k
        | None -> ()
      end;
      incr cache_tick;
      Hashtbl.replace cache key { idx; tick = !cache_tick })

let cached_count () =
  Mutex.protect cache_mutex (fun () -> Hashtbl.length cache)

let for_tree tree =
  match cache_find tree with
  | Some idx when valid_for idx tree ->
    T.incr c_cache_hit;
    idx
  | Some _ | None ->
    T.incr c_cache_miss;
    let idx = build tree in
    cache_put tree idx;
    idx

(* ----- Event-driven ingest -----

   Builds the index *during* parsing instead of traversing the finished
   tree a second time.  The clock replicates [build]'s DFS walk exactly:
   an open event takes the next pre key, a text node takes a pre and a
   post key back to back, a close event takes the next post key — events
   arrive in document order, so plain pushes keep the postings sorted and
   the result is indistinguishable from [build] over the finished tree. *)

type ingest = {
  ing : t;
  mutable clock : int;
  mutable visited : int;  (* nodes keyed so far — the coverage counter *)
  mutable open_stack : (Tree.node * int) list;  (* node, [visited] at open *)
}

let ingest_start tree =
  T.incr c_ingests;
  { ing =
      { tree; stamp = 0; gen = Tree.generation tree;
        pre = Array.make 16 (-1); post = Array.make 16 (-1);
        sizes = Array.make 16 0;
        elements = Vec.create ~dummy:Tree.no_node;
        by_label = Hashtbl.create 64;
        by_attr = Hashtbl.create 64;
        some_attr = Hashtbl.create 8;
        exhausted = false };
    clock = 0; visited = 0; open_stack = [] }

let ingest_pre_key it node =
  ensure_arrays it.ing (node + 1);
  it.ing.pre.(node) <- it.clock * key_gap;
  it.clock <- it.clock + 1;
  it.visited <- it.visited + 1

let ingest_post_key it node =
  it.ing.post.(node) <- it.clock * key_gap;
  it.clock <- it.clock + 1

let ingest_open_element it node =
  it.open_stack <- (node, it.visited) :: it.open_stack;
  ingest_pre_key it node;
  let t = it.ing in
  Vec.push t.elements node;
  Vec.push (posting t.by_label (Tree.name t.tree node)) node;
  List.iter
    (fun (a, v) ->
      if attr_indexed a then begin
        Vec.push (posting t.by_attr (a, v)) node;
        Vec.push (posting t.some_attr a) node
      end)
    (Tree.attrs t.tree node)

let ingest_text it node =
  ingest_pre_key it node;
  it.ing.sizes.(node) <- 1;
  ingest_post_key it node

let ingest_close_element it node =
  (match it.open_stack with
  | (n, v0) :: rest when n = node ->
    it.ing.sizes.(node) <- it.visited - v0;
    it.open_stack <- rest
  | _ -> invalid_arg "Index.ingest_close_element: unbalanced events");
  ingest_post_key it node

let ingest_finish it =
  if it.open_stack <> [] then
    invalid_arg "Index.ingest_finish: unclosed elements";
  let t = it.ing in
  if it.visited <> Tree.size t.tree then
    invalid_arg "Index.ingest_finish: events did not cover the arena";
  t.stamp <- it.visited;
  (* Seed the shared cache: the first [for_tree] over a freshly ingested
     document is a hit, not a rebuild. *)
  cache_put t.tree t;
  t

let posting_list tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> Vec.to_list v
  | None -> []

let nodes_with_label t l = posting_list t.by_label l

let label_count t l =
  match Hashtbl.find_opt t.by_label l with
  | Some v -> Vec.length v
  | None -> 0

let elements t = Vec.to_list t.elements

let nodes_with_attr t a v = posting_list t.by_attr (a, v)

let nodes_with_some_attr t a = posting_list t.some_attr a

let resource t u =
  match Hashtbl.find_opt t.by_attr ("id", u) with
  | Some v when Vec.length v > 0 -> Some (Vec.get v 0)
  | Some _ | None -> None

let in_tree t n = n >= 0 && n < Array.length t.pre && t.pre.(n) >= 0

let strictly_below t ~ancestor n =
  in_tree t ancestor && in_tree t n
  && t.pre.(ancestor) < t.pre.(n)
  && t.post.(n) < t.post.(ancestor)

let below_or_self t ~ancestor n =
  in_tree t ancestor && in_tree t n
  && t.pre.(ancestor) <= t.pre.(n)
  && t.post.(n) <= t.post.(ancestor)

let subtree_size t n = if in_tree t n then t.sizes.(n) else 0
