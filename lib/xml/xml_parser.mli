(** A streaming XML parser covering the fragment WebLab documents use:
    one root element, attributes with single- or double-quoted values,
    character data with the five predefined entities and numeric character
    references, comments, CDATA sections and an optional XML declaration /
    DOCTYPE (skipped).  Namespace prefixes are kept as part of the name.

    The core is a pull/feed state machine: bytes arrive in chunks through
    {!feed} and SAX-style {!event}s are emitted as tokens complete.  Chunk
    boundaries may fall anywhere — mid-tag, mid-entity, mid-CDATA — and
    the event stream (and any error position) is invariant under
    re-chunking.  {!parse} is the one-chunk wrapper building a {!Tree.t}. *)

exception Error of { line : int; col : int; message : string }

val error_to_string : exn -> string
(** Render an {!Error} with its line/column position.  Total: any other
    exception renders through {!Printexc.to_string} — error reporting
    never raises, even when handed an exception it does not know. *)

(** {1 Streaming interface} *)

type event =
  | Start_element of string * (string * string) list
      (** Attributes in document order.  Self-closing elements emit
          [Start_element] immediately followed by [End_element]. *)
  | Text of string
      (** One merged character-data run: entities decoded, CDATA inlined,
          comments/PIs elided — emitted only when a child element starts
          or the enclosing tag closes.  Whitespace-only runs are dropped
          unless the parser preserves whitespace. *)
  | End_element of string

type state
(** An in-progress parse: position, partial token, open-element stack. *)

val create : ?preserve_whitespace:bool -> on_event:(event -> unit) -> unit -> state
(** A fresh parser.  [on_event] is called synchronously from {!feed} /
    {!finish} as events complete.  Whitespace-only text is dropped unless
    [preserve_whitespace] is [true] (default [false]). *)

val feed : state -> bytes -> int -> int -> unit
(** [feed st buf pos len] consumes the slice [buf[pos .. pos+len)].  The
    bytes are copied out before return where needed (pending character
    data), so the caller may reuse [buf] for the next read.
    @raise Error with a line/column position on malformed input.
    @raise Invalid_argument on an out-of-range slice or a finished parser. *)

val feed_string : state -> string -> unit
(** [feed] over a whole string. *)

val finish : state -> unit
(** Signal end of input; fails unless the parser sits exactly after a
    complete document (root closed, nothing but misc markup after).
    @raise Error when the input ended mid-document. *)

(** {1 Whole-string convenience} *)

val parse : ?preserve_whitespace:bool -> string -> Tree.t
(** Parse a document in one chunk.  Whitespace-only text nodes are
    dropped unless [preserve_whitespace] is [true] (default [false]).
    @raise Error with a line/column position on malformed input. *)

val parse_opt : ?preserve_whitespace:bool -> string -> (Tree.t, string) result
(** Non-raising variant. *)
