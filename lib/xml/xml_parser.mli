(** A hand-written XML parser covering the fragment WebLab documents use:
    one root element, attributes with single- or double-quoted values,
    character data with the five predefined entities and numeric character
    references, comments, CDATA sections and an optional XML declaration /
    DOCTYPE (skipped).  Namespace prefixes are kept as part of the name. *)

exception Error of { line : int; col : int; message : string }

val error_to_string : exn -> string
(** Render an {!Error} with its line/column position.  Total: any other
    exception renders through {!Printexc.to_string} — error reporting
    never raises, even when handed an exception it does not know. *)

val parse : ?preserve_whitespace:bool -> string -> Tree.t
(** Parse a document.  Whitespace-only text nodes are dropped unless
    [preserve_whitespace] is [true] (default [false]).
    @raise Error with a line/column position on malformed input. *)

val parse_opt : ?preserve_whitespace:bool -> string -> (Tree.t, string) result
(** Non-raising variant. *)
