(* Structure-of-arrays node arena.

   A node is an index into a set of parallel int arrays: parent /
   first-child / last-child / next-sibling links, a packed meta word
   (bit 0: element-vs-text, the remaining bits: creation timestamp), a
   dictionary id for the label (element name, or text content for text
   nodes), the uri-time, and the head of an attribute chain.  Attributes
   live in their own parallel arrays (name id, value id, next) whose
   entries are immutable once written — [set_attr] appends fresh entries
   and repoints the node's head, which is what makes checkpoints a flat
   word-per-node snapshot instead of a per-cell list copy.

   All strings go through the per-document {!Intern} dictionary, so a
   node costs a handful of machine words instead of a boxed record, a
   children vector and an assoc list.  Child ids are strictly increasing
   along every sibling chain (appends only ever add a last child), which
   keeps the rollback story of the old representation: the nodes with
   id >= n form a suffix of the arena and a suffix of every surviving
   node's child chain. *)

type node = int

type timestamp = int

let no_node = -1

type t = {
  uid : int;  (* process-unique: lets caches key on document identity *)
  dict : Intern.t;
  mutable n : int;  (* live node count; arrays are valid on [0, n) *)
  mutable parent : int array;
  mutable first_child : int array;
  mutable last_child : int array;
  mutable next_sibling : int array;
  mutable meta : int array;  (* bit 0: is_element; bits 1..: created *)
  mutable label : int array;  (* dict id: element name / text content *)
  mutable uri_time_a : int array;
  mutable attr_head : int array;  (* first attr entry, [no_node] if none *)
  (* Attribute entries: append-only and immutable once written. *)
  mutable attr_name : int array;  (* dict id *)
  mutable attr_value : int array;  (* dict id *)
  mutable attr_next : int array;
  mutable attrs_n : int;
  mutable root : node;
  mutable cached_index : (int * (string, node list) Hashtbl.t) option;
      (* name index stamped with the arena size it was built at; any
         append invalidates it (sizes only grow) *)
  mutable generation : int;
      (* bumped on every rollback (truncate/restore); lets size-stamped
         caches detect a truncate-then-regrow to the same size *)
}

(* An atomic counter, not a plain ref: documents are created from several
   domains (parallel inference spawns workers while another execution
   allocates documents). *)
let next_uid = Atomic.make 0

let initial_cap = 16

let create () =
  { uid = Atomic.fetch_and_add next_uid 1;
    dict = Intern.create ();
    n = 0;
    parent = Array.make initial_cap no_node;
    first_child = Array.make initial_cap no_node;
    last_child = Array.make initial_cap no_node;
    next_sibling = Array.make initial_cap no_node;
    meta = Array.make initial_cap 0;
    label = Array.make initial_cap 0;
    uri_time_a = Array.make initial_cap 0;
    attr_head = Array.make initial_cap no_node;
    attr_name = Array.make initial_cap 0;
    attr_value = Array.make initial_cap 0;
    attr_next = Array.make initial_cap no_node;
    attrs_n = 0;
    root = no_node;
    cached_index = None;
    generation = 0 }

let id t = t.uid

let size t = t.n

let generation t = t.generation

let check t n =
  if n < 0 || n >= t.n then
    invalid_arg
      (Printf.sprintf "Tree: invalid node id %d (arena size %d)" n t.n)

let has_root t = t.root <> no_node

let root t =
  if t.root = no_node then invalid_arg "Tree.root: empty document";
  t.root

(* ----- Growth ----- *)

let grow_int_array a cap used =
  let a' = Array.make cap 0 in
  Array.blit a 0 a' 0 used;
  a'

let ensure_node_capacity t =
  if t.n >= Array.length t.parent then begin
    let cap = 2 * Array.length t.parent in
    t.parent <- grow_int_array t.parent cap t.n;
    t.first_child <- grow_int_array t.first_child cap t.n;
    t.last_child <- grow_int_array t.last_child cap t.n;
    t.next_sibling <- grow_int_array t.next_sibling cap t.n;
    t.meta <- grow_int_array t.meta cap t.n;
    t.label <- grow_int_array t.label cap t.n;
    t.uri_time_a <- grow_int_array t.uri_time_a cap t.n;
    t.attr_head <- grow_int_array t.attr_head cap t.n
  end

let ensure_attr_capacity t =
  if t.attrs_n >= Array.length t.attr_name then begin
    let cap = 2 * Array.length t.attr_name in
    t.attr_name <- grow_int_array t.attr_name cap t.attrs_n;
    t.attr_value <- grow_int_array t.attr_value cap t.attrs_n;
    t.attr_next <- grow_int_array t.attr_next cap t.attrs_n
  end

(* Trim the doubling slack: every array shrinks to its live prefix.
   Purely a capacity operation — node ids, links and the rollback
   contract are untouched, and later appends simply grow again.  Worth
   calling once on a document that just finished bulk ingest and will
   now live for a long time (frozen documents keep ~2x their footprint
   otherwise). *)
let compact t =
  let cap = max t.n 1 and acap = max t.attrs_n 1 in
  let shrink a cap used = if Array.length a > cap then grow_int_array a cap used else a in
  t.parent <- shrink t.parent cap t.n;
  t.first_child <- shrink t.first_child cap t.n;
  t.last_child <- shrink t.last_child cap t.n;
  t.next_sibling <- shrink t.next_sibling cap t.n;
  t.meta <- shrink t.meta cap t.n;
  t.label <- shrink t.label cap t.n;
  t.uri_time_a <- shrink t.uri_time_a cap t.n;
  t.attr_head <- shrink t.attr_head cap t.n;
  t.attr_name <- shrink t.attr_name acap t.attrs_n;
  t.attr_value <- shrink t.attr_value acap t.attrs_n;
  t.attr_next <- shrink t.attr_next acap t.attrs_n;
  Intern.compact t.dict

(* ----- Construction ----- *)

let alloc t ~is_elem ~label parent =
  let id = t.n in
  ensure_node_capacity t;
  t.n <- id + 1;
  t.parent.(id) <- parent;
  t.first_child.(id) <- no_node;
  t.last_child.(id) <- no_node;
  t.next_sibling.(id) <- no_node;
  t.meta.(id) <- (if is_elem then 1 else 0);
  t.label.(id) <- label;
  t.uri_time_a.(id) <- 0;
  t.attr_head.(id) <- no_node;
  if parent <> no_node then begin
    let l = t.last_child.(parent) in
    if l = no_node then t.first_child.(parent) <- id
    else t.next_sibling.(l) <- id;
    t.last_child.(parent) <- id
  end;
  id

(* Append one immutable attribute entry; returns its index. *)
let alloc_attr t ~name_id ~value_id ~next =
  let e = t.attrs_n in
  ensure_attr_capacity t;
  t.attrs_n <- e + 1;
  t.attr_name.(e) <- name_id;
  t.attr_value.(e) <- value_id;
  t.attr_next.(e) <- next;
  e

(* Install an attribute list (document order) as a fresh chain. *)
let set_attr_list t n l =
  let head =
    List.fold_left
      (fun next (k, v) ->
        alloc_attr t ~name_id:(Intern.intern t.dict k)
          ~value_id:(Intern.intern t.dict v) ~next)
      no_node (List.rev l)
  in
  t.attr_head.(n) <- head

let new_element ?(attrs = []) t ~parent name =
  if parent = no_node && t.root <> no_node then
    invalid_arg "Tree.new_element: document already has a root";
  let id = alloc t ~is_elem:true ~label:(Intern.intern t.dict name) parent in
  if attrs <> [] then set_attr_list t id attrs;
  if parent = no_node then t.root <- id;
  id

let new_text t ~parent s =
  if parent = no_node then invalid_arg "Tree.new_text: text node cannot be root";
  alloc t ~is_elem:false ~label:(Intern.intern t.dict s) parent

(* ----- Accessors ----- *)

let is_element t n =
  check t n;
  t.meta.(n) land 1 = 1

let is_text t n =
  check t n;
  t.meta.(n) land 1 = 0

let name t n =
  check t n;
  if t.meta.(n) land 1 = 1 then Intern.get t.dict t.label.(n) else ""

let text t n =
  check t n;
  if t.meta.(n) land 1 = 0 then Intern.get t.dict t.label.(n) else ""

let parent t n =
  check t n;
  t.parent.(n)

let first_child t n =
  check t n;
  t.first_child.(n)

let last_child t n =
  check t n;
  t.last_child.(n)

let next_sibling t n =
  check t n;
  t.next_sibling.(n)

let iter_children t n f =
  check t n;
  let c = ref t.first_child.(n) in
  while !c <> no_node do
    let next = t.next_sibling.(!c) in
    f !c;
    c := next
  done

let children t n =
  check t n;
  let rec collect c acc =
    if c = no_node then List.rev acc
    else collect t.next_sibling.(c) (c :: acc)
  in
  collect t.first_child.(n) []

let nth_child t n i =
  check t n;
  if i < 0 then None
  else begin
    let c = ref t.first_child.(n) and k = ref i in
    while !c <> no_node && !k > 0 do
      c := t.next_sibling.(!c);
      decr k
    done;
    if !c = no_node then None else Some !c
  end

let attrs t n =
  check t n;
  let rec collect e acc =
    if e = no_node then List.rev acc
    else
      collect t.attr_next.(e)
        ((Intern.get t.dict t.attr_name.(e), Intern.get t.dict t.attr_value.(e))
        :: acc)
  in
  collect t.attr_head.(n) []

let attr t n k =
  check t n;
  let rec find e =
    if e = no_node then None
    else if String.equal (Intern.get t.dict t.attr_name.(e)) k then
      Some (Intern.get t.dict t.attr_value.(e))
    else find t.attr_next.(e)
  in
  find t.attr_head.(n)

(* [(k, v) :: List.remove_assoc k attrs], chain-style: a fresh key is a
   prepended entry; an existing key rebuilds the whole chain so no live
   entry is ever mutated (the checkpoint immutability invariant). *)
let set_attr t n k v =
  check t n;
  let exists =
    let rec probe e =
      e <> no_node
      && (String.equal (Intern.get t.dict t.attr_name.(e)) k
         || probe t.attr_next.(e))
    in
    probe t.attr_head.(n)
  in
  if not exists then
    t.attr_head.(n) <-
      alloc_attr t ~name_id:(Intern.intern t.dict k)
        ~value_id:(Intern.intern t.dict v) ~next:t.attr_head.(n)
  else
    set_attr_list t n
      ((k, v) :: List.remove_assoc k (attrs t n))

let set_text t n s =
  check t n;
  if t.meta.(n) land 1 = 1 then invalid_arg "Tree.set_text: not a text node";
  t.label.(n) <- Intern.intern t.dict s

let uri t n = attr t n "id"

let set_uri t n u = set_attr t n "id" u

let uri_time t n =
  check t n;
  t.uri_time_a.(n)

let set_uri_time t n ts =
  check t n;
  t.uri_time_a.(n) <- ts

let is_resource t n = is_element t n && uri t n <> None

let created t n =
  check t n;
  t.meta.(n) asr 1

let set_created t n ts =
  check t n;
  t.meta.(n) <- (ts lsl 1) lor (t.meta.(n) land 1)

let service_label t n =
  match attr t n "s", attr t n "t" with
  | Some s, Some ts -> (try Some (s, int_of_string ts) with Failure _ -> None)
  | _ -> None

let set_service_label t n s ts =
  set_attr t n "s" s;
  set_attr t n "t" (string_of_int ts)

(* ----- Traversal -----

   Preorder without a stack: follow first-child links down, next-sibling
   links across, and climb parents until a sibling appears or the subtree
   root is reached again.  Depth-proof by construction — million-node
   chains walk in constant space. *)

let iter_subtree t n f =
  check t n;
  let cur = ref n and running = ref true in
  while !running do
    f !cur;
    if t.first_child.(!cur) <> no_node then cur := t.first_child.(!cur)
    else begin
      let m = ref !cur and next = ref no_node in
      while !next = no_node && !m <> n do
        if t.next_sibling.(!m) <> no_node then next := t.next_sibling.(!m)
        else m := t.parent.(!m)
      done;
      if !next = no_node then running := false else cur := !next
    end
  done

let fold_subtree t n ~init ~f =
  let acc = ref init in
  iter_subtree t n (fun m -> acc := f !acc m);
  !acc

let descendant_or_self t n =
  List.rev (fold_subtree t n ~init:[] ~f:(fun acc m -> m :: acc))

let descendants t n =
  match descendant_or_self t n with
  | [] -> []
  | self :: rest ->
    assert (self = n);
    rest

let ancestors t n =
  let rec loop m acc =
    let p = parent t m in
    if p = no_node then List.rev acc else loop p (p :: acc)
  in
  loop n []

let is_ancestor t ~ancestor n =
  let rec loop m =
    let p = parent t m in
    if p = no_node then false else p = ancestor || loop p
  in
  loop n

let string_value t n =
  let buf = Buffer.create 64 in
  iter_subtree t n (fun m ->
      if t.meta.(m) land 1 = 0 then
        Buffer.add_string buf (Intern.get t.dict t.label.(m)));
  Buffer.contents buf

let document_order t =
  if t.root = no_node then [||]
  else Array.of_list (descendant_or_self t t.root)

let resources t =
  if t.root = no_node then []
  else List.filter (fun n -> is_resource t n) (descendant_or_self t t.root)

let find_resource t u =
  let found = ref None in
  (if t.root <> no_node then
     iter_subtree t t.root (fun n ->
         if !found = None && uri t n = Some u then found := Some n));
  !found

(* Explicit work stack (heap-allocated, not the OCaml call stack), popped
   in the same order the old recursion allocated: node, then its children
   left to right — so the copy's ids are bit-compatible with the
   recursive original. *)
let copy_subtree dst ~src n ~parent =
  check src n;
  let result = ref no_node in
  let stack = ref [ (n, parent) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (sn, dparent) :: rest ->
      let id =
        if is_element src sn then
          new_element dst ~attrs:(attrs src sn) ~parent:dparent (name src sn)
        else new_text dst ~parent:dparent (text src sn)
      in
      set_created dst id (created src sn);
      if !result = no_node then result := id;
      stack :=
        List.fold_left
          (fun acc c -> (c, id) :: acc)
          rest
          (List.rev (children src sn))
  done;
  !result

(* ----- Rollback primitives -----

   The arena is append-only from the services' point of view; rollback
   exists solely so the orchestrator can undo a *failed* call's partial
   appends.  Node ids are allocated in increasing order and linked as
   last children in that same order, so the nodes with id >= n form (a) a
   suffix of the arena and (b) a suffix of every surviving node's sibling
   chain — dropping them is a count reset plus one chain cut per parent
   that gained children. *)

let invalidate_caches t =
  t.cached_index <- None;
  t.generation <- t.generation + 1

(* [n = size] (nothing to drop, including the empty arena) is a legal
   no-op that must not bump the generation: size-stamped caches stay
   valid because nothing changed.  Pinned by regression tests. *)
let truncate_to t n =
  if n < 0 || n > t.n then
    invalid_arg
      (Printf.sprintf "Tree.truncate_to: boundary %d out of range (size %d)" n
         t.n);
  if n < t.n then begin
    for i = 0 to n - 1 do
      if t.last_child.(i) >= n then
        if t.first_child.(i) >= n then begin
          t.first_child.(i) <- no_node;
          t.last_child.(i) <- no_node
        end
        else begin
          (* Child ids increase along the chain: walk to the last
             survivor and cut the dropped suffix off. *)
          let c = ref t.first_child.(i) in
          while t.next_sibling.(!c) <> no_node && t.next_sibling.(!c) < n do
            c := t.next_sibling.(!c)
          done;
          t.next_sibling.(!c) <- no_node;
          t.last_child.(i) <- !c
        end
    done;
    t.n <- n;
    if t.root >= n then t.root <- no_node;
    invalidate_caches t
  end

type checkpoint = {
  ck_size : int;
  ck_root : node;
  ck_attrs_n : int;
  ck_meta : int array;
  ck_label : int array;
  ck_uri_time : int array;
  ck_attr_head : int array;
      (* per surviving node: packed kind+created, label id, uri_time and
         attribute chain head.  Attribute entries below [ck_attrs_n] are
         immutable, so restoring the heads restores the exact chains;
         links (parent/children) of surviving nodes are repaired by the
         truncation, which undoes the only mutation appends perform. *)
}

let checkpoint t =
  { ck_size = t.n;
    ck_root = t.root;
    ck_attrs_n = t.attrs_n;
    ck_meta = Array.sub t.meta 0 t.n;
    ck_label = Array.sub t.label 0 t.n;
    ck_uri_time = Array.sub t.uri_time_a 0 t.n;
    ck_attr_head = Array.sub t.attr_head 0 t.n }

let restore t ck =
  if t.n < ck.ck_size then
    invalid_arg
      (Printf.sprintf
         "Tree.restore: arena shrank below the checkpoint (size %d < %d)" t.n
         ck.ck_size);
  if ck.ck_size < t.n then truncate_to t ck.ck_size;
  t.root <- ck.ck_root;
  Array.blit ck.ck_meta 0 t.meta 0 ck.ck_size;
  Array.blit ck.ck_label 0 t.label 0 ck.ck_size;
  Array.blit ck.ck_uri_time 0 t.uri_time_a 0 ck.ck_size;
  Array.blit ck.ck_attr_head 0 t.attr_head 0 ck.ck_size;
  t.attrs_n <- ck.ck_attrs_n;
  (* Even at unchanged size the nodes may have been mutated in place. *)
  invalidate_caches t

let sorted_attrs l = List.sort compare l

let equal_subtree t1 n1 t2 n2 =
  (* Explicit pair stack: structural equality over arbitrarily deep
     chains without touching the call stack. *)
  let stack = ref [ (n1, n2) ] and ok = ref true in
  while !ok && !stack <> [] do
    match !stack with
    | [] -> ()
    | (a, b) :: rest ->
      stack := rest;
      (match is_element t1 a, is_element t2 b with
      | false, false -> ok := String.equal (text t1 a) (text t2 b)
      | true, true ->
        if
          String.equal (name t1 a) (name t2 b)
          && sorted_attrs (attrs t1 a) = sorted_attrs (attrs t2 b)
        then begin
          let ka = children t1 a and kb = children t2 b in
          if List.compare_lengths ka kb <> 0 then ok := false
          else stack := List.rev_append (List.combine ka kb) !stack
        end
        else ok := false
      | false, true | true, false -> ok := false)
  done;
  !ok

(* An element-name index: name -> nodes in document order.  Built once
   over a frozen document (post-execution inference never mutates), it
   turns //Name steps from quadratic scans into lookups.  The index is a
   snapshot: nodes added after [build_name_index] are not covered. *)
type name_index = (string, node list) Hashtbl.t

let build_name_index t : name_index =
  let tbl : (string, node list) Hashtbl.t = Hashtbl.create 64 in
  (if t.root <> no_node then
     iter_subtree t t.root (fun n ->
         if t.meta.(n) land 1 = 1 then begin
           let name = Intern.get t.dict t.label.(n) in
           Hashtbl.replace tbl name
             (n :: Option.value ~default:[] (Hashtbl.find_opt tbl name))
         end));
  (* reverse to document order *)
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl;
  tbl

let index_lookup (idx : name_index) name =
  Option.value ~default:[] (Hashtbl.find_opt idx name)

(* The cached index for the document's current size, (re)built on demand.
   Frozen documents — the post-hoc inference case — build it exactly
   once. *)
let name_index_for t =
  match t.cached_index with
  | Some (stamp, idx) when stamp = size t -> idx
  | Some _ | None ->
    let idx = build_name_index t in
    t.cached_index <- Some (size t, idx);
    idx
