type node = int

type timestamp = int

let no_node = -1

type kind =
  | Element of string
  | Text of string

type cell = {
  mutable kind : kind;
  mutable attrs : (string * string) list;
  mutable parent : node;
  children : node Vec.t;
  mutable created : timestamp;
  mutable uri_time : timestamp;
      (* when the node was promoted to a resource (= created unless a later
         call added the identifier, like node 3 of Figure 4) *)
}

type t = {
  uid : int;  (* process-unique: lets caches key on document identity *)
  cells : cell Vec.t;
  mutable root : node;
  mutable cached_index : (int * (string, node list) Hashtbl.t) option;
      (* name index stamped with the arena size it was built at; any
         append invalidates it (sizes only grow) *)
  mutable generation : int;
      (* bumped on every rollback (truncate/restore); lets size-stamped
         caches detect a truncate-then-regrow to the same size *)
}

let dummy_cell () =
  { kind = Text ""; attrs = []; parent = no_node;
    children = Vec.create ~dummy:no_node; created = 0; uri_time = 0 }

(* An atomic counter, not a plain ref: documents are created from several
   domains (parallel inference spawns workers while another execution
   allocates documents). *)
let next_uid = Atomic.make 0

let create () =
  { uid = Atomic.fetch_and_add next_uid 1;
    cells = Vec.create ~dummy:(dummy_cell ()); root = no_node;
    cached_index = None; generation = 0 }

let id t = t.uid

let size t = Vec.length t.cells

let generation t = t.generation

let cell t n =
  if n < 0 || n >= size t then
    invalid_arg
      (Printf.sprintf "Tree: invalid node id %d (arena size %d)" n (size t));
  Vec.get t.cells n

let has_root t = t.root <> no_node

let root t =
  if t.root = no_node then invalid_arg "Tree.root: empty document";
  t.root

let alloc t kind parent =
  let c = { kind; attrs = []; parent;
            children = Vec.create ~dummy:no_node; created = 0; uri_time = 0 } in
  let id = size t in
  Vec.push t.cells c;
  if parent <> no_node then Vec.push (cell t parent).children id;
  id

let new_element ?(attrs = []) t ~parent name =
  if parent = no_node && t.root <> no_node then
    invalid_arg "Tree.new_element: document already has a root";
  let id = alloc t (Element name) parent in
  (cell t id).attrs <- attrs;
  if parent = no_node then t.root <- id;
  id

let new_text t ~parent s =
  if parent = no_node then invalid_arg "Tree.new_text: text node cannot be root";
  alloc t (Text s) parent

let is_element t n = match (cell t n).kind with Element _ -> true | Text _ -> false
let is_text t n = match (cell t n).kind with Text _ -> true | Element _ -> false

let name t n = match (cell t n).kind with Element s -> s | Text _ -> ""
let text t n = match (cell t n).kind with Text s -> s | Element _ -> ""

let parent t n = (cell t n).parent
let children t n = Vec.to_list (cell t n).children

let nth_child t n i =
  let c = (cell t n).children in
  if i < 0 || i >= Vec.length c then None else Some (Vec.get c i)

let attrs t n = (cell t n).attrs
let attr t n k = List.assoc_opt k (cell t n).attrs

let set_attr t n k v =
  let c = cell t n in
  c.attrs <- (k, v) :: List.remove_assoc k c.attrs

let set_text t n s =
  let c = cell t n in
  match c.kind with
  | Text _ -> c.kind <- Text s
  | Element _ -> invalid_arg "Tree.set_text: not a text node"

let uri t n = attr t n "id"

let set_uri t n u = set_attr t n "id" u

let uri_time t n = (cell t n).uri_time

let set_uri_time t n ts = (cell t n).uri_time <- ts
let is_resource t n = is_element t n && uri t n <> None

let created t n = (cell t n).created
let set_created t n ts = (cell t n).created <- ts

let service_label t n =
  match attr t n "s", attr t n "t" with
  | Some s, Some ts -> (try Some (s, int_of_string ts) with Failure _ -> None)
  | _ -> None

let set_service_label t n s ts =
  set_attr t n "s" s;
  set_attr t n "t" (string_of_int ts)

let rec iter_subtree t n f =
  f n;
  Vec.iter (fun c -> iter_subtree t c f) (cell t n).children

let fold_subtree t n ~init ~f =
  let acc = ref init in
  iter_subtree t n (fun m -> acc := f !acc m);
  !acc

let descendant_or_self t n =
  List.rev (fold_subtree t n ~init:[] ~f:(fun acc m -> m :: acc))

let descendants t n =
  match descendant_or_self t n with
  | [] -> []
  | self :: rest ->
    assert (self = n);
    rest

let ancestors t n =
  let rec loop m acc =
    let p = parent t m in
    if p = no_node then List.rev acc else loop p (p :: acc)
  in
  loop n []

let is_ancestor t ~ancestor n =
  let rec loop m =
    let p = parent t m in
    if p = no_node then false else p = ancestor || loop p
  in
  loop n

let string_value t n =
  let buf = Buffer.create 64 in
  iter_subtree t n (fun m ->
      match (cell t m).kind with
      | Text s -> Buffer.add_string buf s
      | Element _ -> ());
  Buffer.contents buf

let document_order t =
  if t.root = no_node then [||]
  else Array.of_list (descendant_or_self t t.root)

let resources t =
  if t.root = no_node then []
  else List.filter (fun n -> is_resource t n) (descendant_or_self t t.root)

let find_resource t u =
  let found = ref None in
  (if t.root <> no_node then
     iter_subtree t t.root (fun n ->
         if !found = None && uri t n = Some u then found := Some n));
  !found

let rec copy_subtree dst ~src n ~parent =
  let id =
    match (Vec.get src.cells n).kind with
    | Element name ->
      let e = new_element dst ~parent name in
      (Vec.get dst.cells e).attrs <- (Vec.get src.cells n).attrs;
      e
    | Text s -> new_text dst ~parent s
  in
  set_created dst id (created src n);
  List.iter (fun c -> ignore (copy_subtree dst ~src c ~parent:id)) (children src n);
  id

(* ----- Rollback primitives -----

   The arena is append-only from the services' point of view; rollback
   exists solely so the orchestrator can undo a *failed* call's partial
   appends.  Node ids are allocated in increasing order and appended to
   their parent's children vector in that same order, so the nodes with
   id >= n form (a) a suffix of the cells vector and (b) a suffix of every
   surviving node's children vector — dropping them is two truncations. *)

let invalidate_caches t =
  t.cached_index <- None;
  t.generation <- t.generation + 1

(* [n = size] (nothing to drop, including the empty arena) is a legal
   no-op that must not bump the generation: size-stamped caches stay
   valid because nothing changed.  Pinned by regression tests. *)
let truncate_to t n =
  if n < 0 || n > size t then
    invalid_arg
      (Printf.sprintf "Tree.truncate_to: boundary %d out of range (size %d)" n
         (size t));
  if n < size t then begin
    for i = 0 to n - 1 do
      let ch = (Vec.get t.cells i).children in
      let keep = ref (Vec.length ch) in
      while !keep > 0 && Vec.get ch (!keep - 1) >= n do decr keep done;
      if !keep < Vec.length ch then Vec.truncate ch !keep
    done;
    Vec.truncate t.cells n;
    if t.root >= n then t.root <- no_node;
    invalidate_caches t
  end

type checkpoint = {
  ck_size : int;
  ck_root : node;
  ck_cells : (kind * (string * string) list * timestamp * timestamp) array;
      (* per surviving cell: kind, attrs, created, uri_time.  Parents and
         child order are never mutated after allocation, so this plus the
         two truncations restores the exact pre-checkpoint state. *)
}

let checkpoint t =
  { ck_size = size t;
    ck_root = t.root;
    ck_cells =
      Array.init (size t) (fun i ->
          let c = Vec.get t.cells i in
          (c.kind, c.attrs, c.created, c.uri_time)) }

let restore t ck =
  if size t < ck.ck_size then
    invalid_arg
      (Printf.sprintf
         "Tree.restore: arena shrank below the checkpoint (size %d < %d)"
         (size t) ck.ck_size);
  if ck.ck_size < size t then truncate_to t ck.ck_size;
  t.root <- ck.ck_root;
  Array.iteri
    (fun i (kind, attrs, created, uri_time) ->
      let c = Vec.get t.cells i in
      c.kind <- kind;
      c.attrs <- attrs;
      c.created <- created;
      c.uri_time <- uri_time)
    ck.ck_cells;
  (* Even at unchanged size the cells may have been mutated in place. *)
  invalidate_caches t

let sorted_attrs l = List.sort compare l

let rec equal_subtree t1 n1 t2 n2 =
  let c1 = cell t1 n1 and c2 = cell t2 n2 in
  match c1.kind, c2.kind with
  | Text s1, Text s2 -> String.equal s1 s2
  | Element a, Element b ->
    String.equal a b
    && sorted_attrs c1.attrs = sorted_attrs c2.attrs
    && Vec.length c1.children = Vec.length c2.children
    && begin
      let ok = ref true in
      Vec.iteri
        (fun i k1 -> if !ok then ok := equal_subtree t1 k1 t2 (Vec.get c2.children i))
        c1.children;
      !ok
    end
  | Text _, Element _ | Element _, Text _ -> false

(* An element-name index: name -> nodes in document order.  Built once
   over a frozen document (post-execution inference never mutates), it
   turns //Name steps from quadratic scans into lookups.  The index is a
   snapshot: nodes added after [build_name_index] are not covered. *)
type name_index = (string, node list) Hashtbl.t

let build_name_index t : name_index =
  let tbl : (string, node list) Hashtbl.t = Hashtbl.create 64 in
  (if t.root <> no_node then
     iter_subtree t t.root (fun n ->
         match (cell t n).kind with
         | Element name ->
           Hashtbl.replace tbl name
             (n :: Option.value ~default:[] (Hashtbl.find_opt tbl name))
         | Text _ -> ()));
  (* reverse to document order *)
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl;
  tbl

let index_lookup (idx : name_index) name =
  Option.value ~default:[] (Hashtbl.find_opt idx name)

(* The cached index for the document's current size, (re)built on demand.
   Frozen documents — the post-hoc inference case — build it exactly
   once. *)
let name_index_for t =
  match t.cached_index with
  | Some (stamp, idx) when stamp = size t -> idx
  | Some _ | None ->
    let idx = build_name_index t in
    t.cached_index <- Some (size t, idx);
    idx
