(** Append-only string interning: the dictionary side of the
    structure-of-arrays arena.

    Each document owns one table; element names, attribute names,
    attribute values and text content are stored once and referenced by
    dense integer id from the node arrays.  Ids are never reused, so they
    remain valid across {!Tree.truncate_to}/{!Tree.restore} rollbacks —
    stale dictionary entries cost space, not correctness. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** The id of [s], allocating one on first sight.  Writer-side only: must
    be called from the domain that owns the document. *)

val get : t -> int -> string
(** The string behind an id.  Read-only and safe to call concurrently
    with {!intern} from other domains.
    @raise Invalid_argument on an id never returned by {!intern}. *)

val count : t -> int
(** Number of distinct strings interned so far. *)

val compact : t -> unit
(** Trim the id array's growth slack.  Writer-side only; ids are
    unchanged and later interning grows again. *)
