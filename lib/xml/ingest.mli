(** One-pass streaming ingest: chunked bytes in, arena + index out.

    Couples the {!Xml_parser} event stream to {!Tree} appends and
    (optionally) the {!Index} event hooks, so parsing a document, building
    its arena and indexing it are a single pass over the input — no
    intermediate DOM and no post-parse traversal.  This is the path the
    serving daemon uses for client-supplied document states: the request
    body is materialized exactly once, as the arena itself. *)

type t
(** An in-progress ingest over a private fresh document. *)

val create : ?preserve_whitespace:bool -> ?index:bool -> unit -> t
(** A fresh pipeline.  With [index] (default [false]) the evaluation
    index is maintained event-by-event and returned by {!finish} —
    already seeded into the {!Index.for_tree} cache. *)

val doc : t -> Tree.t
(** The arena under construction (also available before {!finish}, e.g.
    for progress reporting; it holds the fully-parsed prefix). *)

val feed : t -> bytes -> int -> int -> unit
(** Consume one chunk; see {!Xml_parser.feed}.  The buffer may be reused
    after return.
    @raise Xml_parser.Error on malformed input. *)

val feed_string : t -> string -> unit

val finish : t -> Tree.t * Index.t option
(** Signal end of input and seal the result.  The index is [Some] iff
    [create] was passed [~index:true].
    @raise Xml_parser.Error when the input ended mid-document. *)

val of_string :
  ?preserve_whitespace:bool -> ?index:bool -> string -> Tree.t * Index.t option
(** Whole-string convenience: [create], one [feed], [finish]. *)

val of_channel :
  ?preserve_whitespace:bool ->
  ?index:bool ->
  ?chunk_size:int ->
  in_channel ->
  Tree.t * Index.t option
(** Read the channel to EOF in [chunk_size] (default 64 KiB) chunks. *)
