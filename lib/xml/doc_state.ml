(* Document states (the d_0 ⊑ d_1 ⊑ ... ⊑ d_n of Definition 2).

   Because the arena is append-only and every node records the timestamp of
   the service call that created it, the state of the document at time [t]
   is simply the restriction of the arena to nodes created at or before
   [t].  States are therefore cheap views, not copies. *)

type t = {
  doc : Tree.t;
  time : Tree.timestamp;
}

let at doc time = { doc; time }

let final doc = { doc; time = max_int }

let time s = s.time

let doc s = s.doc

let visible s n = Tree.created s.doc n <= s.time

(* All nodes of the state, document order. *)
let nodes s =
  if not (Tree.has_root s.doc) then []
  else
    Tree.descendant_or_self s.doc (Tree.root s.doc)
    |> List.filter (visible s)

let resources s = List.filter (fun n -> Tree.is_resource s.doc n) (nodes s)

(* Containment d ⊑_uri d' over two states of the same arena: true iff every
   node of [s1] is visible in [s2] — which, for states of one append-only
   document, reduces to comparing times. *)
let contains ~smaller ~larger =
  smaller.doc == larger.doc && smaller.time <= larger.time

(* The bag of resources d' \ d: roots of the fragments added strictly after
   [smaller.time] and at or before [larger.time].  A node is a fragment
   root if it is new but its parent is old (or it is the document root). *)
let added_fragment_roots ~smaller ~larger =
  if smaller.doc != larger.doc then
    invalid_arg "Doc_state.added_fragment_roots: states of different documents";
  nodes larger
  |> List.filter (fun n ->
         Tree.created larger.doc n > smaller.time
         &&
         let p = Tree.parent larger.doc n in
         p = Tree.no_node || Tree.created larger.doc p <= smaller.time)

let to_string ?indent s = Printer.to_string ?indent ~visible:(visible s) s.doc

(* Timestamp monotonicity along ancestor paths: the property §4 of the paper
   relies on to drop temporal tests on intermediate pattern steps. *)
let timestamps_monotonic doc =
  if not (Tree.has_root doc) then true
  else
    Tree.fold_subtree doc (Tree.root doc) ~init:true ~f:(fun ok n ->
        ok
        &&
        let p = Tree.parent doc n in
        p = Tree.no_node || Tree.created doc p <= Tree.created doc n)

(* Reconstruct per-node creation timestamps from the persisted @t labels —
   needed after a document is reloaded from the Resource Repository, since
   arena timestamps are session state, not serialized content.  Every
   resource carries its call's @t; the nodes of its fragment inherit it,
   and nodes above any labeled resource belong to the initial state.  This
   is exact for documents the Recorder produced (fragment roots are always
   labeled resources). *)
let restore_timestamps doc =
  if Tree.has_root doc then begin
    (* Explicit (node, inherited-timestamp) stack: reloaded documents can
       be arbitrarily deep, and each node depends only on its ancestor
       chain, so processing order across siblings is free. *)
    let stack = ref [ (Tree.root doc, 0) ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (n, inherited) :: rest ->
        stack := rest;
        let t =
          match Tree.attr doc n "t" with
          | Some s ->
            (match int_of_string_opt s with Some t -> t | None -> inherited)
          | None -> inherited
        in
        Tree.set_created doc n t;
        Tree.set_uri_time doc n t;
        Tree.iter_children doc n (fun k -> stack := (k, t) :: !stack)
    done
  end
