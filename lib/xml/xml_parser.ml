(* A streaming XML parser covering the fragment WebLab documents use:
   one root element, attributes with single- or double-quoted values,
   character data with the five predefined entities plus numeric character
   references, comments, CDATA sections, and an optional XML declaration.
   DTDs and processing instructions are skipped.  Namespace prefixes are
   kept as part of the element/attribute name.

   The parser is a character-level state machine fed incremental byte
   chunks ([feed]); SAX-style events are emitted as soon as a token
   completes, so a network daemon parses request bodies as they arrive —
   no whole-document string, no intermediate DOM.  Chunk boundaries may
   fall anywhere (mid-tag, mid-entity, mid-CDATA): every partial token is
   explicit parser state, so the event stream is invariant under
   re-chunking.  Unmarked character data takes a bulk fast path that
   memchr-scans the chunk and appends whole slices.  [parse] remains the
   one-chunk convenience wrapper building a {!Tree.t}. *)

exception Error of { line : int; col : int; message : string }

(* Total: callers hand it whatever escaped from [parse] — typically an
   {!Error}, but a daemon reporting a malformed client document must never
   crash inside error *reporting* itself, so every other exception (and
   every future [Error] payload shape) also renders descriptively. *)
let error_to_string = function
  | Error { line; col; message } ->
    Printf.sprintf "XML parse error at %d:%d: %s" line col message
  | Invalid_argument msg -> "XML parse error: invalid argument: " ^ msg
  | Failure msg -> "XML parse error: " ^ msg
  | e -> "XML parse error: " ^ Printexc.to_string e

type event =
  | Start_element of string * (string * string) list
  | Text of string
  | End_element of string

(* One constructor per partial token: a chunk may end anywhere, and the
   machine resumes from exactly that character. *)
type mode =
  | M_misc  (* prolog/epilog: whitespace and misc markup between tags *)
  | M_content  (* inside an element: character data accumulates *)
  | M_lt  (* '<' consumed *)
  | M_bang  (* "<!" *)
  | M_comment_open  (* "<!-" *)
  | M_comment
  | M_comment_dash  (* '-' seen inside a comment *)
  | M_comment_dash2  (* "--" seen inside a comment *)
  | M_pi  (* inside "<?...": skipped *)
  | M_pi_q  (* '?' seen inside a PI *)
  | M_doctype of int  (* prefix of "DOCTYPE" matched so far *)
  | M_doctype_body  (* skipping to '>' *)
  | M_cdata_open of int  (* after "<![": prefix of "CDATA[" matched *)
  | M_cdata
  | M_cdata_rb  (* ']' seen inside CDATA *)
  | M_cdata_rb2  (* "]]" seen inside CDATA *)
  | M_stag_name  (* start-tag name characters *)
  | M_stag_space  (* inside a start tag, between attributes *)
  | M_attr_name
  | M_attr_eq  (* expecting '=' *)
  | M_attr_value_start  (* expecting the opening quote *)
  | M_attr_value  (* inside a quoted value *)
  | M_entity  (* after '&', accumulating up to ';' *)
  | M_stag_slash  (* '/' seen inside a start tag: expecting '>' *)
  | M_etag_name  (* after "</" *)
  | M_etag_end  (* after the closing-tag name: expecting '>' *)

type state = {
  on_event : event -> unit;
  preserve_whitespace : bool;
  mutable line : int;
  mutable col : int;  (* position of the next unconsumed character *)
  mutable mode : mode;
  name_buf : Buffer.t;  (* element / attribute name being read *)
  text_buf : Buffer.t;  (* pending character data: one future Text event *)
  val_buf : Buffer.t;  (* attribute value being read *)
  ent_buf : Buffer.t;  (* entity name being read *)
  mutable attrs_rev : (string * string) list;
  mutable tag_name : string;
  mutable attr_name : string;
  mutable quote : char;
  mutable stack : string list;  (* open element names, innermost first *)
  mutable depth : int;
  mutable ent_in_attr : bool;  (* the open entity belongs to a value *)
  mutable seen_root : bool;
  mutable lt_line : int;  (* position of the last '<': error anchoring *)
  mutable lt_col : int;
  mutable finished : bool;
}

let create ?(preserve_whitespace = false) ~on_event () =
  { on_event; preserve_whitespace; line = 1; col = 1; mode = M_misc;
    name_buf = Buffer.create 16; text_buf = Buffer.create 64;
    val_buf = Buffer.create 16; ent_buf = Buffer.create 8; attrs_rev = [];
    tag_name = ""; attr_name = ""; quote = '"'; stack = []; depth = 0;
    ent_in_attr = false; seen_root = false; lt_line = 1; lt_col = 1;
    finished = false }

let fail st message = raise (Error { line = st.line; col = st.col; message })

let fail_at line col message = raise (Error { line; col; message })

(* Consume [c]: the position now points past it. *)
let adv st c =
  if c = '\n' then begin
    st.line <- st.line + 1;
    st.col <- 1
  end
  else st.col <- st.col + 1

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_blank s = String.for_all is_space s

let in_epilog st = st.depth = 0 && st.seen_root

(* "<!" followed by something that is neither a comment nor (where legal)
   CDATA/DOCTYPE: report the same error, at the same position, as the
   whole-string parser did. *)
let bang_fail st =
  if in_epilog st then
    fail_at st.lt_line st.lt_col "trailing content after the root element"
  else fail_at st.lt_line (st.lt_col + 1) "expected a name"

let end_markup_mode st = if st.depth > 0 then M_content else M_misc

(* Emit the pending character data as one Text event — called only when a
   child element starts or the enclosing tag closes, so text interleaved
   with comments, PIs, CDATA and entities merges into a single node,
   exactly as the recursive parser's per-content buffer did. *)
let flush_text st =
  if Buffer.length st.text_buf > 0 then begin
    let s = Buffer.contents st.text_buf in
    Buffer.clear st.text_buf;
    if st.preserve_whitespace || not (is_blank s) then st.on_event (Text s)
  end

let emit_start st ~self_closing =
  let attrs = List.rev st.attrs_rev in
  st.attrs_rev <- [];
  st.seen_root <- true;
  st.on_event (Start_element (st.tag_name, attrs));
  if self_closing then begin
    st.on_event (End_element st.tag_name);
    st.mode <- end_markup_mode st
  end
  else begin
    st.stack <- st.tag_name :: st.stack;
    st.depth <- st.depth + 1;
    st.mode <- M_content
  end

(* XML 1.0 §2.2: the characters a numeric reference may denote. *)
let is_valid_xml_char c =
  c = 0x9 || c = 0xA || c = 0xD
  || (c >= 0x20 && c <= 0xD7FF)
  || (c >= 0xE000 && c <= 0xFFFD)
  || (c >= 0x10000 && c <= 0x10FFFF)

(* Decode one entity reference ('&' and ';' both consumed). *)
let decode_entity st ent =
  match ent with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | ent ->
    let code =
      if String.length ent > 2 && ent.[0] = '#' && (ent.[1] = 'x' || ent.[1] = 'X')
      then int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
      else if String.length ent > 1 && ent.[0] = '#' then
        int_of_string_opt (String.sub ent 1 (String.length ent - 1))
      else None
    in
    (match code with
     | Some c when not (is_valid_xml_char c) ->
       fail st
         (Printf.sprintf
            "invalid character reference &%s;: not an XML character" ent)
     | Some c when c < 128 -> String.make 1 (Char.chr c)
     | Some c ->
       (* Encode as UTF-8 (c <= 0x10FFFF after validation). *)
       let b = Buffer.create 4 in
       if c < 0x800 then begin
         Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
         Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
       end
       else if c < 0x10000 then begin
         Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
         Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
       end
       else begin
         Buffer.add_char b (Char.chr (0xF0 lor (c lsr 18)));
         Buffer.add_char b (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
       end;
       Buffer.contents b
     | None -> fail st (Printf.sprintf "unknown entity &%s;" ent))

(* Process one character.  Invariant: on entry [st.line]/[st.col] is the
   position OF [c]; a branch either consumes it ([adv], position moves
   past), fails without consuming (error at [c]), or re-dispatches it
   under a new mode. *)
let rec handle st c =
  match st.mode with
  | M_misc ->
    if is_space c then adv st c
    else if c = '<' then begin
      st.lt_line <- st.line;
      st.lt_col <- st.col;
      adv st c;
      st.mode <- M_lt
    end
    else if st.seen_root then fail st "trailing content after the root element"
    else fail st "expected a root element"
  | M_content ->
    if c = '<' then begin
      st.lt_line <- st.line;
      st.lt_col <- st.col;
      adv st c;
      st.mode <- M_lt
    end
    else if c = '&' then begin
      adv st c;
      st.ent_in_attr <- false;
      Buffer.clear st.ent_buf;
      st.mode <- M_entity
    end
    else begin
      adv st c;
      Buffer.add_char st.text_buf c
    end
  | M_lt ->
    if in_epilog st then begin
      if c = '!' then begin
        adv st c;
        st.mode <- M_bang
      end
      else if c = '?' then begin
        adv st c;
        st.mode <- M_pi
      end
      else
        fail_at st.lt_line st.lt_col "trailing content after the root element"
    end
    else if c = '!' then begin
      adv st c;
      st.mode <- M_bang
    end
    else if c = '?' then begin
      adv st c;
      st.mode <- M_pi
    end
    else if c = '/' && st.depth > 0 then begin
      adv st c;
      flush_text st;
      Buffer.clear st.name_buf;
      st.mode <- M_etag_name
    end
    else if is_name_start c then begin
      flush_text st;
      Buffer.clear st.name_buf;
      st.mode <- M_stag_name;
      handle st c
    end
    else fail st "expected a name"
  | M_stag_name ->
    if is_name_char c then begin
      adv st c;
      Buffer.add_char st.name_buf c
    end
    else begin
      st.tag_name <- Buffer.contents st.name_buf;
      st.attrs_rev <- [];
      st.mode <- M_stag_space;
      handle st c
    end
  | M_stag_space ->
    if is_space c then adv st c
    else if is_name_start c then begin
      Buffer.clear st.name_buf;
      st.mode <- M_attr_name;
      handle st c
    end
    else if c = '/' then begin
      adv st c;
      st.mode <- M_stag_slash
    end
    else if c = '>' then begin
      adv st c;
      emit_start st ~self_closing:false
    end
    else fail st "expected '>' or '/>'"
  | M_attr_name ->
    if is_name_char c then begin
      adv st c;
      Buffer.add_char st.name_buf c
    end
    else begin
      st.attr_name <- Buffer.contents st.name_buf;
      st.mode <- M_attr_eq;
      handle st c
    end
  | M_attr_eq ->
    if is_space c then adv st c
    else if c = '=' then begin
      adv st c;
      st.mode <- M_attr_value_start
    end
    else fail st "expected '=' after attribute name"
  | M_attr_value_start ->
    if is_space c then adv st c
    else if c = '"' || c = '\'' then begin
      adv st c;
      st.quote <- c;
      Buffer.clear st.val_buf;
      st.mode <- M_attr_value
    end
    else begin
      (* The recursive parser consumed the offending character before
         noticing; keep its error position. *)
      adv st c;
      fail st "expected a quoted attribute value"
    end
  | M_attr_value ->
    if c = st.quote then begin
      adv st c;
      st.attrs_rev <-
        (st.attr_name, Buffer.contents st.val_buf) :: st.attrs_rev;
      st.mode <- M_stag_space
    end
    else if c = '&' then begin
      adv st c;
      st.ent_in_attr <- true;
      Buffer.clear st.ent_buf;
      st.mode <- M_entity
    end
    else begin
      adv st c;
      Buffer.add_char st.val_buf c
    end
  | M_entity ->
    if c = ';' then begin
      adv st c;
      let s = decode_entity st (Buffer.contents st.ent_buf) in
      if st.ent_in_attr then begin
        Buffer.add_string st.val_buf s;
        st.mode <- M_attr_value
      end
      else begin
        Buffer.add_string st.text_buf s;
        st.mode <- M_content
      end
    end
    else begin
      adv st c;
      Buffer.add_char st.ent_buf c
    end
  | M_stag_slash ->
    if c = '>' then begin
      adv st c;
      emit_start st ~self_closing:true
    end
    else fail st "expected '>' or '/>'"
  | M_etag_name ->
    if Buffer.length st.name_buf = 0 then begin
      if is_name_start c then begin
        adv st c;
        Buffer.add_char st.name_buf c
      end
      else fail st "expected a name"
    end
    else if is_name_char c then begin
      adv st c;
      Buffer.add_char st.name_buf c
    end
    else begin
      st.mode <- M_etag_end;
      handle st c
    end
  | M_etag_end ->
    if is_space c then adv st c
    else if c = '>' then begin
      adv st c;
      let close = Buffer.contents st.name_buf in
      (match st.stack with
       | parent :: rest ->
         if not (String.equal close parent) then
           fail st
             (Printf.sprintf "closing tag </%s> does not match <%s>" close
                parent);
         st.on_event (End_element close);
         st.stack <- rest;
         st.depth <- st.depth - 1;
         st.mode <- end_markup_mode st
       | [] ->
         (* Unreachable: M_etag_* is only entered with depth > 0. *)
         fail st "unmatched closing tag")
    end
    else fail st "expected '>' in closing tag"
  | M_bang ->
    if c = '-' then begin
      adv st c;
      st.mode <- M_comment_open
    end
    else if st.depth > 0 && c = '[' then begin
      adv st c;
      st.mode <- M_cdata_open 0
    end
    else if st.depth = 0 && c = 'D' then begin
      adv st c;
      st.mode <- M_doctype 1
    end
    else bang_fail st
  | M_comment_open ->
    if c = '-' then begin
      adv st c;
      st.mode <- M_comment
    end
    else bang_fail st
  | M_comment ->
    adv st c;
    if c = '-' then st.mode <- M_comment_dash
  | M_comment_dash ->
    adv st c;
    st.mode <- (if c = '-' then M_comment_dash2 else M_comment)
  | M_comment_dash2 ->
    adv st c;
    if c = '>' then st.mode <- end_markup_mode st
    else if c <> '-' then st.mode <- M_comment
  | M_pi ->
    adv st c;
    if c = '?' then st.mode <- M_pi_q
  | M_pi_q ->
    adv st c;
    if c = '>' then st.mode <- end_markup_mode st
    else if c <> '?' then st.mode <- M_pi
  | M_doctype k ->
    if c = "DOCTYPE".[k] then begin
      adv st c;
      st.mode <- (if k = 6 then M_doctype_body else M_doctype (k + 1))
    end
    else bang_fail st
  | M_doctype_body ->
    adv st c;
    if c = '>' then st.mode <- end_markup_mode st
  | M_cdata_open k ->
    if c = "CDATA[".[k] then begin
      adv st c;
      st.mode <- (if k = 5 then M_cdata else M_cdata_open (k + 1))
    end
    else bang_fail st
  | M_cdata ->
    adv st c;
    if c = ']' then st.mode <- M_cdata_rb else Buffer.add_char st.text_buf c
  | M_cdata_rb ->
    adv st c;
    if c = ']' then st.mode <- M_cdata_rb2
    else begin
      Buffer.add_char st.text_buf ']';
      Buffer.add_char st.text_buf c;
      st.mode <- M_cdata
    end
  | M_cdata_rb2 ->
    adv st c;
    if c = '>' then st.mode <- M_content
    else if c = ']' then Buffer.add_char st.text_buf ']'
    else begin
      Buffer.add_string st.text_buf "]]";
      Buffer.add_char st.text_buf c;
      st.mode <- M_cdata
    end

(* Advance line/col over the consumed slice [i, j). *)
let advance_run st buf i j =
  let line = ref st.line and col = ref st.col in
  for k = i to j - 1 do
    if Bytes.unsafe_get buf k = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  st.line <- !line;
  st.col <- !col

let feed st buf pos len =
  if st.finished then invalid_arg "Xml_parser.feed: parser already finished";
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg
      (Printf.sprintf "Xml_parser.feed: slice (%d, %d) out of bounds (%d)" pos
         len (Bytes.length buf));
  let limit = pos + len in
  let i = ref pos in
  while !i < limit do
    let c = Bytes.unsafe_get buf !i in
    match st.mode with
    | M_content when c <> '<' && c <> '&' ->
      (* Bulk run: append the whole unmarked slice at once. *)
      let j = ref (!i + 1) in
      while
        !j < limit
        &&
        let c = Bytes.unsafe_get buf !j in
        c <> '<' && c <> '&'
      do
        incr j
      done;
      Buffer.add_subbytes st.text_buf buf !i (!j - !i);
      advance_run st buf !i !j;
      i := !j
    | M_cdata when c <> ']' ->
      let j = ref (!i + 1) in
      while !j < limit && Bytes.unsafe_get buf !j <> ']' do
        incr j
      done;
      Buffer.add_subbytes st.text_buf buf !i (!j - !i);
      advance_run st buf !i !j;
      i := !j
    | M_attr_value when c <> st.quote && c <> '&' ->
      let j = ref (!i + 1) in
      while
        !j < limit
        &&
        let c = Bytes.unsafe_get buf !j in
        c <> st.quote && c <> '&'
      do
        incr j
      done;
      Buffer.add_subbytes st.val_buf buf !i (!j - !i);
      advance_run st buf !i !j;
      i := !j
    | _ ->
      handle st c;
      incr i
  done

let feed_string st s = feed st (Bytes.unsafe_of_string s) 0 (String.length s)

let finish st =
  if st.finished then invalid_arg "Xml_parser.finish: parser already finished";
  st.finished <- true;
  match st.mode with
  | M_misc -> if not st.seen_root then fail st "expected a root element"
  | M_content -> fail st "unexpected end of input inside an element"
  | M_lt ->
    if in_epilog st then
      fail_at st.lt_line st.lt_col "trailing content after the root element"
    else fail st "expected a name"
  | M_bang | M_comment_open | M_doctype _ | M_cdata_open _ -> bang_fail st
  | M_comment | M_comment_dash | M_comment_dash2 -> fail st "unterminated comment"
  | M_pi | M_pi_q -> fail st "unterminated processing instruction"
  | M_doctype_body -> fail st "unterminated DOCTYPE"
  | M_cdata | M_cdata_rb | M_cdata_rb2 -> fail st "unterminated CDATA section"
  | M_stag_name | M_stag_space | M_stag_slash -> fail st "expected '>' or '/>'"
  | M_attr_name | M_attr_eq -> fail st "expected '=' after attribute name"
  | M_attr_value_start -> fail st "expected a quoted attribute value"
  | M_attr_value -> fail st "unterminated attribute value"
  | M_entity -> fail st "unterminated entity reference"
  | M_etag_name ->
    if Buffer.length st.name_buf = 0 then fail st "expected a name"
    else fail st "expected '>' in closing tag"
  | M_etag_end -> fail st "expected '>' in closing tag"

(* ----- Tree building (the one-chunk wrapper) ----- *)

let tree_builder () =
  let doc = Tree.create () in
  let stack = ref [] in
  let on_event = function
    | Start_element (name, attrs) ->
      let parent = match !stack with n :: _ -> n | [] -> Tree.no_node in
      stack := Tree.new_element ~attrs doc ~parent name :: !stack
    | Text s ->
      (match !stack with
       | parent :: _ -> ignore (Tree.new_text doc ~parent s)
       | [] -> ())
    | End_element _ ->
      (match !stack with _ :: rest -> stack := rest | [] -> ())
  in
  (doc, on_event)

let parse ?preserve_whitespace input =
  let doc, on_event = tree_builder () in
  let st = create ?preserve_whitespace ~on_event () in
  feed_string st input;
  finish st;
  doc

let parse_opt ?preserve_whitespace input =
  match parse ?preserve_whitespace input with
  | doc -> Ok doc
  | exception (Error _ as e) -> Error (error_to_string e)
