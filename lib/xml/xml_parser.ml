(* A hand-written XML parser covering the fragment WebLab documents use:
   one root element, attributes with single- or double-quoted values,
   character data with the five predefined entities plus numeric character
   references, comments, CDATA sections, and an optional XML declaration.
   DTDs and processing instructions are skipped.  Namespace prefixes are
   kept as part of the element/attribute name. *)

exception Error of { line : int; col : int; message : string }

(* Total: callers hand it whatever escaped from [parse] — typically an
   {!Error}, but a daemon reporting a malformed client document must never
   crash inside error *reporting* itself, so every other exception (and
   every future [Error] payload shape) also renders descriptively. *)
let error_to_string = function
  | Error { line; col; message } ->
    Printf.sprintf "XML parse error at %d:%d: %s" line col message
  | Invalid_argument msg -> "XML parse error: invalid argument: " ^ msg
  | Failure msg -> "XML parse error: " ^ msg
  | e -> "XML parse error: " ^ Printexc.to_string e

type lexer = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let fail lx message = raise (Error { line = lx.line; col = lx.col; message })

let eof lx = lx.pos >= String.length lx.input

let peek lx = if eof lx then '\000' else lx.input.[lx.pos]

let peek2 lx =
  if lx.pos + 1 >= String.length lx.input then '\000' else lx.input.[lx.pos + 1]

let advance lx =
  if not (eof lx) then begin
    (if lx.input.[lx.pos] = '\n' then begin
       lx.line <- lx.line + 1;
       lx.col <- 1
     end
     else lx.col <- lx.col + 1);
    lx.pos <- lx.pos + 1
  end

let next lx =
  let c = peek lx in
  advance lx;
  c

let looking_at lx s =
  let n = String.length s in
  lx.pos + n <= String.length lx.input && String.sub lx.input lx.pos n = s

let skip_string lx s = String.iter (fun _ -> advance lx) s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces lx =
  while (not (eof lx)) && is_space (peek lx) do
    advance lx
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name lx =
  if not (is_name_start (peek lx)) then fail lx "expected a name";
  let buf = Buffer.create 8 in
  while (not (eof lx)) && is_name_char (peek lx) do
    Buffer.add_char buf (next lx)
  done;
  Buffer.contents buf

(* Decode one entity reference; the leading '&' has been consumed. *)
let read_entity lx =
  let buf = Buffer.create 8 in
  while (not (eof lx)) && peek lx <> ';' do
    Buffer.add_char buf (next lx)
  done;
  if eof lx then fail lx "unterminated entity reference";
  advance lx;
  match Buffer.contents buf with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | ent ->
    let code =
      if String.length ent > 2 && ent.[0] = '#' && (ent.[1] = 'x' || ent.[1] = 'X')
      then int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
      else if String.length ent > 1 && ent.[0] = '#' then
        int_of_string_opt (String.sub ent 1 (String.length ent - 1))
      else None
    in
    (match code with
     | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
     | Some c ->
       (* Encode as UTF-8. *)
       let b = Buffer.create 4 in
       if c < 0x800 then begin
         Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
         Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
       end
       else if c < 0x10000 then begin
         Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
         Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
       end
       else begin
         Buffer.add_char b (Char.chr (0xF0 lor (c lsr 18)));
         Buffer.add_char b (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
       end;
       Buffer.contents b
     | None -> fail lx (Printf.sprintf "unknown entity &%s;" ent))

let read_attr_value lx =
  let quote = next lx in
  if quote <> '"' && quote <> '\'' then fail lx "expected a quoted attribute value";
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof lx then fail lx "unterminated attribute value";
    let c = next lx in
    if c = quote then ()
    else begin
      (if c = '&' then Buffer.add_string buf (read_entity lx)
       else Buffer.add_char buf c);
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let read_attrs lx =
  let rec loop acc =
    skip_spaces lx;
    if is_name_start (peek lx) then begin
      let k = read_name lx in
      skip_spaces lx;
      if peek lx <> '=' then fail lx "expected '=' after attribute name";
      advance lx;
      skip_spaces lx;
      let v = read_attr_value lx in
      loop ((k, v) :: acc)
    end
    else List.rev acc
  in
  loop []

let skip_comment lx =
  (* "<!--" already consumed *)
  let rec loop () =
    if eof lx then fail lx "unterminated comment"
    else if looking_at lx "-->" then skip_string lx "-->"
    else begin
      advance lx;
      loop ()
    end
  in
  loop ()

let read_cdata lx =
  (* "<![CDATA[" already consumed *)
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof lx then fail lx "unterminated CDATA section"
    else if looking_at lx "]]>" then skip_string lx "]]>"
    else begin
      Buffer.add_char buf (next lx);
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let skip_misc lx =
  let rec loop () =
    skip_spaces lx;
    if looking_at lx "<!--" then begin
      skip_string lx "<!--";
      skip_comment lx;
      loop ()
    end
    else if looking_at lx "<?" then begin
      skip_string lx "<?";
      while (not (eof lx)) && not (looking_at lx "?>") do
        advance lx
      done;
      if eof lx then fail lx "unterminated processing instruction";
      skip_string lx "?>";
      loop ()
    end
    else if looking_at lx "<!DOCTYPE" then begin
      (* Skip up to the matching '>' (internal subsets are not supported). *)
      while (not (eof lx)) && peek lx <> '>' do
        advance lx
      done;
      if eof lx then fail lx "unterminated DOCTYPE";
      advance lx;
      loop ()
    end
  in
  loop ()

let is_blank s = String.for_all is_space s

let parse ?(preserve_whitespace = false) input =
  let lx = { input; pos = 0; line = 1; col = 1 } in
  let doc = Tree.create () in
  let add_text parent buf =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if s <> "" && (preserve_whitespace || not (is_blank s)) then
      ignore (Tree.new_text doc ~parent s)
  in
  (* Parse one element; '<' and the name are about to be read. *)
  let rec element parent =
    advance lx;
    (* '<' *)
    let name = read_name lx in
    let attrs = read_attrs lx in
    let node = Tree.new_element ~attrs doc ~parent name in
    skip_spaces lx;
    if looking_at lx "/>" then begin
      skip_string lx "/>";
      node
    end
    else if peek lx = '>' then begin
      advance lx;
      content node;
      node
    end
    else fail lx "expected '>' or '/>'"
  and content parent =
    let buf = Buffer.create 32 in
    let rec loop () =
      if eof lx then fail lx "unexpected end of input inside an element"
      else if looking_at lx "</" then begin
        add_text parent buf;
        skip_string lx "</";
        let close = read_name lx in
        skip_spaces lx;
        if peek lx <> '>' then fail lx "expected '>' in closing tag";
        advance lx;
        if close <> Tree.name doc parent then
          fail lx
            (Printf.sprintf "closing tag </%s> does not match <%s>" close
               (Tree.name doc parent))
      end
      else if looking_at lx "<!--" then begin
        skip_string lx "<!--";
        skip_comment lx;
        loop ()
      end
      else if looking_at lx "<![CDATA[" then begin
        skip_string lx "<![CDATA[";
        Buffer.add_string buf (read_cdata lx);
        loop ()
      end
      else if peek lx = '<' && peek2 lx = '?' then begin
        skip_string lx "<?";
        while (not (eof lx)) && not (looking_at lx "?>") do
          advance lx
        done;
        if eof lx then fail lx "unterminated processing instruction";
        skip_string lx "?>";
        loop ()
      end
      else if peek lx = '<' then begin
        add_text parent buf;
        ignore (element parent);
        loop ()
      end
      else if peek lx = '&' then begin
        advance lx;
        Buffer.add_string buf (read_entity lx);
        loop ()
      end
      else begin
        Buffer.add_char buf (next lx);
        loop ()
      end
    in
    loop ()
  in
  skip_misc lx;
  if eof lx || peek lx <> '<' then fail lx "expected a root element";
  ignore (element Tree.no_node);
  skip_misc lx;
  if not (eof lx) then fail lx "trailing content after the root element";
  doc

let parse_opt ?preserve_whitespace input =
  match parse ?preserve_whitespace input with
  | doc -> Ok doc
  | exception (Error _ as e) -> Error (error_to_string e)
