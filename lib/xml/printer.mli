(** Serialization of WebLab documents to XML text.

    Output is canonical: attributes print sorted, so two structurally
    equal documents ({!Tree.equal_subtree}) serialize identically — which
    the black-box Recorder relies on when round-tripping documents through
    services.

    All entry points drive one iterative traversal over an output sink:
    serialization cost is O(output bytes) with O(depth) heap and O(1)
    call-stack — a degenerate million-deep chain prints fine — and the
    buffer/channel variants stream without building a whole-document
    string first. *)

val escape_text : string -> string
(** Escape character data ([&], [<], [>]). *)

val escape_attr : string -> string
(** Escape an attribute value (ampersand, less-than, double quote). *)

val subtree_to_string :
  ?indent:bool -> ?visible:(Tree.node -> bool) -> Tree.t -> Tree.node -> string
(** Serialize one subtree.  [visible] restricts the output to a document
    state (nodes failing the predicate are skipped together with their
    subtrees); [indent] pretty-prints with two-space indentation. *)

val to_string : ?indent:bool -> ?visible:(Tree.node -> bool) -> Tree.t -> string
(** Serialize the whole document ([""] when it has no root). *)

(** {1 Streaming output} *)

val subtree_to_buffer :
  ?indent:bool ->
  ?visible:(Tree.node -> bool) ->
  Buffer.t ->
  Tree.t ->
  Tree.node ->
  unit
(** Append one subtree to [buf].  When the buffer is already non-empty,
    indented output starts on a fresh line (the document composes under
    concatenation exactly as the string API did). *)

val to_buffer :
  ?indent:bool -> ?visible:(Tree.node -> bool) -> Buffer.t -> Tree.t -> unit
(** Append the whole document to [buf] (nothing when it has no root). *)

val subtree_to_channel :
  ?indent:bool ->
  ?visible:(Tree.node -> bool) ->
  out_channel ->
  Tree.t ->
  Tree.node ->
  unit

val to_channel :
  ?indent:bool -> ?visible:(Tree.node -> bool) -> out_channel -> Tree.t -> unit
(** Stream the whole document to [oc] without materializing it as a
    string (nothing when it has no root).  The caller flushes. *)
