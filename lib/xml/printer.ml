(* Serialization of WebLab documents back to XML text.

   Output goes through a sink (buffer or channel), so Turtle-sized
   documents stream to their destination without an intermediate
   whole-document string.  Escaping takes a fast path that
   memcpy-appends the whole string when it contains nothing to escape
   (the overwhelmingly common case for element content), attributes are
   emitted without any per-attribute sprintf round-trip, and the
   traversal drives an explicit work stack — document depth never
   touches the OCaml call stack. *)

let text_needs_escape s =
  let n = String.length s in
  let rec probe i =
    i < n && (match s.[i] with '&' | '<' | '>' -> true | _ -> probe (i + 1))
  in
  probe 0

let escaped_text_to out_string out_char s =
  if not (text_needs_escape s) then out_string s
  else
    String.iter
      (fun c ->
        match c with
        | '&' -> out_string "&amp;"
        | '<' -> out_string "&lt;"
        | '>' -> out_string "&gt;"
        | c -> out_char c)
      s

let attr_needs_escape s =
  let n = String.length s in
  let rec probe i =
    i < n && (match s.[i] with '&' | '<' | '"' -> true | _ -> probe (i + 1))
  in
  probe 0

let escaped_attr_to out_string out_char s =
  if not (attr_needs_escape s) then out_string s
  else
    String.iter
      (fun c ->
        match c with
        | '&' -> out_string "&amp;"
        | '<' -> out_string "&lt;"
        | '"' -> out_string "&quot;"
        | c -> out_char c)
      s

let escape_text s =
  if not (text_needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    escaped_text_to (Buffer.add_string buf) (Buffer.add_char buf) s;
    Buffer.contents buf
  end

let escape_attr s =
  if not (attr_needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    escaped_attr_to (Buffer.add_string buf) (Buffer.add_char buf) s;
    Buffer.contents buf
  end

(* The traversal's pending work: a node to serialize at a depth, or a
   closing tag to emit once the children above it are done.  The [bool]
   records whether any visible child was an element — the close tag of a
   mixed-content element goes on its own indented line. *)
type job =
  | Node of Tree.node * int
  | Close of string * int * bool

(* [visible] restricts printing to a document state (see {!Doc_state}).
   [started] seeds the "anything written yet" flag: indentation inserts a
   newline before every node except the very first thing written. *)
let emit ?(indent = false) ?(visible = fun _ -> true) ~started out_string
    out_char doc node =
  let started = ref started in
  let out_s s =
    if String.length s > 0 then begin
      started := true;
      out_string s
    end
  in
  let out_c c =
    started := true;
    out_char c
  in
  let out_text s = escaped_text_to out_s out_c s in
  (* Attributes are printed sorted so that output is canonical: two
     documents that are [Tree.equal_subtree] print identically. *)
  let out_attrs attrs =
    List.iter
      (fun (k, v) ->
        out_c ' ';
        out_s k;
        out_s "=\"";
        escaped_attr_to out_s out_c v;
        out_c '"')
      (List.sort compare attrs)
  in
  let pad depth =
    if indent then begin
      if !started then out_c '\n';
      out_s (String.make (2 * depth) ' ')
    end
  in
  let stack = ref [ Node (node, 0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | Close (name, depth, elem_kid) :: rest ->
      stack := rest;
      if indent && elem_kid then begin
        out_c '\n';
        out_s (String.make (2 * depth) ' ')
      end;
      out_s "</";
      out_s name;
      out_c '>'
    | Node (n, depth) :: rest ->
      stack := rest;
      if visible n then begin
        pad depth;
        if Tree.is_text doc n then out_text (Tree.text doc n)
        else begin
          let name = Tree.name doc n in
          let kids = List.filter visible (Tree.children doc n) in
          out_c '<';
          out_s name;
          out_attrs (Tree.attrs doc n);
          if kids = [] then out_s "/>"
          else if indent && List.for_all (fun k -> Tree.is_text doc k) kids
          then begin
            (* Text-only content stays inline, so indentation never leaks
               into string values. *)
            out_c '>';
            List.iter (fun k -> out_text (Tree.text doc k)) kids;
            out_s "</";
            out_s name;
            out_c '>'
          end
          else begin
            out_c '>';
            let elem_kid =
              indent && List.exists (fun k -> Tree.is_element doc k) kids
            in
            stack :=
              List.fold_right
                (fun k acc -> Node (k, depth + 1) :: acc)
                kids
                (Close (name, depth, elem_kid) :: !stack)
          end
        end
      end
  done

let subtree_to_buffer ?indent ?visible buf doc node =
  emit ?indent ?visible
    ~started:(Buffer.length buf > 0)
    (Buffer.add_string buf) (Buffer.add_char buf) doc node

let to_buffer ?indent ?visible buf doc =
  if Tree.has_root doc then
    subtree_to_buffer ?indent ?visible buf doc (Tree.root doc)

let subtree_to_channel ?indent ?visible oc doc node =
  emit ?indent ?visible ~started:false (output_string oc) (output_char oc) doc
    node

let to_channel ?indent ?visible oc doc =
  if Tree.has_root doc then
    subtree_to_channel ?indent ?visible oc doc (Tree.root doc)

let subtree_to_string ?indent ?visible doc node =
  let buf = Buffer.create 256 in
  subtree_to_buffer ?indent ?visible buf doc node;
  Buffer.contents buf

let to_string ?indent ?visible doc =
  if Tree.has_root doc then subtree_to_string ?indent ?visible doc (Tree.root doc)
  else ""
