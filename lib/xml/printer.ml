(* Serialization of WebLab documents back to XML text.

   Everything is written straight into the caller's buffer: escaping
   takes a fast path that memcpy-appends the whole string when it
   contains nothing to escape (the overwhelmingly common case for
   element content), and attributes are emitted without the old
   per-attribute [Printf.sprintf] + [String.concat] round-trip. *)

let text_needs_escape s =
  let n = String.length s in
  let rec probe i =
    i < n && (match s.[i] with '&' | '<' | '>' -> true | _ -> probe (i + 1))
  in
  probe 0

let add_escaped_text buf s =
  if not (text_needs_escape s) then Buffer.add_string buf s
  else
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | c -> Buffer.add_char buf c)
      s

let attr_needs_escape s =
  let n = String.length s in
  let rec probe i =
    i < n && (match s.[i] with '&' | '<' | '"' -> true | _ -> probe (i + 1))
  in
  probe 0

let add_escaped_attr buf s =
  if not (attr_needs_escape s) then Buffer.add_string buf s
  else
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '"' -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s

let escape_text s =
  if not (text_needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    add_escaped_text buf s;
    Buffer.contents buf
  end

let escape_attr s =
  if not (attr_needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    add_escaped_attr buf s;
    Buffer.contents buf
  end

(* Attributes are printed sorted so that output is canonical: two documents
   that are [Tree.equal_subtree] print identically. *)
let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      add_escaped_attr buf v;
      Buffer.add_char buf '"')
    (List.sort compare attrs)

(* [visible] restricts printing to a document state (see {!Doc_state}). *)
let subtree_to_buf ?(indent = false) ?(visible = fun _ -> true) buf doc node =
  let rec go depth n =
    if visible n then begin
      let pad () =
        if indent then begin
          if Buffer.length buf > 0 then Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (2 * depth) ' ')
        end
      in
      if Tree.is_text doc n then begin
        pad ();
        add_escaped_text buf (Tree.text doc n)
      end
      else begin
        pad ();
        let name = Tree.name doc n in
        let kids = List.filter visible (Tree.children doc n) in
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        add_attrs buf (Tree.attrs doc n);
        if kids = [] then Buffer.add_string buf "/>"
        else if indent && List.for_all (fun k -> Tree.is_text doc k) kids then begin
          (* Text-only content stays inline, so indentation never leaks
             into string values. *)
          Buffer.add_char buf '>';
          List.iter (fun k -> add_escaped_text buf (Tree.text doc k)) kids;
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'
        end
        else begin
          Buffer.add_char buf '>';
          List.iter (go (depth + 1)) kids;
          if indent && List.exists (fun k -> Tree.is_element doc k) kids then begin
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (2 * depth) ' ')
          end;
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'
        end
      end
    end
  in
  go 0 node

let subtree_to_string ?indent ?visible doc node =
  let buf = Buffer.create 256 in
  subtree_to_buf ?indent ?visible buf doc node;
  Buffer.contents buf

let to_string ?indent ?visible doc =
  if Tree.has_root doc then subtree_to_string ?indent ?visible doc (Tree.root doc)
  else ""
