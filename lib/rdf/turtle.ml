(* Turtle and N-Triples serialization, plus an N-Triples reader used for
   round-trips in tests.  This is the surface the paper's Sesame store
   exposes for exchanging PROV graphs. *)

let abbreviate prefixes iri =
  let rec find = function
    | [] -> None
    | (p, ns) :: rest ->
      let n = String.length ns in
      if String.length iri > n && String.sub iri 0 n = ns then begin
        let local = String.sub iri n (String.length iri - n) in
        (* Only abbreviate when the local part is a plain name. *)
        if
          String.length local > 0
          && String.for_all
               (fun c ->
                 (c >= 'a' && c <= 'z')
                 || (c >= 'A' && c <= 'Z')
                 || (c >= '0' && c <= '9')
                 || c = '_' || c = '-' || c = '.')
               local
          && local.[0] <> '.'
          && local.[String.length local - 1] <> '.'
        then Some (p ^ ":" ^ local)
        else find rest
      end
      else find rest
  in
  find prefixes

let term_to_turtle prefixes = function
  | Term.Iri iri -> (
    match abbreviate prefixes iri with
    | Some qname -> qname
    | None -> Printf.sprintf "<%s>" iri)
  | Term.Bnode b -> "_:" ^ b
  | Term.Lit (s, None) -> Printf.sprintf "\"%s\"" (Term.escape_lit s)
  | Term.Lit (s, Some dt) -> (
    match abbreviate prefixes dt with
    | Some qname -> Printf.sprintf "\"%s\"^^%s" (Term.escape_lit s) qname
    | None -> Printf.sprintf "\"%s\"^^<%s>" (Term.escape_lit s) dt)

(* First-seen-order deduplication.  Terms are small immutable trees, so
   structural hashing is safe; the hash set replaces a [List.exists]
   probe that made subject collection quadratic in distinct subjects. *)
let dedup_in_order size f =
  let seen : (Term.t, unit) Hashtbl.t = Hashtbl.create size in
  let acc = ref [] in
  f (fun t ->
      if not (Hashtbl.mem seen t) then begin
        Hashtbl.add seen t ();
        acc := t :: !acc
      end);
  List.rev !acc

(* Rendering is functorized over the minimal store surface it needs —
   iteration in insertion order plus pattern lookup — so the columnar
   {!Triple_store} and the boxed {!Oracle_store} render through the same
   code path and byte-identity between the two is a property of the
   stores, not of duplicated serializers. *)

module type SOURCE = sig
  type t

  val iter : t -> (Term.t * Term.t * Term.t -> unit) -> unit

  val find :
    t ->
    Term.t option * Term.t option * Term.t option ->
    (Term.t * Term.t * Term.t) list
end

module Render (S : SOURCE) = struct
  (* Group triples by subject, then by predicate, for compact Turtle.
     Everything is written straight into one buffer — no intermediate
     per-predicate strings, no [String.concat] over them. *)
  let to_turtle ?(prefixes = Prov_vocab.prefixes) store =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (p, ns) ->
        Buffer.add_string buf "@prefix ";
        Buffer.add_string buf p;
        Buffer.add_string buf ": <";
        Buffer.add_string buf ns;
        Buffer.add_string buf "> .\n")
      prefixes;
    Buffer.add_char buf '\n';
    let subjects =
      dedup_in_order 64 (fun note -> S.iter store (fun (s, _, _) -> note s))
    in
    List.iter
      (fun s ->
        let triples = S.find store (Some s, None, None) in
        let preds =
          dedup_in_order 8 (fun note ->
              List.iter (fun (_, p, _) -> note p) triples)
        in
        Buffer.add_string buf (term_to_turtle prefixes s);
        Buffer.add_char buf '\n';
        List.iteri
          (fun i p ->
            if i > 0 then Buffer.add_string buf " ;\n";
            Buffer.add_string buf "  ";
            Buffer.add_string buf (term_to_turtle prefixes p);
            Buffer.add_char buf ' ';
            List.iteri
              (fun j (_, _, o) ->
                if j > 0 then Buffer.add_string buf ", ";
                Buffer.add_string buf (term_to_turtle prefixes o))
              (S.find store (Some s, Some p, None)))
          preds;
        Buffer.add_string buf " .\n\n")
      subjects;
    Buffer.contents buf

  let to_ntriples store =
    let buf = Buffer.create 1024 in
    S.iter store (fun (s, p, o) ->
        Buffer.add_string buf (Term.to_ntriples s);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Term.to_ntriples p);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Term.to_ntriples o);
        Buffer.add_string buf " .\n");
    Buffer.contents buf
end

include Render (Triple_store)
module Oracle = Render (Oracle_store)

exception Parse_error of string

(* Minimal N-Triples reader (IRIs, blank nodes, literals with optional
   datatype).  Language tags are not needed by this code base. *)
let parse_ntriples text =
  let store = Triple_store.create () in
  let rec parse_term s =
    let s = String.trim s in
    let n = String.length s in
    if n = 0 then raise (Parse_error "empty term")
    else if s.[0] = '<' then begin
      match String.index_opt s '>' with
      | Some i -> (Term.Iri (String.sub s 1 (i - 1)), String.sub s (i + 1) (n - i - 1))
      | None -> raise (Parse_error ("unterminated IRI: " ^ s))
    end
    else if n >= 2 && s.[0] = '_' && s.[1] = ':' then begin
      let rec stop i =
        if i >= n || s.[i] = ' ' || s.[i] = '\t' then i else stop (i + 1)
      in
      let i = stop 2 in
      (Term.Bnode (String.sub s 2 (i - 2)), String.sub s i (n - i))
    end
    else if s.[0] = '"' then begin
      let buf = Buffer.create 16 in
      let rec scan i =
        if i >= n then raise (Parse_error ("unterminated literal: " ^ s))
        else if s.[i] = '\\' && i + 1 < n then begin
          (match s.[i + 1] with
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | c -> Buffer.add_char buf c);
          scan (i + 2)
        end
        else if s.[i] = '"' then i + 1
        else begin
          Buffer.add_char buf s.[i];
          scan (i + 1)
        end
      in
      let after = scan 1 in
      let rest = String.sub s after (n - after) in
      if String.length rest >= 2 && String.sub rest 0 2 = "^^" then begin
        let rest = String.sub rest 2 (String.length rest - 2) in
        match parse_term rest with
        | Term.Iri dt, rest' -> (Term.Lit (Buffer.contents buf, Some dt), rest')
        | _ -> raise (Parse_error "expected a datatype IRI after ^^")
      end
      else (Term.Lit (Buffer.contents buf, None), rest)
    end
    else raise (Parse_error ("cannot parse term: " ^ s))
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && not (String.length line >= 1 && line.[0] = '#') then begin
           let s, rest = parse_term line in
           let p, rest = parse_term rest in
           let o, rest = parse_term rest in
           let rest = String.trim rest in
           if rest <> "." then
             raise (Parse_error ("expected '.' at end of line: " ^ line));
           Triple_store.add store (s, p, o)
         end);
  store
