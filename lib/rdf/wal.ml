(* Write-ahead log for triple stores (DESIGN §4j).

   A WAL file is a flat sequence of framed records:

     [tag u8] [len u32le] [payload len bytes] [fnv u32le]

   where [fnv] is the FNV-1a hash of tag byte + payload.  Tags:

     'T'  a triple: three terms, each [kind u8][len u32le][bytes]
          (kind 0 = IRI, 1 = plain literal, 2 = typed literal with a
          second [len][bytes] datatype field, 3 = bnode)
     'C'  commit marker; payload = expected store size (u32le) after
          applying the batch — a cross-check against lost records
     'R'  reset: discard all triples logged so far (a snapshot whose
          triple sequence is not an extension of the logged one follows)
     'M'  metadata, payload "key=value" — informational, replay keeps
          the last value per key

   Durability protocol: writers buffer 'T'/'R'/'M' records and make them
   visible only under a 'C' marker, fsynced per commit.  Replay applies
   a batch exactly when its 'C' frame (checksum + size cross-check)
   validates; a torn tail — truncated frame, bad checksum, missing
   marker — drops that batch and everything after it.  Recovery is
   therefore prefix-consistent at commit granularity: no partial triple,
   no duplicate, no half-applied commit (the qcheck truncation property
   in test_persist.ml pins this).

   Compaction rewrites the whole store as one batch into a fresh file
   and atomically renames it over the log (tmp + rename), bounding
   replay time by live size rather than history length. *)

module T = Weblab_obs.Telemetry
module M = Weblab_obs.Metrics

let c_appends = T.counter "rdf.wal.appends"
let c_fsyncs = T.counter "rdf.wal.fsyncs"
let c_replayed = T.counter "rdf.wal.replayed_commits"
let c_torn = T.counter "rdf.wal.torn_tails"
let g_bytes = M.gauge "rdf.wal.bytes"

(* ----- FNV-1a over tag + payload ----- *)

let fnv1a tag payload =
  let h = ref 0x811c9dc5 in
  let step b = h := (!h lxor b) * 0x01000193 land 0xffffffff in
  step (Char.code tag);
  String.iter (fun c -> step (Char.code c)) payload;
  !h

(* ----- little-endian u32 ----- *)

let add_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* ----- term codec ----- *)

let encode_term buf term =
  let field s =
    add_u32 buf (String.length s);
    Buffer.add_string buf s
  in
  match term with
  | Term.Iri iri ->
    Buffer.add_char buf '\000';
    field iri
  | Term.Lit (s, None) ->
    Buffer.add_char buf '\001';
    field s
  | Term.Lit (s, Some dt) ->
    Buffer.add_char buf '\002';
    field s;
    field dt
  | Term.Bnode b ->
    Buffer.add_char buf '\003';
    field b

exception Corrupt  (* internal: torn or invalid frame/payload *)

let decode_term payload off =
  let n = String.length payload in
  let field off =
    if off + 4 > n then raise Corrupt;
    let len = get_u32 payload off in
    if len < 0 || off + 4 + len > n then raise Corrupt;
    (String.sub payload (off + 4) len, off + 4 + len)
  in
  if off >= n then raise Corrupt;
  match payload.[off] with
  | '\000' ->
    let s, off = field (off + 1) in
    (Term.Iri s, off)
  | '\001' ->
    let s, off = field (off + 1) in
    (Term.Lit (s, None), off)
  | '\002' ->
    let s, off = field (off + 1) in
    let dt, off = field off in
    (Term.Lit (s, Some dt), off)
  | '\003' ->
    let s, off = field (off + 1) in
    (Term.Bnode s, off)
  | _ -> raise Corrupt

(* ----- writer ----- *)

type writer = {
  fd : Unix.file_descr;
  path : string;
  buf : Buffer.t;  (* frames staged since the last commit *)
}

let frame buf tag payload =
  Buffer.add_char buf tag;
  add_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  add_u32 buf (fnv1a tag payload)

let open_writer path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { fd; path; buf = Buffer.create 4096 }

let log_triple w (s, p, o) =
  let payload = Buffer.create 64 in
  encode_term payload s;
  encode_term payload p;
  encode_term payload o;
  frame w.buf 'T' (Buffer.contents payload)

let log_reset w = frame w.buf 'R' ""

let log_meta w ~key ~value = frame w.buf 'M' (key ^ "=" ^ value)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Seal the staged frames under a commit marker and force them to disk.
   Nothing staged and nothing to mark -> no-op (no empty commits). *)
let commit w ~store_size =
  let payload = Buffer.create 4 in
  add_u32 payload store_size;
  frame w.buf 'C' (Buffer.contents payload);
  write_all w.fd (Buffer.contents w.buf);
  Buffer.clear w.buf;
  Unix.fsync w.fd;
  T.incr c_appends;
  T.incr c_fsyncs;
  (* WAL size is a point-in-time value, sampled at the commit boundary
     (right after the fsync, so the gauge never reads ahead of disk).
     The fstat only runs when the recorder is on. *)
  if T.enabled () then M.set g_bytes (Unix.fstat w.fd).Unix.st_size

let close_writer w =
  (* Staged-but-uncommitted frames are dropped by design: they were
     never made durable, so replay must not see them. *)
  Buffer.clear w.buf;
  Unix.close w.fd

(* ----- replay ----- *)

type replay_stats = {
  rp_commits : int;  (** committed batches applied *)
  rp_triples : int;  (** triples applied (post-dedup adds may be fewer) *)
  rp_resets : int;
  rp_torn : bool;  (** a torn/corrupt tail was dropped *)
  rp_meta : (string * string) list;  (** last value per key, key order of first sight *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Replay [path] into a fresh store.  Batches are buffered and applied
   only when their commit marker validates, so a torn tail can never
   leave a half-applied commit behind.  A reset rebinds the store to a
   fresh one, hence the ref. *)
let replay path =
  let data = if Sys.file_exists path then read_file path else "" in
  let n = String.length data in
  let pending = ref [] in  (* reversed ops since the last valid 'C' *)
  let commits = ref 0 and applied = ref 0 and resets = ref 0 in
  let torn = ref false in
  let meta : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let meta_order = ref [] in
  let st = ref (Triple_store.create ()) in
  (* Ops of validated commits, reversed — replayed to rebuild the store
     if a later batch fails its size cross-check after being partially
     applied (the store has no delete, so rollback is a rebuild). *)
  let good_ops = ref [] in
  let rebuild () =
    let fresh = ref (Triple_store.create ()) in
    List.iter
      (function
        | `Reset -> fresh := Triple_store.create ()
        | `Triple tr -> Triple_store.add !fresh tr
        | `Meta _ -> ())
      (List.rev !good_ops);
    !fresh
  in
  let pos = ref 0 in
  (try
     while !pos < n do
       if !pos + 5 > n then raise Corrupt;
       let tag = data.[!pos] in
       let len = get_u32 data (!pos + 1) in
       if len < 0 || !pos + 5 + len + 4 > n then raise Corrupt;
       let payload = String.sub data (!pos + 5) len in
       let sum = get_u32 data (!pos + 5 + len) in
       if sum <> fnv1a tag payload then raise Corrupt;
       (match tag with
        | 'T' ->
          let s, off = decode_term payload 0 in
          let p, off = decode_term payload off in
          let o, off = decode_term payload off in
          if off <> String.length payload then raise Corrupt;
          pending := `Triple (s, p, o) :: !pending
        | 'R' -> pending := `Reset :: !pending
        | 'M' -> (
          match String.index_opt payload '=' with
          | Some i ->
            let key = String.sub payload 0 i in
            let value = String.sub payload (i + 1) (String.length payload - i - 1) in
            pending := `Meta (key, value) :: !pending
          | None -> raise Corrupt)
        | 'C' ->
          if String.length payload <> 4 then raise Corrupt;
          let expected = get_u32 payload 0 in
          (* Apply the batch, then verify the size cross-check the
             writer recorded.  On mismatch the batch is torn: roll the
             store back to the last validated commit (rebuild — the
             store has no delete) and stop. *)
          let ops = List.rev !pending in
          let next = ref !st in
          List.iter
            (function
              | `Reset -> next := Triple_store.create ()
              | `Triple tr -> Triple_store.add !next tr
              | `Meta _ -> ())
            ops;
          if Triple_store.size !next <> expected then begin
            st := rebuild ();
            raise Corrupt
          end;
          st := !next;
          List.iter
            (function
              | `Meta (k, v) ->
                if not (Hashtbl.mem meta k) then meta_order := k :: !meta_order;
                Hashtbl.replace meta k v
              | `Reset -> incr resets
              | `Triple _ -> incr applied)
            ops;
          good_ops := List.rev_append ops !good_ops;
          pending := [];
          incr commits;
          T.incr c_replayed
        | _ -> raise Corrupt);
       pos := !pos + 5 + len + 4
     done
   with Corrupt ->
     torn := true;
     T.incr c_torn);
  (* Frames after the last valid commit (including a clean-but-unmarked
     tail) are dropped: not durable, not applied. *)
  ( !st,
    { rp_commits = !commits;
      rp_triples = !applied;
      rp_resets = !resets;
      rp_torn = !torn;
      rp_meta =
        List.rev_map (fun k -> (k, Hashtbl.find meta k)) !meta_order } )

(* ----- compaction ----- *)

(* Rewrite [store] as a single reset + full-dump commit into a fresh
   file and atomically rename it over [path].  Metadata is re-logged so
   it survives compaction. *)
let compact_to path ?(meta = []) store =
  let tmp = path ^ ".tmp" in
  let w = open_writer tmp in
  Fun.protect
    ~finally:(fun () -> try Unix.close w.fd with Unix.Unix_error _ -> ())
    (fun () ->
      log_reset w;
      Triple_store.iter store (fun tr -> log_triple w tr);
      List.iter (fun (key, value) -> log_meta w ~key ~value) meta;
      commit w ~store_size:(Triple_store.size store));
  Unix.rename tmp path
