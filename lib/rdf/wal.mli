(** Write-ahead log for {!Triple_store}.

    Binary framed records ([tag, u32le length, payload, FNV-1a
    checksum]); triple deltas ('T'), resets ('R') and metadata ('M') are
    staged in memory and made durable under a commit marker ('C', which
    carries the expected post-apply store size as a cross-check),
    fsynced per {!commit}.  {!replay} applies whole validated batches
    only, so recovery from a torn tail is prefix-consistent at commit
    granularity: no partial triple, no duplicate, no half-applied
    commit. *)

(** {1 Writer} *)

type writer

val open_writer : string -> writer
(** Open (or create) a log for appending. *)

val log_triple : writer -> Term.t * Term.t * Term.t -> unit
(** Stage a triple.  Not durable until {!commit}. *)

val log_reset : writer -> unit
(** Stage a reset: replay discards all triples logged before this point.
    Used when a snapshot's triple sequence is not an extension of the
    logged one (e.g. after URI promotion rewrites history). *)

val log_meta : writer -> key:string -> value:string -> unit
(** Stage a metadata record; replay keeps the last value per key. *)

val commit : writer -> store_size:int -> unit
(** Seal staged records under a commit marker carrying [store_size] (the
    store's size after this batch) and fsync. *)

val close_writer : writer -> unit
(** Close the fd.  Staged-but-uncommitted records are dropped — they
    were never durable, so replay must not see them. *)

(** {1 Replay} *)

type replay_stats = {
  rp_commits : int;  (** committed batches applied *)
  rp_triples : int;  (** triples applied (post-dedup adds may be fewer) *)
  rp_resets : int;
  rp_torn : bool;  (** a torn/corrupt tail was dropped *)
  rp_meta : (string * string) list;
      (** last value per key, in key first-sight order *)
}

val replay : string -> Triple_store.t * replay_stats
(** Rebuild a store from the log.  A missing file replays as empty;
    anything after the last validated commit marker is dropped. *)

(** {1 Compaction} *)

val compact_to : string -> ?meta:(string * string) list -> Triple_store.t -> unit
(** Rewrite [store] (plus [meta]) as a single reset + full-dump commit
    into a temp file and atomically rename it over the path, bounding
    replay time by live size rather than history length. *)
