(* Append-only term dictionary: the RDF twin of the arena's string
   Intern table (lib/xml/intern.ml).

   Every distinct term is boxed exactly once and referenced by a dense
   integer id from the columnar triple arrays.  Ids are allocated in
   first-seen order and never reused, so a store's id space only grows —
   which is what lets the write-ahead log replay into the same ids
   without a remapping pass.

   The read path ([term]) touches only the id -> term array, so
   concurrent readers (a daemon connection decoding query results while
   another session's writer interns) race at most with an array-double,
   which OCaml array semantics make safe: either backing store carries
   every id a reader can legally hold. *)

module Term_table = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  mutable terms : Term.t array;  (* id -> term, first [n] slots live *)
  mutable n : int;
  table : int Term_table.t;  (* term -> id, writer-side only *)
}

let dummy = Term.Iri ""

let create () =
  { terms = Array.make 64 dummy; n = 0; table = Term_table.create 64 }

let count t = t.n

let intern t term =
  match Term_table.find_opt t.table term with
  | Some id -> id
  | None ->
    let id = t.n in
    if id >= Array.length t.terms then begin
      let bigger = Array.make (2 * Array.length t.terms) dummy in
      Array.blit t.terms 0 bigger 0 t.n;
      t.terms <- bigger
    end;
    t.terms.(id) <- term;
    t.n <- id + 1;
    Term_table.add t.table term id;
    id

let id_opt t term = Term_table.find_opt t.table term

let term t id =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Term_dict.term: invalid id %d (count %d)" id t.n);
  t.terms.(id)

let unsafe_term t id = Array.unsafe_get t.terms id

(* Writer-side, like [intern]: trim the doubling slack. *)
let compact t =
  if Array.length t.terms > max t.n 1 then
    t.terms <- Array.sub t.terms 0 (max t.n 1)
