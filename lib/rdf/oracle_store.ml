(* The pre-columnar triple store, preserved verbatim as the property-test
   oracle for {!Triple_store} (DESIGN §4j).

   Boxed triples in a reversed assoc list with S/P/O hash indexes; dedup
   keys are full N-Triples strings rebuilt per insert.  Slow and heavy on
   purpose — its observable behaviour (insertion-order results, set
   semantics, BGP solutions) defines the contract the columnar engine
   must reproduce bit-for-bit, including byte-identical Turtle through
   {!Turtle.Oracle}. *)

type triple = Term.t * Term.t * Term.t

module Term_table = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  mutable all : triple list;  (* reversed insertion order *)
  mutable size : int;
  by_subject : triple list ref Term_table.t;
  by_predicate : triple list ref Term_table.t;
  by_object : triple list ref Term_table.t;
  dedup : (string, unit) Hashtbl.t;
}

let create () =
  {
    all = [];
    size = 0;
    by_subject = Term_table.create 64;
    by_predicate = Term_table.create 64;
    by_object = Term_table.create 64;
    dedup = Hashtbl.create 64;
  }

let key (s, p, o) =
  String.concat " " [ Term.to_ntriples s; Term.to_ntriples p; Term.to_ntriples o ]

let index_add table term triple =
  match Term_table.find_opt table term with
  | Some cell -> cell := triple :: !cell
  | None -> Term_table.add table term (ref [ triple ])

let add t ((s, p, o) as triple) =
  let k = key triple in
  if not (Hashtbl.mem t.dedup k) then begin
    Hashtbl.add t.dedup k ();
    t.all <- triple :: t.all;
    t.size <- t.size + 1;
    index_add t.by_subject s triple;
    index_add t.by_predicate p triple;
    index_add t.by_object o triple
  end

let mem t triple = Hashtbl.mem t.dedup (key triple)

let size t = t.size

let triples t = List.rev t.all

let iter t f = List.iter f (triples t)

type pattern = Term.t option * Term.t option * Term.t option

let index_find table term =
  match Term_table.find_opt table term with Some cell -> !cell | None -> []

let matches (s, p, o) (ps, pp, po) =
  (match ps with Some x -> Term.equal x s | None -> true)
  && (match pp with Some x -> Term.equal x p | None -> true)
  && match po with Some x -> Term.equal x o | None -> true

let find t ((ps, pp, po) as pat) =
  (* Choose the most selective bound position; subjects and objects are
     usually more selective than predicates. *)
  let candidates =
    match ps, po, pp with
    | Some s, _, _ -> index_find t.by_subject s
    | None, Some o, _ -> index_find t.by_object o
    | None, None, Some p -> index_find t.by_predicate p
    | None, None, None -> t.all
  in
  List.filter (fun tr -> matches tr pat) (List.rev candidates)

let count t pat = List.length (find t pat)

open Weblab_relalg

let term_value term = Value.Str (Term.to_ntriples term)

(* Evaluate a conjunctive pattern left to right, returning raw variable
   environments, mirroring {!Triple_store.solutions}. *)
let solutions t bgp : (string * Term.t) list list =
  List.fold_left
    (fun rows (a, b, c) ->
      List.concat_map
        (fun (env : (string * Term.t) list) ->
          let resolve = function
            | Triple_store.Const term -> Some term
            | Triple_store.Var v -> List.assoc_opt v env
          in
          let pat = (resolve a, resolve b, resolve c) in
          find t pat
          |> List.filter_map (fun (s, p, o) ->
                 let bind env (bt, term) =
                   match env, bt with
                   | None, _ -> None
                   | Some env, Triple_store.Const _ -> Some env
                   | Some env, Triple_store.Var v -> (
                     match List.assoc_opt v env with
                     | Some existing ->
                       if Term.equal existing term then Some env else None
                     | None -> Some ((v, term) :: env))
                 in
                 List.fold_left bind (Some env) [ (a, s); (b, p); (c, o) ]))
        rows)
    [ [] ] bgp

let table_of_solutions vars sols =
  let table = Table.create vars in
  List.iter
    (fun env ->
      Table.add_row table
        (Array.of_list
           (List.map
              (fun v ->
                match List.assoc_opt v env with
                | Some term -> term_value term
                | None -> Value.Str "")
              vars)))
    sols;
  Table.distinct table

let query t bgp =
  table_of_solutions (Triple_store.bgp_variables bgp) (solutions t bgp)
