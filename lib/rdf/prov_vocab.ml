(* The slice of the W3C PROV ontology [PROV-O] used by WebLab PROV, plus
   the namespaces of the RDF encoding (§6 of the paper). *)

let prov_ns = "http://www.w3.org/ns/prov#"
let rdf_ns = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
let rdfs_ns = "http://www.w3.org/2000/01/rdf-schema#"
let xsd_ns = "http://www.w3.org/2001/XMLSchema#"
let weblab_ns = "http://weblab.ow2.org/prov#"

let prefixes =
  [ ("prov", prov_ns); ("rdf", rdf_ns); ("rdfs", rdfs_ns); ("xsd", xsd_ns);
    ("wl", weblab_ns) ]

let rdf_type = Term.Iri (rdf_ns ^ "type")
let rdfs_label = Term.Iri (rdfs_ns ^ "label")

(* Classes *)
let entity = Term.Iri (prov_ns ^ "Entity")
let activity = Term.Iri (prov_ns ^ "Activity")
let agent = Term.Iri (prov_ns ^ "Agent")
let software_agent = Term.Iri (prov_ns ^ "SoftwareAgent")

(* Properties *)
let was_generated_by = Term.Iri (prov_ns ^ "wasGeneratedBy")
let used = Term.Iri (prov_ns ^ "used")
let was_derived_from = Term.Iri (prov_ns ^ "wasDerivedFrom")
let was_informed_by = Term.Iri (prov_ns ^ "wasInformedBy")
let was_associated_with = Term.Iri (prov_ns ^ "wasAssociatedWith")
let started_at_time = Term.Iri (prov_ns ^ "startedAtTime")
let ended_at_time = Term.Iri (prov_ns ^ "endedAtTime")
let invalidated_at_time = Term.Iri (prov_ns ^ "invalidatedAtTime")
let had_member = Term.Iri (prov_ns ^ "hadMember")

(* WebLab-specific terms *)
let wl_rule = Term.Iri (weblab_ns ^ "inferredByRule")
let wl_inherited = Term.Iri (weblab_ns ^ "inheritedFrom")
let wl_timestamp = Term.Iri (weblab_ns ^ "timestamp")
let wl_service = Term.Iri (weblab_ns ^ "service")
let wl_failed = Term.Iri (weblab_ns ^ "failed")
let wl_failure_reason = Term.Iri (weblab_ns ^ "failureReason")
let wl_attempts = Term.Iri (weblab_ns ^ "attempts")

(* IRI builders for WebLab resources and service calls. *)
let resource_iri uri =
  (* Resource URIs in examples are short names like "r4"; qualify the
     relative ones. *)
  if String.length uri > 6 && String.sub uri 0 7 = "http://" then Term.Iri uri
  else Term.Iri (weblab_ns ^ "resource/" ^ uri)

let call_iri ~service ~time =
  Term.Iri (Printf.sprintf "%scall/%s-%d" weblab_ns service time)

let service_iri name = Term.Iri (weblab_ns ^ "service/" ^ name)
