(* Dictionary-encoded columnar triple store (DESIGN §4j).

   Triples are three parallel int arrays of {!Term_dict} ids in insertion
   order — the column layout of the structure-of-arrays arena applied to
   the RDF substrate.  Every public observation (iteration order, find
   result order, BGP solutions, Turtle bytes) is identical to the boxed
   assoc-list store this replaces, which lives on as {!Oracle_store} and
   property-tests exactly that.

   Pattern lookup is LSM-flavoured: a merged sorted base (three
   permutation arrays over the columns, in SPO, POS and OSP key order)
   answers any bound prefix with two binary searches, and a small
   unsorted tail of recent inserts is scanned linearly.  When the tail
   fills up it is sorted and merged into the base — O(n) per merge,
   amortized O(log n) merges over the life of the store.  Every bound
   combination is a prefix of one of the three orders:

     s | s,p | s,p,o -> SPO      p | p,o -> POS      o | o,s -> OSP

   so [find] never post-filters and [count] is pure arithmetic on range
   bounds (plus the bounded tail scan) — no list is materialized.

   Deduplication is an integer probe: exact binary search in the SPO base
   plus a packed-key hash probe over the tail, instead of building an
   N-Triples string per insert as the old store did. *)

module T = Weblab_obs.Telemetry
module M = Weblab_obs.Metrics

let c_adds = T.counter "rdf.store.adds"
let c_merges = T.counter "rdf.store.merges"
let c_probes = T.counter "rdf.store.probes"
let c_tail_scanned = T.counter "rdf.store.tail_scanned"

(* Point-in-time census of the most recently merged store, sampled at
   the merge boundary (the only place the columnar shape changes).
   Gauges, not counters: "triples held" is a reading, not a sum — with
   several live stores the gauge tracks the last one merged, which in a
   serving daemon is the hot session's. *)
let g_triples = M.gauge "rdf.store.triples"
let g_terms = M.gauge "rdf.store.terms"
let g_runs = M.gauge "rdf.store.run_merges"

type triple = Term.t * Term.t * Term.t

type t = {
  dict : Term_dict.t;
  mutable s_col : int array;  (* triple index -> subject id *)
  mutable p_col : int array;
  mutable o_col : int array;
  mutable n : int;  (* live triples; insertion order = index order *)
  (* Sorted runs over triple indices [0, base_n): the merged base. *)
  mutable base_spo : int array;
  mutable base_pos : int array;
  mutable base_osp : int array;
  mutable base_n : int;
  (* CSR posting offsets into each run, rebuilt at merge: run indices
     with first key [id] live at [off.(id), off.(id+1)).  Sized to the
     dictionary at merge time — ids interned later exist only in the
     tail, so an out-of-range id simply has an empty base range. *)
  mutable spo_off : int array;
  mutable pos_off : int array;
  mutable osp_off : int array;
  (* Tail dedup set for indices [base_n, n): (s,p,o) -> (). *)
  tail_set : (int * int * int, unit) Hashtbl.t;
  mutable merges : int;
}

(* The tail is scanned linearly by every probe, so it stays small; the
   bound also caps the per-insert amortized merge cost at O(log n). *)
let tail_limit = 1024

let create () =
  { dict = Term_dict.create ();
    s_col = Array.make 64 0;
    p_col = Array.make 64 0;
    o_col = Array.make 64 0;
    n = 0;
    base_spo = [||];
    base_pos = [||];
    base_osp = [||];
    base_n = 0;
    spo_off = [| 0 |];
    pos_off = [| 0 |];
    osp_off = [| 0 |];
    tail_set = Hashtbl.create 64;
    merges = 0 }

let size t = t.n

(* ----- key orders ----- *)

let cmp3 a1 a2 a3 b1 b2 b3 =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3

let cmp_spo t i j =
  cmp3 t.s_col.(i) t.p_col.(i) t.o_col.(i) t.s_col.(j) t.p_col.(j) t.o_col.(j)

let cmp_pos t i j =
  cmp3 t.p_col.(i) t.o_col.(i) t.s_col.(i) t.p_col.(j) t.o_col.(j) t.s_col.(j)

let cmp_osp t i j =
  cmp3 t.o_col.(i) t.s_col.(i) t.p_col.(i) t.o_col.(j) t.s_col.(j) t.p_col.(j)

(* ----- base maintenance ----- *)

(* Sort the tail and merge it into each sorted run.  Stable on ties is
   irrelevant: triples are unique by construction. *)
let merge_one t cmp base tail =
  let nb = Array.length base and nt = Array.length tail in
  let out = Array.make (nb + nt) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < nb && !j < nt do
    if cmp t base.(!i) tail.(!j) <= 0 then begin
      out.(!k) <- base.(!i);
      incr i
    end
    else begin
      out.(!k) <- tail.(!j);
      incr j
    end;
    incr k
  done;
  Array.blit base !i out !k (nb - !i);
  k := !k + (nb - !i);
  Array.blit tail !j out !k (nt - !j);
  out

(* CSR offsets over a freshly merged run: [off.(id), off.(id+1)) is the
   slice whose first key is [id].  One pass — the run is sorted. *)
let build_off dict run firstcol =
  let terms = Term_dict.count dict in
  let nb = Array.length run in
  let off = Array.make (terms + 1) 0 in
  let pos = ref 0 in
  for id = 0 to terms - 1 do
    off.(id) <- !pos;
    while !pos < nb && firstcol.(run.(!pos)) = id do
      incr pos
    done
  done;
  off.(terms) <- nb;
  off

let merge_tail t =
  if t.n > t.base_n then begin
    let tail = Array.init (t.n - t.base_n) (fun i -> t.base_n + i) in
    let sorted cmp =
      let a = Array.copy tail in
      Array.sort (cmp t) a;
      a
    in
    t.base_spo <- merge_one t cmp_spo t.base_spo (sorted cmp_spo);
    t.base_pos <- merge_one t cmp_pos t.base_pos (sorted cmp_pos);
    t.base_osp <- merge_one t cmp_osp t.base_osp (sorted cmp_osp);
    t.base_n <- t.n;
    t.spo_off <- build_off t.dict t.base_spo t.s_col;
    t.pos_off <- build_off t.dict t.base_pos t.p_col;
    t.osp_off <- build_off t.dict t.base_osp t.o_col;
    Hashtbl.reset t.tail_set;
    t.merges <- t.merges + 1;
    T.incr c_merges;
    M.set g_triples t.n;
    M.set g_terms (Term_dict.count t.dict);
    M.set g_runs t.merges
  end

let compact t =
  merge_tail t;
  let trim col = if Array.length col > max t.n 1 then Array.sub col 0 (max t.n 1) else col in
  t.s_col <- trim t.s_col;
  t.p_col <- trim t.p_col;
  t.o_col <- trim t.o_col;
  Term_dict.compact t.dict

(* ----- range search -----

   The first bound key never needs a binary search: the CSR offsets give
   its run slice in O(1).  At most one two-key refinement search runs
   inside that slice, using sentinels for the trailing wildcard: ids are
   always >= 0 and < max_int, so (-1) is below every id and max_int
   above. *)

(* Slice of [off]'s run with first key [id]; ids interned after the last
   merge are not covered and live only in the tail. *)
let posting off id =
  if id + 1 < Array.length off then (Array.unsafe_get off id, Array.unsafe_get off (id + 1))
  else (0, 0)

let cmp2 a1 a2 b1 b2 =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

(* [refine t base cols (lo0,hi0) k2 k3]: the subrange of [lo0,hi0) whose
   second/third key columns equal/bracket (k2,k3).  [cols = (c2, c3)],
   the columns in this run's key order after the first. *)
let refine base (c2, c3) (lo0, hi0) k2_lo k3_lo k2_hi k3_hi =
  let bound k2 k3 strict =
    let lo = ref lo0 and hi = ref hi0 in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let i = Array.unsafe_get base mid in
      let c = cmp2 (Array.unsafe_get c2 i) (Array.unsafe_get c3 i) k2 k3 in
      if c < 0 || (c = 0 && strict) then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (bound k2_lo k3_lo false, bound k2_hi k3_hi true)

(* The probe plan for a (possibly wildcard) id pattern: which base run
   answers it, its [lo, hi) slice, and whether every index in the slice
   matches.  Every bound combination is a prefix of one run, so the
   prefix slice never needs a residual filter — but for (?, p, o) the
   object posting is usually orders of magnitude smaller than the
   predicate's, and scanning it with a one-column check beats two binary
   searches inside the predicate slice.  When that wins, the plan is
   inexact (third component [false]) and the caller filters per index. *)
let plan t s p o =
  if s >= 0 then
    if p >= 0 then
      if o >= 0 then
        ( t.base_spo,
          refine t.base_spo (t.p_col, t.o_col) (posting t.spo_off s) p o p o,
          true )
      else
        ( t.base_spo,
          refine t.base_spo (t.p_col, t.o_col) (posting t.spo_off s) p (-1) p
            max_int,
          true )
    else if o >= 0 then
      ( t.base_osp,
        refine t.base_osp (t.s_col, t.p_col) (posting t.osp_off o) s (-1) s
          max_int,
        true )
    else (t.base_spo, posting t.spo_off s, true)
  else if p >= 0 then
    if o >= 0 then begin
      let olo, ohi = posting t.osp_off o in
      let plo, phi = posting t.pos_off p in
      if ohi - olo <= 64 && ohi - olo <= phi - plo then
        (t.base_osp, (olo, ohi), false)
      else
        ( t.base_pos,
          refine t.base_pos (t.o_col, t.s_col) (plo, phi) o (-1) o max_int,
          true )
    end
    else (t.base_pos, posting t.pos_off p, true)
  else if o >= 0 then (t.base_osp, posting t.osp_off o, true)
  else (t.base_spo, (0, Array.length t.base_spo), true)

let tail_matches t s p o f =
  for i = t.base_n to t.n - 1 do
    if
      (s < 0 || t.s_col.(i) = s)
      && (p < 0 || t.p_col.(i) = p)
      && (o < 0 || t.o_col.(i) = o)
    then f i
  done;
  T.add c_tail_scanned (t.n - t.base_n)

(* ----- membership / insert ----- *)

let mem_ids t s p o =
  Hashtbl.mem t.tail_set (s, p, o)
  ||
  let lo, hi =
    refine t.base_spo (t.p_col, t.o_col) (posting t.spo_off s) p o p o
  in
  hi > lo

let add t ((st, pt, ot) : triple) =
  let s = Term_dict.intern t.dict st in
  let p = Term_dict.intern t.dict pt in
  let o = Term_dict.intern t.dict ot in
  if not (mem_ids t s p o) then begin
    if t.n >= Array.length t.s_col then begin
      let grow col =
        let bigger = Array.make (2 * Array.length col) 0 in
        Array.blit col 0 bigger 0 t.n;
        bigger
      in
      t.s_col <- grow t.s_col;
      t.p_col <- grow t.p_col;
      t.o_col <- grow t.o_col
    end;
    t.s_col.(t.n) <- s;
    t.p_col.(t.n) <- p;
    t.o_col.(t.n) <- o;
    t.n <- t.n + 1;
    Hashtbl.replace t.tail_set (s, p, o) ();
    T.incr c_adds;
    if t.n - t.base_n >= tail_limit then merge_tail t
  end

let mem t ((st, pt, ot) : triple) =
  match
    ( Term_dict.id_opt t.dict st,
      Term_dict.id_opt t.dict pt,
      Term_dict.id_opt t.dict ot )
  with
  | Some s, Some p, Some o -> mem_ids t s p o
  | _ -> false

(* ----- decode ----- *)

(* Hot decode: every index fed here is < t.n and every column id came
   out of [intern], so the checks would never fire. *)
let triple_at t i =
  ( Term_dict.unsafe_term t.dict (Array.unsafe_get t.s_col i),
    Term_dict.unsafe_term t.dict (Array.unsafe_get t.p_col i),
    Term_dict.unsafe_term t.dict (Array.unsafe_get t.o_col i) )

let iter t f =
  for i = 0 to t.n - 1 do
    f (triple_at t i)
  done

let triples t = List.init t.n (triple_at t)

let triples_from t k = List.init (max 0 (t.n - k)) (fun i -> triple_at t (k + i))

let prefix_of a b =
  size a <= size b
  &&
  let rec go i =
    i >= size a
    ||
    let sa, pa, oa = triple_at a i and sb, pb, ob = triple_at b i in
    Term.equal sa sb && Term.equal pa pb && Term.equal oa ob && go (i + 1)
  in
  go 0

(* ----- pattern lookup ----- *)

type pattern = Term.t option * Term.t option * Term.t option

(* Resolve a bound term to its id; a term the dictionary has never seen
   matches nothing, which short-circuits the whole probe. *)
let resolve t = function
  | None -> Some (-1)
  | Some term -> Term_dict.id_opt t.dict term

(* Index of an isolated bit (a power of two below 2^32): de Bruijn
   multiplication, branch-free. *)
let debruijn_table =
  let t = Array.make 32 0 in
  Array.iteri
    (fun i b -> t.(b) <- i)
    (Array.init 32 (fun i -> ((1 lsl i) * 0x077CB531) lsr 27 land 31));
  t

let bit_index low = debruijn_table.((low * 0x077CB531) lsr 27 land 31)

(* Ascending in-place sort of [a.(0 .. k-1)] specialized to ints:
   insertion sort for the small slices selective probes produce, stdlib
   sort above that. *)
let sort_ints a k =
  if k <= 32 then
    for i = 1 to k - 1 do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let sub = Array.sub a 0 k in
    Array.sort Int.compare sub;
    Array.blit sub 0 a 0 k
  end

let find t ((ps, pp, po) : pattern) =
  T.incr c_probes;
  match resolve t ps, resolve t pp, resolve t po with
  | Some s, Some p, Some o ->
    if s < 0 && p < 0 && o < 0 then triples t
    else begin
      let base, (lo, hi), exact = plan t s p o in
      let k = hi - lo in
      if exact && k > 64 && k * 8 >= t.base_n then begin
        (* Very dense range (e.g. one predicate out of a handful): a
           backward scan of the columns yields insertion order for free
           — no sort, no rev, and the tail is just the top indices. *)
        let acc = ref [] in
        for i = t.n - 1 downto 0 do
          if
            (s < 0 || Array.unsafe_get t.s_col i = s)
            && (p < 0 || Array.unsafe_get t.p_col i = p)
            && (o < 0 || Array.unsafe_get t.o_col i = o)
          then acc := triple_at t i :: !acc
        done;
        !acc
      end
      else if exact && k > 64 then begin
        (* Dense range: restoring insertion order by comparison sort is
           O(k log k) with a fat constant; instead mark the hit indices
           in a bitmap and walk only the marked word span descending —
           O(k + span/32), no comparisons at all. *)
        let words = (t.n + 31) lsr 5 in
        let bm = Array.make words 0 in
        let lo_w = ref (words - 1) and hi_w = ref 0 in
        let mark i =
          let w = i lsr 5 in
          Array.unsafe_set bm w
            (Array.unsafe_get bm w lor (1 lsl (i land 31)));
          if w < !lo_w then lo_w := w;
          if w > !hi_w then hi_w := w
        in
        for j = lo to hi - 1 do
          mark (Array.unsafe_get base j)
        done;
        tail_matches t s p o mark;
        (* Build front-to-back without a final rev: walk words high to
           low, extract each word's bits ascending (lowest-set-bit, work
           proportional to hits) into a scratch, cons in reverse. *)
        let acc = ref [] and tmp = Array.make 32 0 in
        for w = !hi_w downto !lo_w do
          let bits = ref (Array.unsafe_get bm w) in
          let c = ref 0 in
          while !bits <> 0 do
            let low = !bits land - !bits in
            bits := !bits lxor low;
            tmp.(!c) <- (w lsl 5) lor bit_index low;
            incr c
          done;
          for j = !c - 1 downto 0 do
            acc := triple_at t tmp.(j) :: !acc
          done
        done;
        !acc
      end
      else begin
        (* Selective probe: base hits come back in key order; insertion
           order is index order, so sort the slice ascending.  Tail
           indices are all larger than any base index and scanned in
           order, so appending keeps the global insertion order.  An
           inexact plan (always a small slice) filters here. *)
        let hits = Array.make (max k 1) 0 in
        let m = ref 0 in
        for j = lo to hi - 1 do
          let i = Array.unsafe_get base j in
          if
            exact
            || (s < 0 || Array.unsafe_get t.s_col i = s)
               && (p < 0 || Array.unsafe_get t.p_col i = p)
               && (o < 0 || Array.unsafe_get t.o_col i = o)
          then begin
            hits.(!m) <- i;
            incr m
          end
        done;
        sort_ints hits !m;
        let tl = ref [] in
        tail_matches t s p o (fun i -> tl := i :: !tl);
        let acc = ref (List.rev_map (triple_at t) !tl) in
        for j = !m - 1 downto 0 do
          acc := triple_at t hits.(j) :: !acc
        done;
        !acc
      end
    end
  | _ -> []

let count t ((ps, pp, po) : pattern) =
  T.incr c_probes;
  match resolve t ps, resolve t pp, resolve t po with
  | Some s, Some p, Some o ->
    if s < 0 && p < 0 && o < 0 then t.n
    else begin
      let base, (lo, hi), exact = plan t s p o in
      let k = ref 0 in
      if exact then k := hi - lo
      else
        for j = lo to hi - 1 do
          let i = Array.unsafe_get base j in
          if
            (s < 0 || Array.unsafe_get t.s_col i = s)
            && (p < 0 || Array.unsafe_get t.p_col i = p)
            && (o < 0 || Array.unsafe_get t.o_col i = o)
          then incr k
        done;
      tail_matches t s p o (fun _ -> incr k);
      !k
    end
  | _ -> 0

(* ----- stats ----- *)

type store_stats = {
  st_triples : int;
  st_terms : int;  (** distinct terms in the dictionary *)
  st_base : int;  (** triples covered by the merged sorted runs *)
  st_tail : int;  (** recent inserts pending a run merge *)
  st_merges : int;  (** run merges performed over the store's life *)
}

let stats t =
  { st_triples = t.n;
    st_terms = Term_dict.count t.dict;
    st_base = t.base_n;
    st_tail = t.n - t.base_n;
    st_merges = t.merges }

(* ----- basic graph patterns ----- *)

type bgp_term =
  | Const of Term.t
  | Var of string

open Weblab_relalg

let term_value term = Value.Str (Term.to_ntriples term)

let unbound = Value.Str ""

(* All variables of a BGP, first-occurrence order. *)
let bgp_variables bgp =
  let vars_of (a, b, c) =
    List.filter_map (function Var v -> Some v | Const _ -> None) [ a; b; c ]
  in
  List.fold_left
    (fun acc tp ->
      List.fold_left
        (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
        acc (vars_of tp))
    [] bgp

(* Evaluate a conjunctive pattern left to right, returning raw variable
   environments.  Each step instantiates the pattern with the bindings of
   the current row and probes the store through [find]. *)
let solutions t bgp : (string * Term.t) list list =
  List.fold_left
    (fun rows (a, b, c) ->
      List.concat_map
        (fun (env : (string * Term.t) list) ->
          let resolve = function
            | Const term -> Some term
            | Var v -> List.assoc_opt v env
          in
          let pat = (resolve a, resolve b, resolve c) in
          find t pat
          |> List.filter_map (fun (s, p, o) ->
                 (* Bind still-free variables; a variable used twice in one
                    pattern must match the same term. *)
                 let bind env (bt, term) =
                   match env, bt with
                   | None, _ -> None
                   | Some env, Const _ -> Some env
                   | Some env, Var v -> (
                     match List.assoc_opt v env with
                     | Some existing ->
                       if Term.equal existing term then Some env else None
                     | None -> Some ((v, term) :: env))
                 in
                 List.fold_left bind (Some env) [ (a, s); (b, p); (c, o) ]))
        rows)
    [ [] ] bgp

let table_of_solutions vars sols =
  let table = Table.create vars in
  List.iter
    (fun env ->
      Table.add_row table
        (Array.of_list
           (List.map
              (fun v ->
                match List.assoc_opt v env with
                | Some term -> term_value term
                | None -> unbound)
              vars)))
    sols;
  Table.distinct table

let query t bgp = table_of_solutions (bgp_variables bgp) (solutions t bgp)
