(** Dictionary-encoded columnar RDF triple store — the stand-in for the
    paper's Sesame repository.

    Terms are interned to dense int ids ({!Term_dict}); triples live in
    three parallel int columns in insertion order.  Pattern probes are
    binary-searched range scans over sorted SPO/POS/OSP runs (merged
    base + small unsorted tail, LSM-style), so every bound combination
    is answered without a residual filter and [count] allocates nothing.

    The previous boxed assoc-list implementation survives as
    {!Oracle_store}; property tests assert both agree on [find], [query],
    [count] and produce byte-identical Turtle. *)

type triple = Term.t * Term.t * Term.t

type t

val create : unit -> t

val add : t -> triple -> unit
(** Idempotent (set semantics).  Dedup is an integer probe over the
    sorted base plus a small hash set over the unsorted tail. *)

val mem : t -> triple -> bool

val size : t -> int

val triples : t -> triple list
(** In insertion order. *)

val triples_from : t -> int -> triple list
(** [triples_from t k] is the suffix of {!triples} starting at index [k]
    — the delta since a store had [k] triples.  Used by the WAL layer to
    append per-commit deltas without re-walking the prefix. *)

val prefix_of : t -> t -> bool
(** [prefix_of a b]: [a]'s triple sequence is a prefix of [b]'s (by
    {!Term.equal}, position-wise).  The WAL layer uses this to decide
    between an append delta and a reset + full dump. *)

val iter : t -> (triple -> unit) -> unit

val compact : t -> unit
(** Merge the tail into the sorted base and trim growth slack on the
    columns and the dictionary.  Purely an allocation optimization —
    observable behaviour is unchanged. *)

(** {1 Instrumentation} *)

type store_stats = {
  st_triples : int;
  st_terms : int;  (** distinct terms in the dictionary *)
  st_base : int;  (** triples covered by the merged sorted runs *)
  st_tail : int;  (** recent inserts pending a run merge *)
  st_merges : int;  (** run merges performed over the store's life *)
}

val stats : t -> store_stats

(** {1 Pattern lookup} *)

type pattern = Term.t option * Term.t option * Term.t option
(** [None] is a wildcard. *)

val find : t -> pattern -> triple list
(** Matches in insertion order; a binary-searched range scan on the run
    whose key order makes the bound positions a prefix. *)

val count : t -> pattern -> int
(** Same contract as [List.length (find t pat)] but computed from range
    bounds — no result list is materialized. *)

(** {1 Basic graph patterns}

    Variables are written as strings; a BGP is a list of triple patterns
    where each position is either a constant term or a variable. *)

type bgp_term =
  | Const of Term.t
  | Var of string

val query : t -> (bgp_term * bgp_term * bgp_term) list -> Weblab_relalg.Table.t
(** Solutions of the conjunctive pattern, one column per variable.  Term
    bindings are encoded as their N-Triples string in the result table. *)

val solutions : t -> (bgp_term * bgp_term * bgp_term) list ->
  (string * Term.t) list list
(** The raw variable environments, for callers that post-process terms
    (SPARQL FILTER/ORDER BY). *)

val bgp_variables : (bgp_term * bgp_term * bgp_term) list -> string list
(** Variables of a pattern, first-occurrence order. *)

val unbound : Weblab_relalg.Value.t
(** Sentinel for a variable left unbound by a solution (possible when a
    caller passes an explicit variable list wider than the BGP binds):
    the empty string.  {!table_of_solutions} fills unbound cells with
    this value rather than dropping the row, so row counts match the
    solution count; it is distinguishable from every real binding
    because term encodings are never empty ([<iri>], ["lit"], [_:b]). *)

val table_of_solutions :
  string list -> (string * Term.t) list list -> Weblab_relalg.Table.t
(** One column per requested variable; cells carry the N-Triples
    encoding of the bound term or {!unbound}. *)
