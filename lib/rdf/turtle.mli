(** Turtle and N-Triples serialization, plus an N-Triples reader for
    round-trips — the exchange surface the paper's Sesame store exposes
    for PROV graphs. *)

val abbreviate : (string * string) list -> string -> string option
(** [abbreviate prefixes iri] is the qname when some prefix applies and
    the local part is a plain name. *)

val term_to_turtle : (string * string) list -> Term.t -> string

(** Minimal store surface the serializers need; rendering is functorized
    over it so the columnar {!Triple_store} and the boxed
    {!Oracle_store} share one code path, making byte-identical output a
    property of the stores rather than of duplicated serializers. *)
module type SOURCE = sig
  type t

  val iter : t -> (Term.t * Term.t * Term.t -> unit) -> unit

  val find :
    t ->
    Term.t option * Term.t option * Term.t option ->
    (Term.t * Term.t * Term.t) list
end

module Render (S : SOURCE) : sig
  val to_turtle : ?prefixes:(string * string) list -> S.t -> string

  val to_ntriples : S.t -> string
end

val to_turtle : ?prefixes:(string * string) list -> Triple_store.t -> string
(** Grouped by subject and predicate, with @prefix declarations
    ({!Prov_vocab.prefixes} by default). *)

val to_ntriples : Triple_store.t -> string
(** One triple per line. *)

(** The same serializers over {!Oracle_store}, for byte-identity
    property tests. *)
module Oracle : sig
  val to_turtle : ?prefixes:(string * string) list -> Oracle_store.t -> string

  val to_ntriples : Oracle_store.t -> string
end

exception Parse_error of string

val parse_ntriples : string -> Triple_store.t
(** Minimal N-Triples reader: IRIs, blank nodes, literals with optional
    datatype; [#] comment lines ignored.
    @raise Parse_error on malformed input. *)
