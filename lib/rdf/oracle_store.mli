(** The pre-columnar triple store, kept as the property-test oracle for
    {!Triple_store}: boxed assoc-list triples, string dedup keys,
    filter-based pattern probes.  Same observable contract — property
    tests assert [find]/[count]/[query] agreement and byte-identical
    Turtle (via {!Turtle.Oracle}) against the columnar engine. *)

type triple = Term.t * Term.t * Term.t

type t

val create : unit -> t

val add : t -> triple -> unit
(** Idempotent (set semantics). *)

val mem : t -> triple -> bool

val size : t -> int

val triples : t -> triple list
(** In insertion order. *)

val iter : t -> (triple -> unit) -> unit

type pattern = Term.t option * Term.t option * Term.t option

val find : t -> pattern -> triple list

val count : t -> pattern -> int

val solutions :
  t ->
  (Triple_store.bgp_term * Triple_store.bgp_term * Triple_store.bgp_term) list ->
  (string * Term.t) list list

val query :
  t ->
  (Triple_store.bgp_term * Triple_store.bgp_term * Triple_store.bgp_term) list ->
  Weblab_relalg.Table.t
