(** Append-only term dictionary: maps {!Term.t} values to dense integer
    ids, first-seen order, never reused.  The dictionary side of the
    columnar {!Triple_store}: triples are stored as three parallel int
    arrays of ids into one of these tables, so each distinct term is
    boxed once per store no matter how many triples mention it. *)

type t

val create : unit -> t

val intern : t -> Term.t -> int
(** The id of a term, allocating one on first sight.  Writer-side only:
    must be called from the domain that owns the store. *)

val id_opt : t -> Term.t -> int option
(** The id of a term if it was ever interned; [None] otherwise.  Used by
    pattern probes — a bound term with no id matches nothing. *)

val term : t -> int -> Term.t
(** The term behind an id.  Read-only and safe to call concurrently with
    {!intern} from other domains.
    @raise Invalid_argument on an id never returned by {!intern}. *)

val unsafe_term : t -> int -> Term.t
(** {!term} without the bounds check, for decode loops whose ids are
    valid by construction (they came out of {!intern}). *)

val count : t -> int
(** Number of distinct terms interned so far. *)

val compact : t -> unit
(** Trim the id array's growth slack.  Writer-side only. *)
