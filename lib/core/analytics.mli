(** Analysis of generated provenance — the §8 plan to "thoroughly analyze
    our generated provenance information, in order to conceive efficient
    provenance storage and querying methods": structural metrics of a
    graph, and the store-explicit-vs-materialize-closure ablation of the
    efficient-provenance-storage literature the paper cites. *)

type metrics = {
  resources : int;
  explicit_links : int;
  inherited_links : int;
  blowup : float;   (** (explicit + inherited) / explicit *)
  max_fan_in : int;   (** links into the most-used resource *)
  max_fan_out : int;  (** links out of the most-derived resource *)
  depth : int;        (** longest dependency chain *)
  links_per_rule : (string * int) list;  (** explicit links, most first *)
}

val metrics : Prov_graph.t -> metrics

val metrics_to_string : metrics -> string

type ablation = {
  explicit_only_bytes : int;   (** N-Triples size, explicit links only *)
  materialized_bytes : int;    (** N-Triples size with the closure *)
  savings : float;             (** 1 - explicit/materialized *)
  closure_cost_ms_hint : string;
      (** the query-time price of the on-demand strategy *)
}

val storage_ablation : Weblab_xml.Tree.t -> Prov_graph.t -> ablation
(** Quantify the storage trade-off on a concrete execution: how much the
    store shrinks when inherited links are recomputed on demand instead of
    materialized.  The input graph must be explicit-only. *)

(** {1 Failure statistics}

    Aggregates over an outcome-labelled trace (see
    {!Weblab_workflow.Trace}): how much of the execution survived and what
    supervision cost. *)

type failure_stats = {
  calls_total : int;  (** committed + failed; the Source pseudo-call excluded *)
  calls_committed : int;
  calls_failed : int;
  calls_retried : int;  (** committed only after at least one failed attempt *)
  attempts_total : int;
  backoff_ms_total : float;  (** simulated backoff, summed over all attempts *)
  failures_by_service : (string * int) list;  (** most failures first *)
}

val failure_stats : Weblab_workflow.Trace.t -> failure_stats

val failure_stats_to_string : failure_stats -> string
