(* Analysis of generated provenance — the §8 plan: "We intend to
   thoroughly analyze our generated provenance information, in order to
   conceive efficient provenance storage and querying methods".

   Two parts:

   - structural metrics of a graph (size, fan-in/out, depth, per-rule link
     counts, the blow-up factor of the inherited closure), feeding the
     storage discussion in EXPERIMENTS.md;
   - the storage ablation of Chapman et al. / Anand et al.: materializing
     the inherited closure multiplies stored links, while storing only the
     explicit links and recomputing inheritance on demand keeps the store
     small at a bounded query-time cost.  [storage_ablation] quantifies
     the trade-off on a concrete execution. *)


type metrics = {
  resources : int;
  explicit_links : int;
  inherited_links : int;
  blowup : float;          (* (explicit + inherited) / explicit *)
  max_fan_in : int;        (* most-used resource *)
  max_fan_out : int;       (* most-derived resource *)
  depth : int;             (* longest dependency chain *)
  links_per_rule : (string * int) list;  (* sorted by count, desc *)
}

let metrics (g : Prov_graph.t) : metrics =
  let links = Prov_graph.links g in
  let explicit, inherited =
    List.partition (fun l -> not l.Prov_graph.inherited) links
  in
  let count_by f =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun l ->
        let k = f l in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      links;
    tbl
  in
  let max_of tbl = Hashtbl.fold (fun _ v acc -> max v acc) tbl 0 in
  let fan_out = count_by (fun l -> l.Prov_graph.from_uri) in
  let fan_in = count_by (fun l -> l.Prov_graph.to_uri) in
  (* Longest chain over the DAG (memoized DFS). *)
  let memo = Hashtbl.create 32 in
  let rec depth_of uri =
    match Hashtbl.find_opt memo uri with
    | Some d -> d
    | None ->
      Hashtbl.replace memo uri 0;  (* cycle guard; graphs are DAGs anyway *)
      let d =
        Prov_graph.depends_on g uri
        |> List.fold_left (fun acc v -> max acc (1 + depth_of v)) 0
      in
      Hashtbl.replace memo uri d;
      d
  in
  let depth =
    Prov_graph.labeled_resources g
    |> List.fold_left (fun acc (uri, _) -> max acc (depth_of uri)) 0
  in
  let links_per_rule =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let r = if l.Prov_graph.rule = "" then "(unnamed)" else l.Prov_graph.rule in
        Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
      explicit;
    Hashtbl.fold (fun r c acc -> (r, c) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let ne = List.length explicit and ni = List.length inherited in
  {
    resources = List.length (Prov_graph.labeled_resources g);
    explicit_links = ne;
    inherited_links = ni;
    blowup = (if ne = 0 then 1.0 else float_of_int (ne + ni) /. float_of_int ne);
    max_fan_in = max_of fan_in;
    max_fan_out = max_of fan_out;
    depth;
    links_per_rule;
  }

let metrics_to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "resources=%d explicit=%d inherited=%d blowup=%.2fx fan-in<=%d \
        fan-out<=%d depth=%d\n"
       m.resources m.explicit_links m.inherited_links m.blowup m.max_fan_in
       m.max_fan_out m.depth);
  List.iter
    (fun (r, c) -> Buffer.add_string buf (Printf.sprintf "  rule %-6s %d links\n" r c))
    m.links_per_rule;
  Buffer.contents buf

(* ---- storage ablation ---- *)

type ablation = {
  explicit_only_bytes : int;   (* RDF store of the explicit graph *)
  materialized_bytes : int;    (* RDF store with the inherited closure *)
  savings : float;             (* 1 - explicit/materialized *)
  closure_cost_ms_hint : string;
      (* what the on-demand strategy pays instead: recomputing the closure *)
}

let storage_ablation doc (g_explicit : Prov_graph.t) : ablation =
  let explicit_only_bytes =
    String.length (Prov_export.to_ntriples g_explicit)
  in
  (* Re-derive the closure on a copy (close mutates). *)
  let copy = Prov_export.of_store (Prov_export.to_store g_explicit) in
  let t0 = Sys.time () in
  let closed = Inheritance.close doc copy in
  let dt = (Sys.time () -. t0) *. 1000.0 in
  let materialized_bytes = String.length (Prov_export.to_ntriples closed) in
  {
    explicit_only_bytes;
    materialized_bytes;
    savings =
      (if materialized_bytes = 0 then 0.0
       else 1.0 -. (float_of_int explicit_only_bytes
                    /. float_of_int materialized_bytes));
    closure_cost_ms_hint = Printf.sprintf "%.2f ms to recompute the closure" dt;
  }

(* ---- failure statistics ---- *)

(* Aggregates over an outcome-labelled trace: how much of the execution
   survived, what it cost in attempts and simulated backoff, and which
   services failed. *)

open Weblab_workflow

type failure_stats = {
  calls_total : int;        (* committed + failed (Source excluded) *)
  calls_committed : int;
  calls_failed : int;
  calls_retried : int;      (* committed only after >= 1 failed attempt *)
  attempts_total : int;
  backoff_ms_total : float; (* simulated, summed over all attempts *)
  failures_by_service : (string * int) list;  (* most failures first *)
}

let failure_stats (trace : Trace.t) : failure_stats =
  let committed =
    List.filter (fun (c : Trace.call) -> c.Trace.time > 0) (Trace.calls trace)
  in
  let failed = Trace.failed_calls trace in
  let retried =
    List.filter
      (fun (c : Trace.call) ->
        match Trace.outcome_at trace c.Trace.time with
        | Some (Trace.Retried _) -> true
        | _ -> false)
      committed
  in
  let attempts = Trace.attempts trace in
  let by_service = Hashtbl.create 8 in
  List.iter
    (fun (c : Trace.call) ->
      Hashtbl.replace by_service c.Trace.service
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_service c.Trace.service)))
    failed;
  {
    calls_total = List.length committed + List.length failed;
    calls_committed = List.length committed;
    calls_failed = List.length failed;
    calls_retried = List.length retried;
    attempts_total = List.length attempts;
    backoff_ms_total =
      List.fold_left (fun acc (a : Trace.attempt) -> acc +. a.Trace.a_backoff_ms)
        0. attempts;
    failures_by_service =
      Hashtbl.fold (fun s n acc -> (s, n) :: acc) by_service []
      |> List.sort (fun (s1, n1) (s2, n2) ->
             let c = compare n2 n1 in
             if c <> 0 then c else String.compare s1 s2);
  }

let failure_stats_to_string st =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "calls=%d committed=%d failed=%d retried=%d attempts=%d backoff=%.1fms\n"
       st.calls_total st.calls_committed st.calls_failed st.calls_retried
       st.attempts_total st.backoff_ms_total);
  List.iter
    (fun (s, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-20s %d failure(s)\n" s n))
    st.failures_by_service;
  Buffer.contents buf
