(* A fixed-size domain pool with work-stealing deques.

   Inference fan-outs hand the pool a batch of independent, coarse work
   items (one mapping-rule evaluation each).  Each worker owns a deque of
   item indices: the owner pops from the bottom, idle workers steal from
   the top of a victim's deque — the classic work-stealing discipline,
   here with a per-deque mutex instead of a lock-free Chase-Lev buffer.
   Items cost micro- to milliseconds, so deque operations are noise; a
   mutex keeps the memory-model reasoning trivial on every OCaml 5.x.

   Determinism does not depend on the schedule: results are stored by
   item index and handed back in index order, so the caller's merge is
   the same fold the sequential loop performs. *)

(* ----- Work-stealing deque of item indices ----- *)

type deque = {
  items : int array;  (* the slice of indices this worker starts with *)
  mutable top : int;  (* next steal position (inclusive) *)
  mutable bottom : int;  (* next owner position (exclusive) *)
  lock : Mutex.t;
}

let deque_of_slice items = { items; top = 0; bottom = Array.length items; lock = Mutex.create () }

(* Owner end: LIFO keeps the hot cache lines with the worker. *)
let pop_bottom d =
  Mutex.protect d.lock (fun () ->
      if d.bottom > d.top then begin
        d.bottom <- d.bottom - 1;
        Some d.items.(d.bottom)
      end
      else None)

(* Thief end: FIFO steals the oldest (largest remaining) chunk of work. *)
let steal_top d =
  Mutex.protect d.lock (fun () ->
      if d.top < d.bottom then begin
        let i = d.items.(d.top) in
        d.top <- d.top + 1;
        Some i
      end
      else None)

(* ----- Batches ----- *)

type batch = {
  run : int -> unit;  (* body; stores its own result, never raises *)
  deques : deque array;  (* one per worker, worker 0 = the caller *)
  remaining : int Atomic.t;  (* items not yet finished *)
}

type t = {
  size : int;  (* total workers, caller included *)
  lock : Mutex.t;
  work_cond : Condition.t;  (* workers: "a new batch is up" *)
  done_cond : Condition.t;  (* caller: "the last item finished" *)
  mutable current : (int * batch) option;  (* (epoch, batch) *)
  mutable epoch : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;  (* size - 1 spawned workers *)
  (* Lifetime stats: atomics because workers update them concurrently;
     one fetch-and-add per item/steal/park is noise next to item cost. *)
  s_steals : int Atomic.t;
  s_parks : int Atomic.t;
  s_batches : int Atomic.t;
  s_items : int Atomic.t array;  (* per worker slot *)
}

type stats = {
  steals : int;
  parks : int;
  batches : int;
  items_per_worker : int array;
}

let stats t =
  { steals = Atomic.get t.s_steals;
    parks = Atomic.get t.s_parks;
    batches = Atomic.get t.s_batches;
    items_per_worker = Array.map Atomic.get t.s_items }

let clamp_jobs j = if j < 1 then 1 else j

let default_jobs () =
  let hw = clamp_jobs (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> hw)
  | None -> hw

let configured_jobs () =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)
  | None -> 1

let jobs t = t.size

(* One worker's share of a batch: drain the own deque, then go stealing;
   a full empty round over every other deque means the batch has no
   queued work left (items never re-enter a deque), so the worker is
   done with it.  Whoever finishes the last item wakes the caller. *)
let work t (b : batch) w =
  Weblab_obs.Telemetry.set_worker w;
  let exec i =
    ignore (Atomic.fetch_and_add t.s_items.(w) 1);
    b.run i;
    if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
      Mutex.lock t.lock;
      Condition.broadcast t.done_cond;
      Mutex.unlock t.lock
    end
  in
  let rec own () =
    match pop_bottom b.deques.(w) with
    | Some i ->
      exec i;
      own ()
    | None -> steal 1
  and steal k =
    if k < t.size then
      match steal_top b.deques.((w + k) mod t.size) with
      | Some i ->
        ignore (Atomic.fetch_and_add t.s_steals 1);
        exec i;
        own ()
      | None -> steal (k + 1)
  in
  own ()

(* A spawned worker parks between batches; epochs tell a fresh batch
   from the one it just drained.  Each worker is spawned with its fixed
   deque slot [w]. *)
let worker t w () =
  let rec loop last_epoch =
    Mutex.lock t.lock;
    let rec await () =
      if t.stopped then None
      else
        match t.current with
        | Some (e, b) when e <> last_epoch -> Some (e, b)
        | Some _ | None ->
          ignore (Atomic.fetch_and_add t.s_parks 1);
          Condition.wait t.work_cond t.lock;
          await ()
    in
    let next = await () in
    Mutex.unlock t.lock;
    match next with
    | None -> ()
    | Some (e, b) ->
      work t b w;
      loop e
  in
  loop 0

let create ?jobs () =
  let size = clamp_jobs (match jobs with Some j -> clamp_jobs j | None -> default_jobs ()) in
  let t =
    { size; lock = Mutex.create (); work_cond = Condition.create ();
      done_cond = Condition.create (); current = None; epoch = 0;
      stopped = false; domains = [];
      s_steals = Atomic.make 0; s_parks = Atomic.make 0;
      s_batches = Atomic.make 0;
      s_items = Array.init size (fun _ -> Atomic.make 0) }
  in
  if size > 1 then
    t.domains <- List.init (size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* Sample this pool's lifetime stats into the telemetry snapshot, so
       [--profile] shows them without the caller holding the pool.
       Gauges, sampled at the shutdown boundary: Pool.stats is a
       point-in-time census of one pool, not a process-wide sum — in a
       daemon hosting many session pools the gauges read the most
       recently retired pool, while cumulative totals belong to the
       per-call counters the strategies already keep. *)
    let module T = Weblab_obs.Telemetry in
    let module M = Weblab_obs.Metrics in
    if T.enabled () then begin
      let s = stats t in
      M.set (M.gauge "pool.steals") s.steals;
      M.set (M.gauge "pool.parks") s.parks;
      M.set (M.gauge "pool.batches") s.batches;
      Array.iteri
        (fun w n -> M.set (M.gauge (Printf.sprintf "pool.items.w%d" w)) n)
        s.items_per_worker
    end
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Block distribution: worker w starts with the contiguous slice
   [w*n/size, (w+1)*n/size) — neighbours in the item array tend to share
   inputs, and a contiguous slice keeps the sequential fallback's access
   pattern. *)
let slices n size =
  Array.init size (fun w ->
      let lo = w * n / size and hi = (w + 1) * n / size in
      Array.init (hi - lo) (fun i -> lo + i))

let map t n f =
  if n = 0 then [||]
  else if t.size = 1 then begin
    ignore (Atomic.fetch_and_add t.s_batches 1);
    ignore (Atomic.fetch_and_add t.s_items.(0) n);
    (* The exact sequential path: no deques, no domains, index order. *)
    let results = Array.make n None in
    for i = 0 to n - 1 do
      results.(i) <- Some (f i)
    done;
    Array.map Option.get results
  end
  else begin
    ignore (Atomic.fetch_and_add t.s_batches 1);
    let results = Array.make n None in
    let error = Atomic.make None in
    let run i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e ->
        (* First error wins; the batch still drains so the join below
           never deadlocks. *)
        ignore (Atomic.compare_and_set error None (Some e))
    in
    let b =
      { run;
        deques = Array.map deque_of_slice (slices n t.size);
        remaining = Atomic.make n }
    in
    Mutex.lock t.lock;
    t.epoch <- t.epoch + 1;
    t.current <- Some (t.epoch, b);
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    (* The caller is worker 0. *)
    work t b 0;
    Mutex.lock t.lock;
    while Atomic.get b.remaining > 0 do
      Condition.wait t.done_cond t.lock
    done;
    t.current <- None;
    Mutex.unlock t.lock;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every slot ran: remaining hit 0, no error *))
      results
  end

let iter t n f = ignore (map t n f)
