(** The Online strategy backend — Definition 9 applied literally, during
    the execution.  Doubles as the reference implementation the other
    backends are property-tested against. *)

open Weblab_xml
open Weblab_workflow

val observe_call :
  Prov_graph.t ->
  Strategy_sig.rulebook ->
  Trace.call ->
  Doc_state.t ->
  Doc_state.t ->
  unit
(** Apply one committed call's rules to the surrounding states and add
    the generated links to the graph — the body of the classic
    {!Strategy.online} hook, exposed for the thin shim. *)

include Strategy_sig.STRATEGY_BACKEND
