(** The Rewrite strategy backend — the §4 temporal rewriting,
    operationalized as a post-hoc single pass. *)

open Weblab_xml
open Weblab_workflow

val infer :
  ?happened_before:(int -> int -> bool) ->
  ?jobs:int ->
  doc:Tree.t ->
  trace:Trace.t ->
  Strategy_sig.rulebook ->
  Prov_graph.t ->
  unit
(** Add every rewritten-pass link to an existing graph — the work
    {!Strategy.infer} [~strategy:`Rewrite] delegates here.  [jobs] fans
    the (service, rule) work items out over a {!Pool}; per-item emission
    buffers are replayed in item order, so the graph is bit-identical to
    the sequential pass for any [jobs]. *)

include Strategy_sig.STRATEGY_BACKEND
