(** The Rewrite strategy backend — the §4 temporal rewriting,
    operationalized as a post-hoc single pass. *)

open Weblab_xml
open Weblab_workflow

val infer :
  ?happened_before:(int -> int -> bool) ->
  doc:Tree.t ->
  trace:Trace.t ->
  Strategy_sig.rulebook ->
  Prov_graph.t ->
  unit
(** Add every rewritten-pass link to an existing graph — the work
    {!Strategy.infer} [~strategy:`Rewrite] delegates here. *)

include Strategy_sig.STRATEGY_BACKEND
