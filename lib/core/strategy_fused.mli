(** The Fused strategy backend: the rulebook is compiled into one shared
    plan ({!Weblab_compile}) — pattern-prefix trie, common-subexpression
    elimination, estimate-ordered hash joins — and each committed call
    is processed in a single fused pass per side, evaluating every
    distinct pattern step once however many rules reference it.

    Produces graphs bit-identical (links and serialized Turtle) to the
    Online reference, for any [jobs], including under fault injection —
    property-tested five-ways in CI.  Skolem rules and rules with free
    target variables run through the exact rule-at-a-time fallback. *)

open Weblab_xml

include Strategy_sig.STRATEGY_BACKEND

val compile : doc:Tree.t -> Strategy_sig.rulebook -> Weblab_compile.Plan.t
(** The static half: classify rules (Skolem / free target variables go
    exact), intern patterns, pick join sides from an index of [doc]. *)

val explain : doc:Tree.t -> Strategy_sig.rulebook -> string
(** [Weblab_compile.Explain.to_string] of {!compile} — what the CLI's
    [--explain-plan] prints. *)
