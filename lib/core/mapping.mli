(** Application of mapping rules — Definitions 8 and 9.

    {v M(d, d') = π(in,out)( ρ(r→in) R_φS(d)  ⋈  ρ(r→out) R_φT(d') )
       M(c)     = M(d_{i-1}, d_i) ⋉ out(c) v}

    Skolem rules (§5) are recognized by an [f(…) = @id] predicate on the
    target's final step: the ground term f(v̄) becomes the identifier of
    the produced entity — computed per {e joined} row, since its arguments
    may refer to source bindings — and the matched XML nodes are reported
    as the entity's members. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow

type application = {
  links : (string * string) list;
      (** (out, in) pairs: [out] was derived from [in].  Self-links are
          dropped (Definition 3 requires a DAG). *)
  members : (string * string) list;
      (** (Skolem entity, member resource) pairs; empty for plain rules. *)
}

val skolem_id_of_target : Ast.pattern -> (string * Ast.operand list) option
(** The [f(…) = @id] predicate of the final step, if any. *)

val is_skolem_rule : Rule.t -> bool

val source_table :
  ?guards:Eval.guards -> ?index:Index.t -> Tree.t -> Rule.t -> Table.t
(** ρ(r→in) R{_φS}: the source embeddings with the result column renamed
    to ["in"], projected to the join-relevant columns.  [index] is handed
    to {!Eval.eval} (the document index fast path). *)

val target_table :
  ?guards:Eval.guards -> ?index:Index.t -> Tree.t -> Rule.t -> Table.t
(** ρ(r→out) R{_φT}, for non-Skolem rules.
    @raise Invalid_argument on a Skolem rule. *)

val join_table : Rule.t -> Doc_state.t -> Doc_state.t -> Table.t
(** The joined table with the shared variables still visible — the tables
    of Example 6. *)

val links_of_table : Table.t -> (string * string) list
(** Extract (out, in) links from a joined table, dropping self-links. *)

val apply_states :
  ?index:Index.t -> Rule.t -> Doc_state.t -> Doc_state.t -> application
(** Definition 8: M(d, d').  [index] is a prebuilt snapshot for the
    (shared) document: parallel inference builds it once up front so
    workers never contend on the {!Index.for_tree} cache. *)

val apply_guarded :
  ?index:Index.t ->
  Rule.t ->
  doc:Tree.t ->
  source_visible:(Tree.node -> bool) ->
  target_state:Doc_state.t ->
  application
(** Like {!apply_states} with an explicit source-side visibility predicate
    — the hook for non-sequential control flow (§8), where "existed before
    the call" is a happened-before relation rather than a timestamp
    comparison. *)

val restrict_to_generated :
  application -> generated:(string -> bool) -> application
(** Keep the links whose produced endpoint satisfies [generated]; a Skolem
    entity survives when at least one member does. *)

val restrict_to_call : application -> trace:Trace.t -> call:Trace.call -> application
(** Definition 9's ⋉ out(c). *)

val apply_call :
  ?source_visible:(Tree.node -> bool) ->
  ?index:Index.t ->
  Rule.t ->
  doc:Tree.t ->
  trace:Trace.t ->
  call:Trace.call ->
  application
(** Definition 9: M(c), on the states reconstructed from [doc] (or with
    the supplied source visibility).  [index] as in {!apply_states}. *)
