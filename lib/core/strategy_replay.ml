(* The Replay strategy, as a backend: post-hoc, per call — the states
   d_{i-1} and d_i are reconstructed from the final document (cheap in
   this code base, since states are timestamp-filtered views of the
   arena) and the service's rules are applied to each pair.

   Replay is the embarrassingly parallel strategy: every (call, rule)
   work item reads the same frozen document through timestamp-filtered
   views, so the items fan out over a {!Pool} with no shared mutable
   state at all.  The index snapshot is built once up front and handed
   to every worker; the per-item applications are merged back into the
   graph in trace order, which performs the exact [add_link] sequence of
   the sequential loop — the graph is bit-identical whatever the
   schedule. *)

open Weblab_xml
open Weblab_workflow

let name = "replay"

let infer ?(happened_before = Strategy_sig.sequential_hb) ?jobs ~doc ~trace
    (rb : Strategy_sig.rulebook) g =
  (* The flattened (call, rule) work items, in trace order. *)
  let items =
    Trace.calls trace
    |> List.concat_map (fun (call : Trace.call) ->
           if call.Trace.time > 0 then
             List.map
               (fun rule -> (call, rule))
               (Strategy_sig.rules_for rb call.Trace.service)
           else [])
    |> Array.of_list
  in
  if Array.length items > 0 then begin
    let index = Index.for_tree doc in
    let apply (call, rule) =
      let source_visible n =
        happened_before (Tree.created doc n) call.Trace.time
      in
      Mapping.apply_call ~source_visible ~index rule ~doc ~trace ~call
    in
    let module T = Weblab_obs.Telemetry in
    let apps =
      Pool.with_pool ?jobs (fun pool ->
          Pool.map pool (Array.length items) (fun i ->
              T.timed (fun () -> apply items.(i))))
    in
    (* Merge in item order = trace order: the same insertion sequence the
       sequential loop performs. *)
    Array.iteri
      (fun i tr ->
        let call, rule = items.(i) in
        let rule_name = Rule.name rule in
        Strategy_sig.record_rule_eval ~service:call.Trace.service
          ~time:call.Trace.time ~rule_name ~t0:tr.T.t0 ~t1:tr.T.t1
          ~worker:tr.T.worker ~links:tr.T.v.Mapping.links;
        Strategy_sig.add_application g rule_name tr.T.v)
      apps
  end

type state = { rb : Strategy_sig.rulebook; jobs : int option }

let init ?jobs ~doc:_ rb = { rb; jobs }

let observe _ ~call:_ ~before:_ ~after:_ ~delta:_ = ()

let finalize st ~doc ~trace =
  let g = Prov_graph.of_trace trace in
  infer ?jobs:st.jobs ~doc ~trace st.rb g;
  g

(* Post-hoc: a snapshot is a full inference over the current document and
   trace — [finalize] holds no terminal resources, so it doubles as the
   snapshot. *)
let snapshot st ~doc ~trace = finalize st ~doc ~trace
