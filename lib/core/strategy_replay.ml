(* The Replay strategy, as a backend: post-hoc, per call — the states
   d_{i-1} and d_i are reconstructed from the final document (cheap in
   this code base, since states are timestamp-filtered views of the
   arena) and the service's rules are applied to each pair. *)

open Weblab_xml
open Weblab_workflow

let name = "replay"

let infer ?(happened_before = Strategy_sig.sequential_hb) ~doc ~trace
    (rb : Strategy_sig.rulebook) g =
  List.iter
    (fun (call : Trace.call) ->
      if call.Trace.time > 0 then begin
        let source_visible n =
          happened_before (Tree.created doc n) call.Trace.time
        in
        List.iter
          (fun rule ->
            let app = Mapping.apply_call ~source_visible rule ~doc ~trace ~call in
            Strategy_sig.add_application g (Rule.name rule) app)
          (Strategy_sig.rules_for rb call.Trace.service)
      end)
    (Trace.calls trace)

type state = { rb : Strategy_sig.rulebook }

let init ~doc:_ rb = { rb }

let observe _ ~call:_ ~before:_ ~after:_ ~delta:_ = ()

let finalize st ~doc ~trace =
  let g = Prov_graph.of_trace trace in
  infer ~doc ~trace st.rb g;
  g
