(** A fixed-size pool of OCaml 5 domains with per-worker work-stealing
    deques, sized for the inference fan-outs: a batch of coarse,
    independent work items (one rule evaluation each, micro- to
    milliseconds) is distributed over the workers and the results are
    returned {e in item order}, so callers can merge them exactly as the
    sequential loop would have produced them.

    [jobs] counts the total parallelism: the calling domain always
    participates as worker 0, and [jobs - 1] extra domains are spawned.
    [jobs = 1] spawns nothing and runs every item in the caller, in
    index order — the exact sequential path.

    The pool is reusable across batches (workers park on a condition
    variable between them), which is what the execution-time backends
    need: one pool for the whole run, one batch per committed call. *)

type t

val default_jobs : unit -> int
(** The hardware default: [Domain.recommended_domain_count () - 1]
    (leaving a core for the orchestrator), floored at 1.  The [JOBS]
    environment variable overrides it. *)

val configured_jobs : unit -> int
(** The library default for inference entry points: the [JOBS]
    environment variable when set (this is how [JOBS=4 dune runtest]
    exercises the parallel path), and 1 — the sequential path —
    otherwise.  Explicit [?jobs] arguments always win. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}; values below 1 are clamped
    to 1. *)

val jobs : t -> int
(** Total parallelism of the pool (including the calling domain). *)

type stats = {
  steals : int;  (** items taken from another worker's deque *)
  parks : int;  (** times a spawned worker blocked waiting for a batch *)
  batches : int;  (** {!map}/{!iter} calls with at least one item *)
  items_per_worker : int array;  (** items executed, by worker slot *)
}

val stats : t -> stats
(** Lifetime counters of the pool (cheap atomic reads; callable while a
    batch runs, in which case the numbers are a momentary snapshot).
    {!shutdown} also folds them into the telemetry recorder as
    [pool.steals] / [pool.parks] / [pool.batches] / [pool.items.w<i>]
    counters when it is enabled, which is how [--profile] reports pools
    that live and die inside a strategy backend. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] computes [f i] for every [i] in [0, n): items are
    block-distributed over the per-worker deques, idle workers steal
    from the top of a victim's deque, and the results land in slot [i]
    of the returned array regardless of which worker ran the item.
    [f] must be safe to run from any domain (it may only read shared
    state); exceptions are re-raised in the caller — the first one
    observed wins and the batch still drains.  Not reentrant: one batch
    at a time per pool. *)

val iter : t -> int -> (int -> unit) -> unit
(** {!map} without results. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must be idle. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
