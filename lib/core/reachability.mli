(** Materialized reachability over frozen provenance graphs — the
    "efficient provenance storage and querying methods" §8 defers to
    future work.

    The transitive closure is computed once, as bitsets over a dense node
    numbering; [depends_on] is then a bit test and closure enumeration a
    linear scan.  Building is O(nodes × edges / word) — worth it as soon
    as a handful of queries hit the same graph, the Request Manager's
    read-mostly situation (Figure 5).  The graph must be a DAG
    (Definition 3 guarantees it). *)

type t

val build : Prov_graph.t -> t

val size : t -> int
(** Number of indexed nodes. *)

val depends_on : t -> on:string -> string -> bool
(** [depends_on t ~on:a b]: does [b] transitively depend on [a]?
    [false] when either URI is unknown to the graph. *)

val ancestors : t -> string -> string list
(** Everything the resource transitively depends on, sorted — agrees with
    {!Query.depends_on_transitive} (tested). *)

val descendants : t -> string -> string list
(** Everything that transitively depends on the resource, sorted. *)

val closure_table : t -> Weblab_relalg.Table.t
(** The materialized depends-on{^ *} relation as a binding table with
    columns [("from", "to")] — provenance queries can
    {!Weblab_relalg.Table.hash_join} pattern-embedding tables against it. *)

val impact_table : t -> string -> Weblab_relalg.Table.t
(** [impact_table t u]: columns [("impacted", "via", "cause")] — every
    resource whose lineage passes through [u], hash-joined (through the
    shared ["via"] = [u] column) with everything [u] depends on. *)
