(* Materialized reachability over provenance graphs — the "efficient
   provenance storage and querying methods" future work of §8 (citing
   Anand et al. and Chapman et al.).

   Provenance queries are dominated by reachability ("does resource b
   transitively depend on a?", "all upstream sources of b"), which BFS
   answers in O(edges) per query.  This index materializes the transitive
   closure once, as compact bitsets over a dense node numbering; queries
   then cost O(1) (a bit test) or O(nodes/word) (closure enumeration).
   Building costs O(nodes × edges / word) — worth it as soon as more than
   a handful of queries hit the same frozen graph, which is exactly the
   Request Manager's read-mostly situation (Fig. 5). *)

type t = {
  ids : (string, int) Hashtbl.t;
  names : string array;
  (* closure.(i) = bitset of node ids reachable from i via depends-on *)
  closure : Bytes.t array;
}

let bit_get bs i = Char.code (Bytes.get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bs i =
  Bytes.set bs (i lsr 3)
    (Char.chr (Char.code (Bytes.get bs (i lsr 3)) lor (1 lsl (i land 7))))

let bytes_or ~into src =
  for k = 0 to Bytes.length into - 1 do
    Bytes.set into k
      (Char.chr (Char.code (Bytes.get into k) lor Char.code (Bytes.get src k)))
  done

let build (g : Prov_graph.t) : t =
  (* Dense numbering of every node occurring in a link or a label. *)
  let ids = Hashtbl.create 64 in
  let add_node u = if not (Hashtbl.mem ids u) then Hashtbl.add ids u (Hashtbl.length ids) in
  List.iter (fun (u, _) -> add_node u) (Prov_graph.labeled_resources g);
  List.iter
    (fun l ->
      add_node l.Prov_graph.from_uri;
      add_node l.Prov_graph.to_uri)
    (Prov_graph.links g);
  let n = Hashtbl.length ids in
  let names = Array.make n "" in
  Hashtbl.iter (fun u i -> names.(i) <- u) ids;
  let nbytes = (n + 7) / 8 in
  let closure = Array.init n (fun _ -> Bytes.make nbytes '\000') in
  let succs = Array.make n [] in
  List.iter
    (fun l ->
      let a = Hashtbl.find ids l.Prov_graph.from_uri in
      let b = Hashtbl.find ids l.Prov_graph.to_uri in
      succs.(a) <- b :: succs.(a))
    (Prov_graph.links g);
  (* Provenance graphs are DAGs (Definition 3): process in reverse
     topological order so each closure is computed once. *)
  let visited = Array.make n 0 in
  (* 0 = white, 1 = done *)
  let rec visit i =
    if visited.(i) = 0 then begin
      visited.(i) <- 1;
      List.iter
        (fun j ->
          visit j;
          bit_set closure.(i) j;
          bytes_or ~into:closure.(i) closure.(j))
        succs.(i)
    end
  in
  for i = 0 to n - 1 do
    visit i
  done;
  { ids; names; closure }

let id t u = Hashtbl.find_opt t.ids u

(* [depends_on t b a]: does b transitively depend on a? *)
let depends_on t ~on:a b =
  match id t b, id t a with
  | Some ib, Some ia -> bit_get t.closure.(ib) ia
  | _ -> false

(* Every resource [u] transitively depends on, sorted. *)
let ancestors t u =
  match id t u with
  | None -> []
  | Some i ->
    let acc = ref [] in
    for j = Array.length t.names - 1 downto 0 do
      if bit_get t.closure.(i) j then acc := t.names.(j) :: !acc
    done;
    List.sort String.compare !acc

(* Every resource that transitively depends on [u], sorted. *)
let descendants t u =
  match id t u with
  | None -> []
  | Some j ->
    let acc = ref [] in
    for i = Array.length t.names - 1 downto 0 do
      if bit_get t.closure.(i) j then acc := t.names.(i) :: !acc
    done;
    List.sort String.compare !acc

let size t = Array.length t.names

(* The closure as a binding table over ("from", "to") — the materialized
   depends-on* relation in the same relational algebra as the pattern
   tables, so provenance queries can hash-join against it (e.g. closure ⋈
   embeddings to restrict pattern matches to the lineage of a resource). *)
let closure_table t =
  let open Weblab_relalg in
  let rows = ref [] in
  for i = Array.length t.names - 1 downto 0 do
    for j = Array.length t.names - 1 downto 0 do
      if bit_get t.closure.(i) j then
        rows := [| Value.Str t.names.(i); Value.Str t.names.(j) |] :: !rows
    done
  done;
  Table.of_rows [ "from"; "to" ] !rows

(* All resources whose lineages include [u], joined with everything [u]
   itself depends on — the "impact × cause" table of a resource, computed
   relationally: σ(to=u)(closure) ⋈ ρ(from→u', to→cause) σ(from=u)(closure). *)
let impact_table t u =
  let open Weblab_relalg in
  let c = closure_table t in
  let impacted =
    Table.rename
      (Table.select c (fun tbl row -> Table.get tbl row "to" = Value.Str u))
      [ ("from", "impacted"); ("to", "via") ]
  in
  let causes =
    Table.rename
      (Table.select c (fun tbl row -> Table.get tbl row "from" = Value.Str u))
      [ ("from", "via"); ("to", "cause") ]
  in
  (* "via" is [u] on both sides: the hash join keys the product through u. *)
  Table.hash_join impacted causes
