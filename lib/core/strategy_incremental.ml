(* The Incremental strategy: execution-time like Online, but delta-driven.

   Online re-evaluates every rule on whole document states after every
   call, even though the arena is append-only and the orchestrator knows
   exactly which fragment each call added.  This backend consumes that
   delta instead:

   - it owns a document {!Index} and catches it up in place after each
     committed call ({!Index.extend}) — amortized O(delta), with a full
     rebuild only after a rollback or when an order-key band is
     exhausted;
   - target matches of a call are enumerated with {!Eval.eval_delta},
     looking only at the appended fragment and its ancestor spine (full
     evaluation is the fallback for non-delta-localizable targets);
   - source-side binding tables are memoized across calls, keyed by the
     rule's join variables, so each call's target rows hash-join against
     already-materialized source rows instead of re-evaluating φ_S.

   Source memoization is sound only for rules whose source rows are
   {e stable under appends}: downward-axis patterns (every chain node is
   an ancestor-or-self of the final node, so a row's visibility at call
   time t reduces to created(final) < t by timestamp monotonicity) whose
   predicates read nothing but the context node's attributes — committed
   attributes never change.  Anything else — Exists_path and Count can
   flip when descendants are appended, Path string-values grow, positions
   shift — falls back to the exact per-call Online computation for that
   rule, as do Skolem rules.

   The one event that does change committed attributes is URI promotion
   (a call giving an old node an @id — and, via resource labeling, @s and
   @t).  Promotions can create, and with negated predicates destroy,
   memoized rows anywhere; they are rare, so the backend simply resets
   its memo tables and rebuilds them from the current arena.  Because the
   orchestrator only runs the hook for committed calls — failed attempts
   are rolled back first — the memo never sees a discarded node, and
   after a rollback the arena is bit-identical to the last observed
   commit, so the memo prefix stays valid (only the index, which carries
   a generation stamp, needs a rebuild). *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow

let name = "incremental"

module T = Weblab_obs.Telemetry

let c_delta_nodes = T.counter "incr.delta.nodes"
let c_memo_resets = T.counter "incr.memo.resets"
let c_fallback_items = T.counter "incr.items.fallback"
let c_join_items = T.counter "incr.items.join"

(* ----- Memoizability of source patterns ----- *)

(* Operands whose value at a node is fixed once the node's attributes
   are: no positions, no traversals, no string-values of subtrees. *)
let rec operand_memoizable (op : Ast.operand) =
  match op with
  | Ast.Attr _ | Ast.Lit _ | Ast.Num _ | Ast.Var _ -> true
  | Ast.Strlen a -> operand_memoizable a
  | Ast.Skolem (_, args) -> List.for_all operand_memoizable args
  | Ast.Position | Ast.Last | Ast.Count _ | Ast.Path _ | Ast.Path_attr _ ->
    false

let rec pred_memoizable (p : Ast.pred) =
  match p with
  | Ast.Bind (_, src) -> operand_memoizable src
  | Ast.Cmp (a, _, b) -> operand_memoizable a && operand_memoizable b
  | Ast.Exists_attr _ -> true
  | Ast.Fn_bool (_, args) -> List.for_all operand_memoizable args
  | Ast.And (a, b) | Ast.Or (a, b) -> pred_memoizable a && pred_memoizable b
  | Ast.Not a -> pred_memoizable a
  | Ast.Exists_path _ | Ast.Index _ -> false

let source_memoizable (p : Ast.pattern) =
  Eval.delta_localizable p
  && List.for_all
       (fun (s : Ast.step) -> List.for_all pred_memoizable s.Ast.preds)
       p

(* ----- Per-rule plans ----- *)

(* Shared across rules with the same source pattern and join columns: the
   memoized source rows, keyed by join-variable values.  Entries carry
   the row's birth timestamp — created(final node), which by timestamp
   monotonicity bounds the whole downward chain — so a call at time t
   joins against exactly the rows visible in d_{t-1} (birth < t). *)
type memo = {
  keys : string list;  (* join columns, sorted; [] joins everything *)
  rows : (Value.t list, (string * int) list ref) Hashtbl.t;
      (* key values → (source "in" URI, birth) *)
}

type plan =
  | Fallback  (* exact per-call Online computation *)
  | Join of memo  (* delta-evaluated target ⋈ memoized source *)

type state = {
  rb : Strategy_sig.rulebook;
  doc : Tree.t;
  g : Prov_graph.t;
  plans : (Rule.t * plan) array array;
      (* per service, aligned with [services] *)
  services : (string, int) Hashtbl.t;  (* service name → [plans] slot *)
  memos : (Ast.pattern * string list, memo) Hashtbl.t;
  pool : Pool.t;  (* fans the per-call rule loop out *)
  mutable index : Index.t option;  (* owned: extended in place, never shared *)
  mutable upto : int;  (* arena prefix [0, upto) folded into the memos *)
}

let plan_for memos rule =
  let source = Rule.source rule and target = Rule.target rule in
  let src_vars = Ast.variables source in
  let tgt_bound = Ast.variables target in
  if
    Mapping.is_skolem_rule rule
    || (not (source_memoizable source))
    || Ast.free_variables target <> []
       (* a free target variable would join on a column the target
          evaluation cannot produce — exact semantics only *)
  then Fallback
  else begin
    let keys =
      List.filter (fun v -> List.mem v tgt_bound) src_vars
      |> List.sort_uniq String.compare
    in
    let mk = (source, keys) in
    match Hashtbl.find_opt memos mk with
    | Some m -> Join m
    | None ->
      let m = { keys; rows = Hashtbl.create 64 } in
      Hashtbl.add memos mk m;
      Join m
  end

let init ?jobs ~doc (rb : Strategy_sig.rulebook) =
  let memos = Hashtbl.create 8 in
  let services = Hashtbl.create 8 in
  let plans =
    Array.of_list
      (List.mapi
         (fun i (service, rules) ->
           if not (Hashtbl.mem services service) then
             Hashtbl.replace services service i;
           Array.of_list
             (List.map (fun rule -> (rule, plan_for memos rule)) rules))
         rb)
  in
  let jobs = match jobs with Some j -> j | None -> Pool.configured_jobs () in
  (* Index and memos are built lazily at the first observation: [init]
     runs before the orchestrator's prologue has labeled the initial
     resources, so indexing here would snapshot unlabeled attributes. *)
  { rb; doc; g = Prov_graph.create (); plans; services; memos;
    pool = Pool.create ~jobs (); index = None; upto = 0 }

(* ----- Index maintenance ----- *)

let current_index st ~promoted =
  let doc = st.doc in
  match st.index with
  | Some idx when Index.extend idx doc ~promoted -> idx
  | Some _ | None ->
    (* First observation, a rollback happened (generation mismatch), or a
       key band was exhausted: rebuild.  The rebuilt index is privately
       owned, so the shared {!Index.for_tree} cache is left alone. *)
    let idx = Index.build doc in
    st.index <- Some idx;
    idx

(* ----- Source memo maintenance ----- *)

let reset_memos st =
  T.incr c_memo_resets;
  Hashtbl.iter (fun _ m -> Hashtbl.reset m.rows) st.memos;
  st.upto <- 0

let memo_add st m table =
  List.iter
    (fun row ->
      match Table.get table row "node" with
      | Value.Node n ->
        let birth = Tree.created st.doc n in
        let inp = Value.to_string (Table.get table row "r") in
        let key = List.map (fun k -> Table.get table row k) m.keys in
        (match Hashtbl.find_opt m.rows key with
         | Some entries -> entries := (inp, birth) :: !entries
         | None -> Hashtbl.add m.rows key (ref [ (inp, birth) ]))
      | Value.Str _ | Value.Int _ -> ())
    (Table.rows table)

(* The ancestor-or-self closure of the appended fragment: the only nodes
   a downward chain ending in the fragment can pass through. *)
let spine_of doc new_nodes =
  let spine = Hashtbl.create 64 in
  let rec up n =
    if n <> Tree.no_node && not (Hashtbl.mem spine n) then begin
      Hashtbl.add spine n ();
      up (Tree.parent doc n)
    end
  in
  List.iter up new_nodes;
  fun n -> Hashtbl.mem spine n

(* Fold the arena tail [upto, size) into every memo.  Memoizable sources
   are delta-localizable by construction, so the new rows are exactly the
   embeddings ending in the tail — one delta evaluation per distinct
   source pattern.  After a reset (upto = 0) this is one full evaluation
   instead. *)
let extend_memos st idx =
  let doc = st.doc in
  let size = Tree.size doc in
  if Tree.size doc < st.upto then reset_memos st;
  if st.upto < size && Hashtbl.length st.memos > 0 then begin
    let lo = st.upto in
    let eval_chunk source =
      if lo = 0 then Eval.eval ~index:idx doc source
      else begin
        let chunk = List.init (size - lo) (fun i -> lo + i) in
        let touched n = n >= lo && n < size in
        let spine = spine_of doc chunk in
        match Eval.eval_delta ~index:idx ~touched ~spine doc source with
        | Some t -> t
        | None -> assert false (* memoizable ⇒ delta-localizable *)
      end
    in
    Hashtbl.iter
      (fun (source, _) m -> memo_add st m (eval_chunk source))
      st.memos
  end;
  st.upto <- size

(* ----- Per-call link emission -----

   The per-rule loop fans out over the backend's pool, so a rule's work
   writes into an emission buffer instead of into the graph; the buffers
   are replayed in rulebook order, reproducing the sequential insertion
   sequence exactly.  During the fan-out [idx], the memos, and the arena
   are all frozen (the call has committed, maintenance ran up front), so
   workers only read shared state. *)

type emission =
  | App of string * Mapping.application
  | Link of { rule : string; from_uri : string; to_uri : string }

let replay_emission g = function
  | App (rule_name, app) -> Strategy_sig.add_application g rule_name app
  | Link { rule; from_uri; to_uri } ->
    Prov_graph.add_link g ~rule ~from_uri ~to_uri

let emit_join st idx ~(call : Trace.call) ~after ~touched ~spine ~emit rule
    (m : memo) =
  let doc = st.doc in
  let t = call.Trace.time in
  let target = Rule.target rule in
  let tgt =
    match
      Eval.eval_delta ~guards:(Eval.state_guards after) ~index:idx ~touched
        ~spine doc target
    with
    | Some tbl -> tbl
    | None ->
      (* Non-local axes in the target: full evaluation, restricted to the
         generated rows below. *)
      Eval.eval ~guards:(Eval.state_guards after) ~index:idx doc target
  in
  List.iter
    (fun row ->
      match Table.get tgt row "node" with
      | Value.Node n when touched n ->
        (* Only this call's appends count as generated (Definition 9's
           ⋉ out(c)); promoted nodes keep their original timestamp and
           are never an [out]. *)
        let out = Value.to_string (Table.get tgt row "r") in
        let key = List.map (fun k -> Table.get tgt row k) m.keys in
        (match Hashtbl.find_opt m.rows key with
         | Some entries ->
           List.iter
             (fun (inp, birth) ->
               if birth < t && not (String.equal inp out) then
                 emit
                   (Link
                      { rule = Rule.name rule; from_uri = out; to_uri = inp }))
             !entries
         | None -> ())
      | _ -> ())
    (Table.rows tgt)

let observe st ~call ~before ~after ~(delta : Orchestrator.delta) =
  let idx = current_index st ~promoted:delta.Orchestrator.promoted in
  if delta.Orchestrator.promoted <> [] then
    (* Promotion changed committed attributes: memoized rows may appear
       or (under negation) disappear anywhere.  Rare — reset and rebuild
       from the live arena, which is exactly what Online reads. *)
    reset_memos st;
  extend_memos st idx;
  match Hashtbl.find_opt st.services call.Trace.service with
  | None -> ()
  | Some slot ->
    let plans = st.plans.(slot) in
    if Array.length plans > 0 then begin
      let delta_lo =
        Tree.size st.doc - List.length delta.Orchestrator.new_nodes
      in
      let touched n = n >= delta_lo in
      (* Forced eagerly, not on first use: [Lazy.force] from several
         domains is a race. *)
      let spine =
        if delta.Orchestrator.new_nodes <> [] then
          spine_of st.doc delta.Orchestrator.new_nodes
        else fun _ -> false
      in
      T.add c_delta_nodes (List.length delta.Orchestrator.new_nodes);
      let buffers =
        Pool.map st.pool (Array.length plans) (fun i ->
            T.timed (fun () ->
                let rule, plan = plans.(i) in
                match plan with
                | Fallback ->
                  T.incr c_fallback_items;
                  let generated u =
                    match Tree.find_resource st.doc u with
                    | Some n -> Tree.created st.doc n = call.Trace.time
                    | None -> false
                  in
                  let app = Mapping.apply_states ~index:idx rule before after in
                  let app = Mapping.restrict_to_generated app ~generated in
                  [ App (Rule.name rule, app) ]
                | Join m ->
                  T.incr c_join_items;
                  if delta.Orchestrator.new_nodes <> [] then begin
                    let out = ref [] in
                    emit_join st idx ~call ~after ~touched ~spine
                      ~emit:(fun e -> out := e :: !out)
                      rule m;
                    (* Canonical per-item order: the sorted, deduplicated
                       sequence {!Mapping.links_of_table} yields, so the
                       graph's insertion order — and hence the serialized
                       Turtle, which groups subjects first-seen — is
                       bit-identical to the Online reference. *)
                    List.filter_map
                      (function
                        | Link { rule; from_uri; to_uri } ->
                          Some (rule, from_uri, to_uri)
                        | App _ -> None)
                      !out
                    |> List.sort_uniq compare
                    |> List.map (fun (rule, from_uri, to_uri) ->
                           Link { rule; from_uri; to_uri })
                  end
                  else []))
      in
      Array.iteri
        (fun i tr ->
          let rule, _ = plans.(i) in
          (if T.enabled () || T.meta_on () then
             let links =
               List.concat_map
                 (function
                   | App (_, app) -> app.Mapping.links
                   | Link { from_uri; to_uri; _ } -> [ (from_uri, to_uri) ])
                 tr.T.v
             in
             Strategy_sig.record_rule_eval ~service:call.Trace.service
               ~time:call.Trace.time ~rule_name:(Rule.name rule) ~t0:tr.T.t0
               ~t1:tr.T.t1 ~worker:tr.T.worker ~links);
          List.iter (replay_emission st.g) tr.T.v)
        buffers
    end

(* The live graph, labeled from the trace so far; the memos, index and
   pool stay hot for the next [observe] — this is what a serving session
   answers queries from between appends. *)
let snapshot st ~doc:_ ~trace =
  List.iter
    (fun e -> Prov_graph.set_label st.g e.Trace.uri e.Trace.call)
    (Trace.entries trace);
  st.g

let finalize st ~doc:_ ~trace =
  Pool.shutdown st.pool;
  List.iter
    (fun e -> Prov_graph.set_label st.g e.Trace.uri e.Trace.call)
    (Trace.entries trace);
  st.g
