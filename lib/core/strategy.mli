(** The evaluation strategies for mapping rules (§4 and §6).

    - {b Online}: rules are evaluated during the workflow execution, on
      the document states before and after each call — Definition 9
      applied literally.  The paper lists its drawbacks (invasive, slows
      the workflow, no cross-call optimization); here it doubles as the
      reference implementation the other backends are checked against.
    - {b [`Replay]}: post-hoc, per call, on states reconstructed from the
      final document (cheap: states are timestamp-filtered views).
    - {b [`Rewrite]}: post-hoc, single-pass — the §4 rewriting: each
      rule's target pattern gains the [@s] service constraint and is
      evaluated {e once} on the final document for all calls of the
      service; rows are grouped by the matched resource's timestamp and
      joined against the source pattern restricted to what happened
      before.
    - {b [`Incremental]}: execution-time like Online, but delta-driven —
      per-call cost proportional to the appended fragment, not the
      document (see {!Strategy_incremental}).

    - {b [`Fused]}: execution-time; the whole rulebook is compiled into
      one shared plan ({!Weblab_compile}: pattern-prefix trie, CSE,
      estimate-ordered hash joins) and each call is processed in a
      single fused pass per side (see {!Strategy_fused}).

    Each strategy is a first-class {!Strategy_sig.STRATEGY_BACKEND}
    (init → observe committed calls → finalize); this module names them
    for dispatch and keeps the historical entry points.  All backends
    produce identical link sets (property-tested, including under fault
    plans). *)

open Weblab_xml
open Weblab_workflow

type rulebook = (string * Rule.t list) list
(** The M(s) of the paper: rules attached to each service name. *)

val rules_for : rulebook -> string -> Rule.t list

type post_hoc = [ `Replay | `Rewrite ]

type kind = [ `Online | `Replay | `Rewrite | `Incremental | `Fused ]
(** Every strategy, as selectable from the CLI ([--strategy]). *)

val all : kind list
(** The backend registry, in registration order.  The CLI's
    [--strategy] parser/usage and the agreement test suites derive from
    this list; CI pins {!names} and fails when an enumeration drifts. *)

val names : string list
(** [List.map kind_to_string all]. *)

val backend_of : kind -> Strategy_sig.backend
(** The backend implementing a strategy — feed it to
    {!Engine.run_with_backend}. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string} over {!all} — every registered backend
    name, nothing else. *)

val kind_to_string : kind -> string

val sequential_hb : int -> int -> bool
(** The default happened-before relation: plain timestamp order [t' < t].
    Parallel executions (§8) supply {!Parallel.happened_before} instead. *)

val infer :
  ?strategy:post_hoc ->
  ?inheritance:bool ->
  ?happened_before:(int -> int -> bool) ->
  ?jobs:int ->
  doc:Tree.t ->
  trace:Trace.t ->
  rulebook ->
  Prov_graph.t
(** Post-hoc inference from a final document and its execution trace.
    Defaults: [`Rewrite], no inherited closure, sequential control flow,
    [jobs] from {!Pool.configured_jobs}.  For any [jobs] the graph is
    bit-identical to the sequential one. *)

val online :
  rulebook ->
  Prov_graph.t
  * (Trace.call -> Doc_state.t -> Doc_state.t -> Orchestrator.delta -> unit)
(** The Online strategy: a graph under construction and the
    {!Orchestrator.execute} [on_step] hook that feeds it.  The hook adds
    data-dependency links only; populate λ from the trace afterwards
    (see {!Engine.run_online}). *)
