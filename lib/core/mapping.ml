(* Application of mapping rules — Definitions 8 and 9.

   M(d, d') = π_{$in,$out}( ρ_{$r→$in} R_φS(d) ⋈ ρ_{$r→$out} R_φT(d') )

   M(c)     = M(d_{i-1}, d_i) ⋉ out(c)

   Skolem rules (§5) are detected by an [f(…) = @id] predicate on the
   target's final step: the synthetic term f(v̄) then {e becomes} the
   identifier of the produced entity, and the matched XML nodes become its
   members — the replacement of existentially quantified identifiers by
   function symbols. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow

type application = {
  links : (string * string) list;  (* (out, in): out was derived from in *)
  members : (string * string) list;  (* (skolem entity, member resource) *)
}

let skolem_id_of_target (target : Ast.pattern) =
  match List.rev target with
  | [] -> None
  | last :: _ ->
    List.find_map
      (function
        | Ast.Cmp (Ast.Skolem (f, args), Ast.Eq, Ast.Attr "id")
        | Ast.Cmp (Ast.Attr "id", Ast.Eq, Ast.Skolem (f, args)) -> Some (f, args)
        | _ -> None)
      last.Ast.preds

let is_skolem_rule rule = skolem_id_of_target (Rule.target rule) <> None

let source_table ?(guards : Eval.guards option) ?index doc (rule : Rule.t) =
  let t = Eval.eval ?guards ?index doc (Rule.source rule) in
  let vars = Ast.variables (Rule.source rule) in
  Table.project (Table.rename t [ ("r", "in") ]) ("in" :: vars)

(* R_φT with $r renamed to $out (non-Skolem rules only). *)
let target_table ?(guards : Eval.guards option) ?index doc (rule : Rule.t) =
  let target = Rule.target rule in
  if skolem_id_of_target target <> None then
    invalid_arg "Mapping.target_table: Skolem rules need the joined form";
  let vars =
    List.sort_uniq String.compare
      (Ast.variables target @ Ast.free_variables target)
  in
  let vars = List.filter (fun v -> v <> "r" && v <> "node") vars in
  let t = Eval.eval ?guards ?index doc target in
  Table.project (Table.rename t [ ("r", "out") ]) ("out" :: vars)

(* Target side of a Skolem rule: the skolem predicate is stripped (there is
   no literal @id to match); the synthetic identifier is computed per
   *joined* row, because its arguments may refer to source bindings. *)
let skolem_target_table ?(guards : Eval.guards option) ?index doc
    (target : Ast.pattern) (f, args) =
  let stripped =
    match List.rev target with
    | [] -> assert false
    | last :: rev_init ->
      let preds =
        List.filter
          (function
            | Ast.Cmp (Ast.Skolem _, Ast.Eq, Ast.Attr "id")
            | Ast.Cmp (Ast.Attr "id", Ast.Eq, Ast.Skolem _) -> false
            | _ -> true)
          last.Ast.preds
      in
      List.rev ({ last with Ast.preds } :: rev_init)
  in
  let vars =
    List.filter (fun v -> v <> "r" && v <> "node")
      (Ast.variables stripped)
  in
  let t = Eval.eval ~require_uri:false ?guards ?index doc stripped in
  ignore (f, args);
  Table.project
    (Table.rename t [ ("r", "__tgt_r"); ("node", "__tgt_node") ])
    ("__tgt_r" :: "__tgt_node" :: vars)

(* Resolve a Skolem argument against a joined row: variables come from the
   row (source or target bindings), attributes from the target node. *)
let rec skolem_arg_value doc table row (arg : Ast.operand) =
  match arg with
  | Ast.Var v -> (
    match Table.get table row v with
    | value -> Some (Value.to_string value)
    | exception Not_found -> None)
  | Ast.Attr a -> (
    match Table.get table row "__tgt_node" with
    | Value.Node n -> Tree.attr doc n a
    | _ | exception Not_found -> None)
  | Ast.Lit l -> Some l
  | Ast.Num n -> Some (string_of_int n)
  | Ast.Skolem (g, inner) ->
    let vs = List.map (skolem_arg_value doc table row) inner in
    if List.exists Option.is_none vs then None
    else
      Some
        (Printf.sprintf "%s(%s)" g
           (String.concat "," (List.map Option.get vs)))
  | Ast.Position | Ast.Last | Ast.Count _ | Ast.Strlen _ | Ast.Path _
  | Ast.Path_attr _ -> None

(* The join table of Example 6: ρ_in R_φS(d) ⋈ ρ_out R_φT(d'), with the
   shared variables still visible. *)
let join_table (rule : Rule.t) d d' =
  let rs = source_table ~guards:(Eval.state_guards d) (Doc_state.doc d) rule in
  let rt = target_table ~guards:(Eval.state_guards d') (Doc_state.doc d') rule in
  Table.hash_join rs rt

let links_of_table table =
  Table.rows table
  |> List.map (fun row ->
         ( Value.to_string (Table.get table row "out"),
           Value.to_string (Table.get table row "in") ))
  |> List.filter (fun (o, i) -> not (String.equal o i))
  |> List.sort_uniq compare

(* Definition 8.  [?index] is an optional prebuilt index snapshot for the
   (shared) document — parallel inference builds it once up front so the
   workers never touch the [Index.for_tree] cache. *)
let apply_states ?index (rule : Rule.t) d d' =
  match skolem_id_of_target (Rule.target rule) with
  | None ->
    let rs =
      source_table ~guards:(Eval.state_guards d) ?index (Doc_state.doc d) rule
    in
    let rt =
      target_table ~guards:(Eval.state_guards d') ?index (Doc_state.doc d') rule
    in
    let j = Table.hash_join rs rt in
    { links = links_of_table j; members = [] }
  | Some (f, args) ->
    let doc' = Doc_state.doc d' in
    let rs =
      source_table ~guards:(Eval.state_guards d) ?index (Doc_state.doc d) rule
    in
    let rt =
      skolem_target_table ~guards:(Eval.state_guards d') ?index doc'
        (Rule.target rule) (f, args)
    in
    let j = Table.hash_join rs rt in
    let links = ref [] and members = ref [] in
    List.iter
      (fun row ->
        let arg_values = List.map (skolem_arg_value doc' j row) args in
        if not (List.exists Option.is_none arg_values) then begin
          let entity =
            Printf.sprintf "%s(%s)" f
              (String.concat "," (List.map Option.get arg_values))
          in
          let inp = Value.to_string (Table.get j row "in") in
          let member = Value.to_string (Table.get j row "__tgt_r") in
          if not (String.equal entity inp) then
            links := (entity, inp) :: !links;
          members := (entity, member) :: !members
        end)
      (Table.rows j);
    { links = List.sort_uniq compare !links;
      members = List.sort_uniq compare !members }

(* Definition 9: keep only links whose target resource was generated by the
   given call.  For Skolem rules the synthetic entity is kept when at least
   one of its members was generated by the call. *)
let restrict_to_generated (app : application) ~generated =
  match app.members with
  | [] -> { app with links = List.filter (fun (o, _) -> generated o) app.links }
  | members ->
    let live_entities =
      members
      |> List.filter_map (fun (e, m) -> if generated m then Some e else None)
      |> List.sort_uniq String.compare
    in
    {
      links = List.filter (fun (o, _) -> List.mem o live_entities) app.links;
      members = List.filter (fun (e, _) -> List.mem e live_entities) members;
    }

let restrict_to_call (app : application) ~trace ~(call : Trace.call) =
  let out_uris = Trace.resources_of_call trace call in
  restrict_to_generated app ~generated:(fun u -> List.mem u out_uris)

(* Like {!apply_states} with an explicit source-side visibility predicate —
   the hook for non-sequential control flow (§8): under parallel branches
   "existed before the call" is the happened-before relation of the
   series-parallel order, not a timestamp comparison. *)
let apply_guarded ?index (rule : Rule.t) ~doc ~source_visible ~target_state =
  let d = { Eval.visible = source_visible; env = [] } in
  match skolem_id_of_target (Rule.target rule) with
  | None ->
    let rs = source_table ~guards:d ?index doc rule in
    let rt =
      target_table ~guards:(Eval.state_guards target_state) ?index doc rule
    in
    let j = Table.hash_join rs rt in
    { links = links_of_table j; members = [] }
  | Some (f, args) ->
    let rs = source_table ~guards:d ?index doc rule in
    let rt =
      skolem_target_table ~guards:(Eval.state_guards target_state) ?index doc
        (Rule.target rule) (f, args)
    in
    let j = Table.hash_join rs rt in
    let links = ref [] and members = ref [] in
    List.iter
      (fun row ->
        let arg_values = List.map (skolem_arg_value doc j row) args in
        if not (List.exists Option.is_none arg_values) then begin
          let entity =
            Printf.sprintf "%s(%s)" f
              (String.concat "," (List.map Option.get arg_values))
          in
          let inp = Value.to_string (Table.get j row "in") in
          let member = Value.to_string (Table.get j row "__tgt_r") in
          if not (String.equal entity inp) then
            links := (entity, inp) :: !links;
          members := (entity, member) :: !members
        end)
      (Table.rows j);
    { links = List.sort_uniq compare !links;
      members = List.sort_uniq compare !members }

let apply_call ?source_visible ?index (rule : Rule.t) ~doc ~trace
    ~(call : Trace.call) =
  let app =
    match source_visible with
    | None ->
      let d = Doc_state.at doc (call.Trace.time - 1) in
      let d' = Doc_state.at doc call.Trace.time in
      apply_states ?index rule d d'
    | Some source_visible ->
      apply_guarded ?index rule ~doc ~source_visible
        ~target_state:(Doc_state.at doc call.Trace.time)
  in
  restrict_to_call app ~trace ~call
