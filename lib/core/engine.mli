(** High-level entry points — the Graph Construction / Request Manager
    roles of the Figure 5 architecture: run a workflow and obtain its
    provenance graph, or infer provenance from an existing execution. *)

open Weblab_xml
open Weblab_workflow

type execution = {
  doc : Tree.t;      (** the final document (all states, as an arena) *)
  trace : Trace.t;   (** the execution trace (the Source table) *)
}

val run : ?policy:Orchestrator.policy -> Tree.t -> Service.t list -> execution
(** Execute a sequential workflow (no provenance inference).  [policy]
    supervises each call — retries, budgets, skip-or-propagate on failure
    (see {!Orchestrator.execute}). *)

val run_with_backend :
  ?policy:Orchestrator.policy ->
  ?jobs:int ->
  Strategy_sig.backend ->
  Tree.t -> Service.t list -> Strategy.rulebook ->
  execution * Prov_graph.t
(** Execute a workflow with a strategy backend observing it: [init] on
    the input document, [observe] after each committed call (failed,
    rolled-back calls are never observed), [finalize] once the trace is
    complete.  [jobs] is the inference parallelism (see
    {!Strategy_sig.STRATEGY_BACKEND.init}); the graph is bit-identical
    to the sequential one for any value. *)

val run_with_strategy :
  ?policy:Orchestrator.policy ->
  ?jobs:int ->
  Strategy.kind ->
  Tree.t -> Service.t list -> Strategy.rulebook ->
  execution * Prov_graph.t
(** [run_with_backend] on {!Strategy.backend_of}.  All registered
    strategies produce identical link sets. *)

val run_online :
  ?policy:Orchestrator.policy ->
  ?jobs:int ->
  Tree.t -> Service.t list -> Strategy.rulebook ->
  execution * Prov_graph.t
(** Execute with Online inference: rules are applied by the orchestrator
    hook after each committed call; λ is populated from the trace.
    Equivalent to [run_with_strategy `Online]. *)

val provenance :
  ?strategy:Strategy.post_hoc ->
  ?inheritance:bool ->
  ?happened_before:(int -> int -> bool) ->
  ?jobs:int ->
  execution ->
  Strategy.rulebook ->
  Prov_graph.t
(** Post-hoc inference (see {!Strategy.infer}). *)

val run_parallel :
  ?policy:Orchestrator.policy ->
  ?strategy:Strategy.post_hoc ->
  ?inheritance:bool ->
  ?jobs:int ->
  Tree.t ->
  Parallel.wf ->
  Strategy.rulebook ->
  execution * Parallel.execution * Prov_graph.t
(** Series-parallel workflows (§8): execute with channel recording, then
    infer with the happened-before relation of the series-parallel order
    instead of plain timestamp comparison. *)

val run_with_provenance :
  ?policy:Orchestrator.policy ->
  ?strategy:Strategy.post_hoc ->
  ?inheritance:bool ->
  ?jobs:int ->
  Tree.t ->
  Service.t list ->
  Strategy.rulebook ->
  execution * Prov_graph.t
(** [run] followed by [provenance]. *)

val to_turtle : ?trace:Trace.t -> Prov_graph.t -> string
(** Passing [trace] additionally exports failed service calls as
    invalidated activities (see {!Prov_export.to_store}). *)

val to_dot : Prov_graph.t -> string
