(* The three evaluation strategies for mapping rules (§4 and §6).

   - [Online]: rules are evaluated during the workflow execution, on the
     document states before and after each call.  This is the semantics of
     Definition 9 applied literally; the paper lists its drawbacks (it is
     invasive and prevents cross-call optimization) and it serves here as
     the reference implementation the post-hoc strategies are checked
     against.

   - [`Replay]: post-hoc, per call: the states d_{i-1} and d_i are
     reconstructed from the final document (cheap in this code base, since
     states are timestamp-filtered views of the arena).

   - [`Rewrite]: post-hoc, single-pass: each rule's target pattern is
     rewritten with the [@s] service constraint and evaluated *once* on the
     final document for all calls of the service; the rows are then grouped
     by the creation timestamp of the matched resources and joined against
     the source pattern restricted to the resources existing before that
     timestamp.  This is the §4 rewriting, operationalized. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow

type rulebook = (string * Rule.t list) list
(* Rules attached to each service name: the M(s) of the paper. *)

let rules_for (rb : rulebook) service =
  match List.assoc_opt service rb with Some rules -> rules | None -> []

type post_hoc = [ `Replay | `Rewrite ]

let add_application g rule_name (app : Mapping.application) =
  List.iter
    (fun (out, inp) -> Prov_graph.add_link g ~rule:rule_name ~from_uri:out ~to_uri:inp)
    app.Mapping.links;
  List.iter
    (fun (entity, member) -> Prov_graph.add_member g ~entity ~member)
    app.Mapping.members

(* ----- Replay ----- *)

(* The default control flow is sequential: "t' happened before t" is
   simply t' < t.  Parallel executions (§8) supply the series-parallel
   happened-before relation instead. *)
let sequential_hb t' t = t' < t

let infer_replay ?(happened_before = sequential_hb) ~doc ~trace (rb : rulebook) g =
  List.iter
    (fun (call : Trace.call) ->
      if call.Trace.time > 0 then begin
        let source_visible n =
          happened_before (Tree.created doc n) call.Trace.time
        in
        List.iter
          (fun rule ->
            let app = Mapping.apply_call ~source_visible rule ~doc ~trace ~call in
            add_application g (Rule.name rule) app)
          (rules_for rb call.Trace.service)
      end)
    (Trace.calls trace)

(* ----- Rewrite ----- *)

(* All calls of [service] in the trace, by timestamp. *)
let call_times trace service =
  Trace.calls trace
  |> List.filter_map (fun (c : Trace.call) ->
         if String.equal c.Trace.service service && c.Trace.time > 0 then
           Some c.Trace.time
         else None)

(* Memoized pattern evaluations for one [infer_rewrite] pass.  Rulebooks
   routinely attach the same source pattern to many rules (and the same
   rule to many services), and the per-timestamp source restriction
   re-evaluates it once per distinct call time: keying on the pattern AST
   (structural equality — patterns are small finite trees) collapses all
   of that to one evaluation each.  The cache is valid only within a
   single pass: entries depend on the pass's [happened_before] relation.
   The cached tables are shared, never mutated — every consumer only joins
   or projects them. *)
type rewrite_cache = {
  sources : (Ast.pattern * int, Table.t) Hashtbl.t;
      (* (source pattern, call time) → projected source table *)
  targets : (Ast.pattern * string, Table.t) Hashtbl.t;
      (* (target pattern, service) → rewritten-target evaluation *)
}

let make_cache () = { sources = Hashtbl.create 32; targets = Hashtbl.create 32 }

let cached tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add tbl key v;
    v

let infer_rewrite_rule ?(happened_before = sequential_hb) ?cache ~doc ~trace
    ~service rule g =
  let cache = match cache with Some c -> c | None -> make_cache () in
  let index = Index.for_tree doc in
  if Mapping.is_skolem_rule rule then
    (* Skolem targets have no @s/@t labels to rewrite against; they fall
       back to per-call evaluation. *)
    List.iter
      (fun time ->
        let call = { Trace.service; time } in
        let source_visible n = happened_before (Tree.created doc n) time in
        add_application g (Rule.name rule)
          (Mapping.apply_call ~source_visible rule ~doc ~trace ~call))
      (call_times trace service)
  else begin
    let target = Rule.target rule in
    let tgt_vars =
      List.sort_uniq String.compare
        (Ast.variables target @ Ast.free_variables target)
    in
    (* One evaluation of the rewritten target for all calls of the service
       — and for all rules sharing this target pattern.  The rewritten
       pattern ends in [@s = service], which the indexed evaluator serves
       from the by-attribute index: candidates are exactly the resources
       this service labeled, not the whole document. *)
    let rt =
      cached cache.targets (target, service) (fun () ->
          Eval.eval ~index doc (Pattern_rewrite.target_service target service))
    in
    (* Group target rows by the timestamp of the matched resource. *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun row ->
        match Table.get rt row "node" with
        | Value.Node n ->
          let time = Tree.created doc n in
          let rows = try Hashtbl.find groups time with Not_found -> [] in
          Hashtbl.replace groups time (row :: rows)
        | Value.Str _ | Value.Int _ -> ())
      (Table.rows rt);
    let times = Hashtbl.fold (fun t _ acc -> t :: acc) groups [] in
    List.iter
      (fun time ->
        if time > 0 then begin
          let rows = Hashtbl.find groups time in
          let sub = Table.create (Table.columns rt) in
          List.iter (Table.add_row sub) rows;
          let rt' = Table.project (Table.rename sub [ ("r", "out") ]) ("out" :: tgt_vars) in
          (* φ'_S: resources that happened before the call.  Memoized per
             (source pattern, time): every rule with this source — and
             every service whose calls share the timestamp — reuses the
             evaluation. *)
          let rs =
            cached cache.sources (Rule.source rule, time) (fun () ->
                let guards =
                  { Eval.visible =
                      (fun n -> happened_before (Tree.created doc n) time);
                    env = [] }
                in
                Mapping.source_table ~guards ~index doc rule)
          in
          let j = Table.hash_join rs rt' in
          List.iter
            (fun (out, inp) ->
              Prov_graph.add_link g ~rule:(Rule.name rule) ~from_uri:out ~to_uri:inp)
            (Mapping.links_of_table j)
        end)
      (List.sort compare times)
  end

let infer_rewrite ?happened_before ~doc ~trace (rb : rulebook) g =
  let services =
    Trace.calls trace
    |> List.filter_map (fun (c : Trace.call) ->
           if c.Trace.time > 0 then Some c.Trace.service else None)
    |> List.sort_uniq String.compare
  in
  (* One evaluation cache for the whole pass; sound because
     [happened_before] is fixed for the pass. *)
  let cache = make_cache () in
  List.iter
    (fun service ->
      List.iter
        (fun rule ->
          infer_rewrite_rule ?happened_before ~cache ~doc ~trace ~service rule g)
        (rules_for rb service))
    services

(* ----- Entry points ----- *)

let infer ?(strategy : post_hoc = `Rewrite) ?(inheritance = false)
    ?happened_before ~doc ~trace (rb : rulebook) =
  let g = Prov_graph.of_trace trace in
  (match strategy with
   | `Replay -> infer_replay ?happened_before ~doc ~trace rb g
   | `Rewrite -> infer_rewrite ?happened_before ~doc ~trace rb g);
  if inheritance then ignore (Inheritance.close doc g);
  g

(* Online: returns the graph under construction and the orchestrator hook
   feeding it. *)
let online (rb : rulebook) =
  let g = Prov_graph.create () in
  let hook (call : Trace.call) before after =
    let doc = Doc_state.doc after in
    let generated u =
      match Tree.find_resource doc u with
      | Some n -> Tree.created doc n = call.Trace.time
      | None -> false
    in
    List.iter
      (fun rule ->
        let app = Mapping.apply_states rule before after in
        let app = Mapping.restrict_to_generated app ~generated in
        add_application g (Rule.name rule) app)
      (rules_for rb call.Trace.service)
  in
  (g, hook)
