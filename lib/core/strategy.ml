(* The evaluation strategies for mapping rules (§4 and §6).

   Each strategy is implemented as a {!Strategy_sig.STRATEGY_BACKEND}
   (Strategy_online, Strategy_replay, Strategy_rewrite,
   Strategy_incremental); this module is the thin shim that keeps the
   historical entry points — post-hoc [infer] and the [online] hook —
   and names the backends for dispatch. *)

open Weblab_workflow

type rulebook = Strategy_sig.rulebook

let rules_for = Strategy_sig.rules_for

type post_hoc = [ `Replay | `Rewrite ]

type kind = [ `Online | `Replay | `Rewrite | `Incremental ]

let sequential_hb = Strategy_sig.sequential_hb

let backend_of : kind -> Strategy_sig.backend = function
  | `Online -> (module Strategy_online)
  | `Replay -> (module Strategy_replay)
  | `Rewrite -> (module Strategy_rewrite)
  | `Incremental -> (module Strategy_incremental)

let kind_of_string = function
  | "online" -> Some `Online
  | "replay" -> Some `Replay
  | "rewrite" -> Some `Rewrite
  | "incremental" -> Some `Incremental
  | _ -> None

let kind_to_string : kind -> string = function
  | `Online -> Strategy_online.name
  | `Replay -> Strategy_replay.name
  | `Rewrite -> Strategy_rewrite.name
  | `Incremental -> Strategy_incremental.name

(* ----- Post-hoc entry point ----- *)

let infer ?(strategy : post_hoc = `Rewrite) ?(inheritance = false)
    ?happened_before ?jobs ~doc ~trace (rb : rulebook) =
  let g = Prov_graph.of_trace trace in
  (match strategy with
   | `Replay -> Strategy_replay.infer ?happened_before ?jobs ~doc ~trace rb g
   | `Rewrite -> Strategy_rewrite.infer ?happened_before ?jobs ~doc ~trace rb g);
  if inheritance then ignore (Inheritance.close doc g);
  g

(* ----- Online hook ----- *)

(* Online: returns the graph under construction and the orchestrator hook
   feeding it. *)
let online (rb : rulebook) =
  let g = Prov_graph.create () in
  let hook (call : Trace.call) before after (_ : Orchestrator.delta) =
    Strategy_online.observe_call g rb call before after
  in
  (g, hook)
