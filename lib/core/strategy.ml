(* The evaluation strategies for mapping rules (§4 and §6).

   Each strategy is implemented as a {!Strategy_sig.STRATEGY_BACKEND}
   (Strategy_online, Strategy_replay, Strategy_rewrite,
   Strategy_incremental); this module is the thin shim that keeps the
   historical entry points — post-hoc [infer] and the [online] hook —
   and names the backends for dispatch. *)

open Weblab_workflow

type rulebook = Strategy_sig.rulebook

let rules_for = Strategy_sig.rules_for

type post_hoc = [ `Replay | `Rewrite ]

type kind = [ `Online | `Replay | `Rewrite | `Incremental | `Fused ]

(* The backend registry, in registration order.  Everything that
   enumerates backends — the CLI's [--strategy] parser and usage string,
   the agreement test suites — derives from this list, so a new backend
   cannot ship with a stale enumeration (CI pins [names] and fails on
   drift). *)
let all : kind list = [ `Online; `Replay; `Rewrite; `Incremental; `Fused ]

let sequential_hb = Strategy_sig.sequential_hb

let backend_of : kind -> Strategy_sig.backend = function
  | `Online -> (module Strategy_online)
  | `Replay -> (module Strategy_replay)
  | `Rewrite -> (module Strategy_rewrite)
  | `Incremental -> (module Strategy_incremental)
  | `Fused -> (module Strategy_fused)

let kind_to_string : kind -> string = function
  | `Online -> Strategy_online.name
  | `Replay -> Strategy_replay.name
  | `Rewrite -> Strategy_rewrite.name
  | `Incremental -> Strategy_incremental.name
  | `Fused -> Strategy_fused.name

let names = List.map kind_to_string all

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_to_string k) s) all

(* ----- Post-hoc entry point ----- *)

let infer ?(strategy : post_hoc = `Rewrite) ?(inheritance = false)
    ?happened_before ?jobs ~doc ~trace (rb : rulebook) =
  let g = Prov_graph.of_trace trace in
  (match strategy with
   | `Replay -> Strategy_replay.infer ?happened_before ?jobs ~doc ~trace rb g
   | `Rewrite -> Strategy_rewrite.infer ?happened_before ?jobs ~doc ~trace rb g);
  if inheritance then ignore (Inheritance.close doc g);
  g

(* ----- Online hook ----- *)

(* Online: returns the graph under construction and the orchestrator hook
   feeding it. *)
let online (rb : rulebook) =
  let g = Prov_graph.create () in
  let hook (call : Trace.call) before after (_ : Orchestrator.delta) =
    Strategy_online.observe_call g rb call before after
  in
  (g, hook)
