(* The Rewrite strategy, as a backend: post-hoc, single-pass — each
   rule's target pattern is rewritten with the [@s] service constraint
   and evaluated *once* on the final document for all calls of the
   service; the rows are then grouped by the creation timestamp of the
   matched resources and joined against the source pattern restricted to
   the resources existing before that timestamp.  This is the §4
   rewriting, operationalized.

   Parallel inference fans the (service, rule) work items out over a
   {!Pool}.  Each item computes an ordered emission buffer instead of
   writing into the graph directly; the buffers are replayed in item
   order afterwards, which performs the exact [add_link] sequence the
   sequential pass would — bit-identical graphs for any schedule.  The
   memo cache stays shared (a mutex guards the table; computation runs
   outside the lock and a racing duplicate is harmless because entries
   are pure functions of their key). *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow

let name = "rewrite"

(* All calls of [service] in the trace, by timestamp. *)
let call_times trace service =
  Trace.calls trace
  |> List.filter_map (fun (c : Trace.call) ->
         if String.equal c.Trace.service service && c.Trace.time > 0 then
           Some c.Trace.time
         else None)

(* Memoized pattern evaluations for one inference pass.  Rulebooks
   routinely attach the same source pattern to many rules (and the same
   rule to many services), and the per-timestamp source restriction
   re-evaluates it once per distinct call time: keying on the pattern AST
   (structural equality — patterns are small finite trees) collapses all
   of that to one evaluation each.  The cache is valid only within a
   single pass: entries depend on the pass's [happened_before] relation.
   The cached tables are shared, never mutated — every consumer only joins
   or projects them.

   Workers from several domains share one cache, so the tables are
   guarded by [lock].  [cached] looks up under the lock but computes
   outside it: two workers may briefly duplicate an evaluation, but the
   values are deterministic, so first-writer-wins keeps every consumer
   consistent. *)
type cache = {
  sources : (Ast.pattern * int, Table.t) Hashtbl.t;
      (* (source pattern, call time) → projected source table *)
  targets : (Ast.pattern * string, Table.t) Hashtbl.t;
      (* (target pattern, service) → rewritten-target evaluation *)
  lock : Mutex.t;
}

let make_cache () =
  { sources = Hashtbl.create 32; targets = Hashtbl.create 32;
    lock = Mutex.create () }

module T = Weblab_obs.Telemetry

let c_memo_hit = T.counter "rewrite.memo.hit"
let c_memo_miss = T.counter "rewrite.memo.miss"

let cached cache tbl key compute =
  match Mutex.protect cache.lock (fun () -> Hashtbl.find_opt tbl key) with
  | Some v ->
    T.incr c_memo_hit;
    v
  | None ->
    T.incr c_memo_miss;
    let v = compute () in
    Mutex.protect cache.lock (fun () ->
        match Hashtbl.find_opt tbl key with
        | Some winner -> winner
        | None ->
          Hashtbl.add tbl key v;
          v)

(* One work item's output: the graph operations it would have performed,
   in order.  Buffering them (instead of writing to the graph) is what
   lets items run on any domain and still merge deterministically.  Each
   emission carries the call time it belongs to, so the merge can
   attribute links to per-call evaluation activities (meta-provenance)
   even though the rewrite evaluates once per (service, rule). *)
type emission =
  | App of int * string * Mapping.application
  | Link of { time : int; rule : string; from_uri : string; to_uri : string }

let replay_emission g = function
  | App (_, rule_name, app) -> Strategy_sig.add_application g rule_name app
  | Link { rule; from_uri; to_uri; _ } ->
    Prov_graph.add_link g ~rule ~from_uri ~to_uri

let infer_rule ?(happened_before = Strategy_sig.sequential_hb) ~cache ~index
    ~doc ~trace ~service rule =
  let out = ref [] in
  let emit e = out := e :: !out in
  (if Mapping.is_skolem_rule rule then
     (* Skolem targets have no @s/@t labels to rewrite against; they fall
        back to per-call evaluation. *)
     List.iter
       (fun time ->
         let call = { Trace.service; time } in
         let source_visible n = happened_before (Tree.created doc n) time in
         emit
           (App
              ( time,
                Rule.name rule,
                Mapping.apply_call ~source_visible ~index rule ~doc ~trace
                  ~call )))
       (call_times trace service)
   else begin
     let target = Rule.target rule in
     let tgt_vars =
       List.sort_uniq String.compare
         (Ast.variables target @ Ast.free_variables target)
     in
     (* One evaluation of the rewritten target for all calls of the service
        — and for all rules sharing this target pattern.  The rewritten
        pattern ends in [@s = service], which the indexed evaluator serves
        from the by-attribute index: candidates are exactly the resources
        this service labeled, not the whole document. *)
     let rt =
       cached cache cache.targets (target, service) (fun () ->
           Eval.eval ~index doc (Pattern_rewrite.target_service target service))
     in
     (* Group target rows by the timestamp of the matched resource. *)
     let groups = Hashtbl.create 8 in
     List.iter
       (fun row ->
         match Table.get rt row "node" with
         | Value.Node n ->
           let time = Tree.created doc n in
           let rows = try Hashtbl.find groups time with Not_found -> [] in
           Hashtbl.replace groups time (row :: rows)
         | Value.Str _ | Value.Int _ -> ())
       (Table.rows rt);
     let times = Hashtbl.fold (fun t _ acc -> t :: acc) groups [] in
     List.iter
       (fun time ->
         if time > 0 then begin
           let rows = Hashtbl.find groups time in
           let sub = Table.create (Table.columns rt) in
           List.iter (Table.add_row sub) rows;
           let rt' =
             Table.project
               (Table.rename sub [ ("r", "out") ])
               ("out" :: tgt_vars)
           in
           (* φ'_S: resources that happened before the call.  Memoized per
              (source pattern, time): every rule with this source — and
              every service whose calls share the timestamp — reuses the
              evaluation. *)
           let rs =
             cached cache cache.sources (Rule.source rule, time) (fun () ->
                 let guards =
                   { Eval.visible =
                       (fun n -> happened_before (Tree.created doc n) time);
                     env = [] }
                 in
                 Mapping.source_table ~guards ~index doc rule)
           in
           let j = Table.hash_join rs rt' in
           List.iter
             (fun (out, inp) ->
               emit
                 (Link
                    { time; rule = Rule.name rule; from_uri = out;
                      to_uri = inp }))
             (Mapping.links_of_table j)
         end)
       (List.sort compare times)
   end);
  List.rev !out

let infer ?happened_before ?jobs ~doc ~trace (rb : Strategy_sig.rulebook) g =
  let services =
    Trace.calls trace
    |> List.filter_map (fun (c : Trace.call) ->
           if c.Trace.time > 0 then Some c.Trace.service else None)
    |> List.sort_uniq String.compare
  in
  (* The flattened (service, rule) work items, in the deterministic
     sorted-service, rulebook-order traversal of the sequential pass. *)
  let items =
    services
    |> List.concat_map (fun service ->
           List.map (fun rule -> (service, rule)) (Strategy_sig.rules_for rb service))
    |> Array.of_list
  in
  if Array.length items > 0 then begin
    (* One evaluation cache for the whole pass; sound because
       [happened_before] is fixed for the pass. *)
    let cache = make_cache () in
    let index = Index.for_tree doc in
    let buffers =
      Pool.with_pool ?jobs (fun pool ->
          Pool.map pool (Array.length items) (fun i ->
              T.timed (fun () ->
                  let service, rule = items.(i) in
                  infer_rule ?happened_before ~cache ~index ~doc ~trace
                    ~service rule)))
    in
    Array.iteri
      (fun i tr ->
        let service, rule = items.(i) in
        let rule_name = Rule.name rule in
        (if T.enabled () || T.meta_on () then begin
           (* Re-group this item's emissions by call time (first-appearance
              order) to report one evaluation activity per call × rule; the
              per-call activities share the item's evaluation interval. *)
           let order = ref [] in
           let by_time = Hashtbl.create 8 in
           List.iter
             (fun e ->
               let time, links =
                 match e with
                 | App (time, _, app) -> (time, app.Mapping.links)
                 | Link { time; from_uri; to_uri; _ } ->
                   (time, [ (from_uri, to_uri) ])
               in
               match Hashtbl.find_opt by_time time with
               | Some l -> Hashtbl.replace by_time time (l @ links)
               | None ->
                 order := time :: !order;
                 Hashtbl.add by_time time links)
             tr.T.v;
           List.iter
             (fun time ->
               Strategy_sig.record_rule_eval ~service ~time ~rule_name
                 ~t0:tr.T.t0 ~t1:tr.T.t1 ~worker:tr.T.worker
                 ~links:(Hashtbl.find by_time time))
             (List.rev !order)
         end);
        List.iter (replay_emission g) tr.T.v)
      buffers
  end

type state = { rb : Strategy_sig.rulebook; jobs : int option }

let init ?jobs ~doc:_ rb = { rb; jobs }

let observe _ ~call:_ ~before:_ ~after:_ ~delta:_ = ()

let finalize st ~doc ~trace =
  let g = Prov_graph.of_trace trace in
  infer ?jobs:st.jobs ~doc ~trace st.rb g;
  g

(* Post-hoc: the single-pass rewriting runs over whatever the document
   and trace currently are, so [finalize] doubles as the snapshot. *)
let snapshot st ~doc ~trace = finalize st ~doc ~trace
