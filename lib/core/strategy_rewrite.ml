(* The Rewrite strategy, as a backend: post-hoc, single-pass — each
   rule's target pattern is rewritten with the [@s] service constraint
   and evaluated *once* on the final document for all calls of the
   service; the rows are then grouped by the creation timestamp of the
   matched resources and joined against the source pattern restricted to
   the resources existing before that timestamp.  This is the §4
   rewriting, operationalized. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow

let name = "rewrite"

(* All calls of [service] in the trace, by timestamp. *)
let call_times trace service =
  Trace.calls trace
  |> List.filter_map (fun (c : Trace.call) ->
         if String.equal c.Trace.service service && c.Trace.time > 0 then
           Some c.Trace.time
         else None)

(* Memoized pattern evaluations for one inference pass.  Rulebooks
   routinely attach the same source pattern to many rules (and the same
   rule to many services), and the per-timestamp source restriction
   re-evaluates it once per distinct call time: keying on the pattern AST
   (structural equality — patterns are small finite trees) collapses all
   of that to one evaluation each.  The cache is valid only within a
   single pass: entries depend on the pass's [happened_before] relation.
   The cached tables are shared, never mutated — every consumer only joins
   or projects them. *)
type cache = {
  sources : (Ast.pattern * int, Table.t) Hashtbl.t;
      (* (source pattern, call time) → projected source table *)
  targets : (Ast.pattern * string, Table.t) Hashtbl.t;
      (* (target pattern, service) → rewritten-target evaluation *)
}

let make_cache () = { sources = Hashtbl.create 32; targets = Hashtbl.create 32 }

let cached tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add tbl key v;
    v

let infer_rule ?(happened_before = Strategy_sig.sequential_hb) ?cache ~doc
    ~trace ~service rule g =
  let cache = match cache with Some c -> c | None -> make_cache () in
  let index = Index.for_tree doc in
  if Mapping.is_skolem_rule rule then
    (* Skolem targets have no @s/@t labels to rewrite against; they fall
       back to per-call evaluation. *)
    List.iter
      (fun time ->
        let call = { Trace.service; time } in
        let source_visible n = happened_before (Tree.created doc n) time in
        Strategy_sig.add_application g (Rule.name rule)
          (Mapping.apply_call ~source_visible rule ~doc ~trace ~call))
      (call_times trace service)
  else begin
    let target = Rule.target rule in
    let tgt_vars =
      List.sort_uniq String.compare
        (Ast.variables target @ Ast.free_variables target)
    in
    (* One evaluation of the rewritten target for all calls of the service
       — and for all rules sharing this target pattern.  The rewritten
       pattern ends in [@s = service], which the indexed evaluator serves
       from the by-attribute index: candidates are exactly the resources
       this service labeled, not the whole document. *)
    let rt =
      cached cache.targets (target, service) (fun () ->
          Eval.eval ~index doc (Pattern_rewrite.target_service target service))
    in
    (* Group target rows by the timestamp of the matched resource. *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun row ->
        match Table.get rt row "node" with
        | Value.Node n ->
          let time = Tree.created doc n in
          let rows = try Hashtbl.find groups time with Not_found -> [] in
          Hashtbl.replace groups time (row :: rows)
        | Value.Str _ | Value.Int _ -> ())
      (Table.rows rt);
    let times = Hashtbl.fold (fun t _ acc -> t :: acc) groups [] in
    List.iter
      (fun time ->
        if time > 0 then begin
          let rows = Hashtbl.find groups time in
          let sub = Table.create (Table.columns rt) in
          List.iter (Table.add_row sub) rows;
          let rt' =
            Table.project (Table.rename sub [ ("r", "out") ]) ("out" :: tgt_vars)
          in
          (* φ'_S: resources that happened before the call.  Memoized per
             (source pattern, time): every rule with this source — and
             every service whose calls share the timestamp — reuses the
             evaluation. *)
          let rs =
            cached cache.sources (Rule.source rule, time) (fun () ->
                let guards =
                  { Eval.visible =
                      (fun n -> happened_before (Tree.created doc n) time);
                    env = [] }
                in
                Mapping.source_table ~guards ~index doc rule)
          in
          let j = Table.hash_join rs rt' in
          List.iter
            (fun (out, inp) ->
              Prov_graph.add_link g ~rule:(Rule.name rule) ~from_uri:out
                ~to_uri:inp)
            (Mapping.links_of_table j)
        end)
      (List.sort compare times)
  end

let infer ?happened_before ~doc ~trace (rb : Strategy_sig.rulebook) g =
  let services =
    Trace.calls trace
    |> List.filter_map (fun (c : Trace.call) ->
           if c.Trace.time > 0 then Some c.Trace.service else None)
    |> List.sort_uniq String.compare
  in
  (* One evaluation cache for the whole pass; sound because
     [happened_before] is fixed for the pass. *)
  let cache = make_cache () in
  List.iter
    (fun service ->
      List.iter
        (fun rule ->
          infer_rule ?happened_before ~cache ~doc ~trace ~service rule g)
        (Strategy_sig.rules_for rb service))
    services

type state = { rb : Strategy_sig.rulebook }

let init ~doc:_ rb = { rb }

let observe _ ~call:_ ~before:_ ~after:_ ~delta:_ = ()

let finalize st ~doc ~trace =
  let g = Prov_graph.of_trace trace in
  infer ~doc ~trace st.rb g;
  g
