(** The Replay strategy backend — post-hoc, per call, on states
    reconstructed from the final document. *)

open Weblab_xml
open Weblab_workflow

val infer :
  ?happened_before:(int -> int -> bool) ->
  ?jobs:int ->
  doc:Tree.t ->
  trace:Trace.t ->
  Strategy_sig.rulebook ->
  Prov_graph.t ->
  unit
(** Add every replayed link to an existing graph — the work
    {!Strategy.infer} [~strategy:`Replay] delegates here, with the
    happened-before hook for parallel (§8) executions.  [jobs] fans the
    (call, rule) work items out over a {!Pool}; the result is
    bit-identical to the sequential graph for any [jobs]. *)

include Strategy_sig.STRATEGY_BACKEND
