(** The Replay strategy backend — post-hoc, per call, on states
    reconstructed from the final document. *)

open Weblab_xml
open Weblab_workflow

val infer :
  ?happened_before:(int -> int -> bool) ->
  doc:Tree.t ->
  trace:Trace.t ->
  Strategy_sig.rulebook ->
  Prov_graph.t ->
  unit
(** Add every replayed link to an existing graph — the work
    {!Strategy.infer} [~strategy:`Replay] delegates here, with the
    happened-before hook for parallel (§8) executions. *)

include Strategy_sig.STRATEGY_BACKEND
