(* The Fused strategy: execution-time like Online, but the whole rule
   set is compiled ({!Weblab_compile}) into one shared plan before the
   workflow starts, and each committed call is processed in a single
   fused pass per side instead of a rule-at-a-time loop.

   At [init] the rulebook's source and target patterns are interned in a
   shared prefix trie with common-subexpression elimination — identical
   patterns become one expression, shared step prefixes shared trie
   nodes — and each rule is lowered to a hash join of its two expression
   tables, the build side chosen by index-derived cardinality estimates
   (see {!Weblab_compile.Plan}).

   At [observe] the backend runs two passes over the (frozen, committed)
   arena: the service's source expressions against d_{t-1} and its
   target expressions against d_t, evaluating every distinct pattern
   step once however many rules reference it.  Per rule, the target
   table is restricted to the rows this call generated (created = t —
   Definition 9's ⋉ out(c); promotions keep their original timestamp and
   are never generated), the two tables are hash-joined on their shared
   variables, and the resulting links are emitted sorted and
   deduplicated — the same order {!Mapping.links_of_table} produces, so
   the graph's insertion sequence (and hence the serialized Turtle) is
   bit-identical to the Online reference.

   Rules the fused form cannot reproduce exactly — Skolem rules (the
   synthetic identifier is computed per joined row) and rules with free
   target variables — were lowered to [Exact] plans at compile time; for
   those the per-rule item runs the reference {!Mapping.apply_states}
   computation, exactly as Online does.

   The per-rule loop fans out over the backend's {!Pool}; items write
   into emission buffers that the caller replays in rulebook order
   (deterministic in-order merge), with {!Strategy_sig.record_rule_eval}
   as the telemetry choke point — the same discipline as the other
   execution-time backends. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_workflow
module C_plan = Weblab_compile.Plan
module C_pass = Weblab_compile.Pass
module C_explain = Weblab_compile.Explain

let name = "fused"

module T = Weblab_obs.Telemetry

let c_exact_items = T.counter "fused.items.exact"
let c_join_items = T.counter "fused.items.join"

(* ----- Compilation ----- *)

(* The classification lives here, not in lib/compile: it needs the rule
   representation and the Skolem detection of the mapping layer. *)
let crule_of rule =
  let target = Rule.target rule in
  let exact =
    if Mapping.is_skolem_rule rule then Some "skolem identifier"
    else if Ast.free_variables target <> [] then Some "free target variable"
    else None
  in
  { C_plan.cr_name = Rule.name rule; cr_source = Rule.source rule;
    cr_target = target; cr_exact = exact }

let compile ~doc (rb : Strategy_sig.rulebook) =
  (* A throwaway index of the initial document: compile-time estimates
     only read element-label counts, which the orchestrator's prologue
     (attribute labeling) does not change. *)
  let idx = Index.build doc in
  C_plan.compile
    ~estimate:(C_plan.index_estimate idx)
    (List.map (fun (s, rules) -> (s, List.map crule_of rules)) rb)

let explain ~doc (rb : Strategy_sig.rulebook) =
  C_explain.to_string (compile ~doc rb)

(* ----- State ----- *)

type state = {
  doc : Tree.t;
  g : Prov_graph.t;
  plan : C_plan.t;
  rules : Rule.t array array;  (* per service slot, rulebook order *)
  services : (string, int) Hashtbl.t;  (* service name → slot *)
  pool : Pool.t;
  mutable index : Index.t option;  (* owned: extended in place *)
}

let init ?jobs ~doc (rb : Strategy_sig.rulebook) =
  let services = Hashtbl.create 8 in
  List.iteri
    (fun i (service, _) ->
      if not (Hashtbl.mem services service) then
        Hashtbl.replace services service i)
    rb;
  let rules =
    Array.of_list (List.map (fun (_, rs) -> Array.of_list rs) rb)
  in
  let jobs = match jobs with Some j -> j | None -> Pool.configured_jobs () in
  { doc; g = Prov_graph.create (); plan = compile ~doc rb; rules; services;
    pool = Pool.create ~jobs (); index = None }

let current_index st ~promoted =
  let doc = st.doc in
  match st.index with
  | Some idx when Index.extend idx doc ~promoted -> idx
  | Some _ | None ->
    (* First observation, a rollback (generation mismatch), or a key
       band exhausted: rebuild.  Privately owned, the {!Index.for_tree}
       cache is left alone. *)
    let idx = Index.build doc in
    st.index <- Some idx;
    idx

(* ----- Per-call execution ----- *)

type emission =
  | App of string * Mapping.application
  | Link of { rule : string; from_uri : string; to_uri : string }

let replay_emission g = function
  | App (rule_name, app) -> Strategy_sig.add_application g rule_name app
  | Link { rule; from_uri; to_uri } ->
    Prov_graph.add_link g ~rule ~from_uri ~to_uri

(* ρ_{r→in} then π over the source pattern's variables — exactly
   {!Mapping.source_table}'s projection, applied to a pass table. *)
let project_source tbl (source : Ast.pattern) =
  Table.project (Table.rename tbl [ ("r", "in") ])
    ("in" :: Ast.variables source)

(* ρ_{r→out} then π — exactly {!Mapping.target_table}'s projection. *)
let project_target tbl (target : Ast.pattern) =
  let vars =
    List.sort_uniq String.compare
      (Ast.variables target @ Ast.free_variables target)
    |> List.filter (fun v -> v <> "r" && v <> "node")
  in
  Table.project (Table.rename tbl [ ("r", "out") ]) ("out" :: vars)

let observe st ~call ~before ~after ~(delta : Orchestrator.delta) =
  let idx = current_index st ~promoted:delta.Orchestrator.promoted in
  match Hashtbl.find_opt st.services call.Trace.service with
  | None -> ()
  | Some slot ->
    let rules = st.rules.(slot) in
    let sp = st.plan.C_plan.p_services.(slot) in
    if Array.length rules > 0 then begin
      let doc = st.doc in
      let t = call.Trace.time in
      (* The two fused passes — the only pattern evaluation of the call.
         Computed before the fan-out: the fronts are shared state, and
         the workers must only read. *)
      let src_pass =
        C_pass.run st.plan ~exprs:sp.C_plan.sp_src_exprs ~index:idx
          ~guards:(Eval.state_guards before) doc
      in
      let tgt_pass =
        C_pass.run st.plan ~exprs:sp.C_plan.sp_tgt_exprs ~index:idx
          ~guards:(Eval.state_guards after) doc
      in
      let generated u =
        match Tree.find_resource doc u with
        | Some n -> Tree.created doc n = t
        | None -> false
      in
      let buffers =
        Pool.map st.pool (Array.length rules) (fun i ->
            T.timed (fun () ->
                let rule = rules.(i) in
                match sp.C_plan.sp_rules.(i) with
                | C_plan.Exact _ ->
                  T.incr c_exact_items;
                  let app = Mapping.apply_states ~index:idx rule before after in
                  [ App (Rule.name rule,
                         Mapping.restrict_to_generated app ~generated) ]
                | C_plan.Fused { f_src; f_tgt; f_build; _ } ->
                  T.incr c_join_items;
                  (* Definition 9's generated restriction, applied to
                     target rows before the join: a URI names one node,
                     so filtering on created(node) = t keeps exactly the
                     rows whose [out] the call generated. *)
                  let tgt_rows =
                    let tbl = C_pass.table tgt_pass ~expr:f_tgt in
                    Table.select tbl (fun tb row ->
                        match Table.get tb row "node" with
                        | Value.Node n -> Tree.created doc n = t
                        | Value.Str _ | Value.Int _ -> false)
                  in
                  let rs =
                    project_source
                      (C_pass.table src_pass ~expr:f_src)
                      (Rule.source rule)
                  in
                  let rt = project_target tgt_rows (Rule.target rule) in
                  let j =
                    match f_build with
                    | C_plan.Build_target -> Table.hash_join rs rt
                    | C_plan.Build_source -> Table.hash_join rt rs
                  in
                  Mapping.links_of_table j
                  |> List.map (fun (out, inp) ->
                         Link
                           { rule = Rule.name rule; from_uri = out;
                             to_uri = inp })))
      in
      Array.iteri
        (fun i tr ->
          (if T.enabled () || T.meta_on () then
             let links =
               List.concat_map
                 (function
                   | App (_, app) -> app.Mapping.links
                   | Link { from_uri; to_uri; _ } -> [ (from_uri, to_uri) ])
                 tr.T.v
             in
             Strategy_sig.record_rule_eval ~service:call.Trace.service
               ~time:call.Trace.time ~rule_name:(Rule.name rules.(i))
               ~t0:tr.T.t0 ~t1:tr.T.t1 ~worker:tr.T.worker ~links);
          List.iter (replay_emission st.g) tr.T.v)
        buffers
    end

(* The live graph, labeled from the trace so far; the compiled plan and
   pool stay hot for the next [observe]. *)
let snapshot st ~doc:_ ~trace =
  List.iter
    (fun e -> Prov_graph.set_label st.g e.Trace.uri e.Trace.call)
    (Trace.entries trace);
  st.g

let finalize st ~doc:_ ~trace =
  Pool.shutdown st.pool;
  List.iter
    (fun e -> Prov_graph.set_label st.g e.Trace.uri e.Trace.call)
    (Trace.entries trace);
  st.g
