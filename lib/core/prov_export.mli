(** Export of provenance graphs using the W3C PROV ontology (§6):
    resources become prov:Entity, service calls prov:Activity associated
    with prov:SoftwareAgent services, provenance links
    prov:wasDerivedFrom (plus the implied prov:used and
    prov:wasInformedBy), Skolem entities carry prov:hadMember. *)

open Weblab_rdf
open Weblab_workflow

val entity_term : string -> Term.t
(** The IRI of a resource. *)

val call_term : Trace.call -> Term.t
(** The IRI of a service-call activity. *)

val to_store :
  ?trace:Trace.t ->
  ?meta:Weblab_obs.Telemetry.meta_activity list ->
  Prov_graph.t ->
  Triple_store.t
(** The RDF graph, queryable with {!Weblab_rdf.Sparql}.  When [trace] is
    supplied, failed service calls are additionally exported as
    prov:Activity nodes marked with [prov:invalidatedAtTime] (the burned
    timestamp), [wl:failed], [wl:failureReason] and [wl:attempts]; calls
    committed after retries carry [wl:attempts].  Failed activities
    generate no entities — their appends were rolled back.  When [meta]
    is supplied, the meta-provenance of the inference run is added on top
    (see {!add_meta}). *)

val add_meta :
  Triple_store.t -> Weblab_obs.Telemetry.meta_activity list -> unit
(** Meta-provenance: export the inference run itself as PROV.  Each
    recorded service call × rule evaluation becomes a [prov:Activity]
    ([wl:eval/<service>-t<time>-<rule>]) carrying [prov:startedAtTime] and
    [prov:endedAtTime] (microseconds from the run epoch, or ticks under
    the logical clock), [prov:wasAssociatedWith] the service agent and
    [prov:wasInformedBy] the observed call activity.  Every inferred link
    is reified as a [wl:link/...] entity that [prov:wasGeneratedBy] the
    evaluation activity which produced it, with [wl:linkFrom] and
    [wl:linkTo] naming the object-level resources. *)

val meta_to_store :
  Weblab_obs.Telemetry.meta_activity list -> Triple_store.t
(** {!add_meta} into a fresh store (meta-provenance alone). *)

val of_store : Triple_store.t -> Prov_graph.t
(** Inverse of {!to_store}: labels, links, rule names and Skolem members
    are recovered; the [inherited] flag is not part of the RDF encoding
    (round-trip loses it — inherited links come back as plain links). *)

val to_turtle :
  ?trace:Trace.t ->
  ?meta:Weblab_obs.Telemetry.meta_activity list ->
  Prov_graph.t ->
  string

val to_ntriples :
  ?trace:Trace.t ->
  ?meta:Weblab_obs.Telemetry.meta_activity list ->
  Prov_graph.t ->
  string

val to_prov_xml : Prov_graph.t -> string
(** PROV-XML — the alternative serialization §8 mentions; built with the
    library's own XML substrate. *)

val to_opm_xml : Prov_graph.t -> string
(** OPM XML — the exchange format of the related-work systems (Taverna's
    Janus export, Kepler): artifacts, processes and causal dependencies. *)
