(* First-class evaluation-strategy backends.

   The paper's §6 presents the evaluation strategies as interchangeable
   ways of computing the same provenance mapping; this signature makes
   that interchangeability explicit in the code.  A backend is driven by
   the engine through three phases:

   - [init] before the workflow starts, with the initial document and the
     rulebook;
   - [observe] after every {e committed} call, with the call, the
     surrounding document states, and the delta the call committed
     (failed, rolled-back calls are never observed — the orchestrator
     restores the arena before the hook could run, so a backend's
     accumulated state cannot be poisoned by discarded nodes);
   - [finalize] once the workflow is over, with the final document and
     trace, producing the provenance graph.

   Post-hoc strategies (Replay, Rewrite) ignore the observations and do
   all their work in [finalize]; execution-time strategies (Online,
   Incremental) accumulate links in [observe] and only label resources in
   [finalize].  All backends produce identical graphs — property-tested,
   including under fault plans. *)

open Weblab_xml
open Weblab_workflow

type rulebook = (string * Rule.t list) list
(* Rules attached to each service name: the M(s) of the paper. *)

let rules_for (rb : rulebook) service =
  match List.assoc_opt service rb with Some rules -> rules | None -> []

(* The default control flow is sequential: "t' happened before t" is
   simply t' < t.  Parallel executions (§8) supply the series-parallel
   happened-before relation instead. *)
let sequential_hb t' t = t' < t

(* One rule evaluation's telemetry, recorded at the merge point — the
   caller's domain, in item order — so spans, per-rule counters and
   meta-provenance activities are emitted deterministically whatever the
   pool schedule was.  [t0]/[t1]/[worker] come from the {!Telemetry.timed}
   wrapper the backends run around each item body. *)
let record_rule_eval ~service ~time ~rule_name ~t0 ~t1 ~worker ~links =
  let module T = Weblab_obs.Telemetry in
  if T.enabled () then
    T.add (T.counter ("rule." ^ rule_name ^ ".links")) (List.length links);
  if T.spans_on () then
    T.emit_span ~cat:"inference"
      ~args:
        [ ("service", service); ("t", string_of_int time);
          ("links", string_of_int (List.length links)) ]
      ~name:("rule:" ^ rule_name) ~worker ~t0 ~t1 ();
  if T.meta_on () then
    T.record_meta
      { T.m_service = service; m_time = time; m_rule = rule_name;
        m_t0 = t0; m_t1 = t1; m_links = links }

let add_application g rule_name (app : Mapping.application) =
  List.iter
    (fun (out, inp) ->
      Prov_graph.add_link g ~rule:rule_name ~from_uri:out ~to_uri:inp)
    app.Mapping.links;
  List.iter
    (fun (entity, member) -> Prov_graph.add_member g ~entity ~member)
    app.Mapping.members

module type STRATEGY_BACKEND = sig
  val name : string

  type state

  val init : ?jobs:int -> doc:Tree.t -> rulebook -> state
  (* [jobs] is the inference parallelism (a {!Pool} size).  Defaults to
     {!Pool.configured_jobs} — sequential unless the [JOBS] environment
     variable says otherwise — and [jobs = 1] must take the exact
     sequential path.  Whatever the schedule, the finalized graph is
     bit-identical to the sequential one. *)

  val observe :
    state ->
    call:Trace.call ->
    before:Doc_state.t ->
    after:Doc_state.t ->
    delta:Orchestrator.delta ->
    unit

  val snapshot : state -> doc:Tree.t -> trace:Trace.t -> Prov_graph.t
  (* The provenance graph of the execution {e so far}, without ending the
     backend: [observe] keeps working afterwards and [finalize] remains
     the terminal call.  This is what lets a serving daemon answer
     [why]/[impact]/BGP queries between appends on a live session.
     Execution-time backends label their live graph from the trace and
     return it (cheap — the labels are idempotent and re-applied at
     [finalize]); post-hoc backends run their inference over the current
     document and trace.  The returned graph is only valid to read until
     the next [observe] on the same state. *)

  val finalize : state -> doc:Tree.t -> trace:Trace.t -> Prov_graph.t
end

type backend = (module STRATEGY_BACKEND)
