(* A file-based repository for workflow executions — the durable version
   of the Figure 5 stores:

     <root>/<id>/document.xml    the Resource Repository entry
     <root>/<id>/trace.xml       the Execution Trace store entry
     <root>/<id>/provenance.nt   the Provenance store entry (optional,
                                 written when a graph is materialized)

   Loading restores everything inference needs: the reloaded document gets
   its arena timestamps rebuilt from the persisted @t labels, so
   post-hoc inference over a loaded execution equals inference over the
   live one (tested). *)

open Weblab_xml

exception Error of string

type t = { root : string }

let open_at root =
  if not (Sys.file_exists root) then Sys.mkdir root 0o755
  else if not (Sys.is_directory root) then
    raise (Error (root ^ " exists and is not a directory"));
  { root }

let dir t id = Filename.concat t.root id

let path t id file = Filename.concat (dir t id) file

let write_file path contents =
  let oc = open_out_bin path in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read_file path =
  if not (Sys.file_exists path) then raise (Error ("missing " ^ path));
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Valid execution ids are safe path segments. *)
let check_id id =
  if
    id = "" || String.exists (fun c -> c = '/' || c = '\\' || c = '.') id
  then raise (Error (Printf.sprintf "invalid execution id %S" id))

(* The document streams straight to the file through [Printer.to_channel]
   — no whole-document string in memory on the store path. *)
let write_doc path doc =
  let oc = open_out_bin path in
  (try Printer.to_channel ~indent:true oc doc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let store t ~id (exec : Engine.execution) =
  check_id id;
  if not (Sys.file_exists (dir t id)) then Sys.mkdir (dir t id) 0o755;
  write_doc (path t id "document.xml") exec.Engine.doc;
  write_file (path t id "trace.xml") (Trace_io.to_xml exec.Engine.trace)

let load t ~id : Engine.execution =
  check_id id;
  let doc_path = path t id "document.xml" in
  if not (Sys.file_exists doc_path) then raise (Error ("missing " ^ doc_path));
  (* Chunked streaming ingest: the file is parsed straight into the
     arena, never materialized as a string. *)
  let ic = open_in_bin doc_path in
  let doc =
    match Ingest.of_channel ic with
    | doc, _ ->
      close_in ic;
      doc
    | exception (Xml_parser.Error _ as e) ->
      close_in_noerr ic;
      raise (Error (Xml_parser.error_to_string e))
    | exception e ->
      close_in_noerr ic;
      raise e
  in
  Doc_state.restore_timestamps doc;
  let trace =
    try Trace_io.of_xml (read_file (path t id "trace.xml"))
    with Trace_io.Malformed m -> raise (Error m)
  in
  { Engine.doc; trace }

let store_provenance t ~id (g : Prov_graph.t) =
  check_id id;
  if not (Sys.file_exists (dir t id)) then Sys.mkdir (dir t id) 0o755;
  write_file (path t id "provenance.nt") (Prov_export.to_ntriples g)

let load_provenance t ~id : Prov_graph.t option =
  check_id id;
  let p = path t id "provenance.nt" in
  if not (Sys.file_exists p) then None
  else
    match Weblab_rdf.Turtle.parse_ntriples (read_file p) with
    | store -> Some (Prov_export.of_store store)
    | exception Weblab_rdf.Turtle.Parse_error m -> raise (Error m)

let executions t =
  if not (Sys.file_exists t.root) then []
  else
    Sys.readdir t.root |> Array.to_list
    |> List.filter (fun id ->
           Sys.is_directory (dir t id)
           && Sys.file_exists (path t id "document.xml"))
    |> List.sort String.compare

(* Materialize-or-load, backed by the disk instead of (or in addition to)
   the in-memory {!Prov_store}. *)
let provenance t ~id ~(materialize : Engine.execution -> Prov_graph.t) =
  match load_provenance t ~id with
  | Some g -> g
  | None ->
    let exec = load t ~id in
    let g = materialize exec in
    store_provenance t ~id g;
    g
