(* Inherited (implicit) provenance links — §4.

   Every explicit link b → a propagates structurally: descendants of b
   inherit all the provenance of b, and b also depends on everything
   "around" a — the descendants of a (they are part of what was read) and
   the ancestors of a (a's content is part of theirs).  In the running
   example, 8 → 4 induces 8 → 6 (6 is a descendant of 4), and 4 → 3
   induces 4 → 2 (2 is an ancestor of 3). *)

open Weblab_xml

(* Nodes inheriting the "generated" end of a link: b and its descendants. *)
let generated_side doc nb = Tree.descendant_or_self doc nb

(* Nodes inheriting the "used" end: a, its descendants and its ancestors. *)
let used_side doc na = Tree.descendant_or_self doc na @ Tree.ancestors doc na

(* Extend [g] with the inherited closure of its explicit links.
   [resources_only] (default true) keeps the graph over labeled resources,
   as in Figure 2; with [false] the closure also reaches unlabeled nodes,
   identified by their "#<node-id>" pseudo-URI. *)
let close ?(resources_only = true) doc (g : Prov_graph.t) =
  (* Resource lookup through the by-attribute index: O(1) per link end
     instead of a document scan. *)
  let index = Index.for_tree doc in
  let uri_of n =
    match Tree.uri doc n with
    | Some u -> Some u
    | None -> if resources_only then None else Some (Printf.sprintf "#%d" n)
  in
  let explicit = List.filter (fun l -> not l.Prov_graph.inherited) (Prov_graph.links g) in
  List.iter
    (fun { Prov_graph.from_uri; to_uri; rule; _ } ->
      match Index.resource index from_uri, Index.resource index to_uri with
      | Some nb, Some na ->
        List.iter
          (fun b' ->
            List.iter
              (fun a' ->
                match uri_of b', uri_of a' with
                | Some ub, Some ua ->
                  if not (String.equal ub from_uri && String.equal ua to_uri)
                  then Prov_graph.add_link g ~rule ~inherited:true
                         ~from_uri:ub ~to_uri:ua
                | _ -> ())
              (used_side doc na))
          (generated_side doc nb)
      | _ ->
        (* Skolem entities have no node in the document: their members carry
           the structural propagation instead. *)
        ())
    explicit;
  g
