(* High-level entry points tying the pieces together: run a workflow and
   obtain its provenance graph, or infer provenance from an existing
   execution trace — the Graph Construction / Request Manager roles in the
   Figure 5 architecture. *)

open Weblab_xml
open Weblab_workflow

type execution = {
  doc : Tree.t;
  trace : Trace.t;
}

(* Run a sequential workflow (without provenance inference). *)
let run ?policy doc services =
  let trace = Orchestrator.execute ?policy doc services in
  { doc; trace }

(* Run a workflow with a strategy backend observing the execution: the
   backend is initialized on the input document, fed every committed call
   (the hook never fires for a failed, rolled-back call), and finalized
   into the provenance graph once the trace is complete. *)
let run_with_backend ?policy ?jobs (backend : Strategy_sig.backend) doc
    services (rb : Strategy.rulebook) =
  let module B = (val backend : Strategy_sig.STRATEGY_BACKEND) in
  let module T = Weblab_obs.Telemetry in
  let st = B.init ?jobs ~doc rb in
  let trace =
    T.span ~cat:"engine" ("execute:" ^ B.name) (fun () ->
        Orchestrator.execute ?policy
          ~on_step:(fun call before after delta ->
            B.observe st ~call ~before ~after ~delta)
          doc services)
  in
  let g = T.span ~cat:"engine" ("finalize:" ^ B.name) (fun () ->
      B.finalize st ~doc ~trace)
  in
  ({ doc; trace }, g)

(* Run a workflow under any named strategy.  Execution-time backends
   (Online, Incremental) do their work in the hook; post-hoc backends
   (Replay, Rewrite) ignore the hook and infer in [finalize]. *)
let run_with_strategy ?policy ?jobs (kind : Strategy.kind) doc services rb =
  run_with_backend ?policy ?jobs (Strategy.backend_of kind) doc services rb

(* Run a workflow with Online provenance inference — the historical entry
   point, now a thin shim over the backend machinery. *)
let run_online ?policy ?jobs doc services (rb : Strategy.rulebook) =
  run_with_backend ?policy ?jobs (Strategy.backend_of `Online) doc services rb

(* Post-hoc inference from the final document and the execution trace. *)
let provenance ?strategy ?inheritance ?happened_before ?jobs { doc; trace } rb
    =
  Strategy.infer ?strategy ?inheritance ?happened_before ?jobs ~doc ~trace rb

(* Series-parallel workflows (§8): execute with channel recording, then
   infer with the happened-before relation of the series-parallel order
   instead of plain timestamp comparison. *)
let run_parallel ?policy ?strategy ?inheritance ?jobs doc (wf : Parallel.wf)
    rb =
  let pexec = Parallel.execute ?policy doc wf in
  let exec = { doc; trace = pexec.Parallel.trace } in
  let happened_before = Parallel.happened_before pexec in
  let g =
    Strategy.infer ?strategy ?inheritance ~happened_before ?jobs ~doc
      ~trace:exec.trace rb
  in
  (exec, pexec, g)

(* End to end: run, infer, export. *)
let run_with_provenance ?policy ?strategy ?inheritance ?jobs doc services rb =
  let exec = run ?policy doc services in
  (exec, provenance ?strategy ?inheritance ?jobs exec rb)

let to_turtle ?trace g = Prov_export.to_turtle ?trace g

let to_dot = Dot.to_dot
