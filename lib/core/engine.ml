(* High-level entry points tying the pieces together: run a workflow and
   obtain its provenance graph, or infer provenance from an existing
   execution trace — the Graph Construction / Request Manager roles in the
   Figure 5 architecture. *)

open Weblab_xml
open Weblab_workflow

type execution = {
  doc : Tree.t;
  trace : Trace.t;
}

(* Run a sequential workflow (without provenance inference). *)
let run ?policy doc services =
  let trace = Orchestrator.execute ?policy doc services in
  { doc; trace }

(* Run a workflow with Online provenance inference: rules are applied by
   the orchestrator hook after each call (committed calls only — the hook
   never fires for a failed, rolled-back call). *)
let run_online ?policy doc services (rb : Strategy.rulebook) =
  let g, hook = Strategy.online rb in
  let trace = Orchestrator.execute ?policy ~on_step:hook doc services in
  (* The hook sees only data dependencies; the labeling function λ comes
     from the trace. *)
  List.iter
    (fun e -> Prov_graph.set_label g e.Trace.uri e.Trace.call)
    (Trace.entries trace);
  ({ doc; trace }, g)

(* Post-hoc inference from the final document and the execution trace. *)
let provenance ?strategy ?inheritance ?happened_before { doc; trace } rb =
  Strategy.infer ?strategy ?inheritance ?happened_before ~doc ~trace rb

(* Series-parallel workflows (§8): execute with channel recording, then
   infer with the happened-before relation of the series-parallel order
   instead of plain timestamp comparison. *)
let run_parallel ?policy ?strategy ?inheritance doc (wf : Parallel.wf) rb =
  let pexec = Parallel.execute ?policy doc wf in
  let exec = { doc; trace = pexec.Parallel.trace } in
  let happened_before = Parallel.happened_before pexec in
  let g =
    Strategy.infer ?strategy ?inheritance ~happened_before ~doc
      ~trace:exec.trace rb
  in
  (exec, pexec, g)

(* End to end: run, infer, export. *)
let run_with_provenance ?policy ?strategy ?inheritance doc services rb =
  let exec = run ?policy doc services in
  (exec, provenance ?strategy ?inheritance exec rb)

let to_turtle ?trace g = Prov_export.to_turtle ?trace g

let to_dot = Dot.to_dot
