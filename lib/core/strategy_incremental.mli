(** The Incremental strategy backend: execution-time like Online, but
    per-call cost proportional to the appended delta, not the document.

    After each committed call the backend extends its privately owned
    {!Weblab_xml.Index} in place, enumerates the call's target matches
    with {!Weblab_xpath.Eval.eval_delta} (fragment + ancestor spine
    only), and hash-joins them against source-side binding tables
    memoized across calls.  Rules whose source rows are not stable under
    appends — non-downward axes, positional predicates, predicates that
    traverse the document (Exists_path, Count, string-values) — and
    Skolem rules fall back to the exact per-call Online computation; URI
    promotions reset the memo tables.  Failed, rolled-back calls are
    never observed, so the memoized state cannot be poisoned by discarded
    nodes.

    Produces the same graph as every other backend (property-tested,
    including under fault plans).  Sequential executions only — parallel
    (§8) inference stays post-hoc. *)

include Strategy_sig.STRATEGY_BACKEND
