(* The explain facility: a stable textual rendering of a compiled plan.

   Stability is part of the contract — CI diffs the dump of the paper
   scenario against a checked-in golden file — so everything printed is
   deterministic data from the plan (insertion-order ids, rulebook-order
   rules) and nothing is time-, locale- or machine-dependent. *)

open Weblab_xpath

let step_to_string (s : Ast.step) =
  Print.axis_to_string s.Ast.axis
  ^ Print.nametest_to_string s.Ast.test
  ^ String.concat ""
      (List.map (fun p -> "[" ^ Print.pred_to_string p ^ "]") s.Ast.preds)

let to_string (plan : Plan.t) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let st = Plan.stats plan in
  pf "fused rule-set plan\n";
  pf "===================\n";
  pf "rules: %d (%d fused, %d exact)\n" st.Plan.s_rules st.Plan.s_fused
    st.Plan.s_exact;
  pf "patterns: %d distinct for %d references\n" st.Plan.s_distinct_patterns
    st.Plan.s_pattern_refs;
  pf "trie: %d nodes for %d step occurrences (%d shared)\n\n"
    st.Plan.s_trie_nodes st.Plan.s_total_steps st.Plan.s_shared_steps;
  (* ----- the trie, depth-first, children in insertion order ----- *)
  pf "pattern trie\n";
  pf "------------\n";
  let trie = plan.Plan.p_trie in
  let leaf_expr = Hashtbl.create 16 in
  Array.iter
    (fun e -> Hashtbl.replace leaf_expr e.Plan.e_leaf e.Plan.e_id)
    plan.Plan.p_exprs;
  let rec walk depth id =
    let n = Trie.get trie id in
    let expr_mark =
      match Hashtbl.find_opt leaf_expr id with
      | Some e -> Printf.sprintf "  => E%d" e
      | None -> ""
    in
    pf "[%3d] %s%-*s  x%d%s\n" id
      (String.make (2 * depth) ' ')
      (max 0 (46 - (2 * depth)))
      (step_to_string n.Trie.step) n.Trie.refs expr_mark;
    List.iter (walk (depth + 1)) (Trie.children trie id)
  in
  List.iter (walk 0) (Trie.children trie Trie.root);
  (* ----- the shared subexpressions (CSE table) ----- *)
  pf "\nshared subexpressions\n";
  pf "---------------------\n";
  Array.iter
    (fun e ->
      pf "E%d: %s  refs=%d est=%d\n" e.Plan.e_id
        (Print.pattern_to_string e.Plan.e_pattern)
        e.Plan.e_refs e.Plan.e_estimate)
    plan.Plan.p_exprs;
  (* ----- per-service rule plans, in rulebook order ----- *)
  Array.iter
    (fun sp ->
      pf "\nservice %s\n" sp.Plan.sp_service;
      pf "--------%s\n" (String.make (String.length sp.Plan.sp_service) '-');
      if Array.length sp.Plan.sp_rules = 0 then pf "  (no rules)\n"
      else
        Array.iter
          (fun rp ->
            match rp with
            | Plan.Exact { x_name; x_reason } ->
              pf "  %s: exact (%s)\n" x_name x_reason
            | Plan.Fused { f_name; f_src; f_tgt; f_keys; f_build } ->
              let src = Plan.expr plan f_src in
              let tgt = Plan.expr plan f_tgt in
              pf "  %s: join E%d * E%d on (%s) build=%s (est %d vs %d)\n"
                f_name f_src f_tgt
                (String.concat ", " f_keys)
                (match f_build with
                 | Plan.Build_source -> "source"
                 | Plan.Build_target -> "target")
                src.Plan.e_estimate tgt.Plan.e_estimate)
          sp.Plan.sp_rules)
    plan.Plan.p_services;
  Buffer.contents b
