(* The rule-set compiler: rulebook → flat fused plan.

   Compilation has three phases:

   1. {b Trie construction / CSE.}  Every fusable rule's source and
      target pattern is interned in one shared {!Trie}; identical
      patterns collapse onto the same leaf, so each {e distinct} pattern
      becomes one {!expr} and each distinct (prefix, step) pair one trie
      node.  A pass over a document state evaluates every needed trie
      node once, however many rules reference it.

   2. {b Join ordering.}  A fused rule is a hash join of its source and
      target expression tables on their shared variables.  The build
      (hashed) side is the one with the smaller index-derived
      cardinality estimate — for each side, the minimum over its steps
      of the index's candidate count for the step's name test.
      Estimates only pick the cheaper of two equivalent plans; they
      never affect the result.

   3. {b Lowering.}  The result is flat data — integer-indexed arrays of
      expressions and per-service rule plans, no closures — so executing
      a call is: run the two passes (source side on the before state,
      target side on the after state), then look up tables by expr id
      and join.  Execution lives in {!Pass} and the Fused strategy
      backend; this module is the static half.

   Rules the fused path cannot reproduce exactly — Skolem rules (their
   identifier is computed per joined row) and rules with free target
   variables (the join would need a column the target evaluation cannot
   produce) — are lowered to [Exact] plans: the backend runs the
   reference rule-at-a-time computation for them.  The caller decides
   the classification (it owns the rule representation); the compiler
   records the reason for the explain dump. *)

open Weblab_xml
open Weblab_xpath

type crule = {
  cr_name : string;
  cr_source : Ast.pattern;
  cr_target : Ast.pattern;
  cr_exact : string option;
      (* [Some reason]: evaluate rule-at-a-time, exactly *)
}

type expr = {
  e_id : int;  (* dense, in first-reference order *)
  e_leaf : int;  (* trie leaf interning the pattern *)
  e_pattern : Ast.pattern;
  e_path : int list;  (* trie chain, root to leaf *)
  mutable e_refs : int;  (* (rule, side) references — the CSE degree *)
  e_estimate : int;  (* index-derived cardinality estimate *)
}

type build_side = Build_source | Build_target

type rule_plan =
  | Exact of { x_name : string; x_reason : string }
  | Fused of {
      f_name : string;
      f_src : int;  (* expr id *)
      f_tgt : int;
      f_keys : string list;  (* shared join variables, sorted *)
      f_build : build_side;
    }

type service_plan = {
  sp_service : string;
  sp_rules : rule_plan array;  (* in rulebook order *)
  sp_src_exprs : int array;  (* expr ids the source pass materializes *)
  sp_tgt_exprs : int array;  (* ditto, target pass *)
}

type t = {
  p_trie : Trie.t;
  p_exprs : expr array;  (* by [e_id] *)
  p_services : service_plan array;  (* in rulebook order *)
}

(* Candidate count the index would serve for one step: the by-label list
   for a name test, all elements for [*].  The estimate for a pattern is
   the minimum over its steps — every embedding must pass through each
   step's candidate set. *)
let step_estimate idx (s : Ast.step) =
  match s.Ast.test with
  | Ast.Name l -> Index.label_count idx l
  | Ast.Any -> List.length (Index.elements idx)

let index_estimate idx (pattern : Ast.pattern) =
  match pattern with
  | [] -> 0
  | s :: rest -> List.fold_left (fun e s -> min e (step_estimate idx s)) (step_estimate idx s) rest

(* Variables a pattern's result table exposes besides "r"/"node" — must
   mirror the projections of the rule application (Definition 8) so the
   computed join keys are the columns the tables actually share. *)
let source_vars p = Ast.variables p

let target_vars p =
  List.sort_uniq String.compare (Ast.variables p @ Ast.free_variables p)
  |> List.filter (fun v -> v <> "r" && v <> "node")

let compile ?(estimate = fun (_ : Ast.pattern) -> 0) (rb : (string * crule list) list) =
  let trie = Trie.create () in
  let exprs = ref [] and n_exprs = ref 0 in
  let by_leaf = Hashtbl.create 32 in
  let intern pattern =
    let chain = Trie.insert trie pattern in
    let leaf = List.nth chain (List.length chain - 1) in
    let e =
      match Hashtbl.find_opt by_leaf leaf with
      | Some e -> e
      | None ->
        let e =
          { e_id = !n_exprs; e_leaf = leaf; e_pattern = pattern;
            e_path = chain; e_refs = 0; e_estimate = estimate pattern }
        in
        incr n_exprs;
        exprs := e :: !exprs;
        Hashtbl.add by_leaf leaf e;
        e
    in
    e.e_refs <- e.e_refs + 1;
    e
  in
  let services =
    List.map
      (fun (service, rules) ->
        let src_ids = ref [] and tgt_ids = ref [] in
        let seen_src = Hashtbl.create 8 and seen_tgt = Hashtbl.create 8 in
        let plans =
          List.map
            (fun r ->
              match r.cr_exact with
              | Some reason -> Exact { x_name = r.cr_name; x_reason = reason }
              | None ->
                let src = intern r.cr_source in
                let tgt = intern r.cr_target in
                if not (Hashtbl.mem seen_src src.e_id) then begin
                  Hashtbl.add seen_src src.e_id ();
                  src_ids := src.e_id :: !src_ids
                end;
                if not (Hashtbl.mem seen_tgt tgt.e_id) then begin
                  Hashtbl.add seen_tgt tgt.e_id ();
                  tgt_ids := tgt.e_id :: !tgt_ids
                end;
                let svars = source_vars r.cr_source in
                let tvars = target_vars r.cr_target in
                let keys =
                  List.filter (fun v -> List.mem v tvars) svars
                  |> List.sort_uniq String.compare
                in
                let build =
                  if tgt.e_estimate <= src.e_estimate then Build_target
                  else Build_source
                in
                Fused
                  { f_name = r.cr_name; f_src = src.e_id; f_tgt = tgt.e_id;
                    f_keys = keys; f_build = build })
            rules
        in
        { sp_service = service;
          sp_rules = Array.of_list plans;
          sp_src_exprs = Array.of_list (List.rev !src_ids);
          sp_tgt_exprs = Array.of_list (List.rev !tgt_ids) })
      rb
  in
  let exprs =
    let a = Array.of_list (List.rev !exprs) in
    Array.sort (fun a b -> compare a.e_id b.e_id) a;
    a
  in
  { p_trie = trie; p_exprs = exprs; p_services = Array.of_list services }

let expr t id = t.p_exprs.(id)

(* ----- Aggregate statistics (the explain header and obs gauges) ----- *)

type stats = {
  s_rules : int;
  s_fused : int;
  s_exact : int;
  s_pattern_refs : int;  (* fused pattern occurrences (2 per fused rule) *)
  s_distinct_patterns : int;
  s_trie_nodes : int;
  s_total_steps : int;  (* step occurrences before sharing *)
  s_shared_steps : int;  (* evaluations removed per pass by the trie *)
}

let stats t =
  let rules = ref 0 and fused = ref 0 in
  Array.iter
    (fun sp ->
      Array.iter
        (fun rp ->
          incr rules;
          match rp with Fused _ -> incr fused | Exact _ -> ())
        sp.sp_rules)
    t.p_services;
  {
    s_rules = !rules;
    s_fused = !fused;
    s_exact = !rules - !fused;
    s_pattern_refs = Array.fold_left (fun a e -> a + e.e_refs) 0 t.p_exprs;
    s_distinct_patterns = Array.length t.p_exprs;
    s_trie_nodes = Trie.size t.p_trie;
    s_total_steps = Trie.total_refs t.p_trie;
    s_shared_steps = Trie.shared_steps t.p_trie;
  }
