(** The rule-set compiler: rulebook → flat fused plan.

    Interns every fusable rule's source and target pattern in one shared
    {!Trie} (common-subexpression elimination: identical patterns
    collapse onto one {!expr}, shared prefixes onto shared trie nodes),
    picks each rule's hash-join build side from index-derived
    cardinality estimates, and lowers the result to integer-indexed
    arrays — no closures — that {!Pass} and the Fused strategy backend
    execute in one pass per committed call.

    The compiler is representation-agnostic: callers hand it plain
    {!crule} records and decide which rules need the [Exact]
    rule-at-a-time fallback (Skolem rules, free target variables); the
    compiler records the reason for the explain dump. *)

open Weblab_xml
open Weblab_xpath

type crule = {
  cr_name : string;
  cr_source : Ast.pattern;
  cr_target : Ast.pattern;
  cr_exact : string option;
      (** [Some reason]: lower to an [Exact] plan — the backend runs the
          reference rule-at-a-time computation for this rule. *)
}

type expr = {
  e_id : int;  (** dense, in first-reference order *)
  e_leaf : int;  (** trie leaf interning the pattern *)
  e_pattern : Ast.pattern;
  e_path : int list;  (** trie chain, root to leaf *)
  mutable e_refs : int;  (** (rule, side) references — the CSE degree *)
  e_estimate : int;  (** index-derived cardinality estimate *)
}

type build_side = Build_source | Build_target

type rule_plan =
  | Exact of { x_name : string; x_reason : string }
  | Fused of {
      f_name : string;
      f_src : int;  (** expr id of the source pattern *)
      f_tgt : int;  (** expr id of the target pattern *)
      f_keys : string list;  (** shared join variables, sorted *)
      f_build : build_side;
          (** Which table the hash join hashes — the smaller estimated
              side; the other side probes.  Never affects the result. *)
    }

type service_plan = {
  sp_service : string;
  sp_rules : rule_plan array;  (** in rulebook order *)
  sp_src_exprs : int array;
      (** expr ids the service's source pass materializes, in
          first-reference order *)
  sp_tgt_exprs : int array;  (** ditto for the target pass *)
}

type t = {
  p_trie : Trie.t;
  p_exprs : expr array;  (** indexed by [e_id] *)
  p_services : service_plan array;  (** in rulebook order *)
}

val compile :
  ?estimate:(Ast.pattern -> int) -> (string * crule list) list -> t
(** Compile a rulebook.  [estimate] supplies the cardinality estimate
    recorded on each expression (default: constant 0, which makes every
    join hash its target side); pass {!index_estimate} applied to an
    index of the initial document for real estimates.  Deterministic:
    the same rulebook and estimates produce the same plan, ids and
    all. *)

val expr : t -> int -> expr

val index_estimate : Index.t -> Ast.pattern -> int
(** Minimum over the pattern's steps of the index's candidate count for
    the step's name test (by-label list size; all elements for [*]) —
    every embedding must pass through each step's candidate set. *)

type stats = {
  s_rules : int;
  s_fused : int;
  s_exact : int;
  s_pattern_refs : int;
  s_distinct_patterns : int;
  s_trie_nodes : int;
  s_total_steps : int;
  s_shared_steps : int;
      (** step evaluations removed per pass by prefix sharing *)
}

val stats : t -> stats
