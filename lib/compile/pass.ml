(* One fused evaluation pass: materialize a set of expression tables
   against one document state, evaluating every needed trie node exactly
   once.

   Nodes are evaluated in ascending id order; a parent's id is always
   smaller (Trie invariant), so each node extends an already-computed
   parent front.  Each front and each table goes through the evaluator's
   own step/table code ({!Eval.prefix_step} / {!Eval.prefix_table}), so
   a materialized table is bit-identical to [Eval.eval] of the same
   pattern under the same guards and index — the property the five-way
   strategy-agreement tests pin down. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
module T = Weblab_obs.Telemetry

let c_steps = T.counter "fused.pass.steps"
let c_steps_shared = T.counter "fused.pass.steps.shared"
let c_tables = T.counter "fused.pass.tables"

type t = { tables : (int, Table.t) Hashtbl.t (* expr id → table *) }

let run (plan : Plan.t) ~(exprs : int array) ?index ~guards doc =
  let index =
    match index with
    | Some idx when Index.valid_for idx doc -> Some idx
    | Some _ | None -> Some (Index.for_tree doc)
  in
  (* The union of the expressions' trie chains, ascending = parents
     before children. *)
  let needed = Hashtbl.create 64 in
  let demanded = ref 0 in
  Array.iter
    (fun e ->
      let path = (Plan.expr plan e).Plan.e_path in
      demanded := !demanded + List.length path;
      List.iter (fun nid -> Hashtbl.replace needed nid ()) path)
    exprs;
  let order =
    Hashtbl.fold (fun nid () acc -> nid :: acc) needed []
    |> List.sort compare
  in
  T.add c_steps (List.length order);
  T.add c_steps_shared (!demanded - List.length order);
  let fronts = Hashtbl.create 64 in
  List.iter
    (fun nid ->
      let n = Trie.get plan.Plan.p_trie nid in
      let parent_front =
        if n.Trie.parent = Trie.root then Eval.prefix_start guards
        else Hashtbl.find fronts n.Trie.parent
      in
      Hashtbl.add fronts nid
        (Eval.prefix_step ?index ~guards doc parent_front n.Trie.step))
    order;
  let tables = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let ex = Plan.expr plan e in
      T.incr c_tables;
      Hashtbl.replace tables e
        (Eval.prefix_table doc ex.Plan.e_pattern
           (Hashtbl.find fronts ex.Plan.e_leaf)))
    exprs;
  { tables }

let table t ~expr =
  match Hashtbl.find_opt t.tables expr with
  | Some tbl -> tbl
  | None -> invalid_arg "Pass.table: expression not materialized by this pass"
