(** One fused evaluation pass over a document state.

    Materializes the tables of a set of plan expressions, evaluating
    every needed trie node exactly once — shared prefixes are the whole
    point.  Tables are bit-identical (rows and order) to
    [Eval.eval] of the same pattern under the same guards and index.

    Telemetry: [fused.pass.steps] counts trie nodes evaluated,
    [fused.pass.steps.shared] the step evaluations saved versus
    rule-at-a-time evaluation of the same expressions, and
    [fused.pass.tables] the tables materialized. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg

type t

val run :
  Plan.t ->
  exprs:int array ->
  ?index:Index.t ->
  guards:Eval.guards ->
  Tree.t ->
  t
(** Evaluate the given expressions (by id) against [doc] under [guards].
    A valid [index] serves step candidates (a stale one is ignored, as
    in [Eval.eval]). *)

val table : t -> expr:int -> Table.t
(** @raise Invalid_argument if the expression was not in [exprs]. *)
