(** Stable textual rendering of a compiled plan — the [--explain-plan]
    facility.

    The output shows the pattern trie (with per-node sharing degrees),
    the shared-subexpression table, and each rule's lowered plan (join
    keys, build side, cardinality estimates, or the exact-fallback
    reason).  It is deterministic for a given rulebook and estimate
    function and contains nothing time- or machine-dependent; CI pins
    the paper scenario's dump as a golden file. *)

val to_string : Plan.t -> string

val step_to_string : Weblab_xpath.Ast.step -> string
(** One step in the pattern syntax (axis separator, name test,
    predicates) — the rendering used for trie nodes. *)
