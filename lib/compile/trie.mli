(** The shared pattern-prefix trie.

    Interns the step lists of a rulebook's XPath patterns: two patterns
    share trie nodes exactly as far as their step lists agree
    (structural equality on steps, predicates included).  A node stands
    for the chain from the virtual document root down to its step; a
    pattern is identified by its leaf node, so distinct patterns map to
    distinct leaves and {e identical} patterns map to the same leaf —
    the common-subexpression identity the compiler's CSE is built on.

    Ids are dense insertion-order ints; a parent's id is always smaller
    than its children's, so ascending id order is a valid evaluation
    schedule. *)

open Weblab_xpath

type node = {
  id : int;
  parent : int;  (** [root] for the first step of a pattern *)
  step : Ast.step;
  mutable refs : int;
      (** How many pattern occurrences traverse this node — the sharing
          degree the explain dump reports. *)
}

type t

val root : int
(** The id of the virtual document node ([-1]); never a real node. *)

val create : unit -> t

val insert : t -> Ast.pattern -> int list
(** Intern a pattern; returns its node chain, root to leaf (so the leaf
    is the last element).  Idempotent on structure: re-inserting an
    equal pattern returns the same chain (and bumps [refs]).
    @raise Invalid_argument on the empty pattern. *)

val get : t -> int -> node
(** @raise Invalid_argument on an unknown id. *)

val size : t -> int
(** Number of interned nodes = distinct (prefix, step) pairs. *)

val path : t -> int -> int list
(** Node chain from the root down to the given node, inclusive. *)

val children : t -> int -> int list
(** Child ids in insertion (ascending id) order; pass {!root} for the
    top-level steps. *)

val total_refs : t -> int
(** Total step occurrences across all inserted patterns. *)

val shared_steps : t -> int
(** [total_refs t - size t]: step evaluations per pass that prefix
    sharing removes compared to rule-at-a-time evaluation. *)
