(* The shared pattern-prefix trie.

   Every pattern of a rulebook — source and target sides alike — is a
   list of XPath steps; patterns that agree on a prefix of steps
   (structurally, including predicates) re-do exactly the same work when
   evaluated rule at a time.  The trie interns each distinct (prefix,
   step) pair once: a node stands for the step chain from the virtual
   document root down to it, and two patterns share trie nodes exactly
   as far as their step lists agree.

   Node ids are dense and allocated in insertion order, so a parent's id
   is always smaller than its children's — evaluating nodes in ascending
   id order (as {!Pass} does) is a valid topological schedule. *)

open Weblab_xpath

type node = {
  id : int;
  parent : int;  (* [root] for the first step of a pattern *)
  step : Ast.step;
  mutable refs : int;  (* pattern occurrences whose chain passes through *)
}

type t = {
  mutable nodes : node array;  (* id-indexed prefix [0, count) *)
  mutable count : int;
  children : (int * Ast.step, int) Hashtbl.t;  (* (parent, step) → id *)
}

let root = -1

let create () = { nodes = [||]; count = 0; children = Hashtbl.create 64 }

let size t = t.count

let get t id =
  if id < 0 || id >= t.count then invalid_arg "Trie.get: unknown node";
  t.nodes.(id)

let push t node =
  if t.count = Array.length t.nodes then begin
    let grown = Array.make (max 16 (2 * t.count)) node in
    Array.blit t.nodes 0 grown 0 t.count;
    t.nodes <- grown
  end;
  t.nodes.(t.count) <- node;
  t.count <- t.count + 1

(* Intern a pattern; returns its node chain, root to leaf.  Structural
   equality on steps (axis, name test, predicate list) decides sharing —
   the same notion under which evaluation of the step is the same
   function of the incoming front. *)
let insert t (pattern : Ast.pattern) =
  if pattern = [] then invalid_arg "Trie.insert: empty pattern";
  let rev_path =
    List.fold_left
      (fun acc step ->
        let parent = match acc with [] -> root | id :: _ -> id in
        let key = (parent, step) in
        let id =
          match Hashtbl.find_opt t.children key with
          | Some id -> id
          | None ->
            let id = t.count in
            push t { id; parent; step; refs = 0 };
            Hashtbl.add t.children key id;
            id
        in
        (get t id).refs <- (get t id).refs + 1;
        id :: acc)
      [] pattern
  in
  List.rev rev_path

let path t id =
  let rec up acc id = if id = root then acc else up (id :: acc) (get t id).parent in
  up [] id

let children t id =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    if t.nodes.(i).parent = id then out := i :: !out
  done;
  !out

let total_refs t =
  let s = ref 0 in
  for i = 0 to t.count - 1 do
    s := !s + t.nodes.(i).refs
  done;
  !s

(* Step evaluations a rule-at-a-time evaluator would perform minus the
   trie's nodes: the work the sharing removes (per pass). *)
let shared_steps t = total_refs t - size t
