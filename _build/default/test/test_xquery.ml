(* Tests for the FLWOR engine, the rule→XQuery compiler (§6, Examples 8/9)
   and the key-join optimizer. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg
open Weblab_xquery

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let table_rows t =
  Table.rows t
  |> List.map (fun row ->
         Table.columns t
         |> List.map (fun c ->
                Printf.sprintf "%s=%s" c (Value.to_string (Table.get t row c)))
         |> List.sort compare
         |> String.concat " ")
  |> List.sort compare

let doc () =
  Xml_parser.parse
    {|<R id="r1">
        <T id="r2" s="Norm" t="1"><C id="c2" s="Norm" t="1">text a</C>
          <A id="a2" s="LE" t="2"><L>en</L></A></T>
        <T id="r3" s="Norm" t="1"><C id="c3" s="Norm" t="1">text b</C>
          <A id="a3" s="LE" t="2"><L>fr</L></A></T>
      </R>|}

(* --- direct FLWOR evaluation --- *)

let test_eval_for_path () =
  let q =
    { Xq_ast.clauses =
        [ Xq_ast.For ("t", { Xq_ast.start = `Root;
                             steps = [ (Ast.Descendant, Ast.Name "T") ] }) ];
      where = [];
      return_cols = [ ("id", Xq_ast.Attr_of ("t", "id")) ] }
  in
  check (Alcotest.list Alcotest.string) "for over //T" [ "id=r2"; "id=r3" ]
    (table_rows (Xq_eval.run (doc ()) q))

let test_eval_nested_for () =
  let q =
    { Xq_ast.clauses =
        [ Xq_ast.For ("t", { Xq_ast.start = `Root;
                             steps = [ (Ast.Descendant, Ast.Name "T") ] });
          Xq_ast.For ("c", { Xq_ast.start = `Var "t";
                             steps = [ (Ast.Child, Ast.Name "C") ] }) ];
      where = [];
      return_cols =
        [ ("t", Xq_ast.Attr_of ("t", "id")); ("c", Xq_ast.Attr_of ("c", "id")) ] }
  in
  check (Alcotest.list Alcotest.string) "nested" [ "c=c2 t=r2"; "c=c3 t=r3" ]
    (table_rows (Xq_eval.run (doc ()) q))

let test_eval_where_and_let () =
  let q =
    { Xq_ast.clauses =
        [ Xq_ast.For ("t", { Xq_ast.start = `Root;
                             steps = [ (Ast.Descendant, Ast.Name "T") ] });
          Xq_ast.Let ("x", Xq_ast.Attr_of ("t", "id")) ];
      where = [ Xq_ast.Cmp (Xq_ast.Var_ref "x", Ast.Eq, Xq_ast.String_lit "r3") ];
      return_cols = [ ("x", Xq_ast.Var_ref "x") ] }
  in
  check (Alcotest.list Alcotest.string) "where filters" [ "x=r3" ]
    (table_rows (Xq_eval.run (doc ()) q))

let test_eval_exists_and_path_cmp () =
  let path v steps = { Xq_ast.start = `Var v; steps } in
  let q =
    { Xq_ast.clauses =
        [ Xq_ast.For ("t", { Xq_ast.start = `Root;
                             steps = [ (Ast.Descendant, Ast.Name "T") ] }) ];
      where =
        [ Xq_ast.Exists (path "t" [ (Ast.Child, Ast.Name "A") ]);
          Xq_ast.Path_cmp
            (path "t" [ (Ast.Child, Ast.Name "A"); (Ast.Child, Ast.Name "L") ],
             Ast.Eq, Xq_ast.String_lit "fr") ];
      return_cols = [ ("id", Xq_ast.Attr_of ("t", "id")) ] }
  in
  check (Alcotest.list Alcotest.string) "path compare" [ "id=r3" ]
    (table_rows (Xq_eval.run (doc ()) q))

let test_eval_missing_let_kills_row () =
  (* A let over a missing attribute removes the embedding (condition 2 of
     Definition 4). *)
  let q =
    { Xq_ast.clauses =
        [ Xq_ast.For ("t", { Xq_ast.start = `Root;
                             steps = [ (Ast.Descendant, Ast.Name "T") ] });
          Xq_ast.Let ("x", Xq_ast.Attr_of ("t", "missing")) ];
      where = [];
      return_cols = [ ("x", Xq_ast.Var_ref "x") ] }
  in
  check_int "no rows" 0 (Table.cardinality (Xq_eval.run (doc ()) q))

(* --- compilation --- *)

let test_compile_pattern_matches_eval () =
  (* Compiled query ≡ native embedding evaluation, on patterns in the
     compilable fragment. *)
  let patterns =
    [ "//T[$x := @id]/C"; "//T[A/L = 'fr']"; "//T[$x := @id]/A[L]";
      "/R//C"; "//T[@id]/C[@id != 'c9']" ]
  in
  let d = doc () in
  List.iter
    (fun ps ->
      let p = Parser.pattern ps in
      let native = Eval.eval d p in
      let compiled =
        Xq_eval.run d (Xq_compile.compile_pattern_query ~require_uri:true p)
      in
      let native_rows =
        table_rows (Table.project native (List.filter (fun c -> c <> "node")
                                            (Table.columns native)))
      in
      check (Alcotest.list Alcotest.string) ps native_rows (table_rows compiled))
    patterns

let test_compile_unsupported () =
  let p = Parser.pattern "//T[1]" in
  (match Xq_compile.compile_pattern_query p with
   | _ -> Alcotest.fail "expected Unsupported"
   | exception Xq_compile.Unsupported _ -> ());
  let p = Parser.pattern "//T[$p := position()]" in
  match Xq_compile.compile_pattern_query p with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Xq_compile.Unsupported _ -> ()

let example9_query () =
  Xq_compile.compile_rule_query
    (Parser.pattern "//T[$x := @id]/C")
    (Parser.pattern "//T[$x := @id]/A[L]")
    ~service:"LE" ~time:2

let test_compile_rule_query () =
  let q = example9_query () in
  let t = Xq_eval.run (doc ()) q in
  check (Alcotest.list Alcotest.string) "provenance rows"
    [ "in=c2 out=a2"; "in=c3 out=a3" ]
    (table_rows t)

(* --- optimizer --- *)

let count_fors q =
  List.length
    (List.filter (function Xq_ast.For _ -> true | Xq_ast.Let _ | Xq_ast.Filter _ -> false)
       q.Xq_ast.clauses)

let test_optimizer_merges () =
  let q = example9_query () in
  let q' = Xq_optimize.merge_key_joins q in
  check_int "fors before" 4 (count_fors q);
  check_int "fors after" 3 (count_fors q');
  (* the join condition disappeared *)
  check_int "where shrank" (List.length q.Xq_ast.where - 1)
    (List.length q'.Xq_ast.where)

let test_optimizer_preserves_semantics () =
  let q = example9_query () in
  let q' = Xq_optimize.merge_key_joins q in
  let d = doc () in
  check (Alcotest.list Alcotest.string) "same results"
    (table_rows (Xq_eval.run d q))
    (table_rows (Xq_eval.run d q'))

let test_optimizer_respects_key_attrs () =
  let q = example9_query () in
  (* @id is not declared a key: nothing merges. *)
  let q' = Xq_optimize.merge_key_joins ~key_attrs:[ "other" ] q in
  check_int "no merge" (count_fors q) (count_fors q')

let test_optimizer_no_false_merge () =
  (* Joining on a non-key or across different paths must not merge. *)
  let q =
    Xq_compile.compile_rule_query
      (Parser.pattern "//C[$x := @id]")
      (Parser.pattern "//A[$x := @id]")
      ~service:"LE" ~time:2
  in
  let q' = Xq_optimize.merge_key_joins q in
  (* paths differ (//C vs //A): the for-clauses stay *)
  check_int "no merge across names" (count_fors q) (count_fors q')

let test_dead_let_elimination () =
  let q =
    { Xq_ast.clauses =
        [ Xq_ast.For ("t", { Xq_ast.start = `Root;
                             steps = [ (Ast.Descendant, Ast.Name "T") ] });
          Xq_ast.Let ("unused", Xq_ast.Attr_of ("t", "id"));
          Xq_ast.Let ("used", Xq_ast.Attr_of ("t", "id")) ];
      where = [];
      return_cols = [ ("u", Xq_ast.Var_ref "used") ] }
  in
  let q' = Xq_optimize.eliminate_dead_lets q in
  check_int "lets" 1
    (List.length
       (List.filter (function Xq_ast.Let _ -> true | Xq_ast.For _ | Xq_ast.Filter _ -> false)
          q'.Xq_ast.clauses))

let test_pushdown_semantics () =
  let q = example9_query () in
  let q' = Xq_optimize.push_filters q in
  (* no residual where: everything became an inline filter *)
  check_int "where emptied" 0 (List.length q'.Xq_ast.where);
  check_int "filters materialized" (List.length q.Xq_ast.where)
    (List.length
       (List.filter
          (function Xq_ast.Filter _ -> true | _ -> false)
          q'.Xq_ast.clauses));
  let d = doc () in
  check (Alcotest.list Alcotest.string) "same results"
    (table_rows (Xq_eval.run d q))
    (table_rows (Xq_eval.run d q'))

let test_pushdown_placement () =
  (* The source temporal test must sit before the target for-clauses. *)
  let q = Xq_optimize.push_filters (example9_query ()) in
  let rec index i = function
    | [] -> (-1, -1)
    | Xq_ast.Filter (Xq_ast.Cmp (Xq_ast.Attr_of ("s2", "t"), _, _)) :: _ ->
      (i, -2)  (* found filter; find the t1 for below *)
    | Xq_ast.For ("t1", _) :: _ -> (-2, i)
    | _ :: rest -> index (i + 1) rest
  in
  let filter_pos, _ = index 0 q.Xq_ast.clauses in
  let rec for_pos i = function
    | [] -> -1
    | Xq_ast.For ("t1", _) :: _ -> i
    | _ :: rest -> for_pos (i + 1) rest
  in
  let t1_pos = for_pos 0 q.Xq_ast.clauses in
  check_bool "temporal filter before target block" true
    (filter_pos >= 0 && t1_pos >= 0 && filter_pos < t1_pos)

let test_full_optimize_pipeline () =
  let q = example9_query () in
  let q' = Xq_optimize.optimize q in
  let d = doc () in
  check (Alcotest.list Alcotest.string) "merge + pushdown preserve semantics"
    (table_rows (Xq_eval.run d q))
    (table_rows (Xq_eval.run d q'));
  check_int "fors merged" 3 (count_fors q');
  check_int "where emptied" 0 (List.length q'.Xq_ast.where)

(* --- text parser (round-trips with the printer) --- *)

let test_parse_examples_roundtrip () =
  (* Every query the compiler generates prints to text the parser reads
     back with identical semantics. *)
  let d = doc () in
  let queries =
    [ example9_query ();
      Xq_optimize.merge_key_joins (example9_query ());
      Xq_compile.compile_pattern_query (Parser.pattern "//T[$x := @id]/C") ]
  in
  List.iter
    (fun q ->
      let printed = Xq_print.to_string q in
      let q' = Xq_parser.parse printed in
      check (Alcotest.list Alcotest.string)
        (String.concat " " (String.split_on_char '\n' printed))
        (table_rows (Xq_eval.run d q))
        (table_rows (Xq_eval.run d q')))
    queries

let test_parse_literal_query () =
  (* The paper's Example 9 query, typed in as text. *)
  let q =
    Xq_parser.parse
      "for $s1 in //T, $s2 in $s1/C, $t2 in $s1/A \
       let $x1 := $s1/@id \
       where $t2/L and $s2/@t < 2 and $t2/@t = 2 and $t2/@s = 'LE' \
       return <prov>{$s2/@id} -> {$t2/@id}</prov>"
  in
  check (Alcotest.list Alcotest.string) "literal query"
    [ "in=c2 out=a2"; "in=c3 out=a3" ]
    (table_rows (Xq_eval.run (doc ()) q))

let test_parse_emb_constructor () =
  let q =
    Xq_parser.parse
      "for $v1 in //T let $x := $v1/@id return <emb><r>{$x}</r></emb>"
  in
  check (Alcotest.list Alcotest.string) "emb" [ "r=r2"; "r=r3" ]
    (table_rows (Xq_eval.run (doc ()) q))

let test_parse_errors () =
  let expect input =
    match Xq_parser.parse input with
    | _ -> Alcotest.failf "expected parse error for %S" input
    | exception Xq_parser.Error _ -> ()
  in
  expect "";
  expect "for $x return <emb></emb>";          (* missing 'in path' *)
  expect "for $x in //T return <what>{$x}</what>";
  expect "for $x in //T where return <emb></emb>";
  expect "for $x in //T return <prov>{$x/@id}</prov>";  (* no arrow *)
  expect "for $x in //T return <emb><a>{$x/@id}</b></emb>"

(* --- printer --- *)

let test_print_shape () =
  let q = example9_query () in
  let s = Xq_print.to_string q in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub s i nn = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "for" true (contains "for $s1 in //T");
  check_bool "let" true (contains "let $x1 := $s1/@id");
  check_bool "where" true (contains "where");
  check_bool "temporal" true (contains "$s2/@t < 2");
  check_bool "service" true (contains "$t2/@s = 'LE'");
  check_bool "return" true (contains "return <prov>{$s2/@id} -> {$t2/@id}</prov>")

let () =
  Alcotest.run "xquery"
    [ ( "eval",
        [ Alcotest.test_case "for over path" `Quick test_eval_for_path;
          Alcotest.test_case "nested for" `Quick test_eval_nested_for;
          Alcotest.test_case "where + let" `Quick test_eval_where_and_let;
          Alcotest.test_case "exists + path compare" `Quick test_eval_exists_and_path_cmp;
          Alcotest.test_case "missing let" `Quick test_eval_missing_let_kills_row ] );
      ( "compile",
        [ Alcotest.test_case "pattern query ≡ eval" `Quick test_compile_pattern_matches_eval;
          Alcotest.test_case "unsupported features" `Quick test_compile_unsupported;
          Alcotest.test_case "rule query" `Quick test_compile_rule_query ] );
      ( "optimize",
        [ Alcotest.test_case "merges key join" `Quick test_optimizer_merges;
          Alcotest.test_case "preserves semantics" `Quick test_optimizer_preserves_semantics;
          Alcotest.test_case "key attrs respected" `Quick test_optimizer_respects_key_attrs;
          Alcotest.test_case "no false merge" `Quick test_optimizer_no_false_merge;
          Alcotest.test_case "dead lets" `Quick test_dead_let_elimination;
          Alcotest.test_case "pushdown semantics" `Quick test_pushdown_semantics;
          Alcotest.test_case "pushdown placement" `Quick test_pushdown_placement;
          Alcotest.test_case "full pipeline" `Quick test_full_optimize_pipeline ] );
      ( "text parser",
        [ Alcotest.test_case "round-trips" `Quick test_parse_examples_roundtrip;
          Alcotest.test_case "literal query" `Quick test_parse_literal_query;
          Alcotest.test_case "emb constructor" `Quick test_parse_emb_constructor;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "print", [ Alcotest.test_case "shape" `Quick test_print_shape ] ) ]
