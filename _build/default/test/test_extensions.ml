(* Tests for the §8 future-work extensions: parallel/nested workflows with
   control-flow channels, provenance views, the reachability index,
   PROV-XML export and trace persistence. *)

open Weblab_xml
open Weblab_workflow
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

let pairs = Alcotest.(list (pair string string))

(* ---------- parallel workflows ---------- *)

(* Branch service: appends one <F branch="name"> fragment with a @src
   pointing at every N resource it can "see" in the whole arena (services
   are honest here; the point is what *provenance* says). *)
let brancher name =
  Service.inproc ~name ~description:"" (fun doc ->
      let f =
        Tree.new_element doc ~parent:(Tree.root doc) "F"
          ~attrs:[ ("branch", name) ]
      in
      Tree.set_uri doc f ("f-" ^ name))

(* Joiner: appends a <J> fragment. *)
let joiner =
  Service.inproc ~name:"Join" ~description:"" (fun doc ->
      let j = Tree.new_element doc ~parent:(Tree.root doc) "J" in
      Tree.set_uri doc j "j1")

(* Rule attached to every service: the produced F/J depends on all F
   resources existing "before" the call. *)
let dep_rule = Rule_parser.parse "D: //F[$x := @branch] ==> //J"
let f_rule = Rule_parser.parse "E: //F ==> //F[$x := @branch]"

let par_workflow () =
  Parallel.(Seq [ Par [ Call (brancher "A"); Call (brancher "B") ];
                  Call joiner ])

let test_parallel_schedule () =
  let doc = Orchestrator.initial_document () in
  let exec = Parallel.execute doc (par_workflow ()) in
  let calls = Trace.calls exec.Parallel.trace in
  check_int "four calls (incl. Source)" 4 (List.length calls);
  (* The join must be scheduled after both branches. *)
  let time_of name =
    (List.find (fun (c : Trace.call) -> c.Trace.service = name) calls).Trace.time
  in
  check_bool "join last" true
    (time_of "Join" > time_of "A" && time_of "Join" > time_of "B")

let test_happened_before_relation () =
  let doc = Orchestrator.initial_document () in
  let exec = Parallel.execute doc (par_workflow ()) in
  let t name =
    (List.find (fun (c : Trace.call) -> c.Trace.service = name)
       (Trace.calls exec.Parallel.trace)).Trace.time
  in
  let hb = Parallel.happened_before exec in
  (* initial state precedes everything *)
  check_bool "0 -> A" true (hb 0 (t "A"));
  (* both branches precede the join *)
  check_bool "A -> Join" true (hb (t "A") (t "Join"));
  check_bool "B -> Join" true (hb (t "B") (t "Join"));
  (* sibling branches are concurrent, in both directions *)
  check_bool "A || B" false (hb (t "A") (t "B"));
  check_bool "B || A" false (hb (t "B") (t "A"));
  (* irreflexive *)
  check_bool "A not before itself" false (hb (t "A") (t "A"))

let test_channels_recorded () =
  let doc = Orchestrator.initial_document () in
  let exec = Parallel.execute doc (par_workflow ()) in
  let t name =
    (List.find (fun (c : Trace.call) -> c.Trace.service = name)
       (Trace.calls exec.Parallel.trace)).Trace.time
  in
  check_str "branch A channel" "/par1/"
    (Option.get (Parallel.channel_of exec (t "A")));
  check_str "branch B channel" "/par2/"
    (Option.get (Parallel.channel_of exec (t "B")));
  check_str "join channel" "/" (Option.get (Parallel.channel_of exec (t "Join")));
  (* resources carry @ch *)
  let fa = Option.get (Tree.find_resource doc "f-A") in
  check_str "@ch" "/par1/" (Option.get (Tree.attr doc fa "ch"))

let test_parallel_provenance_excludes_siblings () =
  let doc = Orchestrator.initial_document () in
  let rb = [ ("A", [ f_rule ]); ("B", [ f_rule ]); ("Join", [ dep_rule ]) ] in
  let _, pexec, g = Engine.run_parallel doc (par_workflow ()) rb in
  ignore pexec;
  (* The join depends on both branches. *)
  check_bool "j1 -> f-A" true (Prov_graph.has_link g ~from_uri:"j1" ~to_uri:"f-A");
  check_bool "j1 -> f-B" true (Prov_graph.has_link g ~from_uri:"j1" ~to_uri:"f-B");
  (* Sibling branches must NOT link to each other, even though one of them
     has a smaller timestamp. *)
  check_bool "no f-A -> f-B" false
    (Prov_graph.has_link g ~from_uri:"f-A" ~to_uri:"f-B");
  check_bool "no f-B -> f-A" false
    (Prov_graph.has_link g ~from_uri:"f-B" ~to_uri:"f-A")

let test_sequential_inference_would_cross_branches () =
  (* Contrast: inferring with the plain timestamp order (ignoring
     channels) produces a spurious cross-branch link — demonstrating why
     §8 needs channel metadata. *)
  let doc = Orchestrator.initial_document () in
  let rb = [ ("A", [ f_rule ]); ("B", [ f_rule ]); ("Join", [ dep_rule ]) ] in
  let pexec = Parallel.execute doc (par_workflow ()) in
  let g_wrong =
    Strategy.infer ~strategy:`Replay ~doc ~trace:pexec.Parallel.trace rb
  in
  let crossing =
    Prov_graph.has_link g_wrong ~from_uri:"f-A" ~to_uri:"f-B"
    || Prov_graph.has_link g_wrong ~from_uri:"f-B" ~to_uri:"f-A"
  in
  check_bool "sequential inference crosses branches" true crossing

let test_parallel_strategies_agree () =
  let doc1 = Orchestrator.initial_document () in
  let rb = [ ("A", [ f_rule ]); ("B", [ f_rule ]); ("Join", [ dep_rule ]) ] in
  let _, _, g1 = Engine.run_parallel ~strategy:`Replay doc1 (par_workflow ()) rb in
  let doc2 = Orchestrator.initial_document () in
  let _, _, g2 = Engine.run_parallel ~strategy:`Rewrite doc2 (par_workflow ()) rb in
  let key g =
    Prov_graph.links g
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
    |> List.sort_uniq compare
  in
  check pairs "replay = rewrite under channels" (key g1) (key g2)

let test_nested_workflow_channels () =
  let doc = Orchestrator.initial_document () in
  let wf =
    Parallel.(Seq [ Nested ("prep", Call (brancher "A")); Call joiner ])
  in
  let exec = Parallel.execute doc wf in
  let t name =
    (List.find (fun (c : Trace.call) -> c.Trace.service = name)
       (Trace.calls exec.Parallel.trace)).Trace.time
  in
  check_str "nested channel" "/prep/" (Option.get (Parallel.channel_of exec (t "A")));
  let hb = Parallel.happened_before exec in
  check_bool "nested precedes join" true (hb (t "A") (t "Join"))

let test_deep_parallel_nesting () =
  (* Par inside Par: ((A || B); C) || D, then Join. *)
  let doc = Orchestrator.initial_document () in
  let wf =
    Parallel.(
      Seq
        [ Par
            [ Seq [ Par [ Call (brancher "A"); Call (brancher "B") ];
                    Call (brancher "C") ];
              Call (brancher "D") ];
          Call joiner ])
  in
  let exec = Parallel.execute doc wf in
  let t name =
    (List.find (fun (c : Trace.call) -> c.Trace.service = name)
       (Trace.calls exec.Parallel.trace)).Trace.time
  in
  let hb = Parallel.happened_before exec in
  check_bool "A -> C" true (hb (t "A") (t "C"));
  check_bool "B -> C" true (hb (t "B") (t "C"));
  check_bool "C || D" false (hb (t "C") (t "D") || hb (t "D") (t "C"));
  check_bool "A || D" false (hb (t "A") (t "D") || hb (t "D") (t "A"));
  check_bool "everything -> Join" true
    (List.for_all (fun n -> hb (t n) (t "Join")) [ "A"; "B"; "C"; "D" ])

(* ---------- workflow definition language ---------- *)

let resolve name =
  if List.mem name [ "A"; "B"; "C"; "Join" ] then
    Some (if name = "Join" then joiner else brancher name)
  else None

let test_wf_parser_shapes () =
  let parse s = Wf_parser.parse ~resolve s in
  (match parse "A" with
   | Parallel.Call s -> check_str "single" "A" (Service.name s)
   | _ -> Alcotest.fail "expected Call");
  (match parse "A; B; Join" with
   | Parallel.Seq [ _; _; _ ] -> ()
   | _ -> Alcotest.fail "expected 3-part Seq");
  (match parse "A | B" with
   | Parallel.Par [ _; _ ] -> ()
   | _ -> Alcotest.fail "expected Par");
  (match parse "(A | B); Join" with
   | Parallel.Seq [ Parallel.Par _; Parallel.Call _ ] -> ()
   | _ -> Alcotest.fail "expected Seq[Par; Call]");
  match parse "prep:(A; B) | C" with
  | Parallel.Par [ Parallel.Nested ("prep", Parallel.Seq _); Parallel.Call _ ] -> ()
  | _ -> Alcotest.fail "expected nested"

let test_wf_parser_precedence () =
  (* ';' binds looser than '|': A | B; C  =  (A|B); C *)
  match Wf_parser.parse ~resolve "A | B; Join" with
  | Parallel.Seq [ Parallel.Par _; Parallel.Call _ ] -> ()
  | _ -> Alcotest.fail "expected (A|B); Join"

let test_wf_parser_roundtrip () =
  List.iter
    (fun src ->
      let wf = Wf_parser.parse ~resolve src in
      let printed = Wf_parser.to_string wf in
      check_bool (src ^ " -> " ^ printed) true
        (Wf_parser.to_string (Wf_parser.parse ~resolve printed) = printed))
    [ "A"; "A; B"; "A | B"; "(A; B) | C; Join"; "prep:(A | B); Join" ]

let test_wf_parser_comments_and_errors () =
  (match Wf_parser.parse ~resolve "A; # trailing comment
 B" with
   | Parallel.Seq [ _; _ ] -> ()
   | _ -> Alcotest.fail "comment handling");
  let expect_err s =
    match Wf_parser.parse ~resolve s with
    | _ -> Alcotest.failf "expected error for %S" s
    | exception (Wf_parser.Error _ | Wf_parser.Unknown_service _) -> ()
  in
  expect_err "";
  expect_err "A;";
  expect_err "A |";
  expect_err "(A";
  expect_err "Ghost";
  expect_err "A B"

let test_wf_parser_executes () =
  (* A parsed workflow executes identically to the hand-built one. *)
  let doc1 = Orchestrator.initial_document () in
  let wf1 = Wf_parser.parse ~resolve "(A | B); Join" in
  let e1 = Parallel.execute doc1 wf1 in
  let doc2 = Orchestrator.initial_document () in
  let e2 = Parallel.execute doc2 (par_workflow ()) in
  check (Alcotest.list Alcotest.string) "same calls"
    (List.map (fun c -> c.Trace.service) (Trace.calls e1.Parallel.trace))
    (List.map (fun c -> c.Trace.service) (Trace.calls e2.Parallel.trace))

(* ---------- provenance views ---------- *)

let view_graph () =
  let g = Prov_graph.create () in
  let label u s t = Prov_graph.set_label g u { Trace.service = s; time = t } in
  label "src" "Source" 0;
  label "norm" "Normaliser" 1;
  label "lang" "LanguageExtractor" 2;
  label "trans" "Translator" 3;
  label "sum" "Summarizer" 4;
  Prov_graph.add_link g ~rule:"m" ~from_uri:"norm" ~to_uri:"src";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"lang" ~to_uri:"norm";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"trans" ~to_uri:"lang";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"sum" ~to_uri:"trans";
  g

let translation_view =
  Views.by_services
    [ ("Translation", [ "Normaliser"; "LanguageExtractor"; "Translator" ]) ]

let test_view_projection () =
  let g = view_graph () in
  let v = Views.project g translation_view in
  (* Intra-module links are hidden; boundary links survive. *)
  check_bool "internal hidden" false
    (Prov_graph.has_link v ~from_uri:"lang" ~to_uri:"norm");
  check_bool "entry kept" true (Prov_graph.has_link v ~from_uri:"norm" ~to_uri:"src");
  check_bool "exit kept" true (Prov_graph.has_link v ~from_uri:"sum" ~to_uri:"trans");
  (* Members are relabeled with the composite activity. *)
  (match Prov_graph.label v "lang" with
   | Some c ->
     check_str "composite name" "Translation" c.Trace.service;
     check_int "composite time = first member" 1 c.Trace.time
   | None -> Alcotest.fail "lang lost its label");
  check_bool "still acyclic" true (Prov_graph.is_acyclic v);
  check_bool "still sound" true (Prov_graph.temporally_sound v)

let test_module_graph () =
  let g = view_graph () in
  let edges = Views.module_graph g translation_view in
  check pairs "module edges"
    [ ("Summarizer@t4", "Translation"); ("Translation", "Source@t0") ]
    (List.sort compare edges)

let test_view_identity () =
  let g = view_graph () in
  let v = Views.project g (fun _ -> None) in
  check_int "same links" (Prov_graph.size g) (Prov_graph.size v)

(* ---------- reachability index ---------- *)

let chain_graph n =
  let g = Prov_graph.create () in
  for i = 1 to n - 1 do
    Prov_graph.add_link g
      ~from_uri:(Printf.sprintf "n%d" (i + 1))
      ~to_uri:(Printf.sprintf "n%d" i)
  done;
  g

let test_reachability_chain () =
  let g = chain_graph 50 in
  let idx = Reachability.build g in
  check_int "nodes" 50 (Reachability.size idx);
  check_bool "end reaches start" true (Reachability.depends_on idx ~on:"n1" "n50");
  check_bool "start does not reach end" false
    (Reachability.depends_on idx ~on:"n50" "n1");
  check_int "ancestors of n50" 49 (List.length (Reachability.ancestors idx "n50"));
  check_int "descendants of n1" 49 (List.length (Reachability.descendants idx "n1"));
  check_int "no self" 0 (List.length (Reachability.ancestors idx "n1"))

let test_reachability_matches_bfs () =
  (* On a real pipeline graph the index must agree with Query's BFS. *)
  let doc = Weblab_services.Workload.make_document ~units:3 ~seed:31 () in
  let services = Weblab_services.Workload.standard_pipeline ~extended:true () in
  let rb =
    List.filter_map
      (fun svc ->
        Weblab_services.Catalog.find (Service.name svc)
        |> Option.map (fun e ->
               ( Service.name svc,
                 List.map Rule_parser.parse e.Weblab_services.Catalog.rules )))
      services
  in
  let _, g = Engine.run_with_provenance doc services rb in
  let idx = Reachability.build g in
  List.iter
    (fun (uri, _) ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "ancestors of %s" uri)
        (Query.depends_on_transitive g uri)
        (Reachability.ancestors idx uri))
    (Prov_graph.labeled_resources g)

let test_reachability_unknown_uri () =
  let idx = Reachability.build (chain_graph 3) in
  check_bool "unknown" false (Reachability.depends_on idx ~on:"n1" "ghost");
  check_int "empty" 0 (List.length (Reachability.ancestors idx "ghost"))

(* ---------- RDF round-trip and the materialization cache ---------- *)

let test_graph_rdf_roundtrip () =
  let e = Weblab_scenario.Paper.run () in
  let g = Weblab_scenario.Figures.explicit_graph e in
  let g' = Prov_export.of_store (Prov_export.to_store g) in
  let links gr =
    Prov_graph.links gr
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
    |> List.sort compare
  in
  check (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.string Alcotest.string))
    "links survive" (links g) (links g');
  check_int "labels survive"
    (List.length (Prov_graph.labeled_resources g))
    (List.length (Prov_graph.labeled_resources g'));
  List.iter
    (fun (uri, call) ->
      match Prov_graph.label g' uri with
      | Some call' ->
        check_bool ("label of " ^ uri) true (call = call')
      | None -> Alcotest.failf "label of %s lost" uri)
    (Prov_graph.labeled_resources g)

let test_prov_store_cache () =
  let e = Weblab_scenario.Paper.run () in
  let cache = Prov_store.create () in
  let calls = ref 0 in
  let materialize () =
    incr calls;
    Weblab_scenario.Figures.explicit_graph e
  in
  let g1 = Prov_store.request cache ~id:"exec1" ~materialize in
  let g2 = Prov_store.request cache ~id:"exec1" ~materialize in
  check_int "materialized once" 1 !calls;
  check_int "same size" (Prov_graph.size g1) (Prov_graph.size g2);
  let s = Prov_store.stats cache in
  check_int "hits" 1 s.Prov_store.hits;
  check_int "misses" 1 s.Prov_store.misses;
  check_int "cached" 1 s.Prov_store.cached;
  (* a different execution id materializes again *)
  let _ = Prov_store.request cache ~id:"exec2" ~materialize in
  check_int "second materialization" 2 !calls;
  (* invalidation forces re-materialization *)
  Prov_store.invalidate cache ~id:"exec1";
  let _ = Prov_store.request cache ~id:"exec1" ~materialize in
  check_int "after invalidate" 3 !calls

let test_prov_store_sparql_endpoint () =
  let e = Weblab_scenario.Paper.run () in
  let cache = Prov_store.create () in
  let materialize () = Weblab_scenario.Figures.explicit_graph e in
  ignore (Prov_store.request cache ~id:"x" ~materialize);
  match Prov_store.store_of cache ~id:"x" with
  | Some store ->
    check_bool "queryable" true
      (Weblab_rdf.Sparql.ask store "ASK { ?b prov:wasDerivedFrom ?a }")
  | None -> Alcotest.fail "store not materialized"

let test_prov_store_reachability () =
  let e = Weblab_scenario.Paper.run () in
  let cache = Prov_store.create () in
  let materialize () =
    Weblab_scenario.Figures.inherited_graph e
  in
  let ancestors = Prov_store.ancestors cache ~id:"y" ~materialize "r8" in
  check_bool "r8 reaches r3 through the cache" true (List.mem "r3" ancestors);
  (* second query is index-served *)
  let again = Prov_store.ancestors cache ~id:"y" ~materialize "r8" in
  check (Alcotest.list Alcotest.string) "stable" ancestors again

(* ---------- PROV-XML ---------- *)

let test_prov_xml_wellformed () =
  let e = Weblab_scenario.Paper.run () in
  let g = Weblab_scenario.Figures.explicit_graph e in
  let xml = Prov_export.to_prov_xml g in
  let doc = Xml_parser.parse xml in
  check_str "root" "prov:document" (Tree.name doc (Tree.root doc));
  (* count top-level declarations only (refs inside relation elements
     reuse the same element names) *)
  let count name =
    Tree.children doc (Tree.root doc)
    |> List.filter (fun n -> Tree.is_element doc n && Tree.name doc n = name)
    |> List.length
  in
  check_int "entities" 6 (count "prov:entity");
  check_int "activities" 4 (count "prov:activity");
  check_int "generations" 6 (count "prov:wasGeneratedBy");
  check_int "derivations" 3 (count "prov:wasDerivedFrom")

(* ---------- trace persistence ---------- *)

let test_trace_xml_roundtrip () =
  let e = Weblab_scenario.Paper.run () in
  let xml = Trace_io.to_xml e.Weblab_scenario.Paper.trace in
  let trace' = Trace_io.of_xml xml in
  check_bool "round-trip" true (Trace_io.equal e.Weblab_scenario.Paper.trace trace')

let test_trace_loaded_inference () =
  (* Provenance can be inferred from a *reloaded* trace — the Request
     Manager scenario of Figure 5: trace in the store, document in the
     repository. *)
  let e = Weblab_scenario.Paper.run () in
  let trace' = Trace_io.of_xml (Trace_io.to_xml e.Weblab_scenario.Paper.trace) in
  let g =
    Strategy.infer ~strategy:`Rewrite ~doc:e.Weblab_scenario.Paper.doc
      ~trace:trace' e.Weblab_scenario.Paper.rulebook
  in
  let links =
    Prov_graph.links g
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
    |> List.sort_uniq compare
  in
  check pairs "same provenance from reloaded trace"
    [ ("r4", "r3"); ("r6", "r5"); ("r8", "r4") ]
    links

let test_full_reload_inference () =
  (* The complete Figure 5 story: document and trace persisted, reloaded
     (losing all arena state), timestamps restored, provenance inferred —
     identical to inference over the live execution. *)
  let doc = Weblab_services.Workload.make_document ~units:2 ~seed:77 () in
  let services = Weblab_services.Workload.standard_pipeline ~extended:true () in
  let trace = Orchestrator.execute doc services in
  let rb =
    List.filter_map
      (fun svc ->
        Weblab_services.Catalog.find (Service.name svc)
        |> Option.map (fun e ->
               ( Service.name svc,
                 List.map Rule_parser.parse e.Weblab_services.Catalog.rules )))
      services
  in
  let live = Strategy.infer ~strategy:`Rewrite ~doc ~trace rb in
  (* persist + reload *)
  let doc' = Xml_parser.parse (Printer.to_string doc) in
  Doc_state.restore_timestamps doc';
  let trace' = Trace_io.of_xml (Trace_io.to_xml trace) in
  let reloaded = Strategy.infer ~strategy:`Rewrite ~doc:doc' ~trace:trace' rb in
  let key g =
    Prov_graph.links g
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
    |> List.sort_uniq compare
  in
  check (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.string Alcotest.string))
    "live = reloaded" (key live) (key reloaded);
  check_bool "timestamps restored exactly" true
    (Doc_state.timestamps_monotonic doc')

let test_restore_timestamps_values () =
  let e = Weblab_scenario.Paper.run () in
  let doc' =
    Xml_parser.parse (Printer.to_string e.Weblab_scenario.Paper.doc)
  in
  Doc_state.restore_timestamps doc';
  let created uri = Tree.created doc' (Option.get (Tree.find_resource doc' uri)) in
  check_int "r3 initial" 0 (created "r3");
  check_int "r4 at t1" 1 (created "r4");
  check_int "r6 at t2" 2 (created "r6");
  check_int "r8 at t3" 3 (created "r8");
  (* r8's unlabeled children inherit t3 *)
  let r8 = Option.get (Tree.find_resource doc' "r8") in
  List.iter
    (fun k -> check_int "child of r8" 3 (Tree.created doc' k))
    (Tree.children doc' r8)

let test_trace_rdf_store () =
  let e = Weblab_scenario.Paper.run () in
  let store = Trace_io.to_store e.Weblab_scenario.Paper.trace in
  let open Weblab_rdf in
  (* 6 resources generated in total (r1, r3, r4, r5, r6, r8) *)
  check_int "generated triples" 6
    (Triple_store.count store (None, Some Trace_io.generated_pred, None));
  (* queryable: what did the call at t1 generate? *)
  let t =
    Sparql.run store
      "PREFIX wl: <http://weblab.ow2.org/prov#> SELECT ?r WHERE { \
       <http://weblab.ow2.org/prov#call/Normaliser-1> wl:generated ?r }"
  in
  check_int "normaliser outputs" 2 (Weblab_relalg.Table.cardinality t)

let test_trace_malformed () =
  let expect input =
    match Trace_io.of_xml input with
    | _ -> Alcotest.failf "expected Malformed for %s" input
    | exception Trace_io.Malformed _ -> ()
  in
  expect "<Wrong/>";
  expect "<ExecutionTrace><Call/></ExecutionTrace>";
  expect "<ExecutionTrace><Call service='S' time='x'/></ExecutionTrace>";
  expect "not xml"

(* ---------- on-disk repository ---------- *)

let with_temp_repo f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "weblab-repo-%d" (Unix.getpid () + Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      (* best-effort cleanup *)
      if Sys.file_exists root then begin
        Sys.readdir root |> Array.iter (fun id ->
            let d = Filename.concat root id in
            if Sys.is_directory d then begin
              Sys.readdir d |> Array.iter (fun f -> Sys.remove (Filename.concat d f));
              Sys.rmdir d
            end
            else Sys.remove d);
        Sys.rmdir root
      end)
    (fun () -> f (Repository.open_at root))

let make_exec () =
  let doc = Weblab_services.Workload.make_document ~units:2 ~seed:41 () in
  let services = Weblab_services.Workload.standard_pipeline () in
  let rb =
    List.filter_map
      (fun svc ->
        Weblab_services.Catalog.find (Service.name svc)
        |> Option.map (fun e ->
               ( Service.name svc,
                 List.map Rule_parser.parse e.Weblab_services.Catalog.rules )))
      services
  in
  (Engine.run doc services, rb)

let graph_key g =
  Prov_graph.links g
  |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
  |> List.sort_uniq compare

let test_repository_roundtrip () =
  with_temp_repo (fun repo ->
      let exec, rb = make_exec () in
      Repository.store repo ~id:"e1" exec;
      check (Alcotest.list Alcotest.string) "listed" [ "e1" ]
        (Repository.executions repo);
      let loaded = Repository.load repo ~id:"e1" in
      let g_live = Engine.provenance exec rb in
      let g_loaded = Engine.provenance loaded rb in
      check pairs "same provenance from disk" (graph_key g_live)
        (graph_key g_loaded))

let test_repository_provenance_cache () =
  with_temp_repo (fun repo ->
      let exec, rb = make_exec () in
      Repository.store repo ~id:"e1" exec;
      check_bool "not materialized yet" true
        (Repository.load_provenance repo ~id:"e1" = None);
      let calls = ref 0 in
      let materialize e =
        incr calls;
        Engine.provenance e rb
      in
      let g1 = Repository.provenance repo ~id:"e1" ~materialize in
      let g2 = Repository.provenance repo ~id:"e1" ~materialize in
      check_int "materialized once" 1 !calls;
      check pairs "stable across loads" (graph_key g1) (graph_key g2))

let test_repository_bad_ids () =
  with_temp_repo (fun repo ->
      let exec, _ = make_exec () in
      let expect id =
        match Repository.store repo ~id exec with
        | _ -> Alcotest.failf "expected Error for id %S" id
        | exception Repository.Error _ -> ()
      in
      expect "";
      expect "../evil";
      expect "a/b";
      expect "dotted.name")

let test_repository_missing () =
  with_temp_repo (fun repo ->
      match Repository.load repo ~id:"ghost" with
      | _ -> Alcotest.fail "expected Error"
      | exception Repository.Error _ -> ())

let () =
  Alcotest.run "extensions"
    [ ( "parallel",
        [ Alcotest.test_case "schedule" `Quick test_parallel_schedule;
          Alcotest.test_case "happened-before" `Quick test_happened_before_relation;
          Alcotest.test_case "channels" `Quick test_channels_recorded;
          Alcotest.test_case "no sibling links" `Quick test_parallel_provenance_excludes_siblings;
          Alcotest.test_case "sequential would cross" `Quick test_sequential_inference_would_cross_branches;
          Alcotest.test_case "strategies agree" `Quick test_parallel_strategies_agree;
          Alcotest.test_case "nested" `Quick test_nested_workflow_channels;
          Alcotest.test_case "deep nesting" `Quick test_deep_parallel_nesting ] );
      ( "workflow dsl",
        [ Alcotest.test_case "shapes" `Quick test_wf_parser_shapes;
          Alcotest.test_case "precedence" `Quick test_wf_parser_precedence;
          Alcotest.test_case "round-trip" `Quick test_wf_parser_roundtrip;
          Alcotest.test_case "comments and errors" `Quick test_wf_parser_comments_and_errors;
          Alcotest.test_case "executes" `Quick test_wf_parser_executes ] );
      ( "views",
        [ Alcotest.test_case "projection" `Quick test_view_projection;
          Alcotest.test_case "module graph" `Quick test_module_graph;
          Alcotest.test_case "identity view" `Quick test_view_identity ] );
      ( "reachability",
        [ Alcotest.test_case "chain" `Quick test_reachability_chain;
          Alcotest.test_case "matches BFS" `Quick test_reachability_matches_bfs;
          Alcotest.test_case "unknown uri" `Quick test_reachability_unknown_uri ] );
      ( "prov-store",
        [ Alcotest.test_case "rdf round-trip" `Quick test_graph_rdf_roundtrip;
          Alcotest.test_case "cache" `Quick test_prov_store_cache;
          Alcotest.test_case "sparql endpoint" `Quick test_prov_store_sparql_endpoint;
          Alcotest.test_case "reachability" `Quick test_prov_store_reachability ] );
      ( "prov-xml",
        [ Alcotest.test_case "well-formed" `Quick test_prov_xml_wellformed ] );
      ( "repository",
        [ Alcotest.test_case "round-trip" `Quick test_repository_roundtrip;
          Alcotest.test_case "provenance cache" `Quick test_repository_provenance_cache;
          Alcotest.test_case "bad ids" `Quick test_repository_bad_ids;
          Alcotest.test_case "missing" `Quick test_repository_missing ] );
      ( "trace-io",
        [ Alcotest.test_case "xml round-trip" `Quick test_trace_xml_roundtrip;
          Alcotest.test_case "reloaded inference" `Quick test_trace_loaded_inference;
          Alcotest.test_case "full reload" `Quick test_full_reload_inference;
          Alcotest.test_case "restore timestamps" `Quick test_restore_timestamps_values;
          Alcotest.test_case "rdf store" `Quick test_trace_rdf_store;
          Alcotest.test_case "malformed" `Quick test_trace_malformed ] ) ]
