(* Tests for the lineage query API and the DOT/RDF exports on a known
   graph. *)

open Weblab_workflow
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let strings = Alcotest.(list string)

(* A diamond with a tail:
     d ──> b ──> a
     d ──> c ──> a
     e ──> d               (labels: a@0, b@1, c@1, d@2, e@3)  *)
let graph () =
  let g = Prov_graph.create () in
  Prov_graph.set_label g "a" { Trace.service = "Source"; time = 0 };
  Prov_graph.set_label g "b" { Trace.service = "S1"; time = 1 };
  Prov_graph.set_label g "c" { Trace.service = "S1"; time = 1 };
  Prov_graph.set_label g "d" { Trace.service = "S2"; time = 2 };
  Prov_graph.set_label g "e" { Trace.service = "S3"; time = 3 };
  Prov_graph.add_link g ~rule:"m" ~from_uri:"b" ~to_uri:"a";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"c" ~to_uri:"a";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"d" ~to_uri:"b";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"d" ~to_uri:"c";
  Prov_graph.add_link g ~rule:"m" ~from_uri:"e" ~to_uri:"d";
  g

let test_direct () =
  let g = graph () in
  check strings "deps of d" [ "b"; "c" ] (Prov_graph.depends_on g "d");
  check strings "used_by a" [ "b"; "c" ] (Prov_graph.used_by g "a");
  check strings "deps of a" [] (Prov_graph.depends_on g "a")

let test_transitive () =
  let g = graph () in
  check strings "transitive deps of e" [ "a"; "b"; "c"; "d" ]
    (Query.depends_on_transitive g "e");
  check strings "influences of a" [ "b"; "c"; "d"; "e" ]
    (Query.influences_transitive g "a");
  check strings "nothing upstream of a" [] (Query.depends_on_transitive g "a")

let test_path () =
  let g = graph () in
  (match Query.path g ~from_uri:"e" ~to_uri:"a" with
   | Some p ->
     check_int "shortest path length" 4 (List.length p);
     check_bool "starts at e" true (List.hd p = "e");
     check_bool "ends at a" true (List.nth p 3 = "a")
   | None -> Alcotest.fail "expected a path");
  check_bool "no reverse path" true (Query.path g ~from_uri:"a" ~to_uri:"e" = None);
  check_bool "self path" true (Query.path g ~from_uri:"d" ~to_uri:"d" = Some [ "d" ])

let test_call_level () =
  let g = graph () in
  let c2 = { Trace.service = "S2"; time = 2 } in
  check strings "call used" [ "b"; "c" ] (Query.call_used g c2);
  check strings "call generated" [ "d" ] (Query.call_generated g c2);
  let informed = Query.informed_by g c2 in
  check_int "one informing call" 1 (List.length informed);
  check (Alcotest.list Alcotest.string) "S1 informs S2" [ "S1" ]
    (List.map (fun c -> c.Trace.service) informed)

let test_call_transitive () =
  let g = graph () in
  let c3 = { Trace.service = "S3"; time = 3 } in
  let services =
    Query.informed_by_transitive g c3 |> List.map (fun c -> c.Trace.service)
  in
  check (Alcotest.list Alcotest.string) "chain" [ "Source"; "S1"; "S2" ] services

let test_dot_export () =
  let g = graph () in
  let dot = Dot.to_dot g in
  let contains needle =
    let nh = String.length dot and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub dot i nn = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "digraph" true (contains "digraph provenance");
  check_bool "edge" true (contains "\"e\" -> \"d\"");
  check_bool "label" true (contains "S3@t3")

let test_rdf_roundtrip_counts () =
  let g = graph () in
  let store = Prov_export.to_store g in
  let open Weblab_rdf in
  check_int "derivations" 5
    (Triple_store.count store (None, Some Prov_vocab.was_derived_from, None));
  check_int "generations" 5
    (Triple_store.count store (None, Some Prov_vocab.was_generated_by, None));
  (* b and c share a call: 4 distinct activities *)
  check_int "activities" 4
    (Triple_store.count store
       (None, Some Prov_vocab.rdf_type, Some Prov_vocab.activity));
  (* The Turtle output re-parses as N-Triples via the ntriples printer. *)
  let st2 = Turtle.parse_ntriples (Turtle.to_ntriples store) in
  check_int "round-trip size" (Triple_store.size store) (Triple_store.size st2)

let test_provenance_table_format () =
  let g = graph () in
  let s = Prov_graph.provenance_table g in
  check_bool "header" true (String.length s > 10 && String.sub s 0 4 = "From")

(* --- link explanation --- *)

let scenario = lazy (Weblab_scenario.Paper.run ())

let test_explain_link () =
  let e = Lazy.force scenario in
  let open Weblab_scenario in
  (* Why does 8 -> 4 exist?  M3 at (Translator, t3), no shared vars. *)
  let ws =
    Explain.link ~doc:e.Paper.doc ~trace:e.Paper.trace e.Paper.rulebook
      ~from_uri:"r8" ~to_uri:"r4"
  in
  (match ws with
   | [ w ] ->
     check Alcotest.string "rule" "M3" w.Explain.rule;
     check Alcotest.string "service" "Translator" w.Explain.call.Trace.service;
     check_int "no shared vars" 0 (List.length w.Explain.bindings)
   | l -> Alcotest.failf "expected one witness, got %d" (List.length l));
  (* Why does 6 -> 5 exist?  M2 with $x = r4. *)
  let ws =
    Explain.link ~doc:e.Paper.doc ~trace:e.Paper.trace e.Paper.rulebook
      ~from_uri:"r6" ~to_uri:"r5"
  in
  match ws with
  | [ w ] ->
    check Alcotest.string "rule" "M2" w.Explain.rule;
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
      "binding" [ ("x", "r4") ] w.Explain.bindings;
    check_bool "renders" true (String.length (Explain.witness_to_string w) > 10)
  | l -> Alcotest.failf "expected one witness, got %d" (List.length l)

let test_explain_no_witness () =
  let e = Lazy.force scenario in
  let open Weblab_scenario in
  check_int "no witness for a non-link" 0
    (List.length
       (Explain.link ~doc:e.Paper.doc ~trace:e.Paper.trace e.Paper.rulebook
          ~from_uri:"r4" ~to_uri:"r8"))

let test_explain_missing () =
  let e = Lazy.force scenario in
  let open Weblab_scenario in
  (* Why is there no 6 -> r1 link?  M2's join variable $x differs: r4 on
     the target side, r1 would have to appear on the source side. *)
  let ds =
    Explain.missing ~doc:e.Paper.doc ~trace:e.Paper.trace e.Paper.rulebook
      ~from_uri:"r6" ~to_uri:"r1"
  in
  check_bool "some diagnosis" true (ds <> []);
  let m2 =
    List.find_opt (fun d -> d.Explain.d_rule = "M2") ds
  in
  (match m2 with
   | Some d -> (
     match d.Explain.failure with
     | Explain.Source_no_match -> ()  (* r1 has no TextContent child *)
     | f -> Alcotest.failf "unexpected failure: %s" (Explain.failure_to_string f))
   | None -> Alcotest.fail "expected an M2 diagnosis");
  (* all diagnoses render *)
  List.iter
    (fun d ->
      check_bool "renders" true
        (String.length (Explain.failure_to_string d.Explain.failure) > 5))
    ds

let test_explain_wrong_call () =
  let e = Lazy.force scenario in
  let open Weblab_scenario in
  (* r4 was produced by c1, so c2/c3 rules diagnose Wrong_call for it. *)
  let ds =
    Explain.missing ~doc:e.Paper.doc ~trace:e.Paper.trace e.Paper.rulebook
      ~from_uri:"r4" ~to_uri:"r5"
  in
  check_bool "wrong-call diagnosed" true
    (List.exists (fun d -> d.Explain.failure = Explain.Wrong_call) ds)

let () =
  Alcotest.run "query"
    [ ( "lineage",
        [ Alcotest.test_case "direct" `Quick test_direct;
          Alcotest.test_case "transitive" `Quick test_transitive;
          Alcotest.test_case "paths" `Quick test_path;
          Alcotest.test_case "call level" `Quick test_call_level;
          Alcotest.test_case "call transitive" `Quick test_call_transitive ] );
      ( "explain",
        [ Alcotest.test_case "witnesses" `Quick test_explain_link;
          Alcotest.test_case "no witness" `Quick test_explain_no_witness;
          Alcotest.test_case "missing link" `Quick test_explain_missing;
          Alcotest.test_case "wrong call" `Quick test_explain_wrong_call ] );
      ( "export",
        [ Alcotest.test_case "dot" `Quick test_dot_export;
          Alcotest.test_case "rdf counts" `Quick test_rdf_roundtrip_counts;
          Alcotest.test_case "table format" `Quick test_provenance_table_format ] ) ]
