(* Property-based tests (qcheck) for the core invariants:

   - printer/parser round-trips (XML documents, XPath patterns),
   - diff correctness under random appends,
   - strategy agreement (Online = Replay = Rewrite) on random workflows
     with random mapping rules,
   - provenance graphs are DAGs and temporally sound by construction,
   - inheritance closure soundness,
   - algebra laws of the binding tables. *)

open Weblab_xml
open Weblab_workflow
open Weblab_prov
open QCheck

(* ---------- generators ---------- *)

let gen_name = Gen.oneofl [ "A"; "B"; "C"; "D"; "E" ]

let gen_attr_name = Gen.oneofl [ "k"; "v"; "g"; "src" ]

let gen_attr_value = Gen.oneofl [ "1"; "2"; "3"; "x"; "y" ]

let gen_text =
  Gen.oneofl [ "hello"; "a < b"; "x & y"; "déjà vu"; "42"; "word word" ]

(* A random element subtree appended under [parent]. *)
let rec gen_fragment doc parent depth st =
  let name = gen_name st in
  let nattrs = Gen.int_bound 2 st in
  let attrs =
    List.init nattrs (fun _ -> (gen_attr_name st, gen_attr_value st))
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  let n = Tree.new_element doc ~parent name ~attrs in
  if Gen.bool st then ignore (Tree.new_text doc ~parent:n (gen_text st));
  if depth > 0 then begin
    let kids = Gen.int_bound 2 st in
    for _ = 1 to kids do
      ignore (gen_fragment doc n (depth - 1) st)
    done
  end;
  n

let gen_doc : Tree.t Gen.t =
 fun st ->
  let doc = Orchestrator.initial_document () in
  let kids = 1 + Gen.int_bound 2 st in
  for _ = 1 to kids do
    ignore (gen_fragment doc (Tree.root doc) 2 st)
  done;
  doc

let arb_doc =
  make ~print:(fun d -> Printer.to_string ~indent:true d) gen_doc

(* Random XPath patterns from the printable/parsable fragment. *)
let gen_pred ~var_counter st =
  match Gen.int_bound 4 st with
  | 0 -> Weblab_xpath.Ast.Index (1 + Gen.int_bound 2 st)
  | 1 -> Weblab_xpath.Ast.Exists_attr (gen_attr_name st)
  | 2 ->
    incr var_counter;
    Weblab_xpath.Ast.Bind (Printf.sprintf "x%d" !var_counter,
                           Weblab_xpath.Ast.Attr (gen_attr_name st))
  | 3 ->
    Weblab_xpath.Ast.Cmp (Weblab_xpath.Ast.Attr (gen_attr_name st),
                          Weblab_xpath.Ast.Eq,
                          Weblab_xpath.Ast.Lit (gen_attr_value st))
  | _ ->
    Weblab_xpath.Ast.Exists_path
      [ { Weblab_xpath.Ast.raxis = Weblab_xpath.Ast.Child;
          rtest = Weblab_xpath.Ast.Name (gen_name st) } ]

let gen_pattern : Weblab_xpath.Ast.pattern Gen.t =
 fun st ->
  let var_counter = ref 0 in
  let nsteps = 1 + Gen.int_bound 2 st in
  List.init nsteps (fun _ ->
      let axis =
        if Gen.bool st then Weblab_xpath.Ast.Descendant else Weblab_xpath.Ast.Child
      in
      let npreds = Gen.int_bound 2 st in
      { Weblab_xpath.Ast.axis;
        test = Weblab_xpath.Ast.Name (gen_name st);
        preds = List.init npreds (fun _ -> gen_pred ~var_counter st) })

let arb_pattern = make ~print:Weblab_xpath.Print.pattern_to_string gen_pattern

(* Random append-only services: each appends 1-2 fragments under the root
   (deterministic per generated value). *)
let gen_service i : Service.t Gen.t =
 fun st ->
  let plan = Gen.generate1 ~rand:(Random.State.split st) Gen.unit in
  ignore plan;
  let nfrags = 1 + Gen.int_bound 1 st in
  let seeds = List.init nfrags (fun _ -> Gen.int_bound 1_000_000 st) in
  Service.inproc ~name:(Printf.sprintf "Svc%d" i) ~description:"" (fun doc ->
      List.iter
        (fun seed ->
          let st' = Random.State.make [| seed |] in
          ignore (gen_fragment doc (Tree.root doc) 1 st'))
        seeds)

let gen_rule : Rule.t Gen.t =
 fun st ->
  let shared = Gen.bool st in
  let a1 = gen_attr_name st and a2 = gen_attr_name st in
  let step name preds =
    { Weblab_xpath.Ast.axis = Weblab_xpath.Ast.Descendant;
      test = Weblab_xpath.Ast.Name name; preds }
  in
  let source =
    [ step (gen_name st)
        (if shared then [ Weblab_xpath.Ast.Bind ("x", Weblab_xpath.Ast.Attr a1) ]
         else []) ]
  in
  let target =
    [ step (gen_name st)
        (if shared then [ Weblab_xpath.Ast.Bind ("x", Weblab_xpath.Ast.Attr a2) ]
         else []) ]
  in
  Rule.make ~name:"q" ~source ~target ()

let gen_workflow : (Tree.t * Service.t list * Strategy.rulebook) Gen.t =
 fun st ->
  let doc = gen_doc st in
  let nservices = 1 + Gen.int_bound 3 st in
  let services = List.init nservices (fun i -> gen_service (i + 1) st) in
  let rb =
    List.map
      (fun svc ->
        let nrules = Gen.int_bound 2 st in
        (Service.name svc, List.init nrules (fun _ -> gen_rule st)))
      services
  in
  (doc, services, rb)

let arb_workflow =
  make
    ~print:(fun (doc, services, rb) ->
      Printf.sprintf "doc=%s services=%s rules=%s"
        (Printer.to_string doc)
        (String.concat "," (List.map Service.name services))
        (String.concat "; "
           (List.concat_map (fun (s, rs) ->
                List.map (fun r -> s ^ ":" ^ Rule.to_string r) rs) rb)))
    gen_workflow

(* ---------- properties ---------- *)

let count = 100

let prop_xml_roundtrip =
  Test.make ~name:"printer/parser round-trip" ~count arb_doc (fun doc ->
      let printed = Printer.to_string doc in
      let doc' = Xml_parser.parse printed in
      Tree.equal_subtree doc (Tree.root doc) doc' (Tree.root doc'))

let prop_pattern_roundtrip =
  Test.make ~name:"pattern print/parse round-trip" ~count arb_pattern (fun p ->
      let s = Weblab_xpath.Print.pattern_to_string p in
      Weblab_xpath.Parser.pattern s = p)

let prop_diff_roundtrip =
  Test.make ~name:"diff finds exactly the appended fragments" ~count
    (pair arb_doc (make Gen.(int_bound 1_000_000)))
    (fun (doc, seed) ->
      (* Re-parse to get an independent "old" copy, then append random
         fragments to the original and diff. *)
      let old_doc = Xml_parser.parse (Printer.to_string doc) in
      let st = Random.State.make [| seed |] in
      let added =
        List.init
          (1 + Random.State.int st 3)
          (fun _ -> gen_fragment doc (Tree.root doc) 1 st)
      in
      let result = Diff.diff ~old_doc ~new_doc:doc in
      (* Every genuinely appended fragment root is reported (the greedy
         matcher may attribute equal siblings differently, but the count
         of additions is exact and containment holds). *)
      List.length result.Diff.added = List.length added
      && Diff.contains ~old_doc ~new_doc:doc)

let graph_links g =
  Prov_graph.links g
  |> List.filter (fun l -> not l.Prov_graph.inherited)
  |> List.map (fun l ->
         (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
  |> List.sort compare

let prop_strategy_agreement =
  Test.make ~name:"Online = Replay = Rewrite" ~count:60 arb_workflow
    (fun (doc, services, rb) ->
      let exec, g_online = Engine.run_online doc services rb in
      let g_replay = Engine.provenance ~strategy:`Replay exec rb in
      let g_rewrite = Engine.provenance ~strategy:`Rewrite exec rb in
      graph_links g_online = graph_links g_replay
      && graph_links g_replay = graph_links g_rewrite)

let prop_graph_invariants =
  Test.make ~name:"graphs are acyclic and temporally sound" ~count:60
    arb_workflow
    (fun (doc, services, rb) ->
      let _, g =
        Engine.run_with_provenance ~inheritance:true doc services rb
      in
      Prov_graph.is_acyclic g && Prov_graph.temporally_sound g)

let prop_monotone_timestamps =
  Test.make ~name:"creation timestamps are monotone along ancestors"
    ~count:60 arb_workflow
    (fun (doc, services, _) ->
      let _ = Orchestrator.execute doc services in
      Doc_state.timestamps_monotonic doc)

let prop_append_only_states =
  Test.make ~name:"document states form a chain d0 ⊑ d1 ⊑ ... ⊑ dn"
    ~count:60 arb_workflow
    (fun (doc, services, _) ->
      let trace = Orchestrator.execute doc services in
      let times = List.map (fun c -> c.Trace.time) (Trace.calls trace) in
      List.for_all
        (fun t ->
          t = 0
          || Doc_state.contains
               ~smaller:(Doc_state.at doc (t - 1))
               ~larger:(Doc_state.at doc t))
        times)

let prop_inheritance_sound =
  Test.make ~name:"inherited links justified by an explicit link" ~count:60
    arb_workflow
    (fun (doc, services, rb) ->
      let exec = Engine.run doc services in
      let g = Engine.provenance exec rb in
      let explicit = graph_links g in
      let g = Inheritance.close doc g in
      let node uri = Tree.find_resource doc uri in
      Prov_graph.links g
      |> List.filter (fun l -> l.Prov_graph.inherited)
      |> List.for_all (fun l ->
             match node l.Prov_graph.from_uri, node l.Prov_graph.to_uri with
             | Some b', Some a' ->
               List.exists
                 (fun (fu, tu, _) ->
                   match node fu, node tu with
                   | Some b, Some a ->
                     (b' = b || Tree.is_ancestor doc ~ancestor:b b')
                     && (a' = a
                         || Tree.is_ancestor doc ~ancestor:a a'
                         || Tree.is_ancestor doc ~ancestor:a' a)
                   | _ -> false)
                 explicit
             | _ -> false))

(* --- reachability index vs BFS on random DAGs --- *)

(* A random DAG over n nodes: edges only from higher to lower ids, so
   acyclicity holds by construction (like provenance links point backwards
   in time). *)
let gen_dag : Prov_graph.t Gen.t =
 fun st ->
  let n = 2 + Gen.int_bound 18 st in
  let g = Prov_graph.create () in
  for i = 1 to n - 1 do
    let edges = Gen.int_bound (min i 3) st in
    for _ = 1 to edges do
      let j = Gen.int_bound (i - 1) st in
      Prov_graph.add_link g
        ~from_uri:(Printf.sprintf "n%d" i)
        ~to_uri:(Printf.sprintf "n%d" j)
    done
  done;
  g

let arb_dag =
  make
    ~print:(fun g ->
      Prov_graph.links g
      |> List.map (fun l ->
             Printf.sprintf "%s->%s" l.Prov_graph.from_uri l.Prov_graph.to_uri)
      |> String.concat " ")
    gen_dag

let prop_reachability_matches_bfs =
  Test.make ~name:"closure index = BFS on random DAGs" ~count arb_dag
    (fun g ->
      let idx = Reachability.build g in
      let nodes =
        Prov_graph.links g
        |> List.concat_map (fun l -> [ l.Prov_graph.from_uri; l.Prov_graph.to_uri ])
        |> List.sort_uniq compare
      in
      List.for_all
        (fun u ->
          Reachability.ancestors idx u = Query.depends_on_transitive g u
          && Reachability.descendants idx u = Query.influences_transitive g u)
        nodes)

(* --- happened-before on random series-parallel workflows --- *)

let noop_service i =
  Service.inproc ~name:(Printf.sprintf "N%d" i) ~description:"" (fun doc ->
      ignore (Tree.new_element doc ~parent:(Tree.root doc) "F"))

let gen_sp_wf : Parallel.wf Gen.t =
 fun st ->
  let counter = ref 0 in
  let rec go depth =
    let fresh () =
      incr counter;
      Parallel.Call (noop_service !counter)
    in
    if depth = 0 then fresh ()
    else
      match Gen.int_bound 3 st with
      | 0 -> fresh ()
      | 1 -> Parallel.Seq (List.init (1 + Gen.int_bound 2 st) (fun _ -> go (depth - 1)))
      | 2 -> Parallel.Par (List.init (2 + Gen.int_bound 1 st) (fun _ -> go (depth - 1)))
      | _ -> Parallel.Nested ("sub", go (depth - 1))
  in
  go 3

let arb_sp_wf =
  make
    ~print:(fun wf -> Wf_parser.to_string wf)
    gen_sp_wf

let prop_happened_before_strict_order =
  Test.make ~name:"happened-before is a strict partial order" ~count:60
    arb_sp_wf
    (fun wf ->
      let doc = Orchestrator.initial_document () in
      let exec = Parallel.execute doc wf in
      let times =
        Trace.calls exec.Parallel.trace
        |> List.filter_map (fun (c : Trace.call) ->
               if c.Trace.time > 0 then Some c.Trace.time else None)
      in
      let hb = Parallel.happened_before exec in
      (* irreflexive *)
      List.for_all (fun t -> not (hb t t)) times
      (* antisymmetric *)
      && List.for_all
           (fun a -> List.for_all (fun b -> not (hb a b && hb b a)) times)
           times
      (* transitive *)
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 List.for_all
                   (fun c -> not (hb a b && hb b c) || hb a c)
                   times)
               times)
           times
      (* consistent with the schedule: hb implies smaller timestamp *)
      && List.for_all
           (fun a -> List.for_all (fun b -> not (hb a b) || a < b) times)
           times)

let prop_parallel_strategies_agree =
  Test.make ~name:"replay = rewrite under happened-before" ~count:40
    (pair arb_sp_wf (make Gen.(int_bound 1000)))
    (fun (wf, _salt) ->
      let run strategy =
        let doc = Orchestrator.initial_document () in
        (* one generic rule on every service: F elements depend on other
           F elements that happened before *)
        let rule = Rule_parser.parse "q: //F ==> //F" in
        let services =
          let rec names = function
            | Parallel.Call s -> [ Service.name s ]
            | Parallel.Seq l | Parallel.Par l -> List.concat_map names l
            | Parallel.Nested (_, b) -> names b
          in
          names wf
        in
        let rb = List.map (fun s -> (s, [ rule ])) services in
        let _, _, g = Engine.run_parallel ~strategy doc wf rb in
        graph_links g
      in
      run `Replay = run `Rewrite)

(* --- extended pattern fragment round-trips --- *)

let gen_extended_pattern : Weblab_xpath.Ast.pattern Gen.t =
 fun st ->
  let open Weblab_xpath.Ast in
  let axis () =
    match Gen.int_bound 6 st with
    | 0 | 1 -> Descendant
    | 2 | 3 -> Child
    | 4 -> Parent
    | 5 -> Following_sibling
    | _ -> Ancestor
  in
  let pred () =
    match Gen.int_bound 4 st with
    | 0 -> Exists_attr (gen_attr_name st)
    | 1 -> Cmp (Count [ { raxis = Child; rtest = Name (gen_name st) } ],
                Ge, Num (Gen.int_bound 3 st))
    | 2 -> Cmp (Position, Eq, Last)
    | 3 -> Fn_bool ("contains", [ Attr (gen_attr_name st); Lit (gen_attr_value st) ])
    | _ -> Cmp (Strlen (Attr (gen_attr_name st)), Gt, Num (Gen.int_bound 5 st))
  in
  let first =
    { axis = (if Gen.bool st then Descendant else Child);
      test = Name (gen_name st);
      preds = (if Gen.bool st then [ pred () ] else []) }
  in
  let rest =
    List.init (Gen.int_bound 2 st) (fun _ ->
        { axis = axis (); test = Name (gen_name st);
          preds = (if Gen.bool st then [ pred () ] else []) })
  in
  first :: rest

let prop_extended_pattern_roundtrip =
  Test.make ~name:"extended pattern print/parse round-trip" ~count
    (make ~print:Weblab_xpath.Print.pattern_to_string gen_extended_pattern)
    (fun p ->
      let s = Weblab_xpath.Print.pattern_to_string p in
      Weblab_xpath.Parser.pattern s = p)

(* --- quality propagation is monotone --- *)

let prop_quality_monotone =
  Test.make ~name:"lowering a source never raises any score" ~count:60
    (pair arb_dag (make Gen.(int_bound 1000)))
    (fun (g, salt) ->
      let nodes =
        Prov_graph.links g
        |> List.concat_map (fun l -> [ l.Prov_graph.from_uri; l.Prov_graph.to_uri ])
        |> List.sort_uniq compare
      in
      assume (nodes <> []);
      (* label everything so propagate covers it *)
      List.iteri
        (fun i u ->
          Prov_graph.set_label g u { Trace.service = "S"; time = i })
        nodes;
      let victim = List.nth nodes (salt mod List.length nodes) in
      let high = Quality.propagate g ~sources:[ (victim, 0.9) ] in
      let low = Quality.propagate g ~sources:[ (victim, 0.2) ] in
      List.for_all2
        (fun (u1, s1) (u2, s2) -> u1 = u2 && s2 <= s1 +. 1e-9)
        high low)

(* --- compiled FLWOR queries survive the text round-trip --- *)

let has_index (p : Weblab_xpath.Ast.pattern) =
  List.exists
    (fun (st : Weblab_xpath.Ast.step) ->
      List.exists
        (function Weblab_xpath.Ast.Index _ -> true | _ -> false)
        st.Weblab_xpath.Ast.preds)
    p

let prop_pushdown_preserves_semantics =
  Test.make ~name:"selection pushdown preserves semantics" ~count
    (pair arb_pattern arb_doc)
    (fun (pat, doc) ->
      assume (not (has_index pat));
      let q = Weblab_xquery.Xq_compile.compile_pattern_query pat in
      Weblab_relalg.Table.equal
        (Weblab_xquery.Xq_eval.run doc q)
        (Weblab_xquery.Xq_eval.run doc (Weblab_xquery.Xq_optimize.push_filters q)))

let prop_flwor_text_roundtrip =
  Test.make ~name:"compiled FLWOR survives print/parse" ~count
    (pair arb_pattern arb_doc)
    (fun (pat, doc) ->
      assume (not (has_index pat));
      let q = Weblab_xquery.Xq_compile.compile_pattern_query pat in
      let q' = Weblab_xquery.Xq_parser.parse (Weblab_xquery.Xq_print.to_string q) in
      Weblab_relalg.Table.equal
        (Weblab_xquery.Xq_eval.run doc q)
        (Weblab_xquery.Xq_eval.run doc q'))

let prop_compiled_equals_native =
  Test.make ~name:"compiled FLWOR = native embeddings" ~count
    (pair arb_pattern arb_doc)
    (fun (pat, doc) ->
      assume (not (has_index pat));
      let native = Weblab_xpath.Eval.eval doc pat in
      let cols =
        List.filter (fun c -> c <> "node")
          (Weblab_relalg.Table.columns native)
      in
      let compiled =
        Weblab_xquery.Xq_eval.run doc
          (Weblab_xquery.Xq_compile.compile_pattern_query ~require_uri:true pat)
      in
      Weblab_relalg.Table.equal
        (Weblab_relalg.Table.project native cols)
        compiled)

(* --- RDF store round trip on random stores --- *)

let gen_store : Weblab_rdf.Triple_store.t Gen.t =
 fun st ->
  let open Weblab_rdf in
  let store = Triple_store.create () in
  let term () =
    match Gen.int_bound 3 st with
    | 0 -> Term.iri ("urn:x-" ^ gen_name st)
    | 1 -> Term.lit (gen_text st)
    | 2 -> Term.int_lit (Gen.int_bound 100 st)
    | _ -> Term.bnode (gen_name st)
  in
  for _ = 1 to 1 + Gen.int_bound 10 st do
    let s = match Gen.int_bound 1 st with
      | 0 -> Term.iri ("urn:s-" ^ gen_name st)
      | _ -> Term.bnode (gen_name st)
    in
    Triple_store.add store (s, Term.iri ("urn:p-" ^ gen_name st), term ())
  done;
  store

let prop_ntriples_roundtrip =
  Test.make ~name:"N-Triples round-trip on random stores" ~count
    (make ~print:Weblab_rdf.Turtle.to_ntriples gen_store)
    (fun store ->
      let open Weblab_rdf in
      let store' = Turtle.parse_ntriples (Turtle.to_ntriples store) in
      Triple_store.size store = Triple_store.size store'
      && List.for_all (Triple_store.mem store') (Triple_store.triples store))

(* --- robustness fuzzing: parsers only fail through their own errors --- *)

let gen_garbage : string Gen.t =
 fun st ->
  let n = Gen.int_bound 60 st in
  String.init n (fun _ ->
      match Gen.int_bound 12 st with
      | 0 -> '<'
      | 1 -> '>'
      | 2 -> '/'
      | 3 -> '&'
      | 4 -> '"'
      | 5 -> '\''
      | 6 -> '['
      | 7 -> ']'
      | 8 -> ' '
      | 9 -> '='
      | 10 -> Char.chr (97 + Gen.int_bound 25 st)
      | 11 -> Char.chr (48 + Gen.int_bound 9 st)
      | _ -> Char.chr (Gen.int_bound 255 st))

let prop_xml_parser_total =
  Test.make ~name:"XML parser is total (Error or a document)" ~count:300
    (make ~print:(fun s -> String.escaped s) gen_garbage)
    (fun s ->
      match Xml_parser.parse s with
      | _ -> true
      | exception Xml_parser.Error _ -> true)

let prop_pattern_parser_total =
  Test.make ~name:"pattern parser is total" ~count:300
    (make ~print:(fun s -> String.escaped s) gen_garbage)
    (fun s ->
      match Weblab_xpath.Parser.pattern s with
      | _ -> true
      | exception Weblab_xpath.Parser.Error _ -> true)

let prop_rule_parser_total =
  Test.make ~name:"rule parser is total" ~count:300
    (make ~print:(fun s -> String.escaped s) gen_garbage)
    (fun s ->
      match Rule_parser.parse s with
      | _ -> true
      | exception Rule_parser.Error _ -> true)

let prop_sparql_parser_total =
  Test.make ~name:"SPARQL parser is total" ~count:300
    (make ~print:(fun s -> String.escaped s) gen_garbage)
    (fun s ->
      match Weblab_rdf.Sparql.parse s with
      | _ -> true
      | exception Weblab_rdf.Sparql.Error _ -> true)

let prop_wf_parser_total =
  Test.make ~name:"workflow parser is total" ~count:300
    (make ~print:(fun s -> String.escaped s) gen_garbage)
    (fun s ->
      match Wf_parser.parse ~resolve:(fun _ -> None) s with
      | _ -> true
      | exception (Wf_parser.Error _ | Wf_parser.Unknown_service _) -> true)

(* --- algebra laws --- *)

let gen_small_table : Weblab_relalg.Table.t Gen.t =
 fun st ->
  let open Weblab_relalg in
  let cols =
    match Gen.int_bound 2 st with
    | 0 -> [ "a"; "b" ]
    | 1 -> [ "b"; "c" ]
    | _ -> [ "a"; "c" ]
  in
  let t = Table.create cols in
  let rows = Gen.int_bound 5 st in
  for _ = 1 to rows do
    Table.add_row t
      (Array.of_list
         (List.map (fun _ -> Value.Str (gen_attr_value st)) cols))
  done;
  t

let arb_table = make ~print:Weblab_relalg.Table.to_string gen_small_table

let prop_join_commutative =
  Test.make ~name:"natural join commutative (as sets)" ~count
    (pair arb_table arb_table)
    (fun (a, b) ->
      let open Weblab_relalg in
      Table.equal
        (Table.distinct (Table.natural_join a b))
        (Table.distinct (Table.natural_join b a)))

let prop_union_commutative =
  Test.make ~name:"union commutative" ~count (pair arb_table arb_table)
    (fun (a, b) ->
      let open Weblab_relalg in
      assume (List.sort compare (Table.columns a)
              = List.sort compare (Table.columns b));
      Table.equal (Table.union a b) (Table.union b a))

let prop_project_idempotent =
  Test.make ~name:"projection idempotent" ~count arb_table (fun t ->
      let open Weblab_relalg in
      let cols = Table.columns t in
      Table.equal (Table.project t cols) (Table.project (Table.project t cols) cols))

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [ ( "roundtrips",
        to_alcotest [ prop_xml_roundtrip; prop_pattern_roundtrip ] );
      ( "diff", to_alcotest [ prop_diff_roundtrip ] );
      ( "strategies",
        to_alcotest
          [ prop_strategy_agreement; prop_graph_invariants;
            prop_monotone_timestamps; prop_append_only_states;
            prop_inheritance_sound ] );
      ( "algebra",
        to_alcotest
          [ prop_join_commutative; prop_union_commutative;
            prop_project_idempotent ] );
      ( "robustness",
        to_alcotest
          [ prop_xml_parser_total; prop_pattern_parser_total;
            prop_rule_parser_total; prop_sparql_parser_total;
            prop_wf_parser_total ] );
      ( "extensions",
        to_alcotest
          [ prop_reachability_matches_bfs; prop_happened_before_strict_order;
            prop_parallel_strategies_agree; prop_extended_pattern_roundtrip;
            prop_flwor_text_roundtrip; prop_compiled_equals_native;
            prop_pushdown_preserves_semantics; prop_quality_monotone;
            prop_ntriples_roundtrip ] ) ]
