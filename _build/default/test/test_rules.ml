(* Tests for mapping rules: parser, validation, Definition 8/9 application
   and the §4 temporal rewriting. *)

open Weblab_xml
open Weblab_workflow
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

let links_testable = Alcotest.(list (pair string string))

(* --- rule parser --- *)

let test_parse_named () =
  let r = Rule_parser.parse "M2: //T[$x := @id]/C ==> //T[$x := @id]/A[L]" in
  check_str "name" "M2" (Rule.name r);
  check_int "src steps" 2 (List.length (Rule.source r));
  check_int "tgt steps" 2 (List.length (Rule.target r));
  check (Alcotest.list Alcotest.string) "join vars" [ "x" ] (Rule.join_variables r)

let test_parse_unnamed_and_arrows () =
  let r1 = Rule_parser.parse "//A ==> //B" in
  check_str "no name" "" (Rule.name r1);
  let r2 = Rule_parser.parse "//A --> //B" in
  check_bool "same patterns" true
    (Rule.source r1 = Rule.source r2 && Rule.target r1 = Rule.target r2)

let test_parse_roundtrip () =
  let inputs =
    [ "M1: /Resource//NativeContent ==> //TextMediaUnit[1]";
      "M3: //T[A/L = 'fr'] ==> //T[A/L = 'en']";
      "//A[$x := @id] ==> //C[f($x) = @id]" ]
  in
  List.iter
    (fun input ->
      let r = Rule_parser.parse input in
      let r' = Rule_parser.parse (Rule.to_string r) in
      check_bool input true
        (Rule.source r = Rule.source r' && Rule.target r = Rule.target r'
         && Rule.name r = Rule.name r'))
    inputs

let expect_error input =
  match Rule_parser.parse input with
  | _ -> Alcotest.failf "expected rule error for %S" input
  | exception Rule_parser.Error _ -> ()

let test_implicit_binding_equality () =
  (* [@id = $x] is the implicit-binding spelling of [$x := @id]
     (Example 9 writes rules this way). *)
  let r1 = Rule_parser.parse "//T[@id = $x]/C ==> //T[@id = $x]/A" in
  let r2 = Rule_parser.parse "//T[$x := @id]/C ==> //T[$x := @id]/A" in
  check_bool "normalized to the same rule" true
    (Rule.source r1 = Rule.source r2 && Rule.target r1 = Rule.target r2)

let test_parse_errors () =
  expect_error "";
  expect_error "//A";
  expect_error "//A ==>";
  expect_error "==> //B";
  expect_error "//A ==> //B ==> //C";
  (* Definition 5: the target may not introduce variables in comparisons
     other than the implicit-binding equality. *)
  expect_error "//A ==> //B[@id < $y]"

let test_parse_many () =
  let rules =
    Rule_parser.parse_many
      "# comment\nM1: //A ==> //B\n\n   \nM2: //C ==> //D\n"
  in
  check (Alcotest.list Alcotest.string) "names" [ "M1"; "M2" ]
    (List.map Rule.name rules)

let test_validation () =
  (match Rule.make ~source:[] ~target:(Weblab_xpath.Parser.pattern "//B") () with
   | _ -> Alcotest.fail "empty source accepted"
   | exception Rule.Ill_formed _ -> ());
  (* Skolem arguments must also come from the source. *)
  expect_error "//A ==> //C[f($z) = @id]"

(* --- Definition 8/9 on a hand-built execution --- *)

(* Workflow: initial document with two <N> sources; service S wraps each
   N's text into a <T> with @src back-pointer. *)
let execution () =
  let doc = Orchestrator.initial_document () in
  let root = Tree.root doc in
  let n1 = Tree.new_element doc ~parent:root "N" in
  Tree.set_uri doc n1 "n1";
  ignore (Tree.new_text doc ~parent:n1 "alpha");
  let n2 = Tree.new_element doc ~parent:root "N" in
  Tree.set_uri doc n2 "n2";
  ignore (Tree.new_text doc ~parent:n2 "beta");
  let wrap =
    Service.inproc ~name:"Wrap" ~description:"" (fun doc ->
        List.iter
          (fun n ->
            if Tree.name doc n = "N" && Tree.created doc n = 0 then begin
              let t =
                Tree.new_element doc ~parent:(Tree.root doc) "T"
                  ~attrs:[ ("src", Option.get (Tree.uri doc n)) ]
              in
              Tree.set_uri doc t ("t-" ^ Option.get (Tree.uri doc n))
            end)
          (Tree.descendant_or_self doc (Tree.root doc)))
  in
  let annotate =
    Service.inproc ~name:"Annotate" ~description:"" (fun doc ->
        List.iter
          (fun n ->
            if Tree.name doc n = "T" && Tree.created doc n = 1 then begin
              let a = Tree.new_element doc ~parent:n "A" in
              Tree.set_uri doc a ("a-" ^ Option.get (Tree.uri doc n))
            end)
          (Tree.descendant_or_self doc (Tree.root doc)))
  in
  let trace = Orchestrator.execute doc [ wrap; annotate ] in
  (doc, trace)

let wrap_rule = "W: //N[$x := @id] ==> //T[$x := @src]"
let ann_rule = "A: //T[$x := @id] ==> //T[$x := @id]/A"

let test_apply_states () =
  let doc, _ = execution () in
  let rule = Rule_parser.parse wrap_rule in
  let app =
    Mapping.apply_states rule (Doc_state.at doc 0) (Doc_state.at doc 1)
  in
  check links_testable "links"
    [ ("t-n1", "n1"); ("t-n2", "n2") ]
    (List.sort compare app.Mapping.links)

let test_apply_states_empty_when_early () =
  let doc, _ = execution () in
  let rule = Rule_parser.parse wrap_rule in
  (* Both sides evaluated on d0: no T exists yet. *)
  let app =
    Mapping.apply_states rule (Doc_state.at doc 0) (Doc_state.at doc 0)
  in
  check_int "no links" 0 (List.length app.Mapping.links)

let test_apply_call_filters () =
  let doc, trace = execution () in
  let rule = Rule_parser.parse ann_rule in
  let call = { Trace.service = "Annotate"; time = 2 } in
  let app = Mapping.apply_call rule ~doc ~trace ~call in
  check links_testable "links"
    [ ("a-t-n1", "t-n1"); ("a-t-n2", "t-n2") ]
    (List.sort compare app.Mapping.links)

let test_self_links_dropped () =
  let doc, _ = execution () in
  (* //T ==> //T maps each T to itself (same variable @id): self links must
     be dropped. *)
  let rule = Rule_parser.parse "S: //T[$x := @id] ==> //T[$x := @id]" in
  let app =
    Mapping.apply_states rule (Doc_state.at doc 1) (Doc_state.at doc 1)
  in
  check_int "no self links" 0 (List.length app.Mapping.links)

(* --- §4 rewriting --- *)

let test_rewrite_adds_constraints () =
  let rule = Rule_parser.parse wrap_rule in
  let call = { Trace.service = "Wrap"; time = 1 } in
  let r' = Pattern_rewrite.rewrite_rule rule call in
  let src = Weblab_xpath.Print.pattern_to_string (Rule.source r') in
  let tgt = Weblab_xpath.Print.pattern_to_string (Rule.target r') in
  check_str "source" "//N[$x := @id][@t < 1]" src;
  check_str "target" "//T[$x := @src][@s = 'Wrap' and @t = 1]" tgt

let test_rewrite_literal_evaluation () =
  (* The literally rewritten rule, evaluated on the *final* document with
     no visibility guard, produces exactly the per-state links — thanks to
     the @s/@t labels the Recorder wrote. *)
  let doc, trace = execution () in
  let rule = Rule_parser.parse ann_rule in
  let call = { Trace.service = "Annotate"; time = 2 } in
  let rewritten = Pattern_rewrite.rewrite_rule rule call in
  let final = Doc_state.final doc in
  let app = Mapping.apply_states rewritten final final in
  let reference = Mapping.apply_call rule ~doc ~trace ~call in
  check links_testable "literal rewrite ≡ replay"
    (List.sort compare reference.Mapping.links)
    (List.sort compare app.Mapping.links)

let test_rewrite_source_excludes_same_call () =
  (* Resources produced by the call itself must not appear as sources. *)
  let doc, trace = execution () in
  let rule = Rule_parser.parse "X: //T[$x := @id] ==> //T[$x := @id]/A" in
  let call = { Trace.service = "Annotate"; time = 2 } in
  let app = Mapping.apply_call rule ~doc ~trace ~call in
  List.iter
    (fun (_, src) ->
      let n = Option.get (Tree.find_resource doc src) in
      check_bool "source older than call" true (Tree.created doc n < 2))
    app.Mapping.links;
  ignore trace

let () =
  Alcotest.run "rules"
    [ ( "parser",
        [ Alcotest.test_case "named rule" `Quick test_parse_named;
          Alcotest.test_case "arrows" `Quick test_parse_unnamed_and_arrows;
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "implicit binding" `Quick test_implicit_binding_equality;
          Alcotest.test_case "parse_many" `Quick test_parse_many;
          Alcotest.test_case "validation" `Quick test_validation ] );
      ( "application",
        [ Alcotest.test_case "apply_states" `Quick test_apply_states;
          Alcotest.test_case "early states empty" `Quick test_apply_states_empty_when_early;
          Alcotest.test_case "apply_call filters" `Quick test_apply_call_filters;
          Alcotest.test_case "self links dropped" `Quick test_self_links_dropped ] );
      ( "rewriting",
        [ Alcotest.test_case "constraints added" `Quick test_rewrite_adds_constraints;
          Alcotest.test_case "literal ≡ replay" `Quick test_rewrite_literal_evaluation;
          Alcotest.test_case "no same-call sources" `Quick test_rewrite_source_excludes_same_call ] ) ]
