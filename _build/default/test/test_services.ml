(* Tests for the simulated media-mining services: each service's text
   processing, its append behaviour and its mapping rules. *)

open Weblab_xml
open Weblab_workflow
open Weblab_services

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

(* --- text utilities --- *)

let test_tokenize () =
  check (Alcotest.list Alcotest.string) "basic" [ "a"; "b'c"; "42" ]
    (Textutil.tokenize "a, b'c! (42)");
  check (Alcotest.list Alcotest.string) "accents kept"
    [ "sécurité"; "données" ]
    (Textutil.tokenize "sécurité, données");
  check_int "empty" 0 (List.length (Textutil.tokenize "... !!"))

let test_sentences () =
  check (Alcotest.list Alcotest.string) "split"
    [ "One."; "Two!"; "Three?"; "Four" ]
    (Textutil.sentences "One. Two! Three? Four");
  check_int "no split inside" 1 (List.length (Textutil.sentences "a.b c"))

let test_normalize_whitespace () =
  check_str "collapse" "a b c" (Textutil.normalize_whitespace "  a \n\t b   c ")

let test_strip_markup () =
  check_str "strip" "hello world"
    (Textutil.normalize_whitespace
       (Textutil.strip_markup "<p>hello</p> <b>world</b>"))

let test_letter_frequencies () =
  let f = Textutil.letter_frequencies "aab" in
  check_bool "a freq" true (abs_float (f.(0) -. (2.0 /. 3.0)) < 1e-9);
  check_bool "b freq" true (abs_float (f.(1) -. (1.0 /. 3.0)) < 1e-9);
  let z = Textutil.letter_frequencies "123" in
  check_bool "no letters" true (Array.for_all (fun x -> x = 0.0) z)

(* --- language identification --- *)

let test_detect_languages () =
  let cases =
    [ ("The government and the market are in the report of the economy.", "en");
      ("Le gouvernement est dans une crise politique avec les entreprises.", "fr");
      ("Die Regierung hat einen Bericht über die Wirtschaft und den Markt.", "de");
      ("El gobierno publicó un informe sobre la seguridad y la economía.", "es") ]
  in
  List.iter
    (fun (text, code) ->
      check_str code code (Langdata.code (Language_extractor.detect text)))
    cases

let test_detect_corpus_accuracy () =
  (* The detector must be accurate on its own synthetic corpus, even after
     normalisation (lowercasing). *)
  let rng = Random.State.make [| 123 |] in
  let total = ref 0 and correct = ref 0 in
  for _ = 1 to 40 do
    List.iter
      (fun lang ->
        let text = String.lowercase_ascii (Corpus.text rng lang) in
        incr total;
        if Language_extractor.detect text = lang then incr correct)
      Langdata.all_languages
  done;
  check_bool
    (Printf.sprintf "accuracy %d/%d" !correct !total)
    true
    (float_of_int !correct /. float_of_int !total > 0.95)

(* --- translator --- *)

let test_translate_fr () =
  let out =
    Translator.translate ~source_lang:Langdata.Fr
      "le gouvernement et la crise"
  in
  check_str "fr->en" "the government and the crisis" out

let test_translate_unknown_words_pass () =
  let out = Translator.translate ~source_lang:Langdata.Fr "xyzzy le plugh" in
  check_str "passthrough" "xyzzy the plugh" out

(* --- other service primitives --- *)

let test_summarize () =
  check_str "two sentences" "One. Two!"
    (Summarizer.summarize ~sentences:2 "One. Two! Three.");
  check_str "fewer available" "One." (Summarizer.summarize ~sentences:5 "One.")

let test_sentiment_score () =
  check_bool "positive" true (Sentiment.score "a great success story" > 0);
  check_bool "negative" true (Sentiment.score "the war and the crisis" < 0);
  check_int "neutral" 0 (Sentiment.score "the table is blue");
  check_str "polarity" "positive" (Sentiment.polarity 2)

let test_entities () =
  let es = Entity_extractor.entities_of_text "the summit in paris with Merkel" in
  check_bool "paris found" true (List.mem ("Paris", "location") es);
  check_bool "merkel found" true (List.mem ("Merkel", "person") es)

let test_ocr_asr_noise () =
  check_bool "ocr changes something" true
    (Media.ocr_noise "hello wonderful world of text recognition systems"
     <> "hello wonderful world of text recognition systems");
  check_str "asr drops short words" "the quick brown fox"
    (Media.asr_noise "so the quick brown fox is it")

(* --- end-to-end service behaviour on documents --- *)

let test_normaliser_service () =
  let doc = Workload.make_document ~units:2 ~seed:3 () in
  let _ = Orchestrator.execute doc [ Normaliser.service ] in
  let units = Schema.text_media_units doc in
  check_int "two units" 2 (List.length units);
  List.iter
    (fun u ->
      check_bool "has src" true (Tree.attr doc u Schema.src_attr <> None);
      match Schema.text_of_unit doc u with
      | Some (_, text) ->
        check_bool "lowercased, no markup" true
          (not (String.contains text '<')
           && String.equal text (String.lowercase_ascii text))
      | None -> Alcotest.fail "unit without TextContent")
    units

let test_normaliser_idempotent () =
  let doc = Workload.make_document ~units:2 ~seed:3 () in
  let _ = Orchestrator.execute doc [ Normaliser.service; Normaliser.service ] in
  check_int "still two units" 2 (List.length (Schema.text_media_units doc))

let test_language_extractor_service () =
  let doc = Workload.make_document ~units:3 ~seed:5 () in
  let _ =
    Orchestrator.execute doc [ Normaliser.service; Language_extractor.service ]
  in
  List.iter
    (fun u ->
      check_bool "annotated" true (Schema.language_of_unit doc u <> None))
    (Schema.text_media_units doc)

let test_translator_service () =
  (* Force a French unit, then check an English twin appears. *)
  let doc = Orchestrator.initial_document () in
  let mu = Tree.new_element doc ~parent:(Tree.root doc) Schema.media_unit in
  let nc = Tree.new_element doc ~parent:mu Schema.native_content in
  ignore
    (Tree.new_text doc ~parent:nc
       "Le gouvernement est dans une crise politique avec les entreprises \
        pour la sécurité des données.");
  let _ =
    Orchestrator.execute doc
      [ Normaliser.service; Language_extractor.service; Translator.service () ]
  in
  let en_units =
    Schema.text_media_units doc
    |> List.filter (fun u -> Schema.language_of_unit doc u = Some "en")
  in
  check_int "one translation" 1 (List.length en_units);
  let u = List.hd en_units in
  check_bool "src points back" true (Tree.attr doc u Schema.src_attr <> None);
  match Schema.text_of_unit doc u with
  | Some (_, text) ->
    let words = Textutil.tokenize text in
    check_bool "contains 'government'" true (List.mem "government" words)
  | None -> Alcotest.fail "translation without text"

let test_media_services () =
  let doc = Workload.make_document ~units:0 ~images:1 ~audios:1 ~seed:9 () in
  let _ = Orchestrator.execute doc [ Media.ocr_service; Media.asr_service ] in
  check_int "two recovered units" 2 (List.length (Schema.text_media_units doc))

let test_extended_pipeline_all_annotations () =
  let doc = Workload.make_document ~units:2 ~seed:17 () in
  let _ =
    Orchestrator.execute doc (Workload.standard_pipeline ~extended:true ())
  in
  let originals =
    Schema.text_media_units doc
    |> List.filter (fun u -> Tree.attr doc u "kind" <> Some "summary")
  in
  List.iter
    (fun u ->
      check_bool "tokens" true (Schema.has_annotation doc u Schema.tokens);
      check_bool "sentiment" true (Schema.has_annotation doc u Schema.sentiment))
    originals;
  (* summaries exist for the original units *)
  let summaries =
    Schema.text_media_units doc
    |> List.filter (fun u -> Tree.attr doc u "kind" = Some "summary")
  in
  check_bool "summaries" true (List.length summaries >= 2)

let test_classifier () =
  check Alcotest.string "politics" "politics"
    (fst (Classifier.classify "the government held an election conference"));
  check Alcotest.string "security" "security"
    (fst (Classifier.classify "an attack on the defence network raised the war threat"));
  check Alcotest.string "general" "general"
    (fst (Classifier.classify "completely unrelated words"));
  (* end to end: every unit annotated with a Topic *)
  let doc = Workload.make_document ~units:2 ~seed:8 () in
  let _ =
    Orchestrator.execute doc [ Normaliser.service; Classifier.service ]
  in
  List.iter
    (fun u -> check_bool "topic" true (Schema.has_annotation doc u "Topic"))
    (Schema.text_media_units doc)

let test_geo_tagger () =
  let doc = Orchestrator.initial_document () in
  let mu = Tree.new_element doc ~parent:(Tree.root doc) Schema.media_unit in
  let nc = Tree.new_element doc ~parent:mu Schema.native_content in
  ignore
    (Tree.new_text doc ~parent:nc
       "The conference in Paris with delegates from Berlin and Madrid.");
  let _ =
    Orchestrator.execute doc
      [ Normaliser.service; Entity_extractor.service; Geo_tagger.service ]
  in
  let unit = List.hd (Schema.text_media_units doc) in
  let places =
    Schema.annotations_with doc unit "Place"
    |> List.concat_map (fun a -> Schema.children_named doc a "Place")
  in
  check_int "three places" 3 (List.length places);
  List.iter
    (fun p ->
      check_bool "lat" true (Tree.attr doc p "lat" <> None);
      check_bool "lon" true (Tree.attr doc p "lon" <> None))
    places;
  let names = List.map (fun p -> Tree.string_value doc p) places in
  check (Alcotest.list Alcotest.string) "names"
    [ "Berlin"; "Madrid"; "Paris" ]
    (List.sort compare names)

let test_geo_tagger_without_entities () =
  (* Falls back to scanning the text when the EntityExtractor did not run. *)
  let doc = Orchestrator.initial_document () in
  let mu = Tree.new_element doc ~parent:(Tree.root doc) Schema.media_unit in
  let nc = Tree.new_element doc ~parent:mu Schema.native_content in
  ignore (Tree.new_text doc ~parent:nc "A report from Geneva.");
  let _ = Orchestrator.execute doc [ Normaliser.service; Geo_tagger.service ] in
  let unit = List.hd (Schema.text_media_units doc) in
  check_bool "place found" true (Schema.has_annotation doc unit "Place")

let test_deduplicator_similarity () =
  check_bool "identical" true (Deduplicator.similar "a b c d e f" "a b c d e f");
  check_bool "near duplicate" true
    (Deduplicator.similar "the government released a report on the economy today"
       "the government released a report on the economy yesterday");
  check_bool "unrelated" false
    (Deduplicator.similar "the quick brown fox jumps over dogs"
       "completely different words about other topics entirely")

let test_deduplicator_service () =
  (* Two copies of the same article and one distinct one. *)
  let doc = Orchestrator.initial_document () in
  let add_item text =
    let mu = Tree.new_element doc ~parent:(Tree.root doc) Schema.media_unit in
    let nc = Tree.new_element doc ~parent:mu Schema.native_content in
    ignore (Tree.new_text doc ~parent:nc text)
  in
  let article = "The government released a report on the market and the economy." in
  add_item article;
  add_item (article ^ " It was widely read.");
  add_item "Le gouvernement est dans une crise politique avec les entreprises.";
  let trace =
    Orchestrator.execute doc [ Normaliser.service; Deduplicator.service () ]
  in
  let groups = Schema.elements doc Deduplicator.duplicate_group in
  check_int "one group" 1 (List.length groups);
  let members = Schema.children_named doc (List.hd groups) "Member" in
  check_int "two members" 2 (List.length members);
  (* provenance: the group depends on exactly its two members *)
  let rb = [ ("Deduplicator", List.map Weblab_prov.Rule_parser.parse Deduplicator.rules) ] in
  let g =
    Weblab_prov.Strategy.infer ~strategy:`Rewrite ~doc ~trace rb
  in
  let group_uri = Option.get (Tree.uri doc (List.hd groups)) in
  check_int "two links" 2
    (List.length (Weblab_prov.Prov_graph.depends_on g group_uri));
  (* and both strategies agree on this many-to-many rule *)
  let g2 = Weblab_prov.Strategy.infer ~strategy:`Replay ~doc ~trace rb in
  check (Alcotest.list Alcotest.string) "strategies agree"
    (Weblab_prov.Prov_graph.depends_on g group_uri)
    (Weblab_prov.Prov_graph.depends_on g2 group_uri)

let test_catalog_rules_parse () =
  List.iter
    (fun (service, rules) ->
      List.iter
        (fun r ->
          match Weblab_prov.Rule_parser.parse r with
          | _ -> ()
          | exception Weblab_prov.Rule_parser.Error msg ->
            Alcotest.failf "rule of %s does not parse: %s (%s)" service r msg)
        rules)
    Catalog.rulebook_syntax

let test_corpus_deterministic () =
  let t1 = Corpus.text (Random.State.make [| 4 |]) Langdata.Fr in
  let t2 = Corpus.text (Random.State.make [| 4 |]) Langdata.Fr in
  check_str "deterministic" t1 t2

let () =
  Alcotest.run "services"
    [ ( "textutil",
        [ Alcotest.test_case "tokenize" `Quick test_tokenize;
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "whitespace" `Quick test_normalize_whitespace;
          Alcotest.test_case "strip markup" `Quick test_strip_markup;
          Alcotest.test_case "letter frequencies" `Quick test_letter_frequencies ] );
      ( "language",
        [ Alcotest.test_case "detect" `Quick test_detect_languages;
          Alcotest.test_case "corpus accuracy" `Quick test_detect_corpus_accuracy ] );
      ( "translator",
        [ Alcotest.test_case "french" `Quick test_translate_fr;
          Alcotest.test_case "passthrough" `Quick test_translate_unknown_words_pass ] );
      ( "analytics",
        [ Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "sentiment" `Quick test_sentiment_score;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "media noise" `Quick test_ocr_asr_noise ] );
      ( "pipeline",
        [ Alcotest.test_case "normaliser" `Quick test_normaliser_service;
          Alcotest.test_case "normaliser idempotent" `Quick test_normaliser_idempotent;
          Alcotest.test_case "language extractor" `Quick test_language_extractor_service;
          Alcotest.test_case "translator" `Quick test_translator_service;
          Alcotest.test_case "media" `Quick test_media_services;
          Alcotest.test_case "extended pipeline" `Quick test_extended_pipeline_all_annotations;
          Alcotest.test_case "classifier" `Quick test_classifier;
          Alcotest.test_case "geo tagger" `Quick test_geo_tagger;
          Alcotest.test_case "geo fallback" `Quick test_geo_tagger_without_entities;
          Alcotest.test_case "deduplicator similarity" `Quick test_deduplicator_similarity;
          Alcotest.test_case "deduplicator service" `Quick test_deduplicator_service;
          Alcotest.test_case "catalog rules parse" `Quick test_catalog_rules_parse;
          Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic ] ) ]
