(* Tests for the §5 extensions: Skolem-function aggregation rules and
   position-based mappings. *)

open Weblab_xml
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let pairs = Alcotest.(list (pair string string))

(* Document with A sources (identified) and C outputs (unidentified,
   grouped by @val). *)
let doc () =
  Xml_parser.parse
    {|<R id="r1" s="Source" t="0">
        <A id="a1" val="g1" s="Source" t="0"/>
        <A id="a2" val="g1" s="Source" t="0"/>
        <A id="a3" val="g2" s="Source" t="0"/>
        <C val="g1"/>
        <C val="g1"/>
        <C val="g2"/>
      </R>|}

let state d = Doc_state.final d

let apply rule d = Mapping.apply_states rule (state d) (state d)

let test_one_to_one () =
  let rule =
    Skolem.rule ~kind:Skolem.One_to_one ~f:"f" ~src:"A" ~tgt:"C" ()
  in
  check_bool "skolem rule detected" true (Mapping.is_skolem_rule rule);
  let d = doc () in
  let app = apply rule d in
  (* Every A generates exactly one synthetic entity f(a_i). *)
  check pairs "links"
    [ ("f(a1)", "a1"); ("f(a2)", "a2"); ("f(a3)", "a3") ]
    (List.sort compare app.Mapping.links)

let test_many_to_one () =
  let rule =
    Skolem.rule ~kind:Skolem.Many_to_one ~f:"g" ~src:"A" ~tgt:"C" ()
  in
  let d = doc () in
  let app = apply rule d in
  (* One C gathers all the A sharing a @val: two synthetic entities. *)
  check pairs "links"
    [ ("g(g1)", "a1"); ("g(g1)", "a2"); ("g(g2)", "a3") ]
    (List.sort compare app.Mapping.links)

let test_one_to_many () =
  let rule =
    Skolem.rule ~kind:Skolem.One_to_many ~f:"h" ~src:"A" ~tgt:"C" ()
  in
  let d = doc () in
  let app = apply rule d in
  (* All C sharing a @val come from a single A — every A is a candidate
     generator of each group (the grouping is on the C side). *)
  check_bool "h(g1) present" true
    (List.exists (fun (o, _) -> o = "h(g1)") app.Mapping.links);
  check_bool "h(g2) present" true
    (List.exists (fun (o, _) -> o = "h(g2)") app.Mapping.links)

let test_many_to_many () =
  let rule =
    Skolem.rule ~kind:Skolem.Many_to_many ~f:"k" ~src:"A" ~tgt:"C" ()
  in
  let d = doc () in
  let app = apply rule d in
  (* All C with @val=g1 link to all A with @val=g1. *)
  check pairs "links"
    [ ("k(g1)", "a1"); ("k(g1)", "a2"); ("k(g2)", "a3") ]
    (List.sort compare app.Mapping.links)

let test_members_recorded () =
  (* One-to-many groups the C members by their own @val binding. *)
  let rule =
    Skolem.rule ~kind:Skolem.One_to_many ~f:"h" ~src:"A" ~tgt:"C" ()
  in
  let d = doc () in
  let app = apply rule d in
  check_int "three members" 3 (List.length app.Mapping.members);
  let groups = List.map fst app.Mapping.members |> List.sort_uniq compare in
  check (Alcotest.list Alcotest.string) "groups" [ "h(g1)"; "h(g2)" ] groups;
  check_int "members of h(g1)" 2
    (List.length (List.filter (fun (e, _) -> e = "h(g1)") app.Mapping.members))

let test_skolem_in_graph_and_export () =
  let rule =
    Skolem.rule ~kind:Skolem.One_to_many ~f:"g" ~src:"A" ~tgt:"C" ()
  in
  let d = doc () in
  let app = apply rule d in
  let g = Prov_graph.create () in
  List.iter
    (fun (o, i) -> Prov_graph.add_link g ~rule:"sk" ~from_uri:o ~to_uri:i)
    app.Mapping.links;
  List.iter
    (fun (entity, member) -> Prov_graph.add_member g ~entity ~member)
    app.Mapping.members;
  check_int "entities" 2 (List.length (Prov_graph.skolem_entities g));
  check_int "members of g(g1)" 2 (List.length (Prov_graph.members g "g(g1)"));
  ignore d;
  (* RDF export carries prov:hadMember triples. *)
  let store = Prov_export.to_store g in
  let open Weblab_rdf in
  check_int "hadMember triples" 3
    (Triple_store.count store (None, Some Prov_vocab.had_member, None))

let test_skolem_rule_text_roundtrip () =
  let rule =
    Skolem.rule ~kind:Skolem.One_to_one ~f:"f" ~src:"A" ~tgt:"C" ()
  in
  let r' = Rule_parser.parse (Rule.to_string rule) in
  check_bool "round-trip" true
    (Rule.source rule = Rule.source r' && Rule.target rule = Rule.target r')

(* --- §5 position-based rules --- *)

let position_doc () =
  Xml_parser.parse
    {|<R id="r1">
        <A id="a1"><B id="b11"/><B id="b12"/></A>
        <A id="a2"><B id="b21"/></A>
        <C id="c1"/><C id="c2"/><C id="c3"/>
      </R>|}

let test_position_mapping () =
  (* //A[B][$p := position()]/B ==> //C[$p = position()]:
     B children of the i-th A map to the i-th C. *)
  let rule =
    Rule_parser.parse "P: //A[B][$p := position()]/B ==> //C[$p = position()]"
  in
  let d = position_doc () in
  let app = Mapping.apply_states rule (Doc_state.final d) (Doc_state.final d) in
  check pairs "position links"
    [ ("c1", "b11"); ("c1", "b12"); ("c2", "b21") ]
    (List.sort compare app.Mapping.links)

let test_position_of_a_itself () =
  (* The §5 contrast: //A[$p := position()]/B takes A's position among all
     A, with or without B children — same here since both A have a B, but
     the semantics differ when binding before the [B] filter. *)
  let rule =
    Rule_parser.parse "P2: //A[$p := position()]/B ==> //C[$p = position()]"
  in
  let d = position_doc () in
  let app = Mapping.apply_states rule (Doc_state.final d) (Doc_state.final d) in
  check pairs "same on this doc"
    [ ("c1", "b11"); ("c1", "b12"); ("c2", "b21") ]
    (List.sort compare app.Mapping.links)

let test_position_semantics_differ () =
  (* A document where the two §5 rules genuinely differ: the first A has no
     B child. *)
  let d =
    Xml_parser.parse
      {|<R id="r1"><A id="a1"/><A id="a2"><B id="b2"/></A>
        <C id="c1"/><C id="c2"/></R>|}
  in
  let with_filter =
    Rule_parser.parse "F: //A[B][$p := position()]/B ==> //C[$p = position()]"
  in
  let without_filter =
    Rule_parser.parse "G: //A[$p := position()]/B ==> //C[$p = position()]"
  in
  let run rule =
    (Mapping.apply_states rule (Doc_state.final d) (Doc_state.final d)).Mapping.links
    |> List.sort compare
  in
  (* [B][position] : a2 is the 1st A with a B -> links to c1 *)
  check pairs "filtered" [ ("c1", "b2") ] (run with_filter);
  (* [position] only: a2 is the 2nd A -> links to c2 *)
  check pairs "unfiltered" [ ("c2", "b2") ] (run without_filter)

let () =
  Alcotest.run "skolem"
    [ ( "aggregation",
        [ Alcotest.test_case "one-to-one" `Quick test_one_to_one;
          Alcotest.test_case "many-to-one" `Quick test_many_to_one;
          Alcotest.test_case "one-to-many" `Quick test_one_to_many;
          Alcotest.test_case "many-to-many" `Quick test_many_to_many;
          Alcotest.test_case "members" `Quick test_members_recorded;
          Alcotest.test_case "graph + rdf" `Quick test_skolem_in_graph_and_export;
          Alcotest.test_case "text round-trip" `Quick test_skolem_rule_text_roundtrip ] );
      ( "position",
        [ Alcotest.test_case "mapping" `Quick test_position_mapping;
          Alcotest.test_case "position of A" `Quick test_position_of_a_itself;
          Alcotest.test_case "§5 contrast" `Quick test_position_semantics_differ ] ) ]
