(* Golden test: the complete `figures` output — every paper artifact — is
   pinned byte-for-byte.  When a legitimate change alters the rendering,
   regenerate with:  dune exec bin/main.exe -- figures > test/golden/figures.txt *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rendered () =
  let e = Weblab_scenario.Paper.run () in
  Weblab_scenario.Figures.all e
  |> List.map (fun (title, body) -> Printf.sprintf "=== %s ===\n%s\n" title body)
  |> String.concat ""

(* dune runtest stages the dep next to the binary; dune exec runs from the
   workspace root — accept both. *)
let golden_path () =
  if Sys.file_exists "golden/figures.txt" then "golden/figures.txt"
  else "test/golden/figures.txt"

let test_figures_golden () =
  let expected = read_file (golden_path ()) in
  let actual = rendered () in
  if not (String.equal expected actual) then begin
    (* precise first-difference report *)
    let n = min (String.length expected) (String.length actual) in
    let rec diff i = if i < n && expected.[i] = actual.[i] then diff (i + 1) else i in
    let i = diff 0 in
    Alcotest.failf
      "figures output diverged from the golden file at byte %d:\n\
       expected … %S\n  actual … %S"
      i
      (String.sub expected i (min 60 (String.length expected - i)))
      (String.sub actual i (min 60 (String.length actual - i)))
  end

(* Soak: a long mixed pipeline over a larger corpus keeps every invariant. *)
let test_soak () =
  let open Weblab_workflow in
  let open Weblab_prov in
  let doc =
    Weblab_services.Workload.make_document ~units:12 ~images:2 ~audios:2
      ~seed:20260704 ()
  in
  let services =
    [ Weblab_services.Media.ocr_service; Weblab_services.Media.asr_service ]
    @ Weblab_services.Workload.chain_pipeline 18
  in
  let rb =
    List.filter_map
      (fun svc ->
        Weblab_services.Catalog.find (Service.name svc)
        |> Option.map (fun e ->
               ( Service.name svc,
                 List.map Rule_parser.parse e.Weblab_services.Catalog.rules )))
      services
  in
  let exec = Engine.run doc services in
  let g1 = Engine.provenance ~strategy:`Replay exec rb in
  let g2 = Engine.provenance ~strategy:`Rewrite exec rb in
  let key g =
    Prov_graph.links g
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri, l.Prov_graph.rule))
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "strategies agree at scale" true (key g1 = key g2);
  Alcotest.(check bool) "hundreds of links" true (Prov_graph.size g2 > 100);
  let g2 = Inheritance.close doc g2 in
  Alcotest.(check bool) "acyclic" true (Prov_graph.is_acyclic g2);
  Alcotest.(check bool) "temporally sound" true (Prov_graph.temporally_sound g2);
  Alcotest.(check bool) "monotone timestamps" true
    (Weblab_xml.Doc_state.timestamps_monotonic doc);
  (* reload equality at scale *)
  let doc' = Weblab_xml.Xml_parser.parse (Weblab_xml.Printer.to_string doc) in
  Weblab_xml.Doc_state.restore_timestamps doc';
  let trace' = Trace_io.of_xml (Trace_io.to_xml exec.Engine.trace) in
  let g3 = Strategy.infer ~strategy:`Rewrite ~doc:doc' ~trace:trace' rb in
  Alcotest.(check bool) "reload equality at scale" true (key g2 <> [] && key g3 = key (Engine.provenance ~strategy:`Rewrite exec rb))

let () =
  Alcotest.run "golden"
    [ ( "figures", [ Alcotest.test_case "golden output" `Quick test_figures_golden ] );
      ( "soak", [ Alcotest.test_case "large pipeline" `Quick test_soak ] ) ]
