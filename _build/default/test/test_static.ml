(* Tests for the static rulebook analysis (§2's orchestration-constraint
   pruning). *)

open Weblab_workflow
open Weblab_services
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let order = [ "Normaliser"; "LanguageExtractor"; "Translator" ]

let produces : Static_check.produces =
  [ ("Source", [ "Resource"; "MediaUnit"; "NativeContent" ]);
    ("Normaliser", [ "NativeContent"; "TextMediaUnit"; "TextContent" ]);
    ("LanguageExtractor", [ "Annotation"; "Language" ]);
    ("Translator", [ "TextMediaUnit"; "TextContent"; "Annotation"; "Language" ]) ]

let rb rules_by_service =
  List.map (fun (s, rs) -> (s, List.map Rule_parser.parse rs)) rules_by_service

let test_clean_rulebook () =
  let book =
    rb
      [ ("Normaliser", [ "N1: //NativeContent[$x := @id] ==> //TextMediaUnit[$x := @src]" ]);
        ("LanguageExtractor",
         [ "L1: //TextMediaUnit[$x := @id]/TextContent ==> \
            //TextMediaUnit[$x := @id]/Annotation[Language]" ]) ]
  in
  check_int "no diagnostics" 0
    (List.length (Static_check.check ~order ~produces book))

let test_never_fires () =
  (* The Normaliser cannot depend on Annotations: only services running
     after it produce them. *)
  let book = rb [ ("Normaliser", [ "BAD: //Annotation ==> //TextMediaUnit" ]) ] in
  match Static_check.check ~order ~produces book with
  | [ Static_check.Rule_never_fires { service; rule; _ } ] ->
    check (Alcotest.pair Alcotest.string Alcotest.string) "who"
      ("Normaliser", "BAD") (service, rule)
  | ds ->
    Alcotest.failf "expected one Rule_never_fires, got %d: %s" (List.length ds)
      (String.concat "; " (List.map Static_check.diagnostic_to_string ds))

let test_same_service_source_ok () =
  (* A service may depend on elements it produces itself (earlier calls of
     the same service in a loop would satisfy it) — but only if it can run
     before itself, which a single occurrence cannot.  With one occurrence
     this is still dead. *)
  let book = rb [ ("LanguageExtractor", [ "S: //Language ==> //Annotation" ]) ] in
  match Static_check.check ~order ~produces book with
  | [ Static_check.Rule_never_fires _ ] -> ()
  | ds -> Alcotest.failf "expected Rule_never_fires, got %d" (List.length ds)

let test_source_pseudo_service () =
  (* Depending on initial content is always fine. *)
  let book = rb [ ("Normaliser", [ "M: //MediaUnit ==> //TextMediaUnit" ]) ] in
  check_int "clean" 0 (List.length (Static_check.check ~order ~produces book))

let test_unknown_service () =
  let book = rb [ ("Ghost", [ "G: //MediaUnit ==> //TextMediaUnit" ]) ] in
  match Static_check.check ~order ~produces book with
  | [ Static_check.Unknown_service { service } ] ->
    check Alcotest.string "ghost" "Ghost" service
  | _ -> Alcotest.fail "expected Unknown_service"

let test_unsatisfiable_target () =
  (* The LanguageExtractor never produces TextMediaUnits. *)
  let book =
    rb [ ("LanguageExtractor", [ "T: //NativeContent ==> //TextMediaUnit" ]) ]
  in
  match Static_check.check ~order ~produces book with
  | [ Static_check.Unsatisfiable_target { element; _ } ] ->
    check Alcotest.string "element" "TextMediaUnit" element
  | ds ->
    Alcotest.failf "expected Unsatisfiable_target, got: %s"
      (String.concat "; " (List.map Static_check.diagnostic_to_string ds))

let test_conservative_on_wildcards () =
  let book = rb [ ("Normaliser", [ "W: //Unheard ==> //TextMediaUnit" ]) ] in
  (* Nobody declares <Unheard>: stay silent rather than guess. *)
  check_int "conservative" 0 (List.length (Static_check.check ~order ~produces book))

let test_observed_produces () =
  let doc = Workload.make_document ~units:2 ~seed:3 () in
  let services = Workload.standard_pipeline () in
  let trace = Orchestrator.execute doc services in
  let produces = Static_check.observed_produces doc trace in
  let of_service s = try List.assoc s produces with Not_found -> [] in
  check_bool "normaliser makes units" true
    (List.mem "TextMediaUnit" (of_service "Normaliser"));
  check_bool "extractor makes annotations" true
    (List.mem "Annotation" (of_service "LanguageExtractor"));
  check_bool "source owns media units" true
    (List.mem "MediaUnit" (of_service "Source"))

let test_prune_preserves_provenance () =
  (* Pruning dead rules must not change the inferred graph. *)
  let doc = Workload.make_document ~units:2 ~seed:11 () in
  let services = Workload.standard_pipeline () in
  let order = List.map Service.name services in
  let live =
    List.filter_map
      (fun svc ->
        Catalog.find (Service.name svc)
        |> Option.map (fun e ->
               (Service.name svc, List.map Rule_parser.parse e.Catalog.rules)))
      services
  in
  let book =
    ("Normaliser",
     List.assoc "Normaliser" live
     @ [ Rule_parser.parse "DEAD: //Annotation ==> //TextMediaUnit" ])
    :: List.remove_assoc "Normaliser" live
  in
  let exec = Engine.run doc services in
  let produces = Static_check.observed_produces doc exec.Engine.trace in
  let pruned = Static_check.prune ~order ~produces book in
  let n_rules b = List.fold_left (fun a (_, rs) -> a + List.length rs) 0 b in
  check_int "one rule pruned" (n_rules book - 1) (n_rules pruned);
  let key g =
    Prov_graph.links g
    |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
    |> List.sort_uniq compare
  in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "same graph"
    (key (Engine.provenance exec book))
    (key (Engine.provenance exec pruned))

let catalog_rulebook services =
  List.filter_map
    (fun svc ->
      Catalog.find (Service.name svc)
      |> Option.map (fun e ->
             (Service.name svc, List.map Rule_parser.parse e.Catalog.rules)))
    services

let test_unused_rules () =
  let doc = Workload.make_document ~units:2 ~seed:3 () in
  let services = Workload.standard_pipeline () in
  let book =
    catalog_rulebook services
    @ [ ("Normaliser", [ Rule_parser.parse "NEVER: //Annotation ==> //TextMediaUnit" ]) ]
  in
  let _, g = Engine.run_with_provenance doc services book in
  let unused = Static_check.unused_rules g book in
  check_bool "NEVER reported" true (List.mem ("Normaliser", "NEVER") unused);
  check_bool "N1 fired" false (List.mem ("Normaliser", "N1") unused)

let () =
  Alcotest.run "static"
    [ ( "check",
        [ Alcotest.test_case "clean rulebook" `Quick test_clean_rulebook;
          Alcotest.test_case "never fires" `Quick test_never_fires;
          Alcotest.test_case "self dependency" `Quick test_same_service_source_ok;
          Alcotest.test_case "Source pseudo-service" `Quick test_source_pseudo_service;
          Alcotest.test_case "unknown service" `Quick test_unknown_service;
          Alcotest.test_case "unsatisfiable target" `Quick test_unsatisfiable_target;
          Alcotest.test_case "conservative" `Quick test_conservative_on_wildcards ] );
      ( "integration",
        [ Alcotest.test_case "observed production map" `Quick test_observed_produces;
          Alcotest.test_case "prune preserves provenance" `Quick test_prune_preserves_provenance;
          Alcotest.test_case "unused rules" `Quick test_unused_rules ] ) ]
