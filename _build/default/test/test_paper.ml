(* Exact reproduction of every figure and worked example of the paper
   (the experiment index F1-F4 / E5-E9 of DESIGN.md). *)

open Weblab_xml
open Weblab_relalg
open Weblab_workflow
open Weblab_scenario
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

let e = lazy (Paper.run ())

let table_pairs t col1 col2 =
  Table.rows t
  |> List.map (fun row ->
         ( Value.to_string (Table.get t row col1),
           Value.to_string (Table.get t row col2) ))
  |> List.sort compare

let pairs = Alcotest.(list (pair string string))

(* F1: the control flow and the resources added per call. *)
let test_fig1_calls () =
  let e = Lazy.force e in
  check (Alcotest.list Alcotest.string) "control flow"
    [ "Source"; "Normaliser"; "LanguageExtractor"; "Translator" ]
    (List.map (fun c -> c.Trace.service) (Trace.calls e.Paper.trace))

let test_fig1_data_flow () =
  let e = Lazy.force e in
  let out t =
    Trace.resources_of_call e.Paper.trace (Option.get (Trace.call_at e.Paper.trace t))
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.string) "out(c0)" [ "r1"; "r3" ] (out 0);
  check (Alcotest.list Alcotest.string) "out(c1)" [ "r4"; "r5" ] (out 1);
  check (Alcotest.list Alcotest.string) "out(c2)" [ "r6" ] (out 2);
  check (Alcotest.list Alcotest.string) "out(c3)" [ "r8" ] (out 3)

(* F2: the Source table rows. *)
let test_fig2_source_table () =
  let e = Lazy.force e in
  let entries =
    Trace.entries e.Paper.trace
    |> List.map (fun en ->
           Printf.sprintf "%s %s t%d" en.Trace.uri en.Trace.call.Trace.service
             en.Trace.call.Trace.time)
  in
  check (Alcotest.list Alcotest.string) "Source"
    [ "r1 Source t0"; "r3 Source t0"; "r4 Normaliser t1"; "r5 Normaliser t1";
      "r6 LanguageExtractor t2"; "r8 Translator t3" ]
    entries

(* F2: the Provenance table: 4 -> 3, 6 -> 5, 8 -> 4 (explicit). *)
let expected_explicit = [ ("r4", "r3"); ("r6", "r5"); ("r8", "r4") ]

let graph_links ?(inherited = false) g =
  Prov_graph.links g
  |> List.filter (fun l -> l.Prov_graph.inherited = inherited)
  |> List.map (fun l -> (l.Prov_graph.from_uri, l.Prov_graph.to_uri))
  |> List.sort_uniq compare

let test_fig2_provenance_links () =
  let e = Lazy.force e in
  List.iter
    (fun strategy ->
      let g = Figures.explicit_graph ~strategy e in
      check pairs "explicit links" expected_explicit (graph_links g))
    [ `Replay; `Rewrite ]

(* §4: the implicit link 8 -> 6 mentioned in the text, via inheritance. *)
let test_inherited_links () =
  let e = Lazy.force e in
  let g = Figures.inherited_graph e in
  let inh = graph_links ~inherited:true g in
  check_bool "8 -> 6" true (List.mem ("r8", "r6") inh);
  check_bool "8 -> 5" true (List.mem ("r8", "r5") inh);
  (* "node 4 depends on 2, which is an ancestor of 3": node 2 is unlabeled,
     so over labeled resources 4 inherits the dependency on r1 instead. *)
  check_bool "4 -> 1" true (List.mem ("r4", "r1") inh);
  check_bool "graph acyclic" true (Prov_graph.is_acyclic g);
  check_bool "temporally sound" true (Prov_graph.temporally_sound g)

(* F3: mapping round trip. *)
let test_fig3_mappings () =
  List.iter
    (fun m ->
      let r = Rule_parser.parse m in
      let r' = Rule_parser.parse (Rule.to_string r) in
      check_bool m true (Rule.source r = Rule.source r' && Rule.target r = Rule.target r'))
    Paper.mapping_syntax

(* F4: the document states. *)
let test_fig4_states () =
  let e = Lazy.force e in
  let expected_d0 = "d0:\n  R r1\n    M 2\n      N 3\n" in
  check_str "d0" expected_d0 (Figures.render_state e 0);
  let expected_d1 =
    "d1:\n  R r1\n    M 2\n      N r3\n    T r4\n      C r5\n"
  in
  check_str "d1" expected_d1 (Figures.render_state e 1);
  let expected_d3 =
    "d3:\n  R r1\n    M 2\n      N r3\n    T r4\n      C r5\n      A r6\n\
     \        L 7\n    T r8\n      C 9\n      A 10\n        L 11\n"
  in
  check_str "d3" expected_d3 (Figures.render_state e 3)

let test_fig4_containment () =
  let e = Lazy.force e in
  let s i = Paper.state e i in
  List.iter
    (fun i ->
      check_bool
        (Printf.sprintf "d%d in d%d" i (i + 1))
        true
        (Doc_state.contains ~smaller:(s i) ~larger:(s (i + 1))))
    [ 0; 1; 2 ];
  check_bool "monotone timestamps" true (Doc_state.timestamps_monotonic e.Paper.doc)

(* The detected language must be French for M3 to fire. *)
let test_language_detected () =
  let e = Lazy.force e in
  let r4 = Option.get (Tree.find_resource e.Paper.doc "r4") in
  check_str "fr" "fr"
    (Option.get (Weblab_services.Schema.language_of_unit e.Paper.doc r4));
  let r8 = Option.get (Tree.find_resource e.Paper.doc "r8") in
  check_str "en" "en"
    (Option.get (Weblab_services.Schema.language_of_unit e.Paper.doc r8))

(* E5: the embedding tables. *)
let test_ex5_tables () =
  let e = Lazy.force e in
  let t = Figures.pattern_result e ~phi:1 ~state:1 in
  check pairs "R_phi1(d1)" [ ("r5", "r4") ] (table_pairs t "$r" "$x");
  let t = Figures.pattern_result e ~phi:3 ~state:2 in
  check pairs "R_phi3(d2)" [ ("r6", "r4") ] (table_pairs t "$r" "$x");
  let t = Figures.pattern_result e ~phi:4 ~state:2 in
  check pairs "R_phi4(d2)" [ ("r4", "r1") ] (table_pairs t "$r" "$x");
  let t = Figures.pattern_result e ~phi:4 ~state:3 in
  check pairs "R_phi4(d3)" [ ("r4", "r1"); ("r8", "r1") ] (table_pairs t "$r" "$x")

(* phi2 is an equivalent rewriting of phi1 (Definition 4, condition 3). *)
let test_ex3_phi2_equiv_phi1 () =
  let e = Lazy.force e in
  List.iter
    (fun i ->
      let t1 = Weblab_xpath.Eval.eval_state (Paper.state e i) (Paper.phi 1) in
      let t2 = Weblab_xpath.Eval.eval_state (Paper.state e i) (Paper.phi 2) in
      check pairs
        (Printf.sprintf "phi1 = phi2 on d%d" i)
        (table_pairs t1 "r" "x") (table_pairs t2 "r" "x"))
    [ 0; 1; 2; 3 ]

(* E6: the join tables. *)
let test_ex6_joins () =
  let e = Lazy.force e in
  let t = Figures.ex6_table e ~rule:1 ~from_state:1 ~to_state:2 in
  check pairs "M1(d1,d2)" [ ("r5", "r6") ] (table_pairs t "$in" "$out");
  let t = Figures.ex6_table e ~rule:2 ~from_state:2 ~to_state:3 in
  check pairs "M2(d2,d3)" [ ("r4", "r4"); ("r4", "r8") ]
    (table_pairs t "$in" "$out")

(* E7: the restriction to out(c3) keeps only 8 -> 4. *)
let test_ex7_restriction () =
  let e = Lazy.force e in
  check pairs "M2(c3)" [ ("r8", "r4") ] (List.sort compare (Figures.ex7_links e))

(* E8: the generated XQuery for phi1. *)
let test_ex8_query_text () =
  let expected =
    "for $v1 in //TextMediaUnit,\n\
    \    $v2 in $v1/TextContent\n\
     let $x := $v1/@id\n\
     return <emb><r>{$v2/@id}</r><x>{$x}</x></emb>"
  in
  check_str "example 8" expected (Figures.ex8 (Lazy.force e))

(* E9: the optimized query merges the id join and drops a for-clause. *)
let test_ex9_optimization () =
  let naive, optimized = Figures.ex9_queries () in
  let fors q =
    List.length
      (List.filter
         (function Weblab_xquery.Xq_ast.For _ -> true | _ -> false)
         q.Weblab_xquery.Xq_ast.clauses)
  in
  check_int "naive fors" 4 (fors naive);
  check_int "optimized fors" 3 (fors optimized)

(* E9 semantics: naive and optimized queries compute the same links as the
   native engine on the final document. *)
let test_ex9_semantics () =
  let e = Lazy.force e in
  let naive, optimized = Figures.ex9_queries () in
  let run q =
    let t = Weblab_xquery.Xq_eval.run e.Paper.doc q in
    table_pairs t "in" "out"
  in
  check pairs "naive = optimized" (run naive) (run optimized);
  (* the rule is M2 for call c2: link 6 <- 5 *)
  check pairs "xquery result" [ ("r5", "r6") ] (run naive)

(* The full M3 rule (with its existential path comparisons) compiled to
   XQuery and evaluated on the final document reproduces the engine's
   link for c3. *)
let test_m3_xquery_compilation () =
  let e = Lazy.force e in
  let m3 = Rule_parser.parse Paper.m3 in
  let q =
    Weblab_xquery.Xq_compile.compile_rule_query (Rule.source m3) (Rule.target m3)
      ~service:"Translator" ~time:3
  in
  let t = Weblab_xquery.Xq_eval.run e.Paper.doc q in
  check pairs "m3 via xquery" [ ("r4", "r8") ] (table_pairs t "in" "out");
  (* and the query survives the print/parse round-trip *)
  let q' = Weblab_xquery.Xq_parser.parse (Weblab_xquery.Xq_print.to_string q) in
  let t' = Weblab_xquery.Xq_eval.run e.Paper.doc q' in
  check pairs "after text round-trip" [ ("r4", "r8") ] (table_pairs t' "in" "out")

(* PROV export of the running example. *)
let test_prov_export () =
  let e = Lazy.force e in
  let g = Figures.explicit_graph e in
  let store = Prov_export.to_store g in
  let open Weblab_rdf in
  let count q = Table.cardinality (Sparql.run store q) in
  check_int "entities" 6 (count "SELECT ?e WHERE { ?e a prov:Entity }");
  check_int "activities" 4 (count "SELECT ?a WHERE { ?a a prov:Activity }");
  check_int "derivations" 3
    (count "SELECT ?b ?a WHERE { ?b prov:wasDerivedFrom ?a }");
  (* (Translator,t3) wasInformedBy (Normaliser,t1) through 8 -> 4 *)
  check_int "informed" 1
    (count
       "SELECT ?x WHERE { \
        <http://weblab.ow2.org/prov#call/Translator-3> prov:wasInformedBy ?x }")

(* §2: call-level lineage of the running example. *)
let test_call_lineage () =
  let e = Lazy.force e in
  let g = Figures.inherited_graph e in
  let c3 = { Trace.service = "Translator"; time = 3 } in
  let informed = Query.informed_by_transitive g c3 in
  let services = List.map (fun c -> c.Trace.service) informed in
  (* With the implicit link 8 -> 6, the Translator used information
     generated by the LanguageExtractor (the example in §2). *)
  check_bool "informed by LanguageExtractor" true
    (List.mem "LanguageExtractor" services);
  check_bool "informed by Normaliser" true (List.mem "Normaliser" services)

let () =
  Alcotest.run "paper"
    [ ( "figure1",
        [ Alcotest.test_case "control flow" `Quick test_fig1_calls;
          Alcotest.test_case "data flow" `Quick test_fig1_data_flow ] );
      ( "figure2",
        [ Alcotest.test_case "source table" `Quick test_fig2_source_table;
          Alcotest.test_case "provenance links" `Quick test_fig2_provenance_links;
          Alcotest.test_case "inherited links" `Quick test_inherited_links ] );
      ( "figure3", [ Alcotest.test_case "mappings" `Quick test_fig3_mappings ] );
      ( "figure4",
        [ Alcotest.test_case "states" `Quick test_fig4_states;
          Alcotest.test_case "containment" `Quick test_fig4_containment;
          Alcotest.test_case "language" `Quick test_language_detected ] );
      ( "example5",
        [ Alcotest.test_case "embedding tables" `Quick test_ex5_tables;
          Alcotest.test_case "phi2 equivalence" `Quick test_ex3_phi2_equiv_phi1 ] );
      ( "example6", [ Alcotest.test_case "join tables" `Quick test_ex6_joins ] );
      ( "example7", [ Alcotest.test_case "restriction" `Quick test_ex7_restriction ] );
      ( "example8", [ Alcotest.test_case "query text" `Quick test_ex8_query_text ] );
      ( "example9",
        [ Alcotest.test_case "optimization" `Quick test_ex9_optimization;
          Alcotest.test_case "semantics" `Quick test_ex9_semantics;
          Alcotest.test_case "M3 compiles" `Quick test_m3_xquery_compilation ] );
      ( "prov",
        [ Alcotest.test_case "rdf export" `Quick test_prov_export;
          Alcotest.test_case "call lineage" `Quick test_call_lineage ] ) ]
