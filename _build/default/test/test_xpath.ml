(* Tests for the XPath pattern engine: parser, printer, and the embedding
   semantics of Definitions 6 and 7. *)

open Weblab_xml
open Weblab_xpath
open Weblab_relalg

let check = Alcotest.check
let check_int = check Alcotest.int
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool

let parse = Parser.pattern

(* A table rendered as a sorted list of "col=val" rows, for compact
   assertions. *)
let table_rows t =
  Table.rows t
  |> List.map (fun row ->
         Table.columns t
         |> List.filter (fun c -> c <> "node")
         |> List.map (fun c -> Printf.sprintf "%s=%s" c (Value.to_string (Table.get t row c)))
         |> List.sort compare
         |> String.concat " ")
  |> List.sort compare

let doc () =
  Xml_parser.parse
    {|<R id="r1">
        <T id="r2" kind="a"><C id="c2">hello world</C></T>
        <T id="r3" kind="b">
          <C id="c3">bonjour</C>
          <A id="a3"><L>fr</L></A>
        </T>
        <D><T id="r4"><C id="c4">deep</C></T></D>
      </R>|}

let eval ?require_uri ?guards pattern_str =
  Eval.eval ?require_uri ?guards (doc ()) (parse pattern_str)

(* --- parser --- *)

let test_parse_shapes () =
  let cases =
    [ ("/R", 1); ("//T", 1); ("/R//T", 2); ("//T[$x := @id]/C", 2);
      ("//T[1]", 1); ("//T[@id][A/L = 'fr']", 1);
      ("//T[$x := @id][$p := position()]/C[$r := @id]", 2);
      ("//A[B][$p := position()]/B", 2); ("//*", 1) ]
  in
  List.iter
    (fun (s, steps) ->
      check_int (Printf.sprintf "steps of %s" s) steps (List.length (parse s)))
    cases

let test_parse_variables () =
  let p = parse "//T[$x := @id][$y := @kind]/C[$z := @id]" in
  check (Alcotest.list Alcotest.string) "variables" [ "x"; "y"; "z" ]
    (Ast.variables p);
  let q = parse "//T[$x := @id]/C[@id = $w]" in
  check (Alcotest.list Alcotest.string) "free" [ "w" ] (Ast.free_variables q)

let expect_parse_error s =
  match parse s with
  | _ -> Alcotest.failf "expected parse error for %S" s
  | exception Parser.Error _ -> ()

let test_parse_errors () =
  expect_parse_error "";
  expect_parse_error "T";                  (* no leading slash *)
  expect_parse_error "//T[";
  expect_parse_error "//T[]";
  expect_parse_error "//T[$x := ]";
  expect_parse_error "//T[$x := f(@id)]";  (* binding source must be @a/position() *)
  expect_parse_error "//T[@id = ]";
  expect_parse_error "//T/"

let test_parse_skolem () =
  let p = parse "//C[f($x) = @id]" in
  match p with
  | [ { Ast.preds = [ Ast.Cmp (Ast.Skolem ("f", [ Ast.Var "x" ]), Ast.Eq, Ast.Attr "id") ]; _ } ] ->
    ()
  | _ -> Alcotest.fail "unexpected skolem AST"

let test_parse_boolean () =
  let p = parse "//T[@a = '1' and @b = '2' or not(@c)]" in
  match p with
  | [ { Ast.preds = [ Ast.Or (Ast.And _, Ast.Not _) ]; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected boolean AST (or should be outermost)"

(* --- printer round-trip --- *)

let test_print_roundtrip () =
  let patterns =
    [ "/Resource//NativeContent"; "//TextMediaUnit[1]";
      "//TextMediaUnit[$x := @id]/TextContent";
      "//TextMediaUnit[$x := @id]/Annotation[Language]";
      "//TextMediaUnit[Annotation/Language = 'fr']";
      "//T[@id][$x := @id]/C[$r := @id]";
      "//A[B][$p := position()]/B"; "//C[$p = position()]";
      "//A[$x := @id][@t < 5]"; "//C[f($x) = @id]";
      "//T[@a = '1' and @b != '2']"; "//T[not(@c)]" ]
  in
  List.iter
    (fun s ->
      let p = parse s in
      let printed = Print.pattern_to_string p in
      check_bool (Printf.sprintf "round-trip %s -> %s" s printed) true
        (parse printed = p))
    patterns

(* --- evaluation --- *)

let test_eval_child_vs_descendant () =
  check_int "/R/T" 2 (Table.cardinality (eval "/R/T"));
  check_int "//T" 3 (Table.cardinality (eval "//T"));
  check_int "/R//T" 3 (Table.cardinality (eval "/R//T"));
  check_int "/T (root is R)" 0 (Table.cardinality (eval "/T"));
  check_int "//*" 10 (Table.cardinality (eval ~require_uri:false "//*"))

let test_eval_require_uri () =
  (* //D has no @id: dropped when URIs are required. *)
  check_int "D dropped" 0 (Table.cardinality (eval "//D"));
  check_int "D kept" 1 (Table.cardinality (eval ~require_uri:false "//D"))

let test_eval_bindings () =
  let t = eval "//T[$x := @id]/C" in
  check (Alcotest.list Alcotest.string) "bindings"
    [ "r=c2 x=r2"; "r=c3 x=r3"; "r=c4 x=r4" ]
    (table_rows t)

let test_eval_binding_requires_attr () =
  (* [$x := @kind] drops T nodes without @kind (condition 2 of Def. 4). *)
  let t = eval "//T[$x := @kind]" in
  check (Alcotest.list Alcotest.string) "kinds" [ "r=r2 x=a"; "r=r3 x=b" ]
    (table_rows t)

let test_eval_predicates () =
  check_int "attr equality" 1 (Table.cardinality (eval "//T[@kind = 'a']"));
  check_int "attr inequality" 1 (Table.cardinality (eval "//T[@kind != 'a']"));
  check_int "attr exists" 2 (Table.cardinality (eval "//T[@kind]"));
  check_int "path exists" 1 (Table.cardinality (eval "//T[A/L]"));
  check_int "path equality" 1 (Table.cardinality (eval "//T[A/L = 'fr']"));
  check_int "path inequality none" 0 (Table.cardinality (eval "//T[A/L = 'en']"));
  check_int "and" 1 (Table.cardinality (eval "//T[@kind = 'b' and A/L = 'fr']"));
  check_int "or" 2 (Table.cardinality (eval "//T[@kind = 'a' or A/L = 'fr']"));
  check_int "not" 2 (Table.cardinality (eval "//T[not(A/L)]"))

let test_eval_position () =
  (* //T[1] selects the first T in the candidate list (document order). *)
  let t = eval "//T[1]" in
  check (Alcotest.list Alcotest.string) "first T" [ "r=r2" ] (table_rows t);
  (* /R/T[2] selects the second T child. *)
  let t = eval "/R/T[2]" in
  check (Alcotest.list Alcotest.string) "second T" [ "r=r3" ] (table_rows t);
  (* position() binding *)
  let t = eval "/R/T[$p := position()]" in
  check (Alcotest.list Alcotest.string) "positions" [ "p=1 r=r2"; "p=2 r=r3" ]
    (table_rows t);
  (* position() comparison *)
  let t = eval "/R/T[position() = 2]" in
  check (Alcotest.list Alcotest.string) "pos cmp" [ "r=r3" ] (table_rows t)

let test_eval_position_after_filter () =
  (* Predicates filter stepwise: [@kind = 'b'][1] is the first among the
     remaining candidates. *)
  let t = eval "//T[@kind = 'b'][1]" in
  check (Alcotest.list Alcotest.string) "filtered first" [ "r=r3" ] (table_rows t)

let test_eval_numeric_comparison () =
  let doc =
    Xml_parser.parse
      "<R id=\"r\"><E id=\"e1\" t=\"2\"/><E id=\"e2\" t=\"10\"/></R>"
  in
  let n tbl = Table.cardinality tbl in
  (* numeric, not lexicographic: "10" > "2" *)
  check_int "lt" 1 (n (Eval.eval doc (parse "//E[@t < 10]")));
  check_int "le" 2 (n (Eval.eval doc (parse "//E[@t <= 10]")));
  check_int "gt" 1 (n (Eval.eval doc (parse "//E[@t > 2]")));
  check_int "eq loose" 1 (n (Eval.eval doc (parse "//E[@t = 2]")))

let test_eval_var_guard () =
  let guards = { Eval.visible = (fun _ -> true); env = [ ("w", Value.Str "r3") ] } in
  let t = Eval.eval ~guards (doc ()) (parse "//T[@id = $w]") in
  check (Alcotest.list Alcotest.string) "env var" [ "r=r3" ] (table_rows t)

let test_eval_visibility_guard () =
  let d = doc () in
  (* Hide the subtree rooted at the A annotation. *)
  let a = Option.get (Tree.find_resource d "a3") in
  let hidden = Tree.descendant_or_self d a in
  let guards =
    { Eval.visible = (fun n -> not (List.mem n hidden)); env = [] }
  in
  check_int "A invisible" 0
    (Table.cardinality (Eval.eval ~guards d (parse "//T[A/L]")));
  check_int "A visible by default" 1
    (Table.cardinality (Eval.eval d (parse "//T[A/L]")))

let test_eval_skolem_binding () =
  (* Skolem terms evaluate to canonical ground strings. *)
  let d = doc () in
  let p =
    [ { Ast.axis = Ast.Descendant; test = Ast.Name "T";
        preds = [ Ast.Bind ("x", Ast.Attr "id");
                  Ast.Bind ("sk", Ast.Skolem ("f", [ Ast.Var "x" ])) ] } ]
  in
  let t = Eval.eval d p in
  check (Alcotest.list Alcotest.string) "skolem terms"
    [ "r=r2 sk=f(r2) x=r2"; "r=r3 sk=f(r3) x=r3"; "r=r4 sk=f(r4) x=r4" ]
    (table_rows (Table.project t [ "r"; "x"; "sk" ]))

let test_eval_descendant_or_self_step () =
  let p = Ast.add_descendant_or_self (parse "//T[@kind = 'b']") in
  let t = Eval.eval ~require_uri:false (doc ()) p in
  (* T r3 plus all its element descendants: C, A, L. *)
  check_int "dos count" 4 (Table.cardinality t)

let test_eval_distinct () =
  (* Two T nodes are descendants of both R and D contexts; results stay a
     set. *)
  let t = eval "/R//T//C" in
  check_int "no dups" 3 (Table.cardinality t)

(* --- extended axes and functions --- *)

let axes_doc () =
  Xml_parser.parse
    {|<R id="r1">
        <S id="s1"><A id="a1"/><B id="b1"/><A id="a2"/><C id="c1"/></S>
        <S id="s2"><A id="a3"/></S>
      </R>|}

let axes_eval ?require_uri pat =
  table_rows (Eval.eval ?require_uri (axes_doc ()) (parse pat))

let test_axis_parent () =
  check (Alcotest.list Alcotest.string) "parent" [ "r=s1" ]
    (axes_eval "//B/parent::S");
  check (Alcotest.list Alcotest.string) "parent any" [ "r=s1" ]
    (axes_eval "//B/parent::*");
  check_int "root has no parent" 0
    (List.length (axes_eval "/R/parent::*"))

let test_axis_ancestor () =
  check (Alcotest.list Alcotest.string) "ancestor" [ "r=r1"; "r=s1" ]
    (axes_eval "//B/ancestor::*");
  check (Alcotest.list Alcotest.string) "ancestor-or-self"
    [ "r=b1"; "r=r1"; "r=s1" ]
    (axes_eval "//B/ancestor-or-self::*")

let test_axis_siblings () =
  check (Alcotest.list Alcotest.string) "following" [ "r=a2"; "r=c1" ]
    (axes_eval "//B/following-sibling::*");
  check (Alcotest.list Alcotest.string) "following A only" [ "r=a2" ]
    (axes_eval "//B/following-sibling::A");
  check (Alcotest.list Alcotest.string) "preceding" [ "r=a1" ]
    (axes_eval "//B/preceding-sibling::*")

let test_axis_explicit_names () =
  (* explicit child:: and descendant:: are the implicit forms *)
  check (Alcotest.list Alcotest.string) "child::"
    (axes_eval "/R/S") (axes_eval "/child::R/child::S");
  check (Alcotest.list Alcotest.string) "self::" [ "r=b1" ]
    (axes_eval "//B/self::B");
  check_int "self:: mismatched" 0 (List.length (axes_eval "//B/self::A"))

let test_axis_in_predicates () =
  (* axes inside predicate paths *)
  check (Alcotest.list Alcotest.string) "pred parent" [ "r=b1" ]
    (axes_eval "//B[parent::S]");
  check (Alcotest.list Alcotest.string) "pred sibling" [ "r=a1" ]
    (axes_eval "//A[following-sibling::B]")

let test_fn_last () =
  check (Alcotest.list Alcotest.string) "last()" [ "r=s2" ]
    (axes_eval "/R/S[position() = last()]");
  check (Alcotest.list Alcotest.string) "last child of s1" [ "r=c1" ]
    (axes_eval "//S[@id = 's1']/*[position() = last()]")

let test_fn_count () =
  check (Alcotest.list Alcotest.string) "count = 2" [ "r=s1" ]
    (axes_eval "//S[count(A) = 2]");
  check (Alcotest.list Alcotest.string) "count >= 1" [ "r=s1"; "r=s2" ]
    (axes_eval "//S[count(A) >= 1]");
  check_int "count of nothing" 0 (List.length (axes_eval "//S[count(Z) > 0]"))

let test_fn_strings () =
  check (Alcotest.list Alcotest.string) "contains" [ "r=s1"; "r=s2" ]
    (axes_eval "//S[contains(@id, 's')]");
  check (Alcotest.list Alcotest.string) "starts-with" [ "r=a1"; "r=a2"; "r=a3" ]
    (axes_eval "//*[starts-with(@id, 'a')]");
  check (Alcotest.list Alcotest.string) "ends-with" [ "r=a1"; "r=b1"; "r=c1"; "r=r1"; "r=s1" ]
    (axes_eval "//*[ends-with(@id, '1')]");
  check (Alcotest.list Alcotest.string) "string-length" [ "r=a1"; "r=a2" ]
    (axes_eval "//S[@id = 's1']/*[string-length(@id) = 2 and starts-with(@id, 'a')]")

let test_path_attr_operand () =
  let d =
    Xml_parser.parse
      {|<R id="r"><G id="g1"><M ref="a"/><M ref="b"/></G>
        <G id="g2"><M ref="c"/></G></R>|}
  in
  let rows pat = table_rows (Eval.eval d (parse pat)) in
  check (Alcotest.list Alcotest.string) "attr of path" [ "r=g1" ]
    (rows "//G[M/@ref = 'b']");
  (* existential over several attribute values *)
  check (Alcotest.list Alcotest.string) "both groups" [ "r=g1"; "r=g2" ]
    (rows "//G[M/@ref != 'zzz']");
  (* round-trip *)
  let p = parse "//G[M/@ref = 'b']" in
  check_bool "print/parse" true (parse (Print.pattern_to_string p) = p)

let test_extended_roundtrip () =
  let patterns =
    [ "//B/parent::S"; "//B/ancestor-or-self::*"; "//A[following-sibling::B]";
      "//S[count(A) = 2]"; "//S[position() = last()]";
      "//S[contains(@id, 's')]"; "//A[string-length(@id) > 1]" ]
  in
  List.iter
    (fun str ->
      let p = parse str in
      check_bool str true (parse (Print.pattern_to_string p) = p))
    patterns

let test_matching_nodes () =
  let d = doc () in
  let nodes = Eval.matching_nodes d (parse "//T") in
  check_int "three nodes" 3 (List.length nodes);
  List.iter (fun n -> check_str "name" "T" (Tree.name d n)) nodes

let () =
  Alcotest.run "xpath"
    [ ( "parser",
        [ Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "variables" `Quick test_parse_variables;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "skolem" `Quick test_parse_skolem;
          Alcotest.test_case "boolean precedence" `Quick test_parse_boolean ] );
      ( "printer",
        [ Alcotest.test_case "round-trip" `Quick test_print_roundtrip ] );
      ( "eval",
        [ Alcotest.test_case "axes" `Quick test_eval_child_vs_descendant;
          Alcotest.test_case "require uri" `Quick test_eval_require_uri;
          Alcotest.test_case "bindings" `Quick test_eval_bindings;
          Alcotest.test_case "binding needs attr" `Quick test_eval_binding_requires_attr;
          Alcotest.test_case "predicates" `Quick test_eval_predicates;
          Alcotest.test_case "position" `Quick test_eval_position;
          Alcotest.test_case "position after filter" `Quick test_eval_position_after_filter;
          Alcotest.test_case "numeric comparison" `Quick test_eval_numeric_comparison;
          Alcotest.test_case "external variables" `Quick test_eval_var_guard;
          Alcotest.test_case "visibility guard" `Quick test_eval_visibility_guard;
          Alcotest.test_case "skolem values" `Quick test_eval_skolem_binding;
          Alcotest.test_case "descendant-or-self" `Quick test_eval_descendant_or_self_step;
          Alcotest.test_case "distinct" `Quick test_eval_distinct;
          Alcotest.test_case "matching nodes" `Quick test_matching_nodes ] );
      ( "extended axes",
        [ Alcotest.test_case "parent" `Quick test_axis_parent;
          Alcotest.test_case "ancestor" `Quick test_axis_ancestor;
          Alcotest.test_case "siblings" `Quick test_axis_siblings;
          Alcotest.test_case "explicit names" `Quick test_axis_explicit_names;
          Alcotest.test_case "in predicates" `Quick test_axis_in_predicates ] );
      ( "functions",
        [ Alcotest.test_case "last" `Quick test_fn_last;
          Alcotest.test_case "count" `Quick test_fn_count;
          Alcotest.test_case "string functions" `Quick test_fn_strings;
          Alcotest.test_case "path/@attr operand" `Quick test_path_attr_operand;
          Alcotest.test_case "round-trip" `Quick test_extended_roundtrip ] ) ]
