test/test_skolem.mli:
