test/test_rules.ml: Alcotest Doc_state List Mapping Option Orchestrator Pattern_rewrite Rule Rule_parser Service Trace Tree Weblab_prov Weblab_workflow Weblab_xml Weblab_xpath
