test/test_workflow.ml: Alcotest Doc_state List Option Orchestrator Service String Trace Tree Weblab_workflow Weblab_xml
