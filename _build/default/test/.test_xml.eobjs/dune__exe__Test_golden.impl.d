test/test_golden.ml: Alcotest Engine Inheritance List Option Printf Prov_graph Rule_parser Service Strategy String Sys Trace_io Weblab_prov Weblab_scenario Weblab_services Weblab_workflow Weblab_xml
