test/test_xquery.ml: Alcotest Ast Eval List Parser Printf String Table Value Weblab_relalg Weblab_xml Weblab_xpath Weblab_xquery Xml_parser Xq_ast Xq_compile Xq_eval Xq_optimize Xq_parser Xq_print
