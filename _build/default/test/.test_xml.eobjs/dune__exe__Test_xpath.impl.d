test/test_xpath.ml: Alcotest Ast Eval List Option Parser Print Printf String Table Tree Value Weblab_relalg Weblab_xml Weblab_xpath Xml_parser
