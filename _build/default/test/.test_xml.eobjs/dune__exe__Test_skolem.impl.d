test/test_skolem.ml: Alcotest Doc_state List Mapping Prov_export Prov_graph Prov_vocab Rule Rule_parser Skolem Triple_store Weblab_prov Weblab_rdf Weblab_xml Xml_parser
