test/test_query.ml: Alcotest Dot Explain Lazy List Paper Prov_export Prov_graph Prov_vocab Query String Trace Triple_store Turtle Weblab_prov Weblab_rdf Weblab_scenario Weblab_workflow
