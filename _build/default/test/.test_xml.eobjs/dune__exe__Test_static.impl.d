test/test_static.ml: Alcotest Catalog Engine List Option Orchestrator Prov_graph Rule_parser Service Static_check String Weblab_prov Weblab_services Weblab_workflow Workload
