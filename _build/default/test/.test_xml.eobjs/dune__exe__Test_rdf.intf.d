test/test_rdf.mli:
