test/test_relalg.ml: Alcotest Array List Option Table Value Weblab_relalg
