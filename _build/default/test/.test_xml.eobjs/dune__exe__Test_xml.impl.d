test/test_xml.ml: Alcotest Diff Doc_state List Option Printer Printf String Tree Weblab_xml Xml_parser
