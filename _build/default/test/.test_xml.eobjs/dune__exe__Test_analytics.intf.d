test/test_analytics.mli:
