test/test_rdf.ml: Alcotest List Printf Prov_vocab Sparql String Table Term Triple_store Turtle Value Weblab_rdf Weblab_relalg
