(* Tests for the binding-table algebra (π, ⋈, ρ, σ, ∪) of Definition 8. *)

open Weblab_relalg

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let s x = Value.Str x
let i x = Value.Int x

let t1 () =
  Table.of_rows [ "r"; "x" ]
    [ [| s "r5"; s "r4" |]; [| s "r6"; s "r4" |]; [| s "r7"; s "r9" |] ]

let test_create_duplicate_cols () =
  Alcotest.check_raises "dup cols"
    (Invalid_argument "Table.create: duplicate column names") (fun () ->
      ignore (Table.create [ "a"; "a" ]))

let test_add_row_width () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "width"
    (Invalid_argument "Table.add_row: row width does not match the schema")
    (fun () -> Table.add_row t [| s "1" |])

let test_get () =
  let t = t1 () in
  let row = List.hd (Table.rows t) in
  check_bool "get r" true (Value.equal (Table.get t row "r") (s "r5"));
  check_bool "get x" true (Value.equal (Table.get t row "x") (s "r4"))

let test_project () =
  let t = Table.project (t1 ()) [ "x" ] in
  check (Alcotest.list Alcotest.string) "cols" [ "x" ] (Table.columns t);
  (* set semantics: r4 appears once *)
  check_int "distinct" 2 (Table.cardinality t)

let test_project_reorder () =
  let t = Table.project (t1 ()) [ "x"; "r" ] in
  check (Alcotest.list Alcotest.string) "cols" [ "x"; "r" ] (Table.columns t);
  let row = List.hd (Table.rows t) in
  check_bool "reordered" true (Value.equal row.(0) (s "r4"))

let test_rename () =
  let t = Table.rename (t1 ()) [ ("r", "in") ] in
  check (Alcotest.list Alcotest.string) "cols" [ "in"; "x" ] (Table.columns t);
  check_int "rows preserved" 3 (Table.cardinality t)

let test_select () =
  let t =
    Table.select (t1 ()) (fun t row -> Value.equal (Table.get t row "x") (s "r4"))
  in
  check_int "selected" 2 (Table.cardinality t)

let test_natural_join () =
  let a = t1 () in
  let b =
    Table.of_rows [ "x"; "out" ] [ [| s "r4"; s "o1" |]; [| s "r9"; s "o2" |] ]
  in
  let j = Table.natural_join a b in
  check (Alcotest.list Alcotest.string) "cols" [ "r"; "x"; "out" ] (Table.columns j);
  check_int "join size" 3 (Table.cardinality j)

let test_join_multiple_matches () =
  let a = Table.of_rows [ "k"; "l" ] [ [| s "1"; s "a" |] ] in
  let b =
    Table.of_rows [ "k"; "m" ] [ [| s "1"; s "x" |]; [| s "1"; s "y" |] ]
  in
  let j = Table.natural_join a b in
  check_int "fanout" 2 (Table.cardinality j)

let test_join_no_shared_is_product () =
  let a = Table.of_rows [ "a" ] [ [| s "1" |]; [| s "2" |] ] in
  let b = Table.of_rows [ "b" ] [ [| s "x" |]; [| s "y" |]; [| s "z" |] ] in
  let j = Table.natural_join a b in
  check_int "cross product" 6 (Table.cardinality j)

let test_join_empty () =
  let a = Table.of_rows [ "a" ] [] in
  let b = Table.of_rows [ "a" ] [ [| s "1" |] ] in
  check_int "empty join" 0 (Table.cardinality (Table.natural_join a b));
  check_int "empty join sym" 0 (Table.cardinality (Table.natural_join b a))

let test_union () =
  let a = Table.of_rows [ "a"; "b" ] [ [| s "1"; s "x" |] ] in
  let b = Table.of_rows [ "b"; "a" ] [ [| s "x"; s "1" |]; [| s "y"; s "2" |] ] in
  (* column order differs; rows are aligned by name *)
  let u = Table.union a b in
  check_int "union dedups" 2 (Table.cardinality u)

let test_union_schema_mismatch () =
  let a = Table.of_rows [ "a" ] [] in
  let b = Table.of_rows [ "b" ] [] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.union: schemas differ")
    (fun () -> ignore (Table.union a b))

let test_distinct () =
  let t =
    Table.of_rows [ "a" ] [ [| s "1" |]; [| s "1" |]; [| i 1 |]; [| s "2" |] ]
  in
  (* Str "1" and Int 1 are the same value under the loose comparison the
     whole algebra uses (joins hash the same way), so they collapse. *)
  check_int "distinct" 2 (Table.cardinality (Table.distinct t))

let test_equal () =
  let a = Table.of_rows [ "a"; "b" ] [ [| s "1"; s "x" |]; [| s "2"; s "y" |] ] in
  let b = Table.of_rows [ "b"; "a" ] [ [| s "y"; s "2" |]; [| s "x"; s "1" |] ] in
  check_bool "equal modulo order" true (Table.equal a b);
  let c = Table.of_rows [ "a"; "b" ] [ [| s "1"; s "x" |] ] in
  check_bool "different rows" false (Table.equal a c)

let test_value_semantics () =
  check_bool "str eq" true (Value.equal (s "a") (s "a"));
  check_bool "int-str loose" true (Value.equal (i 5) (s "5"));
  check_bool "int-str loose sym" true (Value.equal (s "5") (i 5));
  check_bool "not loose" false (Value.equal (s "5x") (i 5));
  check_bool "node neq str" false (Value.equal (Value.Node 1) (s "#1"));
  check_int "as_int str" 7 (Option.get (Value.as_int (s " 7 ")));
  check_bool "as_int none" true (Value.as_int (s "abc") = None)

let test_mapping_rule_expression () =
  (* The full Definition 8 expression on hand-built tables:
     π(in,out)(ρ(r→in) R_S ⋈ ρ(r→out) R_T). *)
  let r_s = Table.of_rows [ "r"; "x" ] [ [| s "r5"; s "r4" |] ] in
  let r_t = Table.of_rows [ "r"; "x" ] [ [| s "r6"; s "r4" |]; [| s "r9"; s "zz" |] ] in
  let j =
    Table.natural_join
      (Table.rename r_s [ ("r", "in") ])
      (Table.rename r_t [ ("r", "out") ])
  in
  let result = Table.project j [ "in"; "out" ] in
  check_int "one link" 1 (Table.cardinality result);
  let row = List.hd (Table.rows result) in
  check_bool "link endpoints" true
    (Value.equal (Table.get result row "in") (s "r5")
     && Value.equal (Table.get result row "out") (s "r6"))

let () =
  Alcotest.run "relalg"
    [ ( "table",
        [ Alcotest.test_case "duplicate columns" `Quick test_create_duplicate_cols;
          Alcotest.test_case "row width" `Quick test_add_row_width;
          Alcotest.test_case "get" `Quick test_get;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "project reorder" `Quick test_project_reorder;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "join fanout" `Quick test_join_multiple_matches;
          Alcotest.test_case "cross product" `Quick test_join_no_shared_is_product;
          Alcotest.test_case "empty join" `Quick test_join_empty;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "union mismatch" `Quick test_union_schema_mismatch;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "equal" `Quick test_equal ] );
      ( "values",
        [ Alcotest.test_case "semantics" `Quick test_value_semantics ] );
      ( "definition 8",
        [ Alcotest.test_case "rule expression" `Quick test_mapping_rule_expression ] ) ]
