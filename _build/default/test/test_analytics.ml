(* Tests for provenance analytics, the storage ablation and replay
   planning. *)

open Weblab_workflow
open Weblab_services
open Weblab_prov

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let rulebook services =
  List.filter_map
    (fun svc ->
      Catalog.find (Service.name svc)
      |> Option.map (fun e ->
             (Service.name svc, List.map Rule_parser.parse e.Catalog.rules)))
    services

let execution ?(units = 3) ?(seed = 19) () =
  let doc = Workload.make_document ~units ~seed () in
  let services = Workload.standard_pipeline ~extended:true () in
  let rb = rulebook services in
  Engine.run_with_provenance doc services rb

(* --- metrics --- *)

let test_metrics_basic () =
  let exec, g = execution () in
  let m = Analytics.metrics g in
  check_int "resources" (List.length (Prov_graph.labeled_resources g)) m.Analytics.resources;
  check_int "explicit" (Prov_graph.size g) m.Analytics.explicit_links;
  check_int "no inherited yet" 0 m.Analytics.inherited_links;
  check_bool "blowup 1.0" true (m.Analytics.blowup = 1.0);
  check_bool "depth positive" true (m.Analytics.depth >= 1);
  check_bool "rules counted" true (m.Analytics.links_per_rule <> []);
  ignore exec

let test_metrics_with_inheritance () =
  let exec, g = execution () in
  let g = Inheritance.close exec.Engine.doc g in
  let m = Analytics.metrics g in
  check_bool "inherited links exist" true (m.Analytics.inherited_links > 0);
  check_bool "blowup > 1" true (m.Analytics.blowup > 1.0);
  (* the report renders *)
  check_bool "report" true (String.length (Analytics.metrics_to_string m) > 40)

let test_metrics_depth_chain () =
  let g = Prov_graph.create () in
  Prov_graph.set_label g "a" { Trace.service = "S"; time = 1 };
  Prov_graph.set_label g "b" { Trace.service = "S"; time = 2 };
  Prov_graph.set_label g "c" { Trace.service = "S"; time = 3 };
  Prov_graph.add_link g ~from_uri:"b" ~to_uri:"a";
  Prov_graph.add_link g ~from_uri:"c" ~to_uri:"b";
  check_int "chain depth" 2 (Analytics.metrics g).Analytics.depth

(* --- storage ablation --- *)

let test_storage_ablation () =
  let exec, g = execution () in
  let ab = Analytics.storage_ablation exec.Engine.doc g in
  check_bool "materialized is larger" true
    (ab.Analytics.materialized_bytes > ab.Analytics.explicit_only_bytes);
  check_bool "savings in (0,1)" true
    (ab.Analytics.savings > 0.0 && ab.Analytics.savings < 1.0)

(* --- replay planning --- *)

let plan_graph () =
  (*   s1 -> n1 -> a1        s2 -> n2   (independent chains) *)
  let g = Prov_graph.create () in
  let label u s t = Prov_graph.set_label g u { Trace.service = s; time = t } in
  label "s1" "Source" 0;
  label "s2" "Source" 0;
  label "n1" "Normaliser" 1;
  label "n2" "Normaliser" 1;
  label "a1" "Annotator" 2;
  Prov_graph.add_link g ~from_uri:"n1" ~to_uri:"s1";
  Prov_graph.add_link g ~from_uri:"n2" ~to_uri:"s2";
  Prov_graph.add_link g ~from_uri:"a1" ~to_uri:"n1";
  g

let test_replay_plan_minimal () =
  let g = plan_graph () in
  let plan = Replay_plan.build g ~sources:[ "s1" ] in
  check (Alcotest.list Alcotest.string) "tainted" [ "a1"; "n1"; "s1" ]
    plan.Replay_plan.tainted;
  check (Alcotest.list Alcotest.string) "calls"
    [ "Normaliser@1"; "Annotator@2" ]
    (List.map
       (fun (c : Trace.call) -> Printf.sprintf "%s@%d" c.Trace.service c.Trace.time)
       plan.Replay_plan.calls);
  (* the untouched chain survives *)
  check_bool "n2 unaffected" true (List.mem "n2" plan.Replay_plan.unaffected);
  check_bool "s2 unaffected" true (List.mem "s2" plan.Replay_plan.unaffected)

let test_replay_plan_empty () =
  let g = plan_graph () in
  let plan = Replay_plan.build g ~sources:[ "ghost" ] in
  check_int "no calls" 0 (List.length plan.Replay_plan.calls);
  check (Alcotest.list Alcotest.string) "only the ghost itself" [ "ghost" ]
    plan.Replay_plan.tainted

let test_replay_plan_end_to_end () =
  (* On a real pipeline: tainting one media unit re-runs every downstream
     call, but never flags resources of the other units' chains. *)
  let exec, g = execution ~units:2 () in
  let g = Inheritance.close exec.Engine.doc g in
  let plan = Replay_plan.build g ~sources:[ "mu1" ] in
  check_bool "some calls to re-run" true (plan.Replay_plan.calls <> []);
  (* calls are ordered by timestamp *)
  let times = List.map (fun (c : Trace.call) -> c.Trace.time) plan.Replay_plan.calls in
  check_bool "ordered" true (List.sort compare times = times);
  (* mu2's normalized unit is not tainted by mu1 *)
  let mu2_units =
    Prov_graph.links g
    |> List.filter_map (fun l ->
           if l.Prov_graph.to_uri = "mu2" then Some l.Prov_graph.from_uri else None)
  in
  List.iter
    (fun u ->
      check_bool (u ^ " untouched") true
        (not (List.mem u plan.Replay_plan.tainted)))
    mu2_units

let test_metrics_empty_graph () =
  let m = Analytics.metrics (Prov_graph.create ()) in
  check_int "no resources" 0 m.Analytics.resources;
  check_int "no links" 0 m.Analytics.explicit_links;
  check_bool "blowup defined" true (m.Analytics.blowup = 1.0);
  check_int "depth" 0 m.Analytics.depth

(* --- quality propagation --- *)

let test_quality_chain () =
  let g = plan_graph () in
  let scored = Quality.propagate g ~sources:[ ("s1", 0.5) ] in
  let score u = List.assoc u scored in
  check_bool "source pinned" true (score "s1" = 0.5);
  check_bool "n1 inherits" true (score "n1" = 0.5);
  check_bool "a1 inherits transitively" true (score "a1" = 0.5);
  check_bool "other chain untouched" true (score "n2" = 1.0 && score "s2" = 1.0)

let test_quality_weakest_link () =
  (*    m <- a (0.9)
        m <- b (0.3)   -> m scores 0.3 *)
  let g = Prov_graph.create () in
  let label u t = Prov_graph.set_label g u { Trace.service = "S"; time = t } in
  label "a" 0; label "b" 0; label "m" 1;
  Prov_graph.add_link g ~from_uri:"m" ~to_uri:"a";
  Prov_graph.add_link g ~from_uri:"m" ~to_uri:"b";
  let scored = Quality.propagate g ~sources:[ ("a", 0.9); ("b", 0.3) ] in
  check_bool "weakest link" true (List.assoc "m" scored = 0.3)

let test_quality_attenuation () =
  let g = plan_graph () in
  let config =
    { Quality.default_config with
      Quality.attenuation = (fun s -> if s = "Annotator" then 0.8 else 1.0) }
  in
  let scored = Quality.propagate ~config g ~sources:[] in
  check_bool "n1 lossless" true (List.assoc "n1" scored = 1.0);
  check_bool "a1 attenuated" true (abs_float (List.assoc "a1" scored -. 0.8) < 1e-9)

let test_quality_review_queue () =
  let exec, g = execution ~units:2 () in
  let g = Inheritance.close exec.Engine.doc g in
  (* one corrupt source: everything downstream lands in the queue *)
  let queue = Quality.below g ~sources:[ ("mu1", 0.2) ] ~threshold:0.5 in
  check_bool "queue non-empty" true (List.length queue > 1);
  List.iter (fun (_, s) -> check_bool "below threshold" true (s < 0.5)) queue;
  (* with pristine sources the queue is empty *)
  check_int "clean run" 0
    (List.length (Quality.below g ~sources:[] ~threshold:0.5))

let () =
  Alcotest.run "analytics"
    [ ( "metrics",
        [ Alcotest.test_case "basic" `Quick test_metrics_basic;
          Alcotest.test_case "with inheritance" `Quick test_metrics_with_inheritance;
          Alcotest.test_case "depth" `Quick test_metrics_depth_chain;
          Alcotest.test_case "empty graph" `Quick test_metrics_empty_graph ] );
      ( "storage",
        [ Alcotest.test_case "ablation" `Quick test_storage_ablation ] );
      ( "quality",
        [ Alcotest.test_case "chain" `Quick test_quality_chain;
          Alcotest.test_case "weakest link" `Quick test_quality_weakest_link;
          Alcotest.test_case "attenuation" `Quick test_quality_attenuation;
          Alcotest.test_case "review queue" `Quick test_quality_review_queue ] );
      ( "replay",
        [ Alcotest.test_case "minimal plan" `Quick test_replay_plan_minimal;
          Alcotest.test_case "empty plan" `Quick test_replay_plan_empty;
          Alcotest.test_case "end to end" `Quick test_replay_plan_end_to_end ] ) ]
