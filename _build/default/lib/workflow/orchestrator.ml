open Weblab_xml

exception Append_violation of string

exception Duplicate_uri of string

let log = Logs.Src.create "weblab.orchestrator" ~doc:"WebLab workflow orchestrator"

module Log = (val Logs.src_log log)

let initial_document ?(root_name = "Resource") ?(root_uri = "r1") () =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node root_name in
  Tree.set_uri doc root root_uri;
  doc

let fresh_uri doc =
  let used = Hashtbl.create 16 in
  List.iter
    (fun n -> match Tree.uri doc n with Some u -> Hashtbl.replace used u () | None -> ())
    (Tree.resources doc);
  let rec next k =
    let u = Printf.sprintf "r%d" k in
    if Hashtbl.mem used u then next (k + 1) else u
  in
  next (Tree.size doc)

let check_unique_uris doc =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Tree.uri doc n with
      | Some u ->
        if Hashtbl.mem seen u then raise (Duplicate_uri u);
        Hashtbl.add seen u ()
      | None -> ())
    (Tree.resources doc)

(* Fingerprints of committed nodes, used to verify that in-process services
   only append.  Only URI promotion (adding an "id" to a node that had
   none) is tolerated as a change. *)
type fingerprint = {
  f_name : string;
  f_text : string;
  f_attrs : (string * string) list;
  f_parent : Tree.node;
  f_children : Tree.node list;
}

let fingerprint doc n =
  {
    f_name = Tree.name doc n;
    f_text = Tree.text doc n;
    f_attrs = Tree.attrs doc n;
    f_parent = Tree.parent doc n;
    f_children = Tree.children doc n;
  }

let check_fingerprint doc n fp =
  let fail what =
    raise
      (Append_violation
         (Printf.sprintf "service modified committed node %d (%s)" n what))
  in
  if not (String.equal fp.f_name (Tree.name doc n)) then fail "element name";
  if not (String.equal fp.f_text (Tree.text doc n)) then fail "text content";
  if fp.f_parent <> Tree.parent doc n then fail "parent";
  let kids = Tree.children doc n in
  let rec prefix old cur =
    match old, cur with
    | [], _ -> ()
    | o :: old', c :: cur' -> if o = c then prefix old' cur' else fail "child order"
    | _ :: _, [] -> fail "children removed"
  in
  prefix fp.f_children kids;
  (* Attributes: removal and modification are violations; adding "id"
     (resource promotion) is allowed, other additions are not. *)
  List.iter
    (fun (k, v) ->
      match Tree.attr doc n k with
      | Some v' when String.equal v v' -> ()
      | Some _ -> fail (Printf.sprintf "attribute %s changed" k)
      | None -> fail (Printf.sprintf "attribute %s removed" k))
    fp.f_attrs;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k fp.f_attrs) && not (String.equal k "id") then
        fail (Printf.sprintf "attribute %s added to committed node" k))
    (Tree.attrs doc n)

let run_inproc doc f =
  let old_size = Tree.size doc in
  let fps = Array.init old_size (fun n -> fingerprint doc n) in
  f doc;
  for n = 0 to old_size - 1 do
    check_fingerprint doc n fps.(n)
  done;
  (* New nodes are exactly the arena tail. *)
  List.init (Tree.size doc - old_size) (fun i -> old_size + i)

let run_blackbox doc f =
  let input = Printer.to_string doc in
  let output = f input in
  let new_doc =
    try Xml_parser.parse output
    with Xml_parser.Error _ as e ->
      raise (Append_violation ("service returned unparsable XML: "
                               ^ Xml_parser.error_to_string e))
  in
  let result =
    try Diff.diff ~old_doc:doc ~new_doc
    with Diff.Not_contained msg -> raise (Append_violation msg)
  in
  (* new-document node -> arena node, for matched pairs *)
  let to_arena = Hashtbl.create 64 in
  List.iter
    (fun (old_n, new_n) -> Hashtbl.replace to_arena new_n old_n)
    result.matched;
  (* Adopt URI promotions on matched nodes. *)
  List.iter
    (fun (old_n, new_n) ->
      if Tree.is_element doc old_n then
        match Tree.uri doc old_n, Tree.uri new_doc new_n with
        | None, Some u -> Tree.set_uri doc old_n u
        | _ -> ())
    result.matched;
  let old_size = Tree.size doc in
  List.iter
    (fun { Diff.new_node; parent_in_new } ->
      let parent =
        if parent_in_new = Tree.no_node then Tree.no_node
        else
          match Hashtbl.find_opt to_arena parent_in_new with
          | Some p -> p
          | None ->
            raise
              (Append_violation
                 "internal: added fragment attached to an unmatched parent")
      in
      ignore (Tree.copy_subtree doc ~src:new_doc new_node ~parent))
    result.added;
  List.init (Tree.size doc - old_size) (fun i -> old_size + i)

let execute ?(on_step = fun _ _ _ -> ()) doc services =
  if not (Tree.has_root doc) then
    invalid_arg "Orchestrator.execute: the document needs a root";
  let trace = Trace.create () in
  let service_of_time = Hashtbl.create 16 in
  Hashtbl.replace service_of_time 0 "Source";
  (* The root is always a resource (Definition 1). *)
  if Tree.uri doc (Tree.root doc) = None then
    Tree.set_uri doc (Tree.root doc) (fresh_uri doc);
  check_unique_uris doc;
  let labeled = Hashtbl.create 64 in
  (* Label all resources that still lack a service-call label, attributing
     them to the call active at their creation timestamp (this covers both
     fresh resources and nodes promoted to resources by a later call, as
     node 3 of Figure 4 is). *)
  let label_resources ~now =
    List.iter
      (fun n ->
        if not (Hashtbl.mem labeled n) then begin
          Hashtbl.add labeled n ();
          (* A node older than the current call was just promoted. *)
          Tree.set_uri_time doc n
            (if Tree.created doc n < now then now else Tree.created doc n);
          let time = Tree.created doc n in
          let service =
            match Hashtbl.find_opt service_of_time time with
            | Some s -> s
            | None -> "Source"
          in
          if Tree.service_label doc n = None then
            Tree.set_service_label doc n service time;
          let call = { Trace.service; time } in
          match Tree.uri doc n with
          | Some uri -> Trace.add_entry trace { Trace.uri; node = n; call }
          | None -> assert false
        end)
      (Tree.resources doc)
  in
  Trace.add_call trace { Trace.service = "Source"; time = 0 };
  label_resources ~now:0;
  List.iteri
    (fun i service ->
      let time = i + 1 in
      let name = Service.name service in
      Log.debug (fun m -> m "call %d: %s" time name);
      Hashtbl.replace service_of_time time name;
      let before = Doc_state.at doc (time - 1) in
      let new_nodes =
        match service.Service.impl with
        | Service.Inproc f -> run_inproc doc f
        | Service.Blackbox f -> run_blackbox doc f
      in
      List.iter (fun n -> Tree.set_created doc n time) new_nodes;
      (* Give every added fragment root an identity: it is a new resource
         of this call. *)
      List.iter
        (fun n ->
          let p = Tree.parent doc n in
          let is_fragment_root = p = Tree.no_node || Tree.created doc p < time in
          if is_fragment_root && Tree.is_element doc n && Tree.uri doc n = None
          then Tree.set_uri doc n (fresh_uri doc))
        new_nodes;
      check_unique_uris doc;
      Trace.add_call trace { Trace.service = name; time };
      label_resources ~now:time;
      let after = Doc_state.at doc time in
      on_step { Trace.service = name; time } before after)
    services;
  trace
