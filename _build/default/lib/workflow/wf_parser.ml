(* A small textual workflow-definition language for series-parallel
   workflows, in process-algebra style:

   {v
   wf   ::= seq
   seq  ::= par (';' par)*            sequential composition
   par  ::= atom ('|' atom)*          parallel branches
   atom ::= NAME                      a service call
          | NAME ':' '(' wf ')'       a named (nested) sub-workflow
          | '(' wf ')'                grouping
   v}

   e.g. the fusion pipeline of examples/parallel_fusion.ml:

   {v  (img:(OcrService; Tokenizer) | SpeechToText | Normaliser);
       LanguageExtractor; Summarizer  v}

   Service names are resolved through a lookup the caller provides
   (typically the service catalog). *)

exception Error of string

exception Unknown_service of string

type token =
  | TName of string
  | TSemi
  | TBar
  | TColon
  | TLparen
  | TRparen
  | TEof

let tokenize s =
  let n = String.length s in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  let rec loop i acc =
    if i >= n then List.rev (TEof :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | ';' -> loop (i + 1) (TSemi :: acc)
      | '|' -> loop (i + 1) (TBar :: acc)
      | ':' -> loop (i + 1) (TColon :: acc)
      | '(' -> loop (i + 1) (TLparen :: acc)
      | ')' -> loop (i + 1) (TRparen :: acc)
      | '#' ->
        (* comment to end of line *)
        let rec skip j = if j < n && s.[j] <> '\n' then skip (j + 1) else j in
        loop (skip i) acc
      | c when is_name_char c ->
        let rec stop j = if j < n && is_name_char s.[j] then stop (j + 1) else j in
        let j = stop i in
        loop j (TName (String.sub s i (j - i)) :: acc)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c))
  in
  loop 0 []

let parse ~(resolve : string -> Service.t option) (input : string) : Parallel.wf =
  let toks = ref (tokenize input) in
  let peek () = match !toks with t :: _ -> t | [] -> TEof in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let expect t what =
    if peek () = t then advance () else raise (Error ("expected " ^ what))
  in
  let service name =
    match resolve name with
    | Some s -> s
    | None -> raise (Unknown_service name)
  in
  let rec wf () = seq ()
  and seq () =
    let first = par () in
    let rec more acc =
      if peek () = TSemi then begin
        advance ();
        more (par () :: acc)
      end
      else List.rev acc
    in
    match more [ first ] with
    | [ one ] -> one
    | parts -> Parallel.Seq parts
  and par () =
    let first = atom () in
    let rec more acc =
      if peek () = TBar then begin
        advance ();
        more (atom () :: acc)
      end
      else List.rev acc
    in
    match more [ first ] with
    | [ one ] -> one
    | branches -> Parallel.Par branches
  and atom () =
    match peek () with
    | TName name ->
      advance ();
      if peek () = TColon then begin
        advance ();
        expect TLparen "'(' after the sub-workflow name";
        let body = wf () in
        expect TRparen "')'";
        Parallel.Nested (name, body)
      end
      else Parallel.Call (service name)
    | TLparen ->
      advance ();
      let body = wf () in
      expect TRparen "')'";
      body
    | TSemi | TBar | TColon | TRparen | TEof ->
      raise (Error "expected a service name or '('")
  in
  let result = wf () in
  if peek () <> TEof then raise (Error "trailing input after workflow");
  result

let parse_opt ~resolve input =
  match parse ~resolve input with
  | wf -> Ok wf
  | exception Error msg -> Error msg
  | exception Unknown_service s -> Error (Printf.sprintf "unknown service %s" s)

(* Render a workflow expression back to the concrete syntax. *)
let rec to_string (wf : Parallel.wf) =
  match wf with
  | Parallel.Call s -> Service.name s
  | Parallel.Seq parts -> String.concat "; " (List.map seq_part parts)
  | Parallel.Par branches -> String.concat " | " (List.map par_part branches)
  | Parallel.Nested (name, body) -> Printf.sprintf "%s:(%s)" name (to_string body)

and seq_part p =
  match p with
  | Parallel.Seq _ -> Printf.sprintf "(%s)" (to_string p)
  | _ -> to_string p

and par_part p =
  match p with
  | Parallel.Seq _ | Parallel.Par _ -> Printf.sprintf "(%s)" (to_string p)
  | _ -> to_string p
