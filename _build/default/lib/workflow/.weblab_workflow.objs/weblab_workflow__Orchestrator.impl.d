lib/workflow/orchestrator.ml: Array Diff Doc_state Hashtbl List Logs Printer Printf Service String Trace Tree Weblab_xml Xml_parser
