lib/workflow/trace.mli: Tree Weblab_xml
