lib/workflow/wf_parser.ml: List Parallel Printf Service String
