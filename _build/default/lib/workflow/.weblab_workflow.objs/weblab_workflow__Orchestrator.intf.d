lib/workflow/orchestrator.mli: Doc_state Service Trace Tree Weblab_xml
