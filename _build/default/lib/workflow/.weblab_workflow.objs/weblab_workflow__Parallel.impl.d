lib/workflow/parallel.ml: Array Doc_state Hashtbl List Orchestrator Printf Queue Service Trace Tree Weblab_xml
