lib/workflow/service.mli: Tree Weblab_xml
