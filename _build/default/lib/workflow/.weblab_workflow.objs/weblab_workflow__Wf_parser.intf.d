lib/workflow/wf_parser.mli: Parallel Service
