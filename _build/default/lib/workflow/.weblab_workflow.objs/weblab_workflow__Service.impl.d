lib/workflow/service.ml: Tree Weblab_xml
