lib/workflow/parallel.mli: Doc_state Hashtbl Service Trace Tree Weblab_xml
