lib/workflow/trace.ml: Buffer List Option Printf String Tree Weblab_xml
