(* Workflow execution traces: the Source table of Figure 2.

   A trace records, for every labeled resource of the final document, the
   service call (service name, timestamp) that produced it.  Together with
   the final document it {e is} the workflow execution trace from which all
   provenance is inferred (§2). *)

open Weblab_xml

type call = {
  service : string;
  time : int;
}

let call_id c = Printf.sprintf "c%d" c.time

type entry = {
  uri : string;
  node : Tree.node;
  call : call;
}

type t = {
  mutable entries_rev : entry list;
  mutable calls_rev : call list;
}

let create () = { entries_rev = []; calls_rev = [] }

let add_call t call = t.calls_rev <- call :: t.calls_rev

let add_entry t entry = t.entries_rev <- entry :: t.entries_rev

let calls t = List.rev t.calls_rev

let entries t =
  List.rev t.entries_rev
  |> List.sort (fun a b ->
         let c = compare a.call.time b.call.time in
         if c <> 0 then c else compare a.node b.node)

let call_at t time = List.find_opt (fun c -> c.time = time) (calls t)

let resources_of_call t call =
  entries t |> List.filter (fun e -> e.call = call) |> List.map (fun e -> e.uri)

let call_of_resource t uri =
  entries t
  |> List.find_opt (fun e -> String.equal e.uri uri)
  |> Option.map (fun e -> e.call)

(* The Source table of Figure 2: Res. | Call | Service | Time. *)
let source_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Res. | Call | Service          | Time\n";
  Buffer.add_string buf "-----+------+------------------+-----\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s | %-4s | %-16s | t%d\n" e.uri (call_id e.call)
           e.call.service e.call.time))
    (entries t);
  Buffer.contents buf
