(** Workflow execution traces — the Source table of Figure 2.

    A trace records, for every labeled resource of the final document,
    the service call (service name, timestamp) that produced it; together
    with the final document it {e is} the workflow execution trace from
    which all provenance is inferred (§2). *)

open Weblab_xml

type call = {
  service : string;
  time : int;  (** 0 is the pseudo-call "Source" owning initial content *)
}

val call_id : call -> string
(** ["c<t>"] — the call names of Figure 2. *)

type entry = {
  uri : string;
  node : Tree.node;  (** {!Tree.no_node} for entries loaded from storage *)
  call : call;
}

type t

val create : unit -> t

val add_call : t -> call -> unit

val add_entry : t -> entry -> unit

val calls : t -> call list
(** In execution order. *)

val entries : t -> entry list
(** Sorted by call timestamp. *)

val call_at : t -> int -> call option

val resources_of_call : t -> call -> string list
(** The out(c) of the model: URIs of the resources the call produced. *)

val call_of_resource : t -> string -> call option
(** The labeling function λ. *)

val source_table : t -> string
(** The rendered Source table (Res. | Call | Service | Time). *)
