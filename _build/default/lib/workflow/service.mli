(** Black-box services (§2): a service call receives the WebLab document
    and extends it with new resources — its implementation is never
    inspected by the provenance machinery.

    Two integration modes:
    - [Inproc]: the service works directly on the shared arena through the
      {!Weblab_xml.Tree} API; the orchestrator verifies it only appended
      (and at most promoted nodes to resources).
    - [Blackbox]: the service maps serialized XML to serialized XML — the
      faithful web-service picture; the Recorder diffs the result against
      the input and grafts the added fragments onto the arena. *)

open Weblab_xml

type impl =
  | Inproc of (Tree.t -> unit)
  | Blackbox of (string -> string)

type t = {
  name : string;
  description : string;
  impl : impl;
}

val make : name:string -> description:string -> impl -> t

val inproc : name:string -> description:string -> (Tree.t -> unit) -> t

val blackbox : name:string -> description:string -> (string -> string) -> t

val name : t -> string

val description : t -> string
