(** A textual workflow-definition language for series-parallel workflows,
    in process-algebra style:

    {v
    wf   ::= seq
    seq  ::= par (';' par)*            sequential composition
    par  ::= atom ('|' atom)*          parallel branches
    atom ::= NAME                      a service call
           | NAME ':' '(' wf ')'       a named (nested) sub-workflow
           | '(' wf ')'                grouping
    v}

    [';'] binds looser than ['|']; ['#'] comments to end of line.
    Example: [(img:(OcrService; Tokenizer) | SpeechToText); Summarizer]. *)

exception Error of string

exception Unknown_service of string

val parse : resolve:(string -> Service.t option) -> string -> Parallel.wf
(** Service names are resolved through [resolve] (typically the catalog).
    @raise Error on syntax errors, [Unknown_service] on unresolved names. *)

val parse_opt :
  resolve:(string -> Service.t option) -> string -> (Parallel.wf, string) result

val to_string : Parallel.wf -> string
(** Concrete syntax; [parse (to_string wf)] round-trips (tested). *)
