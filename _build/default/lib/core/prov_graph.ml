(* Provenance graphs (Definition 3): labeled DAGs connecting each resource
   of the final document to the resources used to generate it.  The two
   tables of Figure 2 — Source (the labeling function λ) and Provenance
   (the edge set E) — are both views of this structure. *)

open Weblab_workflow

type link = {
  from_uri : string;  (* the generated resource (the newer endpoint) *)
  to_uri : string;    (* the resource it was derived from *)
  rule : string;      (* name of the mapping rule that inferred it *)
  inherited : bool;   (* implicit link obtained by structural propagation *)
}

type t = {
  mutable links_rev : link list;
  mutable nlinks : int;
  labels : (string, Trace.call) Hashtbl.t;
  members : (string, string) Hashtbl.t;
      (* synthetic Skolem entity -> member resource uris *)
  dedup : (string, unit) Hashtbl.t;
}

let create () =
  {
    links_rev = [];
    nlinks = 0;
    labels = Hashtbl.create 32;
    members = Hashtbl.create 8;
    dedup = Hashtbl.create 64;
  }

let set_label g uri call = Hashtbl.replace g.labels uri call

let label g uri = Hashtbl.find_opt g.labels uri

let labeled_resources g =
  Hashtbl.fold (fun uri call acc -> (uri, call) :: acc) g.labels []
  |> List.sort (fun (_, a) (_, b) ->
         let c = compare a.Trace.time b.Trace.time in
         if c <> 0 then c else 0)

let of_trace trace =
  let g = create () in
  List.iter (fun e -> set_label g e.Trace.uri e.Trace.call) (Trace.entries trace);
  g

let link_key l =
  String.concat "\x00" [ l.from_uri; l.to_uri; l.rule; string_of_bool l.inherited ]

let add_link ?(rule = "") ?(inherited = false) g ~from_uri ~to_uri =
  (* Self-dependencies are meaningless (and Definition 3 requires a DAG). *)
  if not (String.equal from_uri to_uri) then begin
    let l = { from_uri; to_uri; rule; inherited } in
    let k = link_key l in
    if not (Hashtbl.mem g.dedup k) then begin
      Hashtbl.add g.dedup k ();
      g.links_rev <- l :: g.links_rev;
      g.nlinks <- g.nlinks + 1
    end
  end

let add_member g ~entity ~member = Hashtbl.add g.members entity member

let members g entity = Hashtbl.find_all g.members entity

let skolem_entities g =
  Hashtbl.fold (fun e _ acc -> if List.mem e acc then acc else e :: acc) g.members []

let links g = List.rev g.links_rev

let size g = g.nlinks

(* Direct dependencies of a resource: the resources it was derived from. *)
let depends_on g uri =
  links g
  |> List.filter_map (fun l ->
         if String.equal l.from_uri uri then Some l.to_uri else None)
  |> List.sort_uniq String.compare

(* The resources directly derived from [uri]. *)
let used_by g uri =
  links g
  |> List.filter_map (fun l ->
         if String.equal l.to_uri uri then Some l.from_uri else None)
  |> List.sort_uniq String.compare

let has_link ?rule g ~from_uri ~to_uri =
  List.exists
    (fun l ->
      String.equal l.from_uri from_uri
      && String.equal l.to_uri to_uri
      && match rule with None -> true | Some r -> String.equal r l.rule)
    (links g)

(* Edges must point backwards in time: λ(from).time > λ(to).time when both
   endpoints are labeled (initial resources share timestamp 0, which a
   correct inference never links together). *)
let temporally_sound g =
  List.for_all
    (fun l ->
      match label g l.from_uri, label g l.to_uri with
      | Some cf, Some ct -> cf.Trace.time > ct.Trace.time
      | _ -> true)
    (links g)

let is_acyclic g =
  (* Kahn's algorithm over the link relation. *)
  let adj = Hashtbl.create 64 in
  let indeg = Hashtbl.create 64 in
  let touch u =
    if not (Hashtbl.mem indeg u) then Hashtbl.replace indeg u 0
  in
  List.iter
    (fun l ->
      touch l.from_uri;
      touch l.to_uri;
      Hashtbl.add adj l.from_uri l.to_uri;
      Hashtbl.replace indeg l.to_uri (Hashtbl.find indeg l.to_uri + 1))
    (links g);
  let queue = Queue.create () in
  Hashtbl.iter (fun u d -> if d = 0 then Queue.add u queue) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr visited;
    List.iter
      (fun v ->
        let d = Hashtbl.find indeg v - 1 in
        Hashtbl.replace indeg v d;
        if d = 0 then Queue.add v queue)
      (Hashtbl.find_all adj u)
  done;
  !visited = Hashtbl.length indeg

(* The Provenance table of Figure 2: From | To. *)
let provenance_table ?(with_rule = false) g =
  let buf = Buffer.create 256 in
  if with_rule then begin
    Buffer.add_string buf "From | To   | Rule\n";
    Buffer.add_string buf "-----+------+-----\n"
  end
  else begin
    Buffer.add_string buf "From | To\n";
    Buffer.add_string buf "-----+----\n"
  end;
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.from_uri b.from_uri in
        if c <> 0 then c else compare a.to_uri b.to_uri)
      (links g)
  in
  List.iter
    (fun l ->
      if with_rule then
        Buffer.add_string buf
          (Printf.sprintf "%-4s | %-4s | %s%s\n" l.from_uri l.to_uri l.rule
             (if l.inherited then " (inherited)" else ""))
      else Buffer.add_string buf (Printf.sprintf "%-4s | %s\n" l.from_uri l.to_uri))
    sorted;
  Buffer.contents buf
