(* Persistence of execution traces — the Execution Trace store of the
   Figure 5 architecture.

   The Recorder transmits (service, timestamp, generated resources) after
   every call; the Mapper later collects them to drive rule evaluation.
   Two encodings are provided: an XML document (using the library's own
   substrate) and RDF triples in the WebLab namespace, matching the
   paper's choice of a triple-store for execution meta-data. *)

open Weblab_xml
open Weblab_workflow

exception Malformed of string

(* ---------- XML encoding ---------- *)

let to_xml (trace : Trace.t) =
  let doc = Tree.create () in
  let root = Tree.new_element doc ~parent:Tree.no_node "ExecutionTrace" in
  List.iter
    (fun (c : Trace.call) ->
      let call =
        Tree.new_element doc ~parent:root "Call"
          ~attrs:
            [ ("service", c.Trace.service); ("time", string_of_int c.Trace.time) ]
      in
      List.iter
        (fun uri ->
          ignore
            (Tree.new_element doc ~parent:call "Generated" ~attrs:[ ("uri", uri) ]))
        (Trace.resources_of_call trace c))
    (Trace.calls trace);
  Printer.to_string ~indent:true doc

let of_xml (text : string) : Trace.t =
  let doc =
    try Xml_parser.parse text
    with Xml_parser.Error _ as e -> raise (Malformed (Xml_parser.error_to_string e))
  in
  if Tree.name doc (Tree.root doc) <> "ExecutionTrace" then
    raise (Malformed "expected an <ExecutionTrace> root");
  let trace = Trace.create () in
  List.iter
    (fun call_node ->
      if Tree.is_element doc call_node && Tree.name doc call_node = "Call" then begin
        let service =
          match Tree.attr doc call_node "service" with
          | Some s -> s
          | None -> raise (Malformed "<Call> without @service")
        in
        let time =
          match Option.bind (Tree.attr doc call_node "time") int_of_string_opt with
          | Some t -> t
          | None -> raise (Malformed "<Call> without a numeric @time")
        in
        let call = { Trace.service; time } in
        Trace.add_call trace call;
        List.iter
          (fun gen ->
            if Tree.is_element doc gen && Tree.name doc gen = "Generated" then
              match Tree.attr doc gen "uri" with
              | Some uri ->
                Trace.add_entry trace { Trace.uri; node = Tree.no_node; call }
              | None -> raise (Malformed "<Generated> without @uri"))
          (Tree.children doc call_node)
      end)
    (Tree.children doc (Tree.root doc));
  trace

(* ---------- RDF encoding ---------- *)

open Weblab_rdf

let generated_pred = Term.Iri (Prov_vocab.weblab_ns ^ "generated")

let to_store (trace : Trace.t) =
  let store = Triple_store.create () in
  List.iter
    (fun (c : Trace.call) ->
      let call = Prov_vocab.call_iri ~service:c.Trace.service ~time:c.Trace.time in
      Triple_store.add store
        (call, Prov_vocab.wl_service, Term.lit c.Trace.service);
      Triple_store.add store
        (call, Prov_vocab.wl_timestamp, Term.int_lit c.Trace.time);
      List.iter
        (fun uri ->
          Triple_store.add store
            (call, generated_pred, Prov_vocab.resource_iri uri))
        (Trace.resources_of_call trace c))
    (Trace.calls trace);
  store

(* Equality useful for round-trip checks: same calls and same resources
   per call (trace entries loaded from XML lose their node ids). *)
let equal (a : Trace.t) (b : Trace.t) =
  let view t =
    Trace.calls t
    |> List.map (fun c ->
           (c.Trace.service, c.Trace.time,
            List.sort compare (Trace.resources_of_call t c)))
  in
  view a = view b
