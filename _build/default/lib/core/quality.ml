(* Quality propagation over provenance graphs — the paper's §1 motivation:
   "Capturing and analyzing the quality and validity of data and knowledge
   produced by media mining workflows ... requires access to fine-grained
   provenance information".

   Sources get assessed scores in [0, 1]; every derived resource's score
   combines its dependencies' scores (weakest-link [min] by default, or any
   monotone combiner) attenuated by a per-service factor — services that
   degrade their inputs (lossy OCR, heuristic NER) are modeled with
   attenuation < 1.  Scores are computed in dependency order; provenance
   graphs are DAGs, so a resource's dependencies are always scored first. *)

open Weblab_workflow

type config = {
  default_source : float;       (* sources without an assessment *)
  combine : float list -> float;
  attenuation : string -> float;  (* per service name, 1.0 = lossless *)
}

let weakest_link scores = List.fold_left min 1.0 scores

let default_config =
  {
    default_source = 1.0;
    combine = weakest_link;
    attenuation = (fun _ -> 1.0);
  }

(* Score every labeled resource.  [sources] assigns assessed scores
   (typically to the Source-call resources, but any resource can be
   pinned — a pinned score overrides propagation). *)
let propagate ?(config = default_config) (g : Prov_graph.t)
    ~(sources : (string * float) list) : (string * float) list =
  let scores = Hashtbl.create 32 in
  let pinned = Hashtbl.create 8 in
  List.iter (fun (u, s) -> Hashtbl.replace pinned u s) sources;
  let rec score_of uri =
    match Hashtbl.find_opt scores uri with
    | Some s -> s
    | None ->
      (* cycle guard — Definition 3 graphs are DAGs, so this only fires on
         malformed inputs, where the pessimistic 0 is the safe answer *)
      Hashtbl.replace scores uri 0.0;
      let s =
        match Hashtbl.find_opt pinned uri with
        | Some s -> s
        | None -> (
          match Prov_graph.depends_on g uri with
          | [] -> config.default_source
          | deps ->
            let base = config.combine (List.map score_of deps) in
            let att =
              match Prov_graph.label g uri with
              | Some call -> config.attenuation call.Trace.service
              | None -> 1.0
            in
            base *. att)
      in
      Hashtbl.replace scores uri s;
      s
  in
  Prov_graph.labeled_resources g
  |> List.map (fun (uri, _) -> (uri, score_of uri))
  |> List.sort compare

(* Resources scoring below a threshold — the review queue. *)
let below ?config g ~sources ~threshold =
  propagate ?config g ~sources
  |> List.filter (fun (_, s) -> s < threshold)

let to_string scored =
  scored
  |> List.map (fun (u, s) -> Printf.sprintf "  %-8s %.3f" u s)
  |> String.concat "\n"
