(** Impact-driven re-execution planning: when sources turn out to be wrong
    or updated, the provenance graph determines exactly which resources
    are stale and which service calls must re-run, in order — the
    quality-assessment payoff the paper's introduction motivates. *)

open Weblab_workflow

type plan = {
  tainted : string list;    (** stale resources (sources included), sorted *)
  calls : Trace.call list;  (** calls to re-run, execution order *)
  unaffected : string list; (** labeled resources provably still valid *)
}

val build : Prov_graph.t -> sources:string list -> plan
(** A call is re-run iff it produced at least one resource transitively
    depending on a tainted source.  Run on a graph with the inherited
    closure for the complete taint set. *)

val to_string : plan -> string
