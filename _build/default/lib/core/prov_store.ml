(* The Provenance triple-store with materialization-on-demand — the
   Request Manager protocol of the Figure 5 architecture:

     "It first checks in the Provenance triple-store if the graph has
      already been materialized by a previous query.  If not, the Mapper
      materializes the request by applying the corresponding mapping
      rules on the execution trace."

   Graphs are cached in their RDF encoding keyed by a workflow-execution
   id, so repeated provenance queries over the same frozen execution pay
   inference once.  Reachability indexes (§8's efficient-querying future
   work) piggy-back on the same cache. *)

open Weblab_rdf

type entry = {
  store : Triple_store.t;
  mutable index : Reachability.t option;  (* built lazily on first use *)
}

type t = {
  graphs : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { graphs = Hashtbl.create 8; hits = 0; misses = 0 }

type stats = { hits : int; misses : int; cached : int }

let stats (t : t) =
  { hits = t.hits; misses = t.misses; cached = Hashtbl.length t.graphs }

let mem t ~id = Hashtbl.mem t.graphs id

let invalidate t ~id = Hashtbl.remove t.graphs id

(* The Request Manager entry point: return the provenance graph for the
   execution [id], materializing it with [materialize] only when the
   cache misses. *)
let request t ~id ~(materialize : unit -> Prov_graph.t) : Prov_graph.t =
  match Hashtbl.find_opt t.graphs id with
  | Some entry ->
    t.hits <- t.hits + 1;
    Prov_export.of_store entry.store
  | None ->
    t.misses <- t.misses + 1;
    let g = materialize () in
    Hashtbl.replace t.graphs id { store = Prov_export.to_store g; index = None };
    g

(* Raw triple access for SPARQL endpoints — None when not materialized. *)
let store_of t ~id =
  Option.map (fun e -> e.store) (Hashtbl.find_opt t.graphs id)

(* The reachability index of a materialized graph, built on first use and
   reused afterwards. *)
let reachability t ~id =
  match Hashtbl.find_opt t.graphs id with
  | None -> None
  | Some entry -> (
    match entry.index with
    | Some idx -> Some idx
    | None ->
      let idx = Reachability.build (Prov_export.of_store entry.store) in
      entry.index <- Some idx;
      Some idx)

(* Convenience: materialize-or-reuse, then answer a lineage query through
   the cached index. *)
let ancestors t ~id ~materialize uri =
  ignore (request t ~id ~materialize);
  match reachability t ~id with
  | Some idx -> Reachability.ancestors idx uri
  | None -> []
