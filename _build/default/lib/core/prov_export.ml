(* Export of provenance graphs to RDF using the PROV ontology (§6).

   - labeled resources become prov:Entity;
   - service calls become prov:Activity, associated with a
     prov:SoftwareAgent per service;
   - a resource's label yields  entity prov:wasGeneratedBy activity  and
     activity prov:used e  for every e the entity was derived from;
   - provenance links yield prov:wasDerivedFrom;
   - call-level lineage is materialized as prov:wasInformedBy;
   - Skolem entities are prov:Entity with prov:hadMember links. *)

open Weblab_rdf
open Weblab_workflow

let entity_term uri = Prov_vocab.resource_iri uri

let call_term (c : Trace.call) =
  Prov_vocab.call_iri ~service:c.Trace.service ~time:c.Trace.time

let to_store (g : Prov_graph.t) =
  let store = Triple_store.create () in
  let add s p o = Triple_store.add store (s, p, o) in
  (* Entities and activities from the labeling function λ. *)
  List.iter
    (fun (uri, (call : Trace.call)) ->
      let e = entity_term uri in
      let a = call_term call in
      add e Prov_vocab.rdf_type Prov_vocab.entity;
      add e Prov_vocab.rdfs_label (Term.lit uri);
      add e Prov_vocab.was_generated_by a;
      add a Prov_vocab.rdf_type Prov_vocab.activity;
      add a Prov_vocab.rdfs_label
        (Term.lit (Printf.sprintf "%s@t%d" call.Trace.service call.Trace.time));
      add a Prov_vocab.wl_timestamp (Term.int_lit call.Trace.time);
      let agent = Prov_vocab.service_iri call.Trace.service in
      add agent Prov_vocab.rdf_type Prov_vocab.software_agent;
      add agent Prov_vocab.rdfs_label (Term.lit call.Trace.service);
      add a Prov_vocab.was_associated_with agent)
    (Prov_graph.labeled_resources g);
  (* Data dependencies. *)
  List.iter
    (fun { Prov_graph.from_uri; to_uri; rule; inherited } ->
      let b = entity_term from_uri and a = entity_term to_uri in
      add b Prov_vocab.was_derived_from a;
      if rule <> "" && not inherited then
        add b Prov_vocab.wl_rule (Term.lit rule);
      (* Service-call dependencies implied by the data dependencies:
         λ(b) used a, and λ(b) wasInformedBy λ(a). *)
      (match Prov_graph.label g from_uri with
       | Some cb ->
         add (call_term cb) Prov_vocab.used a;
         (match Prov_graph.label g to_uri with
          | Some ca when ca <> cb ->
            add (call_term cb) Prov_vocab.was_informed_by (call_term ca)
          | _ -> ())
       | None -> ()))
    (Prov_graph.links g);
  (* Skolem aggregation entities. *)
  List.iter
    (fun entity ->
      let e = entity_term entity in
      add e Prov_vocab.rdf_type Prov_vocab.entity;
      add e Prov_vocab.rdfs_label (Term.lit entity);
      List.iter
        (fun member -> add e Prov_vocab.had_member (entity_term member))
        (Prov_graph.members g entity))
    (Prov_graph.skolem_entities g);
  store

(* Inverse of {!to_store}: rebuild a provenance graph from its RDF
   encoding.  Entity labels come from prov:wasGeneratedBy + the activity's
   wl:timestamp/association; links from prov:wasDerivedFrom; the inferring
   rule from wl:inferredByRule (attached to the derived entity, so rule
   attribution is per-entity rather than per-link — the one lossy spot of
   the RDF encoding); members from prov:hadMember. *)
let of_store (store : Triple_store.t) : Prov_graph.t =
  let g = Prov_graph.create () in
  let local_name term ~prefix =
    match term with
    | Term.Iri iri ->
      let n = String.length prefix in
      if String.length iri > n && String.sub iri 0 n = prefix then
        Some (String.sub iri n (String.length iri - n))
      else None
    | Term.Lit _ | Term.Bnode _ -> None
  in
  let resource_prefix = Prov_vocab.weblab_ns ^ "resource/" in
  let label_of term =
    match local_name term ~prefix:resource_prefix with
    | Some u -> Some u
    | None -> (
      (* rdfs:label fallback covers full-IRI resources *)
      match Triple_store.find store (Some term, Some Prov_vocab.rdfs_label, None) with
      | (_, _, Term.Lit (l, _)) :: _ -> Some l
      | _ -> (
        match term with Term.Iri iri -> Some iri | _ -> None))
  in
  let call_of_activity act =
    let service =
      match
        Triple_store.find store (Some act, Some Prov_vocab.was_associated_with, None)
      with
      | (_, _, agent) :: _ ->
        local_name agent ~prefix:(Prov_vocab.weblab_ns ^ "service/")
      | [] -> None
    in
    let time =
      match
        Triple_store.find store (Some act, Some Prov_vocab.wl_timestamp, None)
      with
      | (_, _, Term.Lit (t, _)) :: _ -> int_of_string_opt t
      | _ -> None
    in
    match service, time with
    | Some service, Some time -> Some { Trace.service; time }
    | _ -> None
  in
  (* λ from generation triples *)
  Triple_store.iter store (fun (s, p, o) ->
      if Term.equal p Prov_vocab.was_generated_by then
        match label_of s, call_of_activity o with
        | Some uri, Some call -> Prov_graph.set_label g uri call
        | _ -> ());
  (* the rule each derived entity was inferred by *)
  let rule_of entity =
    match Triple_store.find store (Some entity, Some Prov_vocab.wl_rule, None) with
    | (_, _, Term.Lit (r, _)) :: _ -> r
    | _ -> ""
  in
  Triple_store.iter store (fun (s, p, o) ->
      if Term.equal p Prov_vocab.was_derived_from then
        match label_of s, label_of o with
        | Some from_uri, Some to_uri ->
          Prov_graph.add_link g ~rule:(rule_of s) ~from_uri ~to_uri
        | _ -> ());
  Triple_store.iter store (fun (s, p, o) ->
      if Term.equal p Prov_vocab.had_member then
        match label_of s, label_of o with
        | Some entity, Some member -> Prov_graph.add_member g ~entity ~member
        | _ -> ());
  g

let to_turtle g = Turtle.to_turtle (to_store g)

let to_ntriples g = Turtle.to_ntriples (to_store g)

(* PROV-XML serialization (§8 points out the RDF representation "can
   easily be replaced by other formats like PROV-XML").  Built with the
   library's own XML substrate. *)
let to_prov_xml (g : Prov_graph.t) =
  let open Weblab_xml in
  let doc = Tree.create () in
  let root =
    Tree.new_element doc ~parent:Tree.no_node "prov:document"
      ~attrs:
        [ ("xmlns:prov", "http://www.w3.org/ns/prov#");
          ("xmlns:wl", Prov_vocab.weblab_ns) ]
  in
  let with_text parent name text =
    let e = Tree.new_element doc ~parent name in
    ignore (Tree.new_text doc ~parent:e text);
    e
  in
  let call_id (c : Trace.call) = Printf.sprintf "%s-%d" c.Trace.service c.Trace.time in
  let seen_calls = Hashtbl.create 8 in
  List.iter
    (fun (uri, (call : Trace.call)) ->
      let e =
        Tree.new_element doc ~parent:root "prov:entity"
          ~attrs:[ ("prov:id", uri) ]
      in
      ignore (with_text e "prov:label" uri);
      if not (Hashtbl.mem seen_calls call) then begin
        Hashtbl.add seen_calls call ();
        let a =
          Tree.new_element doc ~parent:root "prov:activity"
            ~attrs:[ ("prov:id", call_id call) ]
        in
        ignore (with_text a "prov:label" call.Trace.service);
        ignore (with_text a "wl:timestamp" (string_of_int call.Trace.time))
      end;
      let gen = Tree.new_element doc ~parent:root "prov:wasGeneratedBy" in
      ignore (Tree.new_element doc ~parent:gen "prov:entity"
                ~attrs:[ ("prov:ref", uri) ]);
      ignore (Tree.new_element doc ~parent:gen "prov:activity"
                ~attrs:[ ("prov:ref", call_id call) ]))
    (Prov_graph.labeled_resources g);
  List.iter
    (fun { Prov_graph.from_uri; to_uri; rule; inherited } ->
      let d =
        Tree.new_element doc ~parent:root "prov:wasDerivedFrom"
          ~attrs:
            ((if rule = "" then [] else [ ("wl:rule", rule) ])
            @ if inherited then [ ("wl:inherited", "true") ] else [])
      in
      ignore (Tree.new_element doc ~parent:d "prov:generatedEntity"
                ~attrs:[ ("prov:ref", from_uri) ]);
      ignore (Tree.new_element doc ~parent:d "prov:usedEntity"
                ~attrs:[ ("prov:ref", to_uri) ]))
    (Prov_graph.links g);
  List.iter
    (fun entity ->
      let e =
        Tree.new_element doc ~parent:root "prov:entity"
          ~attrs:[ ("prov:id", entity); ("wl:skolem", "true") ]
      in
      ignore e;
      List.iter
        (fun member ->
          let m = Tree.new_element doc ~parent:root "prov:hadMember" in
          ignore (Tree.new_element doc ~parent:m "prov:collection"
                    ~attrs:[ ("prov:ref", entity) ]);
          ignore (Tree.new_element doc ~parent:m "prov:entity"
                    ~attrs:[ ("prov:ref", member) ]))
        (Prov_graph.members g entity))
    (Prov_graph.skolem_entities g);
  Printer.to_string ~indent:true doc

(* OPM (Open Provenance Model) XML — the format the related-work systems
   (Taverna/Janus, Kepler) exchange; kept for interoperability alongside
   PROV.  Artifacts/processes mirror prov:Entity/prov:Activity. *)
let to_opm_xml (g : Prov_graph.t) =
  let open Weblab_xml in
  let doc = Tree.create () in
  let root =
    Tree.new_element doc ~parent:Tree.no_node "opm:opmGraph"
      ~attrs:[ ("xmlns:opm", "http://openprovenance.org/model/v1.1.a") ]
  in
  let artifacts = Tree.new_element doc ~parent:root "opm:artifacts" in
  let processes = Tree.new_element doc ~parent:root "opm:processes" in
  let deps = Tree.new_element doc ~parent:root "opm:causalDependencies" in
  let call_id (c : Trace.call) = Printf.sprintf "%s-%d" c.Trace.service c.Trace.time in
  let seen_calls = Hashtbl.create 8 in
  List.iter
    (fun (uri, (call : Trace.call)) ->
      ignore
        (Tree.new_element doc ~parent:artifacts "opm:artifact"
           ~attrs:[ ("id", uri) ]);
      if not (Hashtbl.mem seen_calls call) then begin
        Hashtbl.add seen_calls call ();
        ignore
          (Tree.new_element doc ~parent:processes "opm:process"
             ~attrs:[ ("id", call_id call) ])
      end;
      let gen = Tree.new_element doc ~parent:deps "opm:wasGeneratedBy" in
      ignore (Tree.new_element doc ~parent:gen "opm:effect"
                ~attrs:[ ("ref", uri) ]);
      ignore (Tree.new_element doc ~parent:gen "opm:cause"
                ~attrs:[ ("ref", call_id call) ]))
    (Prov_graph.labeled_resources g);
  List.iter
    (fun { Prov_graph.from_uri; to_uri; _ } ->
      let d = Tree.new_element doc ~parent:deps "opm:wasDerivedFrom" in
      ignore (Tree.new_element doc ~parent:d "opm:effect"
                ~attrs:[ ("ref", from_uri) ]);
      ignore (Tree.new_element doc ~parent:d "opm:cause"
                ~attrs:[ ("ref", to_uri) ]))
    (Prov_graph.links g);
  Printer.to_string ~indent:true doc
