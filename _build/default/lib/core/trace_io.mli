(** Persistence of execution traces — the Execution Trace store of the
    Figure 5 architecture.  The Recorder transmits (service, timestamp,
    generated resources) after every call; the Mapper later collects them
    to drive rule evaluation, possibly in a different process. *)

open Weblab_rdf
open Weblab_workflow

exception Malformed of string

val to_xml : Trace.t -> string
(** An <ExecutionTrace> document listing every call and the resources it
    generated. *)

val of_xml : string -> Trace.t
(** Inverse of {!to_xml} (reloaded entries carry no arena node ids).
    @raise Malformed on anything that is not a serialized trace. *)

val generated_pred : Term.t
(** The wl:generated predicate linking a call to its resources. *)

val to_store : Trace.t -> Triple_store.t
(** The RDF encoding, matching the paper's choice of a triple store for
    execution meta-data. *)

val equal : Trace.t -> Trace.t -> bool
(** Same calls and same resources per call — the round-trip criterion. *)
