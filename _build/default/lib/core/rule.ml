(* Provenance mapping rules (Definition 5):  φ_S(x̄) ⇒ φ_T(x̄).

   The source pattern selects the resources a new resource was computed
   from; the target pattern selects the produced resources.  Both share
   the binding variables x̄, which is what correlates them (the natural
   join of Definition 8). *)

open Weblab_xpath

type t = {
  name : string;
  source : Ast.pattern;
  target : Ast.pattern;
}

exception Ill_formed of string

(* Definition 5's side condition: the target may only use variables bound
   by the source (unless a Skolem function introduces them, §5 — Skolem
   arguments must still come from the source). *)
let validate t =
  if t.source = [] then raise (Ill_formed "empty source pattern");
  if t.target = [] then raise (Ill_formed "empty target pattern");
  let src_vars = Ast.variables t.source in
  let tgt_free = Ast.free_variables t.target in
  List.iter
    (fun v ->
      if not (List.mem v src_vars) then
        raise
          (Ill_formed
             (Printf.sprintf
                "target pattern uses variable $%s which the source does not \
                 bind" v)))
    tgt_free;
  t

(* The paper writes bindings in two equivalent ways: [$x := @id] and
   [@id = $x] (compare φ1/φ2 of Example 3 with the rule of Example 9, and
   the [$p = position()] rules of §5).  An equality against a variable the
   pattern does not bind elsewhere *is* the binding — normalize it to
   Bind, so each side of a rule can be evaluated independently and joined
   (Definition 8).  A second occurrence of the same variable stays a
   comparison. *)
let bind_free_equalities (pattern : Ast.pattern) : Ast.pattern =
  let bound = ref (Ast.variables pattern) in
  let rewrite_pred pred =
    match pred with
    | Ast.Cmp (Ast.Var x, Ast.Eq,
               ((Ast.Attr _ | Ast.Position | Ast.Path_attr _) as src))
    | Ast.Cmp (((Ast.Attr _ | Ast.Position | Ast.Path_attr _) as src),
               Ast.Eq, Ast.Var x)
      when not (List.mem x !bound) ->
      bound := x :: !bound;
      Ast.Bind (x, src)
    | p -> p
  in
  List.map
    (fun (step : Ast.step) ->
      { step with Ast.preds = List.map rewrite_pred step.Ast.preds })
    pattern

let make ?(name = "") ~source ~target () =
  let source = bind_free_equalities source in
  (* Variables bound by the source are not free in the target: only
     equalities on genuinely target-local variables become bindings —
     which is exactly what [bind_free_equalities] does, since a variable
     shared with the source is still "free" in the target and must be
     bound there too for the join to see it. *)
  let target = bind_free_equalities target in
  validate { name; source; target }

let name t = t.name

let source t = t.source

let target t = t.target

(* Variables shared by both sides — the join columns of Definition 8. *)
let join_variables t =
  let sv = Ast.variables t.source in
  let tv = Ast.variables t.target @ Ast.free_variables t.target in
  List.filter (fun v -> List.mem v tv) sv

let to_string t =
  let arrow = " ==> " in
  let prefix = if t.name = "" then "" else t.name ^ ": " in
  prefix
  ^ Print.pattern_to_string t.source
  ^ arrow
  ^ Print.pattern_to_string t.target
