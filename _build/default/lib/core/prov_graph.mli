(** Provenance graphs — Definition 3: labeled DAGs connecting each
    resource of the final document to the resources used to generate it.
    The two tables of Figure 2 — Source (the labeling function λ) and
    Provenance (the edge set E) — are both views of this structure. *)

open Weblab_workflow

type link = {
  from_uri : string;  (** the generated resource (the newer endpoint) *)
  to_uri : string;    (** the resource it was derived from *)
  rule : string;      (** name of the mapping rule that inferred it *)
  inherited : bool;   (** implicit link obtained by structural propagation *)
}

type t

val create : unit -> t

val of_trace : Trace.t -> t
(** A graph with λ populated from the execution trace and no links yet. *)

(** {1 The labeling function λ} *)

val set_label : t -> string -> Trace.call -> unit

val label : t -> string -> Trace.call option

val labeled_resources : t -> (string * Trace.call) list
(** Sorted by call timestamp. *)

(** {1 Links} *)

val add_link :
  ?rule:string -> ?inherited:bool -> t -> from_uri:string -> to_uri:string -> unit
(** Idempotent; self-links are silently dropped (Definition 3 requires a
    DAG). *)

val links : t -> link list
(** In insertion order. *)

val size : t -> int
(** Number of links. *)

val has_link : ?rule:string -> t -> from_uri:string -> to_uri:string -> bool

val depends_on : t -> string -> string list
(** Direct dependencies of a resource, sorted. *)

val used_by : t -> string -> string list
(** Resources directly derived from the given one, sorted. *)

(** {1 Skolem aggregation entities (§5)} *)

val add_member : t -> entity:string -> member:string -> unit

val members : t -> string -> string list

val skolem_entities : t -> string list

(** {1 Invariants} *)

val temporally_sound : t -> bool
(** Every link points backwards in time: λ(from).time > λ(to).time
    whenever both endpoints are labeled. *)

val is_acyclic : t -> bool
(** Kahn's algorithm over the link relation. *)

(** {1 Display} *)

val provenance_table : ?with_rule:bool -> t -> string
(** The Provenance table of Figure 2 (From | To), optionally with the
    inferring rule. *)
