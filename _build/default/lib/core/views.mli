(** Provenance views over composite modules — the direction of Bao,
    Davidson and Milo ("Labeling workflow views with fine-grained
    dependencies") the related-work section points at.

    A view groups service calls into named composite activities (for
    focusing on relevant provenance, or hiding private provenance).
    Projecting a graph through a view relabels resources with their
    composite call and keeps only the links crossing a group boundary. *)

open Weblab_workflow

type grouping = Trace.call -> string option
(** [group call] returns the composite module's name, or [None] to leave
    the call visible as itself. *)

val by_services : (string * string list) list -> grouping
(** [(composite, member services)] assignments — the common case. *)

val project : Prov_graph.t -> grouping -> Prov_graph.t
(** The projected graph: resources of grouped calls relabeled with the
    composite activity (timestamp = first member call), intra-module
    links hidden, everything else preserved.  Temporal soundness and
    acyclicity are preserved. *)

val module_graph : Prov_graph.t -> grouping -> (string * string) list
(** The module-level wasInformedBy edges implied by the links: [(a, b)]
    means module/call [a] consumed outputs of [b].  Ungrouped calls
    appear as ["Service@tN"]. *)
