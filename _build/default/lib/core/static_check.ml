(* Static analysis of rulebooks against a workflow definition — the §2
   observation that orchestration constraints prune provenance inference:

     "Starting from the workflow definition, we can exploit service
      orchestration constraints like service s is always executed before
      service s', to eliminate provenance links from data produced by s'
      to data produced by s."

   Given (i) the service order of a workflow definition and (ii) a
   description of which element names each service produces, the checker
   reports:

   - [Rule_never_fires]: every element the rule's source pattern can match
     is produced only by services that never run before the rule's
     service — no link can ever be inferred, so the Mapper can skip the
     rule entirely;
   - [Unknown_service]: the rulebook mentions a service absent from the
     workflow definition;
   - [Unsatisfiable_target]: the rule's target pattern can never match an
     element the service produces — the rule is mis-attached.

   The analysis is conservative: a pattern step with a wildcard test, or an
   element name nobody declares, is assumed satisfiable. *)

open Weblab_xpath

type produces = (string * string list) list
(* service name -> element names it can produce ("Source" covers the
   initial document). *)

type diagnostic =
  | Rule_never_fires of { service : string; rule : string; reason : string }
  | Unknown_service of { service : string }
  | Unsatisfiable_target of { service : string; rule : string; element : string }

let diagnostic_to_string = function
  | Rule_never_fires { service; rule; reason } ->
    Printf.sprintf "rule %s of %s can never fire: %s" rule service reason
  | Unknown_service { service } ->
    Printf.sprintf "rulebook entry for %s, which the workflow never calls" service
  | Unsatisfiable_target { service; rule; element } ->
    Printf.sprintf
      "rule %s of %s targets <%s>, which %s does not produce" rule service
      element service

(* The element name the pattern's final step must match, if determined. *)
let final_element (pattern : Ast.pattern) =
  match List.rev pattern with
  | { Ast.test = Ast.Name n; _ } :: _ -> Some n
  | { Ast.test = Ast.Any; _ } :: _ | [] -> None

(* Services that can produce the given element name. *)
let producers (produces : produces) element =
  List.filter_map
    (fun (svc, elements) -> if List.mem element elements then Some svc else None)
    produces

let check ~(order : string list) ~(produces : produces)
    (rb : Strategy.rulebook) : diagnostic list =
  let position s =
    let rec find i = function
      | [] -> None
      | x :: rest -> if String.equal x s then Some i else find (i + 1) rest
    in
    find 0 order
  in
  List.concat_map
    (fun (service, rules) ->
      match position service with
      | None -> [ Unknown_service { service } ]
      | Some service_pos ->
        List.filter_map
          (fun rule ->
            let name = Rule.name rule in
            (* Target sanity: the rule's service must produce the target
               element. *)
            match final_element (Rule.target rule) with
            | Some element
              when not (List.mem service (producers produces element))
                   && producers produces element <> [] ->
              Some (Unsatisfiable_target { service; rule = name; element })
            | _ -> (
              (* Source reachability: some producer of the source element
                 must be able to run strictly before this service (or be
                 the Source pseudo-service). *)
              match final_element (Rule.source rule) with
              | None -> None
              | Some element -> (
                match producers produces element with
                | [] -> None   (* nobody declares it: stay conservative *)
                | prods ->
                  let reachable =
                    List.exists
                      (fun p ->
                        String.equal p "Source"
                        ||
                        match position p with
                        | Some pp -> pp < service_pos
                        | None -> false)
                      prods
                  in
                  if reachable then None
                  else
                    Some
                      (Rule_never_fires
                         { service; rule = name;
                           reason =
                             Printf.sprintf
                               "<%s> is only produced by services that never \
                                run before %s"
                               element service }))))
          rules)
    rb

(* Derive the production map from an actual execution — useful to lint a
   rulebook against observed behaviour instead of declarations. *)
let observed_produces (doc : Weblab_xml.Tree.t) (trace : Weblab_workflow.Trace.t) :
    produces =
  let open Weblab_workflow in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.entry) ->
      if e.Trace.node <> Weblab_xml.Tree.no_node then begin
        let name = Weblab_xml.Tree.name doc e.Trace.node in
        let existing =
          match Hashtbl.find_opt tbl e.Trace.call.Trace.service with
          | Some l -> l
          | None -> []
        in
        if not (List.mem name existing) then
          Hashtbl.replace tbl e.Trace.call.Trace.service (name :: existing)
      end)
    (Trace.entries trace);
  Hashtbl.fold (fun s l acc -> (s, List.sort compare l) :: acc) tbl []
  |> List.sort compare

(* Prune a rulebook: drop the rules the diagnostics prove dead.  The
   Mapper can run on the pruned book with identical results (tested). *)
let prune ~order ~produces (rb : Strategy.rulebook) : Strategy.rulebook =
  let diags = check ~order ~produces rb in
  let dead service rule =
    List.exists
      (function
        | Rule_never_fires { service = s; rule = r; _ } ->
          String.equal s service && String.equal r (Rule.name rule)
        | Unknown_service { service = s } -> String.equal s service
        | Unsatisfiable_target _ -> false)
      diags
  in
  List.filter_map
    (fun (service, rules) ->
      match List.filter (fun r -> not (dead service r)) rules with
      | [] when List.exists (function Unknown_service { service = s } ->
          String.equal s service | _ -> false) diags -> None
      | rules -> Some (service, rules))
    rb


(* Runtime companion of the static check: after an execution, which rules
   produced no links at all?  Unlike [check] this needs no declarations —
   it reports what actually happened, which either means the rule is dead
   or the workload never exercised it. *)
let unused_rules (g : Prov_graph.t) (rb : Strategy.rulebook) :
    (string * string) list =
  let fired =
    Prov_graph.links g
    |> List.map (fun l -> l.Prov_graph.rule)
    |> List.sort_uniq String.compare
  in
  List.concat_map
    (fun (service, rules) ->
      List.filter_map
        (fun r ->
          if List.mem (Rule.name r) fired then None
          else Some (service, Rule.name r))
        rules)
    rb
