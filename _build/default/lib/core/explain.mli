(** Explanation of provenance links: which rule, at which call, with which
    variable bindings produced a link (the joined embedding rows of
    Definition 8) — and, for a pair {e without} a link, how far each rule
    got before failing. *)

open Weblab_workflow

type witness = {
  rule : string;
  call : Trace.call;
  bindings : (string * string) list;  (** shared variables and values *)
}

val witness_to_string : witness -> string

val link :
  doc:Weblab_xml.Tree.t ->
  trace:Trace.t ->
  Strategy.rulebook ->
  from_uri:string ->
  to_uri:string ->
  witness list
(** All witnesses of the (explicit) link; empty when the link does not
    exist.  Skolem rules are not covered. *)

type failure =
  | Source_no_match  (** φ{_S} matched nothing before the call *)
  | Target_no_match  (** φ{_T} matched nothing in the call's output *)
  | Join_mismatch of (string * string list * string list) list
      (** per shared variable: source-side vs target-side values *)
  | Wrong_call  (** the target resource was produced by a different call *)

type diagnosis = {
  d_rule : string;
  d_call : Trace.call;
  failure : failure;
}

val failure_to_string : failure -> string

val missing :
  doc:Weblab_xml.Tree.t ->
  trace:Trace.t ->
  Strategy.rulebook ->
  from_uri:string ->
  to_uri:string ->
  diagnosis list
(** One diagnosis per (call, rule) that could in principle have produced
    the link. *)
