(** A file-based repository for workflow executions — the durable version
    of the Figure 5 stores: one directory per execution id holding the
    document (Resource Repository), the trace (Execution Trace store) and,
    once materialized, the provenance graph in N-Triples (Provenance
    store).

    Loading restores everything inference needs (arena timestamps are
    rebuilt from the persisted [@t] labels), so inference over a loaded
    execution equals inference over the live one. *)


exception Error of string

type t

val open_at : string -> t
(** Open (creating if needed) a repository rooted at the given directory.
    @raise Error if the path exists and is not a directory. *)

val store : t -> id:string -> Engine.execution -> unit
(** Persist document and trace.
    @raise Error on invalid ids (path separators, dots, empty). *)

val load : t -> id:string -> Engine.execution
(** @raise Error when the execution is missing or malformed. *)

val store_provenance : t -> id:string -> Prov_graph.t -> unit

val load_provenance : t -> id:string -> Prov_graph.t option
(** [None] when no graph was materialized for this execution yet. *)

val executions : t -> string list
(** Stored execution ids, sorted. *)

val provenance :
  t -> id:string -> materialize:(Engine.execution -> Prov_graph.t) -> Prov_graph.t
(** The disk-backed Request Manager: load the materialized graph, or
    materialize from the stored execution and persist the result. *)

(**/**)

val path : t -> string -> string -> string

val dir : t -> string -> string

(* exposed for tests *)

(**/**)
