(* Impact-driven re-execution planning — the practical payoff of
   fine-grained provenance the paper's introduction motivates (assessing
   "quality and validity of data and knowledge produced by media mining
   workflows"): when sources turn out to be wrong or updated, the
   provenance graph tells exactly which resources are stale and which
   service calls must be re-run, in order.

   The plan is minimal with respect to the graph: a call is re-run iff it
   produced at least one resource that transitively depends on a tainted
   source (directly or through inherited links). *)

open Weblab_workflow

type plan = {
  tainted : string list;          (* the stale resources, sorted *)
  calls : Trace.call list;        (* calls to re-run, execution order *)
  unaffected : string list;       (* resources provably still valid *)
}

let build (g : Prov_graph.t) ~(sources : string list) : plan =
  let tainted =
    sources
    |> List.concat_map (fun s -> s :: Query.influences_transitive g s)
    |> List.sort_uniq String.compare
  in
  let produced_tainted call =
    Query.call_generated g call
    |> List.exists (fun uri -> List.mem uri tainted)
  in
  let calls =
    Prov_graph.labeled_resources g
    |> List.map snd
    |> List.sort_uniq compare
    |> List.filter (fun (c : Trace.call) -> c.Trace.time > 0 && produced_tainted c)
    |> List.sort (fun a b -> compare a.Trace.time b.Trace.time)
  in
  let unaffected =
    Prov_graph.labeled_resources g
    |> List.filter_map (fun (uri, _) ->
           if List.mem uri tainted then None else Some uri)
    |> List.sort String.compare
  in
  { tainted; calls; unaffected }

let to_string plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d tainted resource(s): %s\n" (List.length plan.tainted)
       (String.concat ", " plan.tainted));
  Buffer.add_string buf
    (Printf.sprintf "re-run %d call(s): %s\n" (List.length plan.calls)
       (String.concat " -> "
          (List.map
             (fun (c : Trace.call) ->
               Printf.sprintf "(%s, t%d)" c.Trace.service c.Trace.time)
             plan.calls)));
  Buffer.add_string buf
    (Printf.sprintf "%d resource(s) provably unaffected\n"
       (List.length plan.unaffected));
  Buffer.contents buf
