(* Explanation of provenance links: which rule, which call, and which
   variable bindings produced a link.  The witnesses are the joined
   embedding rows of Definition 8 — the evidence a workflow designer needs
   when a link looks wrong (or is missing).

   [missing] goes the other way: for a pair with no link, it reports how
   far each rule got — whether the source side matched, the target side
   matched, and on which variable values the join failed. *)

open Weblab_xml
open Weblab_relalg
open Weblab_workflow

type witness = {
  rule : string;
  call : Trace.call;
  bindings : (string * string) list;  (* shared variables and their values *)
}

let witness_to_string w =
  Printf.sprintf "rule %s at (%s, t%d)%s" w.rule w.call.Trace.service
    w.call.Trace.time
    (if w.bindings = [] then ""
     else
       " with "
       ^ String.concat ", "
           (List.map (fun (x, v) -> Printf.sprintf "$%s = %s" x v) w.bindings))

(* All witnesses for the link [from_uri -> to_uri] under the rulebook. *)
let link ~doc ~trace (rb : Strategy.rulebook) ~from_uri ~to_uri : witness list =
  Trace.calls trace
  |> List.concat_map (fun (call : Trace.call) ->
         if call.Trace.time = 0 then []
         else
           Strategy.rules_for rb call.Trace.service
           |> List.concat_map (fun rule ->
                  if Mapping.is_skolem_rule rule then []
                  else begin
                    let d = Doc_state.at doc (call.Trace.time - 1) in
                    let d' = Doc_state.at doc call.Trace.time in
                    let j = Mapping.join_table rule d d' in
                    let out_uris = Trace.resources_of_call trace call in
                    if not (List.mem from_uri out_uris) then []
                    else
                      Table.rows j
                      |> List.filter_map (fun row ->
                             let v c = Value.to_string (Table.get j row c) in
                             if v "out" = from_uri && v "in" = to_uri then
                               Some
                                 {
                                   rule = Rule.name rule;
                                   call;
                                   bindings =
                                     Table.columns j
                                     |> List.filter (fun c ->
                                            c <> "in" && c <> "out"
                                            && not (String.length c > 3
                                                    && String.sub c 0 4 = "node"))
                                     |> List.map (fun c -> (c, v c));
                                 }
                             else None)
                  end))

type failure =
  | Source_no_match       (* φ_S matched nothing in d_{i-1} *)
  | Target_no_match       (* φ_T matched nothing in d_i *)
  | Join_mismatch of (string * string list * string list) list
      (* per shared variable: values on the source side vs target side *)
  | Wrong_call            (* the target resource was not produced by this call *)

type diagnosis = {
  d_rule : string;
  d_call : Trace.call;
  failure : failure;
}

let failure_to_string = function
  | Source_no_match -> "the source pattern matched nothing before the call"
  | Target_no_match -> "the target pattern matched nothing in the call's output"
  | Wrong_call -> "the target resource was produced by a different call"
  | Join_mismatch vars ->
    "the join failed: "
    ^ String.concat "; "
        (List.map
           (fun (x, src, tgt) ->
             Printf.sprintf "$%s is {%s} on the source side but {%s} on the \
                             target side"
               x (String.concat "," src) (String.concat "," tgt))
           vars)

(* Why is there no [from_uri -> to_uri] link?  One diagnosis per
   (call, rule) that could in principle have produced it. *)
let missing ~doc ~trace (rb : Strategy.rulebook) ~from_uri ~to_uri :
    diagnosis list =
  Trace.calls trace
  |> List.concat_map (fun (call : Trace.call) ->
         if call.Trace.time = 0 then []
         else
           Strategy.rules_for rb call.Trace.service
           |> List.filter_map (fun rule ->
                  if Mapping.is_skolem_rule rule then None
                  else begin
                    let d = Doc_state.at doc (call.Trace.time - 1) in
                    let d' = Doc_state.at doc call.Trace.time in
                    let values t col =
                      Table.rows t
                      |> List.map (fun row -> Value.to_string (Table.get t row col))
                      |> List.sort_uniq compare
                    in
                    let rs =
                      Mapping.source_table
                        ~guards:(Weblab_xpath.Eval.state_guards d)
                        (Doc_state.doc d) rule
                    in
                    let rt =
                      Mapping.target_table
                        ~guards:(Weblab_xpath.Eval.state_guards d')
                        (Doc_state.doc d') rule
                    in
                    let src_rows =
                      List.filter (fun r -> Value.to_string (Table.get rs r "in") = to_uri)
                        (Table.rows rs)
                    in
                    let tgt_rows =
                      List.filter
                        (fun r -> Value.to_string (Table.get rt r "out") = from_uri)
                        (Table.rows rt)
                    in
                    let diag failure = Some { d_rule = Rule.name rule; d_call = call; failure } in
                    if not (List.mem from_uri (Trace.resources_of_call trace call))
                    then diag Wrong_call
                    else if src_rows = [] then diag Source_no_match
                    else if tgt_rows = [] then diag Target_no_match
                    else begin
                      (* both sides matched: the join variables disagree *)
                      let shared = Rule.join_variables rule in
                      let mismatches =
                        shared
                        |> List.filter_map (fun x ->
                               let sv = values rs x and tv = values rt x in
                               let overlap = List.exists (fun v -> List.mem v tv) sv in
                               if overlap then None else Some (x, sv, tv))
                      in
                      if mismatches = [] then None  (* link actually exists *)
                      else diag (Join_mismatch mismatches)
                    end
                  end))
