(* Provenance views over composite modules — the complementary direction
   the related-work section points at ([7] Bao, Davidson, Milo: "Labeling
   workflow views with fine-grained dependencies").

   A view groups service calls into named composite activities (e.g. the
   whole translation sub-pipeline as one "Translation" module, for
   focusing, or for hiding private provenance).  Projecting a provenance
   graph through a view:

   - relabels every resource with its composite call (service = group
     name, timestamp = the first member call's timestamp);
   - keeps only the links that cross a group boundary — the internal
     wiring of a composite module is hidden;
   - keeps resources of ungrouped calls as they are. *)

open Weblab_workflow

type grouping = Trace.call -> string option
(* [group call] returns the composite module's name, or [None] to leave
   the call visible as itself. *)

(* Group by service name ranges, the common case. *)
let by_services (assignments : (string * string list) list) : grouping =
 fun call ->
  List.find_map
    (fun (composite, services) ->
      if List.mem call.Trace.service services then Some composite else None)
    assignments

let project (g : Prov_graph.t) (group : grouping) : Prov_graph.t =
  let out = Prov_graph.create () in
  (* Composite calls: one per group name, stamped with the earliest member
     timestamp (so temporal soundness of inter-group links is preserved:
     a group's outputs can only depend on strictly earlier groups). *)
  let first_time = Hashtbl.create 8 in
  List.iter
    (fun (_, call) ->
      match group call with
      | Some name ->
        let t = call.Trace.time in
        (match Hashtbl.find_opt first_time name with
         | Some t' when t' <= t -> ()
         | _ -> Hashtbl.replace first_time name t)
      | None -> ())
    (Prov_graph.labeled_resources g);
  let composite_call name =
    { Trace.service = name;
      time = (match Hashtbl.find_opt first_time name with Some t -> t | None -> 0) }
  in
  let group_of uri =
    match Prov_graph.label g uri with
    | Some call -> group call
    | None -> None
  in
  (* Relabel resources. *)
  List.iter
    (fun (uri, call) ->
      match group call with
      | Some name -> Prov_graph.set_label out uri (composite_call name)
      | None -> Prov_graph.set_label out uri call)
    (Prov_graph.labeled_resources g);
  (* Keep only boundary-crossing links. *)
  List.iter
    (fun { Prov_graph.from_uri; to_uri; rule; inherited } ->
      let keep =
        match group_of from_uri, group_of to_uri with
        | Some a, Some b -> not (String.equal a b)
        | _ -> true
      in
      if keep then Prov_graph.add_link out ~rule ~inherited ~from_uri ~to_uri)
    (Prov_graph.links g);
  out

(* The module-level graph itself: composite activities and the
   wasInformedBy edges between them, derived from the projected links. *)
let module_graph (g : Prov_graph.t) (group : grouping) :
    (string * string) list =
  let name_of call =
    match group call with
    | Some n -> n
    | None -> Printf.sprintf "%s@t%d" call.Trace.service call.Trace.time
  in
  Prov_graph.links g
  |> List.filter_map (fun l ->
         match
           Prov_graph.label g l.Prov_graph.from_uri,
           Prov_graph.label g l.Prov_graph.to_uri
         with
         | Some cf, Some ct ->
           let a = name_of cf and b = name_of ct in
           if String.equal a b then None else Some (a, b)
         | _ -> None)
  |> List.sort_uniq compare
