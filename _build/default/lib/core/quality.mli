(** Quality propagation over provenance graphs — the §1 motivation of the
    paper: assessing "the quality and validity of data and knowledge
    produced by media mining workflows" from fine-grained provenance.

    Sources carry assessed scores in [0, 1]; every derived resource
    combines its dependencies' scores (weakest-link by default), attenuated
    per service for lossy stages (OCR, heuristic NER, …). *)

type config = {
  default_source : float;  (** unassessed sources (default 1.0) *)
  combine : float list -> float;  (** over the dependencies' scores *)
  attenuation : string -> float;  (** per service name; 1.0 = lossless *)
}

val weakest_link : float list -> float
(** [min], the default combiner. *)

val default_config : config

val propagate :
  ?config:config -> Prov_graph.t -> sources:(string * float) list ->
  (string * float) list
(** Scores for every labeled resource, sorted by URI.  [sources] pins
    assessed scores (a pinned resource's score overrides propagation). *)

val below :
  ?config:config ->
  Prov_graph.t ->
  sources:(string * float) list ->
  threshold:float ->
  (string * float) list
(** The review queue: resources scoring below the threshold. *)

val to_string : (string * float) list -> string
