(** Lineage queries over provenance graphs — the questions §2 motivates:
    what does a resource depend on, what did a call use, which calls
    informed which. *)

open Weblab_workflow

val depends_on_transitive : Prov_graph.t -> string -> string list
(** Everything the resource was — directly or indirectly — derived from,
    sorted. *)

val influences_transitive : Prov_graph.t -> string -> string list
(** Everything that — directly or indirectly — depends on the resource,
    sorted. *)

val path : Prov_graph.t -> from_uri:string -> to_uri:string -> string list option
(** A shortest dependency path (BFS), endpoints included;
    [Some [u]] when the endpoints coincide. *)

val call_used : Prov_graph.t -> Trace.call -> string list
(** Resources the call consumed, according to the provenance links —
    prov:used. *)

val call_generated : Prov_graph.t -> Trace.call -> string list
(** The out(c) of the model. *)

val informed_by : Prov_graph.t -> Trace.call -> Trace.call list
(** Calls whose outputs this call consumed — prov:wasInformedBy. *)

val informed_by_transitive : Prov_graph.t -> Trace.call -> Trace.call list
(** Transitive call-level lineage, sorted by timestamp. *)
