lib/core/explain.mli: Strategy Trace Weblab_workflow Weblab_xml
