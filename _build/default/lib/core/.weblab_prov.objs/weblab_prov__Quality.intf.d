lib/core/quality.mli: Prov_graph
