lib/core/prov_export.mli: Prov_graph Term Trace Triple_store Weblab_rdf Weblab_workflow
