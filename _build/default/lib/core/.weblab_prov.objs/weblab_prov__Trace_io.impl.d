lib/core/trace_io.ml: List Option Printer Prov_vocab Term Trace Tree Triple_store Weblab_rdf Weblab_workflow Weblab_xml Xml_parser
