lib/core/prov_graph.ml: Buffer Hashtbl List Printf Queue String Trace Weblab_workflow
