lib/core/prov_store.mli: Prov_graph Reachability Triple_store Weblab_rdf
