lib/core/inheritance.ml: List Printf Prov_graph String Tree Weblab_xml
