lib/core/prov_graph.mli: Trace Weblab_workflow
