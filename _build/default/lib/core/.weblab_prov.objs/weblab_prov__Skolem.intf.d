lib/core/skolem.mli: Rule
