lib/core/rule_parser.mli: Rule
