lib/core/reachability.ml: Array Bytes Char Hashtbl List Prov_graph String
