lib/core/strategy.mli: Doc_state Prov_graph Rule Trace Tree Weblab_workflow Weblab_xml
