lib/core/repository.ml: Array Doc_state Engine Filename List Printer Printf Prov_export Prov_graph String Sys Trace_io Weblab_rdf Weblab_xml Xml_parser
