lib/core/dot.mli: Prov_graph
