lib/core/mapping.mli: Ast Doc_state Eval Rule Table Trace Tree Weblab_relalg Weblab_workflow Weblab_xml Weblab_xpath
