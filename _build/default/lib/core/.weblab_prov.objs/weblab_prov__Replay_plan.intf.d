lib/core/replay_plan.mli: Prov_graph Trace Weblab_workflow
