lib/core/static_check.ml: Ast Hashtbl List Printf Prov_graph Rule Strategy String Trace Weblab_workflow Weblab_xml Weblab_xpath
