lib/core/strategy.ml: Ast Doc_state Eval Hashtbl Inheritance List Mapping Pattern_rewrite Prov_graph Rule String Table Trace Tree Value Weblab_relalg Weblab_workflow Weblab_xml Weblab_xpath
