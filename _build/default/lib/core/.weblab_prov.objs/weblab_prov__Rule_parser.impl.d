lib/core/rule_parser.ml: Lexer List Parser Printf Rule String Weblab_xpath
