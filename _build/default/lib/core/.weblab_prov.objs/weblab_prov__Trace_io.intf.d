lib/core/trace_io.mli: Term Trace Triple_store Weblab_rdf Weblab_workflow
