lib/core/replay_plan.ml: Buffer List Printf Prov_graph Query String Trace Weblab_workflow
