lib/core/rule.mli: Ast Weblab_xpath
