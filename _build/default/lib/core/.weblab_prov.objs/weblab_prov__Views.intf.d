lib/core/views.mli: Prov_graph Trace Weblab_workflow
