lib/core/inheritance.mli: Prov_graph Tree Weblab_xml
