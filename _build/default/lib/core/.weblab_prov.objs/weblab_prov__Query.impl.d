lib/core/query.ml: Hashtbl List Prov_graph Queue String Trace Weblab_workflow
