lib/core/pattern_rewrite.mli: Ast Rule Trace Weblab_workflow Weblab_xpath
