lib/core/reachability.mli: Prov_graph
