lib/core/engine.mli: Parallel Prov_graph Service Strategy Trace Tree Weblab_workflow Weblab_xml
