lib/core/explain.ml: Doc_state List Mapping Printf Rule Strategy String Table Trace Value Weblab_relalg Weblab_workflow Weblab_xml Weblab_xpath
