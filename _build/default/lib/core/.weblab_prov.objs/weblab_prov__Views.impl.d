lib/core/views.ml: Hashtbl List Printf Prov_graph String Trace Weblab_workflow
