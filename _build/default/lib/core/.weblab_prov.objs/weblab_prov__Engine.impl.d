lib/core/engine.ml: Dot List Orchestrator Parallel Prov_export Prov_graph Strategy Trace Tree Weblab_workflow Weblab_xml
