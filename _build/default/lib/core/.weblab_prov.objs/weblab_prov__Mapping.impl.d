lib/core/mapping.ml: Ast Doc_state Eval List Option Printf Rule String Table Trace Tree Value Weblab_relalg Weblab_workflow Weblab_xml Weblab_xpath
