lib/core/rule.ml: Ast List Print Printf Weblab_xpath
