lib/core/repository.mli: Engine Prov_graph
