lib/core/analytics.ml: Buffer Hashtbl Inheritance List Option Printf Prov_export Prov_graph String Sys
